// Command lsdfd is the facility's network front door: one process
// that assembles a full LSDF (federated namespace, sharded metadata
// with optional WAL durability, multi-site replication, read cache,
// analysis cluster) and serves it to remote communities over
// HTTP/JSON with per-tenant auth, rate limiting and admission
// control.
//
// Quickstart (single tenant):
//
//	lsdfd -addr :7420 -tenant bio -token s3cret -data /var/lsdf/objects -wal /var/lsdf/wal
//	lsdfctl -server http://127.0.0.1:7420 -token s3cret ls /data
//
// Multi-tenant: -tenants FILE points at a JSON array of tenant
// records (see internal/gateway.Tenant):
//
//	[{"name":"bio","token":"...","prefixes":["/data/bio"],"rps":200,"max_in_flight":32},
//	 {"name":"climate","token":"...","prefixes":["/data/climate"]}]
//
// SIGTERM/SIGINT drain gracefully: in-flight requests (including
// streaming reads) finish, new ones get 503 + Retry-After. With -wal
// set, every ingest acknowledged over HTTP is journaled before the
// response, so even kill -9 loses nothing that was acked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"time"

	"repro/internal/adal"
	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/units"
)

func main() {
	var (
		addr        = flag.String("addr", ":7420", "listen address")
		tenantsFile = flag.String("tenants", "", "JSON file with tenant records (overrides -tenant/-token)")
		tenantName  = flag.String("tenant", "lsdf", "single-tenant mode: community name")
		token       = flag.String("token", "", "single-tenant mode: bearer token (required unless -tenants)")
		dataDir     = flag.String("data", "", "serve a persistent local directory at /data (default: in-memory only)")
		walDir      = flag.String("wal", "", "metadata WAL directory (durable acks; created if missing)")
		sites       = flag.String("sites", "", "comma-separated federation site names (enables /sites)")
		cacheMem    = flag.Int("cache-mem-mib", 0, "read cache memory budget in MiB (needs -sites)")
		cacheDisk   = flag.Int("cache-disk-mib", 0, "read cache disk budget in MiB (needs -sites)")
		cacheDir    = flag.String("cache-dir", "", "read cache disk directory (created if missing)")
		shards      = flag.Int("shards", 0, "metadata shard count (default 16)")
		dfsNodes    = flag.Int("dfs-nodes", 8, "analysis cluster datanodes")
		computeN    = flag.Int("compute-workers", 0, "distributed MapReduce: in-process compute workers (0 = single-process engine)")
		computeS    = flag.Int("compute-slots", 0, "distributed MapReduce: task slots per worker (default 2)")
		computeAddr = flag.String("compute-addr", "", "distributed MapReduce: master control-plane listen address for external lsdf-worker processes (default loopback ephemeral; implies -compute-workers if unset)")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		debugAddr   = flag.String("debug-addr", "", "operator debug listener: pprof, /metrics, /v1/debug/traces (keep off tenant networks)")
	)
	flag.Parse()
	cfg := daemonConfig{
		addr: *addr, tenantsFile: *tenantsFile, tenantName: *tenantName, token: *token,
		dataDir: *dataDir, walDir: *walDir, sites: *sites,
		cacheMem: *cacheMem, cacheDisk: *cacheDisk, cacheDir: *cacheDir,
		shards: *shards, dfsNodes: *dfsNodes,
		computeWorkers: *computeN, computeSlots: *computeS, computeAddr: *computeAddr,
		drainTimeout: *drain, debugAddr: *debugAddr,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lsdfd:", err)
		os.Exit(1)
	}
}

type daemonConfig struct {
	addr           string
	tenantsFile    string
	tenantName     string
	token          string
	dataDir        string
	walDir         string
	sites          string
	cacheMem       int
	cacheDisk      int
	cacheDir       string
	shards         int
	dfsNodes       int
	computeWorkers int
	computeSlots   int
	computeAddr    string
	drainTimeout   time.Duration
	debugAddr      string
}

func run(c daemonConfig) error {
	tenants, err := loadTenants(c.tenantsFile, c.tenantName, c.token)
	if err != nil {
		return err
	}

	opts := facility.Options{
		DFSNodes:       c.dfsNodes,
		MetadataShards: c.shards,
		WALDir:         c.walDir,
		AsyncEvents:    true,
		ComputeWorkers: c.computeWorkers,
		ComputeSlots:   c.computeSlots,
		ComputeAddr:    c.computeAddr,
	}
	// -compute-addr alone still means "run the distributed plane": a
	// master with no local workers, waiting for external lsdf-worker
	// processes to register.
	if c.computeAddr != "" && opts.ComputeWorkers == 0 {
		opts.ComputeWorkers = 1
	}
	if c.walDir != "" {
		if err := os.MkdirAll(c.walDir, 0o755); err != nil {
			return err
		}
	}
	if c.sites != "" {
		opts.Sites = splitList(c.sites)
		opts.ReadCacheMemory = units.Bytes(c.cacheMem) * units.MiB
		opts.ReadCacheDisk = units.Bytes(c.cacheDisk) * units.MiB
		if c.cacheDir != "" {
			if err := os.MkdirAll(c.cacheDir, 0o755); err != nil {
				return err
			}
			opts.ReadCacheDir = c.cacheDir
		}
	}
	fac, err := facility.New(opts)
	if err != nil {
		return err
	}
	defer fac.Close()
	if fac.Compute != nil {
		log.Printf("lsdfd: compute master on %s (%d in-process workers)", fac.Compute.URL(), opts.ComputeWorkers)
	}

	if c.dataDir != "" {
		if err := os.MkdirAll(c.dataDir, 0o755); err != nil {
			return err
		}
		local, err := adal.NewLocalFS("data", c.dataDir)
		if err != nil {
			return err
		}
		if err := fac.Layer.Mount("/data", local); err != nil {
			return err
		}
	}

	srv, err := gateway.ForFacility(fac, gateway.Config{
		Tenants: tenants,
		Jobs:    gateway.BuiltinJobs(),
	})
	if err != nil {
		return err
	}

	// The operator debug plane rides its own listener: pprof and the
	// raw obs handlers carry no tenant auth, so they never share the
	// front door's address.
	if c.debugAddr != "" {
		dln, err := net.Listen("tcp", c.debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		log.Printf("lsdfd: debug listener (pprof, /metrics, /v1/debug/traces) on %s", dln.Addr())
		go func() {
			_ = http.Serve(dln, obs.DebugHandler(fac.Obs, fac.Tracer))
		}()
	}

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	log.Printf("lsdfd: serving %d tenant(s) on %s (wal=%q sites=%q)", len(tenants), ln.Addr(), c.walDir, c.sites)
	httpSrv := &http.Server{ReadHeaderTimeout: 10 * time.Second}
	err = srv.ServeDraining(httpSrv, ln, c.drainTimeout, syscall.SIGTERM, os.Interrupt)
	if err == nil {
		log.Printf("lsdfd: drained, shutting down")
	}
	return err
}

func loadTenants(file, name, token string) ([]gateway.Tenant, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var tenants []gateway.Tenant
		if err := json.Unmarshal(data, &tenants); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", file, err)
		}
		if len(tenants) == 0 {
			return nil, fmt.Errorf("%s: no tenants", file)
		}
		return tenants, nil
	}
	if token == "" {
		return nil, fmt.Errorf("either -tenants FILE or -token is required")
	}
	// Single-tenant quickstart: full namespace access.
	return []gateway.Tenant{{Name: name, Token: token, Prefixes: []string{"/"}}}, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

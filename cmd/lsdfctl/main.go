// Command lsdfctl is the facility operations CLI: it manages a
// persistent LSDF instance rooted in a state directory (a LocalFS
// backend plus a JSON metadata dump), supporting the operations the
// paper's users perform: ingest files with checksums and metadata,
// browse, query and tag.
//
//	lsdfctl -state /tmp/lsdf ingest -project zebrafish /data/*.raw
//	lsdfctl -state /tmp/lsdf ls /data
//	lsdfctl -state /tmp/lsdf query -project zebrafish -tag raw
//	lsdfctl -state /tmp/lsdf tag /data/img1.raw analyze
//	lsdfctl -state /tmp/lsdf stat /data/img1.raw
//	lsdfctl -state /tmp/lsdf tier
//	lsdfctl -state /tmp/lsdf tier migrate /data/img1.raw
//
// With -server, the same user-facing commands run against a live
// lsdfd gateway instead of a local state directory — the CLI becomes
// a network client authenticated by -token:
//
//	lsdfctl -server http://lsdf.example:7420 -token SECRET ingest -project zebrafish img*.raw
//	lsdfctl -server http://lsdf.example:7420 -token SECRET ls /data
//
// Facility-internal planes (tier, replica, cache, export) stay
// local-only: they administer backend state the gateway deliberately
// does not expose to tenants.
//
// The object namespace is a live tiered data path: objects/ is the
// hot tier, cold/ the cold one. "tier migrate" replaces an object's
// hot bytes with a self-describing stub; any later read (or "tier
// recall") brings them back transparently and checksum-verified.
// Placement survives invocations because the stubs are recovered on
// startup.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/adal"
	"repro/internal/dfs"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/mrpc"
	"repro/internal/obs"
	"repro/internal/readcache"
	"repro/internal/replication"
	"repro/internal/tiering"
	"repro/internal/units"
)

func main() {
	state := flag.String("state", "", "state directory (created if missing)")
	cacheMem := flag.Int("cache-mem-mib", 64, "read cache memory tier budget in MiB (0 disables the cache)")
	cacheDisk := flag.Int("cache-disk-mib", 256, "read cache disk tier budget in MiB (persisted under STATE/cache)")
	server := flag.String("server", "", "lsdfd gateway URL: run commands remotely instead of against -state")
	token := flag.String("token", "", "bearer token for -server")
	trace := flag.Bool("trace", false, "mint a request trace for this command and print its ID (remote mode; inspect with: lsdfctl traces ID)")
	flag.Parse()
	if *server != "" {
		if flag.NArg() == 0 {
			usage()
			os.Exit(2)
		}
		if err := runRemote(*server, *token, *trace, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "lsdfctl:", err)
			os.Exit(1)
		}
		return
	}
	if *state == "" || flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(*state, *cacheMem, *cacheDisk, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "lsdfctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lsdfctl -state DIR COMMAND [args]
       lsdfctl -server URL -token SECRET COMMAND [args]

With -server, ingest/ls/stat/tag/untag/query run against a live lsdfd
gateway (ingest also takes -dest PREFIX, default /data). The
facility-internal planes (tier, replica, cache, export) are
local-only.

commands:
  ingest -project P FILE...   store files under /data with checksums and register them
  ls PREFIX                   list stored objects joined with metadata
  stat PATH                   show one object's dataset record
  tag PATH TAG                tag a dataset
  untag PATH TAG              remove a tag
  query [-project P] [-tag T] find datasets
  jobs submit -job NAME -out DIR [-reducers N] [-arg K=V] [-wait] INPUT...
                              run a named analysis job (local: synchronous
                              on a transient cluster; remote: async unless -wait)
  jobs status [ID]            show one job, or list all submitted jobs
  jobs wait ID                block until a job finishes and print its result
  export                      dump the metadata DB as JSON to stdout
  tier                        show per-object tier placement and counters
  tier migrate PATH           move an object to the cold tier (stub stays)
  tier recall PATH            bring a migrated object's bytes back
  tier pin PATH               exempt an object from migration (this run)
  tier unpin PATH             re-admit an object to migration
  replica status              show the replica catalog (per-object site states)
  replica add PATH SITE       copy an object to a mirror site (created on demand)
  replica drop PATH SITE      remove an object's replica from a site
  replica verify PATH         re-checksum every replica against the main copy
  cache status                show read-cache counters and cached objects
  cache evict PATH            drop an object from every cache tier
  cache warm PREFIX           pre-fill the cache with the objects under PREFIX
  metrics                     (remote) dump the facility's Prometheus metrics
  traces [-n N] [ID]          (remote) show recent request traces, or one trace's spans`)
}

// runRemote drives the user-facing commands through the gateway
// client against a served lsdfd. The command surface and output
// format match the local mode so scripts work against either.
func runRemote(server, token string, trace bool, args []string) error {
	c, err := client.New(server, token, client.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	if trace {
		// Client-side minting: the gateway adopts this ID, so the
		// user can pull the full span tree afterwards.
		id := obs.NewTraceID()
		ctx = obs.ContextWithTrace(ctx, &obs.TraceData{ID: id})
		defer fmt.Fprintf(os.Stderr, "trace: %s\n", id)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ingest":
		fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
		project := fs.String("project", "default", "project name")
		dest := fs.String("dest", "/data", "namespace prefix to store under")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() == 0 {
			return fmt.Errorf("ingest: no files given")
		}
		var objs []gateway.IngestObject
		for _, src := range fs.Args() {
			data, err := os.ReadFile(src)
			if err != nil {
				return err
			}
			objs = append(objs, gateway.IngestObject{
				Path:    strings.TrimSuffix(*dest, "/") + "/" + filepath.Base(src),
				Project: *project,
				Data:    data,
				Basic:   map[string]string{"source": src},
				Tags:    []string{"raw"},
			})
		}
		res, err := c.Ingest(ctx, objs)
		if err != nil {
			return err
		}
		for _, r := range res.Results {
			if r.Error != "" {
				return fmt.Errorf("ingest %s: %s", r.Path, r.Error)
			}
			fmt.Printf("%s  %s  %s\n", r.DatasetID, r.Size.SI(), r.Path)
		}
		return nil
	case "ls":
		prefix := "/data"
		if len(rest) > 0 {
			prefix = rest[0]
		}
		infos, err := c.List(ctx, prefix)
		if err != nil {
			return err
		}
		for _, info := range infos {
			mark := "-"
			if info.DatasetID != "" {
				mark = info.DatasetID + " [" + strings.Join(info.Tags, ",") + "]"
			}
			fmt.Printf("%-10s  %-40s  %s\n", info.Size.SI(), info.Path, mark)
		}
		return nil
	case "stat":
		if len(rest) != 1 {
			return fmt.Errorf("stat: need PATH")
		}
		ds, err := c.Dataset(ctx, rest[0])
		if err != nil {
			return err
		}
		fmt.Printf("id:       %s\nproject:  %s\npath:     %s\nsize:     %s\nchecksum: %s\ntags:     %s\n",
			ds.ID, ds.Project, ds.Path, ds.Size.SI(), ds.Checksum, strings.Join(ds.Tags, ","))
		for _, p := range ds.Processings {
			fmt.Printf("processing %s: tool=%s results=%v outputs=%v\n", p.ID, p.Tool, p.Results, p.Outputs)
		}
		return nil
	case "tag", "untag":
		if len(rest) != 2 {
			return fmt.Errorf("%s: need PATH TAG", cmd)
		}
		var err error
		if cmd == "tag" {
			_, err = c.Tag(ctx, rest[0], rest[1])
		} else {
			_, err = c.Untag(ctx, rest[0], rest[1])
		}
		return err
	case "query":
		fs := flag.NewFlagSet("query", flag.ContinueOnError)
		project := fs.String("project", "", "filter by project")
		tag := fs.String("tag", "", "filter by tag (comma-separated = all required)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		q := client.FindQuery{Project: *project}
		if *tag != "" {
			q.Tags = strings.Split(*tag, ",")
		}
		dss, err := c.Find(ctx, q)
		if err != nil {
			return err
		}
		for _, ds := range dss {
			fmt.Printf("%s  %-10s  %-40s  [%s]\n", ds.ID, ds.Size.SI(), ds.Path, strings.Join(ds.Tags, ","))
		}
		return nil
	case "jobs":
		return remoteJobs(ctx, c, rest)
	case "metrics":
		text, err := c.MetricsText(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "traces":
		return remoteTraces(ctx, c, rest)
	case "tier", "replica", "cache", "export":
		return fmt.Errorf("%q administers facility-internal state and is local-only; rerun with -state on the facility host", cmd)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// remoteTraces renders the gateway's debug trace ring: a summary line
// per trace, or — given an ID — one trace's span tree with durations.
func remoteTraces(ctx context.Context, c *client.Client, rest []string) error {
	fs := flag.NewFlagSet("traces", flag.ContinueOnError)
	n := fs.Int("n", 10, "how many recent traces to list")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() >= 1 {
		tv, err := c.Trace(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		printTrace(tv)
		return nil
	}
	views, err := c.Traces(ctx, *n)
	if err != nil {
		return err
	}
	for _, tv := range views {
		var total int64
		for _, sp := range tv.Spans {
			if sp.DurNs > total {
				total = sp.DurNs
			}
		}
		fmt.Printf("%-24s  %-28s  %2d spans  %s\n",
			tv.ID, tv.Root, len(tv.Spans), time.Duration(total))
	}
	return nil
}

func printTrace(tv obs.TraceView) {
	fmt.Printf("trace %s  root=%q  start=%s\n", tv.ID, tv.Root, tv.Start.Format(time.RFC3339Nano))
	for _, sp := range tv.Spans {
		detail := ""
		if sp.Detail != "" {
			detail = "  " + sp.Detail
		}
		fmt.Printf("  %-28s %12s%s\n", sp.Name, time.Duration(sp.DurNs), detail)
	}
	if tv.Dropped > 0 {
		fmt.Printf("  (%d spans dropped)\n", tv.Dropped)
	}
}

// jobSubmitFlags is the shared flag surface of "jobs submit" in both
// modes.
type jobSubmitFlags struct {
	fs       *flag.FlagSet
	job      *string
	out      *string
	reducers *int
	wait     *bool
	args     map[string]string
}

func newJobSubmitFlags() *jobSubmitFlags {
	f := &jobSubmitFlags{args: map[string]string{}}
	f.fs = flag.NewFlagSet("jobs submit", flag.ContinueOnError)
	f.job = f.fs.String("job", "", "job template name (wordcount, linecount, grep, ...)")
	f.out = f.fs.String("out", "", "output directory for reducer part files")
	f.reducers = f.fs.Int("reducers", 0, "reducer count (default: template's)")
	f.wait = f.fs.Bool("wait", false, "block until the job finishes (remote mode; local jobs always run to completion)")
	f.fs.Func("arg", "template argument KEY=VALUE (repeatable)", func(s string) error {
		k, v, ok := strings.Cut(s, "=")
		if !ok || k == "" {
			return fmt.Errorf("want KEY=VALUE, got %q", s)
		}
		f.args[k] = v
		return nil
	})
	return f
}

func (f *jobSubmitFlags) parse(args []string) error {
	if err := f.fs.Parse(args); err != nil {
		return err
	}
	if *f.job == "" || *f.out == "" || f.fs.NArg() == 0 {
		return fmt.Errorf("jobs submit: need -job NAME -out DIR INPUT...")
	}
	return nil
}

func printJobStatus(st gateway.JobStatus) {
	fmt.Printf("%s  %s  %s", st.ID, st.Job, st.State)
	if st.DurationMS > 0 {
		fmt.Printf("  %dms", st.DurationMS)
	}
	if st.Error != "" {
		fmt.Printf("  error: %s", st.Error)
	}
	fmt.Println()
	if st.State == gateway.JobDone {
		c := st.Counters
		fmt.Printf("  tasks: %d map (%d local) + %d reduce, retries %d, speculative %d launched / %d won\n",
			c.MapTasks, c.LocalTasks, c.ReduceTasks, c.Retries, c.SpecLaunched, c.SpecWon)
		fmt.Printf("  records: %d in, %d out; shuffle %s (%s remote), %d spill runs\n",
			c.InputRecords, c.OutputRecords, units.Bytes(c.ShuffleBytes).SI(),
			units.Bytes(c.RemoteShuffleBytes).SI(), c.SpillRuns)
		for _, f := range st.OutputFiles {
			fmt.Printf("  %s\n", f)
		}
	}
}

func remoteJobs(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs: need submit|status|wait")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		f := newJobSubmitFlags()
		if err := f.parse(rest); err != nil {
			return err
		}
		st, err := c.SubmitJob(ctx, gateway.JobRequest{
			Job:         *f.job,
			Inputs:      f.fs.Args(),
			OutputDir:   *f.out,
			NumReducers: *f.reducers,
			Args:        f.args,
		})
		if err != nil {
			return err
		}
		if *f.wait {
			if st, err = c.WaitJob(ctx, st.ID, 50*time.Millisecond); err != nil {
				return err
			}
		}
		printJobStatus(st)
		if st.State == gateway.JobFailed {
			return fmt.Errorf("job %s failed", st.ID)
		}
		return nil
	case "status":
		if len(rest) == 1 {
			st, err := c.Job(ctx, rest[0])
			if err != nil {
				return err
			}
			printJobStatus(st)
			return nil
		}
		sts, err := c.Jobs(ctx)
		if err != nil {
			return err
		}
		for _, st := range sts {
			printJobStatus(st)
		}
		return nil
	case "wait":
		if len(rest) != 1 {
			return fmt.Errorf("jobs wait: need JOB-ID")
		}
		st, err := c.WaitJob(ctx, rest[0], 50*time.Millisecond)
		if err != nil {
			return err
		}
		printJobStatus(st)
		if st.State == gateway.JobFailed {
			return fmt.Errorf("job %s failed", st.ID)
		}
		return nil
	default:
		return fmt.Errorf("jobs: unknown subcommand %q", sub)
	}
}

type ctl struct {
	layer *adal.Layer
	meta  *metadata.Store
	tier  *tiering.TierBackend
	cache *readcache.Cache // nil when -cache-mem-mib and -cache-disk-mib are both 0
	path  string           // metadata dump location
	state string
	// Replica mirrors: each site is a LocalFS under sites/<name>,
	// mounted at /site/<name>; the catalog is rebuilt from the site
	// directories on every invocation, so replica placement — like
	// tier placement — persists with no side database.
	repCat *replication.Catalog
	sites  map[string]*adal.LocalFS
}

func open(state string, cacheMemMiB, cacheDiskMiB int) (*ctl, error) {
	for _, dir := range []string{"objects", "cold", "cache"} {
		if err := os.MkdirAll(filepath.Join(state, dir), 0o755); err != nil {
			return nil, err
		}
	}
	hot, err := adal.NewLocalFS("posix", filepath.Join(state, "objects"))
	if err != nil {
		return nil, err
	}
	cold, err := adal.NewLocalFS("cold", filepath.Join(state, "cold"))
	if err != nil {
		return nil, err
	}
	// No hot capacity: the CLI migrates on demand, not by watermark.
	// Recovery rebuilds placement from the stubs in objects/.
	tier, err := tiering.New("tier", hot, cold, tiering.Config{})
	if err != nil {
		return nil, err
	}
	// Read cache in front of the tier: hits skip the tier entirely
	// (no recall, no cold read). The disk tier lives under cache/, so
	// objects warmed in one invocation are still cached in the next.
	var root adal.Backend = tier
	var cache *readcache.Cache
	if cacheMemMiB > 0 || cacheDiskMiB > 0 {
		var cacheDisk adal.Backend
		if cacheDiskMiB > 0 {
			cacheDisk, err = adal.NewLocalFS("readcache", filepath.Join(state, "cache"))
			if err != nil {
				return nil, err
			}
		}
		cache = readcache.New(tier, readcache.Config{
			Memory:     units.Bytes(cacheMemMiB) * units.MiB,
			Disk:       cacheDisk,
			DiskBudget: units.Bytes(cacheDiskMiB) * units.MiB,
		})
		root = cache
	}
	layer := adal.NewLayer()
	if err := layer.Mount("/", root); err != nil {
		return nil, err
	}
	meta := metadata.NewStore()
	dump := filepath.Join(state, "metadata.json")
	if f, err := os.Open(dump); err == nil {
		defer f.Close()
		if err := meta.Import(f); err != nil {
			return nil, fmt.Errorf("loading %s: %w", dump, err)
		}
	}
	c := &ctl{
		layer: layer, meta: meta, tier: tier, cache: cache, path: dump, state: state,
		repCat: replication.NewCatalog(replication.CatalogConfig{}),
		sites:  make(map[string]*adal.LocalFS),
	}
	// Recover replica placement from the mirror directories.
	siteDirs, _ := os.ReadDir(filepath.Join(state, "sites"))
	for _, d := range siteDirs {
		if !d.IsDir() {
			continue
		}
		if err := c.mountSite(d.Name()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// mountSite attaches (creating if needed) the mirror site and loads
// its objects into the replica catalog as valid replicas; verify
// re-checksums them on demand.
func (c *ctl) mountSite(name string) error {
	// The name becomes both a directory under sites/ and a mount
	// prefix; reject anything that could escape either namespace.
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || filepath.Base(name) != name {
		return fmt.Errorf("invalid site name %q", name)
	}
	if _, ok := c.sites[name]; ok {
		return nil
	}
	dir := filepath.Join(c.state, "sites", name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := adal.NewLocalFS("site-"+name, dir)
	if err != nil {
		return err
	}
	if err := c.layer.Mount("/site/"+name, b); err != nil {
		return err
	}
	c.sites[name] = b
	infos, err := b.List("/")
	if err != nil {
		return err
	}
	for _, info := range infos {
		if info.IsDir {
			continue
		}
		c.repCat.Set(info.Path, replication.Replica{
			Site: name, State: replication.Valid, Size: info.Size,
		})
	}
	return nil
}

func (c *ctl) save() error {
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.meta.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

func run(state string, cacheMemMiB, cacheDiskMiB int, args []string) error {
	c, err := open(state, cacheMemMiB, cacheDiskMiB)
	if err != nil {
		return err
	}
	defer c.tier.Close()
	if c.cache != nil {
		defer c.cache.Close()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "tier":
		return c.tierCmd(rest)
	case "replica":
		return c.replicaCmd(rest)
	case "cache":
		return c.cacheCmd(rest)
	case "ingest":
		return c.ingest(rest)
	case "ls":
		return c.ls(rest)
	case "stat":
		return c.stat(rest)
	case "tag", "untag":
		return c.tag(cmd, rest)
	case "query":
		return c.query(rest)
	case "jobs":
		return c.jobsCmd(rest)
	case "export":
		return c.meta.Export(os.Stdout)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func (c *ctl) ingest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	project := fs.String("project", "default", "project name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("ingest: no files given")
	}
	for _, src := range fs.Args() {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		dst := "/data/" + filepath.Base(src)
		n, sum, err := c.layer.WriteChecksummed(dst, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("storing %s: %w", src, err)
		}
		ds, err := c.meta.Create(*project, dst, n, sum, map[string]string{"source": src})
		if err != nil {
			_ = c.layer.Remove(dst)
			return fmt.Errorf("registering %s: %w", src, err)
		}
		if err := c.meta.Tag(ds.ID, "raw"); err != nil {
			return err
		}
		fmt.Printf("%s  %s  %s\n", ds.ID, n.SI(), dst)
	}
	return c.save()
}

func (c *ctl) ls(args []string) error {
	prefix := "/data"
	if len(args) > 0 {
		prefix = args[0]
	}
	infos, err := c.layer.List(prefix)
	if err != nil {
		return err
	}
	for _, info := range infos {
		mark := "-"
		if ds, ok := c.meta.ByPath(info.Path); ok {
			mark = ds.ID + " [" + strings.Join(ds.Tags, ",") + "]"
		}
		fmt.Printf("%-10s  %-40s  %s\n", info.Size.SI(), info.Path, mark)
	}
	return nil
}

func (c *ctl) stat(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stat: need PATH")
	}
	ds, ok := c.meta.ByPath(args[0])
	if !ok {
		return fmt.Errorf("no dataset at %q", args[0])
	}
	fmt.Printf("id:       %s\nproject:  %s\npath:     %s\nsize:     %s\nchecksum: %s\ntags:     %s\n",
		ds.ID, ds.Project, ds.Path, ds.Size.SI(), ds.Checksum, strings.Join(ds.Tags, ","))
	for _, p := range ds.Processings {
		fmt.Printf("processing %s: tool=%s results=%v outputs=%v\n", p.ID, p.Tool, p.Results, p.Outputs)
	}
	return nil
}

func (c *ctl) tag(cmd string, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("%s: need PATH TAG", cmd)
	}
	ds, ok := c.meta.ByPath(args[0])
	if !ok {
		return fmt.Errorf("no dataset at %q", args[0])
	}
	var err error
	if cmd == "tag" {
		err = c.meta.Tag(ds.ID, args[1])
	} else {
		err = c.meta.Untag(ds.ID, args[1])
	}
	if err != nil {
		return err
	}
	return c.save()
}

func (c *ctl) query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	project := fs.String("project", "", "filter by project")
	tag := fs.String("tag", "", "filter by tag (comma-separated = all required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := metadata.Query{Project: *project}
	if *tag != "" {
		q.Tags = strings.Split(*tag, ",")
	}
	for _, ds := range c.meta.Find(q) {
		fmt.Printf("%s  %-10s  %-40s  [%s]\n", ds.ID, ds.Size.SI(), ds.Path, strings.Join(ds.Tags, ","))
	}
	return nil
}

// Local job history: every "jobs submit" appends its (final) record
// to STATE/jobs.json, so status/wait work across invocations exactly
// like their remote counterparts — except local jobs are synchronous,
// so wait never blocks.
func (c *ctl) jobsPath() string { return filepath.Join(c.state, "jobs.json") }

func (c *ctl) loadJobs() ([]gateway.JobStatus, error) {
	data, err := os.ReadFile(c.jobsPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jobs []gateway.JobStatus
	if err := json.Unmarshal(data, &jobs); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", c.jobsPath(), err)
	}
	return jobs, nil
}

func (c *ctl) appendJob(st gateway.JobStatus) error {
	jobs, err := c.loadJobs()
	if err != nil {
		return err
	}
	jobs = append(jobs, st)
	data, err := json.MarshalIndent(jobs, "", "  ")
	if err != nil {
		return err
	}
	tmp := c.jobsPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.jobsPath())
}

func (c *ctl) jobsCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("jobs: need submit|status|wait")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		f := newJobSubmitFlags()
		if err := f.parse(rest); err != nil {
			return err
		}
		return c.submitLocalJob(f)
	case "status", "wait":
		jobs, err := c.loadJobs()
		if err != nil {
			return err
		}
		if sub == "wait" && len(rest) != 1 {
			return fmt.Errorf("jobs wait: need JOB-ID")
		}
		if len(rest) == 1 {
			for _, st := range jobs {
				if st.ID == rest[0] {
					printJobStatus(st)
					if st.State == gateway.JobFailed {
						return fmt.Errorf("job %s failed", st.ID)
					}
					return nil
				}
			}
			return fmt.Errorf("no job %s", rest[0])
		}
		for _, st := range jobs {
			printJobStatus(st)
		}
		return nil
	default:
		return fmt.Errorf("jobs: unknown subcommand %q", sub)
	}
}

// submitLocalJob runs a named analysis synchronously: it stages the
// inputs from the state namespace onto a transient single-process
// analysis cluster, resolves the template from the builtin registry
// (the same one lsdfd serves), runs the job, and copies the part
// files back under -out so ls/stat see them like any stored object.
func (c *ctl) submitLocalJob(f *jobSubmitFlags) error {
	cluster := dfs.NewCluster(dfs.Config{
		BlockSize:   4 * units.MiB,
		Replication: 1,
		Seed:        1,
	})
	for i := 0; i < 3; i++ {
		if _, err := cluster.AddDataNode(fmt.Sprintf("dn%d", i), "rack0", 4*units.GiB); err != nil {
			return err
		}
	}
	inputs := f.fs.Args()
	for _, in := range inputs {
		r, err := c.layer.Open(in)
		if err != nil {
			return fmt.Errorf("staging %s: %w", in, err)
		}
		w, err := cluster.Create(in, "")
		if err != nil {
			r.Close()
			return err
		}
		_, err = io.Copy(w, r)
		r.Close()
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("staging %s: %w", in, err)
		}
	}
	cfg, err := mapreduce.Builtin().Resolve(mrpc.JobSpec{
		Name:        *f.job,
		Inputs:      inputs,
		OutputDir:   *f.out,
		NumReducers: *f.reducers,
		Args:        f.args,
	})
	if err != nil {
		return err
	}

	jobs, err := c.loadJobs()
	if err != nil {
		return err
	}
	st := gateway.JobStatus{
		ID:     fmt.Sprintf("j-%06d", len(jobs)+1),
		Job:    *f.job,
		Tenant: "local",
	}
	res, runErr := mapreduce.Run(cluster, cfg)
	if runErr != nil {
		st.State = gateway.JobFailed
		st.Error = runErr.Error()
	} else {
		st.State = gateway.JobDone
		st.DurationMS = res.Duration.Milliseconds()
		st.Counters = res.Counters
		st.OutputFiles = res.OutputFiles
		for _, of := range res.OutputFiles {
			r, err := cluster.Open(of, "")
			if err != nil {
				return err
			}
			_, _, err = c.layer.WriteChecksummed(of, r)
			r.Close()
			if err != nil {
				return fmt.Errorf("storing %s: %w", of, err)
			}
		}
	}
	if err := c.appendJob(st); err != nil {
		return err
	}
	printJobStatus(st)
	if runErr != nil {
		return fmt.Errorf("job %s failed", st.ID)
	}
	return nil
}

func (c *ctl) replicaCmd(args []string) error {
	if len(args) == 0 || args[0] == "status" {
		siteNames := make([]string, 0, len(c.sites))
		for name := range c.sites {
			siteNames = append(siteNames, name)
		}
		sort.Strings(siteNames)
		fmt.Printf("sites: %s\n", strings.Join(siteNames, ", "))
		counts := c.repCat.Counts()
		fmt.Printf("replicas: %d valid, %d stale, %d lost\n",
			counts[replication.Valid], counts[replication.Stale], counts[replication.Lost])
		for _, path := range c.repCat.Paths() {
			var cols []string
			for _, r := range c.repCat.Replicas(path) {
				cols = append(cols, fmt.Sprintf("%s=%s", r.Site, r.State))
			}
			fmt.Printf("%-40s  %s\n", path, strings.Join(cols, "  "))
		}
		return nil
	}
	sub := args[0]
	switch sub {
	case "add", "drop":
		if len(args) != 3 {
			return fmt.Errorf("replica %s: need PATH SITE", sub)
		}
		path, site := args[1], args[2]
		if sub == "add" {
			if err := c.mountSite(site); err != nil {
				return err
			}
			// Adding over an existing (possibly stale) replica
			// refreshes it: clear the old copy so Create succeeds.
			if _, ok := c.repCat.Get(path, site); ok {
				_ = c.layer.Remove("/site/" + site + path)
			}
			n, sum, err := c.layer.CopyObjectChecksummed(path, "/site/"+site+path)
			if err != nil {
				return err
			}
			c.repCat.Set(path, replication.Replica{
				Site: site, State: replication.Valid, Size: n, Checksum: sum,
			})
			fmt.Printf("replicated %s to site %s (%s, sha256 %.12s…)\n", path, site, n.SI(), sum)
			return nil
		}
		if _, ok := c.repCat.Get(path, site); !ok {
			return fmt.Errorf("no replica of %s on site %s", path, site)
		}
		if err := c.layer.Remove("/site/" + site + path); err != nil {
			return err
		}
		c.repCat.Drop(path, site)
		fmt.Printf("dropped replica of %s from site %s\n", path, site)
		return nil
	case "verify":
		if len(args) != 2 {
			return fmt.Errorf("replica verify: need PATH")
		}
		path := args[1]
		want, err := c.layer.Checksum(path)
		if err != nil {
			return fmt.Errorf("reading main copy: %w", err)
		}
		reps := c.repCat.Replicas(path)
		if len(reps) == 0 {
			return fmt.Errorf("no replicas of %s", path)
		}
		for _, r := range reps {
			got, err := c.layer.Checksum("/site/" + r.Site + path)
			switch {
			case err != nil:
				c.repCat.Mark(path, r.Site, replication.Lost, err.Error())
				fmt.Printf("%-12s  %s  LOST (%v)\n", r.Site, path, err)
			case got != want:
				c.repCat.Mark(path, r.Site, replication.Stale, "checksum mismatch")
				fmt.Printf("%-12s  %s  STALE (checksum mismatch)\n", r.Site, path)
			default:
				c.repCat.Mark(path, r.Site, replication.Valid, "")
				fmt.Printf("%-12s  %s  valid (sha256 %.12s…)\n", r.Site, path, got)
			}
		}
		return nil
	default:
		return fmt.Errorf("replica: unknown subcommand %q", sub)
	}
}

func (c *ctl) cacheCmd(args []string) error {
	if c.cache == nil {
		return fmt.Errorf("read cache disabled (-cache-mem-mib 0 -cache-disk-mib 0)")
	}
	if len(args) == 0 || args[0] == "status" {
		st := c.cache.Stats()
		fmt.Printf("memory: %s in %d objects, disk: %s in %d objects\n",
			st.MemUsed.SI(), st.MemObjects, st.DiskUsed.SI(), st.DiskObjects)
		fmt.Printf("hits: %d memory + %d disk, misses: %d, bypasses: %d (hit rate %.1f%%)\n",
			st.MemHits, st.DiskHits, st.Misses, st.Bypasses, 100*st.HitRate())
		fmt.Printf("fills: %d (%s), dedups: %d, evictions: %d, invalidations: %d, fill errors: %d\n",
			st.Fills, units.Bytes(st.FillBytes).SI(), st.Dedups, st.Evictions, st.Invalidations, st.FillErrors)
		for _, e := range c.cache.Entries() {
			mark := ""
			if e.Hot {
				mark = " [hot]"
			}
			if !e.Verified {
				mark += " [unverified]"
			}
			fmt.Printf("%-8s  %-10s  %s%s\n", e.Tier, e.Size.SI(), e.Path, mark)
		}
		return nil
	}
	if len(args) != 2 {
		return fmt.Errorf("cache: need SUBCOMMAND PATH (or no args for status)")
	}
	sub, path := args[0], args[1]
	switch sub {
	case "evict":
		if !c.cache.Evict(path) {
			return fmt.Errorf("%s is not cached", path)
		}
		fmt.Printf("evicted %s from the read cache\n", path)
		return nil
	case "warm":
		n, err := c.cache.Warm(path)
		if err != nil {
			return err
		}
		fmt.Printf("warmed %d objects under %s\n", n, path)
		return nil
	default:
		return fmt.Errorf("cache: unknown subcommand %q", sub)
	}
}

func (c *ctl) tierCmd(args []string) error {
	if len(args) == 0 {
		st := c.tier.Stats()
		fmt.Printf("hot: %d resident + %d premigrated, cold: %d migrated (%d pinned)\n",
			st.Resident, st.Premigrated, st.Migrated, st.Pinned)
		fmt.Printf("lifetime: %d premigrations, %d migrations (%s), %d recalls (%s)\n",
			st.Premigrations, st.Migrations, st.MigratedBytes.SI(), st.Recalls, st.RecallBytes.SI())
		for _, e := range c.tier.Entries() {
			mark := ""
			if e.Pinned {
				mark = " [pinned]"
			}
			fmt.Printf("%-12s  %-10s  %s%s\n", e.State, e.Size.SI(), e.Path, mark)
		}
		return nil
	}
	if len(args) != 2 {
		return fmt.Errorf("tier: need SUBCOMMAND PATH (or no args for status)")
	}
	sub, path := args[0], args[1]
	switch sub {
	case "migrate":
		if err := c.tier.Migrate(path); err != nil {
			return err
		}
		fmt.Printf("migrated %s to cold tier\n", path)
	case "recall":
		if err := c.tier.Recall(path); err != nil {
			return err
		}
		fmt.Printf("recalled %s to hot tier\n", path)
	case "pin":
		if err := c.tier.Pin(path); err != nil {
			return err
		}
		fmt.Printf("pinned %s (in-memory; lasts for this invocation's scans)\n", path)
	case "unpin":
		if err := c.tier.Unpin(path); err != nil {
			return err
		}
		fmt.Printf("unpinned %s\n", path)
	default:
		return fmt.Errorf("tier: unknown subcommand %q", sub)
	}
	return nil
}

// Command lsdf-bench regenerates every table and figure of the
// paper's evaluation content and prints them as paper-vs-measured
// tables. Run all experiments:
//
//	lsdf-bench
//
// or a selection:
//
//	lsdf-bench -run E1,E5,E8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	// E15 (durable metadata) re-executes this binary as its ingest
	// child; when that environment is set the child loop takes over
	// and never returns.
	experiments.E15ChildMain()

	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	registry := experiments.All()
	if *list {
		for _, r := range registry {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := 0
	for _, r := range registry {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tbl, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s): %v\n", r.ID, r.Name, err)
			failed++
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// Command lsdf-sim runs the facility-scale discrete-event scenarios:
// a DAQ day of sustained ingest, the disk-tier fill, the 1 PB
// transfer study and the multi-year growth plan — months of facility
// time in milliseconds of wall clock.
//
//	lsdf-sim -scenario ingest -days 1
//	lsdf-sim -scenario fill -days 400
//	lsdf-sim -scenario transfer
//	lsdf-sim -scenario growth
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/facility"
	"repro/internal/units"
)

func main() {
	scenario := flag.String("scenario", "ingest", "ingest | fill | transfer | growth")
	days := flag.Float64("days", 1, "virtual horizon in days (ingest/fill)")
	rate := flag.String("rate", "2TB", "offered DAQ volume per day (ingest/fill)")
	flag.Parse()

	perDay, err := units.ParseBytes(*rate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsdf-sim:", err)
		os.Exit(2)
	}
	if err := run(*scenario, *days, perDay); err != nil {
		fmt.Fprintln(os.Stderr, "lsdf-sim:", err)
		os.Exit(1)
	}
}

func run(scenario string, days float64, perDay units.Bytes) error {
	switch scenario {
	case "ingest":
		s, err := facility.NewScenario(facility.ScenarioConfig{})
		if err != nil {
			return err
		}
		stream := &facility.IngestStream{
			Name: "daq", Src: "daq", Dst: "ddn",
			Size: 4 * units.MB, Rate: units.PerDay(perDay),
		}
		start := time.Now()
		res := s.RunIngest([]*facility.IngestStream{stream}, units.Days(days))
		r := res["daq"]
		fmt.Printf("simulated %.1f day(s) in %v wall time\n", days, time.Since(start).Round(time.Millisecond))
		fmt.Printf("objects:  %d (4 MB each)\n", r.Objects)
		fmt.Printf("volume:   %s (%s)\n", r.Bytes.SI(), units.PerDay(r.Bytes/units.Bytes(days)).String())
		fmt.Printf("rejected: %d\n", r.Rejected)
		fmt.Printf("DDN used: %s of %s (%.1f%%)\n",
			s.DDN.Used().SI(), s.DDN.Capacity.SI(), 100*s.DDN.Utilization())
		return nil

	case "fill":
		s, err := facility.NewScenario(facility.ScenarioConfig{})
		if err != nil {
			return err
		}
		streams := []*facility.IngestStream{
			{Name: "htm", Src: "daq", Dst: "ddn", Size: 4 * units.MB,
				Rate: units.PerDay(perDay), Batch: 6 * time.Hour},
			{Name: "others", Src: "daq", Dst: "ibm", Size: 100 * units.MB,
				Rate: units.PerDay(2 * perDay), Batch: 6 * time.Hour},
		}
		res := s.RunIngest(streams, units.Days(days))
		fmt.Printf("after %.0f days:\n", days)
		fmt.Printf("  DDN: %s / %s (%.1f%%), rejected %d\n", s.DDN.Used().SI(),
			s.DDN.Capacity.SI(), 100*s.DDN.Utilization(), res["htm"].Rejected)
		fmt.Printf("  IBM: %s / %s (%.1f%%), rejected %d\n", s.IBM.Used().SI(),
			s.IBM.Capacity.SI(), 100*s.IBM.Utilization(), res["others"].Rejected)
		return nil

	case "transfer":
		results := facility.TransferStudy([]facility.TransferCase{
			{Label: "ideal 10 GbE", Bytes: units.PB, Efficiency: 1.0},
			{Label: "62% sustained efficiency", Bytes: units.PB, Efficiency: 0.62},
			{Label: "shared with 3 other flows", Bytes: units.PB, Efficiency: 1.0, Parallel: 4},
		}, units.Gbps(10))
		fmt.Println("1 PB over 10 GbE (the paper's slide-11 arithmetic):")
		for _, r := range results {
			fmt.Printf("  %-28s %6.1f days\n", r.Label, r.Days)
		}
		m := facility.LSDFCluster()
		fmt.Printf("  %-28s %6.1f days\n", "process locally (60 nodes)",
			m.TimeFor(units.PB, 60).Hours()/24)
		return nil

	case "growth":
		points := facility.RunGrowth(facility.LSDFGrowth())
		fmt.Println("date       installed   stored      ingest       utilization")
		for i, p := range points {
			if i%6 != 0 { // print twice a year
				continue
			}
			fmt.Printf("%s  %-10s  %-10s  %5.2f PB/yr  %5.1f%%\n",
				p.When.Format("2006-01"), p.Installed.SI(), p.Stored.SI(),
				float64(p.IngestPerYear)/float64(units.PB), 100*p.Utilization)
		}
		return nil
	}
	return fmt.Errorf("unknown scenario %q", scenario)
}

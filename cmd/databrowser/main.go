// Command databrowser is the end-user DataBrowser (slide 9) over a
// lsdfctl state directory: list and inspect data joined with its
// metadata, preview objects, tag datasets — or serve the JSON web API
// the paper announces as the upcoming web GUI.
//
//	databrowser -state /tmp/lsdf list /data
//	databrowser -state /tmp/lsdf preview /data/img1.raw
//	databrowser -state /tmp/lsdf tag /data/img1.raw analyze
//	databrowser -state /tmp/lsdf serve :8080
//
// With -server, the browsing commands run against a live lsdfd
// gateway as an authenticated tenant; preview uses an HTTP range
// read, so only the first bytes cross the wire:
//
//	databrowser -server http://lsdf.example:7420 -token SECRET list /data
//	databrowser -server http://lsdf.example:7420 -token SECRET preview /data/img1.raw
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/adal"
	"repro/internal/databrowser"
	"repro/internal/gateway/client"
	"repro/internal/metadata"
)

func main() {
	state := flag.String("state", "", "state directory shared with lsdfctl")
	server := flag.String("server", "", "lsdfd gateway URL: browse remotely instead of a local -state")
	token := flag.String("token", "", "bearer token for -server")
	flag.Parse()
	if (*state == "" && *server == "") || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, `usage: databrowser -state DIR COMMAND [args]
       databrowser -server URL -token SECRET COMMAND [args]

commands:
  list PREFIX       browse objects joined with metadata
  preview PATH      print the first 256 bytes of an object
  tag PATH TAG      tag the dataset at PATH
  serve ADDR        serve the JSON web API (local mode only;
                    GET /list, /stat, /dataset, /find; POST /tag)`)
		os.Exit(2)
	}
	var err error
	if *server != "" {
		err = runRemote(*server, *token, flag.Args())
	} else {
		err = run(*state, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "databrowser:", err)
		os.Exit(1)
	}
}

// runRemote browses through the lsdfd gateway: same commands, same
// output, but ACL-scoped to the token's tenant and rate-limited like
// any other client.
func runRemote(server, token string, args []string) error {
	c, err := client.New(server, token, client.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		prefix := "/data"
		if len(rest) > 0 {
			prefix = rest[0]
		}
		infos, err := c.List(ctx, prefix)
		if err != nil {
			return err
		}
		for _, info := range infos {
			meta := "(unregistered)"
			if info.DatasetID != "" {
				meta = fmt.Sprintf("%s %s [%s]", info.DatasetID, info.Project, strings.Join(info.Tags, ","))
			}
			fmt.Printf("%-10s  %-40s  %s\n", info.Size.SI(), info.Path, meta)
		}
		return nil
	case "preview":
		if len(rest) != 1 {
			return fmt.Errorf("preview: need PATH")
		}
		rc, err := c.GetRange(ctx, rest[0], 0, 256)
		if err != nil {
			return err
		}
		defer rc.Close()
		head, err := io.ReadAll(rc)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", head)
		return nil
	case "tag":
		if len(rest) != 2 {
			return fmt.Errorf("tag: need PATH TAG")
		}
		_, err := c.Tag(ctx, rest[0], rest[1])
		return err
	case "serve":
		return fmt.Errorf("serve is local-only: run it on the facility host, or point clients at lsdfd itself")
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func run(state string, args []string) error {
	local, err := adal.NewLocalFS("posix", filepath.Join(state, "objects"))
	if err != nil {
		return err
	}
	layer := adal.NewLayer()
	if err := layer.Mount("/", local); err != nil {
		return err
	}
	meta := metadata.NewStore()
	dump := filepath.Join(state, "metadata.json")
	if f, err := os.Open(dump); err == nil {
		defer f.Close()
		if err := meta.Import(f); err != nil {
			return err
		}
	}
	b := databrowser.New(layer, meta)

	save := func() error {
		tmp := dump + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := meta.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, dump)
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		prefix := "/data"
		if len(rest) > 0 {
			prefix = rest[0]
		}
		entries, err := b.List(prefix)
		if err != nil {
			return err
		}
		for _, e := range entries {
			meta := "(unregistered)"
			if e.Registered {
				meta = fmt.Sprintf("%s %s [%s]", e.DatasetID, e.Project, strings.Join(e.Tags, ","))
			}
			fmt.Printf("%-10s  %-40s  %s\n", e.Size.SI(), e.Path, meta)
		}
		return nil
	case "preview":
		if len(rest) != 1 {
			return fmt.Errorf("preview: need PATH")
		}
		head, err := b.Preview(rest[0], 256)
		if err != nil {
			return err
		}
		fmt.Printf("%q\n", head)
		return nil
	case "tag":
		if len(rest) != 2 {
			return fmt.Errorf("tag: need PATH TAG")
		}
		if err := b.Tag(rest[0], rest[1]); err != nil {
			return err
		}
		return save()
	case "serve":
		if len(rest) != 1 {
			return fmt.Errorf("serve: need ADDR (e.g. :8080)")
		}
		fmt.Printf("databrowser web API on %s\n", rest[0])
		return http.ListenAndServe(rest[0], b.Handler())
	}
	return fmt.Errorf("unknown command %q", cmd)
}

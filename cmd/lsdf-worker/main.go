// Command lsdf-worker runs one MapReduce worker runtime out of
// process: it registers with a compute master (an lsdfd started with
// -compute-addr, or any mapreduce.Master), heartbeats for task
// leases, executes map/reduce attempts against the master's DFS
// through the /dfsproxy plane, and serves its spilled shuffle
// segments to peer reducers.
//
//	lsdfd -addr :7420 -token s3cret -compute-addr 10.0.0.1:7421
//	lsdf-worker -master http://10.0.0.1:7421 -id w1 -slots 4
//
// Workers resolve job templates from the builtin registry; a facility
// with custom templates runs a custom worker binary that registers
// the same templates before StartWorker (functions cannot cross the
// wire).
//
// SIGTERM/SIGINT close gracefully: running attempts finish and report
// before the process exits. A killed worker is detected by the master
// through lease expiry and its tasks re-executed elsewhere.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/obs"
)

func main() {
	var (
		master    = flag.String("master", "", "compute master URL (required)")
		id        = flag.String("id", "", "worker ID (default: host-pid derived)")
		node      = flag.String("node", "", "datanode this worker is co-located with (locality hint)")
		slots     = flag.Int("slots", 0, "concurrent task slots (default 2)")
		stepDelay = flag.Duration("step-delay", 0, "artificial per-record delay (straggler experiments)")
		debugAddr = flag.String("debug-addr", "", "operator debug listener: pprof and this worker's /metrics")
	)
	flag.Parse()
	if err := run(*master, *id, *node, *slots, *stepDelay, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "lsdf-worker:", err)
		os.Exit(1)
	}
}

func run(master, id, node string, slots int, stepDelay time.Duration, debugAddr string) error {
	if master == "" {
		return fmt.Errorf("-master URL is required")
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := mapreduce.StartWorker(mapreduce.WorkerConfig{
		ID:        id,
		Master:    master,
		Node:      node,
		Slots:     slots,
		StepDelay: stepDelay,
	})
	if err != nil {
		return err
	}
	log.Printf("lsdf-worker: %s registered with %s (shuffle on %s)", id, master, w.Addr())

	if debugAddr != "" {
		w.Obs().RegisterRuntimeMetrics()
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		log.Printf("lsdf-worker: debug listener (pprof, /metrics) on %s", dln.Addr())
		go func() {
			_ = http.Serve(dln, obs.DebugHandler(w.Obs(), nil))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	log.Printf("lsdf-worker: %s draining", id)
	w.Close()
	return nil
}

// Benchmarks: one per reproduced table/figure (E1-E13, see DESIGN.md
// §4 and EXPERIMENTS.md). Each benchmark regenerates its experiment
// and reports the headline quantity as a custom metric, so
// `go test -bench=.` re-derives the paper's evaluation end to end.
package lsdf_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/facility"
	"repro/internal/units"
)

// run executes one experiment per iteration and fails the benchmark
// on error.
func run(b *testing.B, fn func() (*experiments.Table, error)) *experiments.Table {
	b.Helper()
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkE1IngestHTM regenerates slide 5: ≈2 TB/day of 4 MB
// microscope frames sustained through the backbone and the real
// pipeline.
func BenchmarkE1IngestHTM(b *testing.B) {
	tbl := run(b, experiments.E1IngestHTM)
	objs, _ := strconv.Atoi(strings.TrimSuffix(tbl.Rows[0][1], "/day"))
	b.ReportMetric(float64(objs), "objects/simday")
}

// BenchmarkE2FacilityFill regenerates slide 7: the 1.9 PB disk tier
// under the 2011 load with tape migration.
func BenchmarkE2FacilityFill(b *testing.B) {
	run(b, experiments.E2FacilityFill)
}

// BenchmarkE3Metadata regenerates slide 8: 100k-dataset metadata DB
// with indexed queries.
func BenchmarkE3Metadata(b *testing.B) {
	run(b, experiments.E3Metadata)
}

// BenchmarkE4ADAL regenerates slides 9-10: the unified access layer
// op mix across backends and through auth.
func BenchmarkE4ADAL(b *testing.B) {
	run(b, experiments.E4ADAL)
}

// BenchmarkE5Transfer regenerates slide 11: days to move 1 PB over
// 10 GbE under efficiency and contention.
func BenchmarkE5Transfer(b *testing.B) {
	tbl := run(b, experiments.E5Transfer)
	days, _ := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[1][1], " days"), 64)
	b.ReportMetric(days, "days/PB-realistic")
}

// BenchmarkE6MapReduceScaling regenerates slide 11: real MapReduce
// speedup at 1-8 nodes plus the 60-node projection.
func BenchmarkE6MapReduceScaling(b *testing.B) {
	run(b, experiments.E6MapReduceScaling)
}

// BenchmarkE7TagTriggeredWorkflow regenerates slide 12: DataBrowser
// tagging driving workflow runs with provenance.
func BenchmarkE7TagTriggeredWorkflow(b *testing.B) {
	run(b, experiments.E7TagTriggeredWorkflow)
}

// BenchmarkE8Visualization regenerates slide 13: the MIP job and the
// 1 TB / 20 min projection.
func BenchmarkE8Visualization(b *testing.B) {
	tbl := run(b, experiments.E8Visualization)
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "60-node model") {
			m, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], " min"), 64)
			b.ReportMetric(m, "min/TB-60nodes")
		}
	}
}

// BenchmarkE9DNASequencing regenerates slide 13: k-mer spectrum and
// coverage MapReduce jobs.
func BenchmarkE9DNASequencing(b *testing.B) {
	run(b, experiments.E9DNASequencing)
}

// BenchmarkE10CloudDeploy regenerates slide 11: VM deployment latency
// under cold/warm caches and placement policies.
func BenchmarkE10CloudDeploy(b *testing.B) {
	run(b, experiments.E10CloudDeploy)
}

// BenchmarkE11Growth regenerates slide 14: the 2011-2014 capacity and
// ingest plan.
func BenchmarkE11Growth(b *testing.B) {
	run(b, experiments.E11Growth)
}

// BenchmarkE12Rules regenerates slide 14's outlook: policy-driven
// replication and integrity auditing.
func BenchmarkE12Rules(b *testing.B) {
	run(b, experiments.E12Rules)
}

// BenchmarkE13TieredDataPath regenerates slide 6 on the live path:
// watermark migration under sustained ingest plus transparent,
// deduplicated recall.
func BenchmarkE13TieredDataPath(b *testing.B) {
	run(b, experiments.E13TieredDataPath)
}

// BenchmarkE16HotSetReadCache regenerates the hot-set read cache
// study: zipf reads from a replica-less site, direct vs cached, with
// a mid-run remote-site outage. Reports the WAN byte reduction.
func BenchmarkE16HotSetReadCache(b *testing.B) {
	tbl := run(b, experiments.E16HotSetReadCache)
	for _, row := range tbl.Rows {
		if row[0] == "WAN reduction" {
			red, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "x"), 64)
			b.ReportMetric(red, "WAN-reduction-x")
		}
	}
}

// BenchmarkTransferArithmetic isolates the fluid-model core of E5 so
// regressions in the max-min solver are visible without the full
// experiment harness.
func BenchmarkTransferArithmetic(b *testing.B) {
	cases := []facility.TransferCase{
		{Label: "ideal", Bytes: units.PB, Efficiency: 1.0},
		{Label: "shared", Bytes: units.PB, Parallel: 8},
	}
	for i := 0; i < b.N; i++ {
		facility.TransferStudy(cases, units.Gbps(10))
	}
}

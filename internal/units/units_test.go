package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstants(t *testing.T) {
	if MiB != 1048576 {
		t.Fatalf("MiB = %d", MiB)
	}
	if TB != 1_000_000_000_000 {
		t.Fatalf("TB = %d", TB)
	}
	if PiB != 1125899906842624 {
		t.Fatalf("PiB = %d", PiB)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1.00KiB"},
		{4 * MiB, "4.00MiB"},
		{110 * TB, "100.04TiB"},
		{-2 * GiB, "-2.00GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{2 * TB, "2.00TB"},
		{500 * TB, "500.00TB"},
		{1400 * TB, "1.40PB"},
		{4 * MB, "4.00MB"},
		{999, "999B"},
	}
	for _, c := range cases {
		if got := c.in.SI(); got != c.want {
			t.Errorf("SI(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"110TB", 110 * TB},
		{"64MiB", 64 * MiB},
		{"4 MB", 4 * MB},
		{"512", 512},
		{"1.5KiB", 1536},
		{" 2PB ", 2 * PB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12QB", "--3MB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): expected error", in)
		}
	}
}

func TestParseRoundTripQuick(t *testing.T) {
	// Any non-negative byte count formatted as a bare integer parses back
	// to itself.
	f := func(n int64) bool {
		if n < 0 {
			n = -n
		}
		b := Bytes(n)
		got, err := ParseBytes(fmtInt(n))
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fmtInt(n int64) string {
	// strconv via Sprintf avoided to keep the property independent of
	// the formatting path under test.
	if n == 0 {
		return "0"
	}
	var buf [32]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestGbps(t *testing.T) {
	r := Gbps(10)
	if math.Abs(float64(r)-1.25e9) > 1 {
		t.Fatalf("10 Gbps = %f B/s, want 1.25e9", float64(r))
	}
}

func TestTimeFor(t *testing.T) {
	// The paper's arithmetic: 1 PB over an ideal 10 Gb/s link.
	d := Gbps(10).TimeFor(1 * PB)
	days := d.Hours() / 24
	if days < 9.2 || days > 9.3 {
		t.Fatalf("1PB @ 10Gbps = %.3f days, want ~9.26", days)
	}
}

func TestTimeForZeroRate(t *testing.T) {
	if d := Rate(0).TimeFor(GiB); d < time.Duration(1<<61) {
		t.Fatalf("zero rate should be 'never', got %v", d)
	}
}

func TestBytesIn(t *testing.T) {
	got := PerDay(2 * TB).BytesIn(24 * time.Hour)
	// Allow float rounding of one part in 1e9.
	if diff := got - 2*TB; diff < -2000 || diff > 2000 {
		t.Fatalf("2TB/day over a day = %d, want ~%d", got, 2*TB)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{Rate(1.25e9), "1.25GB/s"},
		{Rate(14e6), "14.00MB/s"},
		{Rate(1500), "1.50KB/s"},
		{Rate(3), "3.00B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestDaysYears(t *testing.T) {
	if Days(1) != 24*time.Hour {
		t.Fatal("Days(1)")
	}
	if Years(1) != 365*24*time.Hour {
		t.Fatal("Years(1)")
	}
}

func TestTimeForRoundTripQuick(t *testing.T) {
	// r.BytesIn(r.TimeFor(b)) ~= b for sane magnitudes.
	f := func(megs uint16, mbps uint16) bool {
		b := Bytes(int64(megs)+1) * MiB
		r := Rate(float64(mbps)+1) * Rate(MB)
		back := r.BytesIn(r.TimeFor(b))
		diff := float64(back-b) / float64(b)
		return math.Abs(diff) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

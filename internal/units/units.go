// Package units provides the shared vocabulary of the LSDF codebase:
// byte sizes, data rates, and helpers to format and parse them.
//
// Sizes use binary (IEC) multiples because storage arrays, HDFS block
// sizes and tape capacities in the paper are all specified that way.
// Rates are expressed in bytes per second; network link speeds, which
// vendors quote in decimal bits per second (e.g. "10 GE"), have
// dedicated constructors so that call sites stay unambiguous.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Bytes is a byte count. It is a signed integer so that deltas
// (frees, truncations) can be represented naturally.
type Bytes int64

// Binary (IEC) multiples.
const (
	B   Bytes = 1
	KiB       = 1024 * B
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
	TiB       = 1024 * GiB
	PiB       = 1024 * TiB
)

// Decimal (SI) multiples, used where the paper quotes decimal figures
// (e.g. "2 TB/day", "1 PB").
const (
	KB Bytes = 1000 * B
	MB       = 1000 * KB
	GB       = 1000 * MB
	TB       = 1000 * GB
	PB       = 1000 * TB
)

// String renders the size with the largest binary unit that keeps the
// mantissa >= 1, e.g. "1.50GiB".
func (b Bytes) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= PiB:
		return fmt.Sprintf("%.2fPiB", float64(b)/float64(PiB))
	case abs >= TiB:
		return fmt.Sprintf("%.2fTiB", float64(b)/float64(TiB))
	case abs >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case abs >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case abs >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// SI renders the size with the largest decimal unit, e.g. "2.00TB",
// matching how the paper reports facility capacities.
func (b Bytes) SI() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= PB:
		return fmt.Sprintf("%.2fPB", float64(b)/float64(PB))
	case abs >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case abs >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case abs >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case abs >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Float returns the size as a float64 byte count.
func (b Bytes) Float() float64 { return float64(b) }

// suffixes accepted by ParseBytes, longest first so that "KiB" wins
// over "B" during matching.
var byteSuffixes = []struct {
	suffix string
	mult   Bytes
}{
	{"PiB", PiB}, {"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
	{"PB", PB}, {"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB},
	{"B", B},
}

// ParseBytes parses strings such as "110TB", "64MiB", "4 MB", "512".
// A bare number is a byte count.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	for _, sf := range byteSuffixes {
		if strings.HasSuffix(t, sf.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(t, sf.suffix))
			f, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse %q: %w", s, err)
			}
			return Bytes(f * float64(sf.mult)), nil
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %w", s, err)
	}
	return Bytes(n), nil
}

// Rate is a data rate in bytes per second.
type Rate float64

// BytesPerSecond constructs a Rate from a byte count per second.
func BytesPerSecond(b Bytes) Rate { return Rate(b) }

// BitsPerSecond constructs a Rate from a bit rate, as network links are
// quoted (10 Gb/s Ethernet = 1.25e9 B/s).
func BitsPerSecond(bits float64) Rate { return Rate(bits / 8) }

// Gbps constructs a Rate from decimal gigabits per second.
func Gbps(g float64) Rate { return BitsPerSecond(g * 1e9) }

// PerDay constructs a Rate from a byte volume per 24 h, as the paper
// quotes ingest rates ("2 TB/day").
func PerDay(b Bytes) Rate { return Rate(float64(b) / (24 * 3600)) }

// String renders the rate in the most natural decimal unit.
func (r Rate) String() string {
	switch {
	case r >= Rate(GB):
		return fmt.Sprintf("%.2fGB/s", float64(r)/float64(GB))
	case r >= Rate(MB):
		return fmt.Sprintf("%.2fMB/s", float64(r)/float64(MB))
	case r >= Rate(KB):
		return fmt.Sprintf("%.2fKB/s", float64(r)/float64(KB))
	}
	return fmt.Sprintf("%.2fB/s", float64(r))
}

// TimeFor returns how long moving b bytes takes at rate r.
// A zero or negative rate yields an infinite-like sentinel of 1<<62 ns
// rather than dividing by zero; callers treat it as "never".
func (r Rate) TimeFor(b Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(1 << 62)
	}
	sec := float64(b) / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// BytesIn returns how many bytes flow in d at rate r.
func (r Rate) BytesIn(d time.Duration) Bytes {
	return Bytes(float64(r) * d.Seconds())
}

// Days is a convenience for expressing multi-day simulated horizons.
func Days(n float64) time.Duration {
	return time.Duration(n * 24 * float64(time.Hour))
}

// Years approximates n years as 365 days each; good enough for the
// paper's capacity-planning horizons.
func Years(n float64) time.Duration { return Days(n * 365) }

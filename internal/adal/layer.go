package adal

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/units"
)

// Layer federates backends under one namespace through a mount table
// with longest-prefix resolution — the "unified access layer" of
// slide 9. A path like /hdfs/exp/run1 resolves to the backend mounted
// at /hdfs with backend-relative path /exp/run1.
type Layer struct {
	mu     sync.RWMutex
	mounts []mount // sorted by descending prefix length
}

type mount struct {
	prefix  string
	backend Backend
}

// NewLayer creates an empty federation.
func NewLayer() *Layer { return &Layer{} }

// Mount attaches a backend at prefix (e.g. "/gpfs"). Prefixes must be
// absolute, must not collide exactly, and nest by longest match.
func (l *Layer) Mount(prefix string, b Backend) error {
	if !strings.HasPrefix(prefix, "/") {
		return fmt.Errorf("adal: mount prefix %q must be absolute", prefix)
	}
	prefix = strings.TrimRight(prefix, "/")
	if prefix == "" {
		prefix = "/"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, m := range l.mounts {
		if m.prefix == prefix {
			return fmt.Errorf("adal: prefix %q already mounted (%s)", prefix, m.backend.Name())
		}
	}
	l.mounts = append(l.mounts, mount{prefix: prefix, backend: b})
	sort.Slice(l.mounts, func(i, j int) bool {
		return len(l.mounts[i].prefix) > len(l.mounts[j].prefix)
	})
	return nil
}

// Unmount detaches the backend at prefix (exact match, after the
// same normalization Mount applies). In-flight operations that
// already resolved keep their backend; subsequent resolutions fall
// through to the next-longest mount.
func (l *Layer) Unmount(prefix string) error {
	if !strings.HasPrefix(prefix, "/") {
		return fmt.Errorf("adal: unmount prefix %q must be absolute", prefix)
	}
	prefix = strings.TrimRight(prefix, "/")
	if prefix == "" {
		prefix = "/"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, m := range l.mounts {
		if m.prefix == prefix {
			l.mounts = append(l.mounts[:i], l.mounts[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrNoMount, prefix)
}

// Mounts lists mount prefixes, longest first.
func (l *Layer) Mounts() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.mounts))
	for i, m := range l.mounts {
		out[i] = m.prefix
	}
	return out
}

// Resolve maps a federated path to (backend, backend-relative path).
func (l *Layer) Resolve(path string) (Backend, string, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, m := range l.mounts {
		if m.prefix == "/" {
			return m.backend, path, nil
		}
		if path == m.prefix || strings.HasPrefix(path, m.prefix+"/") {
			rel := strings.TrimPrefix(path, m.prefix)
			if rel == "" {
				rel = "/"
			}
			return m.backend, rel, nil
		}
	}
	return nil, "", fmt.Errorf("%w: %q", ErrNoMount, path)
}

// Create opens a new object for writing at the federated path.
func (l *Layer) Create(path string) (io.WriteCloser, error) {
	b, rel, err := l.Resolve(path)
	if err != nil {
		return nil, err
	}
	return b.Create(rel)
}

// Open reads an object at the federated path.
func (l *Layer) Open(path string) (io.ReadCloser, error) {
	b, rel, err := l.Resolve(path)
	if err != nil {
		return nil, err
	}
	return b.Open(rel)
}

// CtxOpener is the structural upgrade a backend implements to see
// the caller's context (trace spans, cancellation) on reads. The
// Backend interface itself stays context-free — most backends are
// local and synchronous — but the read cache and the federated
// replica backend record where WAN time goes.
type CtxOpener interface {
	OpenCtx(ctx context.Context, path string) (io.ReadCloser, error)
}

// OpenCtx is Open with a context: backends that implement CtxOpener
// receive it (and with it the request's trace), others are opened
// plainly. Untraced callers can keep using Open — the two paths
// return identical bytes.
func (l *Layer) OpenCtx(ctx context.Context, path string) (io.ReadCloser, error) {
	b, rel, err := l.Resolve(path)
	if err != nil {
		return nil, err
	}
	if co, ok := b.(CtxOpener); ok {
		return co.OpenCtx(ctx, rel)
	}
	return b.Open(rel)
}

// Stat describes an object; the returned Path is the federated one.
func (l *Layer) Stat(path string) (FileInfo, error) {
	b, rel, err := l.Resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	info, err := b.Stat(rel)
	if err != nil {
		return FileInfo{}, err
	}
	info.Path = path
	return info, nil
}

// List enumerates objects under a federated prefix. The prefix must
// resolve to a single mount; cross-mount listing goes through Mounts.
func (l *Layer) List(prefix string) ([]FileInfo, error) {
	b, rel, err := l.Resolve(prefix)
	if err != nil {
		return nil, err
	}
	infos, err := b.List(rel)
	if err != nil {
		return nil, err
	}
	mountPrefix := strings.TrimSuffix(prefix, rel)
	for i := range infos {
		infos[i].Path = mountPrefix + infos[i].Path
	}
	return infos, nil
}

// Remove deletes an object at the federated path.
func (l *Layer) Remove(path string) error {
	b, rel, err := l.Resolve(path)
	if err != nil {
		return err
	}
	return b.Remove(rel)
}

// copyBufPool recycles transfer buffers across concurrent ingest
// workers and audits. io.CopyBuffer skips the buffer entirely when
// the source implements io.WriterTo (the DFS reader does, streaming
// block by block), so the pool only pays for backends without one.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 256*1024)
		return &b
	},
}

func pooledCopy(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(dst, src, *bp)
	copyBufPool.Put(bp)
	return n, err
}

// PooledCopy is io.Copy through the shared transfer-buffer pool: when
// neither end short-circuits the buffer (src is a WriterTo or dst a
// ReaderFrom), the 256 KiB staging buffer is recycled instead of
// allocated per copy. Read-path consumers (federated reads, cache
// fills, verify hashes) use it so sustained read traffic stops
// churning the allocator.
func PooledCopy(dst io.Writer, src io.Reader) (int64, error) {
	return pooledCopy(dst, src)
}

// WriteChecksummed streams r into path, returning the byte count and
// hex SHA-256 — the ingest pipeline's canonical write primitive.
func (l *Layer) WriteChecksummed(path string, r io.Reader) (units.Bytes, string, error) {
	w, err := l.Create(path)
	if err != nil {
		return 0, "", err
	}
	h := sha256.New()
	n, err := pooledCopy(io.MultiWriter(w, h), r)
	if err != nil {
		w.Close()
		return 0, "", fmt.Errorf("adal: writing %s: %w", path, err)
	}
	if err := w.Close(); err != nil {
		return 0, "", err
	}
	return units.Bytes(n), hex.EncodeToString(h.Sum(nil)), nil
}

// NewChecksumWriter wraps w so every written byte is SHA-256-hashed
// in passing; Close closes w and then hands (bytes, hex digest,
// close error) to commit, whose return value becomes Close's result.
// It is the streaming-writer dual of WriteChecksummed, used by
// backends that must register a content hash at commit time.
func NewChecksumWriter(w io.WriteCloser, commit func(n units.Bytes, sum string, err error) error) io.WriteCloser {
	return &checksumWriter{w: w, h: sha256.New(), commit: commit}
}

type checksumWriter struct {
	w      io.WriteCloser
	h      hash.Hash
	n      int64
	commit func(units.Bytes, string, error) error
	closed bool
}

func (cw *checksumWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.h.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

func (cw *checksumWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	err := cw.w.Close()
	return cw.commit(units.Bytes(cw.n), hex.EncodeToString(cw.h.Sum(nil)), err)
}

// Checksum reads an object and returns its hex SHA-256, used by the
// rule engine's integrity audits.
func (l *Layer) Checksum(path string) (string, error) {
	r, err := l.Open(path)
	if err != nil {
		return "", err
	}
	defer r.Close()
	h := sha256.New()
	if _, err := pooledCopy(h, r); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// CopyObject copies one object across mounts (replication action).
// The copy is streamed chunk by chunk through a pooled buffer — the
// object never materializes in memory — and a failed copy removes the
// partial destination, so callers never observe a half-written
// replica.
func (l *Layer) CopyObject(src, dst string) error {
	_, _, err := l.CopyObjectChecksummed(src, dst)
	return err
}

// CopyObjectChecksummed is CopyObject returning the byte count and
// the hex SHA-256 of the copied content, so replication callers can
// verify the new replica against the catalog without a second read.
func (l *Layer) CopyObjectChecksummed(src, dst string) (units.Bytes, string, error) {
	r, err := l.Open(src)
	if err != nil {
		return 0, "", err
	}
	defer r.Close()
	w, err := l.Create(dst)
	if err != nil {
		return 0, "", err
	}
	h := sha256.New()
	n, err := pooledCopy(io.MultiWriter(w, h), r)
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err != nil {
		_ = l.Remove(dst) // best effort: never leave a partial replica
		return 0, "", fmt.Errorf("adal: copying %s -> %s: %w", src, dst, err)
	}
	return units.Bytes(n), hex.EncodeToString(h.Sum(nil)), nil
}

// ParseURI splits "lsdf://host/path" into its host and federated
// path. The paper exposes LSDF through open protocols; this is the
// address form used by the DataBrowser and CLI tools.
func ParseURI(uri string) (host, path string, err error) {
	const scheme = "lsdf://"
	if !strings.HasPrefix(uri, scheme) {
		return "", "", fmt.Errorf("adal: URI %q lacks lsdf:// scheme", uri)
	}
	rest := strings.TrimPrefix(uri, scheme)
	host, path, ok := strings.Cut(rest, "/")
	if !ok || host == "" {
		return "", "", fmt.Errorf("adal: URI %q lacks host or path", uri)
	}
	return host, "/" + path, nil
}

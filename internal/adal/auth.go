package adal

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Credentials identify a caller to an Authenticator.
type Credentials struct {
	User  string
	Token string
}

// Principal is an authenticated identity.
type Principal struct {
	User   string
	Groups []string
}

// Authenticator validates credentials. Implementations are pluggable,
// per the paper's "extensible to support new ... authentication
// mechanisms".
type Authenticator interface {
	Authenticate(c Credentials) (Principal, error)
}

// AnonAuth accepts anyone as the given user (open community data).
type AnonAuth struct{ As string }

// Authenticate implements Authenticator.
func (a AnonAuth) Authenticate(Credentials) (Principal, error) {
	return Principal{User: a.As}, nil
}

// TokenAuth validates static bearer tokens, the mechanism the LSDF
// web services started with.
type TokenAuth struct {
	mu     sync.RWMutex
	tokens map[string]Principal
}

// NewTokenAuth creates an empty token table.
func NewTokenAuth() *TokenAuth {
	return &TokenAuth{tokens: make(map[string]Principal)}
}

// Register associates a token with a principal.
func (t *TokenAuth) Register(token string, p Principal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tokens[token] = p
}

// Authenticate implements Authenticator.
func (t *TokenAuth) Authenticate(c Credentials) (Principal, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	p, ok := t.tokens[c.Token]
	if !ok {
		return Principal{}, fmt.Errorf("%w: bad token for user %q", ErrDenied, c.User)
	}
	if c.User != "" && c.User != p.User {
		return Principal{}, fmt.Errorf("%w: token/user mismatch", ErrDenied)
	}
	return p, nil
}

// Permission bits for ACL entries.
type Permission int

// Permissions compose with bitwise or.
const (
	PermRead Permission = 1 << iota
	PermWrite
)

// ACL authorizes users against path prefixes. The longest matching
// prefix with an entry for the user (or group) decides.
type ACL struct {
	mu      sync.RWMutex
	entries []aclEntry
}

type aclEntry struct {
	prefix    string
	principal string // user or "@group"
	perm      Permission
}

// NewACL creates an empty ACL (default deny).
func NewACL() *ACL { return &ACL{} }

// Allow grants perm on prefix to a user ("garcia") or group ("@itg").
func (a *ACL) Allow(principal, prefix string, perm Permission) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, aclEntry{prefix: prefix, principal: principal, perm: perm})
}

// Check reports whether p holds perm on path.
func (a *ACL) Check(p Principal, path string, perm Permission) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, e := range a.entries {
		if !strings.HasPrefix(path, e.prefix) {
			continue
		}
		if e.perm&perm != perm {
			continue
		}
		if e.principal == p.User {
			return true
		}
		if strings.HasPrefix(e.principal, "@") {
			for _, g := range p.Groups {
				if "@"+g == e.principal {
					return true
				}
			}
		}
	}
	return false
}

// AuthLayer guards a Layer with authentication and authorization.
// Every operation takes the caller's credentials.
type AuthLayer struct {
	layer *Layer
	authn Authenticator
	acl   *ACL
}

// NewAuthLayer wraps a layer.
func NewAuthLayer(layer *Layer, authn Authenticator, acl *ACL) *AuthLayer {
	return &AuthLayer{layer: layer, authn: authn, acl: acl}
}

// Authorize authenticates c and checks perm on path, returning the
// authenticated principal. It is the request-level entry point for
// network front ends (the lsdfd gateway) that need the identity —
// for tenancy accounting — alongside the authorization verdict.
func (al *AuthLayer) Authorize(c Credentials, path string, perm Permission) (Principal, error) {
	p, err := al.authn.Authenticate(c)
	if err != nil {
		return Principal{}, err
	}
	if !al.acl.Check(p, path, perm) {
		return Principal{}, fmt.Errorf("%w: %s on %q for %s", ErrDenied, permName(perm), path, p.User)
	}
	return p, nil
}

func (al *AuthLayer) authorize(c Credentials, path string, perm Permission) error {
	_, err := al.Authorize(c, path, perm)
	return err
}

func permName(p Permission) string {
	switch {
	case p&PermWrite != 0:
		return "write"
	case p&PermRead != 0:
		return "read"
	}
	return "none"
}

// Create opens a new object for writing after a write check.
func (al *AuthLayer) Create(c Credentials, path string) (io.WriteCloser, error) {
	if err := al.authorize(c, path, PermWrite); err != nil {
		return nil, err
	}
	return al.layer.Create(path)
}

// Open reads an object after a read check.
func (al *AuthLayer) Open(c Credentials, path string) (io.ReadCloser, error) {
	if err := al.authorize(c, path, PermRead); err != nil {
		return nil, err
	}
	return al.layer.Open(path)
}

// Stat describes an object after a read check.
func (al *AuthLayer) Stat(c Credentials, path string) (FileInfo, error) {
	if err := al.authorize(c, path, PermRead); err != nil {
		return FileInfo{}, err
	}
	return al.layer.Stat(path)
}

// List enumerates a prefix after a read check on the prefix.
func (al *AuthLayer) List(c Credentials, prefix string) ([]FileInfo, error) {
	if err := al.authorize(c, prefix, PermRead); err != nil {
		return nil, err
	}
	return al.layer.List(prefix)
}

// Remove deletes an object after a write check.
func (al *AuthLayer) Remove(c Credentials, path string) error {
	if err := al.authorize(c, path, PermWrite); err != nil {
		return err
	}
	return al.layer.Remove(path)
}

// Layer exposes the unguarded federation for trusted facility
// services (ingest, rules) that act with system authority.
func (al *AuthLayer) Layer() *Layer { return al.layer }

package adal

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/units"
)

func TestUnmount(t *testing.T) {
	l := NewLayer()
	a := NewMemFS("a")
	b := NewMemFS("b")
	if err := l.Mount("/a", a); err != nil {
		t.Fatal(err)
	}
	if err := l.Mount("/a/b", b); err != nil {
		t.Fatal(err)
	}
	// Longest prefix wins while both are mounted.
	be, rel, err := l.Resolve("/a/b/x")
	if err != nil || be.Name() != "b" || rel != "/x" {
		t.Fatalf("resolve = %v %q %v", be, rel, err)
	}
	if err := l.Unmount("/a/b/"); err != nil { // trailing slash normalizes
		t.Fatal(err)
	}
	be, rel, err = l.Resolve("/a/b/x")
	if err != nil || be.Name() != "a" || rel != "/b/x" {
		t.Fatalf("resolve after unmount = %v %q %v", be, rel, err)
	}
	if err := l.Unmount("/a/b"); !errors.Is(err, ErrNoMount) {
		t.Fatalf("double unmount err = %v", err)
	}
	if err := l.Unmount("relative"); err == nil {
		t.Fatal("relative unmount accepted")
	}
	// Remount after unmount works.
	if err := l.Mount("/a/b", b); err != nil {
		t.Fatal(err)
	}
}

// TestMountResolveListRace hammers Mount/Unmount/Resolve/List/Mounts
// concurrently (run with -race) and checks the longest-prefix
// invariant: a resolution must always land on a currently-plausible
// mount with the matching backend-relative path — never on a
// shorter prefix while a longer one it raced with was the answer the
// mount table would give for either snapshot.
func TestMountResolveListRace(t *testing.T) {
	l := NewLayer()
	a := NewMemFS("a")
	ab := NewMemFS("ab")
	abc := NewMemFS("abc")
	if err := l.Mount("/a", a); err != nil {
		t.Fatal(err)
	}
	if err := l.Mount("/a/b", ab); err != nil {
		t.Fatal(err)
	}
	// One object per backend so List has something to map.
	for _, fs := range []*MemFS{a, ab, abc} {
		w, err := fs.Create("/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(fs.Name())); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Churn: mount and unmount the deepest prefix.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < rounds; i++ {
			if err := l.Mount("/a/b/c", abc); err != nil {
				t.Errorf("mount: %v", err)
				return
			}
			if err := l.Unmount("/a/b/c"); err != nil {
				t.Errorf("unmount: %v", err)
				return
			}
		}
	}()

	// Churn unrelated prefixes; they must never affect /a resolution.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			fs := NewMemFS(fmt.Sprintf("side%d", g))
			prefix := fmt.Sprintf("/side%d", g)
			for i := 0; i < rounds; i++ {
				if err := l.Mount(prefix, fs); err != nil {
					t.Errorf("mount side: %v", err)
					return
				}
				if err := l.Unmount(prefix); err != nil {
					t.Errorf("unmount side: %v", err)
					return
				}
			}
		}()
	}

	// Readers: Resolve and List must always see a consistent
	// (backend, rel) pair for one of the valid mount-table snapshots.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				be, rel, err := l.Resolve("/a/b/c/x")
				if err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				switch be.Name() {
				case "abc":
					if rel != "/x" {
						t.Errorf("abc rel = %q", rel)
						return
					}
				case "ab":
					if rel != "/c/x" {
						t.Errorf("ab rel = %q", rel)
						return
					}
				default:
					t.Errorf("resolved to %q", be.Name())
					return
				}
				infos, err := l.List("/a/b")
				if err != nil {
					t.Errorf("list: %v", err)
					return
				}
				for _, info := range infos {
					if info.Path != "/a/b/f" {
						t.Errorf("list path = %q", info.Path)
						return
					}
				}
				_ = l.Mounts()
			}
		}()
	}
	wg.Wait()
}

// truncatedFS serves objects whose reads fail partway: the copy-path
// error-injection backend.
type truncatedFS struct {
	*MemFS
	failAfter int
}

func (f *truncatedFS) Open(path string) (io.ReadCloser, error) {
	r, err := f.MemFS.Open(path)
	if err != nil {
		return nil, err
	}
	return &truncatedReader{r: r, left: f.failAfter}, nil
}

type truncatedReader struct {
	r    io.ReadCloser
	left int
}

func (tr *truncatedReader) Read(p []byte) (int, error) {
	if tr.left <= 0 {
		return 0, errors.New("truncated: injected read failure")
	}
	if len(p) > tr.left {
		p = p[:tr.left]
	}
	n, err := tr.r.Read(p)
	tr.left -= n
	return n, err
}

func (tr *truncatedReader) Close() error { return tr.r.Close() }

func TestCopyObjectChecksummed(t *testing.T) {
	l := NewLayer()
	src := NewMemFS("src")
	dst := NewMemFS("dst")
	if err := l.Mount("/src", src); err != nil {
		t.Fatal(err)
	}
	if err := l.Mount("/dst", dst); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("stream me, don't slurp me. ", 40_000) // ~1 MiB, > one pool buffer
	wantN, wantSum, err := l.WriteChecksummed("/src/x", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	n, sum, err := l.CopyObjectChecksummed("/src/x", "/dst/x")
	if err != nil {
		t.Fatal(err)
	}
	if n != wantN || sum != wantSum {
		t.Fatalf("copy = (%d, %.12s), want (%d, %.12s)", n, sum, wantN, wantSum)
	}
	if again, err := l.Checksum("/dst/x"); err != nil || again != wantSum {
		t.Fatalf("destination checksum = %q err=%v", again, err)
	}
}

func TestCopyObjectCleansPartialDestinationOnError(t *testing.T) {
	l := NewLayer()
	bad := &truncatedFS{MemFS: NewMemFS("bad"), failAfter: 64 * 1024}
	dst := NewMemFS("dst")
	if err := l.Mount("/bad", bad); err != nil {
		t.Fatal(err)
	}
	if err := l.Mount("/dst", dst); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.WriteChecksummed("/bad/x", strings.NewReader(strings.Repeat("z", 512*1024))); err != nil {
		t.Fatal(err)
	}
	if err := l.CopyObject("/bad/x", "/dst/x"); err == nil {
		t.Fatal("copy of a failing source succeeded")
	}
	// The half-written destination must be gone, and the name free
	// for a retry.
	if _, err := l.Stat("/dst/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial destination survived: %v", err)
	}
	if w, err := l.Create("/dst/x"); err != nil {
		t.Fatalf("destination name not reusable after failed copy: %v", err)
	} else {
		w.Close()
	}
}

func TestNewChecksumWriter(t *testing.T) {
	mem := NewMemFS("m")
	inner, err := mem.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	var gotN units.Bytes
	var gotSum string
	w := NewChecksumWriter(inner, func(n units.Bytes, sum string, cerr error) error {
		gotN, gotSum = n, sum
		return cerr
	})
	io.WriteString(w, "check")
	io.WriteString(w, "sum")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if gotN != 8 {
		t.Fatalf("n = %d", gotN)
	}
	l := NewLayer()
	l.Mount("/", mem)
	want, err := l.Checksum("/x")
	if err != nil || want != gotSum {
		t.Fatalf("sum = %.12s, want %.12s (err=%v)", gotSum, want, err)
	}
}

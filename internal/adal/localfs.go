package adal

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/units"
)

// LocalFS is a backend rooted in a directory of the local filesystem,
// standing in for the facility's POSIX-mounted storage (GPFS in the
// paper). All paths are confined to the root.
type LocalFS struct {
	name string
	root string
}

// NewLocalFS creates a backend over root, which must exist.
func NewLocalFS(name, root string) (*LocalFS, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("adal: localfs root: %w", err)
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, fmt.Errorf("adal: localfs root: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("adal: localfs root %q is not a directory", root)
	}
	return &LocalFS{name: name, root: abs}, nil
}

// Name implements Backend.
func (l *LocalFS) Name() string { return l.name }

// resolve maps an ADAL path to a real path inside the root, rejecting
// traversal escapes.
func (l *LocalFS) resolve(path string) (string, error) {
	clean := filepath.Clean("/" + strings.TrimPrefix(path, "/"))
	full := filepath.Join(l.root, clean)
	if full != l.root && !strings.HasPrefix(full, l.root+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: path escapes root: %q", ErrDenied, path)
	}
	return full, nil
}

// Create implements Backend.
func (l *LocalFS) Create(path string) (io.WriteCloser, error) {
	full, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(full); err == nil {
		return nil, fmt.Errorf("%w: %s:%s", ErrExists, l.name, path)
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return nil, fmt.Errorf("adal: localfs mkdir: %w", err)
	}
	f, err := os.OpenFile(full, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("adal: localfs create: %w", err)
	}
	return f, nil
}

// Open implements Backend.
func (l *LocalFS) Open(path string) (io.ReadCloser, error) {
	full, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(full)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, l.name, path)
		}
		return nil, fmt.Errorf("adal: localfs open: %w", err)
	}
	return f, nil
}

// Stat implements Backend.
func (l *LocalFS) Stat(path string) (FileInfo, error) {
	full, err := l.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	info, err := os.Stat(full)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return FileInfo{}, fmt.Errorf("%w: %s:%s", ErrNotFound, l.name, path)
		}
		return FileInfo{}, fmt.Errorf("adal: localfs stat: %w", err)
	}
	return FileInfo{
		Path:    path,
		Size:    units.Bytes(info.Size()),
		ModTime: info.ModTime(),
		IsDir:   info.IsDir(),
	}, nil
}

// List implements Backend: a recursive walk filtered by prefix,
// returning files only.
func (l *LocalFS) List(prefix string) ([]FileInfo, error) {
	var out []FileInfo
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		logical := "/" + filepath.ToSlash(rel)
		if !strings.HasPrefix(logical, prefix) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		out = append(out, FileInfo{
			Path:    logical,
			Size:    units.Bytes(info.Size()),
			ModTime: info.ModTime(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("adal: localfs list: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove implements Backend.
func (l *LocalFS) Remove(path string) error {
	full, err := l.resolve(path)
	if err != nil {
		return err
	}
	if err := os.Remove(full); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %s:%s", ErrNotFound, l.name, path)
		}
		return fmt.Errorf("adal: localfs remove: %w", err)
	}
	return nil
}

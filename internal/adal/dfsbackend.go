package adal

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/dfs"
	"repro/internal/obs"
)

// DFSBackend exposes the Hadoop filesystem through the ADAL contract,
// which is how the paper's DataBrowser reaches HDFS data without
// Hadoop-specific client code.
type DFSBackend struct {
	name    string
	cluster *dfs.Cluster
	// hint names the datanode ADAL traffic is considered to enter
	// through (the login head nodes in the paper's architecture).
	hint string
}

// NewDFSBackend wraps a dfs cluster.
func NewDFSBackend(name string, cluster *dfs.Cluster, clientHint string) *DFSBackend {
	return &DFSBackend{name: name, cluster: cluster, hint: clientHint}
}

// Name implements Backend.
func (b *DFSBackend) Name() string { return b.name }

// Create implements Backend.
func (b *DFSBackend) Create(path string) (io.WriteCloser, error) {
	w, err := b.cluster.Create(path, b.hint)
	if err != nil {
		if errors.Is(err, dfs.ErrExists) {
			return nil, fmt.Errorf("%w: %s:%s", ErrExists, b.name, path)
		}
		return nil, err
	}
	return w, nil
}

// Open implements Backend.
func (b *DFSBackend) Open(path string) (io.ReadCloser, error) {
	r, err := b.cluster.Open(path, b.hint)
	if err != nil {
		if errors.Is(err, dfs.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, b.name, path)
		}
		return nil, err
	}
	return r, nil
}

// OpenCtx implements CtxOpener: a traced caller gets a dfs.open span
// timing replica selection and stream setup.
func (b *DFSBackend) OpenCtx(ctx context.Context, path string) (io.ReadCloser, error) {
	sp := obs.StartSpan(ctx, "dfs.open")
	sp.Annotate("%s:%s", b.name, path)
	r, err := b.Open(path)
	sp.End()
	return r, err
}

// Stat implements Backend, including the file's modification time —
// migration policies order candidates oldest-first, so a zero mtime
// here would make every DFS-backed file look infinitely old.
func (b *DFSBackend) Stat(path string) (FileInfo, error) {
	info, err := b.cluster.Stat(path)
	if err != nil {
		if errors.Is(err, dfs.ErrNotFound) {
			return FileInfo{}, fmt.Errorf("%w: %s:%s", ErrNotFound, b.name, path)
		}
		return FileInfo{}, err
	}
	return FileInfo{Path: path, Size: info.Size, ModTime: info.ModTime}, nil
}

// List implements Backend with the same FileInfo conventions as
// MemFS: complete objects only (an open file is not yet readable
// through the cluster), carrying size and modification time.
func (b *DFSBackend) List(prefix string) ([]FileInfo, error) {
	infos := b.cluster.List(prefix)
	out := make([]FileInfo, 0, len(infos))
	for _, info := range infos {
		if !info.Complete {
			continue
		}
		out = append(out, FileInfo{Path: info.Name, Size: info.Size, ModTime: info.ModTime})
	}
	return out, nil
}

// Remove implements Backend.
func (b *DFSBackend) Remove(path string) error {
	if err := b.cluster.Delete(path); err != nil {
		if errors.Is(err, dfs.ErrNotFound) {
			return fmt.Errorf("%w: %s:%s", ErrNotFound, b.name, path)
		}
		return err
	}
	return nil
}

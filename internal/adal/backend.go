// Package adal is the Abstract Data Access Layer (slides 9-10):
// "Hardware and software choices limit the access protocols and APIs
// => need a unified access layer ... low-level interface to LSDF,
// extensible to support new backends, authentication mechanisms."
//
// A Backend is one storage system (an in-memory store, a POSIX
// directory, the Hadoop filesystem). A Layer federates backends under
// one namespace via a mount table, and an AuthLayer wraps a Layer
// with pluggable authentication and path-prefix authorization.
package adal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/units"
)

// Errors shared by all backends.
var (
	ErrNotFound = errors.New("adal: not found")
	ErrExists   = errors.New("adal: already exists")
	ErrDenied   = errors.New("adal: permission denied")
	ErrNoMount  = errors.New("adal: no backend mounted for path")
)

// FileInfo describes one object.
type FileInfo struct {
	Path    string
	Size    units.Bytes
	ModTime time.Time
	IsDir   bool
}

// Backend is the minimal contract a storage system must offer to be
// reachable through ADAL. Paths are slash-separated and absolute
// within the backend.
type Backend interface {
	// Name identifies the backend in diagnostics.
	Name() string
	// Create opens a new object for writing; it fails if the path exists.
	Create(path string) (io.WriteCloser, error)
	// Open reads an existing object.
	Open(path string) (io.ReadCloser, error)
	// Stat describes an object.
	Stat(path string) (FileInfo, error)
	// List returns the objects under a prefix, sorted by path.
	List(prefix string) ([]FileInfo, error)
	// Remove deletes an object.
	Remove(path string) error
}

// MemFS is an in-memory backend: the reference implementation and the
// default store for tests and examples.
type MemFS struct {
	name  string
	mu    sync.RWMutex
	files map[string]*memFile
	clock func() time.Time
}

type memFile struct {
	data    []byte
	modTime time.Time
}

// NewMemFS creates an empty in-memory backend.
func NewMemFS(name string) *MemFS {
	return &MemFS{name: name, files: make(map[string]*memFile), clock: time.Now}
}

// SetClock injects a timestamp source (virtual time in simulations).
func (m *MemFS) SetClock(clock func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock = clock
}

// Name implements Backend.
func (m *MemFS) Name() string { return m.name }

// Create implements Backend.
func (m *MemFS) Create(path string) (io.WriteCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrExists, m.name, path)
	}
	// Reserve the name so concurrent creators collide here, not at Close.
	m.files[path] = &memFile{modTime: m.clock()}
	return &memWriter{fs: m, path: path}, nil
}

type memWriter struct {
	fs     *MemFS
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("adal: write after close: %s", w.path)
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.files[w.path] = &memFile{data: w.buf.Bytes(), modTime: w.fs.clock()}
	return nil
}

// Open implements Backend.
func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%s", ErrNotFound, m.name, path)
	}
	return io.NopCloser(bytes.NewReader(f.data)), nil
}

// Stat implements Backend.
func (m *MemFS) Stat(path string) (FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s:%s", ErrNotFound, m.name, path)
	}
	return FileInfo{Path: path, Size: units.Bytes(len(f.data)), ModTime: f.modTime}, nil
}

// List implements Backend.
func (m *MemFS) List(prefix string) ([]FileInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []FileInfo
	for p, f := range m.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: units.Bytes(len(f.data)), ModTime: f.modTime})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove implements Backend.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return fmt.Errorf("%w: %s:%s", ErrNotFound, m.name, path)
	}
	delete(m.files, path)
	return nil
}

// TotalBytes reports the stored volume (capacity accounting hooks for
// the facility layer).
func (m *MemFS) TotalBytes() units.Bytes {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n units.Bytes
	for _, f := range m.files {
		n += units.Bytes(len(f.data))
	}
	return n
}

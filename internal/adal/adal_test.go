package adal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
	"repro/internal/units"
)

func writeAll(t *testing.T, b Backend, path, data string) {
	t.Helper()
	w, err := b.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, b Backend, path string) string {
	t.Helper()
	r, err := b.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// backendContract exercises the Backend interface invariants shared by
// all implementations.
func backendContract(t *testing.T, b Backend) {
	t.Helper()
	writeAll(t, b, "/a/one", "payload-1")
	writeAll(t, b, "/a/two", "payload-two")
	writeAll(t, b, "/b/three", "3")

	if got := readAll(t, b, "/a/one"); got != "payload-1" {
		t.Fatalf("%s: read = %q", b.Name(), got)
	}
	info, err := b.Stat("/a/two")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 11 {
		t.Fatalf("%s: stat size = %d", b.Name(), info.Size)
	}
	list, err := b.List("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Path != "/a/one" || list[1].Path != "/a/two" {
		t.Fatalf("%s: list = %+v", b.Name(), list)
	}
	if _, err := b.Create("/a/one"); !errors.Is(err, ErrExists) {
		t.Fatalf("%s: duplicate create err = %v", b.Name(), err)
	}
	if _, err := b.Open("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: open missing err = %v", b.Name(), err)
	}
	if err := b.Remove("/a/one"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open("/a/one"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: open removed err = %v", b.Name(), err)
	}
	if err := b.Remove("/a/one"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("%s: double remove err = %v", b.Name(), err)
	}
}

func TestMemFSContract(t *testing.T) {
	backendContract(t, NewMemFS("mem"))
}

func TestLocalFSContract(t *testing.T) {
	fs, err := NewLocalFS("posix", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, fs)
}

func TestDFSBackendContract(t *testing.T) {
	c := dfs.NewCluster(dfs.Config{BlockSize: 1024, Replication: 2, Seed: 1})
	for i := 0; i < 4; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%d", i), "r0", units.GiB); err != nil {
			t.Fatal(err)
		}
	}
	backendContract(t, NewDFSBackend("hdfs", c, "dn0"))
}

func TestLocalFSTraversalBlocked(t *testing.T) {
	fs, err := NewLocalFS("posix", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Clean("/../etc/passwd") = /etc/passwd inside root; real escape
	// is impossible because resolution is anchored. Verify the
	// resolved path stays under root by writing and reading it back.
	writeAll(t, fs, "/../../escape", "x")
	if got := readAll(t, fs, "/escape"); got != "x" {
		t.Fatal("traversal was not anchored to root")
	}
}

func TestLayerFederation(t *testing.T) {
	layer := NewLayer()
	mem1 := NewMemFS("arrayA")
	mem2 := NewMemFS("arrayB")
	if err := layer.Mount("/ddn", mem1); err != nil {
		t.Fatal(err)
	}
	if err := layer.Mount("/ibm", mem2); err != nil {
		t.Fatal(err)
	}
	if err := layer.Mount("/ddn", mem2); err == nil {
		t.Fatal("duplicate mount accepted")
	}

	w, err := layer.Create("/ddn/exp/file1")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "hello")
	w.Close()

	// The object lives in mem1 under the backend-relative path.
	if got := readAll(t, mem1, "/exp/file1"); got != "hello" {
		t.Fatalf("backend content = %q", got)
	}
	// And resolves through the layer under the federated path.
	r, err := layer.Open("/ddn/exp/file1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "hello" {
		t.Fatalf("layer read = %q", data)
	}
	if _, err := layer.Open("/nfs/x"); !errors.Is(err, ErrNoMount) {
		t.Fatalf("unmounted err = %v", err)
	}
	infos, err := layer.List("/ddn/exp")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Path != "/ddn/exp/file1" {
		t.Fatalf("federated list = %+v", infos)
	}
	st, err := layer.Stat("/ddn/exp/file1")
	if err != nil || st.Path != "/ddn/exp/file1" || st.Size != 5 {
		t.Fatalf("stat = %+v err=%v", st, err)
	}
}

func TestLayerLongestPrefixWins(t *testing.T) {
	layer := NewLayer()
	outer := NewMemFS("outer")
	inner := NewMemFS("inner")
	if err := layer.Mount("/data", outer); err != nil {
		t.Fatal(err)
	}
	if err := layer.Mount("/data/archive", inner); err != nil {
		t.Fatal(err)
	}
	b, rel, err := layer.Resolve("/data/archive/2011/x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "inner" || rel != "/2011/x" {
		t.Fatalf("resolve = %s %q", b.Name(), rel)
	}
	b, rel, err = layer.Resolve("/data/hot/x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "outer" || rel != "/hot/x" {
		t.Fatalf("resolve = %s %q", b.Name(), rel)
	}
}

func TestWriteChecksummed(t *testing.T) {
	layer := NewLayer()
	if err := layer.Mount("/", NewMemFS("root")); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("zebrafish", 100)
	n, sum, err := layer.WriteChecksummed("/obj", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if n != units.Bytes(len(payload)) {
		t.Fatalf("n = %d", n)
	}
	again, err := layer.Checksum("/obj")
	if err != nil {
		t.Fatal(err)
	}
	if sum != again {
		t.Fatalf("checksum mismatch: %s vs %s", sum, again)
	}
	if len(sum) != 64 {
		t.Fatalf("not a sha256 hex: %q", sum)
	}
}

func TestCopyObject(t *testing.T) {
	layer := NewLayer()
	layer.Mount("/hot", NewMemFS("hot"))
	layer.Mount("/cold", NewMemFS("cold"))
	w, _ := layer.Create("/hot/f")
	io.WriteString(w, "data")
	w.Close()
	if err := layer.CopyObject("/hot/f", "/cold/f"); err != nil {
		t.Fatal(err)
	}
	a, _ := layer.Checksum("/hot/f")
	b, _ := layer.Checksum("/cold/f")
	if a != b {
		t.Fatal("replica differs from source")
	}
}

func TestParseURI(t *testing.T) {
	host, path, err := ParseURI("lsdf://lsdf.kit.edu/itg/plate1/img.raw")
	if err != nil {
		t.Fatal(err)
	}
	if host != "lsdf.kit.edu" || path != "/itg/plate1/img.raw" {
		t.Fatalf("parsed %q %q", host, path)
	}
	for _, bad := range []string{"http://x/y", "lsdf://", "lsdf://hostonly"} {
		if _, _, err := ParseURI(bad); err == nil {
			t.Errorf("ParseURI(%q) accepted", bad)
		}
	}
}

func TestTokenAuth(t *testing.T) {
	auth := NewTokenAuth()
	auth.Register("s3cret", Principal{User: "garcia", Groups: []string{"itg"}})
	p, err := auth.Authenticate(Credentials{User: "garcia", Token: "s3cret"})
	if err != nil || p.User != "garcia" {
		t.Fatalf("auth = %+v, %v", p, err)
	}
	if _, err := auth.Authenticate(Credentials{Token: "wrong"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if _, err := auth.Authenticate(Credentials{User: "mallory", Token: "s3cret"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("user mismatch err = %v", err)
	}
}

func TestACL(t *testing.T) {
	acl := NewACL()
	acl.Allow("garcia", "/itg", PermRead|PermWrite)
	acl.Allow("@bio", "/itg/shared", PermRead)
	garcia := Principal{User: "garcia"}
	biouser := Principal{User: "heidel", Groups: []string{"bio"}}
	if !acl.Check(garcia, "/itg/plate1", PermWrite) {
		t.Fatal("owner write denied")
	}
	if acl.Check(biouser, "/itg/plate1", PermRead) {
		t.Fatal("group read allowed outside grant")
	}
	if !acl.Check(biouser, "/itg/shared/x", PermRead) {
		t.Fatal("group read denied")
	}
	if acl.Check(biouser, "/itg/shared/x", PermWrite) {
		t.Fatal("group write allowed")
	}
	if acl.Check(Principal{User: "mallory"}, "/itg", PermRead) {
		t.Fatal("default deny violated")
	}
}

func TestAuthLayerEndToEnd(t *testing.T) {
	layer := NewLayer()
	layer.Mount("/", NewMemFS("root"))
	auth := NewTokenAuth()
	auth.Register("tok-g", Principal{User: "garcia"})
	auth.Register("tok-m", Principal{User: "mallory"})
	acl := NewACL()
	acl.Allow("garcia", "/itg", PermRead|PermWrite)
	al := NewAuthLayer(layer, auth, acl)

	good := Credentials{User: "garcia", Token: "tok-g"}
	bad := Credentials{User: "mallory", Token: "tok-m"}

	w, err := al.Create(good, "/itg/file")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "x")
	w.Close()

	if _, err := al.Open(bad, "/itg/file"); !errors.Is(err, ErrDenied) {
		t.Fatalf("mallory read err = %v", err)
	}
	if _, err := al.Create(bad, "/itg/other"); !errors.Is(err, ErrDenied) {
		t.Fatalf("mallory write err = %v", err)
	}
	if _, err := al.Open(Credentials{Token: "nope"}, "/itg/file"); !errors.Is(err, ErrDenied) {
		t.Fatalf("bad token err = %v", err)
	}
	r, err := al.Open(good, "/itg/file")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := al.Stat(good, "/itg/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := al.List(good, "/itg"); err != nil {
		t.Fatal(err)
	}
	if err := al.Remove(good, "/itg/file"); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSConcurrent(t *testing.T) {
	m := NewMemFS("mem")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/c/%03d", i)
			w, err := m.Create(path)
			if err != nil {
				t.Error(err)
				return
			}
			fmt.Fprintf(w, "content-%d", i)
			w.Close()
			r, err := m.Open(path)
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := io.ReadAll(r)
			r.Close()
			if string(data) != fmt.Sprintf("content-%d", i) {
				t.Errorf("mismatch at %s", path)
			}
		}(i)
	}
	wg.Wait()
	list, err := m.List("/c/")
	if err != nil || len(list) != 32 {
		t.Fatalf("list = %d, err %v", len(list), err)
	}
}

// Property: any payload written through WriteChecksummed reads back
// byte-identical with a matching checksum, through every backend type.
func TestChecksumRoundTripQuick(t *testing.T) {
	layer := NewLayer()
	layer.Mount("/", NewMemFS("root"))
	i := 0
	f := func(payload []byte) bool {
		i++
		path := fmt.Sprintf("/q/%04d", i)
		_, sum, err := layer.WriteChecksummed(path, bytes.NewReader(payload))
		if err != nil {
			return false
		}
		r, err := layer.Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		again, err := layer.Checksum(path)
		return err == nil && again == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

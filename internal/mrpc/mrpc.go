// Package mrpc is the MapReduce control and shuffle plane: the wire
// types and HTTP/JSON plumbing that connect a job master to its
// worker runtimes. The protocol is TaskTracker-shaped (Hadoop circa
// the LSDF paper): workers register, then heartbeat; heartbeats renew
// task leases and carry new assignments and kill orders back;
// completions are acknowledged explicitly so a superseded attempt
// learns to discard its output. Reduce-side shuffle is a plain GET
// for a byte range of a spill file, served by the worker that wrote
// it (or, when that worker is gone, read straight from the DFS).
//
// Everything is JSON over HTTP/1.1 on the standard library — small
// control messages where per-call overhead is dwarfed by task
// runtimes, and streamed bodies for segment and file bytes.
package mrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Protocol endpoints, rooted under /mr/v1 (control) and /dfsproxy/v1
// (storage proxy for out-of-process workers).
const (
	PathRegister  = "/mr/v1/register"
	PathHeartbeat = "/mr/v1/heartbeat"
	PathComplete  = "/mr/v1/complete"
	PathSegment   = "/mr/v1/segment"

	PathProxyStat   = "/dfsproxy/v1/stat"
	PathProxyRead   = "/dfsproxy/v1/read"
	PathProxyCreate = "/dfsproxy/v1/create"
	PathProxyDelete = "/dfsproxy/v1/delete"
	PathProxyRename = "/dfsproxy/v1/rename"
)

// Phases of a task.
const (
	PhaseMap    = "map"
	PhaseReduce = "reduce"
)

// AttemptID names one execution attempt of one task of one job.
type AttemptID struct {
	Job     string `json:"job"`
	Phase   string `json:"phase"` // PhaseMap or PhaseReduce
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
}

// String renders Hadoop-style attempt names for logs and errors.
func (a AttemptID) String() string {
	return fmt.Sprintf("%s/%s-%d.a%d", a.Job, a.Phase, a.Task, a.Attempt)
}

// TaskKey is the attempt's task, for indexing.
func (a AttemptID) TaskKey() TaskKey { return TaskKey{Job: a.Job, Phase: a.Phase, Task: a.Task} }

// TaskKey names one task independent of attempts.
type TaskKey struct {
	Job   string
	Phase string
	Task  int
}

// JobSpec is a job as it crosses the wire: a template name resolved
// against a server-side registry (job code is Go — it cannot be
// serialized; Hadoop streaming made the same trade) plus the
// per-submission parameters.
type JobSpec struct {
	Name          string            `json:"name"` // registry template
	Inputs        []string          `json:"inputs"`
	OutputDir     string            `json:"output_dir"`
	NumReducers   int               `json:"num_reducers,omitempty"`
	Args          map[string]string `json:"args,omitempty"`
	ShuffleMemory int64             `json:"shuffle_memory,omitempty"` // bytes; <=0 inherits master default
	Trace         string            `json:"trace,omitempty"`          // trace ID minted at the front door
}

// RegisterRequest announces a worker to the master.
type RegisterRequest struct {
	Worker string `json:"worker"` // unique worker ID
	Addr   string `json:"addr"`   // host:port of the worker's shuffle server
	Node   string `json:"node"`   // datanode identity for locality ("" = none)
	Slots  int    `json:"slots"`  // concurrent task capacity
}

// RegisterReply tells the worker its heartbeat cadence.
type RegisterReply struct {
	HeartbeatMS int64 `json:"heartbeat_ms"`
	LeaseMS     int64 `json:"lease_ms"` // miss heartbeats past this and the master presumes death
}

// Progress reports one running attempt inside a heartbeat. Fraction
// is in [0,1]; 0 means unknown (the master falls back to elapsed
// time for straggler detection).
type Progress struct {
	ID       AttemptID `json:"id"`
	Fraction float64   `json:"fraction"`
}

// HeartbeatRequest renews the worker's lease and advertises capacity.
type HeartbeatRequest struct {
	Worker  string     `json:"worker"`
	Free    int        `json:"free"` // open slots
	Running []Progress `json:"running,omitempty"`
}

// HeartbeatReply piggybacks scheduling on the heartbeat, as Hadoop's
// TaskTracker protocol did.
type HeartbeatReply struct {
	Assign []Assignment `json:"assign,omitempty"`
	Kill   []AttemptID  `json:"kill,omitempty"`
	// Unknown means the master has no record of this worker (it was
	// declared dead, or the master restarted); the worker must
	// re-register and treat its running attempts as orphaned.
	Unknown bool `json:"unknown,omitempty"`
}

// SplitRef describes a map task's input slice.
type SplitRef struct {
	File   string `json:"file"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
}

// SegRef locates one partition's segment inside a spill run file.
type SegRef struct {
	Off     int64 `json:"off"`
	Len     int64 `json:"len"`
	Records int   `json:"records"`
}

// RunRef is one sorted spill run: the DFS file plus per-partition
// segment geometry, annotated with the shuffle address of the worker
// that wrote it. Reducers fetch segments from Addr and fall back to
// the DFS file when the worker is gone.
type RunRef struct {
	File string   `json:"file"`
	Addr string   `json:"addr,omitempty"`
	Segs []SegRef `json:"segs"`
}

// MapOutputRef points a reduce task at one committed map task's runs.
type MapOutputRef struct {
	Task int      `json:"task"`
	Runs []RunRef `json:"runs"`
}

// Assignment is one task handed to a worker. Map assignments carry
// the split; reduce assignments carry every committed map output for
// the partition. OutFile is the attempt-scoped output name (map-only
// and reduce); the master renames the winning attempt's file into
// place, so half-written losers never shadow the real output.
type Assignment struct {
	ID         AttemptID      `json:"id"`
	Spec       JobSpec        `json:"spec"`
	ShufDir    string         `json:"shuf_dir"`
	MapOnly    bool           `json:"map_only,omitempty"`
	Split      *SplitRef      `json:"split,omitempty"`
	MapOutputs []MapOutputRef `json:"map_outputs,omitempty"`
	OutFile    string         `json:"out_file,omitempty"`
}

// TaskCounters are one attempt's metric deltas; the master folds them
// into the job's counters only when it accepts the completion, so
// duplicate and superseded attempts never double-count.
type TaskCounters struct {
	InputRecords     int64 `json:"input_records,omitempty"`
	MapOutputRecords int64 `json:"map_output_records,omitempty"`
	CombineInput     int64 `json:"combine_input,omitempty"`
	CombineOutput    int64 `json:"combine_output,omitempty"`
	ReduceGroups     int64 `json:"reduce_groups,omitempty"`
	OutputRecords    int64 `json:"output_records,omitempty"`
	ShuffleBytes     int64 `json:"shuffle_bytes,omitempty"`
	RemoteShuffle    int64 `json:"remote_shuffle,omitempty"` // segment bytes fetched over HTTP
	SpillRuns        int64 `json:"spill_runs,omitempty"`
	SpillBytes       int64 `json:"spill_bytes,omitempty"`
	MergeStreams     int64 `json:"merge_streams,omitempty"`
}

// CompleteRequest reports one finished attempt. Exactly one of the
// outcome groups is meaningful: Err for failures; Runs for map
// attempts; OutFile for reduce and map-only attempts. LostMaps lists
// map task indexes whose runs a reduce attempt could fetch neither
// from their worker nor from the DFS — the signal that re-executes
// completed maps whose output died with their worker.
type CompleteRequest struct {
	Worker   string       `json:"worker"`
	ID       AttemptID    `json:"id"`
	Err      string       `json:"err,omitempty"`
	Runs     []RunRef     `json:"runs,omitempty"`
	OutFile  string       `json:"out_file,omitempty"`
	LostMaps []int        `json:"lost_maps,omitempty"`
	Counters TaskCounters `json:"counters"`
	// Spans are the attempt's recorded trace spans (shuffle fetch,
	// sort, reduce); the master attaches them to the job's trace when
	// the spec carried a trace ID.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// CompleteReply acknowledges a completion. Accepted=false means the
// attempt was superseded (a sibling committed first, or the master
// had given the task up); the worker deletes the attempt's files.
type CompleteReply struct {
	Accepted bool `json:"accepted"`
}

// StatReply answers a proxy stat.
type StatReply struct {
	Size     int64 `json:"size"`
	Complete bool  `json:"complete"`
}

// Error is a structured protocol error.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string { return fmt.Sprintf("mrpc: %s: %s", e.Code, e.Msg) }

// ErrNotFound marks proxy lookups of absent files; it maps to and
// from dfs.ErrNotFound at the proxy boundary.
var ErrNotFound = errors.New("mrpc: not found")

// Client issues protocol calls against one peer (a master's control
// plane or a worker's shuffle server). Every call takes a context:
// cancellation and deadlines propagate into the HTTP request, so a
// hung master or shuffle peer can no longer block a worker forever.
type Client struct {
	Base string // http://host:port
	HC   *http.Client
	// CallTimeout caps calls whose context carries no deadline of its
	// own (0 = DefaultCallTimeout). Streaming calls that must outlive
	// it pass a context with an explicit deadline or use Put.
	CallTimeout time.Duration
}

// DefaultCallTimeout bounds control-plane calls when the caller's
// context has no deadline.
const DefaultCallTimeout = 30 * time.Second

// NewClient dials base with a shared transport. Timeouts are
// per-call (see CallTimeout), not per-client, so one slow streaming
// read doesn't dictate the control-plane bound.
func NewClient(base string) *Client {
	return &Client{Base: base, HC: &http.Client{}}
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// withDeadline applies the default call timeout when ctx has none.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	d := c.CallTimeout
	if d <= 0 {
		d = DefaultCallTimeout
	}
	return context.WithTimeout(ctx, d)
}

// Call posts req as JSON to path and decodes the JSON reply into
// reply. Non-2xx responses decode the Error envelope. The trace ID
// carried by ctx (if any) rides the X-LSDF-Trace header.
func (c *Client) Call(ctx context.Context, path string, req, reply any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := obs.TraceID(ctx); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if reply == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

func decodeError(resp *http.Response) error {
	var pe Error
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&pe); err == nil && pe.Code != "" {
		if pe.Code == "not_found" {
			return fmt.Errorf("%w: %s", ErrNotFound, pe.Msg)
		}
		return &pe
	}
	return fmt.Errorf("mrpc: HTTP %d", resp.StatusCode)
}

// Get issues a streaming GET (segment fetch, proxy read) and returns
// the body. The caller must Close it. No default deadline is applied
// — a deadline would kill the stream mid-read — but ctx cancellation
// (and any deadline the caller chose) propagates, so sizing the
// timeout to the transfer is the caller's job.
func (c *Client) Get(ctx context.Context, pathAndQuery string) (io.ReadCloser, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+pathAndQuery, nil)
	if err != nil {
		return nil, err
	}
	if id := obs.TraceID(ctx); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// Put streams body to pathAndQuery (proxy create). Like Get, no
// default deadline — uploads run as long as the data does — but
// cancellation propagates.
func (c *Client) Put(ctx context.Context, pathAndQuery string, body io.Reader) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPut, c.Base+pathAndQuery, body)
	if err != nil {
		return err
	}
	if id := obs.TraceID(ctx); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// Handle registers a JSON POST endpoint on mux.
func Handle[Req, Rep any](mux *http.ServeMux, path string, fn func(*Req) (*Rep, error)) {
	mux.HandleFunc("POST "+path, func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
			WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		rep, err := fn(&req)
		if err != nil {
			WriteError(w, http.StatusInternalServerError, errCode(err), err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rep)
	})
}

func errCode(err error) string {
	if errors.Is(err, ErrNotFound) {
		return "not_found"
	}
	return "internal"
}

// WriteError emits the protocol error envelope.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(Error{Code: code, Msg: msg})
}

// Server is an HTTP listener bound to an ephemeral (or given) port,
// with the shutdown plumbing every control-plane endpoint here needs.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts handler on addr ("" = 127.0.0.1:0) and returns once
// the listener is bound, so Addr is immediately usable.
func Serve(addr string, handler http.Handler) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: handler}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's http base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.srv.Shutdown(ctx)
	_ = s.srv.Close()
}

package tiering

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

// fakeClock is a manually advanced timestamp source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2011, 5, 16, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTier(t *testing.T, cfg Config) (*TierBackend, *adal.MemFS, *adal.MemFS) {
	t.Helper()
	hot := adal.NewMemFS("hot")
	cold := adal.NewMemFS("cold")
	tier, err := New("tier", hot, cold, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tier.Close)
	return tier, hot, cold
}

func writeObj(t *testing.T, b adal.Backend, path string, data []byte) {
	t.Helper()
	w, err := b.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readObj(t *testing.T, b adal.Backend, path string) []byte {
	t.Helper()
	r, err := b.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func payload(seed byte, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = seed + byte(i%13)
	}
	return data
}

func TestCreateOpenStatList(t *testing.T) {
	tier, _, _ := newTier(t, Config{})
	data := payload('a', 4096)
	writeObj(t, tier, "/exp/run1", data)

	if got := readObj(t, tier, "/exp/run1"); !bytes.Equal(got, data) {
		t.Fatal("read-back differs")
	}
	info, err := tier.Stat("/exp/run1")
	if err != nil || info.Size != units.Bytes(len(data)) {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if info.ModTime.IsZero() {
		t.Fatal("stat dropped mod time")
	}
	infos, err := tier.List("/exp")
	if err != nil || len(infos) != 1 || infos[0].Path != "/exp/run1" {
		t.Fatalf("list = %+v, %v", infos, err)
	}
	if _, err := tier.Create("/exp/run1"); !errors.Is(err, adal.ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if _, err := tier.Open("/missing"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("missing open err = %v", err)
	}
}

func TestMigrateAndTransparentRecall(t *testing.T) {
	tier, hot, cold := newTier(t, Config{})
	data := payload('m', 64*1024)
	writeObj(t, tier, "/exp/big", data)

	if err := tier.Migrate("/exp/big"); err != nil {
		t.Fatal(err)
	}
	if st, _ := tier.State("/exp/big"); st != Migrated {
		t.Fatalf("state = %v, want migrated", st)
	}
	// The hot tier now holds only a small stub; the cold tier the bytes.
	stubInfo, err := hot.Stat("/exp/big")
	if err != nil {
		t.Fatal(err)
	}
	if stubInfo.Size >= units.Bytes(len(data)) || stubInfo.Size > maxStubSize {
		t.Fatalf("stub size = %d", stubInfo.Size)
	}
	if got := readObj(t, cold, "/exp/big"); !bytes.Equal(got, data) {
		t.Fatal("cold copy differs")
	}
	// Stat still reports the logical size — placement is transparent.
	info, err := tier.Stat("/exp/big")
	if err != nil || info.Size != units.Bytes(len(data)) {
		t.Fatalf("stat = %+v, %v", info, err)
	}

	// Open recalls transparently and byte-identically.
	if got := readObj(t, tier, "/exp/big"); !bytes.Equal(got, data) {
		t.Fatal("recalled content differs")
	}
	if st, _ := tier.State("/exp/big"); st != Premigrated {
		t.Fatalf("state after recall = %v, want premigrated", st)
	}
	st := tier.Stats()
	if st.Recalls != 1 || st.Migrations != 1 || st.Premigrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RecallBytes != units.Bytes(len(data)) {
		t.Fatalf("recall bytes = %d", st.RecallBytes)
	}
	if st.RecallWaitNs <= 0 {
		t.Fatal("no recall wait recorded")
	}
}

func TestConcurrentRecallSingleflight(t *testing.T) {
	tier, _, _ := newTier(t, Config{})
	data := payload('s', 256*1024)
	writeObj(t, tier, "/exp/shared", data)
	if err := tier.Migrate("/exp/shared"); err != nil {
		t.Fatal(err)
	}

	const readers = 32
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := tier.Open("/exp/shared")
			if err != nil {
				bad.Add(1)
				return
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil || !bytes.Equal(got, data) {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d readers failed", n)
	}
	if st := tier.Stats(); st.Recalls != 1 {
		t.Fatalf("recalls = %d, want 1 (singleflight)", st.Recalls)
	}
}

func TestWatermarkMigrationOldestFirst(t *testing.T) {
	clock := newFakeClock()
	pol := Policy{HighWatermark: 0.85, LowWatermark: 0.60, MinAge: 0}
	tier, _, _ := newTier(t, Config{
		Policy: pol, HotCapacity: 100 * units.KiB, Clock: clock.Now,
	})

	// Ten 10 KiB files with strictly increasing access times: 100%.
	for i := 0; i < 10; i++ {
		writeObj(t, tier, fmt.Sprintf("/d/f%d", i), payload(byte(i), 10*1024))
		clock.Advance(time.Minute)
	}
	tier.Scan()
	tier.Wait()

	st := tier.Stats()
	if st.HotUtilization > pol.HighWatermark {
		t.Fatalf("utilization = %.2f, want <= %.2f", st.HotUtilization, pol.HighWatermark)
	}
	if st.HotUtilization > pol.LowWatermark+0.001 {
		t.Fatalf("utilization = %.2f, want <= low watermark %.2f", st.HotUtilization, pol.LowWatermark)
	}
	// Oldest files migrated first: f0..f3 gone cold, newest still hot.
	if s, _ := tier.State("/d/f0"); s != Migrated {
		t.Fatalf("f0 = %v, want migrated", s)
	}
	if s, _ := tier.State("/d/f9"); s != Resident {
		t.Fatalf("f9 = %v, want resident", s)
	}
	// Between the marks nothing moves (hysteresis).
	before := tier.Stats().Migrations
	tier.Scan()
	tier.Wait()
	if after := tier.Stats().Migrations; after != before {
		t.Fatalf("scan between watermarks migrated %d files", after-before)
	}
}

func TestPinExemptsFromMigration(t *testing.T) {
	clock := newFakeClock()
	tier, _, _ := newTier(t, Config{
		Policy:      Policy{HighWatermark: 0.5, LowWatermark: 0.1, MinAge: 0},
		HotCapacity: 30 * units.KiB,
		Clock:       clock.Now,
	})
	writeObj(t, tier, "/d/pinned", payload('p', 10*1024))
	if err := tier.Pin("/d/pinned"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	writeObj(t, tier, "/d/young", payload('y', 10*1024))
	writeObj(t, tier, "/d/younger", payload('z', 10*1024))
	tier.Scan()
	tier.Wait()
	if s, _ := tier.State("/d/pinned"); s != Resident {
		t.Fatalf("pinned file state = %v, want resident", s)
	}
	if s, _ := tier.State("/d/young"); s == Resident {
		t.Fatal("unpinned older file was not migrated")
	}
	if err := tier.Migrate("/d/pinned"); !errors.Is(err, ErrPinned) {
		t.Fatalf("forced migrate of pinned file err = %v", err)
	}
}

func TestPremigrateThenCheapMigrate(t *testing.T) {
	tier, hot, cold := newTier(t, Config{})
	data := payload('w', 32*1024)
	writeObj(t, tier, "/d/x", data)
	if err := tier.Premigrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	if s, _ := tier.State("/d/x"); s != Premigrated {
		t.Fatalf("state = %v, want premigrated", s)
	}
	// Both tiers hold the bytes.
	if got := readObj(t, hot, "/d/x"); !bytes.Equal(got, data) {
		t.Fatal("hot copy differs")
	}
	if got := readObj(t, cold, "/d/x"); !bytes.Equal(got, data) {
		t.Fatal("cold copy differs")
	}
	// Premigrate is idempotent.
	if err := tier.Premigrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.Premigrations != 1 {
		t.Fatalf("premigrations = %d, want 1", st.Premigrations)
	}
	// The final migration is a stub swap, no second cold copy.
	if err := tier.Migrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	st := tier.Stats()
	if st.Premigrations != 1 || st.Migrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := readObj(t, tier, "/d/x"); !bytes.Equal(got, data) {
		t.Fatal("content differs after premigrate+migrate+recall")
	}
}

func TestRecoveryFromStubs(t *testing.T) {
	hot := adal.NewMemFS("hot")
	cold := adal.NewMemFS("cold")
	tier, err := New("tier", hot, cold, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dataA := payload('A', 20*1024)
	dataB := payload('B', 8*1024)
	writeObj(t, tier, "/d/archived", dataA)
	writeObj(t, tier, "/d/live", dataB)
	if err := tier.Migrate("/d/archived"); err != nil {
		t.Fatal(err)
	}
	wantMod, _ := tier.Stat("/d/archived")
	tier.Close()

	// A fresh TierBackend over the same tiers recovers placement from
	// the stubs alone.
	tier2, err := New("tier2", hot, cold, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	if s, ok := tier2.State("/d/archived"); !ok || s != Migrated {
		t.Fatalf("recovered state = %v, %v", s, ok)
	}
	if s, ok := tier2.State("/d/live"); !ok || s != Resident {
		t.Fatalf("recovered state = %v, %v", s, ok)
	}
	info, err := tier2.Stat("/d/archived")
	if err != nil || info.Size != units.Bytes(len(dataA)) {
		t.Fatalf("recovered stat = %+v, %v", info, err)
	}
	if !info.ModTime.Equal(wantMod.ModTime) {
		t.Fatalf("recovered modtime = %v, want %v", info.ModTime, wantMod.ModTime)
	}
	if got := readObj(t, tier2, "/d/archived"); !bytes.Equal(got, dataA) {
		t.Fatal("recalled content differs after recovery")
	}
}

func TestRecallChecksumMismatch(t *testing.T) {
	tier, _, cold := newTier(t, Config{})
	writeObj(t, tier, "/d/x", payload('x', 4096))
	if err := tier.Migrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the cold copy.
	if err := cold.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	writeObj(t, cold, "/d/x", payload('y', 4096))
	if _, err := tier.Open("/d/x"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("open err = %v, want checksum mismatch", err)
	}
	if st := tier.Stats(); st.RecallErrors != 1 || st.Recalls != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRemoveClearsBothTiers(t *testing.T) {
	tier, hot, cold := newTier(t, Config{})
	writeObj(t, tier, "/d/x", payload('x', 4096))
	if err := tier.Migrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := tier.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := hot.Stat("/d/x"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("hot still holds the stub: %v", err)
	}
	if _, err := cold.Stat("/d/x"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("cold still holds the copy: %v", err)
	}
	if err := tier.Remove("/d/x"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestPlacementEventsOnBus(t *testing.T) {
	meta := metadata.NewStore()
	hot := adal.NewMemFS("hot")
	cold := adal.NewMemFS("cold")
	tier, err := New("tier", hot, cold, Config{Meta: meta, MountPrefix: "/ddn"})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	var mu sync.Mutex
	var seen []string
	meta.Subscribe(func(ev metadata.Event) {
		if ev.Type != metadata.EventPlacement {
			return
		}
		mu.Lock()
		seen = append(seen, ev.Dataset.Path+":"+ev.Placement)
		mu.Unlock()
	})

	writeObj(t, tier, "/d/x", payload('x', 4096))
	if err := tier.Migrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := tier.Recall("/d/x"); err != nil {
		t.Fatal(err)
	}
	meta.Flush()
	mu.Lock()
	defer mu.Unlock()
	want := []string{
		"/ddn/d/x:resident",
		"/ddn/d/x:premigrated",
		"/ddn/d/x:migrated",
		"/ddn/d/x:premigrated",
	}
	if len(seen) != len(want) {
		t.Fatalf("events = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
}

// TestSustainedIngestStress overfills a small hot tier from many
// concurrent writers while readers hammer already-written paths; the
// background machinery must keep utilization at the watermark and
// every read must come back byte-identical. Run with -race.
func TestSustainedIngestStress(t *testing.T) {
	pol := Policy{HighWatermark: 0.80, LowWatermark: 0.50, MinAge: 0}
	tier, _, _ := newTier(t, Config{
		Policy:           pol,
		HotCapacity:      256 * units.KiB,
		MigrationWorkers: 4,
	})

	const writers, perWriter = 4, 32
	const objSize = 8 * 1024
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				path := fmt.Sprintf("/ing/w%d-%d", w, i)
				writeObj(t, tier, path, payload(byte(w*31+i), objSize))
				// Read back something written earlier (possibly migrated).
				back := fmt.Sprintf("/ing/w%d-%d", w, i/2)
				r, err := tier.Open(back)
				if err != nil {
					failures.Add(1)
					continue
				}
				got, err := io.ReadAll(r)
				r.Close()
				if err != nil || !bytes.Equal(got, payload(byte(w*31+i/2), objSize)) {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d reads failed or differed", n)
	}
	// Settle: drain pending migrations, then run scans until the
	// watermark holds (recalls during the stress may have re-heated
	// files past the mark).
	for i := 0; i < 10; i++ {
		tier.Scan()
		tier.Wait()
		if tier.Utilization() <= pol.HighWatermark {
			break
		}
	}
	st := tier.Stats()
	if st.HotUtilization > pol.HighWatermark {
		t.Fatalf("settled utilization = %.2f, want <= %.2f", st.HotUtilization, pol.HighWatermark)
	}
	if st.Migrations == 0 {
		t.Fatal("stress run migrated nothing")
	}
	// Every object still reads back correctly after the dust settles.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			path := fmt.Sprintf("/ing/w%d-%d", w, i)
			if got := readObj(t, tier, path); !bytes.Equal(got, payload(byte(w*31+i), objSize)) {
				t.Fatalf("%s differs after settle", path)
			}
		}
	}
}

func TestStubEncodeDecode(t *testing.T) {
	in := stubInfo{
		size:     123456,
		checksum: "abcdef0123",
		modTime:  time.Date(2011, 5, 16, 12, 30, 45, 123456789, time.UTC),
	}
	out, ok := decodeStub(encodeStub(in))
	if !ok {
		t.Fatal("round trip did not decode")
	}
	if out.size != in.size || out.checksum != in.checksum || !out.modTime.Equal(in.modTime) {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if _, ok := decodeStub([]byte("just some data")); ok {
		t.Fatal("plain data decoded as stub")
	}
}

// TestOpenNeverObservesSwapWindow hammers Open against continuous
// migrate/recall cycles of the same path (run with -race): no reader
// may ever see the stub bytes, an empty object, or a not-found — the
// op re-check in Open closes the unlocked window between the state
// check and the hot open.
func TestOpenNeverObservesSwapWindow(t *testing.T) {
	tier, _, _ := newTier(t, Config{})
	data := payload('q', 32*1024)
	writeObj(t, tier, "/d/hotswap", data)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := tier.Migrate("/d/hotswap"); err != nil {
				t.Errorf("migrate: %v", err)
				return
			}
			if err := tier.Recall("/d/hotswap"); err != nil {
				t.Errorf("recall: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := tier.Open("/d/hotswap")
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				got, err := io.ReadAll(r)
				r.Close()
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("reader observed wrong content: err=%v len=%d", err, len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

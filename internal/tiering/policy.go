// Package tiering is the live tiered data path of the facility: a
// TierBackend federates a hot backend (disk: MemFS, LocalFS, the DFS)
// with a cold backend (tape or object storage) behind the ordinary
// adal.Backend contract, so every caller that reaches storage through
// the ADAL mount table — ingest, the DataBrowser, MapReduce output
// readers — gets the paper's "transparent access over background
// storage and technology changes" for free: files live on the hot
// tier while hot, migrate to the cold tier past a utilization
// watermark, and are recalled invisibly on Open.
//
// The placement states and the migration policy here are shared with
// internal/hsm, whose discrete-event Manager models the same life
// cycle at petabyte scale in virtual time; this package moves real
// bytes concurrently.
package tiering

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// State is a file's placement state.
type State int

// Placement states. Premigrated files have a cold copy but still
// occupy hot storage; Migrated files are cold-only (a small
// self-describing stub remains in the hot namespace).
const (
	Resident State = iota
	Premigrated
	Migrated
)

// String implements fmt.Stringer for diagnostics.
func (s State) String() string {
	switch s {
	case Resident:
		return "resident"
	case Premigrated:
		return "premigrated"
	case Migrated:
		return "migrated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Policy controls migration. The same hysteresis pair governs the
// discrete-event hsm.Manager and the live TierBackend: migration
// starts when hot utilization exceeds HighWatermark and stops once
// the projection drops below LowWatermark, oldest access first.
type Policy struct {
	HighWatermark float64       // start migrating above this hot-tier utilization
	LowWatermark  float64       // stop once utilization is below this
	MinAge        time.Duration // never migrate files younger than this
	ScanInterval  time.Duration // period of the migration scan
	CartridgeSize units.Bytes   // size of auto-created cartridges (tape backends)
}

// DefaultPolicy is a conventional 85/70 watermark pair with hourly
// scans and LTO-5-sized (1.5 TB) cartridges.
func DefaultPolicy() Policy {
	return Policy{
		HighWatermark: 0.85,
		LowWatermark:  0.70,
		MinAge:        time.Hour,
		ScanInterval:  time.Hour,
		CartridgeSize: units.Bytes(1500) * units.GB,
	}
}

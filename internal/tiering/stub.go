package tiering

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/units"
)

// stubMagic opens every stub object left in the hot namespace for a
// migrated file. The stub is self-describing — it carries the
// metadata needed to recall and re-verify the bytes — so a TierBackend
// constructed over an existing hot tier recovers the placement map
// without any side database (see recover in tiering.go).
const stubMagic = "LSDF-STUB v1"

// maxStubSize bounds how large a hot object may be for recovery to
// sniff it as a potential stub. Real stubs are well under 1 KiB.
const maxStubSize = 4096

// stubInfo is the metadata preserved in a migrated file's stub.
type stubInfo struct {
	size     units.Bytes
	checksum string // hex SHA-256 of the migrated content
	modTime  time.Time
}

// encodeStub renders the stub object body.
func encodeStub(info stubInfo) []byte {
	var sb strings.Builder
	sb.WriteString(stubMagic)
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "size: %d\n", int64(info.size))
	fmt.Fprintf(&sb, "sha256: %s\n", info.checksum)
	fmt.Fprintf(&sb, "modtime: %s\n", info.modTime.UTC().Format(time.RFC3339Nano))
	return []byte(sb.String())
}

// decodeStub parses a stub body; ok is false when the content is not
// a stub (recovery treats such objects as plain resident data).
func decodeStub(data []byte) (stubInfo, bool) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != stubMagic {
		return stubInfo{}, false
	}
	var info stubInfo
	for _, line := range lines[1:] {
		key, val, found := strings.Cut(line, ": ")
		if !found {
			continue
		}
		switch key {
		case "size":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return stubInfo{}, false
			}
			info.size = units.Bytes(n)
		case "sha256":
			info.checksum = val
		case "modtime":
			t, err := time.Parse(time.RFC3339Nano, val)
			if err != nil {
				return stubInfo{}, false
			}
			info.modTime = t
		}
	}
	return info, info.checksum != ""
}

package tiering

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

// ErrPinned is returned when a migration is requested for a pinned
// file.
var ErrPinned = errors.New("tiering: file is pinned")

// ErrBusy is returned when a forced transition races an in-flight one.
var ErrBusy = errors.New("tiering: transition in flight")

// ErrChecksum is returned when a tier copy does not match the
// recorded content hash.
var ErrChecksum = errors.New("tiering: checksum mismatch")

// Config tunes a TierBackend.
type Config struct {
	// Policy sets the watermarks, minimum age and scan period. A zero
	// Policy takes DefaultPolicy.
	Policy Policy
	// HotCapacity is the hot tier's capacity for utilization
	// accounting. 0 disables watermark-driven migration (manual
	// Migrate/Premigrate still work — the lsdfctl mode).
	HotCapacity units.Bytes
	// MigrationWorkers sizes the background migration pool (default 2).
	MigrationWorkers int
	// Meta, when set, receives a placement event on the metadata bus
	// for every state transition (metadata.EventPlacement).
	Meta *metadata.Store
	// MountPrefix is prepended to backend-relative paths in placement
	// events so they match the federated paths ingest registers.
	MountPrefix string
	// Clock injects a timestamp source (default time.Now).
	Clock func() time.Time
}

// entry is the authoritative placement record of one object.
type entry struct {
	size       units.Bytes
	modTime    time.Time
	created    time.Time
	lastAccess time.Time
	state      State
	checksum   string // hex SHA-256 of the content; learned at write or first copy
	pinned     bool
	migrating  bool // a premigrate/migrate transition is in flight
	writing    bool // Create issued, Close not yet seen
}

// opKind classifies a per-path exclusive transition.
type opKind int

const (
	opRecall opKind = iota
	opStubSwap
)

// op serializes Open/Remove against a transition that makes the hot
// copy temporarily inconsistent (recall rewriting the stub, migration
// swapping bytes for a stub). Readers wait on done and re-examine the
// entry's state — that re-check loop is what makes concurrent readers
// of a migrated path share one recall.
type op struct {
	kind opKind
	done chan struct{}
	err  error
}

// TierBackend federates a hot and a cold adal.Backend behind the
// plain Backend contract. All methods are safe for concurrent use.
//
// Lock ordering: mu is never held across backend I/O. Transitions
// that rewrite the hot copy register an op (per path) first; Open and
// Remove wait for in-flight ops before acting on the path.
type TierBackend struct {
	name string
	hot  adal.Backend
	cold adal.Backend

	pol      Policy
	capacity units.Bytes
	meta     *metadata.Store
	prefix   string
	clock    func() time.Time

	mu         sync.Mutex
	idle       *sync.Cond // broadcast when pendingMig drops to zero
	files      map[string]*entry
	ops        map[string]*op
	hotUsed    units.Bytes // logical data bytes on the hot tier (stubs excluded)
	pendingMig int         // queued + running migration jobs
	closed     bool

	jobs   chan string
	scanCh chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup

	// counters (lock-free reads via Stats)
	migrations    atomic.Uint64
	premigrations atomic.Uint64
	recalls       atomic.Uint64
	recallErrors  atomic.Uint64
	migratedBytes atomic.Int64
	recallBytes   atomic.Int64
	recallWaitNs  atomic.Int64
}

var _ adal.Backend = (*TierBackend)(nil)

// New builds a tier over hot and cold and starts the background
// migration machinery. Existing hot-tier objects are recovered into
// the placement map: small objects carrying the stub magic become
// Migrated entries (their metadata read back from the stub), all
// others Resident.
func New(name string, hot, cold adal.Backend, cfg Config) (*TierBackend, error) {
	if cfg.Policy == (Policy{}) {
		cfg.Policy = DefaultPolicy()
	}
	if cfg.MigrationWorkers <= 0 {
		cfg.MigrationWorkers = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	t := &TierBackend{
		name:     name,
		hot:      hot,
		cold:     cold,
		pol:      cfg.Policy,
		capacity: cfg.HotCapacity,
		meta:     cfg.Meta,
		prefix:   cfg.MountPrefix,
		clock:    cfg.Clock,
		files:    make(map[string]*entry),
		ops:      make(map[string]*op),
		jobs:     make(chan string, 1024),
		scanCh:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	t.idle = sync.NewCond(&t.mu)
	if err := t.recover(); err != nil {
		return nil, err
	}
	t.wg.Add(1)
	go t.scanner()
	for i := 0; i < cfg.MigrationWorkers; i++ {
		t.wg.Add(1)
		go t.worker()
	}
	// Recovery may have rebuilt a hot tier already past the
	// watermark; wake the scanner rather than waiting for a write.
	t.maybeScan()
	return t, nil
}

// recover rebuilds the placement map from the hot tier: the stub
// format is self-describing precisely so that no side database is
// needed to survive a restart (the lsdfctl persistence model).
func (t *TierBackend) recover() error {
	infos, err := t.hot.List("/")
	if err != nil {
		return fmt.Errorf("tiering: recovering %s: %w", t.name, err)
	}
	now := t.clock()
	for _, info := range infos {
		if info.IsDir {
			continue
		}
		e := &entry{
			size:       info.Size,
			modTime:    info.ModTime,
			created:    info.ModTime,
			lastAccess: info.ModTime,
			state:      Resident,
		}
		if e.modTime.IsZero() {
			e.created, e.lastAccess = now, now
		}
		if info.Size <= maxStubSize {
			if stub, ok := t.sniffStub(info.Path); ok {
				e.size = stub.size
				e.checksum = stub.checksum
				e.modTime = stub.modTime
				e.state = Migrated
			}
		}
		if e.state != Migrated {
			t.hotUsed += e.size
		}
		t.files[info.Path] = e
	}
	return nil
}

func (t *TierBackend) sniffStub(path string) (stubInfo, bool) {
	r, err := t.hot.Open(path)
	if err != nil {
		return stubInfo{}, false
	}
	defer r.Close()
	data, err := io.ReadAll(io.LimitReader(r, maxStubSize+1))
	if err != nil || len(data) > maxStubSize {
		return stubInfo{}, false
	}
	return decodeStub(data)
}

// Close stops the scanner and the migration workers, waiting for
// in-flight transitions to finish; queued-but-unstarted migrations
// are abandoned (their files stay in their current state).
func (t *TierBackend) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.quit)
	t.wg.Wait()
	for {
		select {
		case path := <-t.jobs:
			t.mu.Lock()
			if e := t.files[path]; e != nil {
				e.migrating = false
			}
			t.pendingMig--
			if t.pendingMig == 0 {
				t.idle.Broadcast()
			}
			t.mu.Unlock()
		default:
			return
		}
	}
}

// Name implements adal.Backend.
func (t *TierBackend) Name() string { return t.name }

// event publishes a placement transition on the metadata bus.
func (t *TierBackend) event(path string, st State) {
	if t.meta == nil {
		return
	}
	t.meta.NotePlacement(t.prefix+path, st.String())
}

// Create implements adal.Backend. The name is reserved immediately
// (concurrent creators collide here); the entry becomes visible once
// the writer is closed, with size and SHA-256 recorded for later
// migration verification.
func (t *TierBackend) Create(path string) (io.WriteCloser, error) {
	now := t.clock()
	t.mu.Lock()
	if _, ok := t.files[path]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrExists, t.name, path)
	}
	t.files[path] = &entry{state: Resident, writing: true, created: now}
	t.mu.Unlock()
	w, err := t.hot.Create(path)
	if err != nil {
		t.mu.Lock()
		delete(t.files, path)
		t.mu.Unlock()
		return nil, err
	}
	return &tierWriter{t: t, path: path, w: w, h: sha256.New()}, nil
}

type tierWriter struct {
	t      *TierBackend
	path   string
	w      io.WriteCloser
	h      hash.Hash
	n      int64
	closed bool
}

func (w *tierWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("tiering: write after close: %s", w.path)
	}
	n, err := w.w.Write(p)
	w.h.Write(p[:n])
	w.n += int64(n)
	return n, err
}

func (w *tierWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Close(); err != nil {
		// The hot object's state is unknown; drop the reservation and
		// make a best effort to clear the partial object.
		w.t.mu.Lock()
		delete(w.t.files, w.path)
		w.t.mu.Unlock()
		_ = w.t.hot.Remove(w.path)
		return err
	}
	now := w.t.clock()
	w.t.mu.Lock()
	e := w.t.files[w.path]
	if e != nil {
		e.size = units.Bytes(w.n)
		e.checksum = hex.EncodeToString(w.h.Sum(nil))
		e.modTime = now
		e.lastAccess = now
		e.writing = false
		w.t.hotUsed += e.size
	}
	w.t.mu.Unlock()
	w.t.event(w.path, Resident)
	w.t.maybeScan()
	return nil
}

// Open implements adal.Backend. Opening a migrated path triggers a
// transparent recall: the first reader becomes the recall leader,
// concurrent readers wait on the same op and share its result (the
// Recalls counter moves once per cold read, not once per reader).
func (t *TierBackend) Open(path string) (io.ReadCloser, error) {
	for {
		t.mu.Lock()
		e, ok := t.files[path]
		if !ok || e.writing {
			t.mu.Unlock()
			return nil, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
		}
		e.lastAccess = t.clock()
		if o := t.ops[path]; o != nil {
			kind := o.kind
			t.mu.Unlock()
			start := time.Now()
			<-o.done
			if kind == opRecall {
				t.recallWaitNs.Add(time.Since(start).Nanoseconds())
			}
			continue // re-examine the state the op left behind
		}
		if e.state != Migrated {
			t.mu.Unlock()
			r, err := t.hot.Open(path)
			// The hot open ran outside mu: a stub swap (or a recall's
			// rewrite) may have replaced the object in that window,
			// handing us stub bytes or a not-found. Re-examine; only a
			// result obtained with no transition in sight is valid.
			t.mu.Lock()
			e2, ok := t.files[path]
			raced := t.ops[path] != nil || (ok && e2.state == Migrated)
			t.mu.Unlock()
			if !ok {
				if r != nil {
					r.Close()
				}
				return nil, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
			}
			if !raced {
				return r, err // clean window: genuine backend outcome
			}
			if r != nil {
				r.Close()
			}
			continue // wait out the transition and re-resolve
		}
		o := &op{kind: opRecall, done: make(chan struct{})}
		t.ops[path] = o
		size, sum, mod := e.size, e.checksum, e.modTime
		t.mu.Unlock()

		start := time.Now()
		err := t.doRecall(path, size, sum, mod)
		t.finishOp(path, o, err)
		t.recallWaitNs.Add(time.Since(start).Nanoseconds())
		if err != nil {
			t.recallErrors.Add(1)
			return nil, err
		}
	}
}

// doRecall brings the cold bytes back to the hot tier and flips the
// entry to Premigrated (the cold copy remains valid until the file
// is next rewritten). Recalled bytes count toward the watermark, so
// a recall burst can wake the scanner just like a write burst.
func (t *TierBackend) doRecall(path string, size units.Bytes, sum string, mod time.Time) error {
	if err := t.copyColdToHot(path, size, sum, mod); err != nil {
		return err
	}
	t.mu.Lock()
	if e := t.files[path]; e != nil {
		e.state = Premigrated
		t.hotUsed += size
	}
	t.mu.Unlock()
	t.recalls.Add(1)
	t.recallBytes.Add(int64(size))
	t.event(path, Premigrated)
	t.maybeScan()
	return nil
}

// copyColdToHot streams the cold copy over the hot object (stub or
// absent), verifying the recorded checksum as it streams — recall
// memory stays O(copy buffer) regardless of object size. On any
// failure the hot namespace is restored to a stub, so the tier's
// restart-recovery invariant (every migrated object is represented
// by its stub) survives partial recalls.
func (t *TierBackend) copyColdToHot(path string, size units.Bytes, sum string, mod time.Time) error {
	r, err := t.cold.Open(path)
	if err != nil {
		return fmt.Errorf("tiering: recall %s: %w", path, err)
	}
	defer r.Close()
	if err := t.hot.Remove(path); err != nil && !errors.Is(err, adal.ErrNotFound) {
		return fmt.Errorf("tiering: recall %s: clearing stub: %w", path, err)
	}
	restore := func() { t.rewriteStub(path, stubInfo{size: size, checksum: sum, modTime: mod}) }
	w, err := t.hot.Create(path)
	if err != nil {
		restore()
		return fmt.Errorf("tiering: recall %s: %w", path, err)
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(w, h), r)
	if err == nil {
		err = w.Close()
	} else {
		w.Close()
	}
	if err != nil {
		_ = t.hot.Remove(path)
		restore()
		return fmt.Errorf("tiering: recall %s: %w", path, err)
	}
	if units.Bytes(n) != size || hex.EncodeToString(h.Sum(nil)) != sum {
		_ = t.hot.Remove(path)
		restore()
		return fmt.Errorf("%w: recall %s", ErrChecksum, path)
	}
	return nil
}

// rewriteStub re-creates a migrated file's stub in the hot
// namespace, best-effort (used on failure paths to keep the hot tier
// self-describing for restart recovery).
func (t *TierBackend) rewriteStub(path string, info stubInfo) {
	w, err := t.hot.Create(path)
	if err != nil {
		return
	}
	if _, err := w.Write(encodeStub(info)); err != nil {
		w.Close()
		_ = t.hot.Remove(path)
		return
	}
	if err := w.Close(); err != nil {
		_ = t.hot.Remove(path)
	}
}

func (t *TierBackend) finishOp(path string, o *op, err error) {
	o.err = err
	t.mu.Lock()
	delete(t.ops, path)
	t.mu.Unlock()
	close(o.done)
}

// Stat implements adal.Backend. Migrated files report their logical
// size and original modification time — placement is invisible here;
// State and Placement expose it explicitly.
func (t *TierBackend) Stat(path string) (adal.FileInfo, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.files[path]
	if !ok || e.writing {
		return adal.FileInfo{}, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
	}
	return adal.FileInfo{Path: path, Size: e.size, ModTime: e.modTime}, nil
}

// List implements adal.Backend, reporting logical sizes regardless of
// placement.
func (t *TierBackend) List(prefix string) ([]adal.FileInfo, error) {
	t.mu.Lock()
	out := make([]adal.FileInfo, 0, len(t.files))
	for p, e := range t.files {
		if e.writing || !strings.HasPrefix(p, prefix) {
			continue
		}
		out = append(out, adal.FileInfo{Path: p, Size: e.size, ModTime: e.modTime})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove implements adal.Backend, deleting the object from both tiers.
func (t *TierBackend) Remove(path string) error {
	for {
		t.mu.Lock()
		e, ok := t.files[path]
		if !ok || e.writing {
			t.mu.Unlock()
			return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
		}
		if o := t.ops[path]; o != nil {
			t.mu.Unlock()
			<-o.done
			continue
		}
		delete(t.files, path)
		if e.state != Migrated {
			t.hotUsed -= e.size
		}
		st := e.state
		t.mu.Unlock()
		if err := t.hot.Remove(path); err != nil && !errors.Is(err, adal.ErrNotFound) {
			return err
		}
		if st != Resident {
			if err := t.cold.Remove(path); err != nil && !errors.Is(err, adal.ErrNotFound) {
				return err
			}
		}
		return nil
	}
}

// Pin exempts a file from migration; a pinned premigrated or
// migrated file keeps its current placement but will not move
// further toward tape.
func (t *TierBackend) Pin(path string) error { return t.setPin(path, true) }

// Unpin re-admits a file to migration.
func (t *TierBackend) Unpin(path string) error { return t.setPin(path, false) }

func (t *TierBackend) setPin(path string, pinned bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.files[path]
	if !ok || e.writing {
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
	}
	e.pinned = pinned
	return nil
}

// State reports a file's placement state.
func (t *TierBackend) State(path string) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.files[path]
	if !ok || e.writing {
		return 0, false
	}
	return e.state, true
}

// Placement reports the placement state as a string; the DataBrowser
// discovers this method structurally through the mount table.
func (t *TierBackend) Placement(path string) (string, bool) {
	st, ok := t.State(path)
	if !ok {
		return "", false
	}
	return st.String(), true
}

// Premigrate eagerly copies a resident file to the cold tier
// (ingest's premigrate-on-ingest mode): the file keeps its hot bytes
// but a later watermark migration degrades to a cheap stub swap.
func (t *TierBackend) Premigrate(path string) error {
	t.mu.Lock()
	e, ok := t.files[path]
	if !ok || e.writing {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
	}
	if e.state != Resident || e.migrating {
		t.mu.Unlock()
		return nil // already has (or is getting) a cold copy
	}
	e.migrating = true
	size, sum := e.size, e.checksum
	t.mu.Unlock()

	err := t.copyToCold(path, size, &sum)
	t.mu.Lock()
	e, ok = t.files[path]
	if ok {
		e.migrating = false
		if err == nil && e.state == Resident {
			e.state = Premigrated
			if e.checksum == "" {
				e.checksum = sum
			}
		}
	}
	t.mu.Unlock()
	if !ok {
		_ = t.cold.Remove(path) // removed underneath us; drop the orphan copy
		return nil
	}
	if err != nil {
		return err
	}
	t.premigrations.Add(1)
	t.event(path, Premigrated)
	return nil
}

// copyToCold streams the hot bytes into the cold tier. *sum is
// verified when already known and learned otherwise (recovered
// entries have no recorded checksum until their first copy).
func (t *TierBackend) copyToCold(path string, size units.Bytes, sum *string) error {
	r, err := t.hot.Open(path)
	if err != nil {
		return fmt.Errorf("tiering: premigrate %s: %w", path, err)
	}
	defer r.Close()
	w, err := t.cold.Create(path)
	if errors.Is(err, adal.ErrExists) {
		// Stale copy from an earlier interrupted pass; replace it.
		if rerr := t.cold.Remove(path); rerr != nil {
			return fmt.Errorf("tiering: premigrate %s: %w", path, rerr)
		}
		w, err = t.cold.Create(path)
	}
	if err != nil {
		return fmt.Errorf("tiering: premigrate %s: %w", path, err)
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(w, h), r)
	if err != nil {
		w.Close()
		_ = t.cold.Remove(path)
		return fmt.Errorf("tiering: premigrate %s: %w", path, err)
	}
	if err := w.Close(); err != nil {
		_ = t.cold.Remove(path)
		return fmt.Errorf("tiering: premigrate %s: %w", path, err)
	}
	got := hex.EncodeToString(h.Sum(nil))
	if *sum == "" {
		*sum = got
	} else if got != *sum || units.Bytes(n) != size {
		_ = t.cold.Remove(path)
		return fmt.Errorf("%w: premigrate %s", ErrChecksum, path)
	}
	return nil
}

// Migrate forces one file through the full Resident → Premigrated →
// Migrated transition, ignoring watermarks and MinAge. Pinned files
// refuse; files already migrated are a no-op.
func (t *TierBackend) Migrate(path string) error {
	t.mu.Lock()
	e, ok := t.files[path]
	if !ok || e.writing {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
	}
	if e.state == Migrated {
		t.mu.Unlock()
		return nil
	}
	if e.pinned {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPinned, path)
	}
	if e.migrating {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrBusy, path)
	}
	e.migrating = true
	t.mu.Unlock()
	return t.migrateOne(path)
}

// migrateOne drives one file (whose migrating flag the caller has
// set) to Migrated: copy to cold if still resident, then swap the
// hot bytes for a stub under a per-path op so concurrent readers
// never observe the intermediate hole.
func (t *TierBackend) migrateOne(path string) error {
	t.mu.Lock()
	e, ok := t.files[path]
	if !ok {
		t.mu.Unlock()
		return nil // removed while queued
	}
	st := e.state
	size, sum := e.size, e.checksum
	t.mu.Unlock()

	if st == Resident {
		if err := t.copyToCold(path, size, &sum); err != nil {
			t.clearMigrating(path)
			return err // stays resident; the next scan retries
		}
		t.mu.Lock()
		e, ok = t.files[path]
		if !ok {
			t.mu.Unlock()
			_ = t.cold.Remove(path)
			return nil
		}
		e.state = Premigrated
		if e.checksum == "" {
			e.checksum = sum
		}
		t.mu.Unlock()
		t.premigrations.Add(1)
		t.event(path, Premigrated)
	}

	// Premigrated → Migrated: replace the hot bytes with a stub.
	t.mu.Lock()
	e, ok = t.files[path]
	if !ok {
		t.mu.Unlock()
		_ = t.cold.Remove(path)
		return nil
	}
	if e.state != Premigrated || e.pinned {
		e.migrating = false
		t.mu.Unlock()
		return nil
	}
	o := &op{kind: opStubSwap, done: make(chan struct{})}
	t.ops[path] = o
	sum = e.checksum
	size = e.size
	stub := stubInfo{size: size, checksum: sum, modTime: e.modTime}
	t.mu.Unlock()

	err := t.hot.Remove(path)
	if err != nil && !errors.Is(err, adal.ErrNotFound) {
		t.mu.Lock()
		e.migrating = false
		t.mu.Unlock()
		t.finishOp(path, o, err)
		return fmt.Errorf("tiering: migrate %s: %w", path, err)
	}
	stubWritten := false
	if w, cerr := t.hot.Create(path); cerr == nil {
		_, werr := w.Write(encodeStub(stub))
		if cerr = w.Close(); werr == nil && cerr == nil {
			stubWritten = true
		} else {
			_ = t.hot.Remove(path)
		}
	}
	if !stubWritten {
		// Without a stub the object would vanish from restart
		// recovery despite valid cold bytes. Put the hot bytes back
		// from the verified cold copy and stay Premigrated; the next
		// scan retries the swap.
		if rerr := t.copyColdToHot(path, size, sum, stub.modTime); rerr == nil {
			t.mu.Lock()
			e.migrating = false
			t.mu.Unlock()
			t.finishOp(path, o, nil)
			return fmt.Errorf("tiering: migrate %s: stub write failed", path)
		}
		// Restore failed too (copyColdToHot retried the stub
		// itself); fall through — the in-memory entry still reaches
		// the cold bytes.
	}
	t.mu.Lock()
	e.state = Migrated
	e.migrating = false
	t.hotUsed -= size
	t.mu.Unlock()
	t.migrations.Add(1)
	t.migratedBytes.Add(int64(size))
	t.finishOp(path, o, nil)
	t.event(path, Migrated)
	return nil
}

func (t *TierBackend) clearMigrating(path string) {
	t.mu.Lock()
	if e := t.files[path]; e != nil {
		e.migrating = false
	}
	t.mu.Unlock()
}

// Recall ensures a file's bytes are hot-resident, sharing any
// in-flight recall with concurrent readers.
func (t *TierBackend) Recall(path string) error {
	r, err := t.Open(path)
	if err != nil {
		return err
	}
	return r.Close()
}

// maybeScan wakes the scanner when a write pushed utilization over
// the high watermark — migration is demand-driven, the periodic scan
// is only a safety net.
func (t *TierBackend) maybeScan() {
	t.mu.Lock()
	over := t.capacity > 0 && float64(t.hotUsed) > t.pol.HighWatermark*float64(t.capacity)
	t.mu.Unlock()
	if over {
		select {
		case t.scanCh <- struct{}{}:
		default:
		}
	}
}

// scanner runs watermark passes on demand (scanCh) and, when the
// policy asks for one, on a period.
func (t *TierBackend) scanner() {
	defer t.wg.Done()
	var tick <-chan time.Time
	if t.pol.ScanInterval > 0 {
		tk := time.NewTicker(t.pol.ScanInterval)
		defer tk.Stop()
		tick = tk.C
	}
	for {
		select {
		case <-t.quit:
			return
		case <-t.scanCh:
		case <-tick:
		}
		t.Scan()
	}
}

// Scan runs one migration planning pass: while hot utilization
// exceeds the high watermark, the oldest-access eligible files are
// queued for the worker pool until the projection drops below the
// low watermark (hysteresis — scans do nothing between the marks).
func (t *TierBackend) Scan() {
	t.mu.Lock()
	if t.capacity <= 0 || float64(t.hotUsed) <= t.pol.HighWatermark*float64(t.capacity) {
		t.mu.Unlock()
		return
	}
	target := units.Bytes(t.pol.LowWatermark * float64(t.capacity))
	toFree := t.hotUsed - target
	now := t.clock()
	type cand struct {
		path string
		last time.Time
		size units.Bytes
	}
	var cands []cand
	for p, e := range t.files {
		if e.writing || e.migrating || e.pinned || e.state == Migrated {
			continue
		}
		if now.Sub(e.created) < t.pol.MinAge {
			continue
		}
		cands = append(cands, cand{p, e.lastAccess, e.size})
	}
	// Oldest access first; path breaks ties for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].last.Equal(cands[j].last) {
			return cands[i].last.Before(cands[j].last)
		}
		return cands[i].path < cands[j].path
	})
	var planned units.Bytes
	var picked []string
	for _, c := range cands {
		if planned >= toFree {
			break
		}
		planned += c.size
		t.files[c.path].migrating = true
		t.pendingMig++
		picked = append(picked, c.path)
	}
	t.mu.Unlock()
	for i, p := range picked {
		select {
		case t.jobs <- p:
		case <-t.quit:
			t.mu.Lock()
			for _, rest := range picked[i:] {
				if e := t.files[rest]; e != nil {
					e.migrating = false
				}
				t.pendingMig--
			}
			if t.pendingMig == 0 {
				t.idle.Broadcast()
			}
			t.mu.Unlock()
			return
		}
	}
}

// worker drains the migration queue.
func (t *TierBackend) worker() {
	defer t.wg.Done()
	for {
		select {
		case <-t.quit:
			return
		case path := <-t.jobs:
			_ = t.migrateOne(path)
			t.mu.Lock()
			t.pendingMig--
			if t.pendingMig == 0 {
				t.idle.Broadcast()
			}
			t.mu.Unlock()
		}
	}
}

// Wait blocks until every queued migration has been attempted — the
// quiescence barrier the watermark tests and experiments use.
func (t *TierBackend) Wait() {
	t.mu.Lock()
	for t.pendingMig > 0 {
		t.idle.Wait()
	}
	t.mu.Unlock()
}

// EntryInfo is one row of the tier status listing.
type EntryInfo struct {
	Path       string
	Size       units.Bytes
	State      State
	Pinned     bool
	LastAccess time.Time
}

// Entries lists every managed file sorted by path (lsdfctl tier).
func (t *TierBackend) Entries() []EntryInfo {
	t.mu.Lock()
	out := make([]EntryInfo, 0, len(t.files))
	for p, e := range t.files {
		if e.writing {
			continue
		}
		out = append(out, EntryInfo{Path: p, Size: e.size, State: e.state, Pinned: e.pinned, LastAccess: e.lastAccess})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Stats is a snapshot of the tier's counters and gauges.
type Stats struct {
	Files       int
	Resident    int
	Premigrated int
	Migrated    int
	Pinned      int

	HotUsed        units.Bytes
	HotCapacity    units.Bytes
	HotUtilization float64

	Migrations    uint64 // completed Premigrated→Migrated stub swaps
	Premigrations uint64 // completed cold copies
	Recalls       uint64 // cold reads performed (deduplicated)
	RecallErrors  uint64
	MigratedBytes units.Bytes
	RecallBytes   units.Bytes
	RecallWaitNs  int64 // cumulative reader wait across recalls
}

// Utilization returns the current hot-tier utilization (0 when no
// capacity is configured).
func (t *TierBackend) Utilization() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.capacity <= 0 {
		return 0
	}
	return float64(t.hotUsed) / float64(t.capacity)
}

// Stats returns a snapshot of the tier counters.
func (t *TierBackend) Stats() Stats {
	s := Stats{
		Migrations:    t.migrations.Load(),
		Premigrations: t.premigrations.Load(),
		Recalls:       t.recalls.Load(),
		RecallErrors:  t.recallErrors.Load(),
		MigratedBytes: units.Bytes(t.migratedBytes.Load()),
		RecallBytes:   units.Bytes(t.recallBytes.Load()),
		RecallWaitNs:  t.recallWaitNs.Load(),
	}
	t.mu.Lock()
	s.HotUsed = t.hotUsed
	s.HotCapacity = t.capacity
	if t.capacity > 0 {
		s.HotUtilization = float64(t.hotUsed) / float64(t.capacity)
	}
	for _, e := range t.files {
		if e.writing {
			continue
		}
		s.Files++
		if e.pinned {
			s.Pinned++
		}
		switch e.state {
		case Resident:
			s.Resident++
		case Premigrated:
			s.Premigrated++
		case Migrated:
			s.Migrated++
		}
	}
	t.mu.Unlock()
	return s
}

// VerifyRoundTrip checks that reading path yields content matching
// the recorded checksum — the byte-identical invariant the tests and
// lsdfctl's tier verify lean on.
func (t *TierBackend) VerifyRoundTrip(path string) error {
	t.mu.Lock()
	e, ok := t.files[path]
	if !ok || e.writing {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, t.name, path)
	}
	want := e.checksum
	t.mu.Unlock()
	r, err := t.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return err
	}
	if got := hex.EncodeToString(h.Sum(nil)); want != "" && got != want {
		return fmt.Errorf("%w: %s", ErrChecksum, path)
	}
	return nil
}

package tiering

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/adal"
	"repro/internal/units"
)

// BenchmarkRecall measures the transparent-recall hot path: Open on a
// migrated object (cold read + checksum verify + hot rewrite). The
// re-migration between iterations is excluded from the timing.
func BenchmarkRecall(b *testing.B) {
	for _, size := range []units.Bytes{64 * units.KiB, 1 * units.MiB} {
		b.Run(size.SI(), func(b *testing.B) {
			hot := adal.NewMemFS("hot")
			cold := adal.NewMemFS("cold")
			tier, err := New("tier", hot, cold, Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer tier.Close()
			data := bytes.Repeat([]byte{0xAB}, int(size))
			w, err := tier.Create("/bench/obj")
			if err != nil {
				b.Fatal(err)
			}
			w.Write(data)
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			if err := tier.Migrate("/bench/obj"); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := tier.Open("/bench/obj")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, r); err != nil {
					b.Fatal(err)
				}
				r.Close()
				b.StopTimer()
				if err := tier.Migrate("/bench/obj"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkMigrationUnderIngest measures sustained ingest throughput
// into a hot tier kept at its watermark by the background migration
// pool — the write path's end-to-end cost including the tier's
// bookkeeping, checksumming, and the migrations it provokes.
func BenchmarkMigrationUnderIngest(b *testing.B) {
	const objSize = 64 * units.KiB
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			hot := adal.NewMemFS("hot")
			cold := adal.NewMemFS("cold")
			tier, err := New("tier", hot, cold, Config{
				Policy:           Policy{HighWatermark: 0.85, LowWatermark: 0.60},
				HotCapacity:      4 * units.MiB,
				MigrationWorkers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer tier.Close()
			data := bytes.Repeat([]byte{0x5A}, int(objSize))
			b.SetBytes(int64(objSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := tier.Create(fmt.Sprintf("/bench/obj%08d", i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.Write(data); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			tier.Scan()
			tier.Wait()
			b.StopTimer()
			if tier.Stats().Migrations == 0 && b.N > 64 {
				b.Fatal("benchmark migrated nothing")
			}
		})
	}
}

// BenchmarkHotOpen is the control: Open on a resident object must
// cost barely more than the underlying backend's Open.
func BenchmarkHotOpen(b *testing.B) {
	hot := adal.NewMemFS("hot")
	cold := adal.NewMemFS("cold")
	tier, err := New("tier", hot, cold, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	w, err := tier.Create("/bench/hot")
	if err != nil {
		b.Fatal(err)
	}
	w.Write(bytes.Repeat([]byte{1}, 64*1024))
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tier.Open("/bench/hot")
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

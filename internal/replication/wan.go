package replication

import (
	"sync"
	"time"

	"repro/internal/units"
)

// WAN is a fluid model of the inter-site network for the live
// transfer engine: each ordered site pair has a bandwidth and a
// latency, and the engine paces every transferred chunk so a
// transfer's wall time approximates bytes/bandwidth + latency — the
// same arithmetic internal/netsim runs in virtual time, applied to
// real goroutines. Degrading a link (SetLink with a lower rate)
// immediately slows in-flight transfers, which is how experiments
// show degraded-link behavior without packet simulation.
//
// A nil *WAN disables pacing entirely (LAN-speed copies); a zero
// Rate on a link means that link is unconstrained.
type WAN struct {
	mu      sync.Mutex
	defRate units.Rate
	defLat  time.Duration
	links   map[[2]string]wanLink

	// sleep is swappable for tests.
	sleep func(time.Duration)
}

type wanLink struct {
	rate units.Rate
	lat  time.Duration
}

// NewWAN creates a WAN model whose unlisted links default to rate
// and latency.
func NewWAN(rate units.Rate, latency time.Duration) *WAN {
	return &WAN{
		defRate: rate,
		defLat:  latency,
		links:   make(map[[2]string]wanLink),
		sleep:   time.Sleep,
	}
}

// SetLink overrides one directed site pair — the degraded-link and
// asymmetric-route knob.
func (w *WAN) SetLink(src, dst string, rate units.Rate, latency time.Duration) {
	w.mu.Lock()
	w.links[[2]string{src, dst}] = wanLink{rate: rate, lat: latency}
	w.mu.Unlock()
}

func (w *WAN) link(src, dst string) wanLink {
	w.mu.Lock()
	defer w.mu.Unlock()
	if l, ok := w.links[[2]string{src, dst}]; ok {
		return l
	}
	return wanLink{rate: w.defRate, lat: w.defLat}
}

// Latency returns the one-way latency of the src->dst link; the
// engine pays it once per transfer (stream setup).
func (w *WAN) Latency(src, dst string) time.Duration {
	if w == nil {
		return 0
	}
	return w.link(src, dst).lat
}

// Pace blocks for the time n bytes occupy the src->dst link. The
// engine calls it per chunk, so a mid-transfer SetLink takes effect
// at the next chunk boundary.
func (w *WAN) Pace(src, dst string, n int) {
	if w == nil || n <= 0 {
		return
	}
	l := w.link(src, dst)
	if l.rate <= 0 {
		return
	}
	d := time.Duration(float64(n) / float64(l.rate) * float64(time.Second))
	if d > 0 {
		w.sleep(d)
	}
}

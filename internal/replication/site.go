package replication

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/adal"
)

// ErrSiteDown is returned by every operation against a site marked
// down. The gate sits in front of the backend — a down MemFS site
// keeps its bytes, exactly like a real site behind a severed WAN
// link — and is also checked on every Read of an already-open
// stream, so an outage fails in-flight reads too (which is what the
// federated reader's mid-stream failover recovers from).
var ErrSiteDown = errors.New("replication: site down")

// Site is one storage location participating in the federation: a
// name, a backend, and a distance that orders read preference (the
// "nearest replica" metric — hop count, RTT class, or administrative
// preference; lower is nearer).
type Site struct {
	Name     string
	Backend  adal.Backend
	Distance int

	down atomic.Bool
}

// NewSite wraps a backend as a federation site.
func NewSite(name string, b adal.Backend, distance int) *Site {
	return &Site{Name: name, Backend: b, Distance: distance}
}

// SetDown marks the site failed (true) or revived (false). Down
// sites fail every operation, including reads in flight.
func (s *Site) SetDown(down bool) { s.down.Store(down) }

// IsDown reports the site's health gate.
func (s *Site) IsDown() bool { return s.down.Load() }

func (s *Site) errDown() error {
	return fmt.Errorf("%w: %s", ErrSiteDown, s.Name)
}

// open gates Backend.Open and wraps the stream so a kill mid-read
// surfaces as ErrSiteDown on the next Read.
func (s *Site) open(path string) (io.ReadCloser, error) {
	if s.IsDown() {
		return nil, s.errDown()
	}
	r, err := s.Backend.Open(path)
	if err != nil {
		return nil, err
	}
	return &gatedReader{site: s, r: r}, nil
}

type gatedReader struct {
	site *Site
	r    io.ReadCloser
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.site.IsDown() {
		return 0, g.site.errDown()
	}
	return g.r.Read(p)
}

func (g *gatedReader) Close() error { return g.r.Close() }

// openAt opens the site's copy of path fast-forwarded to offset —
// the resume primitive shared by the engine's mid-copy source
// failover and the federated reader's mid-stream switch.
func (s *Site) openAt(path string, offset int64) (io.ReadCloser, error) {
	r, err := s.open(path)
	if err != nil {
		return nil, err
	}
	if offset > 0 {
		if _, err := io.CopyN(io.Discard, r, offset); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// create gates Backend.Create; a kill mid-write fails the Write/Close.
func (s *Site) create(path string) (io.WriteCloser, error) {
	if s.IsDown() {
		return nil, s.errDown()
	}
	w, err := s.Backend.Create(path)
	if err != nil {
		return nil, err
	}
	return &gatedWriter{site: s, w: w}, nil
}

type gatedWriter struct {
	site *Site
	w    io.WriteCloser
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	if g.site.IsDown() {
		return 0, g.site.errDown()
	}
	return g.w.Write(p)
}

func (g *gatedWriter) Close() error {
	if g.site.IsDown() {
		// Still close the underlying writer so the backend releases
		// its reservation, but report the outage.
		_ = g.w.Close()
		return g.site.errDown()
	}
	return g.w.Close()
}

func (s *Site) stat(path string) (adal.FileInfo, error) {
	if s.IsDown() {
		return adal.FileInfo{}, s.errDown()
	}
	return s.Backend.Stat(path)
}

func (s *Site) list(prefix string) ([]adal.FileInfo, error) {
	if s.IsDown() {
		return nil, s.errDown()
	}
	return s.Backend.List(prefix)
}

func (s *Site) remove(path string) error {
	if s.IsDown() {
		return s.errDown()
	}
	return s.Backend.Remove(path)
}

// sortSites orders sites by distance, name as tie-break — the
// deterministic "nearest first" preference used by reads and by the
// engine's source/destination selection.
func sortSites(sites []*Site) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0 && nearer(sites[j], sites[j-1]); j-- {
			sites[j], sites[j-1] = sites[j-1], sites[j]
		}
	}
}

func nearer(a, b *Site) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Name < b.Name
}

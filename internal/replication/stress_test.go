package replication

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentFailoverDuringKillRevive is the -race gate for the
// read path: readers hammer fully-replicated objects while sites are
// killed and revived one at a time. Every read must succeed with the
// right bytes — the acceptance invariant of E14.
func TestConcurrentFailoverDuringKillRevive(t *testing.T) {
	fb, eng, _, sites, _ := testFed(t, Config{Streams: 8})
	const (
		objects = 16
		readers = 8
		loops   = 40
	)
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i), byte(i >> 3)}, 8*1024)
	}
	for i := 0; i < objects; i++ {
		writeObject(t, fb, fmt.Sprintf("/st/%03d", i), payload(i))
	}
	eng.Wait()

	stop := make(chan struct{})
	var failed atomic.Uint64
	var readerWG, killerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for l := 0; l < loops; l++ {
				i := (r*loops + l) % objects
				path := fmt.Sprintf("/st/%03d", i)
				rd, err := fb.Open(path)
				if err != nil {
					failed.Add(1)
					t.Errorf("open %s: %v", path, err)
					continue
				}
				got, rerr := io.ReadAll(rd)
				rd.Close()
				if rerr != nil {
					failed.Add(1)
					t.Errorf("read %s: %v", path, rerr)
				} else if !bytes.Equal(got, payload(i)) {
					failed.Add(1)
					t.Errorf("read %s: wrong bytes (%d)", path, len(got))
				}
			}
		}(r)
	}
	// Kill/revive one site at a time; MinReplicas=2 guarantees a
	// surviving valid replica for every object.
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		k := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := sites[k%len(sites)]
			s.SetDown(true)
			time.Sleep(2 * time.Millisecond)
			s.SetDown(false)
			time.Sleep(time.Millisecond)
			k++
		}
	}()
	readerWG.Wait()
	close(stop)
	killerWG.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d failed reads during kill/revive", failed.Load())
	}
	eng.Wait()
}

// TestCatalogConvergesAfterArbitraryKillSchedules is the seeded
// property test: whatever kill/revive/write/read schedule runs, once
// every site is back and one Reconcile sweep drains, every path holds
// at least MinReplicas valid, checksum-verified replicas.
func TestCatalogConvergesAfterArbitraryKillSchedules(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fb, eng, cat, sites, _ := testFed(t, Config{Streams: 6})
			nextObj := 0
			write := func() bool {
				for _, s := range sites {
					if !s.IsDown() {
						path := fmt.Sprintf("/pr/%03d", nextObj)
						writeObject(t, fb, path, bytes.Repeat([]byte{byte(nextObj)}, 2048+nextObj*7))
						nextObj++
						return true
					}
				}
				return false
			}
			for i := 0; i < 6; i++ {
				write()
			}
			eng.Wait()

			for round := 0; round < 8; round++ {
				// Arbitrary site state: each site independently down
				// with p=0.4, but never all three.
				up := 0
				for _, s := range sites {
					down := rng.Float64() < 0.4
					s.SetDown(down)
					if !down {
						up++
					}
				}
				if up == 0 {
					sites[rng.Intn(len(sites))].SetDown(false)
				}
				// Churn: reads (failures tolerated mid-schedule),
				// occasional writes and reconciles.
				for i := 0; i < 5; i++ {
					if nextObj > 0 {
						path := fmt.Sprintf("/pr/%03d", rng.Intn(nextObj))
						if r, err := fb.Open(path); err == nil {
							buf := make([]byte, 1024)
							for {
								if _, err := r.Read(buf); err != nil {
									break
								}
							}
							r.Close()
						}
					}
					if rng.Float64() < 0.3 {
						write()
					}
				}
				if rng.Float64() < 0.5 {
					eng.Reconcile()
				}
			}

			// Full revival + one sweep = convergence.
			for _, s := range sites {
				s.SetDown(false)
			}
			eng.Reconcile()
			eng.Wait()
			// A second sweep covers jobs that failed right at the end
			// of the schedule (their retry budget died with a site).
			eng.Reconcile()
			eng.Wait()

			min := eng.MinReplicas()
			for _, path := range cat.Paths() {
				if n := cat.CountValid(path); n < min {
					t.Errorf("%s: %d valid replicas after convergence, want >= %d (%+v)",
						path, n, min, cat.Replicas(path))
				}
				valid, err := eng.Verify(path)
				if err != nil {
					t.Errorf("verify %s: %v", path, err)
				} else if valid < min {
					t.Errorf("%s: only %d replicas verified", path, valid)
				}
			}
			eng.Wait()
		})
	}
}

// Package replication is the multi-site layer of the facility: a
// replica catalog tracks which sites hold which objects and in what
// state, an asynchronous transfer engine drives under-replicated
// objects toward a MinReplicas target over bandwidth-aware WAN
// streams, and a FederatedBackend serves reads from the nearest
// valid replica with transparent failover — the "Any Data, Any Time,
// Anywhere" discipline applied to the LSDF's remote communities.
//
// The subsystem composes the prior layers rather than bypassing
// them: every byte moves through ordinary adal.Backend streams (so a
// site may be a MemFS, a LocalFS, an object-store bucket or a tiered
// backend whose migrated objects recall transparently mid-copy), the
// engine learns about new data from the metadata event bus, and every
// catalog transition is published back onto that bus as
// metadata.EventReplica — the DataBrowser and the rule engine observe
// convergence without polling.
//
// # Replica life cycle
//
//	Pending -> Copying -> Valid
//	   ^                   |
//	   |        read error / checksum mismatch
//	   +------ Stale / Lost
//
// A replica is Pending once the engine has decided a site should
// hold the object, Copying while a transfer is in flight, and Valid
// after the copy's SHA-256 matched the recorded content hash. A
// failed site read marks the replica Stale (Lost when the site
// reports not-found) and enqueues re-replication; a revived site's
// stale replicas are re-verified by checksum and flipped back to
// Valid without a duplicate transfer when the bytes survived the
// outage.
package replication

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metadata"
	"repro/internal/units"
)

// State is a replica's catalog state.
type State int

// Replica states.
const (
	// Pending: the engine has scheduled this site to hold a copy.
	Pending State = iota
	// Copying: a transfer toward this site is in flight.
	Copying
	// Valid: the site holds a checksum-verified copy.
	Valid
	// Stale: a read failed or a verify mismatched; the bytes on the
	// site are suspect and the replica must be refreshed.
	Stale
	// Lost: the site reported the object missing entirely.
	Lost
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Copying:
		return "copying"
	case Valid:
		return "valid"
	case Stale:
		return "stale"
	case Lost:
		return "lost"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Replica is one site's copy of one object.
type Replica struct {
	Site       string
	State      State
	Size       units.Bytes
	Checksum   string // hex SHA-256 of the content
	LastVerify time.Time
	LastError  string
}

// CatalogConfig tunes a Catalog.
type CatalogConfig struct {
	// Meta, when set, receives a metadata.EventReplica for every
	// state transition.
	Meta *metadata.Store
	// MountPrefix is prepended to backend-relative paths in replica
	// events so they match the federated paths ingest registers.
	MountPrefix string
	// Clock injects a timestamp source (default time.Now).
	Clock func() time.Time
}

// Catalog is the authoritative replica map: path -> site -> Replica.
// All methods are safe for concurrent use. Mutations publish
// metadata.EventReplica on the configured store's bus; the catalog
// lock is never held across event delivery, so subscribers may call
// back into the catalog.
type Catalog struct {
	meta   *metadata.Store
	prefix string
	clock  func() time.Time

	mu    sync.RWMutex
	paths map[string]map[string]*Replica
}

// NewCatalog creates an empty catalog.
func NewCatalog(cfg CatalogConfig) *Catalog {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Catalog{
		meta:   cfg.Meta,
		prefix: cfg.MountPrefix,
		clock:  cfg.Clock,
		paths:  make(map[string]map[string]*Replica),
	}
}

// event publishes one replica transition after the lock is released.
func (c *Catalog) event(path, site, state string) {
	if c.meta != nil {
		c.meta.NoteReplica(c.prefix+path, site, state)
	}
}

// Set records a replica wholesale (the engine's commit point after a
// verified copy, and the federated writer's registration of the home
// copy).
func (c *Catalog) Set(path string, r Replica) {
	c.mu.Lock()
	m := c.paths[path]
	if m == nil {
		m = make(map[string]*Replica)
		c.paths[path] = m
	}
	cp := r
	if cp.State == Valid && cp.LastVerify.IsZero() {
		cp.LastVerify = c.clock()
	}
	m[r.Site] = &cp
	c.mu.Unlock()
	c.event(path, r.Site, r.State.String())
}

// Mark transitions an existing replica to state, recording the error
// text for diagnostics. It reports whether the replica existed and
// actually changed state (idempotent re-marks update the error text —
// a Pending replica that keeps failing keeps its latest failure —
// but publish no event).
func (c *Catalog) Mark(path, site string, state State, errText string) bool {
	c.mu.Lock()
	r := c.paths[path][site]
	if r == nil {
		c.mu.Unlock()
		return false
	}
	changed := r.State != state
	r.State = state
	r.LastError = errText
	if state == Valid {
		r.LastVerify = c.clock()
		r.LastError = ""
	}
	c.mu.Unlock()
	if !changed {
		return false
	}
	c.event(path, site, state.String())
	return true
}

// Get returns a snapshot of one replica.
func (c *Catalog) Get(path, site string) (Replica, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r := c.paths[path][site]
	if r == nil {
		return Replica{}, false
	}
	return *r, true
}

// Replicas returns snapshots of every replica of path, sorted by
// site name.
func (c *Catalog) Replicas(path string) []Replica {
	c.mu.RLock()
	m := c.paths[path]
	out := make([]Replica, 0, len(m))
	for _, r := range m {
		out = append(out, *r)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// ValidSites returns the sites holding a Valid replica of path,
// sorted by name.
func (c *Catalog) ValidSites(path string) []string {
	c.mu.RLock()
	var out []string
	for site, r := range c.paths[path] {
		if r.State == Valid {
			out = append(out, site)
		}
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// CountValid returns the number of Valid replicas of path.
func (c *Catalog) CountValid(path string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, r := range c.paths[path] {
		if r.State == Valid {
			n++
		}
	}
	return n
}

// Checksum returns the recorded content hash and logical size of
// path, taken from any replica that knows them (the home copy records
// both at write time; transfers propagate them).
func (c *Catalog) Checksum(path string) (string, units.Bytes, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, r := range c.paths[path] {
		if r.Checksum != "" {
			return r.Checksum, r.Size, true
		}
	}
	return "", 0, false
}

// Paths returns every cataloged path, sorted.
func (c *Catalog) Paths() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.paths))
	for p := range c.paths {
		out = append(out, p)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Known reports whether path has any catalog entry.
func (c *Catalog) Known(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.paths[path]) > 0
}

// Drop removes one site's replica record.
func (c *Catalog) Drop(path, site string) {
	c.mu.Lock()
	m := c.paths[path]
	_, had := m[site]
	delete(m, site)
	if len(m) == 0 {
		delete(c.paths, path)
	}
	c.mu.Unlock()
	if had {
		c.event(path, site, "dropped")
	}
}

// DropPath removes every replica record of path (object deletion).
func (c *Catalog) DropPath(path string) {
	c.mu.Lock()
	m := c.paths[path]
	sites := make([]string, 0, len(m))
	for site := range m {
		sites = append(sites, site)
	}
	delete(c.paths, path)
	c.mu.Unlock()
	sort.Strings(sites)
	for _, site := range sites {
		c.event(path, site, "dropped")
	}
}

// Counts returns the number of replicas per state across the catalog.
func (c *Catalog) Counts() map[State]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[State]int)
	for _, m := range c.paths {
		for _, r := range m {
			out[r.State]++
		}
	}
	return out
}

package replication

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/adal"
	"repro/internal/units"
)

func benchFed(b *testing.B, min int) (*FederatedBackend, *Engine, *Catalog, []*Site) {
	b.Helper()
	sites := []*Site{
		NewSite("kit", adal.NewMemFS("kit"), 0),
		NewSite("gridka", adal.NewMemFS("gridka"), 1),
		NewSite("desy", adal.NewMemFS("desy"), 2),
	}
	cat := NewCatalog(CatalogConfig{}) // no bus: measure the data path
	eng, err := NewEngine(Config{Catalog: cat, Sites: sites, MinReplicas: min, Streams: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return NewFederated("fed", eng), eng, cat, sites
}

// BenchmarkReplicate measures end-to-end fan-out: a federated write
// followed by the asynchronous transfers that bring the object to
// MinReplicas=2. SetBytes counts the logical object size, so the
// reported MB/s is application throughput (the engine moves ~2x
// that: home write + one transfer).
func BenchmarkReplicate(b *testing.B) {
	fb, eng, _, _ := benchFed(b, 2)
	const objSize = 256 * units.KiB
	data := bytes.Repeat([]byte("r"), int(objSize))
	b.SetBytes(int64(objSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/b/%06d", i)
		w, err := fb.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
	eng.Wait()
	b.StopTimer()
	if st := eng.Stats(); st.Transfers != uint64(b.N) || st.Failures != 0 {
		b.Fatalf("transfers = %d failures = %d for %d objects", st.Transfers, st.Failures, b.N)
	}
}

// BenchmarkDirectRead is the baseline: every site up, the read is
// served by the nearest valid replica with no failover machinery
// engaged beyond candidate selection.
func BenchmarkDirectRead(b *testing.B) {
	fb, eng, _, _ := benchFed(b, 3)
	const objSize = 256 * units.KiB
	writeBench(b, fb, "/b/obj", int(objSize))
	eng.Wait()
	b.SetBytes(int64(objSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readBench(b, fb, "/b/obj")
	}
}

// BenchmarkFailoverRead measures the degraded path: the nearest
// replica's site is down, and each Open re-marks that replica valid
// so every iteration pays the full failover — try nearest, fail,
// mark stale, switch to the next site.
func BenchmarkFailoverRead(b *testing.B) {
	fb, eng, cat, sites := benchFed(b, 3)
	const objSize = 256 * units.KiB
	writeBench(b, fb, "/b/obj", int(objSize))
	eng.Wait()
	nearest := sites[0]
	nearest.SetDown(true)
	b.SetBytes(int64(objSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.Mark("/b/obj", nearest.Name, Valid, "")
		readBench(b, fb, "/b/obj")
	}
	b.StopTimer()
	eng.Wait()
}

// TestFederatedReadCopyIsPooled pins the pooled-buffer read path:
// copying a federated read into a destination that is not an
// io.ReaderFrom (here a SHA-256 hash, the shape of every verify and
// cache fill) must go through failoverReader.WriteTo and the shared
// buffer pool, not a fresh 32 KiB io.Copy buffer per read. The
// threshold of 16 KiB/read would catch that regression an order of
// magnitude before it reappears.
func TestFederatedReadCopyIsPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	sites := []*Site{
		NewSite("kit", adal.NewMemFS("kit"), 0),
		NewSite("gridka", adal.NewMemFS("gridka"), 1),
		NewSite("desy", adal.NewMemFS("desy"), 2),
	}
	cat := NewCatalog(CatalogConfig{})
	eng, err := NewEngine(Config{Catalog: cat, Sites: sites, MinReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	fb := NewFederated("fed", eng)

	const objSize = 256 * units.KiB
	writeObject(t, fb, "/b/obj", bytes.Repeat([]byte("p"), int(objSize)))
	eng.Wait()

	h := sha256.New()
	readOnce := func() {
		r, err := fb.Open("/b/obj")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(h, r); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	readOnce() // warm the buffer pool and any lazy state

	const reads = 64
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < reads; i++ {
		readOnce()
	}
	runtime.ReadMemStats(&after)
	perRead := (after.TotalAlloc - before.TotalAlloc) / reads
	if perRead > 16*1024 {
		t.Fatalf("federated read copy allocates %d B/read, want ≤ 16 KiB (pooled)", perRead)
	}
}

func writeBench(b *testing.B, fb *FederatedBackend, path string, size int) {
	b.Helper()
	w, err := fb.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte("d"), size)); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

func readBench(b *testing.B, fb *FederatedBackend, path string) {
	b.Helper()
	r, err := fb.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		b.Fatal(err)
	}
	r.Close()
}

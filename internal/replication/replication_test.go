package replication

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/tiering"
	"repro/internal/units"
)

// testFed builds a 3-site federation with MinReplicas=2 over MemFS
// backends, wired to a metadata store.
func testFed(t *testing.T, cfg Config) (*FederatedBackend, *Engine, *Catalog, []*Site, *metadata.Store) {
	t.Helper()
	meta := metadata.NewStore()
	sites := []*Site{
		NewSite("kit", adal.NewMemFS("kit"), 0),
		NewSite("gridka", adal.NewMemFS("gridka"), 1),
		NewSite("desy", adal.NewMemFS("desy"), 2),
	}
	cat := NewCatalog(CatalogConfig{Meta: meta, MountPrefix: "/sites"})
	cfg.Catalog = cat
	cfg.Sites = sites
	if cfg.MinReplicas == 0 {
		cfg.MinReplicas = 2
	}
	cfg.Meta = meta
	cfg.MountPrefix = "/sites"
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return NewFederated("fed", eng), eng, cat, sites, meta
}

func writeObject(t *testing.T, fb *FederatedBackend, path string, data []byte) {
	t.Helper()
	w, err := fb.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, fb *FederatedBackend, path string) []byte {
	t.Helper()
	r, err := fb.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// nearestValid returns the site a federated read would be served
// from: the nearest (sites are in distance order) holder of a valid
// replica.
func nearestValid(t *testing.T, cat *Catalog, sites []*Site, path string) *Site {
	t.Helper()
	valid := make(map[string]bool)
	for _, name := range cat.ValidSites(path) {
		valid[name] = true
	}
	for _, s := range sites {
		if valid[s.Name] {
			return s
		}
	}
	t.Fatalf("no valid replica of %s", path)
	return nil
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "pending", Copying: "copying", Valid: "valid",
		Stale: "stale", Lost: "lost", State(42): "state(42)",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("State(%d).String() = %q, want %q", int(st), st.String(), s)
		}
	}
}

func TestCreateReplicatesToMinReplicas(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	data := bytes.Repeat([]byte("lsdf"), 4096)
	writeObject(t, fb, "/exp/run1", data)
	eng.Wait()

	if n := cat.CountValid("/exp/run1"); n < 2 {
		t.Fatalf("valid replicas = %d, want >= 2 (replicas: %+v)", n, cat.Replicas("/exp/run1"))
	}
	// The home copy plus exactly one transfer.
	if st := eng.Stats(); st.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1 (%+v)", st.Transfers, st)
	}
	// Both copies byte-identical through their sites.
	for _, site := range cat.ValidSites("/exp/run1") {
		for _, s := range sites {
			if s.Name != site {
				continue
			}
			r, err := s.Backend.Open("/exp/run1")
			if err != nil {
				t.Fatalf("site %s: %v", site, err)
			}
			got, _ := io.ReadAll(r)
			r.Close()
			if !bytes.Equal(got, data) {
				t.Fatalf("site %s content mismatch: %d vs %d bytes", site, len(got), len(data))
			}
		}
	}
	if got := readAll(t, fb, "/exp/run1"); !bytes.Equal(got, data) {
		t.Fatal("federated read mismatch")
	}
}

func TestEnsureSingleflightNoDuplicateTransfers(t *testing.T) {
	fb, eng, _, _, _ := testFed(t, Config{})
	writeObject(t, fb, "/exp/one", []byte("payload"))
	// Hammer Ensure from many goroutines while the first transfer may
	// still be in flight.
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Ensure("/exp/one")
		}()
	}
	wg.Wait()
	eng.Wait()
	st := eng.Stats()
	if st.Transfers != 1 {
		t.Fatalf("transfers = %d, want exactly 1 (dedup skips %d)", st.Transfers, st.DedupSkips)
	}
}

func TestMetadataEventDrivesReplication(t *testing.T) {
	fb, eng, cat, _, meta := testFed(t, Config{})
	// Write through a Layer + register in metadata, as ingest does.
	layer := adal.NewLayer()
	if err := layer.Mount("/sites", fb); err != nil {
		t.Fatal(err)
	}
	n, sum, err := layer.WriteChecksummed("/sites/ds/a", strings.NewReader("event-driven"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := meta.Create("proj", "/sites/ds/a", n, sum, nil); err != nil {
		t.Fatal(err)
	}
	eng.Wait()
	if got := cat.CountValid("/ds/a"); got < 2 {
		t.Fatalf("valid = %d, want >= 2", got)
	}
	// Paths outside the mount are ignored.
	if _, err := meta.Create("proj", "/ddn/unrelated", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	eng.Wait()
	if cat.Known("/ddn/unrelated") || cat.Known("/unrelated") {
		t.Fatal("engine replicated a path outside its mount")
	}
}

func TestCatalogPublishesReplicaEvents(t *testing.T) {
	meta := metadata.NewStore()
	var mu sync.Mutex
	var got []string
	meta.Subscribe(func(ev metadata.Event) {
		if ev.Type != metadata.EventReplica {
			return
		}
		mu.Lock()
		got = append(got, fmt.Sprintf("%s@%s=%s", ev.Dataset.Path, ev.Site, ev.Placement))
		mu.Unlock()
	})
	cat := NewCatalog(CatalogConfig{Meta: meta, MountPrefix: "/sites"})
	cat.Set("/x", Replica{Site: "kit", State: Pending})
	cat.Mark("/x", "kit", Copying, "")
	cat.Mark("/x", "kit", Copying, "") // idempotent: no event
	cat.Mark("/x", "kit", Valid, "")
	cat.Drop("/x", "kit")
	want := []string{
		"/sites/x@kit=pending", "/sites/x@kit=copying",
		"/sites/x@kit=valid", "/sites/x@kit=dropped",
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
}

func TestFailoverReadMarksStaleAndReReplicates(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	data := bytes.Repeat([]byte("x"), 64*1024)
	writeObject(t, fb, "/exp/f", data)
	eng.Wait()

	if valid := cat.ValidSites("/exp/f"); len(valid) != 2 {
		t.Fatalf("valid = %v", valid)
	}
	// Kill the nearest valid site; the read must transparently come
	// from the other.
	killed := nearestValid(t, cat, sites, "/exp/f")
	killed.SetDown(true)
	if got := readAll(t, fb, "/exp/f"); !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong bytes")
	}
	if fb.FedStats().Failovers == 0 {
		t.Fatal("expected an open-time failover")
	}
	// The dead site's replica was marked and re-replication restored
	// MinReplicas on the surviving sites.
	eng.Wait()
	if rep, ok := cat.Get("/exp/f", killed.Name); !ok || rep.State == Valid {
		t.Fatalf("killed site replica = %+v, want stale/lost", rep)
	}
	if n := cat.CountValid("/exp/f"); n < 2 {
		t.Fatalf("valid after failover = %d, want >= 2", n)
	}
}

func TestMidStreamFailover(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	writeObject(t, fb, "/exp/mid", data)
	eng.Wait()

	first := nearestValid(t, cat, sites, "/exp/mid")
	r, err := fb.Open("/exp/mid")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Read half, kill the serving site, read the rest.
	half := make([]byte, len(data)/2)
	if _, err := io.ReadFull(r, half); err != nil {
		t.Fatal(err)
	}
	first.SetDown(true)
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("mid-stream failover failed: %v", err)
	}
	got := append(half, rest...)
	if !bytes.Equal(got, data) {
		t.Fatalf("stitched stream mismatch: %d bytes", len(got))
	}
	if fb.FedStats().MidStream == 0 {
		t.Fatal("expected a mid-stream failover")
	}
}

func TestReviveReverifiesWithoutTransfer(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	writeObject(t, fb, "/exp/rv", bytes.Repeat([]byte("rv"), 8192))
	eng.Wait()
	victim := nearestValid(t, cat, sites, "/exp/rv")
	victim.SetDown(true)
	readAll(t, fb, "/exp/rv") // marks the dead replica stale, schedules re-replication
	eng.Wait()
	if n := cat.CountValid("/exp/rv"); n < 2 {
		t.Fatalf("valid during outage = %d", n)
	}
	transfersBefore := eng.Stats().Transfers

	victim.SetDown(false)
	eng.Reconcile()
	eng.Wait()
	eng.Verify("/exp/rv")
	st := eng.Stats()
	if st.Transfers != transfersBefore {
		t.Fatalf("revive caused %d duplicate transfers", st.Transfers-transfersBefore)
	}
	if rep, _ := cat.Get("/exp/rv", victim.Name); rep.State != Valid {
		t.Fatalf("revived replica = %+v, want valid (reverifies=%d)", rep, st.Reverifies)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	writeObject(t, fb, "/exp/c", []byte("pristine content"))
	eng.Wait()
	valid := cat.ValidSites("/exp/c")
	// Tamper with one site's copy behind the catalog's back.
	var site *Site
	for _, s := range sites {
		if s.Name == valid[0] {
			site = s
		}
	}
	if err := site.Backend.Remove("/exp/c"); err != nil {
		t.Fatal(err)
	}
	w, err := site.Backend.Create("/exp/c")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("tampered!!"))
	w.Close()

	n, err := eng.Verify("/exp/c")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("verify confirmed %d replicas, want 1", n)
	}
	eng.Wait() // the refresh re-copies the good bytes back
	if got := cat.CountValid("/exp/c"); got < 2 {
		t.Fatalf("valid after verify+repair = %d", got)
	}
	r, _ := site.Backend.Open("/exp/c")
	fixed, _ := io.ReadAll(r)
	r.Close()
	if string(fixed) != "pristine content" {
		t.Fatalf("repair left %q", fixed)
	}
}

// flakyBackend fails every Read after the first failAfter bytes of
// one stream, once, to exercise the engine's source failover.
type flakyBackend struct {
	adal.Backend
	failAfter int
	mu        sync.Mutex
	tripped   bool
}

func (f *flakyBackend) Open(path string) (io.ReadCloser, error) {
	r, err := f.Backend.Open(path)
	if err != nil {
		return nil, err
	}
	return &flakyReader{b: f, r: r}, nil
}

type flakyReader struct {
	b    *flakyBackend
	r    io.ReadCloser
	seen int
}

func (fr *flakyReader) Read(p []byte) (int, error) {
	fr.b.mu.Lock()
	tripped := fr.b.tripped
	if !tripped && fr.seen >= fr.b.failAfter {
		fr.b.tripped = true
		fr.b.mu.Unlock()
		return 0, errors.New("flaky: simulated source failure")
	}
	fr.b.mu.Unlock()
	if !tripped && fr.seen+len(p) > fr.b.failAfter {
		p = p[:fr.b.failAfter-fr.seen]
	}
	n, err := fr.r.Read(p)
	fr.seen += n
	return n, err
}

func (fr *flakyReader) Close() error { return fr.r.Close() }

func TestTransferResumesAcrossSourceFailure(t *testing.T) {
	meta := metadata.NewStore()
	flaky := &flakyBackend{Backend: adal.NewMemFS("a"), failAfter: 10 * 1024}
	sites := []*Site{
		NewSite("a", flaky, 0),
		NewSite("b", adal.NewMemFS("b"), 1),
		NewSite("c", adal.NewMemFS("c"), 2),
	}
	cat := NewCatalog(CatalogConfig{Meta: meta})
	eng, err := NewEngine(Config{
		Catalog: cat, Sites: sites, MinReplicas: 3,
		ChunkSize: 4 * units.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	fb := NewFederated("fed", eng)

	data := make([]byte, 64*1024)
	for i := range data {
		data[i] = byte(i)
	}
	// Seed the object on both a (flaky) and b so the copy to c can
	// start from a, trip, and resume from b.
	for _, s := range sites[:2] {
		w, err := s.Backend.Create("/big")
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()
	}
	sum := ""
	{
		layer := adal.NewLayer()
		layer.Mount("/", sites[1].Backend)
		sum, err = layer.Checksum("/big")
		if err != nil {
			t.Fatal(err)
		}
	}
	cat.Set("/big", Replica{Site: "a", State: Valid, Size: units.Bytes(len(data)), Checksum: sum})
	cat.Set("/big", Replica{Site: "b", State: Valid, Size: units.Bytes(len(data)), Checksum: sum})

	eng.Ensure("/big")
	eng.Wait()
	if n := cat.CountValid("/big"); n != 3 {
		t.Fatalf("valid = %d, want 3 (%+v)", n, cat.Replicas("/big"))
	}
	if eng.Stats().SourceFailovers == 0 {
		t.Fatal("expected a mid-copy source failover")
	}
	if got := readAll(t, fb, "/big"); !bytes.Equal(got, data) {
		t.Fatal("resumed copy corrupted the object")
	}
}

func TestReplicateFromTieredSiteRecalls(t *testing.T) {
	// A site whose backend is a TierBackend: replicating a migrated
	// object recalls it transparently, then copies.
	hot, cold := adal.NewMemFS("hot"), adal.NewMemFS("cold")
	tier, err := tiering.New("tiersite", hot, cold, tiering.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	meta := metadata.NewStore()
	sites := []*Site{
		NewSite("tiered", tier, 0),
		NewSite("plain", adal.NewMemFS("plain"), 1),
	}
	cat := NewCatalog(CatalogConfig{Meta: meta})
	eng, err := NewEngine(Config{Catalog: cat, Sites: sites, MinReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	fb := NewFederated("fed", eng)

	data := bytes.Repeat([]byte("cold data "), 1000)
	writeObject(t, fb, "/arch/x", data)
	// Migrate the home copy to the cold tier before replication needs
	// to read it... first drain the initial fan-out, then force the
	// state we want.
	eng.Wait()
	if err := tier.Migrate("/arch/x"); err != nil {
		t.Fatal(err)
	}
	// Drop the plain site's replica and re-ensure: the new copy must
	// come from the migrated (recall-then-copy) source.
	if err := sites[1].Backend.Remove("/arch/x"); err != nil {
		t.Fatal(err)
	}
	cat.Drop("/arch/x", "plain")
	recallsBefore := tier.Stats().Recalls
	eng.Ensure("/arch/x")
	eng.Wait()
	if n := cat.CountValid("/arch/x"); n != 2 {
		t.Fatalf("valid = %d (%+v)", n, cat.Replicas("/arch/x"))
	}
	if tier.Stats().Recalls == recallsBefore {
		t.Fatal("expected the transfer to recall the migrated source")
	}
	if got := readAll(t, fb, "/arch/x"); !bytes.Equal(got, data) {
		t.Fatal("recall-then-copy corrupted the object")
	}
}

func TestFederatedStatListRemove(t *testing.T) {
	fb, eng, cat, sites, _ := testFed(t, Config{})
	writeObject(t, fb, "/d/a", []byte("aaaa"))
	writeObject(t, fb, "/d/b", []byte("bbbbbbbb"))
	eng.Wait()

	info, err := fb.Stat("/d/a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 4 || info.Path != "/d/a" {
		t.Fatalf("stat = %+v", info)
	}
	infos, err := fb.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Path != "/d/a" || infos[1].Path != "/d/b" {
		t.Fatalf("list = %+v", infos)
	}
	// List survives a site outage.
	sites[0].SetDown(true)
	infos, err = fb.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("list during outage = %+v", infos)
	}
	sites[0].SetDown(false)

	if err := fb.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if cat.Known("/d/a") {
		t.Fatal("remove left catalog entry")
	}
	if _, err := fb.Open("/d/a"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open after remove: %v", err)
	}
	if _, err := fb.Stat("/d/missing"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("stat missing: %v", err)
	}
	if _, err := fb.Create("/d/b"); !errors.Is(err, adal.ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestWANPacing(t *testing.T) {
	var slept time.Duration
	w := NewWAN(units.BytesPerSecond(1*units.MiB), 5*time.Millisecond)
	w.sleep = func(d time.Duration) { slept += d }
	w.Pace("a", "b", int(512*units.KiB))
	if slept < 400*time.Millisecond || slept > 600*time.Millisecond {
		t.Fatalf("paced %v for 512 KiB at 1 MiB/s, want ~500ms", slept)
	}
	slept = 0
	w.SetLink("a", "b", units.BytesPerSecond(2*units.MiB), time.Millisecond)
	w.Pace("a", "b", int(512*units.KiB))
	if slept < 200*time.Millisecond || slept > 300*time.Millisecond {
		t.Fatalf("degraded-link pacing = %v, want ~250ms", slept)
	}
	if got := w.Latency("a", "b"); got != time.Millisecond {
		t.Fatalf("latency = %v", got)
	}
	if got := w.Latency("x", "y"); got != 5*time.Millisecond {
		t.Fatalf("default latency = %v", got)
	}
	// nil WAN is a no-op.
	var nilWAN *WAN
	nilWAN.Pace("a", "b", 1<<20)
	if nilWAN.Latency("a", "b") != 0 {
		t.Fatal("nil WAN latency")
	}
}

func TestWANPacedTransferRespectsPairCap(t *testing.T) {
	meta := metadata.NewStore()
	sites := []*Site{
		NewSite("src", adal.NewMemFS("src"), 0),
		NewSite("dst", adal.NewMemFS("dst"), 1),
	}
	cat := NewCatalog(CatalogConfig{Meta: meta})
	wan := NewWAN(units.BytesPerSecond(64*units.MiB), 0)
	eng, err := NewEngine(Config{
		Catalog: cat, Sites: sites, MinReplicas: 2,
		Streams: 8, PairStreams: 1, WAN: wan, ChunkSize: 16 * units.KiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Track concurrent holders of the src->dst pair by wrapping sleep.
	var mu sync.Mutex
	cur, peak := 0, 0
	wan.sleep = func(d time.Duration) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(d / 4)
		mu.Lock()
		cur--
		mu.Unlock()
	}

	fb := NewFederated("fed", eng)
	for i := 0; i < 6; i++ {
		writeObject(t, fb, fmt.Sprintf("/p/%d", i), bytes.Repeat([]byte{byte(i)}, 64*1024))
	}
	eng.Wait()
	for i := 0; i < 6; i++ {
		if n := cat.CountValid(fmt.Sprintf("/p/%d", i)); n != 2 {
			t.Fatalf("object %d: valid = %d", i, n)
		}
	}
	if peak > 1 {
		t.Fatalf("pair cap 1 but %d concurrent paced streams", peak)
	}
}

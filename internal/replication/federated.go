package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/obs"
	"repro/internal/units"
)

// FederatedBackend exposes the whole federation through the plain
// adal.Backend contract: reads resolve to the nearest site holding a
// valid replica and fail over transparently — at Open and mid-stream
// — when a site errors, marking the failed replica Stale (Lost on
// not-found) and enqueueing its re-replication; writes land on the
// nearest reachable site (the object's home) and trigger asynchronous
// fan-out to MinReplicas. This is PR 2's refresh-on-failure reader
// discipline lifted from DFS replicas to sites.
type FederatedBackend struct {
	name    string
	catalog *Catalog
	engine  *Engine
	clock   func() time.Time

	failovers    atomic.Uint64 // candidate switches at Open time
	midStream    atomic.Uint64 // reader switches mid-stream
	listFailures atomic.Uint64 // per-site List errors absorbed by the union
}

var _ adal.Backend = (*FederatedBackend)(nil)

// FederatedStats is a snapshot of the backend's failover counters.
type FederatedStats struct {
	Failovers    uint64
	MidStream    uint64
	ListFailures uint64
}

// NewFederated wraps an engine's federation as a backend.
func NewFederated(name string, engine *Engine) *FederatedBackend {
	return &FederatedBackend{
		name:    name,
		catalog: engine.catalog,
		engine:  engine,
		clock:   time.Now,
	}
}

// Name implements adal.Backend.
func (f *FederatedBackend) Name() string { return f.name }

// FedStats returns the failover counters.
func (f *FederatedBackend) FedStats() FederatedStats {
	return FederatedStats{
		Failovers:    f.failovers.Load(),
		MidStream:    f.midStream.Load(),
		ListFailures: f.listFailures.Load(),
	}
}

// ReplicaSites reports the sites holding a valid replica of the
// backend-relative path; the DataBrowser discovers this method
// structurally through the mount table.
func (f *FederatedBackend) ReplicaSites(rel string) ([]string, bool) {
	if !f.catalog.Known(rel) {
		return nil, false
	}
	return f.catalog.ValidSites(rel), true
}

// ObjectChecksum reports the catalog's recorded content hash and
// logical size for the backend-relative path. The read cache
// discovers this structurally to size admission and verify fills
// without an extra WAN round trip.
func (f *FederatedBackend) ObjectChecksum(rel string) (string, units.Bytes, bool) {
	return f.catalog.Checksum(rel)
}

// noteFailure records a failed site read: the replica is marked
// Stale (Lost when the site reports the object missing) and its
// re-replication is enqueued.
func (f *FederatedBackend) noteFailure(s *Site, path string, err error) {
	st := Stale
	if errors.Is(err, adal.ErrNotFound) {
		st = Lost
	}
	f.catalog.Mark(path, s.Name, st, err.Error())
	f.engine.Ensure(path)
}

// readCandidates orders the sites worth trying for a read of path:
// valid replicas nearest first, then stale ones (their bytes are
// suspect but better than failing), skipping sites already tried.
// Sites whose health gate is already down are returned separately —
// dialing them is pointless, but the caller still owes them the
// read-triggered bookkeeping (stale mark, failover count) so outage
// detection keeps working.
func (f *FederatedBackend) readCandidates(path string, tried map[string]bool) (cands, down []*Site) {
	var valid, stale []*Site
	for _, rep := range f.catalog.Replicas(path) {
		if tried[rep.Site] {
			continue
		}
		s, ok := f.engine.Site(rep.Site)
		if !ok {
			continue
		}
		if rep.State != Valid && rep.State != Stale {
			continue
		}
		if s.IsDown() {
			down = append(down, s)
			continue
		}
		if rep.State == Valid {
			valid = append(valid, s)
		} else {
			stale = append(stale, s)
		}
	}
	sortSites(valid)
	sortSites(stale)
	return append(valid, stale...), down
}

// noteDown records that a read skipped a known-down site: the replica
// is marked Stale, and re-replication is enqueued only on the actual
// state transition — a site that stays down through a thousand reads
// costs one catalog event and one Ensure, not a thousand.
func (f *FederatedBackend) noteDown(s *Site, path string, tried map[string]bool) error {
	tried[s.Name] = true
	err := s.errDown()
	if f.catalog.Mark(path, s.Name, Stale, err.Error()) {
		f.engine.Ensure(path)
	}
	return err
}

// Open implements adal.Backend: nearest valid replica, transparent
// failover, and a reader that keeps failing over mid-stream. Sites
// already marked down are skipped without a dial attempt — and,
// being added to tried, are never revisited within this call even
// when a concurrent noteFailure re-shuffles the candidate set.
// OpenCtx implements adal.CtxOpener: traced reads get a fed.open
// span annotated with the replica site that won, so a trace shows
// whether bytes came from the local site or crossed the WAN.
func (f *FederatedBackend) OpenCtx(ctx context.Context, path string) (io.ReadCloser, error) {
	sp := obs.StartSpan(ctx, "fed.open")
	r, err := f.Open(path)
	if fr, ok := r.(*failoverReader); ok && err == nil {
		sp.Annotate("site=%s", fr.site.Name)
	}
	sp.End()
	return r, err
}

func (f *FederatedBackend) Open(path string) (io.ReadCloser, error) {
	if !f.catalog.Known(path) {
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	tried := make(map[string]bool)
	var lastErr error
	for {
		cands, down := f.readCandidates(path, tried)
		for _, s := range down {
			lastErr = f.noteDown(s, path, tried)
			f.failovers.Add(1)
		}
		if len(cands) == 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %s:%s (no readable replica)", adal.ErrNotFound, f.name, path)
			}
			return nil, lastErr
		}
		s := cands[0]
		tried[s.Name] = true
		r, err := s.open(path)
		if err != nil {
			f.noteFailure(s, path, err)
			f.failovers.Add(1)
			lastErr = err
			continue
		}
		return &failoverReader{fb: f, path: path, site: s, cur: r, tried: tried}, nil
	}
}

// failoverReader streams one replica and, when a site dies under it,
// resumes from the next candidate at the current offset — the caller
// sees one uninterrupted byte stream.
type failoverReader struct {
	fb     *FederatedBackend
	path   string
	site   *Site
	cur    io.ReadCloser
	offset int64
	tried  map[string]bool
	closed bool
}

func (r *failoverReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("replication: read after close: %s", r.path)
	}
	for {
		n, err := r.cur.Read(p)
		r.offset += int64(n)
		if err == nil || err == io.EOF {
			return n, err
		}
		r.fb.noteFailure(r.site, r.path, err)
		if !r.switchSource() {
			return n, err
		}
		r.fb.midStream.Add(1)
		if n > 0 {
			return n, nil
		}
	}
}

// switchSource opens the next untried candidate and fast-forwards it
// to the current offset; known-down sites are skipped without a dial.
func (r *failoverReader) switchSource() bool {
	for {
		cands, down := r.fb.readCandidates(r.path, r.tried)
		for _, s := range down {
			_ = r.fb.noteDown(s, r.path, r.tried)
		}
		if len(cands) == 0 {
			return false
		}
		s := cands[0]
		r.tried[s.Name] = true
		nr, err := s.openAt(r.path, r.offset)
		if err != nil {
			r.fb.noteFailure(s, r.path, err)
			continue
		}
		r.cur.Close()
		r.cur, r.site = nr, s
		return true
	}
}

// WriteTo streams the remainder of the object through the shared
// transfer-buffer pool. Without it, an io.Copy whose destination is
// not a ReaderFrom (a checksum hash, a cache fill's multi-writer)
// allocates a fresh 32 KiB buffer per read — per-read garbage on the
// federation's hottest path. The source is wrapped to hide this very
// method from io.CopyBuffer, and the copy funnels through Read, so
// mid-stream failover keeps working under WriteTo.
func (r *failoverReader) WriteTo(w io.Writer) (int64, error) {
	return adal.PooledCopy(w, struct{ io.Reader }{r})
}

func (r *failoverReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.cur.Close()
}

// Create implements adal.Backend: the object's home is the nearest
// reachable site; closing the writer registers the home replica
// (size + SHA-256) in the catalog and schedules fan-out to
// MinReplicas.
func (f *FederatedBackend) Create(path string) (io.WriteCloser, error) {
	if f.catalog.Known(path) {
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrExists, f.name, path)
	}
	var lastErr error
	for _, s := range f.engine.Sites() {
		if s.IsDown() {
			continue
		}
		w, err := s.create(path)
		if err != nil {
			lastErr = err
			if errors.Is(err, adal.ErrExists) {
				return nil, err
			}
			continue
		}
		return adal.NewChecksumWriter(w, func(n units.Bytes, sum string, werr error) error {
			if werr != nil {
				// Gated cleanup: a home site that died mid-write keeps
				// its partial bytes, like a site behind a severed link.
				_ = s.remove(path)
				return werr
			}
			f.catalog.Set(path, Replica{
				Site: s.Name, State: Valid, Size: n, Checksum: sum,
			})
			f.engine.Ensure(path)
			return nil
		}), nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("replication: %s: every site down", f.name)
	}
	return nil, lastErr
}

// Stat implements adal.Backend from the catalog record (size and
// content hash are recorded at write time), falling back to a
// failover stat across sites for catalogs built by recovery.
func (f *FederatedBackend) Stat(path string) (adal.FileInfo, error) {
	if !f.catalog.Known(path) {
		return adal.FileInfo{}, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	if _, size, ok := f.catalog.Checksum(path); ok && size > 0 {
		for _, rep := range f.catalog.Replicas(path) {
			if rep.State != Valid {
				continue
			}
			if s, ok := f.engine.Site(rep.Site); ok && !s.IsDown() {
				if info, err := s.stat(path); err == nil {
					info.Path = path
					return info, nil
				}
			}
		}
		return adal.FileInfo{Path: path, Size: size}, nil
	}
	var lastErr error
	for _, s := range f.engine.Sites() {
		info, err := s.stat(path)
		if err == nil {
			info.Path = path
			return info, nil
		}
		lastErr = err
	}
	return adal.FileInfo{}, lastErr
}

// List implements adal.Backend as a union across sites: every
// reachable site lists the prefix (an object-store site pages through
// start-after here), per-path duplicates keep the nearest site's
// entry, and entries are filtered against the catalog so half-copied
// replicas (Pending/Copying) never surface. Sites that fail to list
// are absorbed by the union, not surfaced — listing survives an
// outage exactly as Open does.
func (f *FederatedBackend) List(prefix string) ([]adal.FileInfo, error) {
	seen := make(map[string]adal.FileInfo)
	okSites := 0
	var lastErr error
	for _, s := range f.engine.Sites() { // nearest first: first entry wins
		infos, err := s.list(prefix)
		if err != nil {
			f.listFailures.Add(1)
			lastErr = err
			continue
		}
		okSites++
		for _, info := range infos {
			if _, dup := seen[info.Path]; dup {
				continue
			}
			rep, has := f.catalog.Get(info.Path, s.Name)
			if !has || (rep.State != Valid && rep.State != Stale) {
				continue
			}
			seen[info.Path] = info
		}
	}
	if okSites == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("replication: %s: every site down", f.name)
		}
		return nil, lastErr
	}
	out := make([]adal.FileInfo, 0, len(seen))
	for _, info := range seen {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove implements adal.Backend: best-effort removal on every site
// holding a replica, then the catalog entry is dropped. A site that
// is down at removal time keeps orphaned bytes permanently — with
// the catalog entry gone, no verify or reconcile will revisit them
// (they stay invisible to reads and List, which filter through the
// catalog). A garbage collector diffing site contents against the
// catalog is the missing piece, deliberately out of scope here.
func (f *FederatedBackend) Remove(path string) error {
	if !f.catalog.Known(path) {
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	for _, rep := range f.catalog.Replicas(path) {
		if s, ok := f.engine.Site(rep.Site); ok {
			_ = s.remove(path)
		}
	}
	f.catalog.DropPath(path)
	return nil
}

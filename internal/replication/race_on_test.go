//go:build race

package replication

// raceEnabled reports whether the race detector is instrumenting
// this test binary; allocation-budget assertions are meaningless
// under its shadow allocations.
const raceEnabled = true

//go:build !race

package replication

const raceEnabled = false

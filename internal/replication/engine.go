package replication

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

// ErrChecksum is returned when a transferred replica does not match
// the recorded content hash.
var ErrChecksum = errors.New("replication: checksum mismatch")

// ErrNoSource is returned when a transfer finds no valid replica to
// copy from (every source site is down or stale).
var ErrNoSource = errors.New("replication: no valid source replica")

// Config tunes an Engine.
type Config struct {
	// Catalog is the replica catalog the engine converges. Required.
	Catalog *Catalog
	// Sites is the federation. Required, ≥ 1 site.
	Sites []*Site
	// MinReplicas is the default replication target (default 2,
	// capped at the site count).
	MinReplicas int
	// Streams sizes the transfer worker pool (default 4).
	Streams int
	// PairStreams caps concurrent transfers per ordered (src, dst)
	// site pair — the WAN-circuit limit (default 2).
	PairStreams int
	// Retries bounds transfer attempts per (path, site) job
	// (default 3).
	Retries int
	// ChunkSize is the streaming-copy granularity; each chunk is
	// hashed, written and WAN-paced before the next is read
	// (default 256 KiB).
	ChunkSize units.Bytes
	// WAN, when set, paces transfers by per-site-pair bandwidth and
	// latency. nil means LAN-speed copies.
	WAN *WAN
	// Meta, when set, is subscribed for EventCreated under
	// MountPrefix: new datasets are replicated as they are
	// registered, with no polling.
	Meta *metadata.Store
	// MountPrefix is the federation's mount point in the ADAL
	// namespace (e.g. "/sites"); events and EnsureFederated strip it.
	MountPrefix string
}

// Stats is a snapshot of the engine's lifetime counters.
type Stats struct {
	Transfers       uint64      // completed byte-moving copies
	TransferBytes   units.Bytes // bytes moved by those copies
	Retries         uint64      // failed attempts that were retried
	SourceFailovers uint64      // mid-copy switches to another source replica
	Reverifies      uint64      // replicas revalidated by checksum, no copy
	DedupSkips      uint64      // enqueues suppressed by the per-(path,site) singleflight
	Failures        uint64      // jobs that exhausted their retries
	Pending         int         // queued + in-flight jobs right now
}

type job struct {
	path string
	dst  string
}

// Engine converges the catalog toward MinReplicas valid replicas per
// path with a pool of transfer workers. Ensure (and the metadata
// subscription feeding it) is cheap and non-blocking: it schedules
// jobs into an unbounded queue guarded by a per-(path, site)
// singleflight, so repeated triggers for the same replica — a create
// event racing a rules action racing a read-failure requeue — cost
// one transfer. Wait is the quiescence barrier; Reconcile re-examines
// every cataloged path (the site-revive entry point).
type Engine struct {
	cfg     Config
	catalog *Catalog
	sites   map[string]*Site
	order   []*Site // nearest first

	mu       sync.Mutex
	queue    []job
	inflight map[string]struct{} // path+"\x00"+site
	pending  int
	closed   bool
	work     *sync.Cond // signaled when the queue gains a job or the engine closes
	idle     *sync.Cond // broadcast when pending drops to zero

	pairMu    sync.Mutex
	pairSlots map[[2]string]chan struct{}

	unsub func()
	wg    sync.WaitGroup

	transfers       atomic.Uint64
	transferBytes   atomic.Int64
	retries         atomic.Uint64
	sourceFailovers atomic.Uint64
	reverifies      atomic.Uint64
	dedupSkips      atomic.Uint64
	failures        atomic.Uint64
}

// chunkPool recycles transfer chunks across concurrent streams.
var chunkPool = sync.Pool{
	New: func() any {
		b := make([]byte, 256*units.KiB)
		return &b
	},
}

// NewEngine builds an engine over the sites and starts its workers.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("replication: Config.Catalog is required")
	}
	if len(cfg.Sites) == 0 {
		return nil, errors.New("replication: at least one site required")
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 2
	}
	if cfg.MinReplicas > len(cfg.Sites) {
		cfg.MinReplicas = len(cfg.Sites)
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 4
	}
	if cfg.PairStreams <= 0 {
		cfg.PairStreams = 2
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 256 * units.KiB
	}
	e := &Engine{
		cfg:       cfg,
		catalog:   cfg.Catalog,
		sites:     make(map[string]*Site, len(cfg.Sites)),
		order:     append([]*Site(nil), cfg.Sites...),
		inflight:  make(map[string]struct{}),
		pairSlots: make(map[[2]string]chan struct{}),
	}
	sortSites(e.order)
	for _, s := range e.order {
		if _, dup := e.sites[s.Name]; dup {
			return nil, fmt.Errorf("replication: duplicate site %q", s.Name)
		}
		e.sites[s.Name] = s
	}
	e.work = sync.NewCond(&e.mu)
	e.idle = sync.NewCond(&e.mu)
	for i := 0; i < cfg.Streams; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	if cfg.Meta != nil {
		e.unsub = cfg.Meta.Subscribe(e.onEvent)
	}
	return e, nil
}

// Close detaches the metadata subscription and stops the workers.
// Queued-but-unstarted jobs are dropped; in-flight transfers finish.
func (e *Engine) Close() {
	if e.unsub != nil {
		e.unsub()
		e.unsub = nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.pending -= len(e.queue)
	for _, j := range e.queue {
		delete(e.inflight, j.path+"\x00"+j.dst)
	}
	e.queue = nil
	if e.pending == 0 {
		e.idle.Broadcast()
	}
	e.work.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// MinReplicas returns the engine's replication target.
func (e *Engine) MinReplicas() int { return e.cfg.MinReplicas }

// Sites returns the federation, nearest first.
func (e *Engine) Sites() []*Site { return append([]*Site(nil), e.order...) }

// Site returns a site by name.
func (e *Engine) Site(name string) (*Site, bool) {
	s, ok := e.sites[name]
	return s, ok
}

// Stats returns a snapshot of the lifetime counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	pending := e.pending
	e.mu.Unlock()
	return Stats{
		Transfers:       e.transfers.Load(),
		TransferBytes:   units.Bytes(e.transferBytes.Load()),
		Retries:         e.retries.Load(),
		SourceFailovers: e.sourceFailovers.Load(),
		Reverifies:      e.reverifies.Load(),
		DedupSkips:      e.dedupSkips.Load(),
		Failures:        e.failures.Load(),
		Pending:         pending,
	}
}

// onEvent feeds the engine from the metadata bus: every dataset
// created under the federation mount is scheduled for replication.
func (e *Engine) onEvent(ev metadata.Event) {
	if ev.Type != metadata.EventCreated {
		return
	}
	e.EnsureFederated(ev.Dataset.Path)
}

// EnsureFederated is Ensure for a federated (mount-table) path; paths
// outside the federation mount are ignored.
func (e *Engine) EnsureFederated(fed string) {
	if e.cfg.MountPrefix != "" {
		if !strings.HasPrefix(fed, e.cfg.MountPrefix+"/") {
			return
		}
		fed = strings.TrimPrefix(fed, e.cfg.MountPrefix)
	}
	e.Ensure(fed)
}

// Ensure schedules whatever transfers path needs to reach the
// engine's MinReplicas target. It never blocks on transfer work.
func (e *Engine) Ensure(path string) { e.EnsureN(path, e.cfg.MinReplicas) }

// EnsureN is Ensure with an explicit target (capped at the site
// count). Replica selection prefers refreshing an existing stale or
// lost replica on a reachable site (often a cheap re-verify, never a
// duplicate copy) over opening a new site.
func (e *Engine) EnsureN(path string, min int) {
	if min > len(e.order) {
		min = len(e.order)
	}
	reps := e.catalog.Replicas(path)
	bySite := make(map[string]Replica, len(reps))
	for _, r := range reps {
		bySite[r.Site] = r
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	// A site counts toward the target if it holds a valid replica or
	// has a job in flight (which will make it valid, or fail and be
	// requeued by a later Ensure). The in-flight check must not
	// depend on a catalog record existing — the Pending record is
	// written when the job starts, and counting only cataloged sites
	// here would let an Ensure storm schedule surplus sites.
	good := 0
	busy := func(site string) bool {
		_, b := e.inflight[path+"\x00"+site]
		return b
	}
	for _, s := range e.order {
		if r, has := bySite[s.Name]; has && r.State == Valid {
			good++
		} else if busy(s.Name) {
			good++
		}
	}
	if good >= min {
		return
	}
	// Refresh existing non-valid replicas on reachable sites first,
	// nearest first; then open new replicas on reachable sites
	// without one.
	var targets []string
	for _, s := range e.order {
		r, has := bySite[s.Name]
		if has && r.State != Valid && !s.IsDown() && !busy(s.Name) {
			targets = append(targets, s.Name)
		}
	}
	for _, s := range e.order {
		if _, has := bySite[s.Name]; !has && !s.IsDown() && !busy(s.Name) {
			targets = append(targets, s.Name)
		}
	}
	for _, dst := range targets {
		if good >= min {
			return
		}
		if e.enqueueLocked(path, dst) {
			good++
		}
	}
}

// enqueueLocked schedules one (path, dst) job under the singleflight.
// Callers hold e.mu.
func (e *Engine) enqueueLocked(path, dst string) bool {
	key := path + "\x00" + dst
	if _, busy := e.inflight[key]; busy {
		e.dedupSkips.Add(1)
		return false
	}
	e.inflight[key] = struct{}{}
	e.pending++
	e.queue = append(e.queue, job{path: path, dst: dst})
	e.work.Signal()
	return true
}

// Reconcile re-examines every cataloged path — the convergence sweep
// run after a site revival or a policy change.
func (e *Engine) Reconcile() {
	for _, path := range e.catalog.Paths() {
		e.Ensure(path)
	}
}

// Wait blocks until every scheduled job has finished (the engine's
// quiescence barrier).
func (e *Engine) Wait() {
	e.mu.Lock()
	for e.pending > 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.work.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()

		e.process(j)

		e.mu.Lock()
		delete(e.inflight, j.path+"\x00"+j.dst)
		e.pending--
		if e.pending == 0 {
			e.idle.Broadcast()
		}
		e.mu.Unlock()
	}
}

// process drives one (path, dst) job to a verified replica or
// records the failure. The catalog state it leaves behind is always
// re-schedulable: anything short of Valid is picked up by the next
// Ensure/Reconcile because the singleflight entry is gone.
func (e *Engine) process(j job) {
	dst, ok := e.sites[j.dst]
	if !ok {
		e.failures.Add(1)
		return
	}
	if _, has := e.catalog.Get(j.path, j.dst); !has {
		e.catalog.Set(j.path, Replica{Site: j.dst, State: Pending})
	}
	if dst.IsDown() {
		e.catalog.Mark(j.path, j.dst, Pending, ErrSiteDown.Error())
		e.failures.Add(1)
		return
	}

	wantSum, wantSize, known := e.catalog.Checksum(j.path)

	// Cheap path: the destination may already hold the bytes (a
	// stale replica that survived an outage, a recovered partial
	// world). A checksum match revalidates without moving a byte —
	// this is what makes revive-convergence transfer-free.
	if known {
		if ok, sum, n := e.verifySite(dst, j.path, wantSum); ok {
			e.catalog.Set(j.path, Replica{
				Site: j.dst, State: Valid, Size: n, Checksum: sum,
			})
			e.reverifies.Add(1)
			return
		}
	}

	var lastErr error
	for attempt := 0; attempt < e.cfg.Retries; attempt++ {
		if attempt > 0 {
			e.retries.Add(1)
		}
		lastErr = e.copyOnce(j.path, dst, wantSum, wantSize, attempt)
		if lastErr == nil {
			return
		}
		if errors.Is(lastErr, ErrSiteDown) && dst.IsDown() {
			break // destination died; retrying cannot help until revival
		}
	}
	st := Pending
	if errors.Is(lastErr, ErrChecksum) {
		st = Stale
	}
	e.catalog.Mark(j.path, j.dst, st, lastErr.Error())
	e.failures.Add(1)
}

// verifySite re-hashes the site's copy of path and compares it with
// want. A failed open or read simply reports false — the caller
// falls back to a fresh copy.
func (e *Engine) verifySite(s *Site, path, want string) (bool, string, units.Bytes) {
	r, err := s.open(path)
	if err != nil {
		return false, "", 0
	}
	defer r.Close()
	h := sha256.New()
	n, err := adal.PooledCopy(h, r)
	if err != nil {
		return false, "", 0
	}
	sum := hex.EncodeToString(h.Sum(nil))
	return sum == want, sum, units.Bytes(n)
}

// pairSlot returns the semaphore bounding concurrent transfers on
// one ordered site pair.
func (e *Engine) pairSlot(src, dst string) chan struct{} {
	key := [2]string{src, dst}
	e.pairMu.Lock()
	defer e.pairMu.Unlock()
	ch, ok := e.pairSlots[key]
	if !ok {
		ch = make(chan struct{}, e.cfg.PairStreams)
		e.pairSlots[key] = ch
	}
	return ch
}

// sources returns the sites path can be copied from, excluding dst:
// reachable valid replicas first (nearest first, rotated by attempt
// so retries spread across sources), then — only when the copy will
// be verified against a recorded checksum — reachable stale replicas
// (their bytes are suspect, but a transfer whose end-to-end hash
// matches proves them good; this is what lets a path whose every
// valid replica died converge from a surviving stale copy), then
// unreachable valid replicas as a last resort.
func (e *Engine) sources(path, dst string, attempt int, verified bool) []*Site {
	stateOn := make(map[string]State)
	for _, rep := range e.catalog.Replicas(path) {
		stateOn[rep.Site] = rep.State
	}
	var upValid, upStale, downValid []*Site
	for _, s := range e.order {
		if s.Name == dst {
			continue
		}
		switch st, has := stateOn[s.Name]; {
		case !has:
		case st == Valid && !s.IsDown():
			upValid = append(upValid, s)
		case st == Valid:
			downValid = append(downValid, s)
		case st == Stale && verified && !s.IsDown():
			upStale = append(upStale, s)
		}
	}
	if len(upValid) > 1 && attempt > 0 {
		rot := attempt % len(upValid)
		upValid = append(upValid[rot:], upValid[:rot]...)
	}
	return append(append(upValid, upStale...), downValid...)
}

// copyOnce performs one transfer attempt: a chunked, hashed,
// WAN-paced stream from the nearest valid source into dst. A source
// that dies mid-copy is failed over — the next source is opened and
// fast-forwarded to the current offset, resuming the same
// destination stream rather than restarting it. Any terminal error
// removes the partial destination object.
func (e *Engine) copyOnce(path string, dst *Site, wantSum string, wantSize units.Bytes, attempt int) error {
	srcs := e.sources(path, dst.Name, attempt, wantSum != "")
	if len(srcs) == 0 {
		return fmt.Errorf("%w: %s", ErrNoSource, path)
	}
	src := srcs[0]

	// The pair slot models the WAN circuit of the *initiating* pair
	// and is held for the whole attempt; a mid-copy source failover
	// re-pays the new pair's latency (below) but does not re-queue on
	// the new pair's slot — swapping semaphores mid-stream risks
	// deadlock against other transfers doing the same, and failover
	// is the rare path.
	slot := e.pairSlot(src.Name, dst.Name)
	slot <- struct{}{}
	defer func() { <-slot }()

	wan := e.cfg.WAN
	if d := wan.Latency(src.Name, dst.Name); d > 0 {
		wan.sleep(d)
	}

	r, err := src.open(path)
	if err != nil {
		return fmt.Errorf("replication: source %s: %w", src.Name, err)
	}
	defer func() {
		if r != nil {
			r.Close()
		}
	}()

	// A previous failed attempt (or a stale replica being refreshed)
	// may have left an object behind; clear it so Create succeeds.
	// All destination cleanup goes through the site gate: a site that
	// dies mid-transfer keeps its bytes, like a site behind a severed
	// WAN link.
	if _, err := dst.stat(path); err == nil {
		_ = dst.remove(path)
	}
	w, err := dst.create(path)
	if err != nil {
		return fmt.Errorf("replication: destination %s: %w", dst.Name, err)
	}
	e.catalog.Mark(path, dst.Name, Copying, "")

	fail := func(err error) error {
		w.Close()
		_ = dst.remove(path)
		return err
	}

	h := sha256.New()
	bp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bp)
	var buf []byte
	if int(e.cfg.ChunkSize) <= len(*bp) {
		buf = (*bp)[:e.cfg.ChunkSize]
	} else {
		// Chunks larger than the pool unit are allocated per transfer.
		buf = make([]byte, e.cfg.ChunkSize)
	}
	var copied int64
	srcIdx := 0
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return fail(fmt.Errorf("replication: writing %s to %s: %w", path, dst.Name, werr))
			}
			h.Write(buf[:n])
			copied += int64(n)
			wan.Pace(src.Name, dst.Name, n)
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// The source died mid-copy. Resume from the next valid
			// source at the current offset instead of restarting the
			// transfer.
			next, nr, ferr := e.failoverSource(path, dst.Name, srcs, &srcIdx, copied)
			if ferr != nil {
				return fail(fmt.Errorf("replication: reading %s from %s: %w (no resume source)", path, src.Name, rerr))
			}
			e.sourceFailovers.Add(1)
			r.Close()
			r, src = nr, next
			// Stream setup on the new pair costs its latency; the
			// fast-forward itself is a ranged read (no WAN pacing —
			// the skipped prefix never crosses the link again).
			if d := wan.Latency(src.Name, dst.Name); d > 0 {
				wan.sleep(d)
			}
			continue
		}
	}
	if err := w.Close(); err != nil {
		_ = dst.remove(path)
		return fmt.Errorf("replication: committing %s on %s: %w", path, dst.Name, err)
	}

	sum := hex.EncodeToString(h.Sum(nil))
	if wantSum != "" && sum != wantSum {
		_ = dst.remove(path)
		return fmt.Errorf("%w: %s on %s: got %.12s want %.12s", ErrChecksum, path, dst.Name, sum, wantSum)
	}
	if wantSize > 0 && units.Bytes(copied) != wantSize {
		_ = dst.remove(path)
		return fmt.Errorf("%w: %s on %s: got %d bytes want %d", ErrChecksum, path, dst.Name, copied, wantSize)
	}
	e.catalog.Set(path, Replica{
		Site: dst.Name, State: Valid, Size: units.Bytes(copied), Checksum: sum,
	})
	e.transfers.Add(1)
	e.transferBytes.Add(copied)
	// A verified single-source copy also proved the source's bytes:
	// if that source was a stale replica, it just revalidated itself.
	if srcIdx == 0 && wantSum != "" {
		if rep, ok := e.catalog.Get(path, src.Name); ok && rep.State == Stale {
			e.catalog.Set(path, Replica{
				Site: src.Name, State: Valid, Size: units.Bytes(copied), Checksum: sum,
			})
			e.reverifies.Add(1)
		}
	}
	return nil
}

// failoverSource opens the next source after *idx and fast-forwards
// it to offset, advancing *idx past sources that fail.
func (e *Engine) failoverSource(path, dst string, srcs []*Site, idx *int, offset int64) (*Site, io.ReadCloser, error) {
	for *idx++; *idx < len(srcs); *idx++ {
		s := srcs[*idx]
		r, err := s.openAt(path, offset)
		if err != nil {
			continue
		}
		return s, r, nil
	}
	return nil, nil, ErrNoSource
}

// Verify re-hashes every replica of path against the recorded
// checksum, marking mismatches Stale and scheduling their refresh.
// It returns the number of replicas confirmed valid.
func (e *Engine) Verify(path string) (int, error) {
	wantSum, _, known := e.catalog.Checksum(path)
	if !known {
		return 0, fmt.Errorf("replication: no recorded checksum for %s", path)
	}
	valid := 0
	dirty := false
	for _, rep := range e.catalog.Replicas(path) {
		s, ok := e.sites[rep.Site]
		if !ok || s.IsDown() {
			continue
		}
		if rep.State != Valid && rep.State != Stale {
			continue
		}
		ok2, sum, n := e.verifySite(s, path, wantSum)
		if ok2 {
			e.catalog.Set(path, Replica{Site: rep.Site, State: Valid, Size: n, Checksum: sum})
			valid++
		} else {
			e.catalog.Mark(path, rep.Site, Stale, "verify: checksum mismatch or unreadable")
			dirty = true
		}
	}
	if dirty {
		e.Ensure(path)
	}
	return valid, nil
}

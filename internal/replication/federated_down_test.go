package replication

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adal"
	"repro/internal/metadata"
)

// dialCountingBackend counts Open calls — a dial on a site that the
// health gate already knows is down is the regression under test.
type dialCountingBackend struct {
	adal.Backend
	opens atomic.Int64
}

func (b *dialCountingBackend) Open(path string) (io.ReadCloser, error) {
	b.opens.Add(1)
	return b.Backend.Open(path)
}

// TestOpenSkipsDownSitesWithoutDial: once a site is marked down,
// federated reads must stop dialing its backend entirely — the old
// candidate loop re-attempted known-down sites on every Open, paying
// a failing dial plus unbounded catalog/Ensure churn per read.
func TestOpenSkipsDownSitesWithoutDial(t *testing.T) {
	meta := metadata.NewStore()
	backends := map[string]*dialCountingBackend{
		"kit":    {Backend: adal.NewMemFS("kit")},
		"gridka": {Backend: adal.NewMemFS("gridka")},
		"desy":   {Backend: adal.NewMemFS("desy")},
	}
	sites := []*Site{
		NewSite("kit", backends["kit"], 0),
		NewSite("gridka", backends["gridka"], 1),
		NewSite("desy", backends["desy"], 2),
	}
	cat := NewCatalog(CatalogConfig{Meta: meta, MountPrefix: "/sites"})
	eng, err := NewEngine(Config{
		Catalog: cat, Sites: sites, MinReplicas: 3,
		Meta: meta, MountPrefix: "/sites",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	fb := NewFederated("fed", eng)

	const path = "/exp/run1"
	data := bytes.Repeat([]byte("down-site "), 512)
	writeObject(t, fb, path, data)
	eng.Wait()
	if got := cat.CountValid(path); got != 3 {
		t.Fatalf("valid replicas = %d, want 3", got)
	}

	// Count the stale transitions the outage generates for the dead
	// site: the fix bounds them to one, not one per read.
	var staleEvents atomic.Int64
	defer meta.Subscribe(func(ev metadata.Event) {
		if ev.Type == metadata.EventReplica && ev.Site == "kit" && ev.Placement == "stale" {
			staleEvents.Add(1)
		}
	})()

	sites[0].SetDown(true) // kit, distance 0: the site every read prefers
	dialsBefore := backends["kit"].opens.Load()

	const readers, reads = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				if got := readAll(t, fb, path); !bytes.Equal(got, data) {
					t.Errorf("read mismatch during outage")
					return
				}
			}
		}()
	}
	wg.Wait()

	if dials := backends["kit"].opens.Load() - dialsBefore; dials != 0 {
		t.Fatalf("down site dialed %d times during outage, want 0", dials)
	}
	if fb.FedStats().Failovers == 0 {
		t.Fatal("failover counter never moved")
	}
	if rep, ok := cat.Get(path, "kit"); !ok || rep.State == Valid {
		t.Fatalf("dead replica state = %v, want stale", rep.State)
	}
	if n := staleEvents.Load(); n != 1 {
		t.Fatalf("stale transitions for the dead site = %d across %d reads, want 1", n, readers*reads)
	}
	// Re-replication still triggered from the read path: the object
	// stays at target on the survivors.
	eng.Wait()
	if got := cat.CountValid(path); got < 2 {
		t.Fatalf("valid replicas after outage = %d, want ≥ 2", got)
	}
}

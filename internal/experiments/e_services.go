package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/metadata"
	"repro/internal/rules"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// E7TagTriggeredWorkflow reproduces slide 12: tagging data in the
// DataBrowser triggers workflow execution, and finished workflows are
// stored and tagged in the DB. A batch of microscopy images is
// ingested, every image is tagged for analysis, and the provenance
// trail is verified end to end.
func E7TagTriggeredWorkflow() (*Table, error) {
	f, err := facility.New(facility.Options{AsyncWorkflows: 4})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	wf := workflow.New("segmentation")
	wf.MustAddNode("read", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		info, err := ctx.Layer.Stat(in["dataset.path"].(string))
		if err != nil {
			return nil, err
		}
		return workflow.Values{"bytes": fmt.Sprint(int64(info.Size))}, nil
	}))
	wf.MustAddNode("segment", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		out := in["dataset.path"].(string) + ".seg"
		w, err := ctx.Layer.Create(out)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "cells=%s", in["bytes"])
		w.Close()
		return workflow.Values{"output.path": out, "cells": "17"}, nil
	}), "read")
	f.Orchestrator.AddTrigger(workflow.Trigger{Tag: "analyze", Workflow: wf})

	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 8
	cfg.ImagesPerFish = 4
	cfg.ImageSize = 64 * units.KiB
	cfg.Channels = []string{"488nm"}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4})
	if _, err := pipe.Run(context.Background(), workloads.NewMicroscopy(cfg)); err != nil {
		return nil, err
	}

	datasets := f.Meta.Find(metadata.Query{Project: "zebrafish"})
	start := time.Now()
	for _, ds := range datasets {
		if err := f.Browser.Tag(ds.Path, "analyze"); err != nil {
			return nil, err
		}
	}
	f.Orchestrator.Close() // drain async workers
	wall := time.Since(start)

	hist := f.Orchestrator.History()
	failures := 0
	var latency time.Duration
	for _, rec := range hist {
		if rec.Err != nil {
			failures++
		}
		latency += rec.Finished.Sub(rec.Started)
	}
	processed := f.Meta.Find(metadata.Query{Tags: []string{"processed:segmentation"}})
	withProv := 0
	for _, ds := range processed {
		if len(ds.Processings) > 0 && ds.Processings[0].Results["cells"] == "17" {
			withProv++
		}
	}

	return &Table{
		ID:         "E7",
		Title:      "Tag-triggered workflows with provenance (slide 12)",
		PaperClaim: "tagging data triggers execution via DataBrowser; results stored and tagged in DB",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"datasets tagged", fmt.Sprint(len(datasets))},
			{"workflow runs", fmt.Sprint(len(hist))},
			{"failures", fmt.Sprint(failures)},
			{"derived objects + provenance records", fmt.Sprint(withProv)},
			{"wall time (4 async workers)", wall.Round(time.Millisecond).String()},
			{"runs/second", fmt.Sprintf("%.0f", float64(len(hist))/wall.Seconds())},
		},
		Notes: "every run leaves the paper's METADATA-N block (tool, params, results, outputs) " +
			"on the triggering dataset and a completion tag for downstream chaining.",
	}, nil
}

// E10CloudDeploy reproduces slide 11: the OpenNebula cloud is
// "reliable, highly flexible, and very fast to deploy". Deployment
// latency is measured for a single VM, a cold 24-VM burst (image
// staging contends on the shared repository), a warm burst (images
// cached on hosts), and across placement policies.
func E10CloudDeploy() (*Table, error) {
	tmpl := cloud.Template{
		Name: "sl5-analysis", CPUs: 2, MemMB: 4096,
		Image: "sl5", ImageSize: 4 * units.GB, BootTime: 30 * time.Second,
	}
	deployBurst := func(policy cloud.Policy, n int, warm bool) (cloud.Stats, int) {
		eng := sim.New(1)
		c := cloud.New(eng, policy, units.Rate(units.GB))
		for i := 0; i < 12; i++ {
			c.AddHost(fmt.Sprintf("h%02d", i), 8, 16384)
		}
		if warm {
			// Prime the caches with one deploy per host, then discard.
			var warmers []*cloud.VM
			for i := 0; i < 12; i++ {
				vm, err := c.Submit(tmpl, nil)
				if err != nil {
					panic(err)
				}
				warmers = append(warmers, vm)
			}
			eng.Run()
			for _, vm := range warmers {
				if err := c.Shutdown(vm); err != nil {
					panic(err)
				}
			}
			eng.Run()
		}
		before := len(c.Hosts())
		_ = before
		for i := 0; i < n; i++ {
			if _, err := c.Submit(tmpl, nil); err != nil {
				panic(err)
			}
		}
		eng.Run()
		st := c.Stats()
		return st, st.HostsInUse
	}

	single, _ := deployBurst(cloud.Spread, 1, false)
	cold, _ := deployBurst(cloud.Spread, 24, false)
	warm, _ := deployBurst(cloud.Spread, 24, true)
	_, packHosts := deployBurst(cloud.Pack, 24, true)
	_, spreadHosts := deployBurst(cloud.Spread, 24, true)

	return &Table{
		ID:         "E10",
		Title:      "OpenNebula cloud deployment (slide 11)",
		PaperClaim: "users deploy custom data-processing VMs; very fast to deploy",
		Columns:    []string{"case", "avg deploy", "p95 deploy", "hosts used"},
		Rows: [][]string{
			{"1 VM, cold image cache",
				fmt.Sprintf("%.0fs", single.AvgDeploySec), fmt.Sprintf("%.0fs", single.P95DeploySec), "1"},
			{"24 VMs, cold (staging contends)",
				fmt.Sprintf("%.0fs", cold.AvgDeploySec), fmt.Sprintf("%.0fs", cold.P95DeploySec), "12"},
			{"24 VMs, warm image cache",
				fmt.Sprintf("%.0fs", warm.AvgDeploySec), fmt.Sprintf("%.0fs", warm.P95DeploySec), "12"},
			{"placement: pack vs spread (24 warm VMs)", "-", "-",
				fmt.Sprintf("%d vs %d", packHosts, spreadHosts)},
		},
		Notes: "deploys are staging + boot: ~34 s cold, 30 s warm — minutes at worst under " +
			"a mass cold burst, against hours for bare-metal provisioning in 2011.",
	}, nil
}

// E11Growth reproduces slide 14: capacity grows from 2 PB to 6 PB in
// 2012, and community onboarding (KATRIN, climate, geophysics, ANKA)
// pushes ingest from ~1 PB/year toward 6 PB/year in 2014.
func E11Growth() (*Table, error) {
	points := facility.RunGrowth(facility.LSDFGrowth())
	var rows [][]string
	seen := map[int]bool{}
	for _, p := range points {
		y := p.When.Year()
		if p.When.Month() == 12 && !seen[y] {
			seen[y] = true
			rows = append(rows, []string{
				fmt.Sprintf("%d-12", y),
				p.Installed.SI(),
				p.Stored.SI(),
				fmt.Sprintf("%.2f PB/yr", float64(p.IngestPerYear)/float64(units.PB)),
				fmt.Sprintf("%.0f%%", 100*p.Utilization),
			})
		}
	}
	return &Table{
		ID:         "E11",
		Title:      "Capacity and ingest growth (slide 14)",
		PaperClaim: "improved storage: 6 PB in 2012; estimated ingest 1+ PB/yr in 2012, 6 PB/yr in 2014",
		Columns:    []string{"date", "installed", "stored", "ingest rate", "utilization"},
		Rows:       rows,
		Notes: "the onboarding plan (BioQuant, KATRIN, climate, geophysics, ANKA) drives the " +
			"ingest curve; without the 2012 expansion the facility would saturate during 2012.",
	}, nil
}

// E12Rules reproduces the slide-14 outlook: iRODS-style policy-driven
// data management. Replication-on-ingest, checksum audits and a
// deliberately corrupted registration run against a batch of objects.
func E12Rules() (*Table, error) {
	f, err := facility.New(facility.Options{})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	f.Rules.Add(rules.Rule{
		Name:      "replicate-raw",
		Event:     rules.OnCreate,
		Condition: rules.ProjectIs("zebrafish"),
		Actions:   []rules.Action{rules.Replicate("/archive")},
	})
	f.Rules.Add(rules.Rule{
		Name:    "audit",
		Event:   rules.OnTag,
		Tag:     "audit",
		Actions: []rules.Action{rules.VerifyChecksum()},
	})

	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 10
	cfg.ImagesPerFish = 5
	cfg.ImageSize = 32 * units.KiB
	cfg.Channels = []string{"488nm"}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4})
	stats, err := pipe.Run(context.Background(), workloads.NewMicroscopy(cfg))
	if err != nil {
		return nil, err
	}

	// One dataset is registered with a wrong checksum: the audit rule
	// must catch it.
	w, err := f.Layer.Create("/ddn/itg/tampered.raw")
	if err != nil {
		return nil, err
	}
	fmt.Fprint(w, "bytes that do not match the registered checksum")
	w.Close()
	bad, err := f.Meta.Create("zebrafish", "/ddn/itg/tampered.raw", 47,
		"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef", nil)
	if err != nil {
		return nil, err
	}

	for _, ds := range f.Meta.Find(metadata.Query{Project: "zebrafish"}) {
		if err := f.Meta.Tag(ds.ID, "audit"); err != nil {
			return nil, err
		}
	}

	replicated := len(f.Meta.Find(metadata.Query{Tags: []string{"replicated"}}))
	verified := len(f.Meta.Find(metadata.Query{Tags: []string{"verified"}}))
	corrupt := f.Meta.Find(metadata.Query{Tags: []string{"corrupt"}})
	audit := f.Rules.Audit()

	corruptCaught := "no"
	if len(corrupt) == 1 && corrupt[0].ID == bad.ID {
		corruptCaught = "yes"
	}
	return &Table{
		ID:         "E12",
		Title:      "Policy-driven data management, iRODS outlook (slide 14)",
		PaperClaim: "data management system iRODS (ongoing): rules automate replication and integrity",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"objects ingested", fmt.Sprint(stats.Objects)},
			{"auto-replicated on create", fmt.Sprint(replicated)},
			{"checksum-verified on audit", fmt.Sprint(verified)},
			{"tampered dataset flagged corrupt", corruptCaught},
			{"audit-log entries", fmt.Sprint(len(audit))},
		},
		Notes: "rules are event-condition-action chains over metadata events — the iRODS " +
			"micro-service model — executing against the same ADAL layer users see.",
	}, nil
}

package experiments

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain lets this test binary double as E15's ingest child: when
// re-executed with the E15 environment set, E15ChildMain takes over
// and never returns (the parent SIGKILLs it mid-ingest).
func TestMain(m *testing.M) {
	E15ChildMain()
	os.Exit(m.Run())
}

// TestAllExperimentsRun executes the full registry; every experiment
// must produce a well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if tbl.ID != r.ID {
				t.Fatalf("table ID %q, want %q", tbl.ID, r.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row width %d vs %d columns: %v", len(row), len(tbl.Columns), row)
				}
			}
			if !strings.Contains(tbl.String(), tbl.PaperClaim) {
				t.Fatal("rendering lost the paper claim")
			}
		})
	}
}

func TestE1SustainsPaperRate(t *testing.T) {
	tbl, err := E1IngestHTM()
	if err != nil {
		t.Fatal(err)
	}
	// DES row: ~500k objects/day, ~2 TB.
	des := tbl.Rows[0]
	objs, _ := strconv.Atoi(strings.TrimSuffix(des[1], "/day"))
	if objs < 490_000 || objs > 510_000 {
		t.Fatalf("objects/day = %d, want ~500k", objs)
	}
	if des[4] != "0" {
		t.Fatalf("rejected = %s", des[4])
	}
	if !strings.HasPrefix(des[2], "2.00TB") && !strings.HasPrefix(des[2], "1.99TB") {
		t.Fatalf("volume = %s, want ~2TB", des[2])
	}
}

func TestE5MatchesPaperFifteenDays(t *testing.T) {
	tbl, err := E5Transfer()
	if err != nil {
		t.Fatal(err)
	}
	ideal := parseDays(t, tbl.Rows[0][1])
	realistic := parseDays(t, tbl.Rows[1][1])
	shared := parseDays(t, tbl.Rows[2][1])
	if ideal < 9.0 || ideal > 9.5 {
		t.Fatalf("ideal = %.1f days", ideal)
	}
	if realistic < 14 || realistic > 16 {
		t.Fatalf("realistic = %.1f days, want the paper's ~15", realistic)
	}
	if shared < 3.5*ideal {
		t.Fatalf("shared = %.1f days, should be ~4x ideal", shared)
	}
}

func parseDays(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, " days"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE8ProjectsTwentyMinutes(t *testing.T) {
	tbl, err := E8Visualization()
	if err != nil {
		t.Fatal(err)
	}
	var projected string
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "60-node model") {
			projected = row[1]
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(projected, " min"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", projected, err)
	}
	if v < 18 || v > 22 {
		t.Fatalf("projected = %.1f min, want ~20 (paper)", v)
	}
}

func TestE11Reaches6PB(t *testing.T) {
	tbl, err := E11Growth()
	if err != nil {
		t.Fatal(err)
	}
	saw6PBin2012 := false
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "2012") && strings.HasPrefix(row[1], "6.00PB") {
			saw6PBin2012 = true
		}
	}
	if !saw6PBin2012 {
		t.Fatalf("no 6 PB installed during 2012: %v", tbl.Rows)
	}
}

func TestE12CatchesCorruption(t *testing.T) {
	tbl, err := E12Rules()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[0] == "tampered dataset flagged corrupt" && row[1] != "yes" {
			t.Fatalf("corruption not caught: %v", tbl.Rows)
		}
	}
}

func TestE14ZeroFailedReadsAndConvergence(t *testing.T) {
	tbl, err := E14MultiSiteReplication()
	if err != nil {
		t.Fatal(err)
	}
	row := func(name string) string {
		t.Helper()
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r[1]
			}
		}
		t.Fatalf("row %q missing: %v", name, tbl.Rows)
		return ""
	}
	if got := row("failed reads / short reads"); got != "0 / 0" {
		t.Fatalf("reads during outage failed: %s", got)
	}
	if got := row("paths at >= 2 valid after revive"); got != "72 / 72" {
		t.Fatalf("catalog did not converge: %s", got)
	}
	reads := row("reads during site outage")
	if n, err := strconv.Atoi(reads); err != nil || n == 0 {
		t.Fatalf("no reads exercised the outage window: %q", reads)
	}
}

// TestE16WANCollapseNoStaleReads pins the read-cache acceptance bar:
// >= 10x WAN byte reduction on the zipf stream, steady-state p99
// within 2x of a local direct read, and zero failed or stale reads
// across the mid-run site kill/revive in both phases.
func TestE16WANCollapseNoStaleReads(t *testing.T) {
	tbl, err := E16HotSetReadCache()
	if err != nil {
		t.Fatal(err)
	}
	row := func(name string) string {
		t.Helper()
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r[1]
			}
		}
		t.Fatalf("row %q missing: %v", name, tbl.Rows)
		return ""
	}
	reduction, err := strconv.ParseFloat(strings.TrimSuffix(row("WAN reduction"), "x"), 64)
	if err != nil || reduction < 10 {
		t.Errorf("WAN reduction = %s, want >= 10x", row("WAN reduction"))
	}
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(row("steady-state p99 vs local"), "x"), 64)
	if err != nil || ratio > 2 {
		t.Errorf("steady-state p99 vs local = %s, want <= 2x", row("steady-state p99 vs local"))
	}
	if got := row("failed reads (direct/cached)"); got != "0 / 0" {
		t.Errorf("failed reads = %s, want 0 / 0", got)
	}
	if got := row("content mismatches (direct/cached)"); got != "0 / 0" {
		t.Errorf("stale reads served: %s", got)
	}
	if dedups, _ := strconv.Atoi(row("singleflight dedups (16-way cold burst)")); dedups == 0 {
		t.Error("cold burst produced no singleflight dedups")
	}
	if got := row("remove leaves nothing servable"); got != "true" {
		t.Errorf("remove invalidation incomplete: %s", got)
	}
	if got := row("reads during site outage (direct/cached)"); got != "600 / 600" {
		t.Errorf("outage window = %s, want 600 / 600", got)
	}
}

// TestE15ZeroLostAcked runs the real kill -9 experiment and pins the
// crash-consistency contract: the child is SIGKILLed during
// sustained batched ingest, and recovery must surface every
// acknowledged dataset (with tags, placement and replica state) and
// nothing that was never submitted.
func TestE15ZeroLostAcked(t *testing.T) {
	tbl, err := E15DurableMetadata()
	if err != nil {
		t.Fatal(err)
	}
	row := func(name string) string {
		t.Helper()
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r[1]
			}
		}
		t.Fatalf("row %q missing: %v", name, tbl.Rows)
		return ""
	}
	for _, metric := range []string{
		"lost acknowledged datasets",
		"phantom datasets",
		"acked with wrong tags/placement/replicas",
	} {
		if got := row(metric); got != "0" {
			t.Errorf("%s = %s, want 0", metric, got)
		}
	}
	ackedBatches, _ := strconv.Atoi(row("batches acknowledged before SIGKILL"))
	if ackedBatches < 25 {
		t.Errorf("only %d batches acked before the kill; the window was too small to mean anything", ackedBatches)
	}
	acked, _ := strconv.Atoi(row("datasets acknowledged"))
	recovered, _ := strconv.Atoi(row("datasets recovered"))
	if recovered < acked {
		t.Errorf("recovered %d < acknowledged %d", recovered, acked)
	}
	replayed, _ := strconv.Atoi(row("WAL records replayed"))
	snaps, _ := strconv.Atoi(row("snapshots loaded on recovery"))
	if replayed == 0 && snaps == 0 {
		t.Error("recovery touched neither snapshots nor WAL records — the experiment exercised nothing")
	}
}

// TestE17GatewayAcceptance pins the front-door acceptance bar: zero
// failed authorized requests at every admission setting, tenant-fair
// 429s under deliberate overload (the hog is throttled, the quiet
// neighbor completes everything), admission control actually
// exercised at the strict setting, and verified cached-read p99 over
// HTTP within 2x of the in-process read-cache path.
func TestE17GatewayAcceptance(t *testing.T) {
	tbl, err := E17GatewayLoad()
	if err != nil {
		t.Fatal(err)
	}
	row := func(prefix string) []string {
		t.Helper()
		for _, r := range tbl.Rows {
			if strings.HasPrefix(r[0], prefix) {
				return r
			}
		}
		t.Fatalf("row %q missing: %v", prefix, tbl.Rows)
		return nil
	}
	// failed is the last column; ops is column 1.
	for _, phase := range []string{"probe in-process", "probe over HTTP", "fleet strict", "fleet default", "fleet open"} {
		r := row(phase)
		if r[7] != "0" {
			t.Errorf("%s: %s failed requests, want 0", phase, r[7])
		}
	}
	for _, phase := range []string{"fleet strict", "fleet default", "fleet open"} {
		if r := row(phase); r[1] != "8000" {
			t.Errorf("%s: completed %s ops, want 8000", phase, r[1])
		}
	}
	ratio, err := strconv.ParseFloat(strings.TrimSuffix(row("probe p99 HTTP vs in-process")[4], "x"), 64)
	if err != nil || ratio > 2 {
		t.Errorf("cached-read p99 over HTTP = %sx in-process, want <= 2x", row("probe p99 HTTP vs in-process")[4])
	}
	if r := row("fleet strict"); r[6] == "0" {
		t.Error("strict admission setting rejected nothing; overload was not exercised")
	}
	hog, quiet := row("fairness: hog"), row("fairness: quiet")
	if hog[5] == "0" {
		t.Error("hog tenant was never throttled")
	}
	if quiet[7] != "0" || quiet[5] != "0" {
		t.Errorf("quiet neighbor suffered for the hog: failed=%s throttled=%s", quiet[7], quiet[5])
	}
	p99, err := time.ParseDuration(quiet[4])
	if err != nil || p99 > 500*time.Millisecond {
		t.Errorf("quiet neighbor p99 = %s next to a saturating hog, want < 500ms", quiet[4])
	}
}

// TestE19ObservabilityAcceptance pins the observability bar: traced
// hot reads account for >= 95% of server-side request wall time, one
// front-door scrape is fully parseable and shows counter families
// from all six subsystems (with the workload actually visible in
// them), the traced distributed job reaches the worker runtime, and
// the gateway's per-request instrument set prices under 2% on a hot
// cached read.
func TestE19ObservabilityAcceptance(t *testing.T) {
	tbl, err := E19Observability()
	if err != nil {
		t.Fatal(err)
	}
	row := func(name string) string {
		t.Helper()
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r[1]
			}
		}
		t.Fatalf("row %q missing: %v", name, tbl.Rows)
		return ""
	}
	cov, err := strconv.ParseFloat(strings.TrimSuffix(row("span coverage of request wall (median of 24 hot reads)"), "%"), 64)
	if err != nil || cov < 95 {
		t.Errorf("median span coverage = %s, want >= 95%%", row("span coverage of request wall (median of 24 hot reads)"))
	}
	if got := row("exposition lines failing to parse"); got != "0" {
		t.Errorf("%s exposition lines failed to parse", got)
	}
	if got := row("subsystem prefixes present"); got != "6 / 6" {
		t.Errorf("subsystem prefixes = %s, want 6 / 6", got)
	}
	if got := row("workload-driven counters still zero"); got != "none" {
		t.Errorf("counters the workload should have moved are zero: %s", got)
	}
	for _, want := range []string{"gw", "master", "mr"} {
		if !strings.Contains(row("layers in the traced distributed job"), want) {
			t.Errorf("job trace layers = %s, missing %q", row("layers in the traced distributed job"), want)
		}
	}
	if !strings.Contains(row("layers in a traced read"), "cache") {
		t.Errorf("read trace layers = %s, missing the cache", row("layers in a traced read"))
	}
	// The 2% bound holds only where nanoseconds are measurable: the
	// race detector multiplies every memory access, so the delta it
	// measures is the race runtime's, not the instrument set's.
	if !raceDetector {
		instr := row("with the gateway instrument set")
		open := strings.Index(instr, "(")
		ovh, err := strconv.ParseFloat(strings.TrimSuffix(instr[open+1:], "%)"), 64)
		if err != nil || ovh > 2 {
			t.Errorf("instrument-set overhead = %s, want <= +2%%", instr)
		}
	}
}

// TestE18DistributedAcceptance pins the distributed-compute bar: both
// adversity jobs byte-identical to the single-process engine with two
// workers killed and one straggling, speculative copies bounded (the
// experiment errors internally otherwise), and scale-out actually
// scaling.
func TestE18DistributedAcceptance(t *testing.T) {
	tbl, err := E18DistributedCompute()
	if err != nil {
		t.Fatal(err)
	}
	var speedup8 float64
	adversityJobs, fleetRows := 0, 0
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "scale-out: 8 workers"):
			if _, err := fmt.Sscanf(row[2], "%fx", &speedup8); err != nil {
				t.Fatalf("parsing speedup from %q: %v", row[2], err)
			}
		case strings.HasPrefix(row[0], "adversity:") && strings.Contains(row[2], "byte-identical"):
			adversityJobs++
		case strings.HasPrefix(row[0], "adversity: worker fleet"):
			fleetRows++
			if !strings.HasPrefix(row[1], "6 live of 8") {
				t.Errorf("fleet row = %q, want 6 live of 8", row[1])
			}
		}
	}
	if adversityJobs != 2 {
		t.Errorf("%d byte-identical adversity jobs, want 2", adversityJobs)
	}
	if fleetRows != 1 {
		t.Error("missing worker-fleet row")
	}
	if speedup8 < 1.5 {
		t.Errorf("8-worker speedup %.2fx, want >= 1.5x", speedup8)
	}
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adal"
	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/metadata"
	"repro/internal/units"
	"repro/internal/workloads"
)

// E1IngestHTM reproduces slide 5: the zebrafish high-throughput
// microscopes produce 4 MB images around the clock at ≈2 TB/day. Two
// measurements: (a) the facility-scale DES sustains a full day of the
// offered DAQ load through the 10 GE backbone into the DDN array;
// (b) the real ingest pipeline (checksum + store + register) is
// measured at laptop scale to show per-object costs are nowhere near
// the 23 MB/s the paper's rate requires.
func E1IngestHTM() (*Table, error) {
	// (a) Facility-scale day, in virtual time.
	s, err := facility.NewScenario(facility.ScenarioConfig{})
	if err != nil {
		return nil, err
	}
	stream := &facility.IngestStream{
		Name: "zebrafish-htm", Src: "daq", Dst: "ddn",
		Size: 4 * units.MB, Rate: units.PerDay(2 * units.TB),
	}
	res := s.RunIngest([]*facility.IngestStream{stream}, 24*time.Hour)
	day := res["zebrafish-htm"]

	// (b) Real pipeline micro-measurement: 2000 × 256 KiB objects.
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		return nil, err
	}
	meta := metadata.NewStore()
	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 42 // ≈2000 objects with 24 img × 2 channels
	cfg.ImageSize = 256 * units.KiB
	pipe := ingest.New(layer, meta, ingest.Config{Workers: 8})
	stats, err := pipe.Run(context.Background(), workloads.NewMicroscopy(cfg))
	if err != nil {
		return nil, err
	}

	return &Table{
		ID:         "E1",
		Title:      "Zebrafish HTM ingest (slide 5)",
		PaperClaim: "≈200k images/day at 4 MB each, ≈2 TB/day sustained, 24×7",
		Columns:    []string{"measurement", "objects", "volume", "rate", "rejected"},
		Rows: [][]string{
			{"DES: one DAQ day into DDN over 10GE",
				fmt.Sprintf("%d/day", day.Objects),
				day.Bytes.SI(),
				units.PerDay(day.Bytes).String(),
				fmt.Sprint(day.Rejected)},
			{"real pipeline: checksum+store+register",
				fmt.Sprint(stats.Objects),
				stats.Bytes.SI(),
				stats.Throughput().String(),
				fmt.Sprint(stats.Errors)},
		},
		Notes: "2 TB/day needs a sustained 23.1 MB/s; both the modeled backbone " +
			"and the real pipeline clear it with an order of magnitude to spare.",
	}, nil
}

// E2FacilityFill reproduces slide 7: 0.5 PB (DDN) + 1.4 PB (IBM) with
// a tape backend. The combined experiment load fills the disk tier in
// virtual time; the HSM's watermark migration keeps the IBM array
// below its high watermark by spilling the oldest data to tape.
func E2FacilityFill() (*Table, error) {
	s, err := facility.NewScenario(facility.ScenarioConfig{})
	if err != nil {
		return nil, err
	}
	streams := []*facility.IngestStream{
		{Name: "htm->ddn", Src: "daq", Dst: "ddn",
			Size: 4 * units.MB, Rate: units.PerDay(2 * units.TB), Batch: 6 * time.Hour},
		{Name: "others->ibm", Src: "daq", Dst: "ibm",
			Size: 100 * units.MB, Rate: units.PerDay(4 * units.TB), Batch: 6 * time.Hour},
	}
	horizon := units.Days(400)
	res := s.RunIngest(streams, horizon)

	// Tape tier: a second scenario exercises the HSM watermark path on
	// a scaled array (daily 1 TB files against a 100 TB array) so the
	// migration machinery — robot, drives, cartridge rotation — runs
	// for real in virtual time.
	hs, err := facility.NewScenario(facility.ScenarioConfig{
		DDNCapacity: 100 * units.TB,
		IBMCapacity: 100 * units.TB,
	})
	if err != nil {
		return nil, err
	}
	for d := 0; d < 95; d++ {
		if err := hs.HSM.Store(fmt.Sprintf("day-%03d", d), units.TB); err != nil {
			return nil, fmt.Errorf("E2: hsm store day %d: %w", d, err)
		}
	}
	hs.Eng.RunUntil(units.Days(7))
	hst := hs.HSM.Stats()
	tst := hs.Tape.Stats()

	rows := [][]string{
		{"DDN array", (500 * units.TB).SI(), s.DDN.Used().SI(),
			fmt.Sprintf("%.1f%%", 100*s.DDN.Utilization()),
			fmt.Sprintf("%d objects rejected after full", res["htm->ddn"].Rejected)},
		{"IBM array", (units.Bytes(1400) * units.TB).SI(), s.IBM.Used().SI(),
			fmt.Sprintf("%.1f%%", 100*s.IBM.Utilization()),
			fmt.Sprintf("%d objects rejected after full", res["others->ibm"].Rejected)},
		{"HSM tier (scaled 100 TB)", (100 * units.TB).SI(), hst.MigratedBytes.SI() + " to tape",
			fmt.Sprintf("%.1f%% after migration", 100*hst.DiskUtilization),
			fmt.Sprintf("%d tape mounts", tst.Mounts)},
	}
	return &Table{
		ID:         "E2",
		Title:      "Facility fill: two arrays + tape backend (slide 7)",
		PaperClaim: "currently 2 PB in 2 storage systems, tape backend for archive/backup",
		Columns:    []string{"system", "capacity", "state after run", "utilization", "events"},
		Rows:       rows,
		Notes: "At the 2011 load (2 TB/day HTM + 4 TB/day others) the 1.9 PB disk tier " +
			"fills within ~11 months — the slide-14 expansion to 6 PB in 2012 is not optional. " +
			"The HSM keeps the disk tier at its low watermark by spilling the oldest runs to tape.",
	}, nil
}

package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/units"
)

// E17 — the network front door under community-scale load (PR 8).
//
// The paper's LSDF serves its communities over the network, not
// in-process: DataBrowser sessions, DAQ ingest clients and analysis
// tooling all arrive through the facility's services layer. This
// experiment loads the reproduction's lsdfd gateway two ways.
//
// The fleet phases are the wrk-style driver: 1000 concurrent
// in-process clients (4 tenants) running a mixed workload — a
// zipf-skewed read stream over a dataset larger than the read-cache
// budget (hot reads are cache hits, tail reads walk the site
// federation), plus durable batched ingest and metadata queries — at
// three admission settings (strict, default, open per-tenant
// in-flight bounds). Recorded: throughput, p50/p99 client-observed
// latency including overload retries, and the 429/503 rejections the
// front door issued to keep itself alive. The bar: zero failed
// authorized requests at every setting — overload surfaces as
// latency, never as errors, because rejections carry honest
// Retry-After hints the client obeys.
//
// The probe phase prices the wire itself where the comparison is
// physically meaningful: checksum-verified retrieval of hot cached
// calibration blocks (3 MiB — the paper's communities verify what
// they fetch), replayed sequentially over HTTP and directly against
// the in-process read-cache stack with identical application work.
// Both sides are bandwidth/compute-bound on the same bytes, so the
// ratio isolates the gateway's copies and syscalls. The bar: HTTP
// p99 within 2x of in-process p99. (For 64 KiB fleet reads the
// wire's fixed ~1 ms cost dominates a ~3 us memcpy, so that ratio
// is recorded but meaningless to bound.)
//
// A final fairness phase runs a tenant hammering far past its rate
// (no retries, so every 429 is visible) next to a well-behaved
// tenant that must complete every request.

const (
	e17Objects = 256
	e17ObjSize = 64 * units.KiB
	e17Clients = 1000 // concurrent in-process clients (4 tenants x 250)
	e17Tenants = 4
	e17Ops     = 8 // ops per client per phase: 6 reads + 1 query + 1 ingest
	e17Seed    = 17

	e17HotObjects = 3
	e17HotSize    = 3 * units.MiB
	e17ProbeReads = 128
)

func e17Path(i int) string    { return fmt.Sprintf("/sites/exp/obj-%04d", i) }
func e17HotPath(i int) string { return fmt.Sprintf("/sites/exp/hot-%d", i) }

func e17Payload(i, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(i ^ j ^ (j >> 8))
	}
	return b
}

func e17Pct(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(float64(len(s)) * q)
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// latSink collects latencies from many goroutines without a global
// lock on the measurement path.
type latSink struct {
	lat []time.Duration
	idx atomic.Int64
}

func newLatSink(capacity int) *latSink { return &latSink{lat: make([]time.Duration, capacity)} }
func (s *latSink) add(d time.Duration) { s.lat[s.idx.Add(1)-1] = d }
func (s *latSink) all() []time.Duration {
	return s.lat[:s.idx.Load()]
}

// e17RunFleet drives one mixed-workload phase through real HTTP.
func e17RunFleet(baseURL, phase string, tokens []string, hc *http.Client) (lat []time.Duration, failed int64, wall time.Duration) {
	ctx := context.Background()
	sink := newLatSink(e17Clients * e17Ops)
	var failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < e17Clients; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			c, cerr := client.New(baseURL, tokens[gid%len(tokens)], client.Options{
				HTTPClient: hc, MaxRetries: 14, Backoff: time.Millisecond,
			})
			if cerr != nil {
				failures.Add(e17Ops)
				return
			}
			zipf := rand.NewZipf(rand.New(rand.NewSource(e17Seed+int64(gid))), 1.1, 1, e17Objects-1)
			for r := 0; r < e17Ops; r++ {
				t0 := time.Now()
				var err error
				switch r {
				case 3: // metadata query: what did my community ingest?
					_, err = c.Find(ctx, client.FindQuery{Project: "e17-daq", Limit: 8})
				case 5: // durable batched ingest of one small DAQ object
					var res gateway.IngestResult
					res, err = c.Ingest(ctx, []gateway.IngestObject{{
						Path:    fmt.Sprintf("/sites/exp/daq/%s/%04d.raw", phase, gid),
						Project: "e17-daq",
						Data:    e17Payload(gid, 4096),
						Tags:    []string{"raw"},
					}})
					if err == nil && res.Registered != 1 {
						err = fmt.Errorf("ingest not registered: %+v", res.Results)
					}
				default: // zipf read
					var data []byte
					data, err = c.ReadObject(ctx, e17Path(int(zipf.Uint64())))
					if err == nil && len(data) != int(e17ObjSize) {
						err = fmt.Errorf("short read")
					}
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				sink.add(time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	return sink.all(), failures.Load(), time.Since(start)
}

// e17ServeSetting runs one fleet phase against a gateway with the
// given per-tenant in-flight bound.
func e17ServeSetting(fac *facility.Facility, phase string, maxInFlight int, hc *http.Client) (lat []time.Duration, failed, throttled, rejected int64, wall time.Duration, err error) {
	tenants := make([]gateway.Tenant, e17Tenants)
	tokens := make([]string, e17Tenants)
	for i := range tenants {
		tokens[i] = fmt.Sprintf("e17-token-%d", i)
		tenants[i] = gateway.Tenant{
			Name: fmt.Sprintf("community-%d", i), Token: tokens[i],
			Prefixes: []string{"/sites/exp"},
			RPS:      1e6, Burst: 1 << 20, MaxInFlight: maxInFlight,
		}
	}
	srv, err := gateway.ForFacility(fac, gateway.Config{Tenants: tenants})
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	lat, failed, wall = e17RunFleet("http://"+ln.Addr().String(), phase, tokens, hc)
	for _, st := range srv.Stats() {
		throttled += st.Throttled
		rejected += st.Rejected
	}
	return lat, failed, throttled, rejected, wall, nil
}

// e17Probe measures checksum-verified cached retrieval of the hot
// blocks, over HTTP or directly in-process. Identical application
// work on both sides: read every byte, hash, compare against the
// known checksum. The replay is sequential on purpose: per-request
// service time is the quantity the 2x bound is about, and at any
// concurrency above the core count a closed loop measures scheduler
// queue depth instead (direct reads are non-yielding compute, so
// they convoy far worse than HTTP under contention — a one-core
// sweep showed direct p99 651 ms vs HTTP 238 ms at 32-way, both
// pure artifact).
func e17Probe(reads int, open func(path string) (io.ReadCloser, error), sums [][32]byte) (lat []time.Duration, failed int64) {
	sink := newLatSink(reads)
	var failures int64
	rng := rand.New(rand.NewSource(4000))
	buf := make([]byte, int(e17HotSize))
	for r := 0; r < reads; r++ {
		k := rng.Intn(e17HotObjects)
		t0 := time.Now()
		rc, err := open(e17HotPath(k))
		if err == nil {
			_, err = io.ReadFull(rc, buf)
			rc.Close()
		}
		if err != nil || sha256.Sum256(buf) != sums[k] {
			failures++
			continue
		}
		sink.add(time.Since(t0))
	}
	return sink.all(), failures
}

// E17GatewayLoad runs the front-door load experiment.
func E17GatewayLoad() (*Table, error) {
	// The facility behind the door: a two-site federation fronted by
	// a read cache smaller than the full dataset, so the zipf head is
	// served from memory and the tail walks the federation.
	fac, err := facility.New(facility.Options{
		DFSNodes: 2,
		Sites:    []string{"far1", "far2"},
		// 256 x 64 KiB + 3 x 3 MiB = 25 MiB of data, 16 MiB of cache.
		ReadCacheMemory: 16 * units.MiB,
	})
	if err != nil {
		return nil, err
	}
	defer fac.Close()
	store := func(path string, data []byte) error {
		w, err := fac.Layer.Create(path)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		return w.Close()
	}
	for i := 0; i < e17Objects; i++ {
		if err := store(e17Path(i), e17Payload(i, int(e17ObjSize))); err != nil {
			return nil, err
		}
	}
	hotSums := make([][32]byte, e17HotObjects)
	for i := 0; i < e17HotObjects; i++ {
		data := e17Payload(1000+i, int(e17HotSize))
		hotSums[i] = sha256.Sum256(data)
		if err := store(e17HotPath(i), data); err != nil {
			return nil, err
		}
	}

	// ---- probe: the price of the wire on verified cached reads ----
	openDirect := func(p string) (io.ReadCloser, error) { return fac.Layer.Open(p) }
	// Warm the hot blocks into the cache, then measure in-process.
	if _, failed := e17Probe(2*e17HotObjects, openDirect, hotSums); failed > 0 {
		return nil, fmt.Errorf("e17 probe warm: %d failed reads", failed)
	}
	probeDirect, probeDirectFailed := e17Probe(e17ProbeReads, openDirect, hotSums)

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 2 * e17Clients, MaxIdleConnsPerHost: 2 * e17Clients,
	}}
	probeSrv, err := gateway.ForFacility(fac, gateway.Config{Tenants: []gateway.Tenant{{
		Name: "probe", Token: "e17-probe", Prefixes: []string{"/sites/exp"},
		RPS: 1e6, Burst: 1 << 20, MaxInFlight: 4096,
	}}})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	probeHTTPSrv := &http.Server{Handler: probeSrv}
	go probeHTTPSrv.Serve(ln)
	probeClient, err := client.New("http://"+ln.Addr().String(), "e17-probe", client.Options{
		HTTPClient: hc, MaxRetries: 14, Backoff: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	openHTTP := func(p string) (io.ReadCloser, error) { return probeClient.Get(context.Background(), p) }
	probeHTTP, probeHTTPFailed := e17Probe(e17ProbeReads, openHTTP, hotSums)
	probeHTTPSrv.Close()

	// ---- fleet: 1000 clients, three admission settings ----
	type phase struct {
		name        string
		key         string
		maxInFlight int
		lat         []time.Duration
		failed      int64
		throttled   int64
		rejected    int64
		wall        time.Duration
	}
	phases := []*phase{
		{name: "fleet strict (in-flight 8/tenant)", key: "strict", maxInFlight: 8},
		{name: "fleet default (in-flight 32/tenant)", key: "default", maxInFlight: 32},
		{name: "fleet open (in-flight 4096/tenant)", key: "open", maxInFlight: 4096},
	}
	for _, ph := range phases {
		ph.lat, ph.failed, ph.throttled, ph.rejected, ph.wall, err =
			e17ServeSetting(fac, ph.key, ph.maxInFlight, hc)
		if err != nil {
			return nil, fmt.Errorf("e17 %s: %w", ph.name, err)
		}
	}

	// ---- fairness: noisy neighbor ----
	fair, err := e17Fairness(fac, hc)
	if err != nil {
		return nil, err
	}

	row := func(name string, lat []time.Duration, wall time.Duration, failed, throttled, rejected int64) []string {
		tput := "-"
		if wall > 0 {
			tput = fmt.Sprintf("%.0f req/s", float64(len(lat))/wall.Seconds())
		}
		return []string{
			name,
			fmt.Sprint(len(lat)),
			tput,
			e17Pct(lat, 0.50).Round(time.Microsecond).String(),
			e17Pct(lat, 0.99).Round(time.Microsecond).String(),
			fmt.Sprint(throttled),
			fmt.Sprint(rejected),
			fmt.Sprint(failed),
		}
	}
	ratio := float64(e17Pct(probeHTTP, 0.99)) / float64(e17Pct(probeDirect, 0.99))
	rows := [][]string{
		row(fmt.Sprintf("probe in-process (%d x %s verified)", e17ProbeReads, e17HotSize.SI()), probeDirect, 0, probeDirectFailed, 0, 0),
		row("probe over HTTP (same work)", probeHTTP, 0, probeHTTPFailed, 0, 0),
		{"probe p99 HTTP vs in-process", "-", "-", "-", fmt.Sprintf("%.2fx", ratio), "-", "-", "-"},
	}
	for _, ph := range phases {
		rows = append(rows, row(ph.name, ph.lat, ph.wall, ph.failed, ph.throttled, ph.rejected))
	}
	rows = append(rows,
		row("fairness: hog (no retries)", fair.hogLat, fair.wall, fair.hogFailed, fair.hogThrottled, fair.hogRejected),
		row("fairness: quiet neighbor", fair.quietLat, fair.wall, fair.quietFailed, fair.quietThrottled, fair.quietRejected),
	)

	return &Table{
		ID:    "E17",
		Title: "multi-tenant gateway under 1000-client mixed load",
		PaperClaim: "the LSDF serves its communities through shared network services " +
			"(slide 10: access layer + DataBrowser over the facility) that must stay " +
			"responsive and fair as communities contend",
		Columns: []string{"phase", "ops", "throughput", "p50", "p99", "429s", "503s", "failed"},
		Rows:    rows,
		Notes: fmt.Sprintf("%d clients / %d tenants; fleet mix = 6 zipf reads + 1 query + 1 durable ingest over %d x %s objects behind a %s cache; "+
			"latencies include client retry waits; probe = sequential checksum-verified %s cached reads, identical work both sides, so the ratio prices the wire per request rather than one-core scheduler queueing; "+
			"zero failed means every 429/503 was retried to success",
			e17Clients, e17Tenants, e17Objects, e17ObjSize.SI(), (16 * units.MiB).SI(), e17HotSize.SI()),
	}, nil
}

type e17FairResult struct {
	wall                          time.Duration
	hogLat, quietLat              []time.Duration
	hogFailed, quietFailed        int64
	hogThrottled, hogRejected     int64
	quietThrottled, quietRejected int64
}

// e17Fairness runs the noisy-neighbor phase: 64 non-retrying hog
// clients against a 100 rps bucket, 16 retrying quiet clients with
// room to spare, on one gateway.
func e17Fairness(fac *facility.Facility, hc *http.Client) (*e17FairResult, error) {
	srv, err := gateway.ForFacility(fac, gateway.Config{Tenants: []gateway.Tenant{
		{Name: "hog", Token: "e17-hog", Prefixes: []string{"/sites/exp"},
			RPS: 100, Burst: 50, MaxInFlight: 8},
		{Name: "quiet", Token: "e17-quiet", Prefixes: []string{"/sites/exp"},
			RPS: 1e6, Burst: 1 << 20, MaxInFlight: 64},
	}})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	ctx := context.Background()

	res := &e17FairResult{}
	hogSink := newLatSink(64 * 24)
	quietSink := newLatSink(16 * 48)
	var hogFailed, quietFailed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			c, _ := client.New(base, "e17-hog", client.Options{HTTPClient: hc, MaxRetries: -1})
			zipf := rand.NewZipf(rand.New(rand.NewSource(7000+int64(gid))), 1.1, 1, e17Objects-1)
			for r := 0; r < 24; r++ {
				t0 := time.Now()
				if _, err := c.ReadObject(ctx, e17Path(int(zipf.Uint64()))); err != nil {
					hogFailed.Add(1)
					continue
				}
				hogSink.add(time.Since(t0))
			}
		}(g)
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			c, _ := client.New(base, "e17-quiet", client.Options{
				HTTPClient: hc, MaxRetries: 14, Backoff: time.Millisecond})
			zipf := rand.NewZipf(rand.New(rand.NewSource(8000+int64(gid))), 1.1, 1, e17Objects-1)
			for r := 0; r < 48; r++ {
				t0 := time.Now()
				if _, err := c.ReadObject(ctx, e17Path(int(zipf.Uint64()))); err != nil {
					quietFailed.Add(1)
					continue
				}
				quietSink.add(time.Since(t0))
			}
		}(g)
	}
	wg.Wait()
	res.wall = time.Since(start)
	res.hogLat, res.quietLat = hogSink.all(), quietSink.all()
	res.hogFailed = hogFailed.Load()
	res.quietFailed = quietFailed.Load()
	st := srv.Stats()
	res.hogThrottled, res.hogRejected = st["hog"].Throttled, st["hog"].Rejected
	res.quietThrottled, res.quietRejected = st["quiet"].Throttled, st["quiet"].Rejected
	return res, nil
}

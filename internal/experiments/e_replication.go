package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/units"
)

// E14MultiSiteReplication exercises the multi-site layer the paper's
// remote communities imply (AAA's "Any Data, Any Time, Anywhere"):
// three sites, MinReplicas=2, a full site outage in the middle of
// sustained ingest — client reads must not fail (failover serves
// them), and after revival the catalog must converge back to the
// replication target without duplicate transfers. A fluid-model
// section reruns the wide-area arithmetic at facility scale: fanning
// a day's ingest out to a second site over the paper's 10 GE, intact
// and degraded.
func E14MultiSiteReplication() (*Table, error) {
	const (
		objSize    = 32 * units.KiB
		preObjects = 48 // replicated before the outage
		outObjects = 24 // ingested during the outage
		readers    = 8
	)
	f, err := facility.New(facility.Options{
		Sites:       []string{"kit", "gridka", "desy"},
		MinReplicas: 2,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	mkObjs := func(lo, n int) []*ingest.Object {
		objs := make([]*ingest.Object, n)
		for i := range objs {
			objs[i] = &ingest.Object{
				Project: "aaa",
				Path:    fmt.Sprintf("/sites/e14/obj%04d", lo+i),
				Data:    bytes.NewReader(bytes.Repeat([]byte{byte(lo + i)}, int(objSize))),
			}
		}
		return objs
	}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4, BatchSize: 8})
	if _, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: mkObjs(0, preObjects)}); err != nil {
		return nil, err
	}
	f.Replicator.Wait() // every pre-outage object at MinReplicas

	// Outage: the nearest site dies. Readers hammer the replicated
	// objects while ingest keeps running; every byte must arrive.
	f.FedSites[0].SetDown(true)
	var reads, failedReads, badBytes atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/sites/e14/obj%04d", (r+i*readers)%preObjects)
				reads.Add(1)
				rd, err := f.Layer.Open(path)
				if err != nil {
					failedReads.Add(1)
					continue
				}
				n, err := io.Copy(io.Discard, rd)
				rd.Close()
				if err != nil {
					failedReads.Add(1)
				} else if n != int64(objSize) {
					badBytes.Add(1)
				}
			}
		}(r)
	}
	outageStart := time.Now()
	if _, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: mkObjs(preObjects, outObjects)}); err != nil {
		return nil, err
	}
	f.Replicator.Wait()
	close(stop)
	wg.Wait()
	outageDur := time.Since(outageStart)

	// Revival: one reconcile sweep restores MinReplicas everywhere;
	// surviving bytes on the revived site re-verify instead of
	// re-transferring.
	f.FedSites[0].SetDown(false)
	f.Replicator.Reconcile()
	f.Replicator.Wait()

	total := preObjects + outObjects
	converged := 0
	for i := 0; i < total; i++ {
		if f.ReplicaCatalog.CountValid(fmt.Sprintf("/e14/obj%04d", i)) >= 2 {
			converged++
		}
	}
	st := f.Replicator.Stats()
	fs := f.Federation.FedStats()

	// Fluid-model WAN fan-out at facility scale: slide 5's DAQ rates
	// mean ~2 TB/day/community; replicate a 100 TB campaign to a
	// second site over the paper's dedicated 10 GE, then over a
	// degraded 1 GE reroute, 8 parallel streams each.
	wanDays := func(linkRate units.Rate) float64 {
		eng := sim.New(7)
		net := netsim.New(eng)
		net.AddDuplexLink("kit", "gridka", linkRate, 15*time.Millisecond)
		var worst time.Duration
		const streams = 8
		for i := 0; i < streams; i++ {
			if _, err := net.StartFlow(netsim.FlowSpec{
				Src: "kit", Dst: "gridka",
				Bytes:      100 * units.TB / streams,
				Efficiency: 0.9, // managed-transfer sustained efficiency
				OnComplete: func(fl *netsim.Flow) {
					if fl.Elapsed() > worst {
						worst = fl.Elapsed()
					}
				},
			}); err != nil {
				panic(err)
			}
		}
		eng.Run()
		return worst.Hours() / 24
	}
	full := wanDays(units.Gbps(10))
	degraded := wanDays(units.Gbps(1))

	return &Table{
		ID:         "E14",
		Title:      "Multi-site replication: outage failover + convergence (AAA)",
		PaperClaim: "remote communities need their data served from somewhere, always — geo-redundant replicas with transparent failover",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"objects (pre-outage / during)", fmt.Sprintf("%d / %d x %s", preObjects, outObjects, objSize.SI())},
			{"reads during site outage", fmt.Sprint(reads.Load())},
			{"failed reads / short reads", fmt.Sprintf("%d / %d", failedReads.Load(), badBytes.Load())},
			{"open-time / mid-stream failovers", fmt.Sprintf("%d / %d", fs.Failovers, fs.MidStream)},
			{"outage wall time", outageDur.Round(time.Millisecond).String()},
			{"paths at >= 2 valid after revive", fmt.Sprintf("%d / %d", converged, total)},
			{"transfers / singleflight-suppressed", fmt.Sprintf("%d / %d", st.Transfers, st.DedupSkips)},
			{"checksum re-verifies (no copy)", fmt.Sprint(st.Reverifies)},
			{"100 TB to 2nd site, 10 GE WAN", fmt.Sprintf("%.1f days", full)},
			{"same, degraded to 1 GE", fmt.Sprintf("%.1f days", degraded)},
		},
		Notes: "reads resolve to the nearest valid replica and fail over transparently; " +
			"failed sites' replicas go stale and re-replicate to surviving sites; revival " +
			"re-verifies surviving bytes by checksum instead of copying. The WAN rows are " +
			"the netsim fluid model (max-min fair, 90% managed-transfer efficiency).",
	}, nil
}

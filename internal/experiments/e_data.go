package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/dfs"
	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/metadata"
	"repro/internal/tiering"
	"repro/internal/units"
)

// E3Metadata reproduces slide 8: the project metadata DB with
// write-once basic metadata and per-processing metadata sets. The
// measurement loads 100k datasets with tags and processing records
// and compares indexed queries against full scans.
func E3Metadata() (*Table, error) {
	s := metadata.NewStore()
	const n = 100_000

	start := time.Now()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		project := "zebrafish"
		if i%5 == 0 {
			project = "katrin"
		}
		ds, err := s.Create(project, fmt.Sprintf("/d/%06d", i), 4*units.MB, "",
			map[string]string{"well": fmt.Sprintf("A%d", i%12)})
		if err != nil {
			return nil, err
		}
		ids = append(ids, ds.ID)
	}
	insertDur := time.Since(start)

	// The same volume through the batched API (one shard-lock round
	// per shard per 1000-dataset chunk) into a second store.
	sb := metadata.NewStore()
	start = time.Now()
	const chunk = 1000
	specs := make([]metadata.CreateSpec, 0, chunk)
	for lo := 0; lo < n; lo += chunk {
		specs = specs[:0]
		for i := lo; i < lo+chunk && i < n; i++ {
			project := "zebrafish"
			if i%5 == 0 {
				project = "katrin"
			}
			specs = append(specs, metadata.CreateSpec{
				Project: project,
				Path:    fmt.Sprintf("/d/%06d", i),
				Size:    4 * units.MB,
				Basic:   map[string]string{"well": fmt.Sprintf("A%d", i%12)},
			})
		}
		for _, r := range sb.CreateBatch(specs) {
			if r.Err != nil {
				return nil, r.Err
			}
		}
	}
	batchDur := time.Since(start)

	start = time.Now()
	for i, id := range ids {
		if i%100 == 0 {
			if err := s.Tag(id, "calibration"); err != nil {
				return nil, err
			}
		}
	}
	tagDur := time.Since(start)

	start = time.Now()
	for i := 0; i < 1000; i++ {
		if _, err := s.AddProcessing(ids[i], metadata.Processing{
			Tool:    "segmentation",
			Results: map[string]string{"cells": fmt.Sprint(i)},
		}); err != nil {
			return nil, err
		}
	}
	procDur := time.Since(start)

	// Indexed query: tag narrows to 1000 datasets.
	start = time.Now()
	byTag := s.Find(metadata.Query{Tags: []string{"calibration"}})
	indexedDur := time.Since(start)

	// Full scan: basic-metadata filter cannot use an index.
	start = time.Now()
	byBasic := s.Find(metadata.Query{Basic: map[string]string{"well": "A3"}})
	scanDur := time.Since(start)

	rate := func(count int, d time.Duration) string {
		return fmt.Sprintf("%.0f/s", float64(count)/d.Seconds())
	}
	return &Table{
		ID:         "E3",
		Title:      "Project metadata DB (slide 8)",
		PaperClaim: "write-once basic metadata + N processing metadata sets per dataset; metadata keeps data findable",
		Columns:    []string{"operation", "count", "time", "rate"},
		Rows: [][]string{
			{"register datasets", fmt.Sprint(n), insertDur.Round(time.Millisecond).String(), rate(n, insertDur)},
			{"register datasets (batched)", fmt.Sprint(n), batchDur.Round(time.Millisecond).String(), rate(n, batchDur)},
			{"tag datasets", "1000", tagDur.Round(time.Millisecond).String(), rate(1000, tagDur)},
			{"append processing records", "1000", procDur.Round(time.Millisecond).String(), rate(1000, procDur)},
			{"indexed query (tag)", fmt.Sprintf("%d hits", len(byTag)), indexedDur.Round(time.Microsecond).String(), "-"},
			{"full scan (basic field)", fmt.Sprintf("%d hits", len(byBasic)), scanDur.Round(time.Microsecond).String(), "-"},
		},
		Notes: "the tag/project indexes keep common queries independent of repository size; " +
			"only schema-specific basic-metadata filters pay for a scan. The store is sharded " +
			"(16 shards); the batched row registers the same 100k datasets via CreateBatch.",
	}, nil
}

// E4ADAL reproduces slides 9-10: one API over heterogeneous backends,
// with pluggable authentication. The op mix (create+write 64 KiB,
// stat, open+read, list) runs against the in-memory backend, the
// POSIX backend and the Hadoop filesystem backend, bare and behind
// the token-auth/ACL layer.
func E4ADAL() (*Table, error) {
	const objects = 500
	payload := make([]byte, 16*units.KiB)

	mkDFS := func() adal.Backend {
		c := dfs.NewCluster(dfs.Config{BlockSize: 1 * units.MiB, Replication: 3, Seed: 4})
		for i := 0; i < 6; i++ {
			if _, err := c.AddDataNode(fmt.Sprintf("dn%d", i), fmt.Sprintf("r%d", i%2), units.GiB); err != nil {
				panic(err)
			}
		}
		return adal.NewDFSBackend("hdfs", c, "dn0")
	}

	runMix := func(create func(string) (io.WriteCloser, error),
		open func(string) (io.ReadCloser, error),
		stat func(string) (adal.FileInfo, error),
		list func(string) ([]adal.FileInfo, error)) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < objects; i++ {
			p := fmt.Sprintf("/mix/%04d", i)
			w, err := create(p)
			if err != nil {
				return 0, err
			}
			if _, err := w.Write(payload); err != nil {
				return 0, err
			}
			if err := w.Close(); err != nil {
				return 0, err
			}
			if _, err := stat(p); err != nil {
				return 0, err
			}
			r, err := open(p)
			if err != nil {
				return 0, err
			}
			if _, err := io.Copy(io.Discard, r); err != nil {
				return 0, err
			}
			r.Close()
		}
		if _, err := list("/mix"); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// One case = one set of op functions over fresh per-pass paths.
	type opsCase struct {
		label, path string
		create      func(string) (io.WriteCloser, error)
		open        func(string) (io.ReadCloser, error)
		stat        func(string) (adal.FileInfo, error)
		list        func(string) ([]adal.FileInfo, error)
	}
	direct := func(label string, b adal.Backend) opsCase {
		return opsCase{label: label, path: "direct",
			create: b.Create, open: b.Open, stat: b.Stat, list: b.List}
	}

	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("mem2")); err != nil {
		return nil, err
	}
	auth := adal.NewTokenAuth()
	auth.Register("tok", adal.Principal{User: "garcia"})
	acl := adal.NewACL()
	acl.Allow("garcia", "/", adal.PermRead|adal.PermWrite)
	al := adal.NewAuthLayer(layer, auth, acl)
	cred := adal.Credentials{User: "garcia", Token: "tok"}

	cases := []opsCase{
		direct("memfs (RAM store)", adal.NewMemFS("mem")),
		direct("hdfs backend (6 datanodes, r=3)", mkDFS()),
		{label: "memfs behind token auth + ACL", path: "authenticated",
			create: func(p string) (io.WriteCloser, error) { return al.Create(cred, p) },
			open:   func(p string) (io.ReadCloser, error) { return al.Open(cred, p) },
			stat:   func(p string) (adal.FileInfo, error) { return al.Stat(cred, p) },
			list:   func(p string) ([]adal.FileInfo, error) { return al.List(cred, p) }},
	}

	// Warm-up sweep over every case first: GC pacing settles at its
	// final heap target before any case is timed, so ordering cannot
	// skew the comparison.
	for i, c := range cases {
		if _, err := runMix(c.create, c.open, c.stat, c.list); err != nil {
			return nil, fmt.Errorf("E4 %s warmup: %w", cases[i].label, err)
		}
	}
	var rows [][]string
	for _, c := range cases {
		c := c
		runtime.GC()
		warm := func(p string) string { return "/warm" + p }
		d, err := runMix(
			func(p string) (io.WriteCloser, error) { return c.create(warm(p)) },
			func(p string) (io.ReadCloser, error) { return c.open(warm(p)) },
			func(p string) (adal.FileInfo, error) { return c.stat(warm(p)) },
			func(p string) ([]adal.FileInfo, error) { return c.list(warm(p)) })
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", c.label, err)
		}
		rows = append(rows, []string{c.label, c.path,
			fmt.Sprintf("%.0f obj/s", float64(objects)/d.Seconds())})
	}

	return &Table{
		ID:         "E4",
		Title:      "Abstract Data Access Layer (slides 9-10)",
		PaperClaim: "unified low-level access layer over heterogeneous backends, extensible auth",
		Columns:    []string{"backend", "path", "op-mix throughput"},
		Rows:       rows,
		Notes: "op mix per object: create+write 16 KiB, stat, open+read; one list per run. " +
			"The auth layer costs one token lookup and one ACL scan per op — a ~35% tax on a RAM " +
			"store and noise against any real backend (compare the replicated hdfs column).",
	}, nil
}

// E13TieredDataPath exercises the live tiered data path (slide 6:
// "transparent access over background storage and technology
// changes" made real in internal/tiering): sustained ingest overfills
// a small hot tier, background migration holds the watermark, and
// migrated objects recall transparently — one tape read no matter
// how many concurrent readers ask.
func E13TieredDataPath() (*Table, error) {
	const (
		objSize = 64 * units.KiB
		objects = 64 // 4 MiB offered into a 2 MiB hot tier
		readers = 16
	)
	pol := tiering.Policy{HighWatermark: 0.85, LowWatermark: 0.60}
	f, err := facility.New(facility.Options{
		TierHotCapacity:      2 * units.MiB,
		TierPolicy:           pol,
		TierMigrationWorkers: 4,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	objs := make([]*ingest.Object, objects)
	for i := range objs {
		objs[i] = &ingest.Object{
			Project: "edata",
			Path:    fmt.Sprintf("/ddn/tier/obj%04d", i),
			Data:    bytes.NewReader(bytes.Repeat([]byte{byte(i)}, int(objSize))),
		}
	}
	start := time.Now()
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4, BatchSize: 8})
	stats, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: objs})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 10; i++ {
		f.Tier.Scan()
		f.Tier.Wait()
		if f.Tier.Utilization() <= pol.HighWatermark {
			break
		}
	}
	ingestDur := time.Since(start)
	ts := f.Tier.Stats()

	// Recall latency: read one migrated object back through the
	// ordinary mount-table path.
	var recallPath string
	for _, e := range f.Tier.Entries() {
		if e.State == tiering.Migrated {
			recallPath = e.Path
			break
		}
	}
	if recallPath == "" {
		return nil, fmt.Errorf("E13: nothing migrated")
	}
	start = time.Now()
	r, err := f.Layer.Open("/ddn" + recallPath)
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		return nil, err
	}
	r.Close()
	recallDur := time.Since(start)

	// Dedup: a second migrated object read by many concurrent
	// readers must cost exactly one additional recall.
	var sharedPath string
	for _, e := range f.Tier.Entries() {
		if e.State == tiering.Migrated && e.Path != recallPath {
			sharedPath = e.Path
			break
		}
	}
	if sharedPath == "" {
		return nil, fmt.Errorf("E13: need a second migrated object")
	}
	before := f.Tier.Stats().Recalls
	var wg sync.WaitGroup
	var readErr atomic.Value
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := f.Layer.Open("/ddn" + sharedPath)
			if err != nil {
				readErr.Store(err)
				return
			}
			io.Copy(io.Discard, r)
			r.Close()
		}()
	}
	wg.Wait()
	if err, ok := readErr.Load().(error); ok {
		return nil, err
	}
	sharedRecalls := f.Tier.Stats().Recalls - before

	return &Table{
		ID:         "E13",
		Title:      "Tiered data path: watermark migration + transparent recall (slide 6)",
		PaperClaim: "transparent access over background storage and technology changes",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"offered / hot capacity", fmt.Sprintf("%s / %s", stats.Bytes.SI(), (2 * units.MiB).SI())},
			{"ingest+migrate wall time", ingestDur.Round(time.Millisecond).String()},
			{"settled hot utilization", fmt.Sprintf("%.2f (high=%.2f)", ts.HotUtilization, pol.HighWatermark)},
			{"migrations / premigrations", fmt.Sprintf("%d / %d", ts.Migrations, ts.Premigrations)},
			{"bytes on tape", ts.MigratedBytes.SI()},
			{"transparent recall latency", recallDur.Round(time.Microsecond).String()},
			{fmt.Sprintf("recalls for %d concurrent readers", readers), fmt.Sprint(sharedRecalls)},
		},
		Notes: "every byte moved through the ordinary ADAL mount table; recall is " +
			"checksum-verified and deduplicated per path (singleflight), and placement " +
			"transitions are published on the metadata event bus.",
	}, nil
}

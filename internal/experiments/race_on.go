//go:build race

package experiments

// raceScale stretches experiment control-plane timings (heartbeats,
// leases, kill delays) under the race detector. Race instrumentation
// multiplies the CPU cost of every beat's JSON/HTTP round trip; on a
// small CI machine an 8-worker fleet at a 3ms cadence oversubscribes
// the core, heartbeats queue past the lease, and the master declares
// healthy workers dead in a loop — a livelock of the timing harness,
// not of the system under test. Stretching the cadence keeps the
// same protocol behaviour at a load the instrumented build can carry.
const raceScale = 16

// raceDetector mirrors race_off.go; see there.
const raceDetector = true

package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/readcache"
	"repro/internal/replication"
	"repro/internal/units"
)

// wanBackend meters a site backend as if it sat across a WAN link:
// every Open pays a round-trip and every byte read is charged to the
// link counter. Writes are not metered — both runs pay the same
// ingest cost, and the experiment's question is about read traffic.
type wanBackend struct {
	adal.Backend
	rtt       time.Duration
	readBytes units.Bytes
	mu        sync.Mutex
}

func (w *wanBackend) Open(path string) (io.ReadCloser, error) {
	time.Sleep(w.rtt)
	r, err := w.Backend.Open(path)
	if err != nil {
		return nil, err
	}
	return &meteredReader{r: r, w: w}, nil
}

func (w *wanBackend) bytesRead() units.Bytes {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.readBytes
}

type meteredReader struct {
	r io.ReadCloser
	w *wanBackend
}

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.r.Read(p)
	m.w.mu.Lock()
	m.w.readBytes += units.Bytes(n)
	m.w.mu.Unlock()
	return n, err
}

func (m *meteredReader) Close() error { return m.r.Close() }

// E16HotSetReadCache measures the hot-set read cache in front of the
// site federation from the reading community's point of view: all
// replicas live at remote sites (the paper's partner institutes), so
// every direct read crosses the WAN. A zipf-skewed analysis workload
// is run twice over identical reads — direct federated reads vs
// through the two-tier read cache — with one remote site killed and
// revived mid-run in both. The cache must collapse WAN read traffic
// to roughly one transfer per distinct object, bring the hot-set p99
// down toward a local read, and never serve bytes that differ from
// what the federation would serve.
func E16HotSetReadCache() (*Table, error) {
	const (
		objects  = 192
		objSize  = 64 * units.KiB
		reads    = 2400
		killAt   = 1200 // far1 dies mid-run...
		reviveAt = 1800 // ...and comes back before the run ends
		zipfSeed = 16
	)
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i), byte(i >> 4), 0xc3, 0x3c}, int(objSize)/4)
	}
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = fmt.Sprintf("/exp/obj-%04d", i)
	}

	// Two remote sites only: the reading community has no local
	// replica, which is exactly when a local read cache matters.
	meta := metadata.NewStore()
	far1 := &wanBackend{Backend: adal.NewMemFS("far1"), rtt: 350 * time.Microsecond}
	far2 := &wanBackend{Backend: adal.NewMemFS("far2"), rtt: 700 * time.Microsecond}
	sites := []*replication.Site{
		replication.NewSite("far1", far1, 1),
		replication.NewSite("far2", far2, 2),
	}
	cat := replication.NewCatalog(replication.CatalogConfig{Meta: meta, MountPrefix: "/sites"})
	eng, err := replication.NewEngine(replication.Config{
		Catalog: cat, Sites: sites, MinReplicas: 2,
		Meta: meta, MountPrefix: "/sites",
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	fb := replication.NewFederated("fed", eng)
	for i, p := range paths {
		w, err := fb.Create(p)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(payload(i)); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	eng.Wait()
	wanAfterIngest := far1.bytesRead() + far2.bytesRead()

	// Local comparator: the same objects on a plain local backend.
	// Its p99 is the floor a cache could possibly reach.
	local := adal.NewMemFS("local")
	for i, p := range paths {
		w, err := local.Create(p)
		if err != nil {
			return nil, err
		}
		w.Write(payload(i))
		w.Close()
	}

	// runReads replays the identical zipf(1.1) stream against one
	// open function, killing and reviving far1 at fixed read indices
	// and verifying every byte against the original payload.
	runReads := func(open func(string) (io.ReadCloser, error), chaos bool) (lat []time.Duration, outageReads, failed, mismatches int) {
		zipf := rand.NewZipf(rand.New(rand.NewSource(zipfSeed)), 1.1, 1, objects-1)
		for i := 0; i < reads; i++ {
			if chaos {
				switch i {
				case killAt:
					sites[0].SetDown(true)
				case reviveAt:
					sites[0].SetDown(false)
				}
				if i >= killAt && i < reviveAt {
					outageReads++
				}
			}
			k := int(zipf.Uint64())
			start := time.Now()
			r, err := open(paths[k])
			if err != nil {
				failed++
				continue
			}
			got, err := io.ReadAll(r)
			r.Close()
			lat = append(lat, time.Since(start))
			if err != nil || !bytes.Equal(got, payload(k)) {
				mismatches++
			}
		}
		return
	}
	p99 := func(lat []time.Duration) time.Duration {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)*99/100]
	}

	localLat, _, localFailed, localBad := runReads(local.Open, false)
	if localFailed != 0 || localBad != 0 {
		return nil, fmt.Errorf("local comparator: %d failed, %d mismatched", localFailed, localBad)
	}
	p99Local := p99(localLat)

	// Phase 1 — direct federated reads: every read crosses the WAN.
	directLat, directOutage, directFailed, directBad := runReads(fb.Open, true)
	eng.Wait() // drain the repair work the outage queued
	eng.Reconcile()
	eng.Wait() // far1's replicas re-verify back to Valid
	wanAfterDirect := far1.bytesRead() + far2.bytesRead()
	directWAN := wanAfterDirect - wanAfterIngest

	// Phase 2 — the same stream through the two-tier cache: memory
	// sized for the hot set, disk for the full working set.
	c := readcache.New(fb, readcache.Config{
		Memory: units.MiB,
		Disk:   adal.NewMemFS("cachedisk"), DiskBudget: 32 * units.MiB,
		Meta: meta, MountPrefix: "/sites",
	})
	defer c.Close()
	cachedLat, cachedOutage, cachedFailed, cachedBad := runReads(c.Open, true)
	eng.Wait()
	cachedWAN := far1.bytesRead() + far2.bytesRead() - wanAfterDirect
	p99Cached := p99(cachedLat)

	// Phase 3 — steady state: the working set is resident now, so a
	// second pass over the same stream is the hot-set latency the
	// cache converges to (and it should cost ~no WAN at all).
	steadyLat, _, steadyFailed, steadyBad := runReads(c.Open, false)
	steadyWAN := far1.bytesRead() + far2.bytesRead() - wanAfterDirect - cachedWAN
	p99Steady := p99(steadyLat)
	cachedFailed += steadyFailed
	cachedBad += steadyBad

	// Concurrent cold burst: singleflight collapses 16 simultaneous
	// misses of one object into one WAN transfer.
	c.Evict(paths[0])
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := c.Open(paths[0]); err == nil {
				io.Copy(io.Discard, r)
				r.Close()
			}
		}()
	}
	wg.Wait()

	// Invalidation: removing the object through the cache must leave
	// nothing servable — neither a cached copy nor a backend one.
	if err := c.Remove(paths[1]); err != nil {
		return nil, err
	}
	meta.Flush()
	_, stillCached := c.CacheTier(paths[1])
	_, openErr := c.Open(paths[1])
	removeClean := !stillCached && openErr != nil

	st := c.Stats()
	reduction := float64(directWAN) / float64(cachedWAN)
	return &Table{
		ID:         "E16",
		Title:      "Hot-set read cache: WAN collapse for federated reads (AAA)",
		PaperClaim: "partner communities analyse shared data from remote sites — repeated reads must not re-cross the WAN",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"workload", fmt.Sprintf("%d zipf(1.1) reads over %d x %s, all replicas remote", reads, objects, objSize.SI())},
			{"WAN read bytes, direct", directWAN.SI()},
			{"WAN read bytes, cached", cachedWAN.SI()},
			{"WAN reduction", fmt.Sprintf("%.1fx", reduction)},
			{"p99 direct (remote)", p99(directLat).Round(time.Microsecond).String()},
			{"p99 cached (cold start + outage)", p99Cached.Round(time.Microsecond).String()},
			{"p99 cached (steady state)", p99Steady.Round(time.Microsecond).String()},
			{"steady-state WAN bytes", steadyWAN.SI()},
			{"p99 local direct", p99Local.Round(time.Microsecond).String()},
			{"steady-state p99 vs local", fmt.Sprintf("%.2fx", float64(p99Steady)/float64(p99Local))},
			{"reads during site outage (direct/cached)", fmt.Sprintf("%d / %d", directOutage, cachedOutage)},
			{"failed reads (direct/cached)", fmt.Sprintf("%d / %d", directFailed, cachedFailed)},
			{"content mismatches (direct/cached)", fmt.Sprintf("%d / %d", directBad, cachedBad)},
			{"cache hits (memory/disk)", fmt.Sprintf("%d / %d", st.MemHits, st.DiskHits)},
			{"hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate())},
			{"fills / fill bytes", fmt.Sprintf("%d / %s", st.Fills, units.Bytes(st.FillBytes).SI())},
			{"singleflight dedups (16-way cold burst)", fmt.Sprint(st.Dedups)},
			{"evictions / invalidations", fmt.Sprintf("%d / %d", st.Evictions, st.Invalidations)},
			{"remove leaves nothing servable", fmt.Sprintf("%v", removeClean)},
		},
		Notes: "direct and cached phases replay the identical zipf stream with the same " +
			"mid-run site kill/revive; every read is verified against the original bytes, " +
			"so the mismatch rows are the stale-read count. WAN = bytes read from either " +
			"remote site; the cached phase pays roughly one transfer per distinct object, " +
			"and the steady-state pass (working set resident) serves from the tiers alone.",
	}, nil
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/adal"
	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/obs"
	"repro/internal/readcache"
	"repro/internal/units"
)

// E19 — the observability plane observing the facility end to end
// (PR 10).
//
// A facility run for many communities by a small operations staff
// (slide 4: "professional administration") lives or dies on whether
// the staff can see it: utilization per subsystem, per-tenant and
// per-operation latency, and — when one community's workflow is slow
// — where inside the stack the time went. This experiment drives a
// mixed workload (durable ingest, cold and hot federated reads, a
// distributed MapReduce job) through one facility and then interrogates
// the observability plane itself, three ways.
//
// Tracing: every request in the coverage phase carries a
// client-minted trace ID through the gateway into the read cache and
// the federation; the distributed job's ID rides the job spec over
// mrpc into the master and its workers, whose attempt spans are
// attached to the same trace. The bar: the spans of a traced hot read
// account for >= 95% of the request's server-side wall time (nothing
// material happens untraced), and the job's trace contains spans from
// the gateway, the master and the worker runtime.
//
// Exposition: one unauthenticated GET /metrics on the front door must
// render the whole stack — every line parseable Prometheus text
// (version 0.0.4) and counter families present from all six
// subsystems (gateway, dfs, cache, repl, mr, meta) plus the Go
// runtime gauges.
//
// Overhead: the design keeps instruments off the hot path (subsystem
// counters are sampled at scrape time from stats the code already
// kept), so the only per-request cost the plane adds is the gateway's
// instrument set: one tenant counter, one byte counter, one latency
// histogram observation, and nil-span checks. The bench replays the
// same hot cached read with and without exactly that set, alternating
// batches and taking each mode's best batch so scheduler noise
// cancels. The bar: within 2%. A third mode turns per-request tracing
// on (a real root+op span pair pushed through the trace ring) and is
// reported unbounded — tracing is per-request opt-in, not an
// always-on tax.

const (
	e19Objects      = 48
	e19ObjSize      = 32 * units.KiB
	e19HotSize      = 1 * units.MiB
	e19TracedReads  = 24
	e19BenchObjSize = 1 * units.MiB
	// Under the race detector the bench only has to produce a row, not
	// a meaningful bound (the test waives the 2% bar there), so it
	// shrinks rather than spending seconds timing the race runtime.
	e19BenchRounds = 12 / min(raceScale, 4)
	e19BenchBatch  = 400 / min(raceScale, 4)
)

func e19Path(i int) string { return fmt.Sprintf("/sites/e19/obj-%03d", i) }

// e19Coverage measures how much of the root span's wall time the
// other spans of the trace account for: the union of their intervals
// clipped to the root's window, divided by the root duration.
func e19Coverage(tv obs.TraceView) (float64, time.Duration) {
	var rootStart, rootEnd int64
	for _, sp := range tv.Spans {
		if sp.Name == "gw.request" {
			rootStart, rootEnd = sp.Start, sp.Start+sp.DurNs
		}
	}
	if rootEnd <= rootStart {
		return 0, 0
	}
	type iv struct{ a, b int64 }
	var ivs []iv
	for _, sp := range tv.Spans {
		if sp.Name == "gw.request" {
			continue
		}
		a, b := sp.Start, sp.Start+sp.DurNs
		if a < rootStart {
			a = rootStart
		}
		if b > rootEnd {
			b = rootEnd
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered, cursor int64
	for _, v := range ivs {
		if v.a > cursor {
			cursor = v.a
		}
		if v.b > cursor {
			covered += v.b - cursor
			cursor = v.b
		}
	}
	return float64(covered) / float64(rootEnd-rootStart), time.Duration(rootEnd - rootStart)
}

// e19Layers reduces a trace to the set of instrumented layers it
// crossed: the prefix before the first '.' of each span name
// (gw, cache, fed, dfs, master, mr).
func e19Layers(tv obs.TraceView) []string {
	set := map[string]bool{}
	for _, sp := range tv.Spans {
		if i := strings.IndexByte(sp.Name, '.'); i > 0 {
			set[sp.Name[:i]] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Prometheus text exposition v0.0.4, the subset this reproduction
// emits: integer samples, at most one label plus the histogram's le.
var (
	e19TypeLine   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	e19HelpLine   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	e19SampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (-?\d+)$`)
)

// e19ParseProm validates the exposition line by line and returns the
// per-family value sums (histogram series summed into their _bucket/
// _sum/_count names) plus the number of unparseable lines.
func e19ParseProm(text string) (values map[string]int64, families map[string]string, badLines []string) {
	values = map[string]int64{}
	families = map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			if !e19TypeLine.MatchString(line) {
				badLines = append(badLines, line)
				continue
			}
			f := strings.Fields(line)
			families[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			if !e19HelpLine.MatchString(line) {
				badLines = append(badLines, line)
			}
		default:
			m := e19SampleLine.FindStringSubmatch(line)
			if m == nil {
				badLines = append(badLines, line)
				continue
			}
			var v int64
			fmt.Sscanf(m[4], "%d", &v)
			values[m[1]] += v
		}
	}
	return values, families, badLines
}

// e19Overhead prices the gateway's per-request instrument set on a
// hot cached read: the identical read loop runs bare, with the
// instrument set (tenant counter + byte counter + latency histogram,
// all resolved once like the gateway resolves them), and with
// per-request tracing on. Modes alternate batch by batch and each
// mode keeps its best batch, so the comparison is between the best
// runs of the same code path, not between different noise.
func e19Overhead() (bare, instr, traced time.Duration, err error) {
	// Settle the heap first: this bench hunts a ~1% delta, and a GC
	// cycle inherited from an earlier phase would drown it.
	runtime.GC()
	inner := adal.NewMemFS("e19-bench")
	const path = "hot"
	w, err := inner.Create(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := w.Write(make([]byte, int(e19BenchObjSize))); err != nil {
		return 0, 0, 0, err
	}
	if err := w.Close(); err != nil {
		return 0, 0, 0, err
	}
	cache := readcache.New(inner, readcache.Config{Memory: 4 * units.MiB})

	reg := obs.New()
	requests := reg.CounterVec("e19_requests_total", "bench", "tenant").With("ops")
	bytesOut := reg.CounterVec("e19_bytes_out_total", "bench", "tenant").With("ops")
	reqDur := reg.HistogramVec("e19_request_ns", "bench", "op").With("get_object")
	ring := obs.NewTracer(64)

	// The read loop drains through Read calls into a real buffer — a
	// WriteTo into io.Discard would elide the copy and leave nothing
	// for the instrument cost to be measured against.
	buf := make([]byte, 64*units.KiB)
	read := func(ctx context.Context) (int64, error) {
		rc, err := cache.OpenCtx(ctx, path)
		if err != nil {
			return 0, err
		}
		defer rc.Close()
		var n int64
		for {
			k, err := rc.Read(buf)
			n += int64(k)
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
		}
	}
	// Warm the memory tier so every measured read is a hit.
	if _, err := read(context.Background()); err != nil {
		return 0, 0, 0, err
	}

	batch := func(mode int) (time.Duration, error) {
		ctx := context.Background()
		start := time.Now()
		for i := 0; i < e19BenchBatch; i++ {
			switch mode {
			case 0: // bare
				if _, err := read(ctx); err != nil {
					return 0, err
				}
			case 1: // + gateway instrument set
				t0 := time.Now()
				n, err := read(ctx)
				if err != nil {
					return 0, err
				}
				requests.Inc()
				bytesOut.Add(n)
				reqDur.ObserveSince(t0)
			case 2: // + per-request tracing through the ring
				td := ring.StartTrace("GET /v1/objects/hot")
				root := obs.StartSpanOn(td, "gw.request")
				t0 := time.Now()
				n, err := read(obs.ContextWithTrace(ctx, td))
				if err != nil {
					return 0, err
				}
				requests.Inc()
				bytesOut.Add(n)
				reqDur.ObserveSince(t0)
				root.End()
			}
		}
		return time.Since(start) / e19BenchBatch, nil
	}
	best := [3]time.Duration{1 << 62, 1 << 62, 1 << 62}
	for r := 0; r < e19BenchRounds; r++ {
		for mode := 0; mode < 3; mode++ {
			d, err := batch(mode)
			if err != nil {
				return 0, 0, 0, err
			}
			if d < best[mode] {
				best[mode] = d
			}
		}
	}
	return best[0], best[1], best[2], nil
}

// E19Observability runs the observability-plane experiment.
func E19Observability() (*Table, error) {
	// The overhead bench runs first, before the facility exists: its
	// heartbeat/worker goroutines would sit on the same cores as the
	// read loop and turn a nanosecond-scale comparison into noise.
	bare, instr, traced, err := e19Overhead()
	if err != nil {
		return nil, err
	}

	fac, err := facility.New(facility.Options{
		DFSNodes:        4,
		Sites:           []string{"near", "far"},
		ReadCacheMemory: 8 * units.MiB,
		ComputeWorkers:  2,
	})
	if err != nil {
		return nil, err
	}
	defer fac.Close()
	srv, err := gateway.ForFacility(fac, gateway.Config{
		Tenants: []gateway.Tenant{{
			Name: "ops", Token: "e19-token", Prefixes: []string{"/"},
			RPS: 1e6, Burst: 1 << 20, MaxInFlight: 256,
		}},
		Jobs: gateway.BuiltinJobs(),
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	c, err := client.New("http://"+ln.Addr().String(), "e19-token", client.Options{
		MaxRetries: 8, Backoff: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// ---- workload: exercise every subsystem the scrape must show ----
	for i := 0; i < e19Objects; i++ {
		data := e17Payload(i, int(e19ObjSize))
		if _, err := c.PutObject(ctx, e19Path(i), data, "e19", "raw"); err != nil {
			return nil, fmt.Errorf("e19 put %d: %w", i, err)
		}
	}
	for pass := 0; pass < 2; pass++ { // cold fills, then hot hits
		for i := 0; i < e19Objects; i++ {
			if _, err := c.ReadObject(ctx, e19Path(i)); err != nil {
				return nil, fmt.Errorf("e19 read %d: %w", i, err)
			}
		}
	}

	// Distributed job, traced end to end: the ID minted here rides the
	// HTTP header into the gateway, then the job spec over mrpc into
	// the master and its workers.
	for i, text := range []string{"to be or not to be\n", "be the change\n"} {
		p := fmt.Sprintf("/hdfs/e19/books/%d.txt", i)
		if _, err := c.PutObject(ctx, p, []byte(text), ""); err != nil {
			return nil, err
		}
	}
	jobTrace := obs.NewTraceID()
	jctx := obs.ContextWithTrace(ctx, &obs.TraceData{ID: jobTrace})
	js, err := c.SubmitJob(jctx, gateway.JobRequest{
		Job:    "wordcount",
		Inputs: []string{"/e19/books/0.txt", "/e19/books/1.txt"}, OutputDir: "/e19-out",
	})
	if err != nil {
		return nil, fmt.Errorf("e19 submit: %w", err)
	}
	done, err := c.WaitJob(ctx, js.ID, 5*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if done.State != gateway.JobDone {
		return nil, fmt.Errorf("e19 job: %+v", done)
	}
	jobView, ok := srv.TraceRing().Lookup(jobTrace)
	if !ok {
		return nil, fmt.Errorf("e19: job trace %s not in the ring", jobTrace)
	}
	jobLayers := e19Layers(jobView)

	// ---- tracing: span coverage of a hot read's wall time ----
	hotPath := "/sites/e19/hot"
	if _, err := c.PutObject(ctx, hotPath, e17Payload(9000, int(e19HotSize)), "e19"); err != nil {
		return nil, err
	}
	if _, err := c.ReadObject(ctx, hotPath); err != nil { // warm the cache
		return nil, err
	}
	var coverages []float64
	readLayers := map[string]bool{}
	for i := 0; i < e19TracedReads; i++ {
		id := obs.NewTraceID()
		tctx := obs.ContextWithTrace(ctx, &obs.TraceData{ID: id})
		if _, err := c.ReadObject(tctx, hotPath); err != nil {
			return nil, fmt.Errorf("e19 traced read %d: %w", i, err)
		}
		tv, ok := srv.TraceRing().Lookup(id)
		if !ok {
			return nil, fmt.Errorf("e19: trace %s not in the ring", id)
		}
		cov, rootDur := e19Coverage(tv)
		if rootDur == 0 {
			return nil, fmt.Errorf("e19: trace %s has no gw.request root", id)
		}
		coverages = append(coverages, cov)
		for _, l := range e19Layers(tv) {
			readLayers[l] = true
		}
	}
	sort.Float64s(coverages)
	covMedian := coverages[len(coverages)/2]
	covMin := coverages[0]
	var rl []string
	for l := range readLayers {
		rl = append(rl, l)
	}
	sort.Strings(rl)

	// ---- exposition: one scrape shows the whole stack ----
	text, err := c.MetricsText(ctx)
	if err != nil {
		return nil, err
	}
	values, families, badLines := e19ParseProm(text)
	prefixes := []string{"lsdf_gateway_", "lsdf_dfs_", "lsdf_cache_", "lsdf_repl_", "lsdf_mr_", "lsdf_meta_"}
	present := 0
	var missing []string
	for _, p := range prefixes {
		found := false
		for fam := range families {
			if strings.HasPrefix(fam, p) {
				found = true
				break
			}
		}
		if found {
			present++
		} else {
			missing = append(missing, p)
		}
	}
	// Activity proof, not just registration: the workload above must
	// be visible in the counters it drove.
	activity := []string{
		"lsdf_gateway_requests_total", "lsdf_gateway_bytes_out_total",
		"lsdf_cache_mem_hits_total", "lsdf_cache_fills_total",
		"lsdf_dfs_bytes_written_total", "lsdf_mr_map_tasks_total",
		"lsdf_go_goroutines",
	}
	var idle []string
	for _, name := range activity {
		if values[name] == 0 {
			idle = append(idle, name)
		}
	}

	// ---- overhead: the per-request instrument set, priced ----
	pct := func(d time.Duration) float64 {
		return (float64(d)/float64(bare) - 1) * 100
	}

	presentCell := fmt.Sprintf("%d / %d", present, len(prefixes))
	if len(missing) > 0 {
		presentCell += " (missing " + strings.Join(missing, ",") + ")"
	}
	strOr := func(ss []string, none string) string {
		if len(ss) == 0 {
			return none
		}
		return strings.Join(ss, ",")
	}
	rows := [][]string{
		{"span coverage of request wall (median of 24 hot reads)", fmt.Sprintf("%.1f%%", covMedian*100)},
		{"span coverage (worst read)", fmt.Sprintf("%.1f%%", covMin*100)},
		{"layers in a traced read", strOr(rl, "-")},
		{"layers in the traced distributed job", strOr(jobLayers, "-")},
		{"/metrics families in one scrape", fmt.Sprint(len(families))},
		{"exposition lines failing to parse", fmt.Sprint(len(badLines))},
		{"subsystem prefixes present", presentCell},
		{"workload-driven counters still zero", strOr(idle, "none")},
		{"hot cached read, uninstrumented", bare.Round(10 * time.Nanosecond).String()},
		{"with the gateway instrument set", fmt.Sprintf("%s (%+.1f%%)", instr.Round(10*time.Nanosecond), pct(instr))},
		{"with per-request tracing on", fmt.Sprintf("%s (%+.1f%%)", traced.Round(10*time.Nanosecond), pct(traced))},
	}
	return &Table{
		ID:    "E19",
		Title: "observability plane: tracing coverage, one-scrape exposition, instrument cost",
		PaperClaim: "the LSDF is operated as a professional service for many communities " +
			"(slides 4, 10): its staff need facility-wide visibility — utilization, " +
			"per-tenant behaviour, and where inside the stack a slow request spent its time",
		Columns: []string{"metric", "value"},
		Rows:    rows,
		Notes: fmt.Sprintf("workload = %d x %s durable ingests, cold+hot federated reads, one traced wordcount on 2 workers; "+
			"coverage = union of non-root spans over the gw.request window; scrape is the unauthenticated front-door GET /metrics; "+
			"overhead bench = %s cached read, %d alternating batches of %d, best batch per mode",
			e19Objects, e19ObjSize.SI(), e19BenchObjSize.SI(), e19BenchRounds, e19BenchBatch),
	}, nil
}

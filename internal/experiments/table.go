// Package experiments regenerates every quantitative claim and figure
// in the paper's evaluation content (slides 5-14). Each experiment
// returns a Table pairing the paper's figure with what this
// reproduction measures; cmd/lsdf-bench prints them all and
// EXPERIMENTS.md records the comparison. Absolute numbers need not
// match the authors' testbed — the shape (who wins, by what factor,
// where crossovers fall) is the reproduction target.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	Notes      string
}

// String renders the table for terminal output.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "  paper: %s\n", t.PaperClaim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		sb.WriteString("  ")
		for i, cell := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "  note: %s\n", t.Notes)
	}
	return sb.String()
}

// Runner is one experiment entry in the registry.
type Runner struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns the full experiment registry in paper order.
func All() []Runner {
	return []Runner{
		{"E1", "htm-ingest", E1IngestHTM},
		{"E2", "facility-fill", E2FacilityFill},
		{"E3", "metadata", E3Metadata},
		{"E4", "adal", E4ADAL},
		{"E5", "transfer", E5Transfer},
		{"E6", "mapreduce-scaling", E6MapReduceScaling},
		{"E7", "tag-triggered-workflow", E7TagTriggeredWorkflow},
		{"E8", "visualization", E8Visualization},
		{"E9", "dna-sequencing", E9DNASequencing},
		{"E10", "cloud-deploy", E10CloudDeploy},
		{"E11", "growth", E11Growth},
		{"E12", "rules", E12Rules},
		{"E13", "tiered-data-path", E13TieredDataPath},
		{"E14", "multi-site-replication", E14MultiSiteReplication},
		{"E15", "durable-metadata", E15DurableMetadata},
		{"E16", "hot-set-read-cache", E16HotSetReadCache},
		{"E17", "gateway-load", E17GatewayLoad},
		{"E18", "distributed-mapreduce", E18DistributedCompute},
		{"E19", "observability", E19Observability},
	}
}

package experiments

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/metadata"
)

// E15 — durable metadata under kill -9 (PR 6).
//
// The paper's metadata services (slide 10's project DB and the ADAL
// catalog) are the part of the LSDF that must never lose an
// acknowledged registration: the bits on tape are unfindable without
// them. This experiment proves the reproduction's WAL+snapshot
// durability plane against the real failure, not a simulation: a
// child process ingests datasets in durable batches — printing an ACK
// only after the batch's group commit and its placement/replica notes
// are fsynced — until the parent SIGKILLs it mid-ingest. The parent
// then reopens the store on the same directory and audits the
// crash-consistency contract: every acknowledged dataset recovered
// with tags, placement and replica state; nothing recovered that was
// never submitted.

const (
	e15ChildEnv = "LSDF_E15_CHILD"
	e15DirEnv   = "LSDF_E15_DIR"
	e15Shards   = 8
	e15Batch    = 16
	e15Target   = 25 // ACKed batches before the parent pulls the trigger
)

// E15ChildMain is the ingest child's entry point, called at startup
// by cmd/lsdf-bench and the experiments test binary. When the E15
// child environment is present it never returns: it ingests durable
// batches and prints "ACK <n>" lines until SIGKILLed (or exits 2 on
// any store error). Otherwise it returns false immediately.
func E15ChildMain() bool {
	if os.Getenv(e15ChildEnv) == "" {
		return false
	}
	s, err := metadata.Open(metadata.Options{
		Shards:        e15Shards,
		SnapshotEvery: 64,
		WALDir:        os.Getenv(e15DirEnv),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "e15 child: open: %v\n", err)
		os.Exit(2)
	}
	for b := 0; ; b++ {
		specs := make([]metadata.CreateSpec, e15Batch)
		for i := range specs {
			specs[i] = metadata.CreateSpec{
				Project: "e15",
				Path:    e15Path(b, i),
				Size:    1,
				Tags:    []string{"raw", "e15"},
			}
		}
		for _, res := range s.CreateBatch(specs) {
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "e15 child: create: %v\n", res.Err)
				os.Exit(2)
			}
			// These block until their WAL records are fsynced too.
			s.NotePlacement("/ddn"+res.Dataset.Path, "resident")
			s.NoteReplica(res.Dataset.Path, "gridka", "valid")
		}
		if n := s.WALErrors(); n > 0 {
			fmt.Fprintf(os.Stderr, "e15 child: %d WAL errors\n", n)
			os.Exit(2)
		}
		// Everything in batch b is durable on disk; only now may the
		// outside world learn it was accepted.
		fmt.Printf("ACK %d\n", b)
	}
}

func e15Path(batch, i int) string { return fmt.Sprintf("/e15/%04d/%02d", batch, i) }

// E15DurableMetadata runs the kill -9 experiment.
func E15DurableMetadata() (*Table, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "lsdf-e15-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), e15ChildEnv+"=1", e15DirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	// Count ACKs; once the target is reached, SIGKILL mid-ingest and
	// keep draining — ACKs printed between the decision and the kill
	// landing are acknowledged too.
	acked := 0
	killed := false
	deadline := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		n, convErr := strconv.Atoi(strings.TrimPrefix(sc.Text(), "ACK "))
		if convErr != nil || n != acked {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("e15: child spoke out of turn: %q (want ACK %d)", sc.Text(), acked)
		}
		acked++
		if acked >= e15Target && !killed {
			killed = true
			if err := cmd.Process.Kill(); err != nil { // SIGKILL: no defer, no flush, no goodbye
				cmd.Wait()
				return nil, fmt.Errorf("e15: kill: %w", err)
			}
		}
	}
	deadline.Stop()
	cmd.Wait() // expected to report the kill; the audit below is the verdict
	if !killed {
		return nil, fmt.Errorf("e15: child exited on its own after %d acks", acked)
	}

	// The machine is back up. Recover and audit.
	start := time.Now()
	s, err := metadata.Open(metadata.Options{Shards: e15Shards, WALDir: dir})
	if err != nil {
		return nil, fmt.Errorf("e15: recovery: %w", err)
	}
	defer s.Close()
	recoveryTime := time.Since(start)
	stats := s.RecoveryStats()

	lost, badState := 0, 0
	for b := 0; b < acked; b++ {
		for i := 0; i < e15Batch; i++ {
			path := e15Path(b, i)
			d, ok := s.ByPath(path)
			switch {
			case !ok:
				lost++
			case !d.HasTag("raw") || !d.HasTag("e15"):
				badState++
			default:
				if p, _ := s.Placement("/ddn" + path); p != "resident" {
					badState++
				} else if s.Replicas(path)["gridka"] != "valid" {
					badState++
				}
			}
		}
	}
	phantoms := 0
	all := s.Find(metadata.Query{})
	for _, d := range all {
		var b, i int
		if _, err := fmt.Sscanf(d.Path, "/e15/%04d/%02d", &b, &i); err != nil || b > acked || i >= e15Batch {
			phantoms++
		}
	}

	tbl := &Table{
		ID:         "E15",
		Title:      "durable metadata: kill -9 during sustained batched ingest",
		PaperClaim: "the metadata services must survive failures without losing registered datasets (slide 10: central project DB + ADAL catalog)",
		Columns:    []string{"metric", "value"},
		Rows: [][]string{
			{"batches acknowledged before SIGKILL", fmt.Sprint(acked)},
			{"datasets acknowledged", fmt.Sprint(acked * e15Batch)},
			{"datasets recovered", fmt.Sprint(len(all))},
			{"lost acknowledged datasets", fmt.Sprint(lost)},
			{"acked with wrong tags/placement/replicas", fmt.Sprint(badState)},
			{"phantom datasets", fmt.Sprint(phantoms)},
			{"snapshots loaded on recovery", fmt.Sprint(stats.SnapshotsLoaded)},
			{"WAL records replayed", fmt.Sprint(stats.RecordsReplayed)},
			{"torn WAL tails truncated", fmt.Sprint(stats.TornTails)},
			{"recovery time", recoveryTime.Round(time.Millisecond).String()},
		},
		Notes: fmt.Sprintf("child ACKs only after group commit + placement/replica fsync; "+
			"recovered set may include at most one in-flight batch (got %d datasets beyond the acked %d)",
			len(all)-(acked*e15Batch-lost), acked*e15Batch),
	}
	if lost > 0 || phantoms > 0 || badState > 0 {
		return tbl, fmt.Errorf("e15: contract violated: %d lost, %d phantoms, %d bad state", lost, phantoms, badState)
	}
	return tbl, nil
}

//go:build !race

package experiments

// raceScale is 1 in normal builds; see race_on.go.
const raceScale = 1

// raceDetector gates assertions that bound nanosecond-scale costs
// (E19's instrument overhead): under the race detector the measured
// quantity is the race runtime, not the instrument.
const raceDetector = false

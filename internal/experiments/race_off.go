//go:build !race

package experiments

// raceScale is 1 in normal builds; see race_on.go.
const raceScale = 1

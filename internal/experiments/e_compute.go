package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/facility"
	"repro/internal/mapreduce"
	"repro/internal/units"
	"repro/internal/workloads"
)

// E5Transfer reproduces slide 11: "15 days to transfer 1 PB over
// ideal 10 Gb/s link => bring computing to the data". The fluid
// network model reruns the arithmetic with protocol efficiency and
// contention, and contrasts it with processing the petabyte in place
// on the paper's cluster.
func E5Transfer() (*Table, error) {
	results := facility.TransferStudy([]facility.TransferCase{
		{Label: "ideal 10 GbE, full efficiency", Bytes: units.PB, Efficiency: 1.0},
		{Label: "sustained WAN efficiency 62%", Bytes: units.PB, Efficiency: 0.62},
		{Label: "link shared with 3 other PB flows", Bytes: units.PB, Efficiency: 1.0, Parallel: 4},
	}, units.Gbps(10))

	rows := make([][]string, 0, len(results)+1)
	for _, r := range results {
		rows = append(rows, []string{r.Label, fmt.Sprintf("%.1f days", r.Days)})
	}
	// Bring computing to the data: the 60-node cluster chews through
	// the same petabyte locally.
	m := facility.LSDFCluster()
	local := m.TimeFor(units.PB, 60)
	rows = append(rows, []string{"process in place on the 60-node cluster",
		fmt.Sprintf("%.1f days", local.Hours()/24)})

	return &Table{
		ID:         "E5",
		Title:      "Move the data or move the computation (slide 11)",
		PaperClaim: "15 days to transfer 1 PB over ideal 10 Gb/s link",
		Columns:    []string{"case", "time for 1 PB"},
		Rows:       rows,
		Notes: "the paper's '15 days' corresponds to ~62% sustained efficiency on the " +
			"ideal 9.3-day figure; any sharing makes it worse, and the cluster finishes " +
			"in comparable time without a byte leaving the facility — hence Hadoop next to the storage.",
	}, nil
}

// mrCluster builds a cluster of n nodes with small blocks for quick
// real runs.
func mrCluster(n int, blockSize units.Bytes) (*dfs.Cluster, error) {
	c := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 3, Seed: 6})
	for i := 0; i < n; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("rack%d", i%4), units.GiB); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// E6MapReduceScaling reproduces slide 11: the 60-node Hadoop cluster
// with 110 TB HDFS and "extreme scalability". The real engine runs a
// wordcount whose map tasks emulate the disk-bound IO of 2011 Hadoop
// (a fixed per-split read latency injected through the engine's task-
// delay hook — IO waits overlap regardless of host core count, which
// keeps the measurement meaningful on small machines). Locality on
// and off shows why HDFS placement matters, and the Amdahl model
// projects to the paper's 60 nodes.
func E6MapReduceScaling() (*Table, error) {
	var corpus strings.Builder
	for i := 0; i < 8_000; i++ {
		fmt.Fprintf(&corpus, "zebrafish embryo screen plate%04d well%02d image analysis\n", i%512, i%96)
	}
	data := []byte(corpus.String())
	const splitIO = 20 * time.Millisecond // emulated disk read per split

	mapper := mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
		for _, w := range strings.Fields(string(v)) {
			emit(w, []byte("1"))
		}
		return nil
	})

	run := func(nodes int, locality bool, shuffleMem units.Bytes) (time.Duration, *mapreduce.Result, error) {
		c, err := mrCluster(nodes, 16*units.KiB)
		if err != nil {
			return 0, nil, err
		}
		if err := c.WriteFile("/corpus", "", data); err != nil {
			return 0, nil, err
		}
		start := time.Now()
		res, err := mapreduce.Run(c, mapreduce.Config{
			Inputs: []string{"/corpus"}, OutputDir: "/out",
			Mapper: mapper, Reducer: workloads.SumReducer, Combiner: workloads.SumReducer,
			NumReducers: 4, Locality: locality, SlotsPerNode: 1,
			ShuffleMemory: shuffleMem,
			TaskDelay:     func(string, int) time.Duration { return splitIO },
		})
		return time.Since(start), res, err
	}

	var rows [][]string
	var t1 time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		d, res, err := run(n, true, 0)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			t1 = d
		}
		localFrac := float64(res.Counters.LocalTasks) /
			float64(res.Counters.LocalTasks+res.Counters.RemoteTasks)
		rows = append(rows, []string{
			fmt.Sprintf("%d nodes, locality on", n),
			d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(t1)/float64(d)),
			fmt.Sprintf("%.0f%%", 100*localFrac),
		})
	}
	dOff, resOff, err := run(8, false, 0)
	if err != nil {
		return nil, err
	}
	offFrac := float64(resOff.Counters.LocalTasks) /
		float64(resOff.Counters.LocalTasks+resOff.Counters.RemoteTasks)
	rows = append(rows, []string{"8 nodes, locality off",
		dOff.Round(time.Millisecond).String(),
		fmt.Sprintf("%.2fx", float64(t1)/float64(dOff)),
		fmt.Sprintf("%.0f%%", 100*offFrac)})

	// External shuffle: the same 8-node job under a 4 KiB per-task
	// spill budget, so every map task spills sorted runs to the DFS
	// and reducers stream-merge them back.
	dSpill, resSpill, err := run(8, true, 4*units.KiB)
	if err != nil {
		return nil, err
	}
	spillFrac := float64(resSpill.Counters.LocalTasks) /
		float64(resSpill.Counters.LocalTasks+resSpill.Counters.RemoteTasks)
	rows = append(rows, []string{"8 nodes, 4 KiB spill budget",
		dSpill.Round(time.Millisecond).String(),
		fmt.Sprintf("%.2fx", float64(t1)/float64(dSpill)),
		fmt.Sprintf("%.0f%%", 100*spillFrac)})

	// Project to the paper's cluster with the calibrated model.
	m := facility.LSDFCluster()
	rows = append(rows, []string{"60 nodes (Amdahl projection)", "-",
		fmt.Sprintf("%.1fx", m.Speedup(60)), "-"})

	return &Table{
		ID:         "E6",
		Title:      "Hadoop cluster scalability (slide 11)",
		PaperClaim: "dedicated 60-node cluster, 110 TB HDFS, extreme scalability on commodity hardware",
		Columns:    []string{"configuration", "wall time", "speedup", "data-local tasks"},
		Rows:       rows,
		Notes: fmt.Sprintf("map tasks emulate 20 ms of split IO; speedup stays near-linear while splits "+
			"outnumber slots, and rack-aware placement keeps most tasks data-local. The spill row ran "+
			"the external shuffle: %d sorted runs (%d bytes) written to the DFS and merged back, "+
			"same output bytes as the in-memory rows.",
			resSpill.Counters.SpillRuns, resSpill.Counters.SpillBytes),
	}, nil
}

// E8Visualization reproduces slide 13: "3D biomedical data
// visualization: processing 1 TB dataset in 20 min". The real MIP job
// runs over a laptop-scale volume; its measured throughput calibrates
// the cluster model, which then reports the projected time for 1 TB
// on 60 nodes.
func E8Visualization() (*Table, error) {
	cfg := workloads.VolumeConfig{Width: 512, Height: 256, Depth: 96, Seed: 8}
	c, err := mrCluster(8, cfg.SlabBytes())
	if err != nil {
		return nil, err
	}
	var volume []byte
	for z := 0; z < cfg.Depth; z++ {
		volume = append(volume, cfg.GenerateSlab(z)...)
	}
	if err := c.WriteFile("/vol", "", volume); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/vol"}, OutputDir: "/mip",
		Mapper: workloads.MIPMapper(cfg), Reducer: workloads.MIPReducer,
		Format: mapreduce.WholeSplitInput, Locality: true,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	measuredRate := units.Rate(float64(cfg.TotalBytes()) / elapsed.Seconds())

	paper := facility.LSDFCluster()
	projected := paper.TimeFor(units.TB, 60)

	return &Table{
		ID:         "E8",
		Title:      "3D biomedical visualization (slide 13)",
		PaperClaim: "1 TB dataset processed in 20 min on the Hadoop cluster",
		Columns:    []string{"measurement", "value"},
		Rows: [][]string{
			{"volume (real MIP run)", cfg.TotalBytes().SI()},
			{"slabs / map tasks", fmt.Sprint(res.Counters.MapTasks)},
			{"wall time (8 laptop workers)", elapsed.Round(time.Millisecond).String()},
			{"measured aggregate throughput", measuredRate.String()},
			{"paper-calibrated 60-node model for 1 TB", fmt.Sprintf("%.1f min", projected.Minutes())},
			{"implied per-node effective rate", fmt.Sprintf("%.1f MB/s", float64(paper.AggregateRate(60))/60/1e6)},
		},
		Notes: "20 min/TB needs only ~0.83 GB/s aggregate — about 14 MB/s per node, " +
			"well under 2011 commodity disk bandwidth; the claim is conservative.",
	}, nil
}

// E9DNASequencing reproduces slide 13: "DNA sequencing and
// reconstruction using Hadoop tools". A synthetic genome is sampled
// into error-bearing reads; the k-mer spectrum and coverage profile
// run as real MapReduce jobs.
func E9DNASequencing() (*Table, error) {
	genome := workloads.GenerateGenome(50_000, 5)
	reads := workloads.GenerateReads(genome, workloads.ReadsConfig{
		ReadLen: 100, Coverage: 12, ErrorRate: 0.01, Seed: 6,
	})
	c, err := mrCluster(8, 64*units.KiB)
	if err != nil {
		return nil, err
	}
	if err := c.WriteFile("/dna/reads", "", reads); err != nil {
		return nil, err
	}
	start := time.Now()
	kres, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/kmers",
		Mapper: workloads.KMerMapper(21), Reducer: workloads.SumReducer,
		Combiner: workloads.SumReducer, NumReducers: 4, Locality: true,
	})
	if err != nil {
		return nil, err
	}
	kdur := time.Since(start)

	// The coverage job runs the memory-bounded path: a 16 KiB spill
	// budget forces external sorted runs, and the streaming reducer
	// folds each bucket's counts without materializing the group.
	start = time.Now()
	cres, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/cov",
		Mapper: workloads.CoverageMapper(1000), StreamReducer: workloads.StreamSumReducer,
		Combiner: workloads.SumReducer, NumReducers: 4, Locality: true,
		ShuffleMemory: 16 * units.KiB,
	})
	if err != nil {
		return nil, err
	}
	cdur := time.Since(start)

	nReads := int(12.0 * 50_000 / 100)
	return &Table{
		ID:         "E9",
		Title:      "DNA sequencing with Hadoop tools (slide 13)",
		PaperClaim: "DNA sequencing and reconstruction run as dedicated Hadoop applications",
		Columns:    []string{"job", "input", "distinct keys", "wall time"},
		Rows: [][]string{
			{"k-mer spectrum (k=21)",
				fmt.Sprintf("%d reads × 100 bp (12x coverage)", nReads),
				fmt.Sprint(kres.Counters.ReduceGroups),
				kdur.Round(time.Millisecond).String()},
			{"coverage profile (1 kb bins)",
				fmt.Sprintf("%d reads", nReads),
				fmt.Sprint(cres.Counters.ReduceGroups),
				cdur.Round(time.Millisecond).String()},
		},
		Notes: fmt.Sprintf("combiners collapse per-split duplicates before the shuffle — the same "+
			"structure 2011 Hadoop genomics tools (Crossbow, Cloudburst) relied on. The coverage "+
			"job ran under a 16 KiB shuffle budget with a streaming reducer: %d spill runs merged "+
			"across %d streams.", cres.Counters.SpillRuns, cres.Counters.MergeStreams),
	}, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/mrpc"
	"repro/internal/units"
	"repro/internal/workloads"
)

// E18 — distributed MapReduce under adversity (PR 9).
//
// The paper's Hadoop cluster is not one process: it is a JobTracker
// scheduling TaskTrackers that fail, lag and recover. This experiment
// drives the reproduction's distributed engine — master, workers,
// heartbeat leases, network shuffle, speculative execution — through
// the failure modes that machinery exists for, with the single-process
// engine as the correctness oracle.
//
// Phase 1 (scale-out): the same IO-emulating wordcount runs on 1, 2,
// 4 and 8 workers; wall time must fall as workers join while splits
// outnumber slots.
//
// Phase 2 (adversity): 8 workers serve two concurrent tenant jobs
// under weighted fair-share (bio 3 : climate 1), with one worker
// slowed to 10% speed and two healthy workers SIGKILLed mid-job (no
// goodbye — the master finds out by lease expiry). The bar: both
// jobs' part files byte-identical to their single-process references
// (zero lost acked results — killed workers' spilled segments are
// refetched or their maps re-executed), and speculative backups
// bounded by the per-job cap.
const (
	e18Workers     = 8
	e18Slots       = 2
	e18Heartbeat   = raceScale * 3 * time.Millisecond // see race_on.go
	e18BaseDelay   = 200 * time.Microsecond           // per-record emulated IO
	e18SlowFactor  = 10                               // straggler runs at 10% speed
	e18Reducers    = 3
	e18SpillBudget = 1024 // bytes; forces the external sort-spill path
)

// e18Templates is the registry the master and every worker share.
func e18Templates() mapreduce.Registry {
	return mapreduce.Registry{
		"wc": func(mrpc.JobSpec) (mapreduce.Config, error) {
			return mapreduce.Config{
				Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
					for _, w := range strings.Fields(string(v)) {
						emit(w, []byte("1"))
					}
					return nil
				}),
				Reducer:     workloads.SumReducer,
				Combiner:    workloads.SumReducer,
				Format:      mapreduce.TextInput,
				Locality:    true,
				Speculative: true,
			}, nil
		},
	}
}

func e18Corpus(seed, lines int) []byte {
	words := []string{"fish", "embryo", "the", "toxicology", "screen",
		"development", "kit", "genome", "sequence", "tile"}
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "%s %s %s line%04d\n",
			words[(i+seed)%len(words)], words[(i*3+seed)%len(words)],
			words[(i*7+seed+2)%len(words)], i)
	}
	return []byte(sb.String())
}

func e18Cluster(blockSize units.Bytes) (*dfs.Cluster, error) {
	c := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 3, Seed: 18})
	for i := 0; i < e18Workers; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("rack%d", i%2), units.GiB); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func e18Master(c *dfs.Cluster) (*mapreduce.Master, error) {
	return mapreduce.NewMaster(mapreduce.MasterConfig{
		Cluster:   c,
		Registry:  e18Templates(),
		Heartbeat: e18Heartbeat,
	})
}

// e18StartWorkers launches n workers; delays maps worker index to
// per-record StepDelay (every worker gets at least the base IO
// emulation).
func e18StartWorkers(c *dfs.Cluster, m *mapreduce.Master, n int, delays map[int]time.Duration) ([]*mapreduce.Worker, error) {
	ws := make([]*mapreduce.Worker, n)
	for i := range ws {
		d, ok := delays[i]
		if !ok {
			d = e18BaseDelay
		}
		w, err := mapreduce.StartWorker(mapreduce.WorkerConfig{
			ID:        fmt.Sprintf("w%d", i),
			Master:    m.URL(),
			Store:     mapreduce.NewDFSStore(c),
			Node:      fmt.Sprintf("dn%02d", i%e18Workers),
			Slots:     e18Slots,
			Registry:  e18Templates(),
			StepDelay: d,
		})
		if err != nil {
			for _, started := range ws[:i] {
				started.Close()
			}
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// e18ScaleRun runs the wordcount on a fresh cluster with n workers and
// returns the job wall time.
func e18ScaleRun(n int) (time.Duration, error) {
	c, err := e18Cluster(4 * units.KiB)
	if err != nil {
		return 0, err
	}
	if err := c.WriteFile("/in/doc", "", e18Corpus(1, 1600)); err != nil {
		return 0, err
	}
	m, err := e18Master(c)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	ws, err := e18StartWorkers(c, m, n, nil)
	if err != nil {
		return 0, err
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()
	j, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out",
		NumReducers: e18Reducers,
	}, "bio")
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := j.Wait(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// e18PartsEqual byte-compares two jobs' part files by basename.
func e18PartsEqual(c *dfs.Cluster, ref, got []string) (bool, error) {
	if len(ref) != len(got) {
		return false, nil
	}
	base := func(p string) string { return p[strings.LastIndex(p, "/")+1:] }
	gotByName := make(map[string][]byte, len(got))
	for _, f := range got {
		data, err := c.ReadFile(f, "")
		if err != nil {
			return false, fmt.Errorf("read %s: %w", f, err)
		}
		gotByName[base(f)] = data
	}
	for _, f := range ref {
		want, err := c.ReadFile(f, "")
		if err != nil {
			return false, fmt.Errorf("read %s: %w", f, err)
		}
		if !bytes.Equal(want, gotByName[base(f)]) {
			return false, nil
		}
	}
	return true, nil
}

// E18DistributedCompute runs both phases and renders the table.
func E18DistributedCompute() (*Table, error) {
	var rows [][]string

	// Phase 1: scale-out.
	var t1 time.Duration
	for _, n := range []int{1, 2, 4, 8} {
		d, err := e18ScaleRun(n)
		if err != nil {
			return nil, fmt.Errorf("scale-out %d workers: %w", n, err)
		}
		if n == 1 {
			t1 = d
		}
		rows = append(rows, []string{
			fmt.Sprintf("scale-out: %d workers (%d slots)", n, n*e18Slots),
			d.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx vs 1 worker", float64(t1)/float64(d)),
		})
	}

	// Phase 2: adversity. Two tenant jobs on 8 workers, worker 0 at
	// 10% speed, workers 2 and 3 killed mid-job.
	c, err := e18Cluster(2 * units.KiB)
	if err != nil {
		return nil, err
	}
	for seed, path := range map[int]string{3: "/in/bio", 5: "/in/climate"} {
		if err := c.WriteFile(path, "", e18Corpus(seed, 800)); err != nil {
			return nil, err
		}
	}

	// Single-process references, same specs, before any worker exists.
	reg := e18Templates()
	refs := make(map[string]*mapreduce.Result, 2)
	specs := map[string]mrpc.JobSpec{
		"bio": {Name: "wc", Inputs: []string{"/in/bio"}, OutputDir: "/ref/bio",
			NumReducers: e18Reducers, ShuffleMemory: e18SpillBudget},
		"climate": {Name: "wc", Inputs: []string{"/in/climate"}, OutputDir: "/ref/climate",
			NumReducers: e18Reducers, ShuffleMemory: e18SpillBudget},
	}
	for tenant, spec := range specs {
		cfg, err := reg.Resolve(spec)
		if err != nil {
			return nil, err
		}
		refs[tenant], err = mapreduce.Run(c, cfg)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", tenant, err)
		}
	}

	m, err := e18Master(c)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	m.SetTenantWeight("bio", 3)
	m.SetTenantWeight("climate", 1)
	ws, err := e18StartWorkers(c, m, e18Workers, map[int]time.Duration{
		0: e18SlowFactor * e18BaseDelay, // the straggler
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, w := range ws {
			w.Close()
		}
	}()

	jobs := make(map[string]*mapreduce.Job, 2)
	for tenant, spec := range specs {
		spec.OutputDir = "/dist/" + tenant
		j, err := m.Submit(spec, tenant)
		if err != nil {
			return nil, fmt.Errorf("submit %s: %w", tenant, err)
		}
		jobs[tenant] = j
	}

	// Mid-job, two healthy workers die without a goodbye; the master
	// learns by lease expiry and re-executes what they were running.
	time.Sleep(20 * e18Heartbeat)
	ws[2].Kill()
	ws[3].Kill()

	start := time.Now()
	for _, tenant := range []string{"bio", "climate"} {
		res, err := jobs[tenant].Wait()
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", tenant, err)
		}
		identical, err := e18PartsEqual(c, refs[tenant].OutputFiles, res.OutputFiles)
		if err != nil {
			return nil, err
		}
		if !identical {
			return nil, fmt.Errorf("job %s output differs from single-process reference", tenant)
		}
		if res.Counters.OutputRecords != refs[tenant].Counters.OutputRecords {
			return nil, fmt.Errorf("job %s output records %d, reference %d",
				tenant, res.Counters.OutputRecords, refs[tenant].Counters.OutputRecords)
		}
		specCap := int64(2)
		if n := int64(res.Counters.MapTasks+res.Counters.ReduceTasks) / 4; n > specCap {
			specCap = n
		}
		if res.Counters.SpecLaunched > specCap {
			return nil, fmt.Errorf("job %s launched %d speculative attempts, cap %d",
				tenant, res.Counters.SpecLaunched, specCap)
		}
		rows = append(rows, []string{
			fmt.Sprintf("adversity: %s job (weight %d)", tenant, map[string]int{"bio": 3, "climate": 1}[tenant]),
			res.Duration.Round(time.Millisecond).String(),
			fmt.Sprintf("byte-identical; %d retries, %d/%d speculative launched/won, %s remote shuffle",
				res.Counters.Retries, res.Counters.SpecLaunched, res.Counters.SpecWon,
				units.Bytes(res.Counters.RemoteShuffleBytes).SI()),
		})
	}
	drainWall := time.Since(start)

	// The kills are silent — the master only learns by lease expiry,
	// which may land after a short job has already drained. The fleet
	// count is about that detection, so give the monitor its lease.
	live := m.LiveWorkers()
	for deadline := time.Now().Add(40 * e18Heartbeat); len(live) > e18Workers-2 && time.Now().Before(deadline); {
		time.Sleep(e18Heartbeat)
		live = m.LiveWorkers()
	}
	rows = append(rows, []string{
		"adversity: worker fleet after kills",
		fmt.Sprintf("%d live of %d", len(live), e18Workers),
		fmt.Sprintf("2 killed mid-job, 1 running at %d%% speed; drain took %s",
			100/e18SlowFactor, drainWall.Round(time.Millisecond)),
	})

	return &Table{
		ID:         "E18",
		Title:      "Distributed MapReduce: scale-out, stragglers, worker loss (slide 11)",
		PaperClaim: "dedicated 60-node cluster, 110 TB HDFS, extreme scalability on commodity hardware",
		Columns:    []string{"configuration", "wall time", "detail"},
		Rows:       rows,
		Notes: "every map/reduce attempt crosses the wire (register, heartbeat-leased assignment, " +
			"explicit completion); reducers fetch spilled segments from worker shuffle servers with " +
			"DFS fallback, so killed workers cost re-execution only when their segments are gone. " +
			"Both adversity jobs are byte-identical to the single-process engine — the ordering and " +
			"tie-break invariants survive distribution, failure and speculation.",
	}, nil
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeWeightedMean(t *testing.T) {
	e := New(1)
	tw := NewTimeWeighted(e)
	// 0 for 5s, then 10 for 5s => mean 5 over 10s.
	e.Schedule(5*time.Second, func() { tw.Set(10) })
	e.RunUntil(10 * time.Second)
	if m := tw.Mean(); math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %f, want 5", m)
	}
	if tw.Max() != 10 {
		t.Fatalf("max = %f", tw.Max())
	}
	if tw.Value() != 10 {
		t.Fatalf("value = %f", tw.Value())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	e := New(1)
	tw := NewTimeWeighted(e)
	tw.Add(3)
	tw.Add(-1)
	if tw.Value() != 2 {
		t.Fatalf("value = %f", tw.Value())
	}
}

func TestTimeWeightedZeroSpan(t *testing.T) {
	e := New(1)
	tw := NewTimeWeighted(e)
	tw.Set(7)
	if m := tw.Mean(); m != 7 {
		t.Fatalf("mean at zero span = %f", m)
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Observe(x)
	}
	if s.N() != 5 {
		t.Fatalf("n = %d", s.N())
	}
	if m := s.Mean(); m != 3 {
		t.Fatalf("mean = %f", m)
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	want := math.Sqrt(2) // population std of 1..5
	if d := math.Abs(s.Std() - want); d > 1e-9 {
		t.Fatalf("std = %f, want %f", s.Std(), want)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("p100 = %f", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("p0 = %f", q)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.9) != 0 {
		t.Fatal("empty sample should summarize to zeros")
	}
}

func TestSampleObserveDuration(t *testing.T) {
	var s Sample
	s.ObserveDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("mean = %f", s.Mean())
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []int16) bool {
		var s Sample
		for _, x := range raw {
			s.Observe(float64(x))
		}
		if s.N() == 0 {
			return true
		}
		prev := s.Quantile(0)
		for q := 0.1; q <= 1.0001; q += 0.1 {
			cur := s.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Quantile(0) >= s.Min() && s.Quantile(1) <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: time-weighted mean of a constant signal is the constant.
func TestTimeWeightedConstantQuick(t *testing.T) {
	f := func(v int16, span uint16) bool {
		e := New(5)
		tw := NewTimeWeighted(e)
		tw.Set(float64(v))
		e.RunUntil(time.Duration(span+1) * time.Second)
		return math.Abs(tw.Mean()-float64(v)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

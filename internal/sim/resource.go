package sim

import "time"

// Resource is a counted resource (tape drives, ingest slots, CPU
// cores) with a FIFO wait queue. Acquire either grants immediately or
// queues the request; the grant callback receives a release function
// that must be called exactly once.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*waiter
	waiting  int // live (non-canceled) waiters, kept O(1)
	// stats
	grants    uint64
	totalWait time.Duration
	maxQueue  int
	busyInt   *TimeWeighted
}

type waiter struct {
	since    time.Duration
	fn       func(release func())
	canceled bool
	popped   bool // removed from the queue for delivery
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{
		eng:      eng,
		capacity: capacity,
		busyInt:  NewTimeWeighted(eng),
	}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of live waiting requests.
func (r *Resource) QueueLen() int { return r.waiting }

// Grants returns how many acquisitions have been granted.
func (r *Resource) Grants() uint64 { return r.grants }

// AvgWait returns the mean queueing delay across grants.
func (r *Resource) AvgWait() time.Duration {
	if r.grants == 0 {
		return 0
	}
	return r.totalWait / time.Duration(r.grants)
}

// MaxQueue returns the high-water mark of the wait queue.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// Utilization returns the time-averaged fraction of capacity in use.
func (r *Resource) Utilization() float64 {
	return r.busyInt.Mean() / float64(r.capacity)
}

// Acquire requests one unit. fn runs (possibly immediately, possibly
// later in virtual time) once a unit is available. The returned cancel
// function withdraws a still-queued request; it is a no-op after the
// grant.
func (r *Resource) Acquire(fn func(release func())) (cancel func()) {
	w := &waiter{since: r.eng.Now(), fn: fn}
	if r.inUse < r.capacity {
		r.inUse++
		r.busyInt.Set(float64(r.inUse))
		r.deliver(w)
		return func() {}
	}
	r.waiters = append(r.waiters, w)
	r.waiting++
	if r.waiting > r.maxQueue {
		r.maxQueue = r.waiting
	}
	return func() {
		if !w.canceled {
			w.canceled = true
			if !w.popped {
				r.waiting--
			}
		}
	}
}

// deliver runs the grant callback for a waiter that already owns a
// unit (inUse was incremented or the unit was transferred on release).
func (r *Resource) deliver(w *waiter) {
	r.grants++
	r.totalWait += r.eng.Now() - w.since
	released := false
	w.fn(func() {
		if released {
			panic("sim: double release")
		}
		released = true
		r.release()
	})
}

// release returns one unit: it is handed directly to the next live
// waiter (as a zero-delay event so the releaser's stack unwinds first)
// or returned to the pool.
func (r *Resource) release() {
	var next *waiter
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if !w.canceled {
			next = w
			next.popped = true
			r.waiting--
			break
		}
	}
	if next == nil {
		r.inUse--
		r.busyInt.Set(float64(r.inUse))
		return
	}
	// The unit transfers to next without touching inUse.
	r.eng.Schedule(0, func() {
		if next.canceled {
			r.release()
			return
		}
		r.deliver(next)
	})
}

package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*time.Second, func() { got = append(got, 3) })
	e.Schedule(1*time.Second, func() { got = append(got, 1) })
	e.Schedule(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order %v", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final time %v", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestReschedule(t *testing.T) {
	e := New(1)
	var at time.Duration
	ev := e.Schedule(time.Second, func() { at = e.Now() })
	e.Reschedule(ev, 5*time.Second)
	e.Run()
	if at != 5*time.Second {
		t.Fatalf("rescheduled event fired at %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(time.Second, func() { count++ })
	e.RunUntil(10 * time.Second)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Pending() == 0 {
		t.Fatal("periodic event should remain pending")
	}
}

func TestRunStopsWithOnlyDaemons(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Every(time.Second, func() { ticks++ })
	// One foreground event at 2.5s: Run must deliver it plus the two
	// daemon ticks before it, then stop instead of spinning forever.
	fired := false
	e.Schedule(2500*time.Millisecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("foreground event not delivered")
	}
	if ticks != 2 {
		t.Fatalf("daemon ticks = %d, want 2", ticks)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEveryStop(t *testing.T) {
	e := New(1)
	count := 0
	var stop func()
	stop = e.Every(time.Second, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	e.RunUntil(10 * time.Second)
	if count != 3 {
		t.Fatalf("ticks after stop = %d, want 3", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Schedule(-time.Second, func() {})
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Processed() != 100 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := New(42)
		var trace []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
			e.Schedule(d, func() { trace = append(trace, e.Now()) })
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the engine ends at the max delay.
func TestDeliveryMonotoneQuick(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var fired []time.Duration
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			e.Schedule(dd, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := New(1)
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func(release func()) { granted++; release() })
	r.Acquire(func(release func()) { granted++; release() })
	e.Run()
	if granted != 2 {
		t.Fatalf("granted = %d", granted)
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse = %d after releases", r.InUse())
	}
}

func TestResourceQueueing(t *testing.T) {
	e := New(1)
	r := NewResource(e, 1)
	var order []int
	// Holder occupies the unit for 10s.
	r.Acquire(func(release func()) {
		order = append(order, 0)
		e.Schedule(10*time.Second, release)
	})
	// Two waiters; must be granted FIFO after release.
	for i := 1; i <= 2; i++ {
		i := i
		r.Acquire(func(release func()) {
			order = append(order, i)
			release()
		})
	}
	if got := r.QueueLen(); got != 2 {
		t.Fatalf("queue len = %d", got)
	}
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v", order)
	}
	if r.AvgWait() == 0 {
		t.Fatal("waiters should have non-zero wait")
	}
	if r.MaxQueue() != 2 {
		t.Fatalf("max queue = %d", r.MaxQueue())
	}
}

func TestResourceCancelWaiter(t *testing.T) {
	e := New(1)
	r := NewResource(e, 1)
	r.Acquire(func(release func()) {
		e.Schedule(time.Second, release)
	})
	fired := false
	cancel := r.Acquire(func(release func()) { fired = true; release() })
	cancel()
	next := false
	r.Acquire(func(release func()) { next = true; release() })
	e.Run()
	if fired {
		t.Fatal("canceled waiter was granted")
	}
	if !next {
		t.Fatal("later waiter should be granted after cancellation")
	}
	if r.InUse() != 0 {
		t.Fatalf("inUse = %d", r.InUse())
	}
}

func TestResourceDoubleReleasePanics(t *testing.T) {
	e := New(1)
	r := NewResource(e, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	r.Acquire(func(release func()) {
		release()
		release()
	})
	e.Run()
}

// Property: with capacity c and n one-shot holders of equal duration,
// inUse never exceeds c and all n are eventually granted.
func TestResourceCapacityInvariantQuick(t *testing.T) {
	f := func(cap8 uint8, n8 uint8) bool {
		capacity := int(cap8%4) + 1
		n := int(n8 % 50)
		e := New(3)
		r := NewResource(e, capacity)
		granted := 0
		ok := true
		for i := 0; i < n; i++ {
			r.Acquire(func(release func()) {
				granted++
				if r.InUse() > capacity {
					ok = false
				}
				e.Schedule(time.Second, release)
			})
		}
		e.Run()
		return ok && granted == n && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New(1)
	r := NewResource(e, 1)
	r.Acquire(func(release func()) {
		e.Schedule(5*time.Second, release)
	})
	e.RunUntil(10 * time.Second)
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event throughput: the cost floor
// under every facility-scale scenario.
func BenchmarkScheduleRun(b *testing.B) {
	e := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i)*time.Nanosecond, func() {})
	}
	e.Run()
	b.ReportMetric(float64(e.Processed())/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkResourceChurn measures acquire/release cycles through a
// contended resource (the tape-drive pattern).
func BenchmarkResourceChurn(b *testing.B) {
	e := New(1)
	r := NewResource(e, 4)
	for i := 0; i < b.N; i++ {
		r.Acquire(func(release func()) {
			e.Schedule(time.Microsecond, release)
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkTimeWeighted measures the stats collector on a fast
// signal.
func BenchmarkTimeWeighted(b *testing.B) {
	e := New(1)
	tw := NewTimeWeighted(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw.Set(float64(i & 0xff))
	}
	_ = tw.Mean()
}

package sim

import (
	"math"
	"sort"
	"time"
)

// TimeWeighted accumulates the time integral of a piecewise-constant
// signal (queue length, units in use, bytes stored) so its mean over
// the simulated interval can be reported.
type TimeWeighted struct {
	eng      *Engine
	start    time.Duration
	lastT    time.Duration
	lastV    float64
	integral float64 // value × seconds
	max      float64
	min      float64
	seen     bool
}

// NewTimeWeighted starts a collector at the engine's current time with
// value 0.
func NewTimeWeighted(eng *Engine) *TimeWeighted {
	return &TimeWeighted{eng: eng, start: eng.Now(), lastT: eng.Now()}
}

// Set records that the signal changed to v at the current virtual time.
func (tw *TimeWeighted) Set(v float64) {
	now := tw.eng.Now()
	tw.integral += tw.lastV * (now - tw.lastT).Seconds()
	tw.lastT = now
	tw.lastV = v
	if !tw.seen {
		tw.max, tw.min, tw.seen = v, v, true
		return
	}
	if v > tw.max {
		tw.max = v
	}
	if v < tw.min {
		tw.min = v
	}
}

// Add records a delta to the signal.
func (tw *TimeWeighted) Add(dv float64) { tw.Set(tw.lastV + dv) }

// Value returns the current signal value.
func (tw *TimeWeighted) Value() float64 { return tw.lastV }

// Mean returns the time-weighted mean over [start, now].
func (tw *TimeWeighted) Mean() float64 {
	now := tw.eng.Now()
	total := (now - tw.start).Seconds()
	if total <= 0 {
		return tw.lastV
	}
	integral := tw.integral + tw.lastV*(now-tw.lastT).Seconds()
	return integral / total
}

// Max returns the maximum observed value (0 if never set).
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Sample is an order-preserving collector of scalar observations with
// summary statistics. It keeps all samples; facility-scale runs emit
// at most tens of thousands of observations per collector.
type Sample struct {
	xs    []float64
	sum   float64
	sumSq float64
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sumSq += x * x
}

// ObserveDuration records a duration in seconds.
func (s *Sample) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 with no samples).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Std returns the population standard deviation.
func (s *Sample) Std() float64 {
	n := float64(len(s.xs))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 {
		v = 0 // float cancellation guard
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 with no samples).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	min := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (0 with no samples).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	max := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank on a
// sorted copy. With no samples it returns 0.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.xs))
	copy(sorted, s.xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

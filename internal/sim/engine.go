// Package sim is a deterministic discrete-event simulation kernel.
//
// It is the substrate under every facility-scale model in the LSDF
// reproduction (network flows, tape robots, HSM migration, multi-year
// capacity planning): virtual time advances from event to event, so a
// month of facility operation executes in milliseconds of wall clock.
//
// The kernel is event-callback oriented rather than goroutine-per-
// process: handlers run one at a time on the caller's goroutine, which
// makes runs bit-for-bit reproducible for a given seed and keeps the
// race detector quiet without locks. Ties in virtual time are broken
// by scheduling order (a monotone sequence number), never by map or
// goroutine nondeterminism.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It is returned by Schedule/At so the
// caller can cancel or reschedule it.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	daemon   bool // daemon events do not keep Run alive
	index    int  // position in the heap, -1 when popped
}

// At reports the virtual time the event fires at.
func (ev *Event) At() time.Duration { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; call New.
type Engine struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	// processed counts delivered events, for diagnostics and tests.
	processed uint64
	// nonDaemon counts pending non-daemon events; Run stops at zero so
	// periodic background processes (Every) cannot spin forever.
	nonDaemon int
}

// New returns an engine at virtual time zero with a deterministic
// random stream derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events delivered so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Rand exposes the engine's deterministic random stream. Models must
// draw randomness only from here so runs replay identically.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay of virtual time. A negative delay is an
// error in the model and panics: discrete-event time cannot flow
// backwards.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	e.nonDaemon++
	return ev
}

// scheduleDaemon is Schedule for background/periodic events that must
// not keep Run alive on their own.
func (e *Engine) scheduleDaemon(delay time.Duration, fn func()) *Event {
	ev := e.Schedule(delay, fn)
	ev.daemon = true
	e.nonDaemon--
	return ev
}

// Cancel marks an event so it will not fire. Canceling an already
// delivered or canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
		if !ev.daemon {
			e.nonDaemon--
		}
	}
}

// Reschedule moves a pending event to fire after delay from now. It is
// equivalent to Cancel + Schedule but reuses the callback.
func (e *Engine) Reschedule(ev *Event, delay time.Duration) *Event {
	fn := ev.fn
	e.Cancel(ev)
	return e.Schedule(delay, fn)
}

// Step delivers the next event, advancing virtual time to it. It
// reports whether an event was delivered.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		if !ev.daemon {
			e.nonDaemon--
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run delivers events until no non-daemon events remain. Periodic
// background processes started with Every are daemon events: they run
// while foreground work is pending but do not keep the simulation
// alive by themselves (otherwise Run would spin until the clock
// overflows).
func (e *Engine) Run() {
	for e.nonDaemon > 0 && e.Step() {
	}
}

// RunUntil delivers events with time <= horizon, then sets the clock to
// horizon. Events scheduled beyond the horizon stay pending.
func (e *Engine) RunUntil(horizon time.Duration) {
	for e.events.Len() > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Pending reports the number of undelivered events (including canceled
// ones not yet reaped).
func (e *Engine) Pending() int { return e.events.Len() }

// Every schedules fn to run now+interval, then every interval after,
// until the returned stop function is called. The paper's periodic
// processes (heartbeats, migration scans, capacity snapshots) use it.
func (e *Engine) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = e.scheduleDaemon(interval, tick)
		}
	}
	pending = e.scheduleDaemon(interval, tick)
	return func() {
		stopped = true
		e.Cancel(pending)
	}
}

// Package core is the public face of the LSDF reproduction: one
// Facility handle that exposes the paper's integrated data lifecycle
// — ingest with checksums and metadata registration, unified access
// through ADAL, browsing and tagging via the DataBrowser, tag-
// triggered Kepler-style workflows with provenance, policy-driven
// data management, and MapReduce analysis on the Hadoop cluster.
//
// The metadata repository behind the handle is sharded (see
// internal/metadata): queries fan out over all shards, and the bulk
// paths (Ingest with a batch size, StoreBatch) register whole groups
// of datasets with one shard-lock round per shard. Event delivery to
// workflow triggers and rules is synchronous by default; with
// Options.AsyncEvents it moves to a background bus, and Flush is the
// barrier that waits for all deliveries.
//
// Downstream users import the repository root (package lsdf), which
// re-exports this API.
package core

import (
	"context"
	"io"

	"repro/internal/adal"
	"repro/internal/databrowser"
	"repro/internal/dfs"
	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
)

// Options configures a facility; see facility.Options for fields.
type Options = facility.Options

// Facility is the top-level handle.
type Facility struct {
	f *facility.Facility
}

// New assembles a facility.
func New(opts Options) (*Facility, error) {
	f, err := facility.New(opts)
	if err != nil {
		return nil, err
	}
	return &Facility{f: f}, nil
}

// Close releases background workers.
func (fc *Facility) Close() { fc.f.Close() }

// Layer exposes the ADAL federation.
func (fc *Facility) Layer() *adal.Layer { return fc.f.Layer }

// Metadata exposes the project metadata DB.
func (fc *Facility) Metadata() *metadata.Store { return fc.f.Meta }

// Browser exposes the DataBrowser.
func (fc *Facility) Browser() *databrowser.Browser { return fc.f.Browser }

// Orchestrator exposes the workflow orchestrator.
func (fc *Facility) Orchestrator() *workflow.Orchestrator { return fc.f.Orchestrator }

// Rules exposes the policy engine.
func (fc *Facility) Rules() *rules.Engine { return fc.f.Rules }

// Ingest drains a producer through a checksumming worker pool,
// storing every object and registering it in the metadata DB.
func (fc *Facility) Ingest(ctx context.Context, prod ingest.Producer, workers int) (ingest.Stats, error) {
	return fc.IngestWith(ctx, prod, ingest.Config{Workers: workers})
}

// IngestWith is Ingest with full pipeline configuration — batch
// size, error observer. Config.BatchSize > 1 registers objects
// through the metadata store's batched API (one shard-lock round
// per shard).
func (fc *Facility) IngestWith(ctx context.Context, prod ingest.Producer, cfg ingest.Config) (ingest.Stats, error) {
	pipe := ingest.New(fc.f.Layer, fc.f.Meta, cfg)
	return pipe.Run(ctx, prod)
}

// Store writes one object and registers it — the single-file
// convenience over Ingest.
func (fc *Facility) Store(project, path string, data io.Reader, basic map[string]string, tags ...string) (metadata.Dataset, error) {
	n, sum, err := fc.f.Layer.WriteChecksummed(path, data)
	if err != nil {
		return metadata.Dataset{}, err
	}
	ds, err := fc.f.Meta.Create(project, path, n, sum, basic)
	if err != nil {
		_ = fc.f.Layer.Remove(path)
		return metadata.Dataset{}, err
	}
	for _, tag := range tags {
		if err := fc.f.Meta.Tag(ds.ID, tag); err != nil {
			return ds, err
		}
	}
	out, _ := fc.f.Meta.Get(ds.ID)
	return out, nil
}

// StoreBatch writes a group of objects and registers them in one
// batched metadata round per touched shard. Results are per-item and
// aligned with the input; a failed item's stored bytes are rolled
// back so the facility never holds unregistered data. The rollback
// can never delete another dataset's bytes: Layer.Create fails with
// ErrExists on an occupied path, so a write that succeeded — the
// only case that reaches the rollback — was to a previously empty
// path this call owns.
func (fc *Facility) StoreBatch(objs []ingest.Object) []metadata.CreateResult {
	specs := make([]metadata.CreateSpec, len(objs))
	results := make([]metadata.CreateResult, len(objs))
	written := make([]bool, len(objs))
	for i := range objs {
		n, sum, err := fc.f.Layer.WriteChecksummed(objs[i].Path, objs[i].Data)
		if err != nil {
			results[i].Err = err
			continue
		}
		written[i] = true
		specs[i] = metadata.CreateSpec{
			Project:  objs[i].Project,
			Path:     objs[i].Path,
			Size:     n,
			Checksum: sum,
			Basic:    objs[i].Basic,
			Tags:     objs[i].Tags,
		}
	}
	// Failed writes keep their zero spec; an empty path never collides
	// with a real claim, but filter them anyway to avoid phantom
	// datasets.
	toCreate := make([]metadata.CreateSpec, 0, len(objs))
	idx := make([]int, 0, len(objs))
	for i := range specs {
		if written[i] {
			toCreate = append(toCreate, specs[i])
			idx = append(idx, i)
		}
	}
	for j, r := range fc.f.Meta.CreateBatch(toCreate) {
		i := idx[j]
		results[i] = r
		if r.Err != nil {
			_ = fc.f.Layer.Remove(objs[i].Path)
		}
	}
	return results
}

// Flush blocks until every metadata event published so far has been
// delivered to workflow triggers and rules, and until every workflow
// run the orchestrator handed to its AsyncWorkflows pool has
// finished. With the default synchronous event mode and no pool it
// returns immediately; with Options.AsyncEvents (or AsyncWorkflows)
// it is the barrier to call before inspecting trigger effects.
func (fc *Facility) Flush() { fc.f.Meta.Flush() }

// Open reads a stored object.
func (fc *Facility) Open(path string) (io.ReadCloser, error) { return fc.f.Layer.Open(path) }

// Query finds datasets in the metadata DB.
func (fc *Facility) Query(q metadata.Query) []metadata.Dataset { return fc.f.Meta.Find(q) }

// Tag tags the dataset registered at path; tags drive workflow
// triggers and rules.
func (fc *Facility) Tag(path, tag string) error { return fc.f.Browser.Tag(path, tag) }

// AddTrigger registers a tag-triggered workflow.
func (fc *Facility) AddTrigger(t workflow.Trigger) { fc.f.Orchestrator.AddTrigger(t) }

// AddRule registers a policy rule.
func (fc *Facility) AddRule(r rules.Rule) { fc.f.Rules.Add(r) }

// RunJob executes a MapReduce job on the analysis cluster. Input and
// output paths are cluster paths (the /hdfs mount without its prefix).
func (fc *Facility) RunJob(cfg mapreduce.Config) (*mapreduce.Result, error) {
	return fc.f.RunJob(cfg)
}

// ClusterReport summarizes the analysis cluster's DFS.
func (fc *Facility) ClusterReport() dfs.Report { return fc.f.DFS.Report() }

// Cluster exposes the analysis cluster for advanced use (balancer,
// failure injection, direct file IO).
func (fc *Facility) Cluster() *dfs.Cluster { return fc.f.DFS }

// Bytes re-exports the unit type used across the API.
type Bytes = units.Bytes

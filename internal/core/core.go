// Package core is the public face of the LSDF reproduction: one
// Facility handle that exposes the paper's integrated data lifecycle
// — ingest with checksums and metadata registration, unified access
// through ADAL, browsing and tagging via the DataBrowser, tag-
// triggered Kepler-style workflows with provenance, policy-driven
// data management, and MapReduce analysis on the Hadoop cluster.
//
// Downstream users import the repository root (package lsdf), which
// re-exports this API.
package core

import (
	"context"
	"io"

	"repro/internal/adal"
	"repro/internal/databrowser"
	"repro/internal/dfs"
	"repro/internal/facility"
	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
)

// Options configures a facility; see facility.Options for fields.
type Options = facility.Options

// Facility is the top-level handle.
type Facility struct {
	f *facility.Facility
}

// New assembles a facility.
func New(opts Options) (*Facility, error) {
	f, err := facility.New(opts)
	if err != nil {
		return nil, err
	}
	return &Facility{f: f}, nil
}

// Close releases background workers.
func (fc *Facility) Close() { fc.f.Close() }

// Layer exposes the ADAL federation.
func (fc *Facility) Layer() *adal.Layer { return fc.f.Layer }

// Metadata exposes the project metadata DB.
func (fc *Facility) Metadata() *metadata.Store { return fc.f.Meta }

// Browser exposes the DataBrowser.
func (fc *Facility) Browser() *databrowser.Browser { return fc.f.Browser }

// Orchestrator exposes the workflow orchestrator.
func (fc *Facility) Orchestrator() *workflow.Orchestrator { return fc.f.Orchestrator }

// Rules exposes the policy engine.
func (fc *Facility) Rules() *rules.Engine { return fc.f.Rules }

// Ingest drains a producer through a checksumming worker pool,
// storing every object and registering it in the metadata DB.
func (fc *Facility) Ingest(ctx context.Context, prod ingest.Producer, workers int) (ingest.Stats, error) {
	pipe := ingest.New(fc.f.Layer, fc.f.Meta, ingest.Config{Workers: workers})
	return pipe.Run(ctx, prod)
}

// Store writes one object and registers it — the single-file
// convenience over Ingest.
func (fc *Facility) Store(project, path string, data io.Reader, basic map[string]string, tags ...string) (metadata.Dataset, error) {
	n, sum, err := fc.f.Layer.WriteChecksummed(path, data)
	if err != nil {
		return metadata.Dataset{}, err
	}
	ds, err := fc.f.Meta.Create(project, path, n, sum, basic)
	if err != nil {
		_ = fc.f.Layer.Remove(path)
		return metadata.Dataset{}, err
	}
	for _, tag := range tags {
		if err := fc.f.Meta.Tag(ds.ID, tag); err != nil {
			return ds, err
		}
	}
	out, _ := fc.f.Meta.Get(ds.ID)
	return out, nil
}

// Open reads a stored object.
func (fc *Facility) Open(path string) (io.ReadCloser, error) { return fc.f.Layer.Open(path) }

// Query finds datasets in the metadata DB.
func (fc *Facility) Query(q metadata.Query) []metadata.Dataset { return fc.f.Meta.Find(q) }

// Tag tags the dataset registered at path; tags drive workflow
// triggers and rules.
func (fc *Facility) Tag(path, tag string) error { return fc.f.Browser.Tag(path, tag) }

// AddTrigger registers a tag-triggered workflow.
func (fc *Facility) AddTrigger(t workflow.Trigger) { fc.f.Orchestrator.AddTrigger(t) }

// AddRule registers a policy rule.
func (fc *Facility) AddRule(r rules.Rule) { fc.f.Rules.Add(r) }

// RunJob executes a MapReduce job on the analysis cluster. Input and
// output paths are cluster paths (the /hdfs mount without its prefix).
func (fc *Facility) RunJob(cfg mapreduce.Config) (*mapreduce.Result, error) {
	return fc.f.RunJob(cfg)
}

// ClusterReport summarizes the analysis cluster's DFS.
func (fc *Facility) ClusterReport() dfs.Report { return fc.f.DFS.Report() }

// Cluster exposes the analysis cluster for advanced use (balancer,
// failure injection, direct file IO).
func (fc *Facility) Cluster() *dfs.Cluster { return fc.f.DFS }

// Bytes re-exports the unit type used across the API.
type Bytes = units.Bytes

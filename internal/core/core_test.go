package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func TestStoreQueryTagLifecycle(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	ds, err := fc.Store("zebrafish", "/ddn/itg/img1.raw",
		strings.NewReader("pixels"), map[string]string{"well": "A1"}, "raw")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Checksum == "" || !ds.HasTag("raw") {
		t.Fatalf("dataset = %+v", ds)
	}
	r, err := fc.Open("/ddn/itg/img1.raw")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "pixels" {
		t.Fatalf("read = %q", data)
	}
	got := fc.Query(metadata.Query{Project: "zebrafish", Tags: []string{"raw"}})
	if len(got) != 1 || got[0].ID != ds.ID {
		t.Fatalf("query = %+v", got)
	}
}

func TestStoreDuplicateCleansUp(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.Store("p", "/ddn/x", strings.NewReader("1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Store("p", "/ddn/x", strings.NewReader("2"), nil); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTriggerAndRuleViaFacade(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	wf := workflow.New("count")
	wf.MustAddNode("n", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		return workflow.Values{"seen": "yes"}, nil
	}))
	fc.AddTrigger(workflow.Trigger{Tag: "go", Workflow: wf})
	fc.AddRule(rules.Rule{
		Name: "replicate", Event: rules.OnCreate,
		Actions: []rules.Action{rules.Replicate("/archive")},
	})

	ds, err := fc.Store("p", "/ddn/obj", strings.NewReader("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Layer().Stat("/archive/ddn/obj"); err != nil {
		t.Fatalf("rule did not replicate: %v", err)
	}
	if err := fc.Tag("/ddn/obj", "go"); err != nil {
		t.Fatal(err)
	}
	got, _ := fc.Metadata().Get(ds.ID)
	if len(got.Processings) != 1 || got.Processings[0].Results["seen"] != "yes" {
		t.Fatalf("provenance = %+v", got.Processings)
	}
}

func TestIngestAndMapReduceViaFacade(t *testing.T) {
	fc, err := New(Options{DFSBlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 2
	cfg.ImagesPerFish = 2
	cfg.ImageSize = 256
	cfg.Channels = []string{"488nm"}
	stats, err := fc.Ingest(context.Background(), workloads.NewMicroscopy(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Objects) != cfg.TotalImages() {
		t.Fatalf("objects = %d", stats.Objects)
	}

	// MR job over a corpus placed on the cluster.
	var corpus strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&corpus, "fish embryo %d\n", i)
	}
	w, err := fc.Layer().Create("/hdfs/corpus")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, corpus.String())
	w.Close()
	res, err := fc.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, word := range strings.Fields(string(v)) {
				emit(word, []byte("1"))
			}
			return nil
		}),
		Reducer: workloads.SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(fc.Cluster(), res.OutputFiles)
	if out["fish"][0] != "50" {
		t.Fatalf("wordcount = %v", out)
	}
	rep := fc.ClusterReport()
	if rep.Files == 0 || rep.Used == 0 {
		t.Fatalf("report = %+v", rep)
	}
	_ = units.Bytes(0)
}

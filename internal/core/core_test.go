package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func TestStoreQueryTagLifecycle(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	ds, err := fc.Store("zebrafish", "/ddn/itg/img1.raw",
		strings.NewReader("pixels"), map[string]string{"well": "A1"}, "raw")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Checksum == "" || !ds.HasTag("raw") {
		t.Fatalf("dataset = %+v", ds)
	}
	r, err := fc.Open("/ddn/itg/img1.raw")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "pixels" {
		t.Fatalf("read = %q", data)
	}
	got := fc.Query(metadata.Query{Project: "zebrafish", Tags: []string{"raw"}})
	if len(got) != 1 || got[0].ID != ds.ID {
		t.Fatalf("query = %+v", got)
	}
}

func TestStoreDuplicateCleansUp(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.Store("p", "/ddn/x", strings.NewReader("1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Store("p", "/ddn/x", strings.NewReader("2"), nil); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTriggerAndRuleViaFacade(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	wf := workflow.New("count")
	wf.MustAddNode("n", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		return workflow.Values{"seen": "yes"}, nil
	}))
	fc.AddTrigger(workflow.Trigger{Tag: "go", Workflow: wf})
	fc.AddRule(rules.Rule{
		Name: "replicate", Event: rules.OnCreate,
		Actions: []rules.Action{rules.Replicate("/archive")},
	})

	ds, err := fc.Store("p", "/ddn/obj", strings.NewReader("data"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Layer().Stat("/archive/ddn/obj"); err != nil {
		t.Fatalf("rule did not replicate: %v", err)
	}
	if err := fc.Tag("/ddn/obj", "go"); err != nil {
		t.Fatal(err)
	}
	got, _ := fc.Metadata().Get(ds.ID)
	if len(got.Processings) != 1 || got.Processings[0].Results["seen"] != "yes" {
		t.Fatalf("provenance = %+v", got.Processings)
	}
}

// TestAsyncFacilityTriggersAfterFlush: with AsyncEvents the Tag call
// returns before the workflow runs; Flush is the barrier after which
// every trigger and its provenance write are visible — including
// runs handed to the AsyncWorkflows pool, which register with the
// flush barrier via HoldFlush.
func TestAsyncFacilityTriggersAfterFlush(t *testing.T) {
	fc, err := New(Options{AsyncEvents: true, MetadataShards: 4, AsyncWorkflows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	wf := workflow.New("seg")
	wf.MustAddNode("n", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		return workflow.Values{"seen": "yes"}, nil
	}))
	fc.AddTrigger(workflow.Trigger{Tag: "analyze", Workflow: wf})

	const n = 20
	var ids []string
	for i := 0; i < n; i++ {
		ds, err := fc.Store("p", fmt.Sprintf("/ddn/a/%03d", i), strings.NewReader("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ds.ID)
		if err := fc.Tag(ds.Path, "analyze"); err != nil {
			t.Fatal(err)
		}
	}
	fc.Flush()
	for _, id := range ids {
		got, _ := fc.Metadata().Get(id)
		if len(got.Processings) != 1 || got.Processings[0].Results["seen"] != "yes" {
			t.Fatalf("dataset %s: provenance = %+v", id, got.Processings)
		}
		if !got.HasTag("processed:seg") {
			t.Fatalf("dataset %s missing completion tag", id)
		}
	}
	if got := fc.Query(metadata.Query{Tags: []string{"processed:seg"}}); len(got) != n {
		t.Fatalf("processed = %d", len(got))
	}
}

// TestStoreBatchViaFacade: the batched store path registers, tags,
// and rolls back a failed item's stored bytes without touching the
// other items in the batch.
func TestStoreBatchViaFacade(t *testing.T) {
	fc, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// A metadata claim with no stored bytes: the write will succeed
	// and registration will fail, forcing the rollback branch.
	if _, err := fc.Metadata().Create("p", "/ddn/claimed", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	objs := []ingest.Object{
		{Project: "p", Path: "/ddn/b/0", Data: strings.NewReader("aa"), Tags: []string{"raw"}},
		{Project: "p", Path: "/ddn/claimed", Data: strings.NewReader("orphan")},
		{Project: "p", Path: "/ddn/b/1", Data: strings.NewReader("bbb")},
	}
	res := fc.StoreBatch(objs)
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("item %d: %v", i, res[i].Err)
		}
	}
	if !errors.Is(res[1].Err, metadata.ErrDuplicate) {
		t.Fatalf("item 1: err = %v, want ErrDuplicate", res[1].Err)
	}
	// The failed item's bytes were rolled back; the good items stayed.
	if _, err := fc.Open("/ddn/claimed"); err == nil {
		t.Fatal("orphan bytes not rolled back")
	}
	if r, err := fc.Open("/ddn/b/1"); err != nil {
		t.Fatalf("good item lost: %v", err)
	} else {
		r.Close()
	}
	if res[0].Dataset.Size != 2 || !res[0].Dataset.HasTag("raw") || res[0].Dataset.Checksum == "" {
		t.Fatalf("batched dataset = %+v", res[0].Dataset)
	}
	if got := fc.Query(metadata.Query{Project: "p"}); len(got) != 3 {
		t.Fatalf("registered = %d", len(got))
	}
}

func TestIngestAndMapReduceViaFacade(t *testing.T) {
	fc, err := New(Options{DFSBlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 2
	cfg.ImagesPerFish = 2
	cfg.ImageSize = 256
	cfg.Channels = []string{"488nm"}
	stats, err := fc.Ingest(context.Background(), workloads.NewMicroscopy(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Objects) != cfg.TotalImages() {
		t.Fatalf("objects = %d", stats.Objects)
	}

	// MR job over a corpus placed on the cluster.
	var corpus strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&corpus, "fish embryo %d\n", i)
	}
	w, err := fc.Layer().Create("/hdfs/corpus")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, corpus.String())
	w.Close()
	res, err := fc.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, word := range strings.Fields(string(v)) {
				emit(word, []byte("1"))
			}
			return nil
		}),
		Reducer: workloads.SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(fc.Cluster(), res.OutputFiles)
	if out["fish"][0] != "50" {
		t.Fatalf("wordcount = %v", out)
	}
	rep := fc.ClusterReport()
	if rep.Files == 0 || rep.Used == 0 {
		t.Fatalf("report = %+v", rep)
	}
	_ = units.Bytes(0)
}

package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/units"
)

// partBytes concatenates a job's part files in output order — the
// byte-identity oracle for spill-vs-in-memory comparisons.
func partBytes(t *testing.T, c *dfs.Cluster, files []string) string {
	t.Helper()
	var sb strings.Builder
	for _, f := range files {
		data, err := c.ReadFile(f, "")
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(data)
		sb.WriteByte('|')
	}
	return sb.String()
}

// Property (seeded, no wall-clock): for randomized jobs, the spill
// path (tiny ShuffleMemory) produces byte-identical part files to the
// in-memory path (huge ShuffleMemory), across shuffled scheduling
// shapes (different node counts, slot counts, reducer fan-out held
// fixed per trial).
func TestSpillMatchesInMemoryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20110711))
	words := []string{"zebrafish", "embryo", "plate", "well", "kmer", "slab", "tape", "adal"}
	for trial := 0; trial < 12; trial++ {
		nLines := rng.Intn(150) + 20
		lines := make([]string, nLines)
		for i := range lines {
			w := make([]string, rng.Intn(6)+1)
			for j := range w {
				w[j] = words[rng.Intn(len(words))] + strconv.Itoa(rng.Intn(9))
			}
			lines[i] = strings.Join(w, " ")
		}
		reducers := rng.Intn(4) + 1
		withCombiner := rng.Intn(2) == 0
		run := func(nodes, slots int, shuffleMem units.Bytes) (string, Counters) {
			c := testCluster(nodes, 256)
			if err := writeCorpus(c, "/in/prop", lines); err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Inputs: []string{"/in/prop"}, OutputDir: "/out/prop",
				Mapper: wordCountMapper, Reducer: sumReducer,
				NumReducers: reducers, SlotsPerNode: slots, Locality: true,
				ShuffleMemory: shuffleMem,
			}
			if withCombiner {
				cfg.Combiner = sumReducer
			}
			res, err := Run(c, cfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return partBytes(t, c, res.OutputFiles), res.Counters
		}
		memOut, memCtr := run(rng.Intn(5)+2, rng.Intn(3)+1, units.GiB)
		spillOut, spillCtr := run(rng.Intn(5)+2, rng.Intn(3)+1, 256)
		if memCtr.SpillRuns != 0 {
			t.Fatalf("trial %d: in-memory run spilled %d runs", trial, memCtr.SpillRuns)
		}
		if spillCtr.SpillRuns == 0 {
			t.Fatalf("trial %d: spill run never spilled (%d lines)", trial, nLines)
		}
		if memOut != spillOut {
			t.Fatalf("trial %d (reducers=%d combiner=%v): spill output differs from in-memory\nmem:   %q\nspill: %q",
				trial, reducers, withCombiner, memOut, spillOut)
		}
	}
}

// Acceptance: a job whose intermediate volume is >= 8x ShuffleMemory
// completes, spills, and matches the in-memory output bytes.
func TestSpillEightTimesBudget(t *testing.T) {
	const budget = 4 * units.KiB
	lines := make([]string, 1500)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha%d beta%d gamma%d delta%d epsilon%d zeta%d",
			i%89, i%53, i%31, i, i%211, i%7)
	}
	run := func(mem units.Bytes) (string, Counters) {
		c := testCluster(5, units.KiB)
		if err := writeCorpus(c, "/in/big", lines); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/big"}, OutputDir: "/out/big",
			Mapper: wordCountMapper, Reducer: sumReducer,
			NumReducers: 3, Locality: true, ShuffleMemory: mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		return partBytes(t, c, res.OutputFiles), res.Counters
	}
	memOut, memCtr := run(units.GiB)
	spillOut, ctr := run(budget)
	if ctr.ShuffleBytes < int64(8*budget) {
		t.Fatalf("intermediate volume %d < 8x budget %d — test corpus too small", ctr.ShuffleBytes, 8*budget)
	}
	if ctr.SpillRuns == 0 || ctr.SpillBytes == 0 {
		t.Fatalf("no spills under budget: %+v", ctr)
	}
	if ctr.MergeStreams <= memCtr.MergeStreams {
		t.Fatalf("spilling did not widen the merge: %d streams vs %d", ctr.MergeStreams, memCtr.MergeStreams)
	}
	if memOut != spillOut {
		t.Fatal("spill output differs from in-memory output")
	}
	t.Logf("volume=%d budget=%d spillRuns=%d spillBytes=%d mergeStreams=%d",
		ctr.ShuffleBytes, budget, ctr.SpillRuns, ctr.SpillBytes, ctr.MergeStreams)
}

// Map-only jobs take the same spill/merge path; their part-m files
// must also be byte-identical to the in-memory path — including with
// a combiner, where spilled runs are combined per run and must be
// re-folded at write time.
func TestMapOnlySpillMatchesInMemory(t *testing.T) {
	lines := make([]string, 120)
	for i := range lines {
		lines[i] = fmt.Sprintf("rec%03d value%d", i, i%7)
	}
	run := func(mem units.Bytes, combiner Reducer) string {
		c := testCluster(4, 512)
		if err := writeCorpus(c, "/in/mo", lines); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/mo"}, OutputDir: "/out/mo",
			Mapper: wordCountMapper, MapOnly: true, ShuffleMemory: mem,
			Combiner: combiner,
		})
		if err != nil {
			t.Fatal(err)
		}
		return partBytes(t, c, res.OutputFiles)
	}
	if a, b := run(units.GiB, nil), run(128, nil); a != b {
		t.Fatalf("map-only spill output differs:\nmem:   %q\nspill: %q", a, b)
	}
	if a, b := run(units.GiB, sumReducer), run(128, sumReducer); a != b {
		t.Fatalf("map-only spill output differs with combiner:\nmem:   %q\nspill: %q", a, b)
	}
}

// StreamReducer and the equivalent [][]byte Reducer produce identical
// bytes, spilled or not. streamSumBench (bench_test.go) is the
// streaming counterpart of sumReducer.
func TestStreamReducerMatchesReducer(t *testing.T) {
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = fmt.Sprintf("k%d k%d k%d", i%17, i%5, i%29)
	}
	run := func(mem units.Bytes, streaming bool) string {
		c := testCluster(4, 256)
		if err := writeCorpus(c, "/in/sr", lines); err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Inputs: []string{"/in/sr"}, OutputDir: "/out/sr",
			Mapper: wordCountMapper, NumReducers: 3, ShuffleMemory: mem,
		}
		if streaming {
			cfg.StreamReducer = streamSumBench
		} else {
			cfg.Reducer = sumReducer
		}
		res, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return partBytes(t, c, res.OutputFiles)
	}
	base := run(units.GiB, false)
	for _, mem := range []units.Bytes{units.GiB, 256} {
		if got := run(mem, true); got != base {
			t.Fatalf("streaming output differs at mem=%d", mem)
		}
	}
}

func TestBothReducersRejected(t *testing.T) {
	c := testCluster(3, 1024)
	if err := writeCorpus(c, "/in/x", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(c, Config{
		Inputs: []string{"/in/x"}, OutputDir: "/out/x",
		Mapper:        wordCountMapper,
		Reducer:       sumReducer,
		StreamReducer: StreamReducerFunc(identityStreamReducer{}.ReduceStream),
	})
	if err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("err = %v, want both-reducers rejection", err)
	}
}

// failingWriter injects a DFS write failure after passing through a
// few bytes, mid-part-file.
type failingWriter struct {
	w       io.Writer
	after   int
	written int
	err     error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.after {
		return 0, f.err
	}
	f.written += len(p)
	return f.w.Write(p)
}

// An induced DFS write failure inside a reduce task retries under
// MaxAttempts, increments Retries, and still produces correct output.
func TestReduceWriteFailureRetries(t *testing.T) {
	boom := errors.New("injected dfs write failure")
	c := testCluster(4, 256)
	lines := make([]string, 80)
	for i := range lines {
		lines[i] = fmt.Sprintf("w%d w%d", i%9, i%4)
	}
	if err := writeCorpus(c, "/in/rf", lines); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Inputs: []string{"/in/rf"}, OutputDir: "/out/rf",
		Mapper: wordCountMapper, Reducer: sumReducer,
		NumReducers: 2, MaxAttempts: 3, ShuffleMemory: 256,
		reduceWriter: func(part, attempt int, node string, w io.Writer) io.Writer {
			if part == 0 && attempt == 1 {
				return &failingWriter{w: w, after: 8, err: boom}
			}
			return w
		},
	})
	if err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if res.Counters.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Counters.Retries)
	}
	got, err := ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	if got["w0"][0] == "" {
		t.Fatalf("output missing after retry: %v", got)
	}
}

// Exhausted reduce attempts surface the wrapped error.
func TestReduceFailureExhaustsAttempts(t *testing.T) {
	boom := errors.New("injected dfs write failure")
	c := testCluster(3, 256)
	if err := writeCorpus(c, "/in/re", []string{"a b a"}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(c, Config{
		Inputs: []string{"/in/re"}, OutputDir: "/out/re",
		Mapper: wordCountMapper, Reducer: sumReducer,
		NumReducers: 1, MaxAttempts: 3,
		reduceWriter: func(part, attempt int, node string, w io.Writer) io.Writer {
			return &failingWriter{w: w, after: 0, err: boom}
		},
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped injected failure", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want attempt count in message", err)
	}
}

// Reduce workers honor the per-node slot budget: with SlotsPerNode=1
// on 2 nodes, no node ever runs two reduce attempts at once.
func TestReduceSlotScheduling(t *testing.T) {
	c := testCluster(2, 512)
	lines := make([]string, 60)
	for i := range lines {
		lines[i] = fmt.Sprintf("k%d v", i)
	}
	if err := writeCorpus(c, "/in/slots", lines); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	active := map[string]int{}
	maxActive := map[string]int{}
	parts := 0
	res, err := Run(c, Config{
		Inputs: []string{"/in/slots"}, OutputDir: "/out/slots",
		Mapper: wordCountMapper, Reducer: sumReducer,
		NumReducers: 8, SlotsPerNode: 1,
		reduceHook: func(part, attempt int, node string) func() {
			mu.Lock()
			parts++
			active[node]++
			if active[node] > maxActive[node] {
				maxActive[node] = active[node]
			}
			mu.Unlock()
			time.Sleep(time.Millisecond) // widen the overlap window
			return func() {
				mu.Lock()
				active[node]--
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if parts != 8 {
		t.Fatalf("reduce attempts = %d, want 8", parts)
	}
	for node, m := range maxActive {
		if m > 1 {
			t.Fatalf("node %s ran %d concurrent reduce attempts with SlotsPerNode=1", node, m)
		}
	}
	if res.Counters.ReduceTasks != 8 {
		t.Fatalf("reduce tasks = %d", res.Counters.ReduceTasks)
	}
}

// Spill files are cleaned out of the DFS once the job returns (losing
// speculative attempts delete their own; this job has none).
func TestSpillFilesCleanedUp(t *testing.T) {
	c := testCluster(4, 256)
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = fmt.Sprintf("word%d word%d", i%13, i%7)
	}
	if err := writeCorpus(c, "/in/clean", lines); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Inputs: []string{"/in/clean"}, OutputDir: "/out/clean",
		Mapper: wordCountMapper, Reducer: sumReducer,
		NumReducers: 2, ShuffleMemory: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpillRuns == 0 {
		t.Fatal("job never spilled; cleanup untested")
	}
	for _, fi := range c.List("/out/clean") {
		if strings.Contains(fi.Name, "_shuffle") {
			t.Fatalf("leftover spill file %s after job", fi.Name)
		}
	}
}

package mapreduce

import (
	"context"
	"testing"
	"time"

	"repro/internal/mrpc"
)

// These tests drive the master's wire protocol directly — no Worker
// runtime — to pin the liveness and commit-arbitration edges: lease
// expiry re-queues leased tasks, a late heartbeat from a
// presumed-dead worker gets Unknown, and a complete from a superseded
// attempt is rejected while the successor's is accepted.

func protoMaster(t *testing.T) (*Master, *mrpc.Client) {
	t.Helper()
	c := testCluster(3, 4096) // one block → exactly one map task
	if err := writeCorpus(c, "/in/one", wcCorpus(10)); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(MasterConfig{
		Cluster:   c,
		Registry:  testTemplates(),
		Heartbeat: 5 * time.Millisecond,
		Lease:     25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, mrpc.NewClient(m.URL())
}

func register(t *testing.T, cl *mrpc.Client, id string) {
	t.Helper()
	var rep mrpc.RegisterReply
	err := cl.Call(context.Background(), mrpc.PathRegister, &mrpc.RegisterRequest{Worker: id, Addr: "127.0.0.1:1", Slots: 1}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeaseMS != 25 {
		t.Fatalf("lease = %dms, want 25", rep.LeaseMS)
	}
}

func beat(t *testing.T, cl *mrpc.Client, id string, free int, running []mrpc.Progress) mrpc.HeartbeatReply {
	t.Helper()
	var rep mrpc.HeartbeatReply
	err := cl.Call(context.Background(), mrpc.PathHeartbeat, &mrpc.HeartbeatRequest{Worker: id, Free: free, Running: running}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// takeAssignment heartbeats until the master hands id one task.
func takeAssignment(t *testing.T, cl *mrpc.Client, id string) mrpc.Assignment {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		rep := beat(t, cl, id, 1, nil)
		if rep.Unknown {
			t.Fatal("unexpected Unknown for registered worker")
		}
		if len(rep.Assign) > 0 {
			return rep.Assign[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no assignment before deadline")
	return mrpc.Assignment{}
}

func TestLeaseExpiryRequeuesTask(t *testing.T) {
	m, cl := protoMaster(t)
	if _, err := m.Submit(mrpc.JobSpec{Name: "wc", Inputs: []string{"/in/one"}, OutputDir: "/out/l1"}, "t"); err != nil {
		t.Fatal(err)
	}
	register(t, cl, "u1")
	a1 := takeAssignment(t, cl, "u1")
	if a1.ID.Attempt != 0 {
		t.Fatalf("first lease is attempt %d, want 0", a1.ID.Attempt)
	}
	// u1 goes silent past its lease: the master must declare it dead
	// and hand the same task to a newcomer as a fresh attempt.
	time.Sleep(60 * time.Millisecond)
	if live := m.LiveWorkers(); len(live) != 0 {
		t.Fatalf("workers still live after lease expiry: %v", live)
	}
	register(t, cl, "u2")
	a2 := takeAssignment(t, cl, "u2")
	if a2.ID.TaskKey() != a1.ID.TaskKey() {
		t.Fatalf("requeued task %v, want %v", a2.ID.TaskKey(), a1.ID.TaskKey())
	}
	if a2.ID.Attempt <= a1.ID.Attempt {
		t.Fatalf("reissued lease reuses attempt number %d", a2.ID.Attempt)
	}
}

func TestLateHeartbeatFromPresumedDeadWorker(t *testing.T) {
	m, cl := protoMaster(t)
	register(t, cl, "u1")
	if rep := beat(t, cl, "u1", 1, nil); rep.Unknown {
		t.Fatal("live worker told it is unknown")
	}
	time.Sleep(60 * time.Millisecond)
	rep := beat(t, cl, "u1", 1, nil)
	if !rep.Unknown {
		t.Fatal("presumed-dead worker's heartbeat not answered with Unknown")
	}
	if len(rep.Assign) != 0 {
		t.Fatal("dead worker handed work")
	}
	// Re-registering restores service.
	register(t, cl, "u1")
	if rep := beat(t, cl, "u1", 1, nil); rep.Unknown {
		t.Fatal("re-registered worker still unknown")
	}
	if len(m.LiveWorkers()) != 1 {
		t.Fatalf("live workers = %v", m.LiveWorkers())
	}
	// An unregistered worker's running attempt is unknown too; its
	// heartbeat must not panic the master.
	rep = beat(t, cl, "ghost", 0, []mrpc.Progress{{ID: mrpc.AttemptID{Job: "mj-000001", Phase: "map"}}})
	if !rep.Unknown {
		t.Fatal("never-registered worker not told Unknown")
	}
}

func TestSupersededCompleteRejected(t *testing.T) {
	m, cl := protoMaster(t)
	if _, err := m.Submit(mrpc.JobSpec{Name: "wc", Inputs: []string{"/in/one"}, OutputDir: "/out/l3"}, "t"); err != nil {
		t.Fatal(err)
	}
	register(t, cl, "u1")
	a1 := takeAssignment(t, cl, "u1")
	time.Sleep(60 * time.Millisecond) // u1's lease lapses mid-task
	register(t, cl, "u2")
	a2 := takeAssignment(t, cl, "u2")
	if a2.ID.TaskKey() != a1.ID.TaskKey() {
		t.Fatalf("successor got %v, want %v", a2.ID.TaskKey(), a1.ID.TaskKey())
	}
	// The dead-then-revived u1 finishes its superseded attempt late.
	var rep mrpc.CompleteReply
	err := cl.Call(context.Background(), mrpc.PathComplete, &mrpc.CompleteRequest{Worker: "u1", ID: a1.ID}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("superseded attempt's completion accepted")
	}
	// The live successor's completion is accepted — once.
	err = cl.Call(context.Background(), mrpc.PathComplete, &mrpc.CompleteRequest{Worker: "u2", ID: a2.ID}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("successor attempt's completion rejected")
	}
	err = cl.Call(context.Background(), mrpc.PathComplete, &mrpc.CompleteRequest{Worker: "u2", ID: a2.ID}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("duplicate completion accepted twice")
	}
}

package mapreduce

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mrpc"
)

// BenchmarkTaskRPC prices the distributed control plane itself: a
// map-only job on one idle worker, so each task pays the full
// register/heartbeat-assign/execute/complete round trip with almost
// no compute inside. ns/task is the overhead a real task amortizes.
func BenchmarkTaskRPC(b *testing.B) {
	c := testCluster(2, 512)
	if err := writeCorpus(c, "/in/doc", wcCorpus(64)); err != nil {
		b.Fatal(err)
	}
	m, err := NewMaster(MasterConfig{
		Cluster:   c,
		Registry:  testTemplates(),
		Heartbeat: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	startWorkers(b, c, m, 1, nil)

	var tasks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := m.Submit(mrpc.JobSpec{
			Name: "grep-the", Inputs: []string{"/in/doc"},
			OutputDir: fmt.Sprintf("/out/%d", i),
		}, "bench")
		if err != nil {
			b.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			b.Fatal(err)
		}
		tasks += res.Counters.MapTasks
	}
	b.StopTimer()
	if tasks > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tasks), "ns/task")
	}
}

// stragglerRun executes one wordcount on 4 workers where worker 0
// crawls at stepDelay per record, with speculation on or off, and
// returns the wall time and counters.
func stragglerRun(tb testing.TB, speculative bool, run int) (time.Duration, *Result) {
	tb.Helper()
	c := testCluster(4, 1024)
	if err := writeCorpus(c, "/in/doc", wcCorpus(240)); err != nil {
		tb.Fatal(err)
	}
	m := startMaster(tb, c)
	ws := startWorkers(tb, c, m, 4, map[int]time.Duration{0: 4 * time.Millisecond})
	name := "wc"
	if speculative {
		name = "wc-spec"
	}
	j, err := m.Submit(mrpc.JobSpec{
		Name: name, Inputs: []string{"/in/doc"},
		OutputDir: fmt.Sprintf("/out/r%d", run), NumReducers: 2,
	}, "bench")
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	res, err := j.Wait()
	if err != nil {
		tb.Fatal(err)
	}
	wall := time.Since(start)
	for _, w := range ws {
		w.Close()
	}
	m.Close()
	return wall, res
}

// BenchmarkStragglerSpecOff measures the straggler tail with
// speculation disabled: the job ends when the 10x-slow worker finally
// drains its share.
func BenchmarkStragglerSpecOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stragglerRun(b, false, i)
	}
}

// BenchmarkStragglerSpecOn is the same cluster with speculative
// backups: stragglers are raced by copies on idle fast workers and
// the first finisher commits.
func BenchmarkStragglerSpecOn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stragglerRun(b, true, i)
	}
}

// TestSpeculationTailCut pins the perf headline: with one worker at a
// fraction of fleet speed, speculative execution must cut job wall
// time by at least 1.5x. Medians over 3 runs absorb scheduler noise.
func TestSpeculationTailCut(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	median := func(speculative bool) time.Duration {
		walls := make([]time.Duration, 3)
		for i := range walls {
			wall, res := stragglerRun(t, speculative, len(walls)*100+i)
			if speculative && res.Counters.SpecLaunched == 0 {
				t.Log("warning: speculative run launched no backups")
			}
			walls[i] = wall
		}
		if walls[0] > walls[1] {
			walls[0], walls[1] = walls[1], walls[0]
		}
		if walls[1] > walls[2] {
			walls[1], walls[2] = walls[2], walls[1]
		}
		if walls[0] > walls[1] {
			walls[0], walls[1] = walls[1], walls[0]
		}
		return walls[1]
	}
	off := median(false)
	on := median(true)
	ratio := float64(off) / float64(on)
	t.Logf("straggler tail: spec off %v, spec on %v (%.2fx)", off, on, ratio)
	if ratio < 1.5 {
		t.Errorf("speculation cut the tail %.2fx, want >= 1.5x", ratio)
	}
}

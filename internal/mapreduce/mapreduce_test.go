package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dfs"
	"repro/internal/units"
)

func testCluster(nodes int, blockSize units.Bytes) *dfs.Cluster {
	c := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 3, Seed: 9})
	for i := 0; i < nodes; i++ {
		rack := fmt.Sprintf("rack%d", i%3)
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), rack, units.GiB); err != nil {
			panic(err)
		}
	}
	return c
}

// wordCount splits lines on spaces; the canonical Hadoop example.
var wordCountMapper = MapperFunc(func(_ string, value []byte, emit Emit) error {
	for _, w := range strings.Fields(string(value)) {
		emit(w, []byte("1"))
	}
	return nil
})

var sumReducer = ReducerFunc(func(key string, values [][]byte, emit Emit) error {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		sum += n
	}
	emit(key, []byte(strconv.Itoa(sum)))
	return nil
})

func writeCorpus(c *dfs.Cluster, name string, lines []string) error {
	return c.WriteFile(name, "", []byte(strings.Join(lines, "\n")+"\n"))
}

func TestWordCount(t *testing.T) {
	c := testCluster(4, 64)
	lines := []string{
		"fish embryo fish",
		"embryo development toxicology",
		"fish toxicology screen fish",
	}
	if err := writeCorpus(c, "/in/doc", lines); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Name:        "wordcount",
		Inputs:      []string{"/in/doc"},
		OutputDir:   "/out/wc",
		Mapper:      wordCountMapper,
		Reducer:     sumReducer,
		NumReducers: 3,
		Locality:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"fish": "4", "embryo": "2", "development": "1",
		"toxicology": "2", "screen": "1",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(got), len(want), got)
	}
	for k, w := range want {
		if len(got[k]) != 1 || got[k][0] != w {
			t.Errorf("key %q = %v, want [%s]", k, got[k], w)
		}
	}
	if res.Counters.InputRecords != 3 {
		t.Errorf("input records = %d, want 3", res.Counters.InputRecords)
	}
	if res.Counters.MapOutputRecords != 10 {
		t.Errorf("map output records = %d, want 10", res.Counters.MapOutputRecords)
	}
	if res.Counters.OutputRecords != 5 {
		t.Errorf("output records = %d, want 5", res.Counters.OutputRecords)
	}
}

func TestSplitBoundaryLines(t *testing.T) {
	// Block size 10 forces lines to straddle block boundaries; the
	// TextInputFormat convention must still see each line exactly once.
	c := testCluster(4, 10)
	var lines []string
	for i := 0; i < 50; i++ {
		lines = append(lines, fmt.Sprintf("line%02d tail", i))
	}
	if err := writeCorpus(c, "/in/lines", lines); err != nil {
		t.Fatal(err)
	}
	var count int64
	counter := MapperFunc(func(_ string, value []byte, emit Emit) error {
		if len(value) > 0 {
			atomic.AddInt64(&count, 1)
			emit("lines", []byte("1"))
		}
		return nil
	})
	res, err := Run(c, Config{
		Inputs: []string{"/in/lines"}, OutputDir: "/out/lines",
		Mapper: counter, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("mapper saw %d lines, want 50", count)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if got["lines"][0] != "50" {
		t.Fatalf("count output = %v", got["lines"])
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	corpus := make([]string, 200)
	for i := range corpus {
		corpus[i] = fmt.Sprintf("w%d w%d w%d", i%7, i%13, i%3)
	}
	run := func(nodes, slots int) string {
		c := testCluster(nodes, 128)
		if err := writeCorpus(c, "/in/c", corpus); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/c"}, OutputDir: "/out/c",
			Mapper: wordCountMapper, Reducer: sumReducer,
			NumReducers: 4, SlotsPerNode: slots, Locality: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var all []string
		for _, f := range res.OutputFiles {
			data, err := c.ReadFile(f, "")
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, string(data))
		}
		return strings.Join(all, "|")
	}
	a := run(2, 1)
	b := run(8, 4)
	if a != b {
		t.Fatal("job output depends on parallelism")
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	corpus := make([]string, 300)
	for i := range corpus {
		corpus[i] = "alpha beta gamma alpha"
	}
	run := func(combiner Reducer) Counters {
		c := testCluster(4, 256)
		if err := writeCorpus(c, "/in/c", corpus); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/c"}, OutputDir: "/out/c",
			Mapper: wordCountMapper, Reducer: sumReducer, Combiner: combiner,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := ReadTextOutput(c, res.OutputFiles)
		if got["alpha"][0] != "600" {
			t.Fatalf("alpha = %v, want 600", got["alpha"])
		}
		return res.Counters
	}
	plain := run(nil)
	combined := run(sumReducer)
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
	if combined.CombineInput == 0 || combined.CombineOutput == 0 {
		t.Fatalf("combine counters empty: %+v", combined)
	}
}

func TestLocalityScheduling(t *testing.T) {
	// Delay scheduling makes the local fraction stable (a worker
	// without a local pending task yields up to maxLocalitySkips
	// before going remote), but task grabbing is still a goroutine
	// race, so the threshold is asserted over a few scheduling shapes
	// rather than one interleaving.
	var best float64
	for round := 0; round < 4; round++ {
		c := testCluster(6, 512)
		data := bytes.Repeat([]byte("zebrafish sample line\n"), 500)
		if err := c.WriteFile("/in/big", "dn00", data); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/big"}, OutputDir: "/out/loc",
			Mapper: wordCountMapper, Reducer: sumReducer, Locality: true,
			SlotsPerNode: round + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctr := res.Counters
		if ctr.LocalTasks == 0 {
			t.Fatalf("no local tasks with locality on: %+v", ctr)
		}
		frac := float64(ctr.LocalTasks) / float64(ctr.LocalTasks+ctr.RemoteTasks)
		t.Logf("round %d: local %d / remote %d (%.2f)", round, ctr.LocalTasks, ctr.RemoteTasks, frac)
		if frac > best {
			best = frac
		}
		if best >= 0.5 {
			return
		}
	}
	t.Fatalf("best local fraction = %.2f over 4 shapes, want >= 0.5 with replication 3 on 6 nodes", best)
}

func TestWholeSplitInput(t *testing.T) {
	c := testCluster(4, 100)
	data := patternBytes(950) // 10 splits: 9 full + 1 of 50
	if err := c.WriteFile("/in/bin", "", data); err != nil {
		t.Fatal(err)
	}
	var frames int64
	var total int64
	m := MapperFunc(func(key string, value []byte, emit Emit) error {
		atomic.AddInt64(&frames, 1)
		atomic.AddInt64(&total, int64(len(value)))
		emit("max", []byte{maxByte(value)})
		return nil
	})
	maxReducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		var m byte
		for _, v := range values {
			if v[0] > m {
				m = v[0]
			}
		}
		emit(key, []byte(fmt.Sprintf("%d", m)))
		return nil
	})
	res, err := Run(c, Config{
		Inputs: []string{"/in/bin"}, OutputDir: "/out/bin",
		Mapper: m, Reducer: maxReducer, Format: WholeSplitInput,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 10 {
		t.Fatalf("splits seen = %d, want 10", frames)
	}
	if total != 950 {
		t.Fatalf("bytes seen = %d, want 950", total)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if len(got["max"]) != 1 {
		t.Fatalf("output = %v", got)
	}
}

func patternBytes(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i % 251)
	}
	return data
}

func maxByte(b []byte) byte {
	var m byte
	for _, x := range b {
		if x > m {
			m = x
		}
	}
	return m
}

func TestMapperErrorRetriesThenFails(t *testing.T) {
	c := testCluster(3, 1024)
	if err := writeCorpus(c, "/in/x", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var calls int64
	m := MapperFunc(func(string, []byte, Emit) error {
		atomic.AddInt64(&calls, 1)
		return boom
	})
	_, err := Run(c, Config{
		Inputs: []string{"/in/x"}, OutputDir: "/out/x",
		Mapper: m, Reducer: sumReducer, MaxAttempts: 3,
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
}

func TestTransientErrorRecovered(t *testing.T) {
	c := testCluster(3, 1024)
	if err := writeCorpus(c, "/in/x", []string{"a b"}); err != nil {
		t.Fatal(err)
	}
	var calls int64
	m := MapperFunc(func(_ string, value []byte, emit Emit) error {
		if atomic.AddInt64(&calls, 1) == 1 {
			return errors.New("transient")
		}
		return wordCountMapper(_unused, value, emit)
	})
	res, err := Run(c, Config{
		Inputs: []string{"/in/x"}, OutputDir: "/out/x",
		Mapper: m, Reducer: sumReducer, MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Retries != 1 {
		t.Fatalf("retries = %d, want 1", res.Counters.Retries)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if got["a"][0] != "1" || got["b"][0] != "1" {
		t.Fatalf("output = %v", got)
	}
}

const _unused = ""

func TestSpeculativeExecution(t *testing.T) {
	c := testCluster(4, 64)
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines, fmt.Sprintf("rec%02d data", i))
	}
	if err := writeCorpus(c, "/in/s", lines); err != nil {
		t.Fatal(err)
	}
	// dn00 is pathologically slow: any task placed there stalls long
	// enough that its speculative duplicate on a healthy node wins.
	var slowHits int64
	res, err := Run(c, Config{
		Inputs: []string{"/in/s"}, OutputDir: "/out/s",
		Mapper: wordCountMapper, Reducer: sumReducer,
		Speculative: true, StragglerFactor: 1.5, MonitorInterval: 2 * time.Millisecond,
		SlotsPerNode: 1,
		TaskDelay: func(node string, task int) time.Duration {
			if node == "dn00" {
				atomic.AddInt64(&slowHits, 1)
				return 400 * time.Millisecond
			}
			return time.Millisecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Atomic read: a losing speculative attempt may still be waking up
	// on its injected delay after the job has returned.
	if atomic.LoadInt64(&slowHits) == 0 {
		t.Skip("scheduler never placed a task on the slow node")
	}
	ctr := res.Counters
	if ctr.SpecLaunched == 0 {
		t.Fatalf("no speculative attempts despite straggler: %+v", ctr)
	}
	if ctr.SpecWon == 0 {
		t.Fatalf("speculative attempts never won: %+v", ctr)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if got["data"][0] != "40" {
		t.Fatalf("speculation corrupted output: %v", got["data"])
	}
}

func TestIdentityReducer(t *testing.T) {
	c := testCluster(3, 1024)
	if err := writeCorpus(c, "/in/i", []string{"k1 k2 k1"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Inputs: []string{"/in/i"}, OutputDir: "/out/i",
		Mapper: wordCountMapper, // emits (word, "1")
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if len(got["k1"]) != 2 || len(got["k2"]) != 1 {
		t.Fatalf("identity output = %v", got)
	}
}

func TestMultipleInputFiles(t *testing.T) {
	c := testCluster(4, 128)
	if err := writeCorpus(c, "/in/a", []string{"x y"}); err != nil {
		t.Fatal(err)
	}
	if err := writeCorpus(c, "/in/b", []string{"y z"}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Inputs: []string{"/in/a", "/in/b"}, OutputDir: "/out/m",
		Mapper: wordCountMapper, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ReadTextOutput(c, res.OutputFiles)
	if got["y"][0] != "2" || got["x"][0] != "1" || got["z"][0] != "1" {
		t.Fatalf("output = %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	c := testCluster(3, 1024)
	if err := c.WriteFile("/in/empty", "", nil); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Config{
		Inputs: []string{"/in/empty"}, OutputDir: "/out/e",
		Mapper: wordCountMapper, Reducer: sumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.InputRecords != 0 {
		t.Fatalf("records = %d", res.Counters.InputRecords)
	}
	// Output files still exist (empty), like Hadoop part files.
	if len(res.OutputFiles) != 1 {
		t.Fatalf("outputs = %v", res.OutputFiles)
	}
}

func TestMissingInput(t *testing.T) {
	c := testCluster(3, 1024)
	_, err := Run(c, Config{
		Inputs: []string{"/nope"}, OutputDir: "/out",
		Mapper: wordCountMapper,
	})
	if !errors.Is(err, dfs.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoMapper(t *testing.T) {
	c := testCluster(3, 1024)
	if _, err := Run(c, Config{Inputs: nil, OutputDir: "/out"}); err == nil {
		t.Fatal("expected error without mapper")
	}
}

// Property: word counts from the MR job equal a straightforward
// sequential count, for any corpus shape and reducer fan-out.
func TestWordCountMatchesSequentialQuick(t *testing.T) {
	f := func(seed uint16, reducers uint8) bool {
		r := int(reducers%4) + 1
		words := []string{"aa", "bb", "cc", "dd", "ee"}
		var lines []string
		expect := map[string]int{}
		n := int(seed%64) + 1
		for i := 0; i < n; i++ {
			w1 := words[(int(seed)+i*3)%len(words)]
			w2 := words[(int(seed)+i*7)%len(words)]
			lines = append(lines, w1+" "+w2)
			expect[w1]++
			expect[w2]++
		}
		c := testCluster(3, 64)
		if err := writeCorpus(c, "/in/q", lines); err != nil {
			return false
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/q"}, OutputDir: "/out/q",
			Mapper: wordCountMapper, Reducer: sumReducer, NumReducers: r,
		})
		if err != nil {
			return false
		}
		got, err := ReadTextOutput(c, res.OutputFiles)
		if err != nil {
			return false
		}
		if len(got) != len(expect) {
			return false
		}
		for k, v := range expect {
			if len(got[k]) != 1 || got[k][0] != strconv.Itoa(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package mapreduce

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/mrpc"
)

// testTemplates is the registry distributed tests share: wordcount
// with a combiner (the shuffle path), and a map-only grep.
func testTemplates() Registry {
	return Registry{
		"wc": func(mrpc.JobSpec) (Config, error) {
			return Config{
				Mapper:   wordCountMapper,
				Reducer:  sumReducer,
				Combiner: sumReducer,
				Format:   TextInput,
				Locality: true,
			}, nil
		},
		"wc-spec": func(mrpc.JobSpec) (Config, error) {
			return Config{
				Mapper:      wordCountMapper,
				Reducer:     sumReducer,
				Combiner:    sumReducer,
				Format:      TextInput,
				Locality:    true,
				Speculative: true,
			}, nil
		},
		"grep-the": func(mrpc.JobSpec) (Config, error) {
			return Config{
				Mapper: MapperFunc(func(key string, value []byte, emit Emit) error {
					if strings.Contains(string(value), "the") {
						emit(key, value)
					}
					return nil
				}),
				Format:  TextInput,
				MapOnly: true,
			}, nil
		},
	}
}

func startMaster(t testing.TB, c *dfs.Cluster) *Master {
	t.Helper()
	m, err := NewMaster(MasterConfig{
		Cluster:   c,
		Registry:  testTemplates(),
		Heartbeat: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// startWorkers launches n workers bound to the cluster; delays maps a
// worker index to an injected per-record StepDelay (stragglers).
func startWorkers(t testing.TB, c *dfs.Cluster, m *Master, n int, delays map[int]time.Duration) []*Worker {
	t.Helper()
	ws := make([]*Worker, n)
	for i := range ws {
		w, err := StartWorker(WorkerConfig{
			ID:        fmt.Sprintf("w%d", i),
			Master:    m.URL(),
			Store:     NewDFSStore(c),
			Node:      fmt.Sprintf("dn%02d", i%len(c.DataNodes())),
			Slots:     2,
			Registry:  testTemplates(),
			StepDelay: delays[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		ws[i] = w
	}
	return ws
}

func waitJob(t *testing.T, j *Job) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := j.Wait()
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("job %s: %v", j.ID, o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s: timed out", j.ID)
		return nil
	}
}

// readParts returns each output file's raw bytes keyed by its name
// relative to the output dir, for byte-level comparison across runs.
func readParts(t *testing.T, c *dfs.Cluster, files []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(files))
	for _, f := range files {
		data, err := c.ReadFile(f, "")
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		out[f[strings.LastIndex(f, "/")+1:]] = data
	}
	return out
}

func wcCorpus(n int) []string {
	words := []string{"fish", "embryo", "the", "toxicology", "screen",
		"development", "kit", "genome", "the", "tile"}
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("%s %s %s line%04d",
			words[i%len(words)], words[(i*3+1)%len(words)], words[(i*7+2)%len(words)], i)
	}
	return lines
}

// TestDistributedByteIdentity is the core acceptance check: the same
// job, same spill budget, run through the single-process engine and
// through master + 4 workers, must produce byte-identical part files
// — the merge tie-break and spill-all invariants crossing the wire
// intact.
func TestDistributedByteIdentity(t *testing.T) {
	c := testCluster(4, 256)
	if err := writeCorpus(c, "/in/doc", wcCorpus(300)); err != nil {
		t.Fatal(err)
	}
	// Single-process reference, spilling (1 KiB budget).
	ref, err := Run(c, Config{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/sp",
		Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
		NumReducers: 3, Locality: true, ShuffleMemory: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}

	m := startMaster(t, c)
	startWorkers(t, c, m, 4, nil)
	j, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/dist",
		NumReducers: 3, ShuffleMemory: 1024,
	}, "bio")
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)

	want := readParts(t, c, ref.OutputFiles)
	got := readParts(t, c, res.OutputFiles)
	if len(got) != len(want) {
		t.Fatalf("distributed wrote %d parts, reference %d", len(got), len(want))
	}
	for name, wb := range want {
		if string(got[name]) != string(wb) {
			t.Errorf("%s differs from single-process output", name)
		}
	}
	if res.Counters.InputRecords != ref.Counters.InputRecords {
		t.Errorf("input records %d != reference %d",
			res.Counters.InputRecords, ref.Counters.InputRecords)
	}
	if res.Counters.OutputRecords != ref.Counters.OutputRecords {
		t.Errorf("output records %d != reference %d",
			res.Counters.OutputRecords, ref.Counters.OutputRecords)
	}
	if res.Counters.SpillRuns == 0 {
		t.Error("distributed job spilled no runs; spill path untested")
	}
	// Shuffle fetches should have come from worker shuffle servers,
	// not the DFS fallback, while every worker is alive.
	if res.Counters.RemoteShuffleBytes == 0 {
		t.Error("no bytes moved through the network shuffle")
	}
	// Committed shuffle state must be gone.
	for _, f := range c.List("/out/dist/_shuffle") {
		t.Errorf("leftover shuffle file %s", f.Name)
	}
}

// TestDistributedMapOnly checks the NumReduceTasks=0 path: attempt
// files renamed into part-m names identical to the engine's.
func TestDistributedMapOnly(t *testing.T) {
	c := testCluster(4, 256)
	if err := writeCorpus(c, "/in/doc", wcCorpus(120)); err != nil {
		t.Fatal(err)
	}
	ref, err := Run(c, Config{
		Name: "grep", Inputs: []string{"/in/doc"}, OutputDir: "/out/gsp",
		Mapper: MapperFunc(func(key string, value []byte, emit Emit) error {
			if strings.Contains(string(value), "the") {
				emit(key, value)
			}
			return nil
		}),
		Format: TextInput, MapOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := startMaster(t, c)
	startWorkers(t, c, m, 3, nil)
	j, err := m.Submit(mrpc.JobSpec{
		Name: "grep-the", Inputs: []string{"/in/doc"}, OutputDir: "/out/gd",
	}, "bio")
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	want := readParts(t, c, ref.OutputFiles)
	got := readParts(t, c, res.OutputFiles)
	if len(got) != len(want) {
		t.Fatalf("distributed wrote %d parts, reference %d", len(got), len(want))
	}
	for name, wb := range want {
		if string(got[name]) != string(wb) {
			t.Errorf("%s differs from single-process output", name)
		}
	}
}

// TestDistributedWorkerKill kills half the fleet mid-job. The master
// must detect the missed heartbeats, re-queue the dead workers' work
// (re-running committed maps only if their spill files are really
// unreachable), and finish with output identical to a clean run.
func TestDistributedWorkerKill(t *testing.T) {
	c := testCluster(4, 128)
	if err := writeCorpus(c, "/in/doc", wcCorpus(400)); err != nil {
		t.Fatal(err)
	}
	ref, err := Run(c, Config{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/ksp",
		Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
		NumReducers: 2, Locality: true, ShuffleMemory: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := startMaster(t, c)
	// Slow every record slightly so the job outlives the kills.
	slow := map[int]time.Duration{}
	for i := 0; i < 4; i++ {
		slow[i] = 100 * time.Microsecond
	}
	ws := startWorkers(t, c, m, 4, slow)
	j, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/kd",
		NumReducers: 2, ShuffleMemory: 2048,
	}, "bio")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let tasks land on every worker
	ws[1].Kill()
	ws[3].Kill()
	res := waitJob(t, j)
	want := readParts(t, c, ref.OutputFiles)
	got := readParts(t, c, res.OutputFiles)
	for name, wb := range want {
		if string(got[name]) != string(wb) {
			t.Errorf("%s differs from clean run after worker kills", name)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if live := m.LiveWorkers(); len(live) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("master still counts %v live", m.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedSpeculation runs one worker at ~1% speed. The master
// must project the straggler from its progress rate, launch a bounded
// backup, and commit whichever attempt finishes first — with output
// identical to an unhampered run.
func TestDistributedSpeculation(t *testing.T) {
	c := testCluster(4, 256)
	if err := writeCorpus(c, "/in/doc", wcCorpus(300)); err != nil {
		t.Fatal(err)
	}
	m := startMaster(t, c)
	// Three healthy workers plus one single-slot straggler. The
	// sleep-based delay is sized so the straggler's first map is
	// still running long after the healthy workers drain the rest of
	// the queue — even under -race, which slows their compute but
	// not this sleep — so there is always a committed median to
	// project against and a straggler alive past it. One slot keeps
	// the test deterministic the other way too: the straggler cannot
	// absorb a whole phase, whose siblings then never commit.
	startWorkers(t, c, m, 3, nil)
	slow, err := StartWorker(WorkerConfig{
		ID:        "w-slow",
		Master:    m.URL(),
		Store:     NewDFSStore(c),
		Node:      "dn03",
		Slots:     1,
		Registry:  testTemplates(),
		StepDelay: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slow.Close)
	j, err := m.Submit(mrpc.JobSpec{
		Name: "wc-spec", Inputs: []string{"/in/doc"}, OutputDir: "/out/spec",
		NumReducers: 2,
	}, "bio")
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	got, err := ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["fish"]) != 1 {
		t.Fatalf("bad output: %v", got)
	}
	if res.Counters.SpecLaunched == 0 {
		t.Error("no speculative attempt launched against a 100x straggler")
	}
	specCap := int64(2)
	if n := int64(len(j.maps)+len(j.reduces)) / 4; n > specCap {
		specCap = n
	}
	if res.Counters.SpecLaunched > specCap {
		t.Errorf("speculative attempts %d exceed cap %d", res.Counters.SpecLaunched, specCap)
	}
}

// TestDistributedFairShare runs two tenants with 3:1 weights over a
// saturated fleet and checks the weighted tenant finishes first while
// both produce correct output.
func TestDistributedFairShare(t *testing.T) {
	c := testCluster(4, 128)
	if err := writeCorpus(c, "/in/a", wcCorpus(200)); err != nil {
		t.Fatal(err)
	}
	if err := writeCorpus(c, "/in/b", wcCorpus(200)); err != nil {
		t.Fatal(err)
	}
	m := startMaster(t, c)
	startWorkers(t, c, m, 2, map[int]time.Duration{0: 50 * time.Microsecond, 1: 50 * time.Microsecond})
	m.SetTenantWeight("heavy", 3)
	m.SetTenantWeight("light", 1)
	ja, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/a"}, OutputDir: "/out/fa", NumReducers: 2,
	}, "heavy")
	if err != nil {
		t.Fatal(err)
	}
	jb, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/b"}, OutputDir: "/out/fb", NumReducers: 2,
	}, "light")
	if err != nil {
		t.Fatal(err)
	}
	ra := waitJob(t, ja)
	rb := waitJob(t, jb)
	if ra.Counters.OutputRecords == 0 || rb.Counters.OutputRecords == 0 {
		t.Fatal("a tenant produced no output")
	}
	if ra.Counters.OutputRecords != rb.Counters.OutputRecords {
		t.Errorf("identical corpora produced %d vs %d output records",
			ra.Counters.OutputRecords, rb.Counters.OutputRecords)
	}
}

// TestProxyStore exercises the out-of-process storage path: create,
// stat, ranged reads, rename and delete through the master's DFS
// proxy endpoints.
func TestProxyStore(t *testing.T) {
	c := testCluster(3, 64)
	m := startMaster(t, c)
	ps := NewProxyStore(context.Background(), m.URL())

	w, err := ps.Create("/px/file", "")
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("0123456789abcdef", 64) // 1 KiB, >1 block
	if _, err := w.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sz, err := ps.Stat("/px/file"); err != nil || sz != int64(len(payload)) {
		t.Fatalf("stat = %d, %v; want %d", sz, err, len(payload))
	}
	f, err := ps.Open("/px/file", "")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 500); err != nil {
		t.Fatal(err)
	}
	if string(buf) != payload[500:600] {
		t.Error("ranged read mismatch")
	}
	if err := ps.Rename("/px/file", "/px/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Stat("/px/file"); !IsNotFound(err) {
		t.Fatalf("stat after rename: %v", err)
	}
	if err := ps.Delete("/px/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Open("/px/moved", ""); !IsNotFound(err) {
		t.Fatalf("open after delete: %v", err)
	}
}

// TestDistributedProxyWorkers runs a full job with workers that reach
// storage only through the master's DFS proxy — the out-of-process
// deployment shape — and checks output equality with a direct run.
func TestDistributedProxyWorkers(t *testing.T) {
	c := testCluster(4, 256)
	if err := writeCorpus(c, "/in/doc", wcCorpus(150)); err != nil {
		t.Fatal(err)
	}
	ref, err := Run(c, Config{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/psp",
		Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
		NumReducers: 2, ShuffleMemory: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := startMaster(t, c)
	for i := 0; i < 2; i++ {
		w, err := StartWorker(WorkerConfig{
			ID:       fmt.Sprintf("pw%d", i),
			Master:   m.URL(),
			Slots:    2, // Store nil → proxy
			Registry: testTemplates(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
	}
	j, err := m.Submit(mrpc.JobSpec{
		Name: "wc", Inputs: []string{"/in/doc"}, OutputDir: "/out/pd",
		NumReducers: 2, ShuffleMemory: 1024,
	}, "bio")
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	want := readParts(t, c, ref.OutputFiles)
	got := readParts(t, c, res.OutputFiles)
	for name, wb := range want {
		if string(got[name]) != string(wb) {
			t.Errorf("%s differs through the proxy store", name)
		}
	}
}

package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mrpc"
	"repro/internal/obs"
)

// Worker is the distributed task runtime: it registers with a master,
// heartbeats for leases and assignments, executes map and reduce
// attempts through a per-attempt taskRuntime, and serves its spill
// files' segments to reducers over HTTP. One worker maps onto one
// TaskTracker of the paper's Hadoop deployment.
type Worker struct {
	cfg    WorkerConfig
	client *mrpc.Client
	store  Store
	srv    *mrpc.Server // shuffle segment server
	beat   time.Duration
	reg    *obs.Registry
	mTasks *obs.CounterVec // lsdf_mr_worker_tasks_total{phase}
	mSegs  *obs.Counter    // segments served
	mHB    *obs.Counter    // heartbeats sent
	mHBErr *obs.Counter    // heartbeats failed
	mDur   *obs.HistogramVec

	// ctx is the worker's lifecycle: cancelled by Close/Kill, it
	// aborts every in-flight RPC so a hung master can't wedge
	// shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	running map[mrpc.AttemptID]*wAttempt
	dead    bool // Kill()ed: no more RPCs of any kind

	stop chan struct{}
	hbWG sync.WaitGroup // heartbeat loop
	atWG sync.WaitGroup // attempt goroutines
}

// WorkerConfig configures a worker.
type WorkerConfig struct {
	ID     string
	Master string // master base URL
	// Store is the worker's storage path; nil binds the master's DFS
	// proxy (the out-of-process deployment).
	Store    Store
	Node     string // datanode identity for locality hints ("" = none)
	Slots    int    // concurrent attempts; default 2
	Registry Registry
	// StepDelay injects a per-record delay into map attempts — the
	// straggler knob for speculation experiments.
	StepDelay time.Duration
	// Obs receives the worker's metrics (tasks run, segments served,
	// heartbeat health, task duration histograms); nil creates a
	// private registry, reachable via Worker.Obs for a debug listener.
	Obs *obs.Registry
}

// wAttempt is one running attempt's worker-side state.
type wAttempt struct {
	id       mrpc.AttemptID
	progress atomic.Uint64 // float64 bits
	cancel   atomic.Bool
}

// StartWorker registers with the master and starts the heartbeat loop
// and shuffle server.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("mapreduce: worker needs an ID")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.Registry == nil {
		cfg.Registry = Builtin()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:     cfg,
		client:  mrpc.NewClient(cfg.Master),
		store:   cfg.Store,
		reg:     reg,
		mTasks:  reg.CounterVec("lsdf_mr_worker_tasks_total", "Task attempts finished by this worker.", "phase"),
		mSegs:   reg.Counter("lsdf_mr_worker_segments_total", "Shuffle segments served."),
		mHB:     reg.Counter("lsdf_mr_worker_heartbeats_total", "Heartbeats sent."),
		mHBErr:  reg.Counter("lsdf_mr_worker_heartbeat_errors_total", "Heartbeats that failed."),
		mDur:    reg.HistogramVec("lsdf_mr_worker_task_ns", "Task attempt duration.", "phase"),
		ctx:     ctx,
		cancel:  cancel,
		running: make(map[mrpc.AttemptID]*wAttempt),
		stop:    make(chan struct{}),
	}
	if w.store == nil {
		w.store = NewProxyStore(ctx, cfg.Master)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+mrpc.PathSegment, w.serveSegment)
	srv, err := mrpc.Serve("", mux)
	if err != nil {
		return nil, err
	}
	w.srv = srv
	if err := w.register(); err != nil {
		srv.Close()
		return nil, err
	}
	w.hbWG.Add(1)
	go w.heartbeatLoop()
	return w, nil
}

func (w *Worker) register() error {
	var rep mrpc.RegisterReply
	err := w.client.Call(w.ctx, mrpc.PathRegister, &mrpc.RegisterRequest{
		Worker: w.cfg.ID,
		Addr:   w.srv.Addr(),
		Node:   w.cfg.Node,
		Slots:  w.cfg.Slots,
	}, &rep)
	if err != nil {
		return fmt.Errorf("mapreduce: worker %s register: %w", w.cfg.ID, err)
	}
	w.beat = time.Duration(rep.HeartbeatMS) * time.Millisecond
	if w.beat <= 0 {
		w.beat = 10 * time.Millisecond
	}
	return nil
}

// Close shuts the worker down gracefully: running attempts are
// cancelled (they clean up their files and go unreported; the master
// re-queues them when the lease lapses or reassigns on re-register).
func (w *Worker) Close() {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	for _, att := range w.running {
		att.cancel.Store(true)
	}
	w.mu.Unlock()
	close(w.stop)
	// Cancel first: attempts are already marked cancelled and report
	// nothing, so aborting their in-flight RPCs only unwedges them.
	w.cancel()
	w.hbWG.Wait()
	w.atWG.Wait()
	w.srv.Close()
}

// Kill simulates abrupt worker death for failure experiments: the
// heartbeat stops mid-lease, the shuffle server drops, and in-flight
// attempts abort without completing or cleaning up — exactly what a
// crashed process leaves behind.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	for _, att := range w.running {
		att.cancel.Store(true)
	}
	w.mu.Unlock()
	close(w.stop)
	w.cancel()
	w.srv.Close()
	w.hbWG.Wait()
}

// hbTimeout bounds one heartbeat RPC: generous multiples of the
// cadence so transient stalls ride through, but never unbounded.
func (w *Worker) hbTimeout() time.Duration {
	d := 4 * w.beat
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Addr returns the worker's shuffle server address.
func (w *Worker) Addr() string { return w.srv.Addr() }

// Obs returns the worker's metrics registry, for mounting on a debug
// listener (lsdf-worker -debug-addr).
func (w *Worker) Obs() *obs.Registry { return w.reg }

func (w *Worker) heartbeatLoop() {
	defer w.hbWG.Done()
	ticker := time.NewTicker(w.beat)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		if w.dead {
			w.mu.Unlock()
			return
		}
		req := &mrpc.HeartbeatRequest{
			Worker: w.cfg.ID,
			Free:   w.cfg.Slots - len(w.running),
		}
		for id, att := range w.running {
			req.Running = append(req.Running, mrpc.Progress{
				ID:       id,
				Fraction: math.Float64frombits(att.progress.Load()),
			})
		}
		w.mu.Unlock()

		hctx, hcancel := context.WithTimeout(w.ctx, w.hbTimeout())
		var rep mrpc.HeartbeatReply
		err := w.client.Call(hctx, mrpc.PathHeartbeat, req, &rep)
		hcancel()
		w.mHB.Inc()
		if err != nil {
			w.mHBErr.Inc()
			if w.ctx.Err() != nil {
				return // cancelled: shutting down
			}
			continue // master unreachable; keep trying until stopped
		}
		if rep.Unknown {
			// Declared dead. Orphan everything and start over; the
			// master has already re-queued our old work.
			w.mu.Lock()
			for _, att := range w.running {
				att.cancel.Store(true)
			}
			w.mu.Unlock()
			_ = w.register()
			continue
		}
		w.mu.Lock()
		for _, id := range rep.Kill {
			if att, ok := w.running[id]; ok {
				att.cancel.Store(true)
			}
		}
		w.mu.Unlock()
		for _, a := range rep.Assign {
			w.launch(a)
		}
	}
}

func (w *Worker) launch(a mrpc.Assignment) {
	att := &wAttempt{id: a.ID}
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.running[a.ID] = att
	w.atWG.Add(1)
	w.mu.Unlock()
	go func() {
		defer w.atWG.Done()
		w.runAttempt(a, att)
		w.mu.Lock()
		delete(w.running, a.ID)
		w.mu.Unlock()
	}()
}

// runAttempt executes one assignment end to end and reports the
// completion. Cancelled attempts clean up and report nothing (the
// master already struck them); rejected completions delete the
// attempt's files, keeping exactly one owner per committed byte.
func (w *Worker) runAttempt(a mrpc.Assignment, att *wAttempt) {
	// When the spec carries a trace ID, record this attempt's spans
	// into a detached trace; they ship home in the completion and the
	// master attaches them to the job's trace ring entry.
	var td *obs.TraceData
	if a.Spec.Trace != "" {
		td = &obs.TraceData{ID: a.Spec.Trace}
	}
	attSpan := obs.StartSpanOn(td, "mr."+a.ID.Phase)
	attSpan.Annotate("%s on %s", a.ID, w.cfg.ID)
	start := time.Now()
	cfg, err := w.cfg.Registry.Resolve(a.Spec)
	req := &mrpc.CompleteRequest{Worker: w.cfg.ID, ID: a.ID}
	var cleanup func()
	if err == nil {
		rt := &taskRuntime{
			store:     w.store,
			cfg:       cfg,
			ctr:       &Counters{},
			shufDir:   a.ShufDir,
			spillSeq:  new(atomic.Int64),
			spillTag:  fmt.Sprintf("%s-a%d-", w.cfg.ID, a.ID.Attempt),
			spillAll:  a.ID.Phase == mrpc.PhaseMap && !a.MapOnly,
			stepDelay: w.cfg.StepDelay,
			progress: func(frac float64) {
				att.progress.Store(math.Float64bits(frac))
			},
			cancelled: func() bool { return att.cancel.Load() },
		}
		if a.ID.Phase == mrpc.PhaseMap {
			cleanup, err = w.runMap(a, rt, req)
		} else {
			cleanup, err = w.runReduce(a, rt, td, req)
		}
	}
	if errors.Is(err, errCancelled) {
		return // killed: files already cleaned, master stopped caring
	}
	if err != nil {
		req.Err = err.Error()
	}
	attSpan.End()
	w.mDur.With(a.ID.Phase).ObserveSince(start)
	w.mTasks.With(a.ID.Phase).Inc()
	req.Spans = td.TakeSpans()
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		return
	}
	var rep mrpc.CompleteReply
	if cerr := w.client.Call(w.ctx, mrpc.PathComplete, req, &rep); cerr != nil {
		if w.ctx.Err() != nil {
			// Shutdown cancelled the report mid-flight: the request may
			// have reached the master and committed these files, and we
			// never saw the verdict. Deleting them now could destroy
			// runs the master just registered — leave them; a crashed
			// process wouldn't have cleaned up either.
			return
		}
		rep.Accepted = false // unreachable master: assume superseded
	}
	if !rep.Accepted && cleanup != nil {
		cleanup()
	}
}

// runMap executes a map attempt. In the shuffle path every run is on
// the store (spillAll) and the completion carries the runs' segment
// geometry; in the map-only path the merged output lands in the
// attempt-scoped OutFile and the spills are dropped locally.
func (w *Worker) runMap(a mrpc.Assignment, rt *taskRuntime, req *mrpc.CompleteRequest) (func(), error) {
	if a.Split == nil {
		return nil, errors.New("mapreduce: map assignment without split")
	}
	out, records, outRecords, err := rt.executeMap(w.cfg.Node, a.ID.Task, fromRef(a.Split))
	if err != nil {
		return nil, err // executeMap discarded its spills
	}
	if a.MapOnly {
		if err := rt.writeMapOutput(a.OutFile, w.cfg.Node, a.ID.Task, out); err != nil {
			rt.discardOutput(out)
			return nil, err
		}
		rt.discardOutput(out)
		req.OutFile = a.OutFile
		req.Counters = taskCounters(rt.ctr, records, outRecords)
		return func() { _ = w.store.Delete(a.OutFile) }, nil
	}
	for _, run := range out.spills {
		ref := mrpc.RunRef{File: run.file, Segs: make([]mrpc.SegRef, len(run.segs))}
		for i, seg := range run.segs {
			ref.Segs[i] = mrpc.SegRef{Off: seg.off, Len: seg.length, Records: seg.records}
		}
		req.Runs = append(req.Runs, ref)
	}
	req.Counters = taskCounters(rt.ctr, records, outRecords)
	return func() { rt.discardOutput(out) }, nil
}

// runReduce executes a reduce attempt: fetch every committed map
// task's segments for the partition (worker shuffle servers first,
// DFS spill files as fallback), k-way merge with the same (task, run)
// tie-breaks as the single-process engine, and stream groups through
// the reducer into the attempt-scoped output file. Map tasks whose
// segments are unreachable on both paths become LostMaps.
func (w *Worker) runReduce(a mrpc.Assignment, rt *taskRuntime, td *obs.TraceData, req *mrpc.CompleteRequest) (func(), error) {
	p := a.ID.Task
	var srcs []mergeSource
	var remoteBytes int64
	fetchSpan := obs.StartSpanOn(td, "mr.shuffle.fetch")
	for _, mo := range a.MapOutputs {
		lost := false
		for ri, run := range mo.Runs {
			if p >= len(run.Segs) {
				continue
			}
			data, remote, err := fetchSegment(w.ctx, w.store, run, p, w.cfg.Node)
			if err != nil {
				lost = true
				break
			}
			if data == nil {
				continue // empty segment
			}
			if remote {
				remoteBytes += int64(len(data))
			}
			srcs = append(srcs, mergeSource{
				s:    newByteCursor(data, run.Segs[p].Records, run.File),
				task: mo.Task,
				run:  ri,
			})
		}
		if lost {
			req.LostMaps = append(req.LostMaps, mo.Task)
		}
	}
	fetchSpan.Annotate("%d sources, %d remote bytes", len(srcs), remoteBytes)
	fetchSpan.End()
	if len(req.LostMaps) > 0 {
		return nil, fmt.Errorf("mapreduce: reduce %d: %d map outputs unreachable", p, len(req.LostMaps))
	}
	rt.ctr.add(&rt.ctr.MergeStreams, int64(len(srcs)))
	m, err := newMerger(srcs)
	if err != nil {
		return nil, err
	}
	out, err := rt.store.Create(a.OutFile, w.cfg.Node)
	if err != nil {
		return nil, err
	}
	lw := &lineWriter{w: out}
	check := func() error {
		if att := rt.cancelled; att != nil && att() {
			return errCancelled
		}
		return lw.fail()
	}
	groups, err := drainGroups(m, rt.cfg.streamingReducer(), lw.emit, check)
	if err == nil {
		err = out.Close()
	}
	if err != nil {
		_ = out.Close()
		_ = rt.store.Delete(a.OutFile)
		if errors.Is(err, errCancelled) {
			return nil, err
		}
		return nil, fmt.Errorf("mapreduce: reduce partition %d: %w", p, err)
	}
	req.OutFile = a.OutFile
	req.Counters = taskCounters(rt.ctr, 0, 0)
	req.Counters.ReduceGroups = groups
	req.Counters.OutputRecords = lw.n
	req.Counters.ShuffleBytes = m.bytes
	req.Counters.RemoteShuffle = remoteBytes
	return func() { _ = w.store.Delete(a.OutFile) }, nil
}

// taskCounters snapshots an attempt's runtime counters as wire deltas.
func taskCounters(c *Counters, records, outRecords int64) mrpc.TaskCounters {
	s := c.snapshot()
	return mrpc.TaskCounters{
		InputRecords:     records,
		MapOutputRecords: outRecords,
		CombineInput:     s.CombineInput,
		CombineOutput:    s.CombineOutput,
		OutputRecords:    s.OutputRecords,
		SpillRuns:        s.SpillRuns,
		SpillBytes:       s.SpillBytes,
		MergeStreams:     s.MergeStreams,
	}
}

// serveSegment streams a byte range of a spill file this worker wrote
// — the network shuffle path. The file is read back through the
// worker's own store, so in-process and proxy deployments serve
// identically.
func (w *Worker) serveSegment(rw http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
	length, _ := strconv.ParseInt(q.Get("len"), 10, 64)
	f, err := w.store.Open(q.Get("file"), w.cfg.Node)
	if err != nil {
		code := http.StatusInternalServerError
		if IsNotFound(err) {
			code = http.StatusNotFound
		}
		mrpc.WriteError(rw, code, "segment", err.Error())
		return
	}
	defer f.Close()
	w.mSegs.Inc()
	rw.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	_, _ = io.Copy(rw, io.NewSectionReader(f, off, length))
}

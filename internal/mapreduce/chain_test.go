package mapreduce

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestMapOnlyJob(t *testing.T) {
	c := testCluster(4, 64)
	if err := writeCorpus(c, "/in/m", []string{"a b", "c d", "e f"}); err != nil {
		t.Fatal(err)
	}
	upper := MapperFunc(func(_ string, v []byte, emit Emit) error {
		emit(strings.ToUpper(string(v)), []byte("x"))
		return nil
	})
	res, err := Run(c, Config{
		Inputs: []string{"/in/m"}, OutputDir: "/out/m",
		Mapper: upper, MapOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ReduceTasks != 0 {
		t.Fatalf("reduce tasks = %d in map-only job", res.Counters.ReduceTasks)
	}
	if res.Counters.OutputRecords != 3 {
		t.Fatalf("output records = %d", res.Counters.OutputRecords)
	}
	// Output files are part-m-*.
	for _, f := range res.OutputFiles {
		if !strings.Contains(f, "part-m-") {
			t.Fatalf("map-only output file %q", f)
		}
	}
	got, err := ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"A B", "C D", "E F"} {
		if len(got[k]) != 1 {
			t.Fatalf("missing %q in %v", k, got)
		}
	}
}

func TestRunChain(t *testing.T) {
	// Stage 1: wordcount. Stage 2: bucket counts into magnitudes
	// (reads stage 1's "word\tcount" lines).
	c := testCluster(4, 128)
	lines := make([]string, 100)
	for i := range lines {
		lines[i] = "frequent frequent rare" // frequent:200, rare:100
	}
	if err := writeCorpus(c, "/in/chain", lines); err != nil {
		t.Fatal(err)
	}
	bucket := MapperFunc(func(_ string, v []byte, emit Emit) error {
		parts := strings.SplitN(string(v), "\t", 2)
		if len(parts) != 2 {
			return nil
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		switch {
		case n >= 150:
			emit("high", []byte("1"))
		default:
			emit("low", []byte("1"))
		}
		return nil
	})
	results, err := RunChain(c, []Config{
		{Name: "wordcount", Inputs: []string{"/in/chain"}, OutputDir: "/chain/1",
			Mapper: wordCountMapper, Reducer: sumReducer},
		{Name: "bucket", OutputDir: "/chain/2",
			Mapper: bucket, Reducer: sumReducer},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	got, err := ReadTextOutput(c, results[1].OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	if got["high"][0] != "1" || got["low"][0] != "1" {
		t.Fatalf("chain output = %v", got)
	}
}

func TestRunChainEmpty(t *testing.T) {
	c := testCluster(2, 128)
	if _, err := RunChain(c, nil); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunChainStageFailure(t *testing.T) {
	c := testCluster(2, 128)
	if err := writeCorpus(c, "/in/cf", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	results, err := RunChain(c, []Config{
		{Name: "ok", Inputs: []string{"/in/cf"}, OutputDir: "/cf/1",
			Mapper: wordCountMapper, Reducer: sumReducer},
		{Name: "bad", OutputDir: "/cf/2",
			Mapper: MapperFunc(func(string, []byte, Emit) error { return boom })},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("partial results = %d, want 1 (first stage)", len(results))
	}
}

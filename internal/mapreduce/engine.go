package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/dfs"
)

// ErrNoNodes is returned when the cluster has no live datanodes.
var ErrNoNodes = errors.New("mapreduce: cluster has no live datanodes")

// kv is one intermediate pair. Pairs preserve emission order within a
// map task, which (together with task-index-ordered merging) makes
// reduce input deterministic regardless of scheduling.
type kv struct {
	key string
	val []byte
}

// byteArena copies emitted values into chunked backing arrays so the
// map hot loop does one allocation per ~64 KiB of output instead of
// one per record. Arenas are per-attempt and never shared across
// goroutines.
type byteArena struct {
	chunk []byte
}

const arenaChunkSize = 64 * 1024

func (a *byteArena) copy(v []byte) []byte {
	n := len(v)
	if n == 0 {
		return nil
	}
	if n > arenaChunkSize/4 {
		// Large values get their own allocation rather than wasting
		// the tail of a chunk.
		return append([]byte(nil), v...)
	}
	if cap(a.chunk)-len(a.chunk) < n {
		a.chunk = make([]byte, 0, arenaChunkSize)
	}
	start := len(a.chunk)
	a.chunk = append(a.chunk, v...)
	return a.chunk[start : start+n : start+n]
}

// attempt is one scheduled execution of a map task.
type attempt struct {
	task        int
	speculative bool
}

type taskState struct {
	committed   bool
	launched    int // attempts started
	running     int
	start       time.Time // most recent attempt start
	specStarted bool
}

type engine struct {
	cluster *dfs.Cluster
	cfg     Config
	splits  []split
	nodes   []string
	ctr     *Counters

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []attempt
	tasks     []taskState
	mapOut    [][][]kv // [task][partition] -> pairs
	done      int
	failed    error
	durations []time.Duration
}

// Run executes a job to completion.
func Run(cluster *dfs.Cluster, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Mapper == nil {
		return nil, errors.New("mapreduce: job needs a Mapper")
	}
	nodes := cluster.DataNodes()
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	splits, err := buildSplits(cluster, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e := &engine{
		cluster: cluster,
		cfg:     cfg,
		splits:  splits,
		nodes:   nodes,
		ctr:     &Counters{},
		tasks:   make([]taskState, len(splits)),
		mapOut:  make([][][]kv, len(splits)),
	}
	e.cond = sync.NewCond(&e.mu)
	for i := range splits {
		e.pending = append(e.pending, attempt{task: i})
	}
	e.ctr.add(&e.ctr.MapTasks, int64(len(splits)))

	if err := e.runMapPhase(); err != nil {
		return nil, err
	}
	var outputs []string
	if cfg.MapOnly {
		outputs, err = e.runMapOnly()
	} else {
		outputs, err = e.runReducePhase()
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Counters:    e.ctr.snapshot(),
		Duration:    time.Since(start),
		OutputFiles: outputs,
	}, nil
}

// runMapPhase drives worker goroutines (SlotsPerNode per node) plus
// the speculation monitor until every task commits or one fails. The
// phase ends as soon as all tasks have committed — it does NOT wait
// for still-running losing attempts (Hadoop kills those; here they
// wake later, find their task committed, and are discarded).
func (e *engine) runMapPhase() error {
	if len(e.splits) == 0 {
		return nil
	}
	for _, node := range e.nodes {
		for s := 0; s < e.cfg.SlotsPerNode; s++ {
			go e.workerLoop(node)
		}
	}
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	if e.cfg.Speculative {
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			e.speculationMonitor(stopMon)
		}()
	}
	e.mu.Lock()
	for e.done < len(e.splits) && e.failed == nil {
		e.cond.Wait()
	}
	err := e.failed
	e.mu.Unlock()
	close(stopMon)
	monWG.Wait()
	return err
}

func (e *engine) workerLoop(node string) {
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && e.done < len(e.splits) && e.failed == nil {
			e.cond.Wait()
		}
		if e.failed != nil || e.done >= len(e.splits) {
			e.mu.Unlock()
			return
		}
		att, ok := e.takeLocked(node)
		if !ok {
			e.mu.Unlock()
			continue
		}
		e.mu.Unlock()
		e.runAttempt(node, att)
	}
}

// takeLocked pops the best pending attempt for node: with locality
// enabled, the first attempt whose split has a replica on node wins;
// otherwise FIFO. Callers hold e.mu.
func (e *engine) takeLocked(node string) (attempt, bool) {
	idx := -1
	if e.cfg.Locality {
		for i, att := range e.pending {
			for _, loc := range e.splits[att.task].locations {
				if loc == node {
					idx = i
					break
				}
			}
			if idx >= 0 {
				break
			}
		}
	}
	local := idx >= 0
	if idx < 0 {
		idx = 0
	}
	att := e.pending[idx]
	e.pending = append(e.pending[:idx], e.pending[idx+1:]...)
	if e.tasks[att.task].committed {
		// A speculative duplicate whose original already finished.
		return attempt{}, false
	}
	st := &e.tasks[att.task]
	st.launched++
	st.running++
	st.start = time.Now()
	if !att.speculative {
		if local {
			e.ctr.add(&e.ctr.LocalTasks, 1)
		} else {
			e.ctr.add(&e.ctr.RemoteTasks, 1)
		}
	}
	return att, true
}

// runAttempt executes one map attempt and commits its output if it is
// the first completion for the task.
func (e *engine) runAttempt(node string, att attempt) {
	if e.cfg.TaskDelay != nil {
		if d := e.cfg.TaskDelay(node, att.task); d > 0 {
			time.Sleep(d)
		}
	}
	started := time.Now()
	parts, records, outRecords, err := e.executeMap(node, e.splits[att.task])

	e.mu.Lock()
	defer e.mu.Unlock()
	st := &e.tasks[att.task]
	st.running--
	if err != nil {
		if st.committed {
			return // a sibling attempt already succeeded
		}
		if st.launched < e.cfg.MaxAttempts {
			e.ctr.add(&e.ctr.Retries, 1)
			e.pending = append(e.pending, attempt{task: att.task})
		} else if e.failed == nil {
			e.failed = fmt.Errorf("mapreduce: task %d failed after %d attempts: %w",
				att.task, st.launched, err)
		}
		e.cond.Broadcast()
		return
	}
	if st.committed {
		return // lost the race; discard
	}
	st.committed = true
	e.mapOut[att.task] = parts
	e.done++
	e.durations = append(e.durations, time.Since(started))
	e.ctr.add(&e.ctr.InputRecords, records)
	e.ctr.add(&e.ctr.MapOutputRecords, outRecords)
	if att.speculative {
		e.ctr.add(&e.ctr.SpecWon, 1)
	}
	e.cond.Broadcast()
}

// executeMap runs the mapper over one split and returns per-partition
// output (combined if a combiner is configured).
func (e *engine) executeMap(node string, s split) (parts [][]kv, records, outRecords int64, err error) {
	r := e.cfg.NumReducers
	parts = make([][]kv, r)
	var arena byteArena
	emit := func(key string, value []byte) {
		p := partition(key, r)
		parts[p] = append(parts[p], kv{key: key, val: arena.copy(value)})
		outRecords++
	}
	err = readRecords(e.cluster, s, e.cfg.Format, node, func(key string, value []byte) error {
		records++
		return e.cfg.Mapper.Map(key, value, emit)
	})
	if err != nil {
		return nil, 0, 0, err
	}
	// Map-side sort (stable: preserves emission order within a key).
	for p := range parts {
		sort.SliceStable(parts[p], func(i, j int) bool { return parts[p][i].key < parts[p][j].key })
	}
	if e.cfg.Combiner != nil {
		for p := range parts {
			combined, cerr := e.combine(parts[p])
			if cerr != nil {
				return nil, 0, 0, cerr
			}
			parts[p] = combined
		}
	}
	return parts, records, outRecords, nil
}

// combine folds a sorted run of pairs through the combiner.
func (e *engine) combine(sorted []kv) ([]kv, error) {
	var out []kv
	var arena byteArena
	emit := func(key string, value []byte) {
		out = append(out, kv{key: key, val: arena.copy(value)})
	}
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].key == sorted[i].key {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, p := range sorted[i:j] {
			vals = append(vals, p.val)
		}
		e.ctr.add(&e.ctr.CombineInput, int64(j-i))
		if err := e.cfg.Combiner.Reduce(sorted[i].key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	e.ctr.add(&e.ctr.CombineOutput, int64(len(out)))
	// Combiner output for a sorted input is sorted as long as the
	// combiner emits the group key; enforce for safety.
	sort.SliceStable(out, func(a, b int) bool { return out[a].key < out[b].key })
	return out, nil
}

// speculationMonitor launches duplicates for tasks running much longer
// than the median completed task once no fresh work is pending —
// Hadoop's classic straggler mitigation.
func (e *engine) speculationMonitor(stop <-chan struct{}) {
	ticker := time.NewTicker(e.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		if e.done >= len(e.splits) || e.failed != nil {
			e.mu.Unlock()
			return
		}
		if len(e.pending) > 0 || len(e.durations) == 0 {
			e.mu.Unlock()
			continue
		}
		med := medianDuration(e.durations)
		threshold := time.Duration(float64(med) * e.cfg.StragglerFactor)
		launched := false
		for t := range e.tasks {
			st := &e.tasks[t]
			if st.committed || st.running == 0 || st.specStarted {
				continue
			}
			if time.Since(st.start) > threshold {
				st.specStarted = true
				e.pending = append(e.pending, attempt{task: t, speculative: true})
				e.ctr.add(&e.ctr.SpecLaunched, 1)
				launched = true
			}
		}
		if launched {
			e.cond.Broadcast()
		}
		e.mu.Unlock()
	}
}

func medianDuration(ds []time.Duration) time.Duration {
	cp := make([]time.Duration, len(ds))
	copy(cp, ds)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

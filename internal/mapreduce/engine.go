package mapreduce

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
)

// ErrNoNodes is returned when the cluster has no live datanodes.
var ErrNoNodes = errors.New("mapreduce: cluster has no live datanodes")

// kv is one intermediate pair. Pairs preserve emission order within a
// map task, which (together with task-index-ordered merging) makes
// reduce input deterministic regardless of scheduling.
type kv struct {
	key string
	val []byte
}

// byteArena copies emitted values into chunked backing arrays so the
// map hot loop does one allocation per ~64 KiB of output instead of
// one per record. Arenas are per-attempt and never shared across
// goroutines.
type byteArena struct {
	chunk []byte
}

const arenaChunkSize = 64 * 1024

// alloc returns an n-byte slice carved from the current chunk. A
// chunk is only ever appended to, never rewritten, so every returned
// slice stays valid for as long as its holder keeps it; dropped
// chunks go to the GC wholesale.
func (a *byteArena) alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	if n > arenaChunkSize/4 {
		// Large values get their own allocation rather than wasting
		// the tail of a chunk.
		return make([]byte, n)
	}
	if cap(a.chunk)-len(a.chunk) < n {
		a.chunk = make([]byte, 0, arenaChunkSize)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[:start+n]
	return a.chunk[start : start+n : start+n]
}

func (a *byteArena) copy(v []byte) []byte {
	buf := a.alloc(len(v))
	copy(buf, v)
	return buf
}

// attempt is one scheduled execution of a map task.
type attempt struct {
	task        int
	speculative bool
}

type taskState struct {
	committed   bool
	launched    int // attempts started
	running     int
	start       time.Time // most recent attempt start
	specStarted bool
}

type engine struct {
	cluster *dfs.Cluster
	cfg     Config
	splits  []split
	nodes   []string
	ctr     *Counters
	rt      *taskRuntime // shared task-execution machinery

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []attempt
	tasks     []taskState
	mapOut    []*taskOutput // committed per-task intermediate output
	done      int
	failed    error
	durations []time.Duration
}

// Run executes a job to completion.
func Run(cluster *dfs.Cluster, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Mapper == nil {
		return nil, errors.New("mapreduce: job needs a Mapper")
	}
	if cfg.Reducer != nil && cfg.StreamReducer != nil {
		return nil, errors.New("mapreduce: set either Reducer or StreamReducer, not both")
	}
	nodes := cluster.DataNodes()
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	splits, err := buildSplits(cluster, cfg.Inputs)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e := &engine{
		cluster: cluster,
		cfg:     cfg,
		splits:  splits,
		nodes:   nodes,
		ctr:     &Counters{},
		tasks:   make([]taskState, len(splits)),
		mapOut:  make([]*taskOutput, len(splits)),
	}
	e.rt = &taskRuntime{
		store:    NewDFSStore(cluster),
		cfg:      cfg,
		ctr:      e.ctr,
		shufDir:  fmt.Sprintf("%s/_shuffle-%d", trimDir(cfg.OutputDir), shuffleEpoch.Add(1)),
		spillSeq: new(atomic.Int64),
	}
	e.cond = sync.NewCond(&e.mu)
	for i := range splits {
		e.pending = append(e.pending, attempt{task: i})
	}
	e.ctr.add(&e.ctr.MapTasks, int64(len(splits)))
	defer e.cleanupShuffle()

	if err := e.runMapPhase(); err != nil {
		return nil, err
	}
	var outputs []string
	if cfg.MapOnly {
		outputs, err = e.runMapOnly()
	} else {
		outputs, err = e.runReducePhase()
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Counters:    e.ctr.snapshot(),
		Duration:    time.Since(start),
		OutputFiles: outputs,
	}, nil
}

// runMapPhase drives worker goroutines (SlotsPerNode per node) plus
// the speculation monitor until every task commits or one fails. The
// phase ends as soon as all tasks have committed — it does NOT wait
// for still-running losing attempts (Hadoop kills those; here they
// wake later, find their task committed, and are discarded).
func (e *engine) runMapPhase() error {
	if len(e.splits) == 0 {
		return nil
	}
	for _, node := range e.nodes {
		for s := 0; s < e.cfg.SlotsPerNode; s++ {
			go e.workerLoop(node)
		}
	}
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	if e.cfg.Speculative {
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			e.speculationMonitor(stopMon)
		}()
	}
	e.mu.Lock()
	for e.done < len(e.splits) && e.failed == nil {
		e.cond.Wait()
	}
	err := e.failed
	e.mu.Unlock()
	close(stopMon)
	monWG.Wait()
	return err
}

// maxLocalitySkips bounds delay scheduling: a worker with no local
// pending attempt yields this many times — letting a replica holder's
// worker grab the task — before settling for a remote one (Zaharia et
// al.'s delay scheduling, which 2011-era Hadoop used to keep map
// tasks data-local). The bound guarantees progress: after the skips a
// worker always takes FIFO.
const maxLocalitySkips = 3

func (e *engine) workerLoop(node string) {
	skips := 0
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && e.done < len(e.splits) && e.failed == nil {
			e.cond.Wait()
		}
		if e.failed != nil || e.done >= len(e.splits) {
			e.mu.Unlock()
			return
		}
		att, ok := e.takeLocked(node, skips)
		e.mu.Unlock()
		if !ok {
			skips++
			runtime.Gosched() // let a local worker in; bounded by maxLocalitySkips
			continue
		}
		skips = 0
		e.runAttempt(node, att)
	}
}

// takeLocked pops the best pending attempt for node: with locality
// enabled, the first attempt whose split has a replica on node wins;
// with none and skip budget left it declines (delay scheduling);
// otherwise FIFO. Speculative duplicates of already-committed tasks
// are purged first, so a decline always means "yielding to a local
// worker" and never burns the caller's skip budget on dead entries.
// Callers hold e.mu.
func (e *engine) takeLocked(node string, skips int) (attempt, bool) {
	keep := e.pending[:0]
	for _, att := range e.pending {
		if !e.tasks[att.task].committed {
			keep = append(keep, att)
		}
	}
	e.pending = keep
	if len(e.pending) == 0 {
		return attempt{}, false
	}
	idx := -1
	if e.cfg.Locality {
		for i, att := range e.pending {
			for _, loc := range e.splits[att.task].locations {
				if loc == node {
					idx = i
					break
				}
			}
			if idx >= 0 {
				break
			}
		}
		if idx < 0 && skips < maxLocalitySkips {
			return attempt{}, false
		}
	}
	local := idx >= 0
	if idx < 0 {
		idx = 0
	}
	att := e.pending[idx]
	e.pending = append(e.pending[:idx], e.pending[idx+1:]...)
	st := &e.tasks[att.task]
	st.launched++
	st.running++
	st.start = time.Now()
	if !att.speculative {
		if local {
			e.ctr.add(&e.ctr.LocalTasks, 1)
		} else {
			e.ctr.add(&e.ctr.RemoteTasks, 1)
		}
	}
	return att, true
}

// runAttempt executes one map attempt and commits its output if it is
// the first completion for the task. Attempts that lose (a sibling
// committed first) or fail delete any spill files they wrote.
func (e *engine) runAttempt(node string, att attempt) {
	if e.cfg.TaskDelay != nil {
		if d := e.cfg.TaskDelay(node, att.task); d > 0 {
			time.Sleep(d)
		}
	}
	started := time.Now()
	out, records, outRecords, err := e.rt.executeMap(node, att.task, e.splits[att.task])

	e.mu.Lock()
	st := &e.tasks[att.task]
	st.running--
	if err != nil {
		if st.committed {
			e.mu.Unlock()
			return // a sibling attempt already succeeded
		}
		if st.launched < e.cfg.MaxAttempts {
			e.ctr.add(&e.ctr.Retries, 1)
			e.pending = append(e.pending, attempt{task: att.task})
		} else if e.failed == nil {
			e.failed = fmt.Errorf("mapreduce: task %d failed after %d attempts: %w",
				att.task, st.launched, err)
		}
		e.cond.Broadcast()
		e.mu.Unlock()
		return
	}
	if st.committed {
		e.mu.Unlock()
		e.rt.discardOutput(out) // lost the race; drop its spills
		return
	}
	if e.failed != nil {
		// The job already failed (another task exhausted its attempts);
		// Run may have returned and cleaned up, so committing now would
		// leak this attempt's spill files past cleanupShuffle.
		e.mu.Unlock()
		e.rt.discardOutput(out)
		return
	}
	st.committed = true
	e.mapOut[att.task] = out
	e.done++
	e.durations = append(e.durations, time.Since(started))
	e.ctr.add(&e.ctr.InputRecords, records)
	e.ctr.add(&e.ctr.MapOutputRecords, outRecords)
	if att.speculative {
		e.ctr.add(&e.ctr.SpecWon, 1)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// speculationMonitor launches duplicates for tasks running much longer
// than the median completed task once no fresh work is pending —
// Hadoop's classic straggler mitigation.
func (e *engine) speculationMonitor(stop <-chan struct{}) {
	ticker := time.NewTicker(e.cfg.MonitorInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		e.mu.Lock()
		if e.done >= len(e.splits) || e.failed != nil {
			e.mu.Unlock()
			return
		}
		if len(e.pending) > 0 || len(e.durations) == 0 {
			e.mu.Unlock()
			continue
		}
		med := medianDuration(e.durations)
		threshold := time.Duration(float64(med) * e.cfg.StragglerFactor)
		launched := false
		for t := range e.tasks {
			st := &e.tasks[t]
			if st.committed || st.running == 0 || st.specStarted {
				continue
			}
			if time.Since(st.start) > threshold {
				st.specStarted = true
				e.pending = append(e.pending, attempt{task: t, speculative: true})
				e.ctr.add(&e.ctr.SpecLaunched, 1)
				launched = true
			}
		}
		if launched {
			e.cond.Broadcast()
		}
		e.mu.Unlock()
	}
}

func medianDuration(ds []time.Duration) time.Duration {
	cp := make([]time.Duration, len(ds))
	copy(cp, ds)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[len(cp)/2]
}

package mapreduce

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"time"

	"repro/internal/dfs"
	"repro/internal/mrpc"
)

// Store is the storage surface a task runtime needs: open-for-read
// with random access, create-stream, delete, and rename-to-commit.
// In-process workers bind it straight to the *dfs.Cluster; a worker
// in another process binds it to the master's DFS proxy, so task
// code never knows which side of the network its blocks live on.
type Store interface {
	Open(name, hint string) (File, error)
	Create(name, hint string) (io.WriteCloser, error)
	Delete(name string) error
	Rename(oldName, newName string) error
	Stat(name string) (size int64, err error)
}

// File is a readable handle with random access, the subset of
// dfs.FileReader the merge cursors and record readers use.
type File interface {
	io.ReadCloser
	io.ReaderAt
	io.Seeker
}

// dfsStore adapts *dfs.Cluster to Store.
type dfsStore struct{ c *dfs.Cluster }

// NewDFSStore wraps a cluster as a task-runtime Store.
func NewDFSStore(c *dfs.Cluster) Store { return dfsStore{c} }

func (s dfsStore) Open(name, hint string) (File, error) { return s.c.Open(name, hint) }
func (s dfsStore) Create(name, hint string) (io.WriteCloser, error) {
	return s.c.Create(name, hint)
}
func (s dfsStore) Delete(name string) error             { return s.c.Delete(name) }
func (s dfsStore) Rename(oldName, newName string) error { return s.c.Rename(oldName, newName) }
func (s dfsStore) Stat(name string) (int64, error) {
	info, err := s.c.Stat(name)
	if err != nil {
		return 0, err
	}
	return int64(info.Size), nil
}

// IsNotFound reports whether err means the file does not exist, on
// either side of the proxy boundary.
func IsNotFound(err error) bool {
	return errors.Is(err, dfs.ErrNotFound) || errors.Is(err, mrpc.ErrNotFound)
}

// proxyStore reaches the master's DFS through its /dfsproxy/v1
// endpoints — the storage path for out-of-process lsdf-worker
// runtimes. Reads are ranged GETs; the bufio layers above (record
// readers, merge cursors) keep the request count per task small.
// Every op derives from the worker's lifecycle context, so shutdown
// aborts in-flight proxy I/O; ranged reads additionally carry a
// per-request deadline so a hung master can't wedge a task forever.
type proxyStore struct {
	c   *mrpc.Client
	ctx context.Context
}

// proxyReadTimeout bounds one ranged proxy read or segment fetch —
// the per-request cap the old client-wide 30s timeout provided.
const proxyReadTimeout = 30 * time.Second

// NewProxyStore returns a Store served by the DFS proxy at the
// master base URL. ctx scopes every call the store makes; cancel it
// to abort in-flight proxy I/O.
func NewProxyStore(ctx context.Context, masterURL string) Store {
	if ctx == nil {
		ctx = context.Background()
	}
	return proxyStore{c: mrpc.NewClient(masterURL), ctx: ctx}
}

func (s proxyStore) Stat(name string) (int64, error) {
	var rep mrpc.StatReply
	if err := s.c.Call(s.ctx, mrpc.PathProxyStat, struct {
		Name string `json:"name"`
	}{name}, &rep); err != nil {
		return 0, err
	}
	return rep.Size, nil
}

func (s proxyStore) Open(name, hint string) (File, error) {
	size, err := s.Stat(name)
	if err != nil {
		return nil, err
	}
	return &proxyFile{s: s, name: name, hint: hint, size: size}, nil
}

func (s proxyStore) Create(name, hint string) (io.WriteCloser, error) {
	pr, pw := io.Pipe()
	pf := &proxyWriter{pw: pw, done: make(chan error, 1)}
	go func() {
		q := url.Values{"name": {name}, "hint": {hint}}
		// Cancel-only: the upload runs as long as the data does.
		err := s.c.Put(s.ctx, mrpc.PathProxyCreate+"?"+q.Encode(), pr)
		_ = pr.CloseWithError(err)
		pf.done <- err
	}()
	return pf, nil
}

func (s proxyStore) Delete(name string) error {
	return s.c.Call(s.ctx, mrpc.PathProxyDelete, struct {
		Name string `json:"name"`
	}{name}, nil)
}

func (s proxyStore) Rename(oldName, newName string) error {
	return s.c.Call(s.ctx, mrpc.PathProxyRename, struct {
		Old string `json:"old"`
		New string `json:"new"`
	}{oldName, newName}, nil)
}

// proxyWriter streams a create through a pipe; Close waits for the
// proxy's verdict so acknowledged writes are really on the DFS.
type proxyWriter struct {
	pw   *io.PipeWriter
	done chan error
}

func (w *proxyWriter) Write(p []byte) (int, error) { return w.pw.Write(p) }
func (w *proxyWriter) Close() error {
	_ = w.pw.Close()
	return <-w.done
}

// proxyFile satisfies File over ranged proxy reads.
type proxyFile struct {
	s    proxyStore
	name string
	hint string
	size int64
	pos  int64
}

func (f *proxyFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= f.size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > f.size {
		n = f.size - off
	}
	q := url.Values{
		"name": {f.name},
		"hint": {f.hint},
		"off":  {strconv.FormatInt(off, 10)},
		"len":  {strconv.FormatInt(n, 10)},
	}
	ctx, cancel := context.WithTimeout(f.s.ctx, proxyReadTimeout)
	defer cancel()
	body, err := f.s.c.Get(ctx, mrpc.PathProxyRead+"?"+q.Encode())
	if err != nil {
		return 0, err
	}
	defer body.Close()
	got, err := io.ReadFull(body, p[:n])
	if err != nil {
		return got, err
	}
	if int64(got) < int64(len(p)) {
		return got, io.EOF
	}
	return got, nil
}

func (f *proxyFile) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

func (f *proxyFile) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		f.pos = offset
	case io.SeekCurrent:
		f.pos += offset
	case io.SeekEnd:
		f.pos = f.size + offset
	default:
		return 0, fmt.Errorf("mapreduce: bad whence %d", whence)
	}
	if f.pos < 0 {
		return 0, fmt.Errorf("mapreduce: negative seek")
	}
	return f.pos, nil
}

func (f *proxyFile) Close() error { return nil }

// fetchSegment reads one spill segment, preferring the shuffle server
// of the worker that wrote the run and falling back to the store when
// that worker is unreachable — the network shuffle with DFS as the
// durable second copy. remote reports whether bytes came over HTTP.
func fetchSegment(ctx context.Context, store Store, run mrpc.RunRef, p int, hint string) (data []byte, remote bool, err error) {
	seg := run.Segs[p]
	if seg.Records == 0 {
		return nil, false, nil
	}
	if run.Addr != "" {
		if data, err = fetchRemoteSegment(ctx, run, seg); err == nil {
			return data, true, nil
		}
		// Fall through: the serving worker is gone or refused; the
		// spill file itself may still be readable from the DFS.
	}
	f, err := store.Open(run.File, hint)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	data = make([]byte, seg.Len)
	if _, err := f.ReadAt(data, seg.Off); err != nil && err != io.EOF {
		return nil, false, err
	}
	return data, false, nil
}

func fetchRemoteSegment(ctx context.Context, run mrpc.RunRef, seg mrpc.SegRef) ([]byte, error) {
	c := mrpc.NewClient("http://" + run.Addr)
	q := url.Values{
		"file": {run.File},
		"off":  {strconv.FormatInt(seg.Off, 10)},
		"len":  {strconv.FormatInt(seg.Len, 10)},
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, proxyReadTimeout)
	defer cancel()
	body, err := c.Get(ctx, mrpc.PathSegment+"?"+q.Encode())
	if err != nil {
		return nil, err
	}
	defer body.Close()
	data := make([]byte, seg.Len)
	if _, err := io.ReadFull(body, data); err != nil {
		return nil, err
	}
	return data, nil
}

// newByteCursor streams a fetched segment's records — the remote
// twin of openSpillCursor.
func newByteCursor(data []byte, records int, file string) *spillCursor {
	return &spillCursor{
		br:   bufio.NewReader(bytes.NewReader(data)),
		file: file,
		left: records,
	}
}

package mapreduce

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
)

// Map-side spilling: when a map task's accumulated intermediate pairs
// reach Config.ShuffleMemory, the task sorts (and combines) what it
// holds and writes the run as one segment file into the DFS, then
// starts a fresh run. A spill file holds every partition's segment
// back to back; each segment is a sorted sequence of length-prefixed
// records:
//
//	uvarint keyLen | uvarint valLen | key bytes | value bytes
//
// Per-partition geometry (offset, length, record count) is kept in
// the engine's spillRun index rather than encoded in the file — the
// engine that wrote a run is the one that merges it, so the index
// never needs to survive a process.

// kvOverhead is the accounting cost charged per buffered pair on top
// of its key and value bytes: the string and slice headers plus sort
// bookkeeping. It keeps tiny-record jobs honest about their footprint.
const kvOverhead = 48

// spillReadBuf is each merge cursor's streaming read buffer. Reduce
// merge memory is O(streams × spillReadBuf + current group).
const spillReadBuf = 32 * 1024

// shuffleEpoch disambiguates the spill directories of engines that
// share an OutputDir across a process's lifetime (reruns into the
// same directory, back-to-back benchmark iterations).
var shuffleEpoch atomic.Int64

// spillSeg locates one partition's segment inside a spill file.
type spillSeg struct {
	off     int64
	length  int64
	records int
}

// spillRun is one sorted run on the DFS: the file plus each
// partition's segment geometry.
type spillRun struct {
	file string
	segs []spillSeg
}

// taskOutput is a committed map task's intermediate output: spilled
// runs in spill order followed by the final in-memory run. Merge
// order within a task is (run index, record index), which equals
// emission order split across runs — what makes spilled and
// in-memory jobs byte-identical.
type taskOutput struct {
	mem    [][]kv // final run, per partition; sorted (and combined)
	spills []*spillRun
}

// writeSpill sorts nothing — parts must already be sorted/combined —
// and streams one run into a new DFS file via the pooled block
// writer, returning the run's segment index.
func (rt *taskRuntime) writeSpill(node string, task int, parts [][]kv) (*spillRun, error) {
	seq := rt.spillSeq.Add(1)
	name := fmt.Sprintf("%s/spill-%s%05d-%06d", rt.shufDir, rt.spillTag, task, seq)
	w, err := rt.store.Create(name, node)
	if err != nil {
		return nil, err
	}
	run := &spillRun{file: name, segs: make([]spillSeg, len(parts))}
	var scratch []byte
	var off int64
	for p, pairs := range parts {
		start := off
		for _, pr := range pairs {
			scratch = binary.AppendUvarint(scratch[:0], uint64(len(pr.key)))
			scratch = binary.AppendUvarint(scratch, uint64(len(pr.val)))
			scratch = append(scratch, pr.key...)
			if _, err = w.Write(scratch); err == nil {
				_, err = w.Write(pr.val)
			}
			if err != nil {
				_ = w.Close()
				_ = rt.store.Delete(name)
				return nil, fmt.Errorf("mapreduce: spill %s: %w", name, err)
			}
			off += int64(len(scratch) + len(pr.val))
		}
		run.segs[p] = spillSeg{off: start, length: off - start, records: len(pairs)}
	}
	if err := w.Close(); err != nil {
		_ = rt.store.Delete(name)
		return nil, fmt.Errorf("mapreduce: spill %s: %w", name, err)
	}
	rt.ctr.add(&rt.ctr.SpillRuns, 1)
	rt.ctr.add(&rt.ctr.SpillBytes, off)
	return run, nil
}

// discardOutput deletes an uncommitted attempt's spill files — losing
// speculative attempts and failed attempts clean up after themselves.
func (rt *taskRuntime) discardOutput(out *taskOutput) {
	if out == nil {
		return
	}
	for _, run := range out.spills {
		_ = rt.store.Delete(run.file)
	}
}

// cleanupShuffle deletes every committed task's spill files once the
// job is over (success or failure). It holds e.mu because straggler
// attempts of a failed job may still be finishing: they observe
// e.failed under the same lock and discard their own output instead
// of committing, so every spill file has exactly one owner.
func (e *engine) cleanupShuffle() {
	if e.rt.spillSeq.Load() == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, out := range e.mapOut {
		e.rt.discardOutput(out)
	}
}

// spillCursor streams one partition's segment of one spill run in
// sorted order. Decoded values are allocated from a chunked arena, so
// slices handed to the merge stay valid after the cursor advances —
// the contract Values.Next exposes to reducers.
type spillCursor struct {
	r      File // nil for in-memory (fetched) segments
	br     *bufio.Reader
	file   string
	left   int
	arena  byteArena
	keyBuf []byte
}

// openSpillCursor positions a streaming reader over run's segment for
// partition p. Returns nil for an empty segment.
func openSpillCursor(store Store, run *spillRun, p int, node string) (*spillCursor, error) {
	seg := run.segs[p]
	if seg.records == 0 {
		return nil, nil
	}
	r, err := store.Open(run.file, node)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: open spill %s: %w", run.file, err)
	}
	sec := io.NewSectionReader(r, seg.off, seg.length)
	// Small segments get right-sized buffers: a merge over thousands
	// of tiny runs should not cost spillReadBuf each.
	sz := spillReadBuf
	if seg.length < int64(sz) {
		sz = int(seg.length)
	}
	return &spillCursor{
		r:    r,
		br:   bufio.NewReaderSize(sec, sz),
		file: run.file,
		left: seg.records,
	}, nil
}

func (c *spillCursor) next() (string, []byte, bool, error) {
	if c.left == 0 {
		return "", nil, false, nil
	}
	kl, err := binary.ReadUvarint(c.br)
	if err != nil {
		return "", nil, false, c.corrupt(err)
	}
	vl, err := binary.ReadUvarint(c.br)
	if err != nil {
		return "", nil, false, c.corrupt(err)
	}
	if cap(c.keyBuf) < int(kl) {
		c.keyBuf = make([]byte, kl)
	}
	kb := c.keyBuf[:kl]
	if _, err := io.ReadFull(c.br, kb); err != nil {
		return "", nil, false, c.corrupt(err)
	}
	val := c.arena.alloc(int(vl))
	if _, err := io.ReadFull(c.br, val); err != nil {
		return "", nil, false, c.corrupt(err)
	}
	c.left--
	return string(kb), val, true, nil
}

func (c *spillCursor) corrupt(err error) error {
	return fmt.Errorf("mapreduce: spill segment %s: %w", c.file, err)
}

func (c *spillCursor) close() {
	if c.r != nil {
		_ = c.r.Close()
	}
}

package mapreduce

import "container/heap"

// The shuffle merge: every committed map task contributes its runs
// for one partition — spilled segments streamed from the DFS plus the
// final in-memory run — and a k-way heap merge interleaves them into
// one key-ordered record stream. Ties on the key break by (task, run)
// sequence, which makes the merged value order per key exactly
// (map task index, emission order): the same order the pure in-memory
// shuffle produces by concatenating tasks in index order and stable
// sorting, so spilled and in-memory jobs emit identical bytes.

// kvStream yields one run's records in sorted order. next reports
// ok=false at end of run; returned slices stay valid after the next
// call (memory runs point into task arenas, spill cursors decode into
// chunked arenas).
type kvStream interface {
	next() (key string, val []byte, ok bool, err error)
}

// memStream cursors over an in-memory run.
type memStream struct {
	pairs []kv
	i     int
}

func (s *memStream) next() (string, []byte, bool, error) {
	if s.i >= len(s.pairs) {
		return "", nil, false, nil
	}
	p := s.pairs[s.i]
	s.i++
	return p.key, p.val, true, nil
}

// mergeSource is one run stream plus its deterministic tie-break
// position: the owning map task's index and the run's index within
// that task (spills in spill order, the in-memory run last).
type mergeSource struct {
	s         kvStream
	task, run int
}

// mergeItem is a heap entry: the head record of one run stream.
type mergeItem struct {
	key       string
	val       []byte
	src       kvStream
	task, run int
}

// merger is the k-way merge heap. It is driven single-goroutine by
// one reduce (or map-only) task.
type merger struct {
	items []*mergeItem
	bytes int64 // key+value bytes popped; the task's shuffle volume
}

var _ heap.Interface = (*merger)(nil)

// Len implements heap.Interface.
func (m *merger) Len() int { return len(m.items) }

// Less implements heap.Interface: key order, ties by (task, run).
func (m *merger) Less(i, j int) bool {
	a, b := m.items[i], m.items[j]
	if a.key != b.key {
		return a.key < b.key
	}
	if a.task != b.task {
		return a.task < b.task
	}
	return a.run < b.run
}

// Swap implements heap.Interface.
func (m *merger) Swap(i, j int) { m.items[i], m.items[j] = m.items[j], m.items[i] }

// Push implements heap.Interface.
func (m *merger) Push(x any) { m.items = append(m.items, x.(*mergeItem)) }

// Pop implements heap.Interface.
func (m *merger) Pop() any {
	old := m.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	m.items = old[:n-1]
	return it
}

// newMerger primes the heap with each stream's head record. Streams
// that error during priming abort the merge.
func newMerger(srcs []mergeSource) (*merger, error) {
	m := &merger{}
	for _, sc := range srcs {
		k, v, ok, err := sc.s.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		m.items = append(m.items, &mergeItem{key: k, val: v, src: sc.s, task: sc.task, run: sc.run})
	}
	heap.Init(m)
	return m, nil
}

// peek returns the smallest head record without consuming it.
func (m *merger) peek() (*mergeItem, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	return m.items[0], true
}

// pop consumes the smallest record and refills its stream's heap slot.
func (m *merger) pop() (string, []byte, error) {
	it := m.items[0]
	key, val := it.key, it.val
	m.bytes += int64(len(key) + len(val))
	k, v, ok, err := it.src.next()
	if err != nil {
		return "", nil, err
	}
	if ok {
		it.key, it.val = k, v
		heap.Fix(m, 0)
	} else {
		heap.Pop(m)
	}
	return key, val, nil
}

// Values streams one key's values to a StreamReducer in merge order.
// Slices returned by Next remain valid after subsequent calls, so a
// reducer may retain them (the Reducer adapter does). After the
// reducer returns, the engine drains any unconsumed values and checks
// Err, so reducers may stop early.
type Values struct {
	m   *merger
	key string
	err error
}

// Next returns the group's next value, or ok=false when the group
// (or the stream, on error — check Err) is exhausted.
func (v *Values) Next() ([]byte, bool) {
	if v.err != nil {
		return nil, false
	}
	it, ok := v.m.peek()
	if !ok || it.key != v.key {
		return nil, false
	}
	_, val, err := v.m.pop()
	if err != nil {
		v.err = err
		return nil, false
	}
	return val, true
}

// Err reports a merge read failure (a spill segment that could not be
// streamed). A reducer that sees Next return false should surface
// Err; the engine checks it regardless.
func (v *Values) Err() error { return v.err }

// drain consumes the rest of the group so the merge can advance to
// the next key even when the reducer stopped early.
func (v *Values) drain() {
	for {
		if _, ok := v.Next(); !ok {
			return
		}
	}
}

// streamAdapter runs a [][]byte Reducer on the streaming merge by
// collecting the group first — the compatibility path; memory for the
// group is O(group) where a true StreamReducer is O(1).
type streamAdapter struct{ r Reducer }

func (a streamAdapter) ReduceStream(key string, values *Values, emit Emit) error {
	var vals [][]byte
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		vals = append(vals, v)
	}
	if err := values.Err(); err != nil {
		return err
	}
	return a.r.Reduce(key, vals, emit)
}

// identityStreamReducer passes every value through under its key —
// the nil-Reducer default, now streaming.
type identityStreamReducer struct{}

func (identityStreamReducer) ReduceStream(key string, values *Values, emit Emit) error {
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		emit(key, v)
	}
	return values.Err()
}

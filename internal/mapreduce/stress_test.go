package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Concurrent MapReduce jobs sharing one cluster while scrub and
// balancer churn run against it — the mapreduce mirror of the DFS
// 16x4 stress test. Every job spills (tiny ShuffleMemory), so map
// spill writers, merge readers and reduce output writers all overlap
// with admin mutation of block placement. Run under -race in CI.
func TestConcurrentJobsWithChurnStress(t *testing.T) {
	c := testCluster(8, 2048)
	const jobs = 4
	corpora := make([][]string, jobs)
	expected := make([]map[string]int, jobs)
	for j := range corpora {
		lines := make([]string, 120)
		want := map[string]int{}
		for i := range lines {
			w1 := fmt.Sprintf("j%dw%d", j, i%11)
			w2 := fmt.Sprintf("j%dw%d", j, i%5)
			lines[i] = w1 + " " + w2
			want[w1]++
			want[w2]++
		}
		corpora[j] = lines
		expected[j] = want
		if err := writeCorpus(c, fmt.Sprintf("/stress/in/%d", j), lines); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, jobs+1)
	// Admin churn: scrub passes, balancer moves, and a rolling
	// kill/revive cycle. Replication is 3 and one node is down at a
	// time, so every block keeps live replicas; spill readers holding
	// stale location snapshots must refresh and carry on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			c.Scrub()
			c.Balance(0.1)
			victim := fmt.Sprintf("dn%02d", i%8)
			if _, err := c.KillNode(victim); err != nil {
				errc <- fmt.Errorf("admin kill: %w", err)
				return
			}
			if err := c.ReviveNode(victim); err != nil {
				errc <- fmt.Errorf("admin revive: %w", err)
				return
			}
		}
	}()
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			res, err := Run(c, Config{
				Inputs:    []string{fmt.Sprintf("/stress/in/%d", j)},
				OutputDir: fmt.Sprintf("/stress/out/%d", j),
				Mapper:    wordCountMapper, Reducer: sumReducer,
				NumReducers: 3, Locality: true, MaxAttempts: 4,
				ShuffleMemory: 256,
			})
			if err != nil {
				errc <- fmt.Errorf("job %d: %w", j, err)
				return
			}
			if res.Counters.SpillRuns == 0 {
				errc <- fmt.Errorf("job %d never spilled", j)
				return
			}
			got, err := ReadTextOutput(c, res.OutputFiles)
			if err != nil {
				errc <- fmt.Errorf("job %d output: %w", j, err)
				return
			}
			for k, want := range expected[j] {
				if len(got[k]) != 1 || got[k][0] != strconv.Itoa(want) {
					errc <- fmt.Errorf("job %d: key %q = %v, want %d", j, k, got[k], want)
					return
				}
			}
		}(j)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// Deterministic-output regression: the same spilling job run N times
// across different scheduling shapes produces byte-identical part
// files every time.
func TestSpillDeterministicRepeated(t *testing.T) {
	lines := make([]string, 300)
	for i := range lines {
		lines[i] = fmt.Sprintf("a%d b%d c%d", i%23, i%7, i%41)
	}
	shapes := []struct{ nodes, slots int }{
		{2, 1}, {4, 2}, {8, 4}, {3, 2}, {6, 1},
	}
	var baseline string
	for n, sh := range shapes {
		c := testCluster(sh.nodes, 128)
		if err := writeCorpus(c, "/in/det", lines); err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, Config{
			Inputs: []string{"/in/det"}, OutputDir: "/out/det",
			Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
			NumReducers: 4, SlotsPerNode: sh.slots, Locality: true,
			ShuffleMemory: 300,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, f := range res.OutputFiles {
			data, err := c.ReadFile(f, "")
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(data)
			sb.WriteByte('|')
		}
		if n == 0 {
			baseline = sb.String()
			if res.Counters.SpillRuns == 0 {
				t.Fatal("determinism run never spilled")
			}
			continue
		}
		if sb.String() != baseline {
			t.Fatalf("run %d (%d nodes, %d slots): output differs from baseline", n, sh.nodes, sh.slots)
		}
	}
}

package mapreduce

import (
	"errors"
	"fmt"

	"repro/internal/dfs"
)

// Map-only jobs and job chaining — the Hadoop idioms 2011 pipelines
// were built from (Crossbow chains alignment into SNP calling; ETL
// stages run map-only).

// ErrEmptyChain is returned for a chain without stages.
var ErrEmptyChain = errors.New("mapreduce: empty job chain")

// RunChain executes jobs in order, feeding each stage's output files
// as the next stage's inputs. The first stage keeps its configured
// Inputs; later stages have theirs replaced. It returns every stage's
// result.
func RunChain(cluster *dfs.Cluster, stages []Config) ([]*Result, error) {
	if len(stages) == 0 {
		return nil, ErrEmptyChain
	}
	results := make([]*Result, 0, len(stages))
	var prevOutputs []string
	for i, cfg := range stages {
		if i > 0 {
			cfg.Inputs = prevOutputs
		}
		res, err := Run(cluster, cfg)
		if err != nil {
			return results, fmt.Errorf("mapreduce: chain stage %d (%s): %w", i, cfg.Name, err)
		}
		results = append(results, res)
		prevOutputs = res.OutputFiles
	}
	return results, nil
}

// runMapOnly writes each map task's output directly as
// OutputDir/part-m-NNNNN — Hadoop's NumReduceTasks=0 semantics. Each
// partition's runs (spilled and in-memory) are merged back into one
// sorted sequence and streamed through a dfs.FileWriter, so a
// map-only job produces the same bytes whether or not it spilled.
func (e *engine) runMapOnly() ([]string, error) {
	outputs := make([]string, len(e.mapOut))
	for t, out := range e.mapOut {
		name := fmt.Sprintf("%s/part-m-%05d", trimDir(e.cfg.OutputDir), t)
		node := e.nodes[t%len(e.nodes)]
		if err := e.writeMapOutput(name, node, t, out); err != nil {
			_ = e.cluster.Delete(name)
			return nil, err
		}
		outputs[t] = name
	}
	return outputs, nil
}

// writeMapOutput streams one task's partitions, in partition order,
// each merged across its runs. With a combiner configured, merged
// groups are re-folded through it: each spilled run was combined
// independently, so without the re-fold a spilled map-only job would
// emit partial aggregates where the in-memory path emits one combined
// record per key.
func (e *engine) writeMapOutput(name, node string, task int, out *taskOutput) error {
	w, err := e.cluster.Create(name, node)
	if err != nil {
		return err
	}
	var werr error
	var line []byte
	emit := func(key string, value []byte) {
		if werr != nil {
			return
		}
		line = append(line[:0], key...)
		line = append(line, '\t')
		line = append(line, value...)
		line = append(line, '\n')
		if _, e2 := w.Write(line); e2 != nil {
			werr = e2
			return
		}
		e.ctr.add(&e.ctr.OutputRecords, 1)
	}
	var refold StreamReducer = identityStreamReducer{}
	if e.cfg.Combiner != nil && len(out.spills) > 0 {
		refold = streamAdapter{e.cfg.Combiner}
	}
	for p := 0; p < e.cfg.NumReducers; p++ {
		srcs, cursors, err := e.appendTaskSources(nil, nil, out, task, p, node)
		var m *merger
		if err == nil {
			e.ctr.add(&e.ctr.MergeStreams, int64(len(srcs)))
			m, err = newMerger(srcs)
		}
		for err == nil {
			head, ok := m.peek()
			if !ok {
				break
			}
			vals := &Values{m: m, key: head.key}
			if rerr := refold.ReduceStream(head.key, vals, emit); rerr != nil {
				err = rerr
				break
			}
			vals.drain()
			if vals.err != nil {
				err = vals.err
				break
			}
			if werr != nil {
				err = werr
				break
			}
		}
		for _, c := range cursors {
			c.close()
		}
		if err != nil {
			_ = w.Close()
			return err
		}
	}
	return w.Close()
}

func trimDir(dir string) string {
	for len(dir) > 0 && dir[len(dir)-1] == '/' {
		dir = dir[:len(dir)-1]
	}
	return dir
}

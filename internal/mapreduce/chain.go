package mapreduce

import (
	"errors"
	"fmt"

	"repro/internal/dfs"
)

// Map-only jobs and job chaining — the Hadoop idioms 2011 pipelines
// were built from (Crossbow chains alignment into SNP calling; ETL
// stages run map-only).

// ErrEmptyChain is returned for a chain without stages.
var ErrEmptyChain = errors.New("mapreduce: empty job chain")

// RunChain executes jobs in order, feeding each stage's output files
// as the next stage's inputs. The first stage keeps its configured
// Inputs; later stages have theirs replaced. It returns every stage's
// result.
func RunChain(cluster *dfs.Cluster, stages []Config) ([]*Result, error) {
	if len(stages) == 0 {
		return nil, ErrEmptyChain
	}
	results := make([]*Result, 0, len(stages))
	var prevOutputs []string
	for i, cfg := range stages {
		if i > 0 {
			cfg.Inputs = prevOutputs
		}
		res, err := Run(cluster, cfg)
		if err != nil {
			return results, fmt.Errorf("mapreduce: chain stage %d (%s): %w", i, cfg.Name, err)
		}
		results = append(results, res)
		prevOutputs = res.OutputFiles
	}
	return results, nil
}

// runMapOnly writes each map task's output directly as
// OutputDir/part-m-NNNNN — Hadoop's NumReduceTasks=0 semantics. Each
// partition's runs (spilled and in-memory) are merged back into one
// sorted sequence and streamed through a dfs.FileWriter, so a
// map-only job produces the same bytes whether or not it spilled.
func (e *engine) runMapOnly() ([]string, error) {
	outputs := make([]string, len(e.mapOut))
	for t, out := range e.mapOut {
		name := fmt.Sprintf("%s/part-m-%05d", trimDir(e.cfg.OutputDir), t)
		node := e.nodes[t%len(e.nodes)]
		if err := e.rt.writeMapOutput(name, node, t, out); err != nil {
			_ = e.rt.store.Delete(name)
			return nil, err
		}
		outputs[t] = name
	}
	return outputs, nil
}

func trimDir(dir string) string {
	for len(dir) > 0 && dir[len(dir)-1] == '/' {
		dir = dir[:len(dir)-1]
	}
	return dir
}

package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"

	"repro/internal/mrpc"
	"repro/internal/units"
)

// ErrUnknownTemplate is returned by Resolve for job names absent from
// the registry; callers (the gateway) map it to a 404.
var ErrUnknownTemplate = errors.New("mapreduce: no job template")

// Map and reduce functions are Go code — they cannot cross the wire.
// What crosses the wire (gateway submissions, master→worker
// assignments) is a job *name* resolved against a registry of
// templates, Hadoop-streaming style: the operator registers the
// community's analysis programs once on every process that executes
// tasks, and experiments submit (name, inputs, output, args) tuples.

// JobBuilder turns one wire-level job spec into a runnable config.
// The framework fills in Name/Inputs/OutputDir/NumReducers/
// ShuffleMemory from the spec afterwards; builders set the functions
// and job-shape knobs (format, map-only, combiner, locality).
type JobBuilder func(spec mrpc.JobSpec) (Config, error)

// Registry maps template names to builders. Masters resolve specs at
// submission (validation, shape); workers resolve the same spec per
// attempt, so both sides must share a registry.
type Registry map[string]JobBuilder

// Resolve builds the full config for a spec: the template's functions
// plus the submission's parameters.
func (r Registry) Resolve(spec mrpc.JobSpec) (Config, error) {
	b, ok := r[spec.Name]
	if !ok {
		return Config{}, fmt.Errorf("%w %q", ErrUnknownTemplate, spec.Name)
	}
	cfg, err := b(spec)
	if err != nil {
		return Config{}, err
	}
	cfg.Name = spec.Name
	cfg.Inputs = spec.Inputs
	cfg.OutputDir = spec.OutputDir
	if spec.NumReducers > 0 {
		cfg.NumReducers = spec.NumReducers
	}
	if spec.ShuffleMemory != 0 {
		cfg.ShuffleMemory = units.Bytes(spec.ShuffleMemory)
	}
	return cfg.withDefaults(), nil
}

// Builtin is the default template registry: the generic text analyses
// every facility offers. Facility-specific jobs (k-mer counting, MIP
// visualization) are registered alongside by the operator.
func Builtin() Registry {
	return Registry{
		"wordcount": func(mrpc.JobSpec) (Config, error) {
			return Config{
				Mapper: MapperFunc(func(_ string, value []byte, emit Emit) error {
					for _, f := range bytes.Fields(value) {
						emit(string(f), one)
					}
					return nil
				}),
				Combiner: SumReducer(),
				Reducer:  SumReducer(),
				Format:   TextInput,
				Locality: true,
			}, nil
		},
		"linecount": func(mrpc.JobSpec) (Config, error) {
			return Config{
				Mapper: MapperFunc(func(_ string, _ []byte, emit Emit) error {
					emit("lines", one)
					return nil
				}),
				Combiner: SumReducer(),
				Reducer:  SumReducer(),
				Format:   TextInput,
				Locality: true,
			}, nil
		},
		"grep": func(spec mrpc.JobSpec) (Config, error) {
			pattern := spec.Args["pattern"]
			if pattern == "" {
				return Config{}, fmt.Errorf("grep needs args.pattern")
			}
			pat := []byte(pattern)
			return Config{
				Mapper: MapperFunc(func(key string, value []byte, emit Emit) error {
					if bytes.Contains(value, pat) {
						emit(key, value)
					}
					return nil
				}),
				Format:   TextInput,
				MapOnly:  true,
				Locality: true,
			}, nil
		},
	}
}

var one = []byte("1")

// SumReducer sums integer-valued counts per key — the reducer (and
// combiner) behind the builtin counting templates.
func SumReducer() Reducer {
	return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(bytes.TrimSpace(v)))
			if err != nil {
				return fmt.Errorf("non-numeric count for %q: %w", key, err)
			}
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	})
}

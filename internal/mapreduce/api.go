// Package mapreduce is an executable reimplementation of Hadoop
// MapReduce as used on the LSDF analysis cluster (slides 11/13: DNA
// sequencing and 3D biomedical visualization as "dedicated Hadoop
// applications"). It runs real map and reduce functions over files
// stored in the dfs package, with the scheduling behaviours the
// paper's era of Hadoop relied on: block-sized input splits,
// data-local task placement, per-task combiners, hash partitioning,
// sorted shuffles and speculative execution for stragglers.
package mapreduce

import (
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Emit publishes one intermediate or output key/value pair. The value
// slice is copied by the framework; callers may reuse buffers.
type Emit func(key string, value []byte)

// Mapper transforms one input record into intermediate pairs.
type Mapper interface {
	Map(key string, value []byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key string, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key string, value []byte, emit Emit) error { return f(key, value, emit) }

// Reducer folds all values of one key into output pairs. It also
// serves as the combiner type: combiners run per map task over that
// task's local output.
type Reducer interface {
	Reduce(key string, values [][]byte, emit Emit) error
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// InputFormat selects how splits become records.
type InputFormat int

// Input formats.
const (
	// TextInput yields one record per newline-terminated line; the key
	// is the byte offset (decimal string), the value the line without
	// its newline. Lines crossing split boundaries belong to the split
	// where they start, as in Hadoop's TextInputFormat.
	TextInput InputFormat = iota
	// WholeSplitInput yields exactly one record per split: the key is
	// "file:offset", the value the split's raw bytes. Used for binary
	// scientific data (image frames, volume slabs).
	WholeSplitInput
)

// Config describes one job.
type Config struct {
	Name        string
	Inputs      []string // dfs paths
	OutputDir   string   // dfs prefix; reducers write OutputDir/part-NNNNN
	Mapper      Mapper
	Reducer     Reducer // nil = identity (sorted map output passes through)
	Combiner    Reducer // optional, runs over each map task's output
	NumReducers int     // default 1
	MapOnly     bool    // skip shuffle/reduce; write part-m files (NumReduceTasks=0)
	Format      InputFormat

	SlotsPerNode int  // concurrent tasks per node; default 2 (Hadoop default)
	Locality     bool // prefer scheduling map tasks onto replica holders

	Speculative     bool          // re-launch slow tasks near the end of the map phase
	StragglerFactor float64       // speculation threshold multiplier; default 1.5
	MonitorInterval time.Duration // speculation check period; default 5 ms

	MaxAttempts int // per task, counting reruns after errors; default 2

	// TaskDelay, when non-nil, injects per-(node, task) wall-clock delay
	// before a map attempt runs. It exists for straggler and failure
	// experiments; production jobs leave it nil.
	TaskDelay func(node string, task int) time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NumReducers <= 0 {
		out.NumReducers = 1
	}
	if out.SlotsPerNode <= 0 {
		out.SlotsPerNode = 2
	}
	if out.StragglerFactor <= 0 {
		out.StragglerFactor = 1.5
	}
	if out.MonitorInterval <= 0 {
		out.MonitorInterval = 5 * time.Millisecond
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 2
	}
	return out
}

// Counters are the job's observable metrics, updated atomically while
// the job runs.
type Counters struct {
	MapTasks         int64
	ReduceTasks      int64
	InputRecords     int64
	MapOutputRecords int64
	CombineInput     int64
	CombineOutput    int64
	ReduceGroups     int64
	OutputRecords    int64
	LocalTasks       int64 // map tasks scheduled on a replica holder
	RemoteTasks      int64
	SpecLaunched     int64 // speculative attempts started
	SpecWon          int64 // tasks whose speculative attempt committed first
	Retries          int64 // attempts re-run after errors
	ShuffleBytes     int64 // intermediate volume fed to reducers
}

func (c *Counters) add(field *int64, n int64) { atomic.AddInt64(field, n) }

// snapshot returns a plain copy readable without atomics.
func (c *Counters) snapshot() Counters {
	return Counters{
		MapTasks:         atomic.LoadInt64(&c.MapTasks),
		ReduceTasks:      atomic.LoadInt64(&c.ReduceTasks),
		InputRecords:     atomic.LoadInt64(&c.InputRecords),
		MapOutputRecords: atomic.LoadInt64(&c.MapOutputRecords),
		CombineInput:     atomic.LoadInt64(&c.CombineInput),
		CombineOutput:    atomic.LoadInt64(&c.CombineOutput),
		ReduceGroups:     atomic.LoadInt64(&c.ReduceGroups),
		OutputRecords:    atomic.LoadInt64(&c.OutputRecords),
		LocalTasks:       atomic.LoadInt64(&c.LocalTasks),
		RemoteTasks:      atomic.LoadInt64(&c.RemoteTasks),
		SpecLaunched:     atomic.LoadInt64(&c.SpecLaunched),
		SpecWon:          atomic.LoadInt64(&c.SpecWon),
		Retries:          atomic.LoadInt64(&c.Retries),
		ShuffleBytes:     atomic.LoadInt64(&c.ShuffleBytes),
	}
}

// Result is what a finished job reports.
type Result struct {
	Counters    Counters
	Duration    time.Duration
	OutputFiles []string
}

// partition assigns a key to one of r reducers by FNV hash, Hadoop's
// HashPartitioner contract.
func partition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

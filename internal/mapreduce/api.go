// Package mapreduce is an executable reimplementation of Hadoop
// MapReduce as used on the LSDF analysis cluster (slides 11/13: DNA
// sequencing and 3D biomedical visualization as "dedicated Hadoop
// applications"). It runs real map and reduce functions over files
// stored in the dfs package, with the scheduling behaviours the
// paper's era of Hadoop relied on: block-sized input splits,
// data-local task placement, per-task combiners, hash partitioning,
// sorted shuffles and speculative execution for stragglers.
//
// The shuffle is an external sort-spill-merge: map tasks accumulate
// partitioned, sorted runs up to Config.ShuffleMemory and spill
// overflow runs as length-prefixed segment files into the DFS; reduce
// tasks k-way heap-merge in-memory runs with DFS spill readers and
// stream grouped values to the reducer, so intermediate volume is
// bounded by the configured budget instead of the heap. See DESIGN.md
// §6 for the spill format and merge invariants.
package mapreduce

import (
	"hash/fnv"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/units"
)

// Emit publishes one intermediate or output key/value pair. The value
// slice is copied by the framework; callers may reuse buffers.
type Emit func(key string, value []byte)

// Mapper transforms one input record into intermediate pairs.
type Mapper interface {
	Map(key string, value []byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(key string, value []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key string, value []byte, emit Emit) error { return f(key, value, emit) }

// Reducer folds all values of one key into output pairs. It also
// serves as the combiner type: combiners run per map task over that
// task's local output.
type Reducer interface {
	Reduce(key string, values [][]byte, emit Emit) error
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// StreamReducer folds one key's values as they stream out of the
// shuffle merge, without the framework materializing the group as a
// [][]byte first — the memory-bounded reduce interface. Slices
// returned by values.Next remain valid after the next call, so
// implementations may retain them; implementations that don't keep
// the group's memory footprint at O(1).
//
// A Config sets either Reducer or StreamReducer, not both; a plain
// Reducer runs through an internal adapter that collects the group.
type StreamReducer interface {
	ReduceStream(key string, values *Values, emit Emit) error
}

// StreamReducerFunc adapts a function to the StreamReducer interface.
type StreamReducerFunc func(key string, values *Values, emit Emit) error

// ReduceStream implements StreamReducer.
func (f StreamReducerFunc) ReduceStream(key string, values *Values, emit Emit) error {
	return f(key, values, emit)
}

// InputFormat selects how splits become records.
type InputFormat int

// Input formats.
const (
	// TextInput yields one record per newline-terminated line; the key
	// is the byte offset (decimal string), the value the line without
	// its newline. Lines crossing split boundaries belong to the split
	// where they start, as in Hadoop's TextInputFormat.
	TextInput InputFormat = iota
	// WholeSplitInput yields exactly one record per split: the key is
	// "file:offset", the value the split's raw bytes. Used for binary
	// scientific data (image frames, volume slabs).
	WholeSplitInput
)

// Config describes one job.
type Config struct {
	Name          string
	Inputs        []string // dfs paths
	OutputDir     string   // dfs prefix; reducers write OutputDir/part-NNNNN
	Mapper        Mapper
	Reducer       Reducer       // nil = identity (sorted map output passes through)
	StreamReducer StreamReducer // streaming alternative to Reducer; set at most one
	Combiner      Reducer       // optional, runs over each map task's output
	NumReducers   int           // default 1
	MapOnly       bool          // skip shuffle/reduce; write part-m files (NumReduceTasks=0)
	Format        InputFormat

	// ShuffleMemory bounds the intermediate pairs a map task holds in
	// memory. When the accumulated key+value bytes (plus per-record
	// overhead) reach the budget, the task sorts, combines and spills
	// the run as a segment file into the DFS; reduce tasks merge the
	// spilled runs back with streaming readers. <= 0 means unbounded
	// (the pure in-memory shuffle); note that facility.RunJob treats 0
	// as "inherit the facility default" — pass a negative value there
	// to force the in-memory shuffle explicitly. Output bytes are
	// identical either way for jobs whose combiner (if any) is
	// associative — Hadoop's combiner contract.
	ShuffleMemory units.Bytes

	SlotsPerNode int  // concurrent tasks per node; default 2 (Hadoop default)
	Locality     bool // prefer scheduling map tasks onto replica holders

	Speculative     bool          // re-launch slow tasks near the end of the map phase
	StragglerFactor float64       // speculation threshold multiplier; default 1.5
	MonitorInterval time.Duration // speculation check period; default 5 ms

	MaxAttempts int // per task, counting reruns after errors; default 2

	// TaskDelay, when non-nil, injects per-(node, task) wall-clock delay
	// before a map attempt runs. It exists for straggler and failure
	// experiments; production jobs leave it nil.
	TaskDelay func(node string, task int) time.Duration

	// Test seams for the reduce phase, set only from package tests.
	// reduceHook observes one reduce attempt starting on a node and
	// returns a callback invoked when the attempt finishes (nil to
	// skip). reduceWriter wraps the attempt's DFS output writer, the
	// injection point for induced write failures.
	reduceHook   func(part, attempt int, node string) func()
	reduceWriter func(part, attempt int, node string, w io.Writer) io.Writer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NumReducers <= 0 {
		out.NumReducers = 1
	}
	if out.SlotsPerNode <= 0 {
		out.SlotsPerNode = 2
	}
	if out.StragglerFactor <= 0 {
		out.StragglerFactor = 1.5
	}
	if out.MonitorInterval <= 0 {
		out.MonitorInterval = 5 * time.Millisecond
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 2
	}
	return out
}

// streamingReducer resolves the configured reduce function to the
// streaming interface the merge drives: StreamReducer as-is, a plain
// Reducer through the collecting adapter, neither as identity.
func (c *Config) streamingReducer() StreamReducer {
	if c.StreamReducer != nil {
		return c.StreamReducer
	}
	if c.Reducer != nil {
		return streamAdapter{c.Reducer}
	}
	return identityStreamReducer{}
}

// Counters are the job's observable metrics, updated atomically while
// the job runs.
type Counters struct {
	MapTasks           int64
	ReduceTasks        int64
	InputRecords       int64
	MapOutputRecords   int64
	CombineInput       int64
	CombineOutput      int64
	ReduceGroups       int64
	OutputRecords      int64
	LocalTasks         int64 // map tasks scheduled on a replica holder
	RemoteTasks        int64
	SpecLaunched       int64 // speculative attempts started
	SpecWon            int64 // tasks whose speculative attempt committed first
	Retries            int64 // attempts re-run after errors (map and reduce)
	ShuffleBytes       int64 // intermediate volume fed to reducers
	RemoteShuffleBytes int64 // segment bytes fetched from worker shuffle servers
	SpillRuns          int64 // sorted runs spilled to the DFS by map tasks
	SpillBytes         int64 // bytes written into spill segment files
	MergeStreams       int64 // run streams opened by shuffle merges
}

func (c *Counters) add(field *int64, n int64) { atomic.AddInt64(field, n) }

// snapshot returns a plain copy readable without atomics.
func (c *Counters) snapshot() Counters {
	return Counters{
		MapTasks:           atomic.LoadInt64(&c.MapTasks),
		ReduceTasks:        atomic.LoadInt64(&c.ReduceTasks),
		InputRecords:       atomic.LoadInt64(&c.InputRecords),
		MapOutputRecords:   atomic.LoadInt64(&c.MapOutputRecords),
		CombineInput:       atomic.LoadInt64(&c.CombineInput),
		CombineOutput:      atomic.LoadInt64(&c.CombineOutput),
		ReduceGroups:       atomic.LoadInt64(&c.ReduceGroups),
		OutputRecords:      atomic.LoadInt64(&c.OutputRecords),
		LocalTasks:         atomic.LoadInt64(&c.LocalTasks),
		RemoteTasks:        atomic.LoadInt64(&c.RemoteTasks),
		SpecLaunched:       atomic.LoadInt64(&c.SpecLaunched),
		SpecWon:            atomic.LoadInt64(&c.SpecWon),
		Retries:            atomic.LoadInt64(&c.Retries),
		ShuffleBytes:       atomic.LoadInt64(&c.ShuffleBytes),
		RemoteShuffleBytes: atomic.LoadInt64(&c.RemoteShuffleBytes),
		SpillRuns:          atomic.LoadInt64(&c.SpillRuns),
		SpillBytes:         atomic.LoadInt64(&c.SpillBytes),
		MergeStreams:       atomic.LoadInt64(&c.MergeStreams),
	}
}

// Result is what a finished job reports.
type Result struct {
	Counters    Counters
	Duration    time.Duration
	OutputFiles []string
}

// partition assigns a key to one of r reducers by FNV hash, Hadoop's
// HashPartitioner contract.
func partition(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

package mapreduce

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/units"
)

// BenchmarkWordCount measures the full engine — splits, locality
// scheduling, map, combine, shuffle, reduce, output — on a fixed
// corpus.
func BenchmarkWordCount(b *testing.B) {
	var corpus strings.Builder
	for i := 0; i < 20_000; i++ {
		fmt.Fprintf(&corpus, "zebrafish embryo plate%03d image analysis\n", i%64)
	}
	data := []byte(corpus.String())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := testCluster(8, 64*units.KiB)
		if err := c.WriteFile("/bench/corpus", "", data); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Run(c, Config{
			Inputs: []string{"/bench/corpus"}, OutputDir: "/bench/out",
			Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
			NumReducers: 4, Locality: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTextSplitReader isolates the record reader with the
// split-boundary convention.
func BenchmarkTextSplitReader(b *testing.B) {
	c := testCluster(4, 32*units.KiB)
	var corpus strings.Builder
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&corpus, "line number %d with a realistic length of text\n", i)
	}
	data := []byte(corpus.String())
	if err := c.WriteFile("/bench/lines", "", data); err != nil {
		b.Fatal(err)
	}
	splits, err := buildSplits(c, []string{"/bench/lines"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, s := range splits {
			if err := readRecords(c, s, TextInput, "", func(string, []byte) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		if n != 50_000 {
			b.Fatalf("records = %d", n)
		}
	}
}

package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/units"
)

// BenchmarkWordCount measures the full engine — splits, locality
// scheduling, map, combine, shuffle, reduce, output — on a fixed
// corpus.
func BenchmarkWordCount(b *testing.B) {
	var corpus strings.Builder
	for i := 0; i < 20_000; i++ {
		fmt.Fprintf(&corpus, "zebrafish embryo plate%03d image analysis\n", i%64)
	}
	data := []byte(corpus.String())
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := testCluster(8, 64*units.KiB)
		if err := c.WriteFile("/bench/corpus", "", data); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Run(c, Config{
			Inputs: []string{"/bench/corpus"}, OutputDir: "/bench/out",
			Mapper: wordCountMapper, Reducer: sumReducer, Combiner: sumReducer,
			NumReducers: 4, Locality: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// shuffleBench runs one wordcount with a configurable spill budget
// and reduce interface — the spill-vs-in-memory measurement pair.
func shuffleBench(b *testing.B, mem units.Bytes, streaming bool) {
	var corpus strings.Builder
	for i := 0; i < 30_000; i++ {
		fmt.Fprintf(&corpus, "plate%04d well%03d image%02d analysis pass%d\n", i%512, i%96, i%31, i%7)
	}
	data := []byte(corpus.String())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := testCluster(8, 64*units.KiB)
		if err := c.WriteFile("/bench/shuffle", "", data); err != nil {
			b.Fatal(err)
		}
		cfg := Config{
			Inputs: []string{"/bench/shuffle"}, OutputDir: "/bench/sout",
			Mapper: wordCountMapper, NumReducers: 4, Locality: true,
			ShuffleMemory: mem,
		}
		if streaming {
			cfg.StreamReducer = streamSumBench
		} else {
			cfg.Reducer = sumReducer
		}
		b.StartTimer()
		res, err := Run(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if mem > 0 && mem < units.MiB && res.Counters.SpillRuns == 0 {
			b.Fatal("spill benchmark never spilled")
		}
	}
}

var streamSumBench = StreamReducerFunc(func(key string, values *Values, emit Emit) error {
	sum := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		sum += n
	}
	if err := values.Err(); err != nil {
		return err
	}
	emit(key, []byte(strconv.Itoa(sum)))
	return nil
})

// BenchmarkShuffleInMemory is the baseline: unbounded map buffers,
// reduce merges only in-memory runs.
func BenchmarkShuffleInMemory(b *testing.B) { shuffleBench(b, 0, false) }

// BenchmarkShuffleSpill forces the external path: 16 KiB per-task
// budget, so every map task spills sorted runs to the DFS and every
// reduce streams them back through the k-way merge.
func BenchmarkShuffleSpill(b *testing.B) { shuffleBench(b, 16*units.KiB, false) }

// BenchmarkShuffleSpillStream is the spill path with a streaming
// reducer — no per-group [][]byte materialization.
func BenchmarkShuffleSpillStream(b *testing.B) { shuffleBench(b, 16*units.KiB, true) }

// BenchmarkTextSplitReader isolates the record reader with the
// split-boundary convention.
func BenchmarkTextSplitReader(b *testing.B) {
	c := testCluster(4, 32*units.KiB)
	var corpus strings.Builder
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&corpus, "line number %d with a realistic length of text\n", i)
	}
	data := []byte(corpus.String())
	if err := c.WriteFile("/bench/lines", "", data); err != nil {
		b.Fatal(err)
	}
	splits, err := buildSplits(c, []string{"/bench/lines"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, s := range splits {
			if err := readRecords(NewDFSStore(c), s, TextInput, "", func(string, []byte) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		if n != 50_000 {
			b.Fatalf("records = %d", n)
		}
	}
}

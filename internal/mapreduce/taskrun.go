package mapreduce

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

func stableSortByKey(pairs []kv) {
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
}

// taskRuntime is the execution machinery shared by the in-process
// engine and the distributed worker: running a mapper over a split
// with sort-spill under the shuffle budget, combining, writing and
// reading spill runs, and merging runs back into reducers. The engine
// binds one runtime per job against the cluster directly; a worker
// binds one per attempt against its Store (local DFS or the master's
// proxy) with attempt-scoped spill names and progress/cancel hooks.
type taskRuntime struct {
	store    Store
	cfg      Config // defaults applied
	ctr      *Counters
	shufDir  string
	spillSeq *atomic.Int64
	spillTag string // attempt-scoping prefix in spill names; "" in-process

	// spillAll makes finish() spill the final run instead of keeping
	// it in memory — distributed map output must be entirely on the
	// DFS so reducers elsewhere can fetch it. Run contents and order
	// are unchanged, which preserves byte-identical job output.
	spillAll bool

	// Worker-side hooks; nil in-process.
	stepDelay time.Duration      // injected per-record delay (straggler experiments)
	progress  func(frac float64) // consumed-input fraction updates
	cancelled func() bool        // polled in the record loop; true aborts
}

// errCancelled aborts an attempt the master ordered killed.
var errCancelled = fmt.Errorf("mapreduce: attempt cancelled")

// mapCollector accumulates a map attempt's partitioned output under
// the shuffle memory budget, spilling sorted runs to the store when
// the budget fills. It is per-attempt and single-goroutine.
type mapCollector struct {
	rt    *taskRuntime
	node  string
	task  int
	parts [][]kv
	arena byteArena
	mem   int64
	err   error // first spill/combine failure; latched
	out   taskOutput
}

func (c *mapCollector) add(key string, value []byte) {
	p := partition(key, len(c.parts))
	c.parts[p] = append(c.parts[p], kv{key: key, val: c.arena.copy(value)})
	c.mem += int64(len(key)) + int64(len(value)) + kvOverhead
	if budget := int64(c.rt.cfg.ShuffleMemory); budget > 0 && c.mem >= budget {
		c.spill()
	}
}

// spill sorts+combines the buffered run, writes it to the store and
// resets the buffer. Errors latch into c.err; the attempt surfaces
// them after the mapper returns.
func (c *mapCollector) spill() {
	if c.err != nil {
		return
	}
	parts, err := c.rt.sortAndCombine(c.parts)
	if err != nil {
		c.err = err
		return
	}
	run, err := c.rt.writeSpill(c.node, c.task, parts)
	if err != nil {
		c.err = err
		return
	}
	c.out.spills = append(c.out.spills, run)
	c.parts = make([][]kv, len(c.parts))
	c.arena = byteArena{}
	c.mem = 0
}

// finish sorts+combines the final run. It stays in memory unless the
// runtime demands everything on the store (distributed mode), in
// which case it becomes the last spilled run — same contents, same
// run index, so merge order is unchanged.
func (c *mapCollector) finish() error {
	if c.err != nil {
		return c.err
	}
	parts, err := c.rt.sortAndCombine(c.parts)
	if err != nil {
		return err
	}
	if c.rt.spillAll {
		empty := true
		for _, p := range parts {
			if len(p) > 0 {
				empty = false
				break
			}
		}
		if empty {
			return nil
		}
		run, err := c.rt.writeSpill(c.node, c.task, parts)
		if err != nil {
			return err
		}
		c.out.spills = append(c.out.spills, run)
		return nil
	}
	c.out.mem = parts
	return nil
}

// executeMap runs the mapper over one split and returns the task's
// output: spilled runs plus (in-process) the final in-memory run,
// each sorted and combined. On error, spill files already written
// are deleted.
func (rt *taskRuntime) executeMap(node string, task int, s split) (out *taskOutput, records, outRecords int64, err error) {
	col := &mapCollector{rt: rt, node: node, task: task, parts: make([][]kv, rt.cfg.NumReducers)}
	emit := func(key string, value []byte) {
		if col.err != nil {
			return // a spill failed; drop further output
		}
		col.add(key, value)
		outRecords++
	}
	var consumed int64
	err = readRecords(rt.store, s, rt.cfg.Format, node, func(key string, value []byte) error {
		records++
		if rt.stepDelay > 0 {
			time.Sleep(rt.stepDelay)
		}
		if rt.cancelled != nil && rt.cancelled() {
			return errCancelled
		}
		if rt.progress != nil && s.length > 0 {
			consumed += int64(len(value)) + 1
			if frac := float64(consumed) / float64(s.length); frac < 1 {
				rt.progress(frac)
			}
		}
		if merr := rt.cfg.Mapper.Map(key, value, emit); merr != nil {
			return merr
		}
		return col.err // abort the record loop on spill failure
	})
	if err == nil {
		err = col.finish()
	}
	if err != nil {
		rt.discardOutput(&col.out)
		return nil, 0, 0, err
	}
	return &col.out, records, outRecords, nil
}

// sortAndCombine stable-sorts each partition by key (preserving
// emission order within a key) and folds it through the combiner if
// one is configured.
func (rt *taskRuntime) sortAndCombine(parts [][]kv) ([][]kv, error) {
	for p := range parts {
		stableSortByKey(parts[p])
	}
	if rt.cfg.Combiner != nil {
		for p := range parts {
			combined, cerr := rt.combine(parts[p])
			if cerr != nil {
				return nil, cerr
			}
			parts[p] = combined
		}
	}
	return parts, nil
}

// combine folds a sorted run of pairs through the combiner.
func (rt *taskRuntime) combine(sorted []kv) ([]kv, error) {
	var out []kv
	var arena byteArena
	emit := func(key string, value []byte) {
		out = append(out, kv{key: key, val: arena.copy(value)})
	}
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].key == sorted[i].key {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, p := range sorted[i:j] {
			vals = append(vals, p.val)
		}
		rt.ctr.add(&rt.ctr.CombineInput, int64(j-i))
		if err := rt.cfg.Combiner.Reduce(sorted[i].key, vals, emit); err != nil {
			return nil, err
		}
		i = j
	}
	rt.ctr.add(&rt.ctr.CombineOutput, int64(len(out)))
	// Combiner output for a sorted input is sorted as long as the
	// combiner emits the group key; enforce for safety.
	stableSortByKey(out)
	return out, nil
}

// appendTaskSources appends the merge sources for one task's
// partition p: a streaming cursor per spilled run segment (empty
// segments skipped), then the final in-memory run, carrying the
// (task, run) tie-break indexes the merge's determinism relies on —
// spills in spill order, the in-memory run last. Cursors opened
// before a failure are still appended so the caller can close them.
func (rt *taskRuntime) appendTaskSources(srcs []mergeSource, cursors []*spillCursor,
	out *taskOutput, task, p int, node string) ([]mergeSource, []*spillCursor, error) {
	for ri, run := range out.spills {
		cur, err := openSpillCursor(rt.store, run, p, node)
		if err != nil {
			return srcs, cursors, err
		}
		if cur == nil {
			continue // empty segment
		}
		cursors = append(cursors, cur)
		srcs = append(srcs, mergeSource{s: cur, task: task, run: ri})
	}
	if p < len(out.mem) && len(out.mem[p]) > 0 {
		srcs = append(srcs, mergeSource{s: &memStream{pairs: out.mem[p]}, task: task, run: len(out.spills)})
	}
	return srcs, cursors, nil
}

// writeMapOutput streams one task's partitions, in partition order,
// each merged across its runs — Hadoop's NumReduceTasks=0 output
// path. With a combiner configured, merged groups are re-folded
// through it: each spilled run was combined independently, so without
// the re-fold a spilled map-only job would emit partial aggregates
// where the in-memory path emits one combined record per key.
func (rt *taskRuntime) writeMapOutput(name, node string, task int, out *taskOutput) error {
	w, err := rt.store.Create(name, node)
	if err != nil {
		return err
	}
	lw := &lineWriter{w: w}
	var refold StreamReducer = identityStreamReducer{}
	if rt.cfg.Combiner != nil && len(out.spills) > 0 {
		refold = streamAdapter{rt.cfg.Combiner}
	}
	for p := 0; p < rt.cfg.NumReducers; p++ {
		srcs, cursors, err := rt.appendTaskSources(nil, nil, out, task, p, node)
		var m *merger
		if err == nil {
			rt.ctr.add(&rt.ctr.MergeStreams, int64(len(srcs)))
			m, err = newMerger(srcs)
		}
		if err == nil {
			_, err = drainGroups(m, refold, lw.emit, lw.fail)
		}
		for _, c := range cursors {
			c.close()
		}
		if err != nil {
			_ = w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	rt.ctr.add(&rt.ctr.OutputRecords, lw.n)
	return nil
}

// drainGroups streams merged groups through red: one Values cursor
// per key, drained after the reducer returns so early-stopping
// reducers still advance the merge. wfail, when non-nil, surfaces a
// latched output-write failure after each group.
func drainGroups(m *merger, red StreamReducer, emit Emit, wfail func() error) (groups int64, err error) {
	for {
		head, ok := m.peek()
		if !ok {
			return groups, nil
		}
		key := head.key
		vals := &Values{m: m, key: key}
		if rerr := red.ReduceStream(key, vals, emit); rerr != nil {
			return groups, fmt.Errorf("mapreduce: reduce key %q: %w", key, rerr)
		}
		vals.drain()
		if vals.err != nil {
			return groups, vals.err
		}
		if wfail != nil {
			if werr := wfail(); werr != nil {
				return groups, werr
			}
		}
		groups++
	}
}

// lineWriter emits "key\tvalue\n" records into an output stream,
// latching the first write error — the framework's text output
// format, shared by reduce, map-only and distributed attempts.
type lineWriter struct {
	w    io.Writer
	line []byte
	n    int64
	err  error
}

func (lw *lineWriter) emit(key string, value []byte) {
	if lw.err != nil {
		return
	}
	lw.line = append(lw.line[:0], key...)
	lw.line = append(lw.line, '\t')
	lw.line = append(lw.line, value...)
	lw.line = append(lw.line, '\n')
	if _, err := lw.w.Write(lw.line); err != nil {
		lw.err = err
		return
	}
	lw.n++
}

func (lw *lineWriter) fail() error { return lw.err }

package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dfs"
	"repro/internal/mrpc"
	"repro/internal/obs"
	"repro/internal/units"
)

// Master is the distributed job tracker: it owns job and task state
// machines, leases tasks to registered workers over the mrpc plane,
// detects worker death by missed heartbeats, re-executes lost work,
// launches speculative backups for stragglers, and arbitrates
// first-finisher-wins commits (rename of attempt-scoped output files,
// so a superseded attempt can never clobber a committed one). It also
// serves a DFS proxy so out-of-process workers reach the cluster's
// storage through the same address they heartbeat to.
//
// Scheduling is multi-job fair-share: each heartbeat's free slots go
// to the runnable job with the smallest running-slots/weight ratio,
// weights being per-tenant — PR 8's tenant fairness, applied to
// compute.
type Master struct {
	cfg   MasterConfig
	store Store
	srv   *mrpc.Server

	mu      sync.Mutex
	workers map[string]*mWorker
	jobs    map[string]*Job
	jobSeq  int
	weights map[string]int // tenant → fair-share weight (default 1)
	stopMon chan struct{}
	monWG   sync.WaitGroup
	closed  bool
}

// MasterConfig configures a master.
type MasterConfig struct {
	Cluster  *dfs.Cluster
	Registry Registry
	// Addr is the control-plane listen address ("" = loopback
	// ephemeral — in-process workers and tests).
	Addr string
	// Heartbeat is the cadence workers are told to beat at
	// (default 10ms — laptop scale; a real deployment uses seconds).
	Heartbeat time.Duration
	// Lease is the liveness timeout: a worker silent for this long is
	// presumed dead and its in-flight attempts are re-queued
	// (default 8× Heartbeat).
	Lease time.Duration
	// MaxTaskFailures is the per-task error budget before the job
	// fails (default 4). Worker deaths re-queue without burning it.
	MaxTaskFailures int
	// ShuffleMemory is the default spill budget for jobs that do not
	// set one.
	ShuffleMemory units.Bytes
	// Tracer, when set, records a master.job span for every submitted
	// job that carries a trace ID and attaches worker task-attempt
	// spans arriving in completions — the compute half of the
	// facility's trace ring.
	Tracer *obs.Tracer
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 10 * time.Millisecond
	}
	if c.Lease <= 0 {
		c.Lease = 8 * c.Heartbeat
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 4
	}
	if c.Registry == nil {
		c.Registry = Builtin()
	}
	return c
}

// mWorker is the master's view of one worker.
type mWorker struct {
	id       string
	addr     string
	node     string
	slots    int
	lastBeat time.Time
	alive    bool
	kill     []mrpc.AttemptID
	attempts map[mrpc.AttemptID]*mAttempt
}

// runsPhase reports whether the worker already runs an attempt of
// the given job's phase.
func (w *mWorker) runsPhase(job, phase string) bool {
	for id := range w.attempts {
		if id.Job == job && id.Phase == phase {
			return true
		}
	}
	return false
}

// runsTask reports whether the worker already runs an attempt of the
// exact task.
func (w *mWorker) runsTask(key mrpc.TaskKey) bool {
	for id := range w.attempts {
		if id.Job == key.Job && id.Phase == key.Phase && id.Task == key.Task {
			return true
		}
	}
	return false
}

// mAttempt is one in-flight attempt.
type mAttempt struct {
	id       mrpc.AttemptID
	worker   string
	started  time.Time
	progress float64
	spec     bool
	local    bool
}

// mTask is one task's state machine: pending → running attempts →
// committed, with failure re-queues and lost-output resurrection.
type mTask struct {
	committed   bool
	queued      bool
	failures    int
	nextAttempt int
	deferUntil  time.Time         // phase-spread: yield to other workers until then
	running     map[int]*mAttempt // attempt number → info
	specStarted bool
	runs        []mrpc.RunRef // committed map output geometry
	runWorker   string        // worker whose shuffle server serves the runs
	outFile     string        // committed final output (reduce / map-only)
}

// Job is a submitted distributed job.
type Job struct {
	ID     string
	master *Master
	tenant string
	spec   mrpc.JobSpec
	cfg    Config
	splits []split
	shuf   string
	ctr    *Counters
	start  time.Time

	maps, reduces            []mTask
	mapsDone, redsDone       int
	pendingMaps, pendingReds []int
	specQ                    []mrpc.TaskKey
	specLaunched, specCap    int
	runningSlots             int

	failed  error
	doneCh  chan struct{}
	span    *obs.Span // master.job span; nil untraced
	outputs []string
	dur     time.Duration   // settled wall time
	mapDur  []time.Duration // committed attempt durations, per phase
	redDur  []time.Duration
}

// NewMaster starts a master and its control-plane server.
func NewMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster == nil {
		return nil, errors.New("mapreduce: master needs a cluster")
	}
	m := &Master{
		cfg:     cfg,
		store:   NewDFSStore(cfg.Cluster),
		workers: make(map[string]*mWorker),
		jobs:    make(map[string]*Job),
		weights: make(map[string]int),
		stopMon: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mrpc.Handle(mux, mrpc.PathRegister, m.handleRegister)
	mrpc.Handle(mux, mrpc.PathHeartbeat, m.handleHeartbeat)
	mrpc.Handle(mux, mrpc.PathComplete, m.handleComplete)
	m.mountProxy(mux)
	srv, err := mrpc.Serve(cfg.Addr, mux)
	if err != nil {
		return nil, err
	}
	m.srv = srv
	m.monWG.Add(1)
	go m.monitor()
	return m, nil
}

// URL is the master's control-plane base URL.
func (m *Master) URL() string { return m.srv.URL() }

// Close stops the monitor and the server. Running jobs fail.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		if j.failed == nil && !j.isDone() {
			j.fail(errors.New("mapreduce: master closed"))
		}
	}
	m.mu.Unlock()
	close(m.stopMon)
	m.monWG.Wait()
	m.srv.Close()
}

// SetTenantWeight sets a tenant's fair-share weight (default 1);
// slots are granted to the runnable job minimizing running/weight.
func (m *Master) SetTenantWeight(tenant string, w int) {
	if w <= 0 {
		w = 1
	}
	m.mu.Lock()
	m.weights[tenant] = w
	m.mu.Unlock()
}

// LiveWorkers returns the IDs of workers currently considered alive.
func (m *Master) LiveWorkers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, w := range m.workers {
		if w.alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// MasterStats is a point-in-time aggregate across every job the
// master has seen, for metrics exposition: the facility samples it
// at scrape time, so the scheduler's hot path carries no new cost.
type MasterStats struct {
	Workers      int // registered workers
	LiveWorkers  int
	Jobs         int // total jobs submitted
	RunningJobs  int
	RunningSlots int
	MapTasks     int64
	ReduceTasks  int64
	Retries      int64
	SpecLaunched int64
	SpecWon      int64
	ShuffleBytes int64
	RemoteBytes  int64
}

// Stats aggregates job counters and worker liveness.
func (m *Master) Stats() MasterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s MasterStats
	s.Workers = len(m.workers)
	for _, w := range m.workers {
		if w.alive {
			s.LiveWorkers++
		}
	}
	s.Jobs = len(m.jobs)
	for _, j := range m.jobs {
		if !j.isDone() {
			s.RunningJobs++
			s.RunningSlots += j.runningSlots
		}
		c := j.ctr.snapshot()
		s.MapTasks += c.MapTasks
		s.ReduceTasks += c.ReduceTasks
		s.Retries += c.Retries
		s.SpecLaunched += c.SpecLaunched
		s.SpecWon += c.SpecWon
		s.ShuffleBytes += c.ShuffleBytes
		s.RemoteBytes += c.RemoteShuffleBytes
	}
	return s
}

// Submit admits a job: resolves its template, builds splits, and
// queues every map task. Workers pick tasks up on their next
// heartbeat.
func (m *Master) Submit(spec mrpc.JobSpec, tenant string) (*Job, error) {
	cfg, err := m.cfg.Registry.Resolve(spec)
	if err != nil {
		return nil, err
	}
	if cfg.ShuffleMemory == 0 {
		cfg.ShuffleMemory = m.cfg.ShuffleMemory
	}
	// Stamp the resolved shape back into the spec so every worker
	// resolves the identical config (and spill boundaries match the
	// single-process engine byte for byte).
	spec.NumReducers = cfg.NumReducers
	spec.ShuffleMemory = int64(cfg.ShuffleMemory)
	splits, err := buildSplits(m.cfg.Cluster, cfg.Inputs)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("mapreduce: master closed")
	}
	m.jobSeq++
	j := &Job{
		ID:      fmt.Sprintf("mj-%06d", m.jobSeq),
		master:  m,
		tenant:  tenant,
		spec:    spec,
		cfg:     cfg,
		splits:  splits,
		shuf:    fmt.Sprintf("%s/_shuffle-d%d", trimDir(cfg.OutputDir), shuffleEpoch.Add(1)),
		ctr:     &Counters{},
		start:   time.Now(),
		maps:    make([]mTask, len(splits)),
		doneCh:  make(chan struct{}),
		specCap: 2,
	}
	if !cfg.MapOnly {
		j.reduces = make([]mTask, cfg.NumReducers)
		j.ctr.add(&j.ctr.ReduceTasks, int64(cfg.NumReducers))
	}
	if n := (len(splits) + len(j.reduces)) / 4; n > j.specCap {
		j.specCap = n
	}
	j.ctr.add(&j.ctr.MapTasks, int64(len(splits)))
	for i := range j.maps {
		j.maps[i].running = make(map[int]*mAttempt)
		j.pendingMaps = append(j.pendingMaps, i)
		j.maps[i].queued = true
	}
	for i := range j.reduces {
		j.reduces[i].running = make(map[int]*mAttempt)
	}
	if spec.Trace != "" {
		j.span = m.cfg.Tracer.SpanFor(spec.Trace, "master.job")
		j.span.Annotate("%s %s (%d maps, %d reduces)", j.ID, spec.Name, len(j.maps), len(j.reduces))
	}
	m.jobs[j.ID] = j
	if j.mapsDone == len(j.maps) { // zero-split job
		if cfg.MapOnly {
			j.finalize()
		} else {
			j.enqueueReduces()
		}
	}
	return j, nil
}

// Wait blocks until the job finishes and returns its result.
func (j *Job) Wait() (*Result, error) {
	<-j.doneCh
	j.master.mu.Lock()
	defer j.master.mu.Unlock()
	if j.failed != nil {
		return nil, j.failed
	}
	return &Result{
		Counters:    j.ctr.snapshot(),
		Duration:    j.durationLocked(),
		OutputFiles: append([]string(nil), j.outputs...),
	}, nil
}

func (j *Job) durationLocked() time.Duration {
	if j.dur != 0 {
		return j.dur
	}
	return time.Since(j.start)
}

func (j *Job) isDone() bool {
	select {
	case <-j.doneCh:
		return true
	default:
		return false
	}
}

// ---- protocol handlers ----

func (m *Master) handleRegister(req *mrpc.RegisterRequest) (*mrpc.RegisterReply, error) {
	if req.Worker == "" || req.Slots <= 0 {
		return nil, errors.New("mapreduce: register needs worker id and slots")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-registration (fresh worker, or one back from presumed death)
	// starts clean: any attempts tracked under the old incarnation
	// were already re-queued when it was declared dead.
	m.workers[req.Worker] = &mWorker{
		id:       req.Worker,
		addr:     req.Addr,
		node:     req.Node,
		slots:    req.Slots,
		lastBeat: time.Now(),
		alive:    true,
		attempts: make(map[mrpc.AttemptID]*mAttempt),
	}
	return &mrpc.RegisterReply{
		HeartbeatMS: m.cfg.Heartbeat.Milliseconds(),
		LeaseMS:     m.cfg.Lease.Milliseconds(),
	}, nil
}

func (m *Master) handleHeartbeat(req *mrpc.HeartbeatRequest) (*mrpc.HeartbeatReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.workers[req.Worker]
	if !ok || !w.alive {
		// Presumed dead (or never registered): the lease machinery
		// already re-queued its work; make it start over.
		return &mrpc.HeartbeatReply{Unknown: true}, nil
	}
	w.lastBeat = time.Now()
	rep := &mrpc.HeartbeatReply{Kill: w.kill}
	w.kill = nil
	for _, p := range req.Running {
		if att, ok := w.attempts[p.ID]; ok {
			att.progress = p.Fraction
		} else {
			// The worker is running something the master no longer
			// tracks (superseded while a kill was in flight).
			rep.Kill = append(rep.Kill, p.ID)
		}
	}
	for n := req.Free; n > 0; n-- {
		a, ok := m.assignLocked(w)
		if !ok {
			break
		}
		rep.Assign = append(rep.Assign, a)
	}
	return rep, nil
}

// assignLocked picks one task for worker w: the runnable job with the
// smallest running-slots/weight ratio, then that job's best task
// (local pending maps first, then any pending map, then reduces once
// all maps committed, then speculative backups).
func (m *Master) assignLocked(w *mWorker) (mrpc.Assignment, bool) {
	others := false
	for _, o := range m.workers {
		if o.alive && o.id != w.id {
			others = true
			break
		}
	}
	tried := make(map[string]bool)
	for {
		var best *Job
		var bestRatio float64
		for _, j := range m.jobs {
			if tried[j.ID] || j.failed != nil || j.isDone() || !j.hasWorkLocked() {
				continue
			}
			weight := m.weights[j.tenant]
			if weight <= 0 {
				weight = 1
			}
			ratio := float64(j.runningSlots) / float64(weight)
			if best == nil || ratio < bestRatio || (ratio == bestRatio && j.ID < best.ID) {
				best, bestRatio = j, ratio
			}
		}
		if best == nil {
			return mrpc.Assignment{}, false
		}
		if a, ok := best.takeLocked(w, others); ok {
			return a, true
		}
		// This job's available work should wait for a better-placed
		// worker; try the next job in fair-share order.
		tried[best.ID] = true
	}
}

func (j *Job) hasWorkLocked() bool {
	return len(j.pendingMaps) > 0 || len(j.pendingReds) > 0 || len(j.specQ) > 0
}

// phaseSpreadWindow is how many heartbeat intervals a reduce
// assignment defers to spread a job's phase across workers (the
// bounded-delay idiom from map locality scheduling, measured in time
// so a burst of free-slot probes from one worker cannot burn the
// window before anyone else beats): a worker already running one of
// this job's reduces yields the next reduce for this long so that
// one slow machine cannot quietly absorb the whole phase — with both
// reduces of a 2-reducer job on the straggler, no sibling ever
// commits and speculation has no median to project against.
const phaseSpreadWindow = 4

// takeLocked pops this job's best task for the worker and builds the
// assignment, registering the attempt on worker and task. It returns
// false when the only available work should wait for a better-placed
// worker: a reduce spread-yield, or a speculative backup that would
// land on the very worker running the original attempt.
func (j *Job) takeLocked(w *mWorker, others bool) (mrpc.Assignment, bool) {
	phase := mrpc.PhaseMap
	idx := -1
	spec := false
	local := false
	if len(j.pendingMaps) > 0 {
		pick := 0
		if j.cfg.Locality && w.node != "" {
			for qi, t := range j.pendingMaps {
				for _, loc := range j.splits[t].locations {
					if loc == w.node {
						pick, local = qi, true
						break
					}
				}
				if local {
					break
				}
			}
		}
		idx = j.pendingMaps[pick]
		j.pendingMaps = append(j.pendingMaps[:pick], j.pendingMaps[pick+1:]...)
		j.maps[idx].queued = false
	} else if len(j.pendingReds) > 0 && j.mapsDone == len(j.maps) {
		// The mapsDone gate matters after a lost-map resurrection: a
		// reduce assigned while a map is re-running would snapshot
		// mapOutputsLocked without that map's runs and silently merge
		// an incomplete input set.
		idx = j.pendingReds[0]
		if others && w.runsPhase(j.ID, mrpc.PhaseReduce) {
			t := &j.reduces[idx]
			now := time.Now()
			if t.deferUntil.IsZero() {
				t.deferUntil = now.Add(phaseSpreadWindow * j.master.cfg.Heartbeat)
			}
			if now.Before(t.deferUntil) {
				return mrpc.Assignment{}, false
			}
		}
		phase = mrpc.PhaseReduce
		j.pendingReds = j.pendingReds[1:]
		j.reduces[idx].queued = false
	} else if len(j.specQ) > 0 {
		key := j.specQ[0]
		if w.runsTask(key) {
			// A backup raced on the straggler itself is no backup.
			return mrpc.Assignment{}, false
		}
		if key.Phase == mrpc.PhaseReduce && j.mapsDone != len(j.maps) {
			return mrpc.Assignment{}, false // same gate as queued reduces
		}
		j.specQ = j.specQ[1:]
		phase, idx, spec = key.Phase, key.Task, true
	} else {
		// Pending reduces exist but are gated behind a map re-run.
		return mrpc.Assignment{}, false
	}
	t := j.task(phase, idx)
	att := &mAttempt{
		id:      mrpc.AttemptID{Job: j.ID, Phase: phase, Task: idx, Attempt: t.nextAttempt},
		worker:  w.id,
		started: time.Now(),
		spec:    spec,
		local:   local,
	}
	t.nextAttempt++
	t.running[att.id.Attempt] = att
	w.attempts[att.id] = att
	j.runningSlots++
	if phase == mrpc.PhaseMap && !spec {
		if local {
			j.ctr.add(&j.ctr.LocalTasks, 1)
		} else {
			j.ctr.add(&j.ctr.RemoteTasks, 1)
		}
	}
	a := mrpc.Assignment{
		ID:      att.id,
		Spec:    j.spec,
		ShufDir: j.shuf,
		MapOnly: j.cfg.MapOnly,
	}
	out := trimDir(j.cfg.OutputDir)
	if phase == mrpc.PhaseMap {
		a.Split = j.splits[idx].ref()
		if j.cfg.MapOnly {
			a.OutFile = fmt.Sprintf("%s/part-m-%05d.a%d", out, idx, att.id.Attempt)
		}
	} else {
		a.OutFile = fmt.Sprintf("%s/part-%05d.a%d", out, idx, att.id.Attempt)
		a.MapOutputs = j.mapOutputsLocked()
	}
	return a, true
}

// mapOutputsLocked snapshots every committed map task's runs, stamped
// with the shuffle address of the worker that wrote them when that
// worker is still alive — dead owners leave Addr empty and reducers
// go straight to the DFS spill files.
func (j *Job) mapOutputsLocked() []mrpc.MapOutputRef {
	out := make([]mrpc.MapOutputRef, 0, len(j.maps))
	for t := range j.maps {
		mt := &j.maps[t]
		if len(mt.runs) == 0 {
			continue
		}
		runs := make([]mrpc.RunRef, len(mt.runs))
		copy(runs, mt.runs)
		addr := ""
		if w, ok := j.master.workers[mt.runWorker]; ok && w.alive {
			addr = w.addr
		}
		for i := range runs {
			runs[i].Addr = addr
		}
		out = append(out, mrpc.MapOutputRef{Task: t, Runs: runs})
	}
	return out
}

func (j *Job) task(phase string, idx int) *mTask {
	if phase == mrpc.PhaseMap {
		return &j.maps[idx]
	}
	return &j.reduces[idx]
}

func (m *Master) handleComplete(req *mrpc.CompleteRequest) (*mrpc.CompleteReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[req.ID.Job]
	if !ok {
		return &mrpc.CompleteReply{}, nil
	}
	t := j.task(req.ID.Phase, req.ID.Task)
	att, tracked := t.running[req.ID.Attempt]
	if tracked {
		delete(t.running, req.ID.Attempt)
		j.runningSlots--
		if w, ok := m.workers[att.worker]; ok {
			delete(w.attempts, req.ID)
		}
	}
	if !tracked || t.committed || j.failed != nil || j.isDone() {
		// Superseded, orphaned, or arriving after the job settled: the
		// worker must discard the attempt's files.
		return &mrpc.CompleteReply{}, nil
	}
	if req.Err != "" {
		j.handleLostMaps(req.LostMaps)
		t.failures++
		j.ctr.add(&j.ctr.Retries, 1)
		if t.failures >= m.cfg.MaxTaskFailures {
			j.fail(fmt.Errorf("mapreduce: %s task %d failed %d times: %s",
				req.ID.Phase, req.ID.Task, t.failures, req.Err))
		} else {
			j.requeue(req.ID.Phase, req.ID.Task)
		}
		return &mrpc.CompleteReply{}, nil
	}
	// First finisher wins. Reduce and map-only output commits by
	// rename, so the name "part-NNNNN" only ever points at one
	// attempt's complete bytes.
	if req.OutFile != "" {
		final := strings.TrimSuffix(req.OutFile, fmt.Sprintf(".a%d", req.ID.Attempt))
		if err := m.store.Rename(req.OutFile, final); err != nil {
			t.failures++
			j.ctr.add(&j.ctr.Retries, 1)
			if t.failures >= m.cfg.MaxTaskFailures {
				j.fail(fmt.Errorf("mapreduce: commit %s: %w", req.OutFile, err))
			} else {
				j.requeue(req.ID.Phase, req.ID.Task)
			}
			return &mrpc.CompleteReply{}, nil
		}
		t.outFile = final
	}
	t.committed = true
	t.runs = req.Runs
	t.runWorker = req.Worker
	j.foldCounters(req.Counters)
	// Committed attempts contribute their spans to the job's trace;
	// superseded and failed ones don't, keeping one span per task.
	m.cfg.Tracer.Attach(j.spec.Trace, req.Spans)
	if att.spec {
		j.ctr.add(&j.ctr.SpecWon, 1)
	}
	// Losing sibling attempts get kill orders on their next heartbeat.
	for _, sib := range t.running {
		if w, ok := m.workers[sib.worker]; ok {
			w.kill = append(w.kill, sib.id)
			delete(w.attempts, sib.id)
		}
		j.runningSlots--
	}
	clear(t.running)
	if req.ID.Phase == mrpc.PhaseMap {
		j.mapsDone++
		j.mapDur = append(j.mapDur, time.Since(att.started))
		if j.mapsDone == len(j.maps) {
			if j.cfg.MapOnly {
				j.finalize()
			} else {
				j.enqueueReduces()
			}
		}
	} else {
		j.redsDone++
		j.redDur = append(j.redDur, time.Since(att.started))
		if j.redsDone == len(j.reduces) {
			j.finalize()
		}
	}
	return &mrpc.CompleteReply{Accepted: true}, nil
}

// handleLostMaps resurrects committed map tasks whose spill runs a
// reduce attempt could fetch neither from their worker nor from the
// DFS. Only verifiably-gone output re-runs: if the spill files still
// stat, the fetch failure was transient and the map's work stands.
func (j *Job) handleLostMaps(lost []int) {
	for _, t := range lost {
		if t < 0 || t >= len(j.maps) {
			continue
		}
		mt := &j.maps[t]
		if !mt.committed {
			continue
		}
		gone := false
		for _, run := range mt.runs {
			if _, err := j.master.store.Stat(run.File); err != nil {
				gone = true
				break
			}
		}
		if !gone {
			continue
		}
		mt.committed = false
		mt.runs = nil
		j.mapsDone--
		j.ctr.add(&j.ctr.Retries, 1)
		j.requeue(mrpc.PhaseMap, t)
	}
}

// requeue puts a task back on its pending queue (no-op if queued or
// already running elsewhere — a surviving sibling may still commit).
func (j *Job) requeue(phase string, idx int) {
	t := j.task(phase, idx)
	if t.committed || t.queued || len(t.running) > 0 {
		return
	}
	t.queued = true
	if phase == mrpc.PhaseMap {
		j.pendingMaps = append(j.pendingMaps, idx)
	} else {
		j.pendingReds = append(j.pendingReds, idx)
	}
}

// enqueueReduces schedules every uncommitted reduce once all maps are
// committed (again, after lost-map recovery).
func (j *Job) enqueueReduces() {
	for i := range j.reduces {
		t := &j.reduces[i]
		if !t.committed && !t.queued && len(t.running) == 0 {
			t.queued = true
			j.pendingReds = append(j.pendingReds, i)
		}
	}
}

func (j *Job) foldCounters(c mrpc.TaskCounters) {
	j.ctr.add(&j.ctr.InputRecords, c.InputRecords)
	j.ctr.add(&j.ctr.MapOutputRecords, c.MapOutputRecords)
	j.ctr.add(&j.ctr.CombineInput, c.CombineInput)
	j.ctr.add(&j.ctr.CombineOutput, c.CombineOutput)
	j.ctr.add(&j.ctr.ReduceGroups, c.ReduceGroups)
	j.ctr.add(&j.ctr.OutputRecords, c.OutputRecords)
	j.ctr.add(&j.ctr.ShuffleBytes, c.ShuffleBytes)
	j.ctr.add(&j.ctr.RemoteShuffleBytes, c.RemoteShuffle)
	j.ctr.add(&j.ctr.SpillRuns, c.SpillRuns)
	j.ctr.add(&j.ctr.SpillBytes, c.SpillBytes)
	j.ctr.add(&j.ctr.MergeStreams, c.MergeStreams)
}

// fail settles the job as failed. Callers hold m.mu.
func (j *Job) fail(err error) {
	if j.failed != nil || j.isDone() {
		return
	}
	j.failed = err
	j.settle()
}

// finalize settles the job as succeeded: output files in task order,
// committed spill runs deleted. Callers hold m.mu.
func (j *Job) finalize() {
	tasks := j.reduces
	if j.cfg.MapOnly {
		tasks = j.maps
	}
	j.outputs = j.outputs[:0]
	for i := range tasks {
		if tasks[i].outFile != "" {
			j.outputs = append(j.outputs, tasks[i].outFile)
		}
	}
	j.settle()
}

// settle kills stragglers, cleans committed shuffle state and closes
// doneCh. Running attempts clean their own spills when the kill
// lands; their completes arrive after settle and are rejected.
func (j *Job) settle() {
	j.dur = time.Since(j.start)
	if j.span != nil {
		if j.failed != nil {
			j.span.Annotate("failed: %v", j.failed)
		}
		j.span.End()
	}
	for ti := range j.maps {
		t := &j.maps[ti]
		j.killRunningLocked(t)
		for _, run := range t.runs {
			_ = j.master.store.Delete(run.File)
		}
		t.runs = nil
	}
	for ti := range j.reduces {
		j.killRunningLocked(&j.reduces[ti])
	}
	close(j.doneCh)
}

func (j *Job) killRunningLocked(t *mTask) {
	for _, att := range t.running {
		if w, ok := j.master.workers[att.worker]; ok {
			w.kill = append(w.kill, att.id)
			delete(w.attempts, att.id)
		}
		j.runningSlots--
	}
	clear(t.running)
}

// ---- monitor: liveness + speculation ----

func (m *Master) monitor() {
	defer m.monWG.Done()
	ticker := time.NewTicker(m.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopMon:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		now := time.Now()
		for _, w := range m.workers {
			if w.alive && now.Sub(w.lastBeat) > m.cfg.Lease {
				m.declareDeadLocked(w)
			}
		}
		for _, j := range m.jobs {
			j.speculateLocked(now)
		}
		m.mu.Unlock()
	}
}

// declareDeadLocked expires a worker's lease: its in-flight attempts
// are struck and their tasks re-queued. Its committed map runs stay
// — the spill files live on the DFS — but reducers stop being
// pointed at its shuffle server.
func (m *Master) declareDeadLocked(w *mWorker) {
	w.alive = false
	for id, att := range w.attempts {
		j, ok := m.jobs[id.Job]
		if !ok {
			continue
		}
		t := j.task(id.Phase, id.Task)
		delete(t.running, id.Attempt)
		j.runningSlots--
		if !t.committed && j.failed == nil && !j.isDone() {
			j.ctr.add(&j.ctr.Retries, 1)
			j.requeue(id.Phase, id.Task)
		}
		_ = att
	}
	w.attempts = make(map[mrpc.AttemptID]*mAttempt)
}

// speculateLocked launches bounded backup attempts for stragglers:
// when a phase has no fresh work pending and a task's single attempt
// is projected (by reported progress rate, or elapsed time when
// progress is unknown) to run well past the median committed
// duration, a duplicate is queued. First finisher wins.
func (j *Job) speculateLocked(now time.Time) {
	if !j.cfg.Speculative || j.failed != nil || j.isDone() || j.specLaunched >= j.specCap {
		return
	}
	if len(j.pendingMaps) > 0 || len(j.pendingReds) > 0 || len(j.specQ) > 0 {
		return
	}
	phase, tasks, durs := mrpc.PhaseMap, j.maps, j.mapDur
	if j.mapsDone == len(j.maps) {
		if j.cfg.MapOnly {
			return
		}
		phase, tasks, durs = mrpc.PhaseReduce, j.reduces, j.redDur
	}
	if len(durs) == 0 {
		return
	}
	med := medianDuration(durs)
	threshold := time.Duration(float64(med) * j.cfg.StragglerFactor)
	for i := range tasks {
		t := &tasks[i]
		if t.committed || t.specStarted || len(t.running) != 1 {
			continue
		}
		var att *mAttempt
		for _, a := range t.running {
			att = a
		}
		elapsed := now.Sub(att.started)
		slow := elapsed > threshold
		if !slow && att.progress > 0.01 && elapsed > med/2 {
			// Progress-rate projection: a task crawling at 10% speed
			// is flagged long before its elapsed time alone would be.
			slow = time.Duration(float64(elapsed)/att.progress) > threshold
		}
		if !slow {
			continue
		}
		t.specStarted = true
		j.specQ = append(j.specQ, mrpc.TaskKey{Job: j.ID, Phase: phase, Task: i})
		j.specLaunched++
		j.ctr.add(&j.ctr.SpecLaunched, 1)
		if j.specLaunched >= j.specCap {
			return
		}
	}
}

// ---- DFS proxy: storage access for out-of-process workers ----

func (m *Master) mountProxy(mux *http.ServeMux) {
	c := m.cfg.Cluster
	mrpc.Handle(mux, mrpc.PathProxyStat, func(req *struct {
		Name string `json:"name"`
	}) (*mrpc.StatReply, error) {
		info, err := c.Stat(req.Name)
		if err != nil {
			return nil, proxyErr(err)
		}
		return &mrpc.StatReply{Size: int64(info.Size), Complete: info.Complete}, nil
	})
	mrpc.Handle(mux, mrpc.PathProxyDelete, func(req *struct {
		Name string `json:"name"`
	}) (*struct{}, error) {
		if err := c.Delete(req.Name); err != nil {
			return nil, proxyErr(err)
		}
		return &struct{}{}, nil
	})
	mrpc.Handle(mux, mrpc.PathProxyRename, func(req *struct {
		Old string `json:"old"`
		New string `json:"new"`
	}) (*struct{}, error) {
		if err := c.Rename(req.Old, req.New); err != nil {
			return nil, proxyErr(err)
		}
		return &struct{}{}, nil
	})
	mux.HandleFunc("GET "+mrpc.PathProxyRead, func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
		length, _ := strconv.ParseInt(q.Get("len"), 10, 64)
		f, err := c.Open(q.Get("name"), q.Get("hint"))
		if err != nil {
			writeProxyErr(w, err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
		_, _ = io.Copy(w, io.NewSectionReader(f, off, length))
	})
	mux.HandleFunc("PUT "+mrpc.PathProxyCreate, func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		fw, err := c.Create(q.Get("name"), q.Get("hint"))
		if err != nil {
			writeProxyErr(w, err)
			return
		}
		if _, err := io.Copy(fw, r.Body); err != nil {
			_ = fw.Close()
			_ = c.Delete(q.Get("name"))
			writeProxyErr(w, err)
			return
		}
		if err := fw.Close(); err != nil {
			_ = c.Delete(q.Get("name"))
			writeProxyErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

func proxyErr(err error) error {
	if errors.Is(err, dfs.ErrNotFound) {
		return fmt.Errorf("%w: %v", mrpc.ErrNotFound, err)
	}
	return err
}

func writeProxyErr(w http.ResponseWriter, err error) {
	if errors.Is(err, dfs.ErrNotFound) {
		mrpc.WriteError(w, http.StatusNotFound, "not_found", err.Error())
		return
	}
	mrpc.WriteError(w, http.StatusInternalServerError, "internal", err.Error())
}

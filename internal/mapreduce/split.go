package mapreduce

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/dfs"
	"repro/internal/mrpc"
)

// split is one schedulable unit of input: a block-aligned byte range
// of one file, annotated with the nodes holding a replica.
type split struct {
	file      string
	offset    int64
	length    int64
	locations []string
}

// buildSplits produces one split per block of each input, the Hadoop
// default. Empty files contribute no splits.
func buildSplits(cluster *dfs.Cluster, inputs []string) ([]split, error) {
	var out []split
	for _, name := range inputs {
		info, err := cluster.Stat(name)
		if err != nil {
			return nil, err
		}
		locs, err := cluster.BlockLocations(name)
		if err != nil {
			return nil, err
		}
		blockSize := int64(cluster.Config().BlockSize)
		remaining := int64(info.Size)
		off := int64(0)
		for i := 0; remaining > 0; i++ {
			l := blockSize
			if l > remaining {
				l = remaining
			}
			var nodes []string
			if i < len(locs) {
				nodes = locs[i]
			}
			out = append(out, split{file: name, offset: off, length: l, locations: nodes})
			off += l
			remaining -= l
		}
	}
	return out, nil
}

// ref converts a split to its wire form.
func (s split) ref() *mrpc.SplitRef {
	return &mrpc.SplitRef{File: s.file, Offset: s.offset, Length: s.length}
}

// fromRef rebuilds a schedulable split from its wire form.
func fromRef(r *mrpc.SplitRef) split {
	return split{file: r.File, offset: r.Offset, length: r.Length}
}

// readRecords feeds a split's records to fn according to the format.
// node is the reading task's node, passed to the store as locality hint.
func readRecords(store Store, s split, format InputFormat, node string,
	fn func(key string, value []byte) error) error {
	switch format {
	case WholeSplitInput:
		r, err := store.Open(s.file, node)
		if err != nil {
			return err
		}
		defer r.Close()
		buf := make([]byte, s.length)
		if _, err := r.ReadAt(buf, s.offset); err != nil && err != io.EOF {
			return err
		}
		key := fmt.Sprintf("%s:%d", s.file, s.offset)
		return fn(key, buf)
	case TextInput:
		return readTextRecords(store, s, node, fn)
	}
	return fmt.Errorf("mapreduce: unknown input format %d", format)
}

// readTextRecords implements the TextInputFormat boundary convention:
// a split that does not start at offset zero discards the first
// (partial) line; every split reads its final line to completion even
// when that crosses into the next block.
func readTextRecords(store Store, s split, node string,
	fn func(key string, value []byte) error) error {
	r, err := store.Open(s.file, node)
	if err != nil {
		return err
	}
	defer r.Close()
	if _, err := r.Seek(s.offset, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(r, 64*1024)
	pos := s.offset
	if s.offset > 0 {
		skipped, err := br.ReadBytes('\n')
		pos += int64(len(skipped))
		if err == io.EOF {
			return nil // split began inside the file's final line
		}
		if err != nil {
			return err
		}
	}
	// A line starting exactly at end belongs to THIS split (the next
	// split unconditionally discards its first line), hence <=, the
	// same convention as Hadoop's LineRecordReader.
	end := s.offset + s.length
	for pos <= end {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			return nil
		}
		start := pos
		pos += int64(len(line))
		// Trim the newline; tolerate a final unterminated line.
		trimmed := line
		if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
			trimmed = trimmed[:n-1]
		}
		if ferr := fn(strconv.FormatInt(start, 10), trimmed); ferr != nil {
			return ferr
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

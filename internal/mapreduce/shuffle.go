package mapreduce

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/dfs"
)

// runReducePhase merges each partition's intermediate runs into a
// reducer and writes one part file per reducer to the dfs. Reduce
// workers honor the same per-node slot budget as map tasks: each node
// gets SlotsPerNode workers bound to it, pulling partitions from a
// shared queue, and a partition's output lands on the node that ran
// it (the write hint).
func (e *engine) runReducePhase() ([]string, error) {
	r := e.cfg.NumReducers
	e.ctr.add(&e.ctr.ReduceTasks, int64(r))

	jobs := make(chan int)
	outputs := make([]string, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	for _, node := range e.nodes {
		for s := 0; s < e.cfg.SlotsPerNode; s++ {
			wg.Add(1)
			go func(node string) {
				defer wg.Done()
				for p := range jobs {
					name, err := e.runReduceTask(p, node)
					outputs[p] = name
					errs[p] = err
				}
			}(node)
		}
	}
	for p := 0; p < r; p++ {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outputs, nil
}

// runReduceTask runs partition p to completion with the same
// fault-tolerance contract as map tasks: up to MaxAttempts attempts,
// each re-reading the spill segments from scratch, with the partial
// output of a failed attempt deleted before the next one. Exhausted
// attempts surface the last error, wrapped.
func (e *engine) runReduceTask(p int, node string) (string, error) {
	name := fmt.Sprintf("%s/part-%05d", trimDir(e.cfg.OutputDir), p)
	var lastErr error
	for attempt := 1; attempt <= e.cfg.MaxAttempts; attempt++ {
		err := e.reduceAttempt(p, node, attempt, name)
		if err == nil {
			return name, nil
		}
		lastErr = err
		if attempt < e.cfg.MaxAttempts {
			e.ctr.add(&e.ctr.Retries, 1)
		}
	}
	return "", fmt.Errorf("mapreduce: reduce task %d failed after %d attempts: %w",
		p, e.cfg.MaxAttempts, lastErr)
}

// reduceAttempt streams partition p once: open every committed map
// task's runs for the partition, k-way merge them, feed grouped
// values to the streaming reducer, and write "key\tvalue" lines
// incrementally through a dfs.FileWriter. Counters commit only on
// success so retries never double-count.
func (e *engine) reduceAttempt(p int, node string, attempt int, name string) (err error) {
	if e.cfg.reduceHook != nil {
		if done := e.cfg.reduceHook(p, attempt, node); done != nil {
			defer done()
		}
	}
	m, closeStreams, err := e.openPartition(p, node)
	if err != nil {
		return err
	}
	defer closeStreams()

	w, err := e.rt.store.Create(name, node)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = w.Close() // idempotent; releases the pooled block buffer
			_ = e.rt.store.Delete(name)
		}
	}()
	out := io.Writer(w)
	if e.cfg.reduceWriter != nil {
		out = e.cfg.reduceWriter(p, attempt, node, w)
	}

	lw := &lineWriter{w: out}
	groups, err := drainGroups(m, e.cfg.streamingReducer(), lw.emit, lw.fail)
	if err != nil {
		return fmt.Errorf("mapreduce: reduce partition %d: %w", p, err)
	}
	if cerr := w.Close(); cerr != nil {
		return cerr
	}
	e.ctr.add(&e.ctr.ReduceGroups, groups)
	e.ctr.add(&e.ctr.OutputRecords, lw.n)
	e.ctr.add(&e.ctr.ShuffleBytes, m.bytes)
	return nil
}

// openPartition builds the merge inputs for partition p across every
// committed map task, in task index order.
func (e *engine) openPartition(p int, node string) (*merger, func(), error) {
	var srcs []mergeSource
	var cursors []*spillCursor
	closeAll := func() {
		for _, c := range cursors {
			c.close()
		}
	}
	var err error
	for t, out := range e.mapOut {
		if out == nil {
			continue
		}
		srcs, cursors, err = e.rt.appendTaskSources(srcs, cursors, out, t, p, node)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
	}
	e.ctr.add(&e.ctr.MergeStreams, int64(len(srcs)))
	m, err := newMerger(srcs)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	return m, closeAll, nil
}

// ReadTextOutput collects a finished job's part files into a map from
// key to the values emitted for it, in emission order. It is a test
// and example convenience for jobs with text keys/values.
func ReadTextOutput(cluster *dfs.Cluster, files []string) (map[string][]string, error) {
	out := make(map[string][]string)
	for _, f := range files {
		data, err := cluster.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			k, v, ok := strings.Cut(line, "\t")
			if !ok {
				return nil, fmt.Errorf("mapreduce: malformed output line %q in %s", line, f)
			}
			out[k] = append(out[k], v)
		}
	}
	return out, nil
}

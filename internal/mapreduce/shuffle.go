package mapreduce

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dfs"
)

// runReducePhase shuffles each partition's intermediate pairs into a
// reducer and writes one part file per reducer to the dfs. Reduce
// tasks are assigned to nodes round-robin and run under the same
// per-node slot budget as map tasks.
func (e *engine) runReducePhase() ([]string, error) {
	r := e.cfg.NumReducers
	e.ctr.add(&e.ctr.ReduceTasks, int64(r))

	type job struct{ part int }
	jobs := make(chan job)
	outputs := make([]string, r)
	errs := make([]error, r)
	var wg sync.WaitGroup

	workers := len(e.nodes) * e.cfg.SlotsPerNode
	if workers > r {
		workers = r
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				node := e.nodes[j.part%len(e.nodes)]
				name, err := e.runReduceTask(j.part, node)
				outputs[j.part] = name
				errs[j.part] = err
			}
		}()
	}
	for p := 0; p < r; p++ {
		jobs <- job{part: p}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outputs, nil
}

// runReduceTask merges partition p from every map task, groups by key
// and writes the reducer output as "key\tvalue" lines.
func (e *engine) runReduceTask(p int, node string) (string, error) {
	// Merge in task-index order, then stable sort: value order within
	// a key is (map task, emission order), independent of scheduling.
	var merged []kv
	var shuffled int64
	for t := range e.mapOut {
		part := e.mapOut[t]
		if p < len(part) {
			merged = append(merged, part[p]...)
			for _, pair := range part[p] {
				shuffled += int64(len(pair.key) + len(pair.val))
			}
		}
	}
	e.ctr.add(&e.ctr.ShuffleBytes, shuffled)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].key < merged[j].key })

	var buf bytes.Buffer
	var outRecords int64
	emit := func(key string, value []byte) {
		buf.WriteString(key)
		buf.WriteByte('\t')
		buf.Write(value)
		buf.WriteByte('\n')
		outRecords++
	}
	reducer := e.cfg.Reducer
	if reducer == nil {
		reducer = identityReducer{}
	}
	i := 0
	var groups int64
	for i < len(merged) {
		j := i
		for j < len(merged) && merged[j].key == merged[i].key {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, pair := range merged[i:j] {
			vals = append(vals, pair.val)
		}
		groups++
		if err := reducer.Reduce(merged[i].key, vals, emit); err != nil {
			return "", fmt.Errorf("mapreduce: reduce partition %d key %q: %w", p, merged[i].key, err)
		}
		i = j
	}
	e.ctr.add(&e.ctr.ReduceGroups, groups)
	e.ctr.add(&e.ctr.OutputRecords, outRecords)

	name := fmt.Sprintf("%s/part-%05d", strings.TrimRight(e.cfg.OutputDir, "/"), p)
	if err := e.cluster.WriteFile(name, node, buf.Bytes()); err != nil {
		return "", err
	}
	return name, nil
}

// identityReducer passes every value through under its key.
type identityReducer struct{}

func (identityReducer) Reduce(key string, values [][]byte, emit Emit) error {
	for _, v := range values {
		emit(key, v)
	}
	return nil
}

// ReadTextOutput collects a finished job's part files into a map from
// key to the values emitted for it, in emission order. It is a test
// and example convenience for jobs with text keys/values.
func ReadTextOutput(cluster *dfs.Cluster, files []string) (map[string][]string, error) {
	out := make(map[string][]string)
	for _, f := range files {
		data, err := cluster.ReadFile(f, "")
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			k, v, ok := strings.Cut(line, "\t")
			if !ok {
				return nil, fmt.Errorf("mapreduce: malformed output line %q in %s", line, f)
			}
			out[k] = append(out[k], v)
		}
	}
	return out, nil
}

package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func newArray(t *testing.T) (*sim.Engine, *Array) {
	t.Helper()
	eng := sim.New(1)
	// The paper's DDN array: 0.5 PB; pick 5 GB/s controller bandwidth.
	a := NewArray(eng, "ddn", 500*units.TB, units.Rate(5*units.GB))
	return eng, a
}

func TestVolumeAllocFree(t *testing.T) {
	_, a := newArray(t)
	if _, err := a.CreateVolume("itg", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("itg", 100*units.TB); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 100*units.TB {
		t.Fatalf("used = %v", a.Used())
	}
	if got := a.FreeSpace(); got != 400*units.TB {
		t.Fatalf("free = %v", got)
	}
	if err := a.Free("itg", 60*units.TB); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 40*units.TB {
		t.Fatalf("used after free = %v", a.Used())
	}
}

func TestAllocErrors(t *testing.T) {
	_, a := newArray(t)
	if _, err := a.CreateVolume("v", 10*units.TB); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("ghost", units.TB); !errors.Is(err, ErrNoVolume) {
		t.Fatalf("err = %v, want ErrNoVolume", err)
	}
	if err := a.Alloc("v", 11*units.TB); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	if err := a.Alloc("v", -1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if _, err := a.CreateVolume("v", 0); err == nil {
		t.Fatal("duplicate volume accepted")
	}
	if err := a.Free("v", units.TB); err == nil {
		t.Fatal("over-free accepted")
	}
}

func TestArrayFull(t *testing.T) {
	_, a := newArray(t)
	if _, err := a.CreateVolume("v", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("v", 500*units.TB); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("v", 1); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestTransferTiming(t *testing.T) {
	eng, a := newArray(t)
	var took time.Duration
	a.Write(50*units.GB, func() { took = eng.Now() })
	eng.Run()
	want := 10 * time.Second // 50 GB at 5 GB/s
	if math.Abs(took.Seconds()-want.Seconds()) > 0.01 {
		t.Fatalf("write took %v, want %v", took, want)
	}
	if a.BytesWritten() != 50*units.GB {
		t.Fatalf("written = %v", a.BytesWritten())
	}
}

func TestProcessorSharing(t *testing.T) {
	eng, a := newArray(t)
	var t1, t2 time.Duration
	a.Write(10*units.GB, func() { t1 = eng.Now() })
	a.Write(10*units.GB, func() { t2 = eng.Now() })
	eng.Run()
	// Two equal transfers share 5 GB/s -> both complete at 4s.
	if math.Abs(t1.Seconds()-4) > 0.01 || math.Abs(t2.Seconds()-4) > 0.01 {
		t.Fatalf("shared transfers completed at %v, %v; want 4s", t1, t2)
	}
}

func TestShortTransferDeparts(t *testing.T) {
	eng, a := newArray(t)
	var longDone time.Duration
	a.Write(20*units.GB, func() { longDone = eng.Now() })
	a.Write(5*units.GB, func() {})
	eng.Run()
	// Short departs at 2s (5GB at 2.5GB/s); long then has 15GB left at
	// 5GB/s -> 3s more. Total 5s.
	if math.Abs(longDone.Seconds()-5) > 0.02 {
		t.Fatalf("long transfer done at %v, want 5s", longDone)
	}
}

func TestZeroByteTransfer(t *testing.T) {
	eng, a := newArray(t)
	fired := false
	a.Read(0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero-byte transfer should complete")
	}
}

func TestMeanUtilization(t *testing.T) {
	eng, a := newArray(t)
	if _, err := a.CreateVolume("v", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc("v", 250*units.TB); err != nil { // 50%
		t.Fatal(err)
	}
	eng.RunUntil(time.Hour)
	if u := a.MeanUtilization(); math.Abs(u-0.5) > 0.01 {
		t.Fatalf("mean utilization = %f", u)
	}
	if u := a.Utilization(); u != 0.5 {
		t.Fatalf("instant utilization = %f", u)
	}
}

func TestVolumesSorted(t *testing.T) {
	_, a := newArray(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := a.CreateVolume(n, 0); err != nil {
			t.Fatal(err)
		}
	}
	vols := a.Volumes()
	if len(vols) != 3 || vols[0].Name != "alpha" || vols[1].Name != "mid" || vols[2].Name != "zeta" {
		t.Fatalf("volumes %v", vols)
	}
}

// Property: alloc/free sequences never let used exceed capacity or go
// negative, and used equals the sum over volumes.
func TestAccountingInvariantQuick(t *testing.T) {
	f := func(ops []int16) bool {
		eng := sim.New(2)
		a := NewArray(eng, "x", 1000, units.Rate(units.GB))
		if _, err := a.CreateVolume("v", 0); err != nil {
			return false
		}
		for _, op := range ops {
			amt := units.Bytes(op)
			if amt >= 0 {
				_ = a.Alloc("v", amt%200)
			} else {
				_ = a.Free("v", (-amt)%200)
			}
			if a.Used() < 0 || a.Used() > a.Capacity {
				return false
			}
			v, _ := a.Volume("v")
			if v.Used() != a.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: n equal concurrent transfers all finish at n × single time
// (processor sharing is fair and work-conserving).
func TestSharingFairnessQuick(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%8) + 1
		eng := sim.New(3)
		a := NewArray(eng, "x", units.PB, units.Rate(units.GB))
		finish := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			a.Write(units.GB, func() { finish = append(finish, eng.Now()) })
		}
		eng.Run()
		if len(finish) != n {
			return false
		}
		want := float64(n) // n GB-transfers at 1 GB/s shared
		for _, ft := range finish {
			if math.Abs(ft.Seconds()-want) > 0.01*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

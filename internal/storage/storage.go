// Package storage models the LSDF disk systems (slide 7: a 0.5 PB DDN
// array and a 1.4 PB IBM array behind the 10 GE backbone) at the level
// that matters for the paper's experiments: capacity accounting per
// volume and processor-sharing of the array's aggregate controller
// bandwidth among concurrent transfers.
package storage

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// ErrFull is returned when an allocation exceeds remaining capacity.
var ErrFull = errors.New("storage: array full")

// ErrNoVolume is returned when addressing an unknown volume.
var ErrNoVolume = errors.New("storage: no such volume")

// ErrQuota is returned when an allocation exceeds the volume quota.
var ErrQuota = errors.New("storage: volume quota exceeded")

// Volume is a named slice of an array with an optional quota.
type Volume struct {
	Name  string
	Quota units.Bytes // 0 = unlimited (bounded by the array)
	used  units.Bytes
}

// Used returns the bytes allocated in the volume.
func (v *Volume) Used() units.Bytes { return v.used }

// Array is one disk storage system.
type Array struct {
	Name      string
	Capacity  units.Bytes
	Bandwidth units.Rate // aggregate controller throughput

	eng     *sim.Engine
	used    units.Bytes
	usedTW  *sim.TimeWeighted
	volumes map[string]*Volume

	// processor-sharing transfer state
	active  map[*transfer]struct{}
	nextEv  *sim.Event
	written units.Bytes
	read    units.Bytes
	nextID  int
}

type transfer struct {
	id        int
	remaining float64
	last      time.Duration
	done      func()
}

// NewArray creates an array model.
func NewArray(eng *sim.Engine, name string, capacity units.Bytes, bandwidth units.Rate) *Array {
	return &Array{
		Name:      name,
		Capacity:  capacity,
		Bandwidth: bandwidth,
		eng:       eng,
		usedTW:    sim.NewTimeWeighted(eng),
		volumes:   make(map[string]*Volume),
		active:    make(map[*transfer]struct{}),
	}
}

// CreateVolume registers a named volume; quota 0 means unlimited.
func (a *Array) CreateVolume(name string, quota units.Bytes) (*Volume, error) {
	if _, ok := a.volumes[name]; ok {
		return nil, fmt.Errorf("storage: volume %q exists", name)
	}
	v := &Volume{Name: name, Quota: quota}
	a.volumes[name] = v
	return v, nil
}

// Volume returns a volume by name.
func (a *Array) Volume(name string) (*Volume, bool) {
	v, ok := a.volumes[name]
	return v, ok
}

// Volumes lists volumes sorted by name.
func (a *Array) Volumes() []*Volume {
	out := make([]*Volume, 0, len(a.volumes))
	for _, v := range a.volumes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Alloc reserves b bytes in the named volume.
func (a *Array) Alloc(volume string, b units.Bytes) error {
	if b < 0 {
		return fmt.Errorf("storage: negative allocation %d", b)
	}
	v, ok := a.volumes[volume]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoVolume, volume)
	}
	if a.used+b > a.Capacity {
		return fmt.Errorf("%w: %s + %s > %s", ErrFull, a.used.SI(), b.SI(), a.Capacity.SI())
	}
	if v.Quota > 0 && v.used+b > v.Quota {
		return fmt.Errorf("%w: volume %q", ErrQuota, volume)
	}
	a.used += b
	v.used += b
	a.usedTW.Set(float64(a.used))
	return nil
}

// Free releases b bytes from the named volume.
func (a *Array) Free(volume string, b units.Bytes) error {
	v, ok := a.volumes[volume]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoVolume, volume)
	}
	if b > v.used {
		return fmt.Errorf("storage: freeing %s from volume %q holding %s", b.SI(), volume, v.used.SI())
	}
	v.used -= b
	a.used -= b
	a.usedTW.Set(float64(a.used))
	return nil
}

// Used returns the allocated byte count.
func (a *Array) Used() units.Bytes { return a.used }

// FreeSpace returns the unallocated byte count.
func (a *Array) FreeSpace() units.Bytes { return a.Capacity - a.used }

// Utilization returns used/capacity at the current instant.
func (a *Array) Utilization() float64 {
	if a.Capacity == 0 {
		return 0
	}
	return float64(a.used) / float64(a.Capacity)
}

// MeanUtilization returns the time-averaged utilization.
func (a *Array) MeanUtilization() float64 {
	if a.Capacity == 0 {
		return 0
	}
	return a.usedTW.Mean() / float64(a.Capacity)
}

// BytesWritten and BytesRead report cumulative transfer volumes.
func (a *Array) BytesWritten() units.Bytes { return a.written }

// BytesRead reports cumulative read volume.
func (a *Array) BytesRead() units.Bytes { return a.read }

// Write models moving b bytes into the array; done fires when the
// transfer drains through the shared controller bandwidth. Capacity
// accounting is the caller's business (Alloc/Free), keeping the
// bandwidth model orthogonal to placement decisions.
func (a *Array) Write(b units.Bytes, done func()) {
	a.written += b
	a.startTransfer(b, done)
}

// Read models moving b bytes out of the array.
func (a *Array) Read(b units.Bytes, done func()) {
	a.read += b
	a.startTransfer(b, done)
}

func (a *Array) startTransfer(b units.Bytes, done func()) {
	if b <= 0 {
		if done != nil {
			a.eng.Schedule(0, done)
		}
		return
	}
	t := &transfer{id: a.nextID, remaining: float64(b), last: a.eng.Now(), done: done}
	a.nextID++
	a.drain()
	a.active[t] = struct{}{}
	a.reschedule()
}

// drain advances all active transfers at the current equal share.
func (a *Array) drain() {
	now := a.eng.Now()
	n := len(a.active)
	if n == 0 {
		return
	}
	share := float64(a.Bandwidth) / float64(n)
	for t := range a.active {
		dt := (now - t.last).Seconds()
		if dt > 0 {
			moved := share * dt
			if moved > t.remaining {
				moved = t.remaining
			}
			t.remaining -= moved
		}
		t.last = now
	}
}

func (a *Array) reschedule() {
	if a.nextEv != nil {
		a.eng.Cancel(a.nextEv)
		a.nextEv = nil
	}
	n := len(a.active)
	if n == 0 {
		return
	}
	share := float64(a.Bandwidth) / float64(n)
	if share <= 0 {
		return
	}
	eta := math.Inf(1)
	for t := range a.active {
		if s := t.remaining / share; s < eta {
			eta = s
		}
	}
	delay := time.Duration(eta * float64(time.Second))
	if delay < time.Nanosecond {
		// Guarantee clock progress: a residue above the completion
		// epsilon must not re-arm at zero delay forever.
		delay = time.Nanosecond
	}
	a.nextEv = a.eng.Schedule(delay, a.complete)
}

func (a *Array) complete() {
	a.nextEv = nil
	a.drain()
	const eps = 0.5
	var finished []*transfer
	for t := range a.active {
		if t.remaining <= eps {
			finished = append(finished, t)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, t := range finished {
		delete(a.active, t)
	}
	a.reschedule()
	for _, t := range finished {
		if t.done != nil {
			t.done()
		}
	}
}

// ActiveTransfers returns the number of in-flight transfers.
func (a *Array) ActiveTransfers() int { return len(a.active) }

// Package readcache is the per-site hot-set cache in front of the
// federation: a read-through adal.Backend wrapper with a
// byte-budgeted in-memory tier and a local-disk tier, sitting between
// callers and (typically) replication.FederatedBackend so repeated
// reads of remote objects stop re-crossing the WAN — the caching
// proxies the AAA federation pairs with its redirector.
//
// The cache is scan-resistant and size-aware: each tier is a
// segmented (2Q-style) LRU whose probationary segment absorbs
// one-touch traffic, and an admission gate rejects objects larger
// than a fraction of the tier budget, so one cold huge object cannot
// evict the working set. Concurrent misses of the same object
// coalesce onto a single fill (the PR 4 recall op-map, generalized),
// every fill is SHA-256-verified against the replica catalog's
// recorded content hash, and invalidation rides the metadata event
// bus: a dropped/deleted object is evicted everywhere, while
// stale/lost replica transitions evict only entries whose bytes were
// never checksum-verified — verified entries of immutable objects
// stay correct no matter which site died, which is what lets the
// cache keep serving the hot set straight through a site outage.
package readcache

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/units"
)

// Config tunes a Cache. Zero Memory disables the memory tier; nil
// Disk disables the disk tier; with both disabled the cache is a
// transparent pass-through.
type Config struct {
	// Memory is the in-memory tier's byte budget.
	Memory units.Bytes
	// Disk is the backend holding the disk tier (a LocalFS in
	// production, a MemFS in tests); DiskBudget is its byte budget.
	Disk       adal.Backend
	DiskBudget units.Bytes
	// AdmitFraction caps a single object at this fraction of a tier's
	// budget (default 0.25): anything larger bypasses the tier.
	AdmitFraction float64
	// ProtectedFraction is the share of a tier's budget reserved for
	// the protected (re-referenced) segment (default 0.75).
	ProtectedFraction float64
	// NegTTL enables negative caching when > 0: an Open or Stat that
	// misses everywhere and comes back not-found records the path for
	// this long, and lookups within the TTL answer not-found without
	// re-crossing the WAN — the federation probes every site before
	// concluding absence, so a repeated not-found is the most expensive
	// miss there is. Entries expire after the TTL and are invalidated
	// early by a create: through this cache directly, or by a created
	// event on the bus.
	NegTTL time.Duration
	// NegEntries bounds the negative set (default 1024); the oldest
	// recorded path falls out when full.
	NegEntries int
	// Meta, when set, drives invalidation: the cache subscribes to
	// replica and delete events on the store's bus.
	Meta *metadata.Store
	// MountPrefix is the federated mount prefix of the inner backend
	// (e.g. "/sites"); event paths are trimmed by it to recover
	// backend-relative cache keys.
	MountPrefix string
	// Obs, when set, receives the cache's fill-latency histogram.
	// Hit/miss/fill counters are sampled from Stats() at exposition
	// time instead, so the cached-hit path carries zero new cost.
	Obs *obs.Registry
}

// checksumReporter is implemented by backends that can report an
// object's recorded content hash and size without reading it
// (FederatedBackend delegates to the replica catalog). The cache
// discovers it structurally, like the DataBrowser's reporters.
type checksumReporter interface {
	ObjectChecksum(rel string) (sum string, size units.Bytes, ok bool)
}

type placementReporter interface {
	Placement(rel string) (string, bool)
}

type replicaReporter interface {
	ReplicaSites(rel string) ([]string, bool)
}

// fillOp is one in-flight miss fill; concurrent readers of the same
// path wait on done instead of opening their own WAN stream.
type fillOp struct {
	done        chan struct{}
	err         error
	invalidated bool // remove/delete arrived mid-fill: do not insert
}

// Cache is a two-tier read-through cache over any adal.Backend.
// All methods are safe for concurrent use.
type Cache struct {
	inner adal.Backend
	cfg   Config

	mu   sync.Mutex
	mem  *segLRU // nil when the memory tier is disabled
	disk *segLRU // nil when the disk tier is disabled
	ops  map[string]*fillOp
	neg  map[string]time.Time // not-found paths -> expiry (nil when NegTTL is 0)
	negQ []string             // insertion order, for bounded FIFO eviction

	unsub func()

	memHits       atomic.Uint64
	diskHits      atomic.Uint64
	misses        atomic.Uint64
	bypasses      atomic.Uint64
	fills         atomic.Uint64
	fillBytes     atomic.Uint64
	dedups        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	fillErrors    atomic.Uint64
	negHits       atomic.Uint64

	// fillHist times miss fills (nil without Config.Obs; Observe on a
	// nil histogram is a no-op). Fills are WAN-scale, so the
	// histogram's cost disappears into the stream time.
	fillHist *obs.Histogram
}

var _ adal.Backend = (*Cache)(nil)

// New wraps inner with a read-through cache. When the disk tier's
// backend already holds objects (a restarted lsdfctl state dir), they
// are re-admitted as unverified entries — served until the first
// replica event casts doubt on them.
func New(inner adal.Backend, cfg Config) *Cache {
	if cfg.AdmitFraction <= 0 || cfg.AdmitFraction > 1 {
		cfg.AdmitFraction = 0.25
	}
	if cfg.ProtectedFraction <= 0 || cfg.ProtectedFraction >= 1 {
		cfg.ProtectedFraction = 0.75
	}
	if cfg.NegEntries <= 0 {
		cfg.NegEntries = 1024
	}
	c := &Cache{inner: inner, cfg: cfg, ops: make(map[string]*fillOp)}
	if cfg.Obs != nil {
		c.fillHist = cfg.Obs.Histogram("lsdf_cache_fill_ns",
			"Miss fill duration: inner (often WAN) read, hash, tier insert.")
	}
	if cfg.NegTTL > 0 {
		c.neg = make(map[string]time.Time)
	}
	if cfg.Memory > 0 {
		c.mem = newSegLRU(cfg.Memory, cfg.ProtectedFraction, cfg.AdmitFraction)
	}
	if cfg.Disk != nil && cfg.DiskBudget > 0 {
		c.disk = newSegLRU(cfg.DiskBudget, cfg.ProtectedFraction, cfg.AdmitFraction)
		c.recoverDisk()
	}
	if cfg.Meta != nil {
		c.unsub = cfg.Meta.Subscribe(c.onEvent)
	}
	return c
}

// recoverDisk re-admits objects left in the disk backend by a prior
// process. They enter probation unverified: usable immediately, but
// the first stale/lost event on their path evicts them.
func (c *Cache) recoverDisk() {
	infos, err := c.cfg.Disk.List("/")
	if err != nil {
		return
	}
	var stray []string
	c.mu.Lock()
	for _, info := range infos {
		if !c.disk.admits(info.Size) {
			stray = append(stray, info.Path)
			continue
		}
		for _, e := range c.disk.add(&centry{path: info.Path, size: info.Size}) {
			stray = append(stray, e.path)
		}
	}
	c.mu.Unlock()
	for _, p := range stray {
		_ = c.cfg.Disk.Remove(p)
	}
}

// Close detaches the cache from the event bus. Cached entries remain
// readable; without invalidation they may go stale, so Close belongs
// at teardown only.
func (c *Cache) Close() {
	if c.unsub != nil {
		c.unsub()
		c.unsub = nil
	}
}

// Name implements adal.Backend transparently.
func (c *Cache) Name() string { return c.inner.Name() }

// negLookup reports whether path has a live cached not-found; expired
// entries are dropped in passing.
func (c *Cache) negLookup(path string) bool {
	if c.neg == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.neg[path]
	if !ok {
		return false
	}
	if time.Now().After(exp) {
		delete(c.neg, path)
		return false
	}
	return true
}

// negStore records a not-found path; a re-recorded path just renews
// its TTL, a fresh one may push the oldest recording out of the
// bounded set.
func (c *Cache) negStore(path string) {
	if c.neg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.neg[path]; !ok {
		for len(c.neg) >= c.cfg.NegEntries && len(c.negQ) > 0 {
			delete(c.neg, c.negQ[0])
			c.negQ = c.negQ[1:]
		}
		c.negQ = append(c.negQ, path)
	}
	c.neg[path] = time.Now().Add(c.cfg.NegTTL)
}

// negDrop forgets a cached not-found (the object exists now). The
// path stays in negQ; its map entry is what answers lookups.
func (c *Cache) negDrop(path string) {
	if c.neg == nil {
		return
	}
	c.mu.Lock()
	delete(c.neg, path)
	c.mu.Unlock()
}

// negErr is the error a negative hit serves: indistinguishable from
// the inner backend's not-found for errors.Is purposes.
func (c *Cache) negErr(path string) error {
	c.negHits.Add(1)
	return fmt.Errorf("%w: %s:%s (negative-cached)", adal.ErrNotFound, c.inner.Name(), path)
}

// Create implements adal.Backend by delegating: the cache is
// read-through only, and objects are immutable (Create of an existing
// path fails below), so a write never shadows a cached entry. It
// does shadow a cached absence, so the negative entry goes first.
func (c *Cache) Create(path string) (io.WriteCloser, error) {
	c.negDrop(path)
	return c.inner.Create(path)
}

// Stat implements adal.Backend by delegating to the inner backend,
// which answers from the replica catalog without touching a site —
// unless a live negative entry answers (or records) the absence
// first.
func (c *Cache) Stat(path string) (adal.FileInfo, error) {
	if c.negLookup(path) {
		return adal.FileInfo{}, c.negErr(path)
	}
	info, err := c.inner.Stat(path)
	if err != nil && errors.Is(err, adal.ErrNotFound) {
		c.negStore(path)
	}
	return info, err
}

// List implements adal.Backend by delegating.
func (c *Cache) List(prefix string) ([]adal.FileInfo, error) { return c.inner.List(prefix) }

// Remove implements adal.Backend: the inner removal runs first, then
// the local entry is evicted unconditionally — even before the bus
// delivers the replica "dropped" events (which may be async), no read
// through this cache can resurrect the object.
func (c *Cache) Remove(path string) error {
	err := c.inner.Remove(path)
	if err == nil {
		c.invalidate(path, true)
	}
	return err
}

// Open implements adal.Backend: memory hit, coalesce onto an
// in-flight fill, disk hit (with promotion), or fill/bypass.
func (c *Cache) Open(path string) (io.ReadCloser, error) {
	return c.open(context.Background(), path)
}

// OpenCtx is Open carrying the caller's trace: a cache.open span
// brackets the lookup, a nested cache.fill span (and the fill
// histogram) times misses, and the context reaches the inner
// backend's CtxOpener so federated reads record where WAN time went.
func (c *Cache) OpenCtx(ctx context.Context, path string) (io.ReadCloser, error) {
	sp := obs.StartSpan(ctx, "cache.open")
	r, err := c.open(ctx, path)
	sp.End()
	return r, err
}

// innerOpen routes an inner read through the backend's CtxOpener
// when it has one, so spans continue below the cache.
func (c *Cache) innerOpen(ctx context.Context, path string) (io.ReadCloser, error) {
	if co, ok := c.inner.(adal.CtxOpener); ok {
		return co.OpenCtx(ctx, path)
	}
	return c.inner.Open(path)
}

func (c *Cache) open(ctx context.Context, path string) (io.ReadCloser, error) {
	if c.negLookup(path) {
		return nil, c.negErr(path)
	}
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		if e := c.mem.get(path); e != nil {
			c.mem.touch(e)
			data := e.data
			c.mu.Unlock()
			c.memHits.Add(1)
			return io.NopCloser(bytes.NewReader(data)), nil
		}
		if op := c.ops[path]; op != nil {
			c.mu.Unlock()
			c.dedups.Add(1)
			<-op.done
			if op.err != nil {
				return nil, op.err
			}
			continue // the leader's fill is cached now
		}
		if e := c.disk.get(path); e != nil {
			c.disk.touch(e)
			size, verified := e.size, e.verified
			c.mu.Unlock()
			if r, ok := c.serveDisk(path, size, verified); ok {
				c.diskHits.Add(1)
				return r, nil
			}
			continue // disk entry vanished under us; refill
		}
		c.mu.Unlock()

		// Miss. Size the object (catalog first, Stat fallback) to
		// decide admission before claiming the fill.
		sum, size, sized := c.objectMeta(path)
		admitMem := c.mem.admits(size)
		admitDisk := c.disk.admits(size)
		if !sized || (!admitMem && !admitDisk) || attempt >= 3 {
			// Inadmissible (or unsizeable, or losing repeated races):
			// stream straight through. No coalescing — each bypass
			// reader needs its own stream anyway.
			c.bypasses.Add(1)
			r, err := c.innerOpen(ctx, path)
			if err != nil && errors.Is(err, adal.ErrNotFound) {
				c.negStore(path)
			}
			return r, err
		}

		c.mu.Lock()
		if c.mem.get(path) != nil || c.disk.get(path) != nil || c.ops[path] != nil {
			c.mu.Unlock()
			continue // lost the leadership race; loop re-serves
		}
		op := &fillOp{done: make(chan struct{})}
		c.ops[path] = op
		c.mu.Unlock()
		c.misses.Add(1)

		r, err := c.fill(ctx, path, size, sum, admitMem, admitDisk, op)
		c.finishOp(path, op, err)
		if err != nil {
			if errors.Is(err, adal.ErrNotFound) {
				c.negStore(path)
			}
			return nil, err
		}
		return r, nil
	}
}

// serveDisk opens a disk-tier hit, promoting it into the memory tier
// when admitted there (its disk hit is the re-reference that earns
// promotion). Reports ok=false when the disk bytes are gone — the
// caller drops the entry and refills.
func (c *Cache) serveDisk(path string, size units.Bytes, verified bool) (io.ReadCloser, bool) {
	r, err := c.cfg.Disk.Open(path)
	if err != nil {
		c.mu.Lock()
		c.disk.remove(path)
		c.mu.Unlock()
		return nil, false
	}
	if !c.mem.admits(size) {
		return r, true
	}
	data := make([]byte, size)
	_, err = io.ReadFull(r, data)
	r.Close()
	if err != nil {
		c.mu.Lock()
		c.disk.remove(path)
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	// Only promote while the disk entry is still live: an
	// invalidation that raced the read must not be resurrected.
	if c.disk.get(path) != nil && c.mem.get(path) == nil {
		ev := c.mem.add(&centry{path: path, size: size, data: data, verified: verified})
		c.evictions.Add(uint64(len(ev)))
	}
	c.mu.Unlock()
	return io.NopCloser(bytes.NewReader(data)), true
}

// objectMeta resolves an object's recorded content hash and size —
// from the inner backend's catalog when it has one, else a Stat.
func (c *Cache) objectMeta(path string) (sum string, size units.Bytes, ok bool) {
	if cr, has := c.inner.(checksumReporter); has {
		if sum, size, ok := cr.ObjectChecksum(path); ok && size > 0 {
			return sum, size, true
		}
	}
	info, err := c.inner.Stat(path)
	if err != nil || info.Size <= 0 {
		return "", 0, false
	}
	return "", info.Size, true
}

// fill streams the object from the inner backend once, hashing in
// passing (the WriteChecksummed discipline), lands it in the admitted
// tiers, and returns the leader's reader. A hash or length mismatch —
// possible when a mid-stream failover spliced bytes from a stale
// replica — keeps the object out of the cache but still serves the
// leader exactly what a direct read would have returned.
func (c *Cache) fill(ctx context.Context, path string, size units.Bytes, sum string, admitMem, admitDisk bool, op *fillOp) (io.ReadCloser, error) {
	start := time.Now()
	sp := obs.StartSpan(ctx, "cache.fill")
	sp.Annotate("%s (%d bytes)", path, size)
	defer func() {
		sp.End()
		c.fillHist.ObserveSince(start)
	}()
	src, err := c.innerOpen(ctx, path)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	h := sha256.New()
	writers := []io.Writer{h}
	var buf *bytes.Buffer
	if admitMem {
		buf = bytes.NewBuffer(make([]byte, 0, size))
		writers = append(writers, buf)
	}
	var dw io.WriteCloser
	if admitDisk {
		dw, err = c.cfg.Disk.Create(path)
		if err != nil {
			// A leftover file from a crashed fill: clear and retry.
			_ = c.cfg.Disk.Remove(path)
			dw, err = c.cfg.Disk.Create(path)
		}
		if err != nil {
			if !admitMem {
				return nil, err
			}
			admitDisk = false
		} else {
			writers = append(writers, dw)
		}
	}

	n, err := adal.PooledCopy(io.MultiWriter(writers...), src)
	if dw != nil {
		if cerr := dw.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if admitDisk {
			_ = c.cfg.Disk.Remove(path)
		}
		c.fillErrors.Add(1)
		return nil, err
	}

	verified := sum != "" && hex.EncodeToString(h.Sum(nil)) == sum
	if units.Bytes(n) != size || (sum != "" && !verified) {
		// Suspect bytes: never cache them, but a direct read would
		// have returned this very stream, so the leader still gets it.
		if admitDisk {
			_ = c.cfg.Disk.Remove(path)
		}
		c.fillErrors.Add(1)
		if buf != nil {
			return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
		}
		return c.inner.Open(path)
	}
	c.fills.Add(1)
	c.fillBytes.Add(uint64(n))

	var evicted []string
	c.mu.Lock()
	if op.invalidated {
		c.mu.Unlock()
		if admitDisk {
			_ = c.cfg.Disk.Remove(path)
		}
	} else {
		var nev int
		if admitMem {
			ev := c.mem.add(&centry{path: path, size: size, data: buf.Bytes(), verified: verified})
			nev += len(ev)
		}
		if admitDisk {
			for _, e := range c.disk.add(&centry{path: path, size: size, verified: verified}) {
				evicted = append(evicted, e.path)
			}
			nev += len(evicted)
		}
		c.mu.Unlock()
		c.evictions.Add(uint64(nev))
		for _, p := range evicted {
			_ = c.cfg.Disk.Remove(p)
		}
	}

	if buf != nil {
		return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
	}
	if r, err := c.cfg.Disk.Open(path); err == nil {
		return r, nil
	}
	return c.inner.Open(path)
}

// finishOp publishes the fill outcome: the op leaves the map first,
// so a waiter that wakes and loops re-examines fresh state.
func (c *Cache) finishOp(path string, op *fillOp, err error) {
	c.mu.Lock()
	op.err = err
	delete(c.ops, path)
	c.mu.Unlock()
	close(op.done)
}

// onEvent drives invalidation from the metadata bus. Replica
// "dropped" and dataset deletion evict the path unconditionally and
// poison any in-flight fill; "stale"/"lost" evict only unverified
// entries — a checksum-verified copy of an immutable object is
// correct regardless of which replica just died, and keeping it is
// exactly what lets the cache ride out a site failover.
func (c *Cache) onEvent(ev metadata.Event) {
	var state string
	switch ev.Type {
	case metadata.EventReplica:
		state = ev.Placement
		if state != "stale" && state != "lost" && state != "dropped" {
			return
		}
	case metadata.EventDeleted:
		state = "dropped"
	case metadata.EventCreated:
		// A creation anywhere in the federation obsoletes a cached
		// absence: the next lookup must go ask.
		path := ev.Dataset.Path
		if c.cfg.MountPrefix != "" {
			if !strings.HasPrefix(path, c.cfg.MountPrefix) {
				return
			}
			path = strings.TrimPrefix(path, c.cfg.MountPrefix)
		}
		c.negDrop(path)
		return
	default:
		return
	}
	path := ev.Dataset.Path
	if c.cfg.MountPrefix != "" {
		if !strings.HasPrefix(path, c.cfg.MountPrefix) {
			return
		}
		path = strings.TrimPrefix(path, c.cfg.MountPrefix)
	}
	c.invalidate(path, state == "dropped")
}

// invalidate evicts path from both tiers; force evicts even
// checksum-verified entries and poisons an in-flight fill.
func (c *Cache) invalidate(path string, force bool) {
	dropDisk := false
	c.mu.Lock()
	if e := c.mem.get(path); e != nil && (force || !e.verified) {
		c.mem.removeEntry(e)
		c.invalidations.Add(1)
	}
	if e := c.disk.get(path); e != nil && (force || !e.verified) {
		c.disk.removeEntry(e)
		c.invalidations.Add(1)
		dropDisk = true
	}
	if op := c.ops[path]; op != nil && force {
		op.invalidated = true
	}
	c.mu.Unlock()
	if dropDisk {
		_ = c.cfg.Disk.Remove(path)
	}
}

// Evict drops path from every tier (the lsdfctl verb), reporting
// whether anything was cached.
func (c *Cache) Evict(path string) bool {
	dropDisk := false
	had := false
	c.mu.Lock()
	if e := c.mem.remove(path); e != nil {
		had = true
	}
	if e := c.disk.remove(path); e != nil {
		had, dropDisk = true, true
	}
	c.mu.Unlock()
	if dropDisk {
		_ = c.cfg.Disk.Remove(path)
	}
	if had {
		c.evictions.Add(1)
	}
	return had
}

// Warm pre-fills the cache with every inner object under prefix that
// the tiers admit, returning how many objects are now cached.
func (c *Cache) Warm(prefix string) (int, error) {
	infos, err := c.inner.List(prefix)
	if err != nil {
		return 0, err
	}
	warmed := 0
	for _, info := range infos {
		if !c.mem.admits(info.Size) && !c.disk.admits(info.Size) {
			continue
		}
		r, err := c.Open(info.Path)
		if err != nil {
			continue
		}
		_, cerr := io.Copy(io.Discard, r)
		r.Close()
		if cerr == nil {
			warmed++
		}
	}
	return warmed, nil
}

// CacheTier reports which tier currently holds rel ("memory" wins
// over "disk"); the DataBrowser discovers this structurally.
func (c *Cache) CacheTier(rel string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mem.get(rel) != nil {
		return "memory", true
	}
	if c.disk.get(rel) != nil {
		return "disk", true
	}
	return "", false
}

// Placement forwards the inner backend's placement reporter so the
// DataBrowser's columns survive the cache wrapper.
func (c *Cache) Placement(rel string) (string, bool) {
	if p, ok := c.inner.(placementReporter); ok {
		return p.Placement(rel)
	}
	return "", false
}

// ReplicaSites forwards the inner backend's replica reporter.
func (c *Cache) ReplicaSites(rel string) ([]string, bool) {
	if p, ok := c.inner.(replicaReporter); ok {
		return p.ReplicaSites(rel)
	}
	return nil, false
}

// ObjectChecksum forwards the inner backend's checksum reporter, so
// stacked caches (or audits) see through this one.
func (c *Cache) ObjectChecksum(rel string) (string, units.Bytes, bool) {
	if cr, ok := c.inner.(checksumReporter); ok {
		return cr.ObjectChecksum(rel)
	}
	return "", 0, false
}

// Stats is a point-in-time snapshot of the cache counters and tier
// occupancy.
type Stats struct {
	MemHits, DiskHits        uint64
	Misses, Bypasses         uint64
	Fills, FillBytes, Dedups uint64
	Evictions                uint64
	Invalidations            uint64
	FillErrors               uint64
	NegHits                  uint64 // lookups answered not-found from the negative set

	MemUsed, MemBudget   units.Bytes
	DiskUsed, DiskBudget units.Bytes
	MemObjects           int
	DiskObjects          int
	NegObjects           int // live negative entries
}

// HitRate is hits across both tiers over all cacheable lookups.
func (s Stats) HitRate() float64 {
	total := s.MemHits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.MemHits+s.DiskHits) / float64(total)
}

// Stats returns the current counters and occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		MemHits:       c.memHits.Load(),
		DiskHits:      c.diskHits.Load(),
		Misses:        c.misses.Load(),
		Bypasses:      c.bypasses.Load(),
		Fills:         c.fills.Load(),
		FillBytes:     c.fillBytes.Load(),
		Dedups:        c.dedups.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		FillErrors:    c.fillErrors.Load(),
		NegHits:       c.negHits.Load(),
	}
	c.mu.Lock()
	if c.mem != nil {
		st.MemUsed, st.MemBudget, st.MemObjects = c.mem.used, c.mem.budget, len(c.mem.idx)
	}
	if c.disk != nil {
		st.DiskUsed, st.DiskBudget, st.DiskObjects = c.disk.used, c.disk.budget, len(c.disk.idx)
	}
	st.NegObjects = len(c.neg)
	c.mu.Unlock()
	return st
}

// CacheCounters exports the counters as a flat map — the structural
// surface the DataBrowser and lsdfctl render.
func (c *Cache) CacheCounters() map[string]uint64 {
	st := c.Stats()
	return map[string]uint64{
		"mem_hits":      st.MemHits,
		"disk_hits":     st.DiskHits,
		"misses":        st.Misses,
		"bypasses":      st.Bypasses,
		"fills":         st.Fills,
		"fill_bytes":    st.FillBytes,
		"dedups":        st.Dedups,
		"evictions":     st.Evictions,
		"invalidations": st.Invalidations,
		"fill_errors":   st.FillErrors,
		"neg_hits":      st.NegHits,
		"neg_objects":   uint64(st.NegObjects),
		"mem_used":      uint64(st.MemUsed),
		"mem_objects":   uint64(st.MemObjects),
		"disk_used":     uint64(st.DiskUsed),
		"disk_objects":  uint64(st.DiskObjects),
	}
}

// Entry describes one cached object for listings.
type Entry struct {
	Path     string
	Tier     string // "memory" or "disk"
	Size     units.Bytes
	Verified bool
	Hot      bool // protected segment (re-referenced)
}

// Entries lists every cached object, memory tier first, each tier
// sorted by path.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Entry
	collect := func(s *segLRU, tier string) {
		if s == nil {
			return
		}
		paths := s.paths()
		sort.Strings(paths)
		for _, p := range paths {
			e := s.idx[p]
			out = append(out, Entry{Path: p, Tier: tier, Size: e.size, Verified: e.verified, Hot: e.prot})
		}
	}
	collect(c.mem, "memory")
	collect(c.disk, "disk")
	return out
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	st := c.Stats()
	return fmt.Sprintf("readcache{mem %s/%s (%d obj) disk %s/%s (%d obj) hit %.0f%%}",
		st.MemUsed.SI(), st.MemBudget.SI(), st.MemObjects,
		st.DiskUsed.SI(), st.DiskBudget.SI(), st.DiskObjects,
		100*st.HitRate())
}

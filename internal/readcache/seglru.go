package readcache

import (
	"container/list"

	"repro/internal/units"
)

// centry is one cached object's bookkeeping record. The same type
// serves both tiers: the memory tier carries the bytes inline, the
// disk tier leaves data nil and keeps the bytes in its backend.
// Records are owned by exactly one segLRU and are only touched under
// the cache mutex; the data slice, once inserted, is immutable, so
// readers may hold it after the lock is released (and even after the
// entry is evicted).
type centry struct {
	path     string
	size     units.Bytes
	data     []byte // memory tier only
	verified bool   // bytes matched the catalog content hash at fill time
	elem     *list.Element
	prot     bool // protected segment (vs probationary)
}

// segLRU is a byte-budgeted segmented LRU (the 2Q-flavoured eviction
// the tiers share): new objects enter a probationary segment and are
// promoted to the protected segment on their second touch. Eviction
// drains the probationary tail first, so a one-pass scan churns only
// probation and cannot flush the established hot set; the protected
// segment is itself capped, demoting its tail back to probation so a
// shifting hot set still turns over.
//
// All methods assume the owning cache's mutex is held.
type segLRU struct {
	budget   units.Bytes
	protCap  units.Bytes // ceiling on protected bytes (protectedFraction * budget)
	admitCap units.Bytes // largest admissible object (admitFraction * budget)

	used     units.Bytes
	protUsed units.Bytes
	prob     *list.List // front = most recent
	protSeg  *list.List
	idx      map[string]*centry
}

func newSegLRU(budget units.Bytes, protFrac, admitFrac float64) *segLRU {
	return &segLRU{
		budget:   budget,
		protCap:  units.Bytes(protFrac * float64(budget)),
		admitCap: units.Bytes(admitFrac * float64(budget)),
		prob:     list.New(),
		protSeg:  list.New(),
		idx:      make(map[string]*centry),
	}
}

// admits reports whether an object of the given size may enter the
// tier at all — the size-aware admission gate that keeps one huge
// cold object from evicting the entire hot set.
func (s *segLRU) admits(size units.Bytes) bool {
	return s != nil && size > 0 && size <= s.admitCap
}

func (s *segLRU) get(path string) *centry {
	if s == nil {
		return nil
	}
	return s.idx[path]
}

// touch records a hit: probationary entries are promoted to the
// protected segment (their second touch proves re-use), protected
// entries move to the segment front. Promotion may demote the
// protected tail back to probation to respect the protected cap.
func (s *segLRU) touch(e *centry) {
	if e.prot {
		s.protSeg.MoveToFront(e.elem)
		return
	}
	s.prob.Remove(e.elem)
	e.prot = true
	e.elem = s.protSeg.PushFront(e)
	s.protUsed += e.size
	for s.protUsed > s.protCap {
		tail := s.protSeg.Back()
		if tail == nil || tail.Value.(*centry) == e {
			break
		}
		d := tail.Value.(*centry)
		s.protSeg.Remove(tail)
		d.prot = false
		d.elem = s.prob.PushFront(d)
		s.protUsed -= d.size
	}
}

// add inserts a new entry into probation and returns the entries
// evicted to stay within budget (probationary tail first, then the
// protected tail). The new entry itself is never a victim: admits
// guarantees it is smaller than the budget, so space can always be
// reclaimed from older entries.
func (s *segLRU) add(e *centry) (evicted []*centry) {
	if old := s.idx[e.path]; old != nil {
		s.removeEntry(old)
		evicted = append(evicted, old)
	}
	e.prot = false
	e.elem = s.prob.PushFront(e)
	s.idx[e.path] = e
	s.used += e.size
	for s.used > s.budget {
		victim := s.prob.Back()
		if victim != nil && victim.Value.(*centry) == e {
			victim = victim.Prev()
		}
		if victim == nil {
			victim = s.protSeg.Back()
		}
		if victim == nil {
			break
		}
		v := victim.Value.(*centry)
		s.removeEntry(v)
		evicted = append(evicted, v)
	}
	return evicted
}

// remove drops path's entry, reporting it (nil when absent).
func (s *segLRU) remove(path string) *centry {
	if s == nil {
		return nil
	}
	e := s.idx[path]
	if e == nil {
		return nil
	}
	s.removeEntry(e)
	return e
}

func (s *segLRU) removeEntry(e *centry) {
	if e.prot {
		s.protSeg.Remove(e.elem)
		s.protUsed -= e.size
	} else {
		s.prob.Remove(e.elem)
	}
	delete(s.idx, e.path)
	s.used -= e.size
	e.elem = nil
}

// paths returns every cached path (unordered); callers sort.
func (s *segLRU) paths() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.idx))
	for p := range s.idx {
		out = append(out, p)
	}
	return out
}

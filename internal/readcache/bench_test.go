package readcache

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/adal"
	"repro/internal/units"
)

func benchCache(b *testing.B, cfg Config) (*Cache, *countingBackend) {
	b.Helper()
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	c := New(inner, cfg)
	b.Cleanup(c.Close)
	return c, inner
}

func benchRead(b *testing.B, c *Cache, path string) {
	r, err := c.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		b.Fatal(err)
	}
	r.Close()
}

// BenchmarkCachedRead is the steady-state hit path: one hot object
// served from the memory tier.
func BenchmarkCachedRead(b *testing.B) {
	const objSize = 256 * units.KiB
	c, inner := benchCache(b, Config{Memory: 4 * units.MiB})
	path := "/b/hot"
	writeBackend2(b, inner, path, bytes.Repeat([]byte("h"), int(objSize)))
	benchRead(b, c, path) // fill
	b.SetBytes(int64(objSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRead(b, c, path)
	}
	b.StopTimer()
	if n := inner.opens.Load(); n != 1 {
		b.Fatalf("inner opens = %d, want 1", n)
	}
}

// BenchmarkColdFill is the miss path: every iteration admits a new
// object, evicting older ones — transfer + hash + insert + evict.
func BenchmarkColdFill(b *testing.B) {
	const objSize = 64 * units.KiB
	c, inner := benchCache(b, Config{Memory: 2 * units.MiB})
	data := bytes.Repeat([]byte("c"), int(objSize))
	for i := 0; i < b.N; i++ {
		writeBackend2(b, inner, fmt.Sprintf("/b/cold-%07d", i), data)
	}
	b.SetBytes(int64(objSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRead(b, c, fmt.Sprintf("/b/cold-%07d", i))
	}
}

// BenchmarkZipfMixed is the realistic blend: zipf(1.1) over 512
// objects with a memory tier sized for ~1/8 of them — hits, fills
// and evictions in workload proportions.
func BenchmarkZipfMixed(b *testing.B) {
	const objSize = 16 * units.KiB
	const objects = 512
	c, inner := benchCache(b, Config{Memory: units.MiB})
	data := bytes.Repeat([]byte("z"), int(objSize))
	for i := 0; i < objects; i++ {
		writeBackend2(b, inner, fmt.Sprintf("/b/obj-%04d", i), data)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.1, 1, objects-1)
	b.SetBytes(int64(objSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRead(b, c, fmt.Sprintf("/b/obj-%04d", zipf.Uint64()))
	}
	b.StopTimer()
	if st := c.Stats(); b.N > 100 && st.MemHits == 0 {
		b.Fatalf("no cache hits in zipf workload: %+v", st)
	}
}

func writeBackend2(b *testing.B, be adal.Backend, path string, data []byte) {
	b.Helper()
	w, err := be.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

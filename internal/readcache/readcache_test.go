package readcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

func sumOf(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// countingBackend wraps a backend and counts Opens and bytes read —
// the test's stand-in for "WAN transfers".
type countingBackend struct {
	adal.Backend
	opens     atomic.Int64
	bytesRead atomic.Int64

	mu   sync.Mutex
	gate chan struct{} // when set, Open blocks until the channel closes
}

func (b *countingBackend) Open(path string) (io.ReadCloser, error) {
	b.opens.Add(1)
	b.mu.Lock()
	gate := b.gate
	b.mu.Unlock()
	if gate != nil {
		<-gate
	}
	r, err := b.Backend.Open(path)
	if err != nil {
		return nil, err
	}
	return &countingReader{r: r, n: &b.bytesRead}, nil
}

func (b *countingBackend) setGate(gate chan struct{}) {
	b.mu.Lock()
	b.gate = gate
	b.mu.Unlock()
}

type countingReader struct {
	r io.ReadCloser
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingReader) Close() error { return c.r.Close() }

func writeBackend(t *testing.T, b adal.Backend, path string, data []byte) {
	t.Helper()
	w, err := b.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readCache(t *testing.T, c *Cache, path string) []byte {
	t.Helper()
	r, err := c.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func obj(i int, size int) (string, []byte) {
	path := fmt.Sprintf("/data/obj-%03d", i)
	data := bytes.Repeat([]byte{byte(i), byte(i >> 8)}, size/2)
	return path, data
}

// TestReadThroughAndMemHit: the first read fills from the inner
// backend, the second is served from memory without touching it.
func TestReadThroughAndMemHit(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	path, data := obj(1, 4096)
	writeBackend(t, inner, path, data)

	c := New(inner, Config{Memory: 64 * units.KiB})
	defer c.Close()

	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatalf("first read: %d bytes, want %d", len(got), len(data))
	}
	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatalf("second read mismatch")
	}
	if n := inner.opens.Load(); n != 1 {
		t.Fatalf("inner opens = %d, want 1 (second read must be a cache hit)", n)
	}
	st := c.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit / 1 miss / 1 fill", st)
	}
	if st.FillBytes != 4096 {
		t.Fatalf("fill bytes = %d, want 4096", st.FillBytes)
	}
}

// TestSingleflightFill: N concurrent readers of one cold object cost
// exactly one inner transfer; the rest coalesce onto the fill.
func TestSingleflightFill(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	path, data := obj(2, 8192)
	writeBackend(t, inner, path, data)

	c := New(inner, Config{Memory: 64 * units.KiB})
	defer c.Close()

	gate := make(chan struct{})
	inner.setGate(gate)

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	var started sync.WaitGroup
	started.Add(readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			r, err := c.Open(path)
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("content mismatch")
			}
		}()
	}
	started.Wait()
	// One leader is blocked inside the gated inner.Open; wait until
	// at least one other reader has coalesced onto its op before
	// releasing the transfer, so the dedup assertion cannot race.
	for c.dedups.Load() == 0 {
		runtime.Gosched()
	}
	inner.setGate(nil)
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := inner.opens.Load(); n != 1 {
		t.Fatalf("inner opens = %d, want 1 (singleflight)", n)
	}
	if st := c.Stats(); st.Dedups == 0 {
		t.Fatalf("dedups = 0, want >0; stats %+v", st)
	}
}

// TestScanResistance: a hot set promoted into the protected segment
// survives a full-budget scan of one-touch objects.
func TestScanResistance(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	const objSize = 1024
	// Budget fits ~16 objects; hot set is 8 (≤ protected fraction).
	c := New(inner, Config{Memory: 16 * 1024, AdmitFraction: 0.1, ProtectedFraction: 0.6})
	defer c.Close()

	var hot []string
	for i := 0; i < 8; i++ {
		path, data := obj(i, objSize)
		writeBackend(t, inner, path, data)
		hot = append(hot, path)
	}
	// Touch twice: fill, then promote to protected.
	for _, p := range hot {
		readCache(t, c, p)
		readCache(t, c, p)
	}
	// Scan 64 cold objects — 4× the budget in one-touch traffic.
	for i := 100; i < 164; i++ {
		path, data := obj(i, objSize)
		writeBackend(t, inner, path, data)
		readCache(t, c, path)
	}
	inner.opens.Store(0)
	for _, p := range hot {
		readCache(t, c, p)
	}
	if n := inner.opens.Load(); n != 0 {
		t.Fatalf("hot set re-read hit the inner backend %d times after a scan; want 0", n)
	}
}

// TestSizeAwareAdmission: an object above the admit threshold of
// both tiers streams straight through and occupies no cache space.
func TestSizeAwareAdmission(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	disk := adal.NewMemFS("cachedisk")
	c := New(inner, Config{
		Memory: 16 * 1024, Disk: disk, DiskBudget: 32 * 1024, AdmitFraction: 0.25,
	})
	defer c.Close()

	big, bigData := obj(9, 16*1024) // > 0.25 of both budgets
	writeBackend(t, inner, big, bigData)
	for i := 0; i < 3; i++ {
		if got := readCache(t, c, big); !bytes.Equal(got, bigData) {
			t.Fatalf("bypass read %d mismatch", i)
		}
	}
	st := c.Stats()
	if st.Bypasses != 3 {
		t.Fatalf("bypasses = %d, want 3", st.Bypasses)
	}
	if st.MemObjects != 0 || st.DiskObjects != 0 {
		t.Fatalf("cache occupied by inadmissible object: %+v", st)
	}
	if n := inner.opens.Load(); n != 3 {
		t.Fatalf("inner opens = %d, want 3 (no caching)", n)
	}
}

// TestDiskTierAndPromotion: an object too big for memory lands on
// disk; when memory would admit it, a disk hit promotes it.
func TestDiskTierAndPromotion(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	disk := adal.NewMemFS("cachedisk")

	// Memory admits ≤ 1 KiB, disk admits ≤ 16 KiB.
	c := New(inner, Config{
		Memory: 4 * 1024, Disk: disk, DiskBudget: 64 * 1024, AdmitFraction: 0.25,
	})
	defer c.Close()

	path, data := obj(3, 8*1024)
	writeBackend(t, inner, path, data)

	readCache(t, c, path) // fill → disk only
	if tier, ok := c.CacheTier(path); !ok || tier != "disk" {
		t.Fatalf("tier = %q/%v, want disk", tier, ok)
	}
	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatal("disk hit mismatch")
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.MemObjects != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit and no memory entry", st)
	}
	if n := inner.opens.Load(); n != 1 {
		t.Fatalf("inner opens = %d, want 1", n)
	}

	// A small object promotes from disk to memory on its second read.
	small, smallData := obj(4, 512)
	writeBackend(t, inner, small, smallData)
	readCache(t, c, small)
	c.mu.Lock()
	c.mem.remove(small) // strand it on disk only
	c.mu.Unlock()
	readCache(t, c, small) // disk hit → promote
	if tier, _ := c.CacheTier(small); tier != "memory" {
		t.Fatalf("tier after promotion = %q, want memory", tier)
	}
	if got := readCache(t, c, small); !bytes.Equal(got, smallData) {
		t.Fatal("promoted read mismatch")
	}
}

// TestRemoveInvalidates: removing through the cache evicts both
// tiers before any event is delivered.
func TestRemoveInvalidates(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	disk := adal.NewMemFS("cachedisk")
	c := New(inner, Config{Memory: 64 * 1024, Disk: disk, DiskBudget: 64 * 1024})
	defer c.Close()

	path, data := obj(5, 2048)
	writeBackend(t, inner, path, data)
	readCache(t, c, path)
	if _, ok := c.CacheTier(path); !ok {
		t.Fatal("object not cached after read")
	}
	if err := c.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.CacheTier(path); ok {
		t.Fatal("object still cached after Remove")
	}
	if _, err := c.Open(path); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open after remove = %v, want ErrNotFound", err)
	}
	if infos, _ := disk.List("/"); len(infos) != 0 {
		t.Fatalf("disk tier still holds %d files after Remove", len(infos))
	}
}

// TestBusInvalidation: replica events on the bus evict — "dropped"
// unconditionally, "stale" only unverified entries.
func TestBusInvalidation(t *testing.T) {
	meta := metadata.NewStore()
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	c := New(inner, Config{Memory: 64 * 1024, Meta: meta, MountPrefix: "/sites"})
	defer c.Close()

	path, data := obj(6, 2048)
	writeBackend(t, inner, path, data)
	readCache(t, c, path)
	// MemFS has no checksum reporter, so the entry is unverified: a
	// stale transition must evict it.
	meta.NoteReplica("/sites"+path, "kit", "stale")
	if _, ok := c.CacheTier(path); ok {
		t.Fatal("unverified entry survived a stale event")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}

	// Events outside the mount prefix must not touch the cache.
	readCache(t, c, path)
	meta.NoteReplica("/elsewhere"+path, "kit", "dropped")
	if _, ok := c.CacheTier(path); !ok {
		t.Fatal("event outside the mount prefix evicted the entry")
	}
	// "dropped" under the prefix always evicts.
	meta.NoteReplica("/sites"+path, "kit", "dropped")
	if _, ok := c.CacheTier(path); ok {
		t.Fatal("entry survived a dropped event")
	}
}

// TestStaleKeepsVerifiedEntry: with a checksum reporter on the inner
// backend, fills verify — and verified entries of immutable objects
// ride out stale/lost replica transitions.
func TestStaleKeepsVerifiedEntry(t *testing.T) {
	meta := metadata.NewStore()
	path, data := obj(7, 2048)
	inner := &reportingBackend{
		countingBackend: countingBackend{Backend: adal.NewMemFS("inner")},
		sums:            map[string]string{path: sumOf(data)},
		sizes:           map[string]units.Bytes{path: units.Bytes(len(data))},
	}
	writeBackend(t, &inner.countingBackend, path, data)

	c := New(inner, Config{Memory: 64 * 1024, Meta: meta, MountPrefix: "/sites"})
	defer c.Close()

	readCache(t, c, path)
	meta.NoteReplica("/sites"+path, "kit", "stale")
	meta.NoteReplica("/sites"+path, "kit", "lost")
	if _, ok := c.CacheTier(path); !ok {
		t.Fatal("verified entry evicted by stale/lost events")
	}
	inner.opens.Store(0)
	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatal("verified entry mismatch after events")
	}
	if n := inner.opens.Load(); n != 0 {
		t.Fatal("verified entry re-fetched instead of served from cache")
	}
	// A dropped event still wins over verification.
	meta.NoteReplica("/sites"+path, "kit", "dropped")
	if _, ok := c.CacheTier(path); ok {
		t.Fatal("verified entry survived dropped")
	}
}

// reportingBackend adds an ObjectChecksum reporter over
// countingBackend, simulating the federated backend's catalog.
type reportingBackend struct {
	countingBackend
	sums  map[string]string
	sizes map[string]units.Bytes
}

func (b *reportingBackend) ObjectChecksum(rel string) (string, units.Bytes, bool) {
	sum, ok := b.sums[rel]
	if !ok {
		return "", 0, false
	}
	return sum, b.sizes[rel], true
}

// TestFillChecksumMismatch: a fill whose bytes don't match the
// recorded hash is served to the reader (a direct read would have
// returned the same stream) but never cached.
func TestFillChecksumMismatch(t *testing.T) {
	path, data := obj(8, 2048)
	inner := &reportingBackend{
		countingBackend: countingBackend{Backend: adal.NewMemFS("inner")},
		sums:            map[string]string{path: "deadbeef"}, // wrong on purpose
		sizes:           map[string]units.Bytes{path: units.Bytes(len(data))},
	}
	writeBackend(t, &inner.countingBackend, path, data)

	disk := adal.NewMemFS("cachedisk")
	c := New(inner, Config{Memory: 64 * 1024, Disk: disk, DiskBudget: 64 * 1024})
	defer c.Close()

	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatal("mismatched fill must still serve the transferred bytes")
	}
	if _, ok := c.CacheTier(path); ok {
		t.Fatal("suspect bytes were cached")
	}
	if infos, _ := disk.List("/"); len(infos) != 0 {
		t.Fatal("suspect bytes left on the disk tier")
	}
	if st := c.Stats(); st.FillErrors != 1 {
		t.Fatalf("fill errors = %d, want 1", st.FillErrors)
	}
}

// TestDiskRecovery: a cache built over a disk backend that already
// holds objects serves them without re-crossing the inner backend.
func TestDiskRecovery(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	disk := adal.NewMemFS("cachedisk")
	path, data := obj(10, 2048)
	writeBackend(t, inner, path, data)
	writeBackend(t, disk, path, data) // left over from a prior process

	c := New(inner, Config{Disk: disk, DiskBudget: 64 * 1024})
	defer c.Close()

	if tier, ok := c.CacheTier(path); !ok || tier != "disk" {
		t.Fatalf("recovered tier = %q/%v, want disk", tier, ok)
	}
	if got := readCache(t, c, path); !bytes.Equal(got, data) {
		t.Fatal("recovered entry mismatch")
	}
	if n := inner.opens.Load(); n != 0 {
		t.Fatalf("recovered entry refilled from inner (%d opens)", n)
	}
}

// TestEvictAndWarm: the lsdfctl verbs — manual eviction and
// prefix warming.
func TestEvictAndWarm(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	c := New(inner, Config{Memory: 64 * 1024})
	defer c.Close()

	var paths []string
	for i := 20; i < 24; i++ {
		path, data := obj(i, 1024)
		writeBackend(t, inner, path, data)
		paths = append(paths, path)
	}
	n, err := c.Warm("/data")
	if err != nil || n != 4 {
		t.Fatalf("warm = %d, %v; want 4, nil", n, err)
	}
	if len(c.Entries()) != 4 {
		t.Fatalf("entries = %d, want 4", len(c.Entries()))
	}
	inner.opens.Store(0)
	for _, p := range paths {
		readCache(t, c, p)
	}
	if got := inner.opens.Load(); got != 0 {
		t.Fatalf("warmed reads hit inner %d times", got)
	}
	if !c.Evict(paths[0]) {
		t.Fatal("evict reported nothing cached")
	}
	if c.Evict(paths[0]) {
		t.Fatal("second evict reported a hit")
	}
	if _, ok := c.CacheTier(paths[0]); ok {
		t.Fatal("entry still cached after Evict")
	}
}

// TestSegLRUDemotion: the protected segment demotes its tail back to
// probation rather than growing past its cap.
func TestSegLRUDemotion(t *testing.T) {
	s := newSegLRU(1000, 0.5, 1.0)
	for i := 0; i < 10; i++ {
		e := &centry{path: fmt.Sprintf("/o%d", i), size: 100}
		if ev := s.add(e); len(ev) != 0 {
			t.Fatalf("unexpected eviction at %d", i)
		}
	}
	// Promote all ten: protected cap is 500, so at most 5 stay.
	for i := 0; i < 10; i++ {
		s.touch(s.get(fmt.Sprintf("/o%d", i)))
	}
	if s.protUsed > s.protCap {
		t.Fatalf("protected %d exceeds cap %d", s.protUsed, s.protCap)
	}
	if s.used != 1000 {
		t.Fatalf("used = %d, want 1000 (demotion must not evict)", s.used)
	}
}

// TestNegativeCaching: a not-found lookup is remembered for the TTL —
// repeats are answered locally — and a create (through the cache or
// as a bus event) re-opens the path before the TTL runs out.
func TestNegativeCaching(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	c := New(inner, Config{Memory: 64 * units.KiB, NegTTL: time.Minute})
	defer c.Close()

	if _, err := c.Open("/data/ghost"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("first open: %v, want not-found", err)
	}
	opens := inner.opens.Load()
	for i := 0; i < 3; i++ {
		if _, err := c.Open("/data/ghost"); !errors.Is(err, adal.ErrNotFound) {
			t.Fatalf("cached open: %v, want not-found", err)
		}
		if _, err := c.Stat("/data/ghost"); !errors.Is(err, adal.ErrNotFound) {
			t.Fatalf("cached stat: %v, want not-found", err)
		}
	}
	if n := inner.opens.Load(); n != opens {
		t.Fatalf("negative hits re-opened inner: %d opens, want %d", n, opens)
	}
	if st := c.Stats(); st.NegHits != 6 || st.NegObjects != 1 {
		t.Fatalf("NegHits=%d NegObjects=%d, want 6 and 1", st.NegHits, st.NegObjects)
	}

	// Creating through the cache forgets the absence immediately.
	w, err := c.Create("/data/ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("now real")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readCache(t, c, "/data/ghost"); string(got) != "now real" {
		t.Fatalf("post-create read: %q", got)
	}
}

// TestNegativeCachingBusInvalidation: a created event on the metadata
// bus (an ingest at another site) clears the cached absence.
func TestNegativeCachingBusInvalidation(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	meta := metadata.NewStore()
	c := New(inner, Config{Memory: 64 * units.KiB, NegTTL: time.Minute, Meta: meta, MountPrefix: "/sites"})
	defer c.Close()

	if _, err := c.Open("/data/late"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open: %v, want not-found", err)
	}
	if _, err := c.Open("/data/late"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open: %v, want not-found", err)
	}
	if st := c.Stats(); st.NegHits != 1 {
		t.Fatalf("NegHits=%d, want 1", st.NegHits)
	}

	// The object lands at a remote site; its registration event rides
	// the bus and must clear the negative entry.
	writeBackend(t, inner, "/data/late", []byte("arrived"))
	if _, err := meta.Create("proj", "/sites/data/late", 7, sumOf([]byte("arrived")), nil); err != nil {
		t.Fatal(err)
	}
	if got := readCache(t, c, "/data/late"); string(got) != "arrived" {
		t.Fatalf("post-event read: %q", got)
	}
}

// TestNegativeCachingTTLAndBound: entries expire after the TTL, and
// the set is FIFO-bounded by NegEntries.
func TestNegativeCachingTTLAndBound(t *testing.T) {
	inner := &countingBackend{Backend: adal.NewMemFS("inner")}
	c := New(inner, Config{Memory: 64 * units.KiB, NegTTL: 10 * time.Millisecond, NegEntries: 2})
	defer c.Close()

	for _, p := range []string{"/a", "/b", "/c"} {
		if _, err := c.Open(p); !errors.Is(err, adal.ErrNotFound) {
			t.Fatalf("open %s: %v, want not-found", p, err)
		}
	}
	if st := c.Stats(); st.NegObjects != 2 {
		t.Fatalf("NegObjects=%d, want 2 (bounded)", st.NegObjects)
	}
	// /a was pushed out by /c; looking it up goes to the inner backend.
	opens := inner.opens.Load()
	if _, err := c.Open("/a"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open /a: %v", err)
	}
	if n := inner.opens.Load(); n == opens {
		t.Fatal("evicted negative entry still answered locally")
	}

	time.Sleep(15 * time.Millisecond)
	opens = inner.opens.Load()
	if _, err := c.Open("/c"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("open /c after TTL: %v", err)
	}
	if n := inner.opens.Load(); n == opens {
		t.Fatal("expired negative entry still answered locally")
	}
}

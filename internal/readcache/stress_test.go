package readcache

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/replication"
	"repro/internal/units"
)

// testFedCache builds a 3-site federation with a read-through cache
// in front of it, all wired to one metadata bus — the full PR 5 +
// cache stack the facility assembles in production.
func testFedCache(t testing.TB, cacheCfg Config) (*Cache, *replication.FederatedBackend, *replication.Engine, []*replication.Site, *metadata.Store) {
	t.Helper()
	meta := metadata.NewStore()
	sites := []*replication.Site{
		replication.NewSite("kit", adal.NewMemFS("kit"), 0),
		replication.NewSite("gridka", adal.NewMemFS("gridka"), 1),
		replication.NewSite("desy", adal.NewMemFS("desy"), 2),
	}
	cat := replication.NewCatalog(replication.CatalogConfig{Meta: meta, MountPrefix: "/sites"})
	eng, err := replication.NewEngine(replication.Config{
		Catalog: cat, Sites: sites, MinReplicas: 3,
		Meta: meta, MountPrefix: "/sites",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	fb := replication.NewFederated("fed", eng)
	cacheCfg.Meta = meta
	cacheCfg.MountPrefix = "/sites"
	c := New(fb, cacheCfg)
	t.Cleanup(c.Close)
	return c, fb, eng, sites, meta
}

func fedWrite(t testing.TB, fb *replication.FederatedBackend, path string, data []byte) {
	t.Helper()
	w, err := fb.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheStressKillRevive races cached reads, manual evictions,
// object remove/recreate cycles and a site kill/revive loop under
// -race: every successful read must return the object's exact bytes,
// and reads may fail only with not-found for an object that is
// legitimately mid-recreate.
func TestCacheStressKillRevive(t *testing.T) {
	c, fb, eng, sites, _ := testFedCache(t, Config{
		Memory: 96 * units.KiB,
		Disk:   adal.NewMemFS("cachedisk"), DiskBudget: 256 * units.KiB,
	})

	const objects = 24
	const objSize = 8 * units.KiB
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i), 0x5a}, int(objSize)/2)
	}
	paths := make([]string, objects)
	for i := range paths {
		paths[i] = fmt.Sprintf("/exp/obj-%03d", i)
		fedWrite(t, fb, paths[i], payload(i))
	}
	eng.Wait()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, notFounds atomic.Int64

	// Chaos: one site down at a time, kill/revive every few hundred µs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := sites[rng.Intn(len(sites))]
			s.SetDown(true)
			time.Sleep(300 * time.Microsecond)
			s.SetDown(false)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Evictor: hammers manual eviction so hits race removals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Evict(paths[rng.Intn(objects)])
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Churner: removes and recreates the last object with identical
	// bytes, so fills race "dropped" invalidations.
	const churn = objects - 1
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Remove(paths[churn]); err == nil {
				w, err := fb.Create(paths[churn])
				if err == nil {
					w.Write(payload(churn))
					w.Close()
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Readers.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(objects)
				r, err := c.Open(paths[i])
				if err != nil {
					// The churn object may legitimately be mid-recreate
					// (not found) or have its only fanned-out-so-far
					// replica on the currently killed site (site down).
					if i == churn && (errors.Is(err, adal.ErrNotFound) ||
						errors.Is(err, replication.ErrSiteDown)) {
						notFounds.Add(1)
						continue
					}
					t.Errorf("open %s: %v", paths[i], err)
					return
				}
				got, err := io.ReadAll(r)
				r.Close()
				if err != nil {
					t.Errorf("read %s: %v", paths[i], err)
					return
				}
				if !bytes.Equal(got, payload(i)) {
					t.Errorf("stale/corrupt read of %s: %d bytes", paths[i], len(got))
					return
				}
				reads.Add(1)
			}
		}(int64(10 + g))
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if reads.Load() == 0 {
		t.Fatal("no reads completed")
	}
	st := c.Stats()
	t.Logf("reads=%d notFound=%d stats=%+v", reads.Load(), notFounds.Load(), st)
}

// TestCachedMatchesDirectUnderKillSchedules is the property test: for
// seeded random kill/revive schedules, a read through the cache and a
// direct federated read must both return the object's original bytes
// — the cache may never serve anything a direct read would not.
func TestCachedMatchesDirectUnderKillSchedules(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, fb, eng, sites, _ := testFedCache(t, Config{
				Memory: 32 * units.KiB,
				Disk:   adal.NewMemFS("cachedisk"), DiskBudget: 64 * units.KiB,
			})
			rng := rand.New(rand.NewSource(seed))

			const objects = 8
			want := make([][]byte, objects)
			paths := make([]string, objects)
			for i := range paths {
				paths[i] = fmt.Sprintf("/exp/obj-%d", i)
				want[i] = bytes.Repeat([]byte{byte(seed), byte(i)}, 2048)
				fedWrite(t, fb, paths[i], want[i])
			}
			eng.Wait()

			for step := 0; step < 80; step++ {
				// Mutate the outage pattern: at most one site down, so
				// a readable replica always exists.
				for _, s := range sites {
					s.SetDown(false)
				}
				if rng.Intn(4) > 0 {
					sites[rng.Intn(len(sites))].SetDown(true)
				}
				i := rng.Intn(objects)
				cached, err := c.Open(paths[i])
				if err != nil {
					t.Fatalf("step %d: cached open %s: %v", step, paths[i], err)
				}
				got, err := io.ReadAll(cached)
				cached.Close()
				if err != nil {
					t.Fatalf("step %d: cached read: %v", step, err)
				}
				direct, err := fb.Open(paths[i])
				if err != nil {
					t.Fatalf("step %d: direct open: %v", step, err)
				}
				dgot, err := io.ReadAll(direct)
				direct.Close()
				if err != nil {
					t.Fatalf("step %d: direct read: %v", step, err)
				}
				if !bytes.Equal(got, want[i]) {
					t.Fatalf("step %d: cached bytes diverge from original", step)
				}
				if !bytes.Equal(got, dgot) {
					t.Fatalf("step %d: cached read differs from direct read", step)
				}
			}
			for _, s := range sites {
				s.SetDown(false)
			}
			eng.Wait()
		})
	}
}

package workflow

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
)

// Trigger binds a tag to a workflow: tagging any dataset with Tag
// runs Workflow on it (slide 12: "allow tagging data and triggering
// execution via DataBrowser").
type Trigger struct {
	Tag      string
	Workflow *Workflow
	Director Director // nil = SequentialDirector
	Retries  int      // re-execute a failed run up to this many times
}

// RunRecord describes one completed (or failed) triggered run.
type RunRecord struct {
	Workflow  string
	DatasetID string
	Tag       string
	Err       error
	Attempts  int
	Started   time.Time
	Finished  time.Time
	Outputs   Values
}

// Orchestrator subscribes to the metadata store and dispatches
// triggered workflow runs. Runs execute on whichever goroutine
// delivers the event — the tagging goroutine in the store's default
// sync mode, the store's bus worker in async mode — or on this
// orchestrator's own worker pool when asyncWorkers > 0.
type Orchestrator struct {
	layer *adal.Layer
	meta  *metadata.Store

	mu       sync.Mutex
	triggers map[string][]Trigger
	history  []RunRecord
	unsub    func()

	async chan func()
	wg    sync.WaitGroup
}

// NewOrchestrator creates an orchestrator over facility services.
// asyncWorkers > 0 runs triggered workflows on that many background
// workers; 0 runs them inline with the Tag call.
func NewOrchestrator(layer *adal.Layer, meta *metadata.Store, asyncWorkers int) *Orchestrator {
	o := &Orchestrator{
		layer:    layer,
		meta:     meta,
		triggers: make(map[string][]Trigger),
	}
	if asyncWorkers > 0 {
		o.async = make(chan func(), 1024)
		for i := 0; i < asyncWorkers; i++ {
			o.wg.Add(1)
			go func() {
				defer o.wg.Done()
				for fn := range o.async {
					fn()
				}
			}()
		}
	}
	o.unsub = meta.Subscribe(o.onEvent)
	return o
}

// Close detaches from the store and drains async workers.
func (o *Orchestrator) Close() {
	if o.unsub != nil {
		o.unsub()
		o.unsub = nil
	}
	if o.async != nil {
		close(o.async)
		o.wg.Wait()
		o.async = nil
	}
}

// AddTrigger registers a tag-triggered workflow.
func (o *Orchestrator) AddTrigger(t Trigger) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.triggers[t.Tag] = append(o.triggers[t.Tag], t)
}

// History returns a copy of all run records so far.
func (o *Orchestrator) History() []RunRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]RunRecord(nil), o.history...)
}

func (o *Orchestrator) onEvent(ev metadata.Event) {
	if ev.Type != metadata.EventTagged {
		return
	}
	o.mu.Lock()
	matched := append([]Trigger(nil), o.triggers[ev.Tag]...)
	o.mu.Unlock()
	for _, t := range matched {
		t := t
		ds := ev.Dataset
		run := func() { o.runTriggered(t, ds, ev.Tag) }
		if o.async != nil {
			// Register the handed-off run with the store's flush
			// barrier before this callback returns, so Meta.Flush
			// keeps waiting until the pool finishes it.
			release := o.meta.HoldFlush()
			o.async <- func() {
				defer release()
				run()
			}
		} else {
			run()
		}
	}
}

// runTriggered executes one workflow against a dataset and writes the
// provenance record back into the metadata DB.
func (o *Orchestrator) runTriggered(t Trigger, ds metadata.Dataset, tag string) {
	director := t.Director
	if director == nil {
		director = SequentialDirector{}
	}
	rec := RunRecord{
		Workflow:  t.Workflow.Name,
		DatasetID: ds.ID,
		Tag:       tag,
		Started:   time.Now(),
	}
	ctx := &Context{Layer: o.layer, Meta: o.meta, Dataset: ds}
	var out Values
	var err error
	for attempt := 0; attempt <= t.Retries; attempt++ {
		rec.Attempts = attempt + 1
		out, err = director.Run(t.Workflow, ctx, Values{
			"dataset.id":   ds.ID,
			"dataset.path": ds.Path,
		})
		if err == nil {
			break
		}
	}
	rec.Finished = time.Now()
	rec.Err = err
	rec.Outputs = out

	// Provenance: the paper's METADATA-N block for this pass.
	results := map[string]string{}
	var outputs []string
	status := "ok"
	if err != nil {
		status = "error"
		results["error"] = err.Error()
	}
	results["status"] = status
	for k, v := range out {
		if s, ok := v.(string); ok {
			if k == "output.path" {
				outputs = append(outputs, s)
				continue
			}
			results[k] = s
		}
	}
	if _, perr := o.meta.AddProcessing(ds.ID, metadata.Processing{
		Tool:       "workflow:" + t.Workflow.Name,
		Params:     map[string]string{"trigger": tag},
		StartedAt:  rec.Started,
		FinishedAt: rec.Finished,
		Results:    results,
		Outputs:    outputs,
	}); perr != nil && rec.Err == nil {
		rec.Err = fmt.Errorf("workflow: provenance: %w", perr)
	}
	// Record the run before setting the completion tag: the tag may
	// synchronously trigger chained workflows, and history must list
	// causes before effects.
	o.mu.Lock()
	o.history = append(o.history, rec)
	o.mu.Unlock()
	if err == nil {
		// Mark completion so users and rules can find processed data.
		_ = o.meta.Tag(ds.ID, "processed:"+t.Workflow.Name)
	}
}

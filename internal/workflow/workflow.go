// Package workflow is the LSDF workflow orchestration layer (slides
// 12-13): "help the users automate the workflows ... allow tagging
// data and triggering execution via DataBrowser. Data from finished
// workflows stored and tagged in DB. Integrated with the Kepler
// workflow orchestrator."
//
// Following Kepler's model, a Workflow is a directed acyclic graph of
// Actors; a Director decides the execution discipline (sequential or
// parallel). The Orchestrator connects workflows to the metadata
// store: tags act as triggers, and every run writes a provenance
// record (the paper's "processing N metadata + results N") back onto
// the dataset that triggered it.
//
// Trigger delivery follows the metadata store's event mode. In the
// default synchronous mode the orchestrator's callback — and with it
// the triggered workflow, unless AsyncWorkflows moves the run to a
// worker pool — executes inline on the goroutine that tagged the
// dataset. When the store runs its async event bus, the callback
// executes on the store's delivery worker instead: Tag returns
// immediately and metadata.Store.Flush is the barrier that waits
// until all triggered runs (and the provenance they write) are
// visible. Runs handed to the AsyncWorkflows pool register with that
// barrier via HoldFlush, so Flush covers them too, in either event
// mode. Events for one dataset arrive in commit order in both modes.
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/adal"
	"repro/internal/metadata"
)

// Values carries named data between actors. Keys are port names.
type Values map[string]any

// clone shallow-copies a Values map.
func (v Values) clone() Values {
	out := make(Values, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Context gives actors access to facility services during execution.
type Context struct {
	Layer   *adal.Layer
	Meta    *metadata.Store
	Dataset metadata.Dataset // the triggering dataset, zero for ad-hoc runs
}

// Actor is one processing step.
type Actor interface {
	// Execute consumes the merged outputs of upstream nodes and
	// produces this node's outputs.
	Execute(ctx *Context, in Values) (Values, error)
}

// ActorFunc adapts a function to Actor.
type ActorFunc func(ctx *Context, in Values) (Values, error)

// Execute implements Actor.
func (f ActorFunc) Execute(ctx *Context, in Values) (Values, error) { return f(ctx, in) }

// Errors reported by graph construction and validation.
var (
	ErrDuplicateNode = errors.New("workflow: duplicate node")
	ErrUnknownDep    = errors.New("workflow: unknown dependency")
	ErrCycle         = errors.New("workflow: graph has a cycle")
)

type node struct {
	name  string
	actor Actor
	deps  []string
}

// Workflow is a named DAG of actors.
type Workflow struct {
	Name  string
	nodes map[string]*node
	order []string // insertion order, for deterministic reporting
}

// New creates an empty workflow.
func New(name string) *Workflow {
	return &Workflow{Name: name, nodes: make(map[string]*node)}
}

// AddNode registers an actor under name, depending on deps.
func (w *Workflow) AddNode(name string, actor Actor, deps ...string) error {
	if _, dup := w.nodes[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, name)
	}
	w.nodes[name] = &node{name: name, actor: actor, deps: deps}
	w.order = append(w.order, name)
	return nil
}

// MustAddNode is AddNode that panics; for static graph construction.
func (w *Workflow) MustAddNode(name string, actor Actor, deps ...string) {
	if err := w.AddNode(name, actor, deps...); err != nil {
		panic(err)
	}
}

// Validate checks that dependencies exist and the graph is acyclic,
// returning a topological order.
func (w *Workflow) Validate() ([]string, error) {
	indeg := make(map[string]int, len(w.nodes))
	out := make(map[string][]string, len(w.nodes))
	for _, n := range w.nodes {
		for _, d := range n.deps {
			if _, ok := w.nodes[d]; !ok {
				return nil, fmt.Errorf("%w: %q needs %q", ErrUnknownDep, n.name, d)
			}
			indeg[n.name]++
			out[d] = append(out[d], n.name)
		}
	}
	var ready []string
	for _, name := range w.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	var topo []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		topo = append(topo, n)
		next := append([]string(nil), out[n]...)
		sort.Strings(next)
		for _, m := range next {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
		sort.Strings(ready)
	}
	if len(topo) != len(w.nodes) {
		return nil, ErrCycle
	}
	return topo, nil
}

// Director executes a validated workflow.
type Director interface {
	Run(w *Workflow, ctx *Context, init Values) (Values, error)
}

// SequentialDirector runs nodes one at a time in topological order —
// Kepler's SDF director discipline.
type SequentialDirector struct{}

// Run implements Director. The returned Values merge every node's
// outputs, later nodes overriding earlier ones on key collisions.
func (SequentialDirector) Run(w *Workflow, ctx *Context, init Values) (Values, error) {
	topo, err := w.Validate()
	if err != nil {
		return nil, err
	}
	outputs := make(map[string]Values, len(topo))
	final := init.clone()
	for _, name := range topo {
		n := w.nodes[name]
		in := gatherInputs(init, outputs, n)
		out, err := n.actor.Execute(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("workflow %s: node %s: %w", w.Name, name, err)
		}
		outputs[name] = out
		for k, v := range out {
			final[k] = v
		}
	}
	return final, nil
}

// ParallelDirector runs independent nodes concurrently — Kepler's PN
// director discipline. MaxParallel bounds concurrency (0 = unbounded).
type ParallelDirector struct {
	MaxParallel int
}

// Run implements Director.
func (d ParallelDirector) Run(w *Workflow, ctx *Context, init Values) (Values, error) {
	if _, err := w.Validate(); err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		outputs  = make(map[string]Values, len(w.nodes))
		done     = make(map[string]bool, len(w.nodes))
		running  = make(map[string]bool, len(w.nodes))
		firstErr error
		wg       sync.WaitGroup
	)
	var sem chan struct{}
	if d.MaxParallel > 0 {
		sem = make(chan struct{}, d.MaxParallel)
	}
	cond := sync.NewCond(&mu)

	runnable := func() []string {
		var out []string
		for _, name := range w.order {
			n := w.nodes[name]
			if done[name] || running[name] {
				continue
			}
			ok := true
			for _, dep := range n.deps {
				if !done[dep] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, name)
			}
		}
		sort.Strings(out)
		return out
	}

	mu.Lock()
	for len(done) < len(w.nodes) && firstErr == nil {
		batch := runnable()
		if len(batch) == 0 {
			cond.Wait()
			continue
		}
		for _, name := range batch {
			running[name] = true
			n := w.nodes[name]
			in := gatherInputs(init, outputs, n)
			wg.Add(1)
			go func(name string, n *node, in Values) {
				defer wg.Done()
				if sem != nil {
					sem <- struct{}{}
					defer func() { <-sem }()
				}
				out, err := n.actor.Execute(ctx, in)
				mu.Lock()
				defer mu.Unlock()
				running[name] = false
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("workflow %s: node %s: %w", w.Name, name, err)
				} else if err == nil {
					outputs[name] = out
					done[name] = true
				}
				cond.Broadcast()
			}(name, n, in)
		}
		cond.Wait()
	}
	mu.Unlock()
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	final := init.clone()
	for _, name := range w.order {
		if out, ok := outputs[name]; ok {
			for k, v := range out {
				final[k] = v
			}
		}
	}
	return final, nil
}

// gatherInputs merges init with the outputs of a node's dependencies
// in declared order (later deps win on collision).
func gatherInputs(init Values, outputs map[string]Values, n *node) Values {
	in := init.clone()
	for _, dep := range n.deps {
		for k, v := range outputs[dep] {
			in[k] = v
		}
	}
	return in
}

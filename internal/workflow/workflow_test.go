package workflow

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
)

func appendActor(log *[]string, mu *sync.Mutex, name string) Actor {
	return ActorFunc(func(ctx *Context, in Values) (Values, error) {
		mu.Lock()
		*log = append(*log, name)
		mu.Unlock()
		return Values{name: "done"}, nil
	})
}

func TestSequentialOrder(t *testing.T) {
	w := New("seq")
	var log []string
	var mu sync.Mutex
	w.MustAddNode("c", appendActor(&log, &mu, "c"), "b")
	w.MustAddNode("a", appendActor(&log, &mu, "a"))
	w.MustAddNode("b", appendActor(&log, &mu, "b"), "a")
	out, err := SequentialDirector{}.Run(w, &Context{}, Values{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "a,b,c" {
		t.Fatalf("order = %v", log)
	}
	for _, k := range []string{"a", "b", "c"} {
		if out[k] != "done" {
			t.Fatalf("outputs = %v", out)
		}
	}
}

func TestDiamondDependency(t *testing.T) {
	// a -> {b, c} -> d: d must see both b's and c's outputs.
	w := New("diamond")
	mk := func(name string) Actor {
		return ActorFunc(func(_ *Context, in Values) (Values, error) {
			return Values{name: name}, nil
		})
	}
	w.MustAddNode("a", mk("a"))
	w.MustAddNode("b", mk("b"), "a")
	w.MustAddNode("c", mk("c"), "a")
	var dIn Values
	w.MustAddNode("d", ActorFunc(func(_ *Context, in Values) (Values, error) {
		dIn = in
		return Values{"d": "d"}, nil
	}), "b", "c")
	if _, err := (SequentialDirector{}).Run(w, &Context{}, Values{"init": "x"}); err != nil {
		t.Fatal(err)
	}
	if dIn["b"] != "b" || dIn["c"] != "c" || dIn["init"] != "x" {
		t.Fatalf("d inputs = %v", dIn)
	}
	if _, ok := dIn["d"]; ok {
		t.Fatal("node saw its own output")
	}
}

func TestValidateErrors(t *testing.T) {
	w := New("bad")
	w.MustAddNode("a", ActorFunc(nil), "missing")
	if _, err := w.Validate(); !errors.Is(err, ErrUnknownDep) {
		t.Fatalf("err = %v", err)
	}
	w2 := New("cycle")
	w2.MustAddNode("a", ActorFunc(nil), "b")
	w2.MustAddNode("b", ActorFunc(nil), "a")
	if _, err := w2.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
	w3 := New("dup")
	w3.MustAddNode("a", ActorFunc(nil))
	if err := w3.AddNode("a", ActorFunc(nil)); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestNodeErrorPropagates(t *testing.T) {
	w := New("err")
	boom := errors.New("boom")
	w.MustAddNode("a", ActorFunc(func(*Context, Values) (Values, error) { return nil, boom }))
	ran := false
	w.MustAddNode("b", ActorFunc(func(*Context, Values) (Values, error) {
		ran = true
		return nil, nil
	}), "a")
	if _, err := (SequentialDirector{}).Run(w, &Context{}, Values{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("dependent node ran after failure")
	}
}

func TestParallelDirectorRunsIndependentNodesConcurrently(t *testing.T) {
	w := New("par")
	var concurrent, peak int32
	slow := func(name string) Actor {
		return ActorFunc(func(*Context, Values) (Values, error) {
			cur := atomic.AddInt32(&concurrent, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			atomic.AddInt32(&concurrent, -1)
			return Values{name: "ok"}, nil
		})
	}
	for i := 0; i < 4; i++ {
		w.MustAddNode(fmt.Sprintf("n%d", i), slow(fmt.Sprintf("n%d", i)))
	}
	out, err := (ParallelDirector{}).Run(w, &Context{}, Values{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("outputs = %v", out)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak)
	}
}

func TestParallelDirectorRespectsDeps(t *testing.T) {
	w := New("pdeps")
	var order []string
	var mu sync.Mutex
	w.MustAddNode("late", ActorFunc(func(*Context, Values) (Values, error) {
		mu.Lock()
		order = append(order, "late")
		mu.Unlock()
		return nil, nil
	}), "early")
	w.MustAddNode("early", ActorFunc(func(*Context, Values) (Values, error) {
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		order = append(order, "early")
		mu.Unlock()
		return nil, nil
	}))
	if _, err := (ParallelDirector{MaxParallel: 2}).Run(w, &Context{}, Values{}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v", order)
	}
}

func TestParallelDirectorError(t *testing.T) {
	w := New("perr")
	boom := errors.New("boom")
	w.MustAddNode("bad", ActorFunc(func(*Context, Values) (Values, error) { return nil, boom }))
	w.MustAddNode("dep", ActorFunc(func(*Context, Values) (Values, error) { return nil, nil }), "bad")
	if _, err := (ParallelDirector{}).Run(w, &Context{}, Values{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func newFacility(t *testing.T) (*adal.Layer, *metadata.Store) {
	t.Helper()
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	return layer, metadata.NewStore()
}

// analysisWorkflow reads the triggering dataset, derives a result
// object, and reports its path.
func analysisWorkflow(t *testing.T) *Workflow {
	t.Helper()
	w := New("zebrafish-analysis")
	w.MustAddNode("read", ActorFunc(func(ctx *Context, in Values) (Values, error) {
		r, err := ctx.Layer.Open(in["dataset.path"].(string))
		if err != nil {
			return nil, err
		}
		defer r.Close()
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		return Values{"bytes": fmt.Sprint(len(data)), "data": data}, nil
	}))
	w.MustAddNode("segment", ActorFunc(func(ctx *Context, in Values) (Values, error) {
		data := in["data"].([]byte)
		outPath := in["dataset.path"].(string) + ".segmented"
		wtr, err := ctx.Layer.Create(outPath)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(wtr, "segmented %d bytes", len(data))
		wtr.Close()
		return Values{"output.path": outPath, "cells": "42"}, nil
	}), "read")
	return w
}

func TestTagTriggeredRunWithProvenance(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	orch.AddTrigger(Trigger{Tag: "analyze", Workflow: analysisWorkflow(t)})

	// Ingest one object manually.
	w, _ := layer.Create("/itg/img1")
	io.WriteString(w, strings.Repeat("p", 512))
	w.Close()
	ds, err := meta.Create("zebrafish", "/itg/img1", 512, "", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Tagging runs the workflow synchronously.
	if err := meta.Tag(ds.ID, "analyze"); err != nil {
		t.Fatal(err)
	}

	hist := orch.History()
	if len(hist) != 1 || hist[0].Err != nil {
		t.Fatalf("history = %+v", hist)
	}
	// Result object exists.
	if _, err := layer.Stat("/itg/img1.segmented"); err != nil {
		t.Fatalf("derived object missing: %v", err)
	}
	// Provenance recorded on the dataset.
	got, _ := meta.Get(ds.ID)
	if len(got.Processings) != 1 {
		t.Fatalf("processings = %+v", got.Processings)
	}
	p := got.Processings[0]
	if p.Tool != "workflow:zebrafish-analysis" || p.Results["status"] != "ok" ||
		p.Results["cells"] != "42" || len(p.Outputs) != 1 {
		t.Fatalf("provenance = %+v", p)
	}
	if !got.HasTag("processed:zebrafish-analysis") {
		t.Fatal("completion tag missing")
	}
}

func TestTriggerOnlyOnMatchingTag(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	orch.AddTrigger(Trigger{Tag: "analyze", Workflow: analysisWorkflow(t)})
	w, _ := layer.Create("/x")
	io.WriteString(w, "d")
	w.Close()
	ds, _ := meta.Create("p", "/x", 1, "", nil)
	if err := meta.Tag(ds.ID, "unrelated"); err != nil {
		t.Fatal(err)
	}
	if len(orch.History()) != 0 {
		t.Fatal("unrelated tag triggered a run")
	}
	// Re-tagging with same tag is idempotent: no second run.
	if err := meta.Tag(ds.ID, "analyze"); err != nil {
		t.Fatal(err)
	}
	if err := meta.Tag(ds.ID, "analyze"); err != nil {
		t.Fatal(err)
	}
	if got := len(orch.History()); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
}

func TestFailedRunRecordsErrorProvenance(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	wf := New("broken")
	wf.MustAddNode("explode", ActorFunc(func(*Context, Values) (Values, error) {
		return nil, errors.New("detector offline")
	}))
	orch.AddTrigger(Trigger{Tag: "go", Workflow: wf})
	ds, _ := meta.Create("p", "/y", 1, "", nil)
	if err := meta.Tag(ds.ID, "go"); err != nil {
		t.Fatal(err)
	}
	got, _ := meta.Get(ds.ID)
	if len(got.Processings) != 1 {
		t.Fatalf("processings = %d", len(got.Processings))
	}
	if got.Processings[0].Results["status"] != "error" {
		t.Fatalf("provenance = %+v", got.Processings[0])
	}
	if got.HasTag("processed:broken") {
		t.Fatal("failed run must not set the completion tag")
	}
}

func TestAsyncOrchestrator(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 4)
	orch.AddTrigger(Trigger{Tag: "analyze", Workflow: analysisWorkflow(t)})
	const n = 12
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/a/%02d", i)
		w, _ := layer.Create(path)
		io.WriteString(w, "data")
		w.Close()
		ds, err := meta.Create("p", path, 4, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := meta.Tag(ds.ID, "analyze"); err != nil {
			t.Fatal(err)
		}
	}
	orch.Close() // drains workers
	if got := len(orch.History()); got != n {
		t.Fatalf("runs = %d, want %d", got, n)
	}
	for _, rec := range orch.History() {
		if rec.Err != nil {
			t.Fatalf("run failed: %+v", rec)
		}
	}
}

func TestTriggerRetries(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	attempts := 0
	wf := New("flaky")
	wf.MustAddNode("step", ActorFunc(func(*Context, Values) (Values, error) {
		attempts++
		if attempts < 3 {
			return nil, errors.New("transient")
		}
		return Values{"ok": "yes"}, nil
	}))
	orch.AddTrigger(Trigger{Tag: "go", Workflow: wf, Retries: 3})
	ds, _ := meta.Create("p", "/retry", 1, "", nil)
	if err := meta.Tag(ds.ID, "go"); err != nil {
		t.Fatal(err)
	}
	hist := orch.History()
	if len(hist) != 1 || hist[0].Err != nil {
		t.Fatalf("history = %+v", hist)
	}
	if hist[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", hist[0].Attempts)
	}
	got, _ := meta.Get(ds.ID)
	if !got.HasTag("processed:flaky") {
		t.Fatal("completion tag missing after retried success")
	}
}

func TestTriggerRetriesExhausted(t *testing.T) {
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	wf := New("doomed")
	wf.MustAddNode("step", ActorFunc(func(*Context, Values) (Values, error) {
		return nil, errors.New("permanent")
	}))
	orch.AddTrigger(Trigger{Tag: "go", Workflow: wf, Retries: 2})
	ds, _ := meta.Create("p", "/doomed", 1, "", nil)
	if err := meta.Tag(ds.ID, "go"); err != nil {
		t.Fatal(err)
	}
	hist := orch.History()
	if len(hist) != 1 || hist[0].Err == nil || hist[0].Attempts != 3 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestWorkflowChaining(t *testing.T) {
	// Workflow A's completion tag triggers workflow B.
	layer, meta := newFacility(t)
	orch := NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	mkWF := func(name string) *Workflow {
		w := New(name)
		w.MustAddNode("step", ActorFunc(func(*Context, Values) (Values, error) {
			return Values{"by": name}, nil
		}))
		return w
	}
	orch.AddTrigger(Trigger{Tag: "start", Workflow: mkWF("first")})
	orch.AddTrigger(Trigger{Tag: "processed:first", Workflow: mkWF("second")})
	ds, _ := meta.Create("p", "/chain", 1, "", nil)
	if err := meta.Tag(ds.ID, "start"); err != nil {
		t.Fatal(err)
	}
	hist := orch.History()
	if len(hist) != 2 || hist[0].Workflow != "first" || hist[1].Workflow != "second" {
		t.Fatalf("history = %+v", hist)
	}
	got, _ := meta.Get(ds.ID)
	if len(got.Processings) != 2 {
		t.Fatalf("processings = %d", len(got.Processings))
	}
}

package workflow

import (
	"fmt"
	"testing"
	"testing/quick"
)

// buildRandomDAG constructs an acyclic workflow: node i may depend on
// any subset of nodes 0..i-1, chosen from the seed bits. Each actor
// emits its own name mapped to the sorted count of its visible inputs,
// so outputs are a pure function of the DAG shape.
func buildRandomDAG(seed uint64, n int) *Workflow {
	w := New("random")
	for i := 0; i < n; i++ {
		var deps []string
		for j := 0; j < i; j++ {
			if (seed>>(uint(i*7+j)%63))&1 == 1 {
				deps = append(deps, nodeName(j))
			}
		}
		name := nodeName(i)
		w.MustAddNode(name, ActorFunc(func(_ *Context, in Values) (Values, error) {
			return Values{name: fmt.Sprint(len(in))}, nil
		}), deps...)
	}
	return w
}

func nodeName(i int) string { return fmt.Sprintf("n%02d", i) }

// Property: the parallel director produces exactly the sequential
// director's outputs for any DAG — scheduling must never change
// results.
func TestDirectorEquivalenceQuick(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%8) + 1
		seqOut, err := SequentialDirector{}.Run(buildRandomDAG(seed, n), &Context{}, Values{"init": "x"})
		if err != nil {
			return false
		}
		parOut, err := (ParallelDirector{MaxParallel: 3}).Run(buildRandomDAG(seed, n), &Context{}, Values{"init": "x"})
		if err != nil {
			return false
		}
		if len(seqOut) != len(parOut) {
			return false
		}
		for k, v := range seqOut {
			if parOut[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: validation accepts every DAG built by construction and
// returns a true topological order (deps precede dependents).
func TestValidateTopologicalQuick(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%10) + 1
		w := buildRandomDAG(seed, n)
		topo, err := w.Validate()
		if err != nil || len(topo) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, name := range topo {
			pos[name] = i
		}
		for name, node := range w.nodes {
			for _, dep := range node.deps {
				if pos[dep] >= pos[name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

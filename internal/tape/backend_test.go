package tape

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/adal"
	"repro/internal/units"
)

func fsWrite(t *testing.T, fs *FS, path string, data []byte) {
	t.Helper()
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFSRoundTrip(t *testing.T) {
	fs := NewFS("tape", FSConfig{})
	data := []byte("archive me")
	fsWrite(t, fs, "/a/x", data)

	r, err := fs.Open("/a/x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("content differs")
	}
	info, err := fs.Stat("/a/x")
	if err != nil || info.Size != units.Bytes(len(data)) {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if _, err := fs.Create("/a/x"); !errors.Is(err, adal.ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if _, err := fs.Open("/a/missing"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("missing open err = %v", err)
	}
	// The reserved-but-unclosed name is invisible to readers.
	if _, err := fs.Create("/a/pending"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/a/pending"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("pending open err = %v", err)
	}
}

func TestFSCartridgePacking(t *testing.T) {
	fs := NewFS("tape", FSConfig{CartridgeSize: 10 * units.KiB})
	for i := 0; i < 5; i++ {
		fsWrite(t, fs, fmt.Sprintf("/o/%d", i), make([]byte, 4*1024))
	}
	// 5 × 4 KiB into 10 KiB cartridges: two objects per cartridge.
	carts := fs.CartridgeList()
	if len(carts) != 3 {
		t.Fatalf("cartridges = %d, want 3", len(carts))
	}
	// An oversized object gets a dedicated cartridge.
	fsWrite(t, fs, "/o/huge", make([]byte, 64*1024))
	carts = fs.CartridgeList()
	last := carts[len(carts)-1]
	if last.Capacity != 64*units.KiB || last.Used != 64*units.KiB {
		t.Fatalf("oversized cartridge = %+v", last)
	}
}

func TestFSMountAccounting(t *testing.T) {
	fs := NewFS("tape", FSConfig{CartridgeSize: 4 * units.KiB})
	fsWrite(t, fs, "/a", make([]byte, 4*1024)) // cartridge 1
	fsWrite(t, fs, "/b", make([]byte, 4*1024)) // cartridge 2

	read := func(p string) {
		r, err := fs.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r)
		r.Close()
	}
	read("/a")
	read("/a") // same cartridge: cache hit
	read("/b") // exchange
	st := fs.FSStats()
	if st.Mounts != 2 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesOut != 12*units.KiB || st.BytesIn != 8*units.KiB {
		t.Fatalf("bytes = %+v", st)
	}
}

func TestFSRemoveAndList(t *testing.T) {
	fs := NewFS("tape", FSConfig{})
	fsWrite(t, fs, "/d/a", []byte("aa"))
	fsWrite(t, fs, "/d/b", []byte("bb"))
	infos, err := fs.List("/d")
	if err != nil || len(infos) != 2 || infos[0].Path != "/d/a" {
		t.Fatalf("list = %+v, %v", infos, err)
	}
	if err := fs.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d/a"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("stat after remove err = %v", err)
	}
	if err := fs.Remove("/d/a"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestFSConcurrentWriters(t *testing.T) {
	fs := NewFS("tape", FSConfig{CartridgeSize: 64 * units.KiB})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fsWrite(t, fs, fmt.Sprintf("/w%d/%d", w, i), bytes.Repeat([]byte{byte(w)}, 1024))
			}
		}()
	}
	wg.Wait()
	st := fs.FSStats()
	if st.Objects != 160 || st.BytesIn != 160*units.KiB {
		t.Fatalf("stats = %+v", st)
	}
	for w := 0; w < 8; w++ {
		for i := 0; i < 20; i++ {
			r, err := fs.Open(fmt.Sprintf("/w%d/%d", w, i))
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(r)
			r.Close()
			if !bytes.Equal(got, bytes.Repeat([]byte{byte(w)}, 1024)) {
				t.Fatalf("w%d/%d differs", w, i)
			}
		}
	}
}

package tape

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func newLib(t *testing.T, drives int) (*sim.Engine, *Library) {
	t.Helper()
	eng := sim.New(1)
	cfg := DefaultConfig()
	cfg.Drives = drives
	lb := New(eng, cfg)
	return eng, lb
}

func TestWriteTiming(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("c1", 1500*units.GB)
	var done time.Duration
	lb.Write("c1", 14*units.GB, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		done = eng.Now()
	})
	eng.Run()
	// mount 90s + seek 50s + 14GB/140MBps=100s = 240s.
	if math.Abs(done.Seconds()-240) > 0.5 {
		t.Fatalf("write completed at %v, want 240s", done)
	}
	c, _ := lb.Cartridge("c1")
	if c.Used() != 14*units.GB {
		t.Fatalf("cartridge used = %v", c.Used())
	}
}

func TestMountCacheHit(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("c1", 1500*units.GB)
	var second time.Duration
	lb.Write("c1", 14*units.GB, func(error) {})
	lb.Write("c1", 14*units.GB, func(error) { second = eng.Now() })
	eng.Run()
	// First: 90+50+100 = 240. Second reuses the mount: +50+100 = 390.
	if math.Abs(second.Seconds()-390) > 0.5 {
		t.Fatalf("second write at %v, want 390s", second)
	}
	st := lb.Stats()
	if st.Mounts != 1 {
		t.Fatalf("mounts = %d, want 1", st.Mounts)
	}
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}
}

func TestEvictionLRU(t *testing.T) {
	eng, lb := newLib(t, 2)
	for _, id := range []string{"a", "b", "c"} {
		lb.AddCartridge(id, 1500*units.GB)
	}
	lb.Write("a", units.GB, func(error) {})
	lb.Write("b", units.GB, func(error) {})
	eng.Run()
	// Both drives hold a and b; writing c must evict the LRU (a).
	lb.Write("c", units.GB, func(error) {})
	eng.Run()
	mounted := map[string]bool{}
	for _, d := range lb.drives {
		mounted[d.mounted] = true
	}
	if mounted["a"] {
		t.Fatal("LRU cartridge a should have been evicted")
	}
	if !mounted["b"] || !mounted["c"] {
		t.Fatalf("mounted set %v, want b and c", mounted)
	}
	if got := lb.Stats().RobotTrips; got != 3 {
		t.Fatalf("robot trips = %d, want 3", got)
	}
}

func TestParallelDrives(t *testing.T) {
	eng, lb := newLib(t, 2)
	lb.AddCartridge("a", 1500*units.GB)
	lb.AddCartridge("b", 1500*units.GB)
	var doneA, doneB time.Duration
	lb.Write("a", 14*units.GB, func(error) { doneA = eng.Now() })
	lb.Write("b", 14*units.GB, func(error) { doneB = eng.Now() })
	eng.Run()
	// Two drives but one robot: the second mount is serialized behind
	// the first (robot busy 0-90, then 90-180), then streams.
	if math.Abs(doneA.Seconds()-240) > 0.5 {
		t.Fatalf("doneA = %v, want 240s", doneA)
	}
	if math.Abs(doneB.Seconds()-330) > 0.5 {
		t.Fatalf("doneB = %v, want 330s (robot-serialized)", doneB)
	}
}

func TestQueueWhenAllDrivesBusy(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("a", 1500*units.GB)
	lb.AddCartridge("b", 1500*units.GB)
	order := []string{}
	lb.Write("a", 14*units.GB, func(error) { order = append(order, "a") })
	lb.Write("b", 14*units.GB, func(error) { order = append(order, "b") })
	if st := lb.Stats(); st.QueueLength != 1 {
		t.Fatalf("queue = %d, want 1", st.QueueLength)
	}
	eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("service order %v", order)
	}
}

func TestCartridgeFull(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("small", units.GB)
	var got error
	lb.Write("small", 2*units.GB, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrCartridgeFull) {
		t.Fatalf("err = %v, want ErrCartridgeFull", got)
	}
}

func TestCapacityReservedAtSubmit(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("c", 10*units.GB)
	var err1, err2 error
	lb.Write("c", 6*units.GB, func(err error) { err1 = err })
	lb.Write("c", 6*units.GB, func(err error) { err2 = err })
	eng.Run()
	if err1 != nil {
		t.Fatalf("first write failed: %v", err1)
	}
	if !errors.Is(err2, ErrCartridgeFull) {
		t.Fatalf("second write err = %v, want ErrCartridgeFull", err2)
	}
}

func TestUnknownCartridge(t *testing.T) {
	eng, lb := newLib(t, 1)
	var got error
	lb.Read("ghost", units.GB, func(err error) { got = err })
	eng.Run()
	if !errors.Is(got, ErrNoCartridge) {
		t.Fatalf("err = %v, want ErrNoCartridge", got)
	}
}

func TestReadDoesNotConsume(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("c", 10*units.GB)
	lb.Write("c", 5*units.GB, func(error) {})
	eng.Run()
	lb.Read("c", 5*units.GB, func(err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
	})
	eng.Run()
	c, _ := lb.Cartridge("c")
	if c.Used() != 5*units.GB {
		t.Fatalf("used after read = %v", c.Used())
	}
	st := lb.Stats()
	if st.BytesIn != 5*units.GB || st.BytesOut != 5*units.GB {
		t.Fatalf("bytes in/out = %v/%v", st.BytesIn, st.BytesOut)
	}
}

func TestStatsWaits(t *testing.T) {
	eng, lb := newLib(t, 1)
	lb.AddCartridge("a", units.PB)
	for i := 0; i < 5; i++ {
		lb.Write("a", 14*units.GB, func(error) {})
	}
	eng.Run()
	st := lb.Stats()
	if st.Served != 5 {
		t.Fatalf("served = %d", st.Served)
	}
	if st.AvgWaitSec <= 0 {
		t.Fatal("queued requests must accumulate wait time")
	}
	if st.P95WaitSec < st.AvgWaitSec {
		t.Fatalf("p95 %f < avg %f", st.P95WaitSec, st.AvgWaitSec)
	}
}

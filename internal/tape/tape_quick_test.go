package tape

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/units"
)

// Property: conservation — every submitted request either completes
// or fails with an error; bytes written equal the sum of successful
// writes; cartridge usage never exceeds capacity.
func TestConservationQuick(t *testing.T) {
	f := func(ops []uint8, drives8 uint8) bool {
		drives := int(drives8%3) + 1
		eng := sim.New(9)
		cfg := DefaultConfig()
		cfg.Drives = drives
		lb := New(eng, cfg)
		lb.AddCartridge("a", 50*units.GB)
		lb.AddCartridge("b", 50*units.GB)

		var done, failed int
		var wantBytes units.Bytes
		for _, op := range ops {
			cart := "a"
			if op%2 == 1 {
				cart = "b"
			}
			size := units.Bytes(int(op%20)+1) * units.GB
			write := op%3 != 0
			cb := func(err error) {
				if err != nil {
					failed++
				} else {
					done++
				}
			}
			if write {
				lb.Write(cart, size, cb)
			} else {
				lb.Read(cart, size, cb)
			}
			_ = wantBytes
		}
		eng.Run()
		if done+failed != len(ops) {
			return false
		}
		for _, c := range lb.Cartridges() {
			if c.Used() > c.Capacity || c.Used() < 0 {
				return false
			}
		}
		st := lb.Stats()
		return st.QueueLength == 0 && st.Served == uint64(done)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with one cartridge and any number of requests, exactly
// one mount happens (the mount cache never thrashes on a
// single-cartridge workload).
func TestSingleCartridgeOneMountQuick(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%30) + 1
		eng := sim.New(3)
		lb := New(eng, DefaultConfig())
		lb.AddCartridge("only", units.PB)
		for i := 0; i < n; i++ {
			lb.Read("only", units.GB, func(error) {})
		}
		eng.Run()
		return lb.Stats().Mounts == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyCartridgesStress(t *testing.T) {
	eng := sim.New(7)
	cfg := DefaultConfig()
	cfg.Drives = 3
	lb := New(eng, cfg)
	for i := 0; i < 20; i++ {
		lb.AddCartridge(fmt.Sprintf("c%02d", i), units.PB)
	}
	served := 0
	// Bursty access: ten consecutive requests per cartridge, so the
	// drive binding turns all but the first of each burst into cache
	// hits.
	for i := 0; i < 200; i++ {
		lb.Write(fmt.Sprintf("c%02d", (i/10)%20), units.GB, func(err error) {
			if err == nil {
				served++
			}
		})
	}
	eng.Run()
	if served != 200 {
		t.Fatalf("served = %d", served)
	}
	st := lb.Stats()
	if st.Mounts != 20 {
		t.Fatalf("mounts = %d, want 20 (one per burst)", st.Mounts)
	}
	if st.CacheHits != 180 {
		t.Fatalf("cache hits = %d, want 180", st.CacheHits)
	}
}

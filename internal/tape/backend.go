package tape

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/adal"
	"repro/internal/units"
)

// FSConfig configures the real-time tape store. Zero penalties make
// it behave like a slowless archive (the test default); setting them
// reproduces the mount/seek mechanics the discrete-event Library
// models in virtual time, but paid in real time on the recall path.
type FSConfig struct {
	CartridgeSize units.Bytes   // default 1.5 TB (LTO-5)
	MountPenalty  time.Duration // real-time cost of switching cartridges on read
	SeekPenalty   time.Duration // real-time cost of locating an object
}

// FS is a real (byte-moving, concurrent) tape store exposed through
// the ADAL Backend contract: the cold tier of the live tiered data
// path. Objects are packed append-only onto cartridges opened on
// demand; reads of a cartridge other than the one last mounted pay
// the configured mount penalty, which is what makes recall latency
// dominated by mechanics, as on real hardware.
type FS struct {
	name string
	cfg  FSConfig

	mu      sync.Mutex
	objects map[string]*tapeObject
	carts   []*FSCartridge
	mounted string // cartridge ID last threaded into "the drive"

	mounts    uint64
	cacheHits uint64
	bytesIn   units.Bytes
	bytesOut  units.Bytes
}

// FSCartridge is one cartridge of the real-time store.
type FSCartridge struct {
	ID       string
	Capacity units.Bytes
	Used     units.Bytes
}

type tapeObject struct {
	data    []byte // immutable after commit
	cart    string
	modTime time.Time
}

var _ adal.Backend = (*FS)(nil)

// NewFS creates an empty real-time tape store.
func NewFS(name string, cfg FSConfig) *FS {
	if cfg.CartridgeSize <= 0 {
		cfg.CartridgeSize = units.Bytes(1500) * units.GB
	}
	return &FS{name: name, cfg: cfg, objects: make(map[string]*tapeObject)}
}

// Name implements adal.Backend.
func (f *FS) Name() string { return f.name }

// Create implements adal.Backend. Bytes are buffered and packed onto
// a cartridge at Close, mirroring how tape writes are batched.
func (f *FS) Create(path string) (io.WriteCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.objects[path]; ok {
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrExists, f.name, path)
	}
	// Reserve the name so concurrent creators collide here.
	f.objects[path] = &tapeObject{modTime: time.Now()}
	return &fsWriter{fs: f, path: path}, nil
}

type fsWriter struct {
	fs     *FS
	path   string
	buf    bytes.Buffer
	closed bool
}

func (w *fsWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("tape: write after close: %s", w.path)
	}
	return w.buf.Write(p)
}

func (w *fsWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	data := w.buf.Bytes()
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	cart := w.fs.pickCartridge(units.Bytes(len(data)))
	cart.Used += units.Bytes(len(data))
	w.fs.bytesIn += units.Bytes(len(data))
	w.fs.objects[w.path] = &tapeObject{data: data, cart: cart.ID, modTime: time.Now()}
	return nil
}

// pickCartridge returns the newest cartridge if the write fits,
// opening a fresh one otherwise. Callers hold f.mu.
func (f *FS) pickCartridge(size units.Bytes) *FSCartridge {
	if n := len(f.carts); n > 0 && f.carts[n-1].Capacity-f.carts[n-1].Used >= size {
		return f.carts[n-1]
	}
	capacity := f.cfg.CartridgeSize
	if capacity < size {
		capacity = size // oversized object gets a dedicated cartridge
	}
	c := &FSCartridge{ID: fmt.Sprintf("%s-%04d", f.name, len(f.carts)+1), Capacity: capacity}
	f.carts = append(f.carts, c)
	return c
}

// Open implements adal.Backend, paying the mount penalty when the
// object's cartridge is not the one last mounted.
func (f *FS) Open(path string) (io.ReadCloser, error) {
	f.mu.Lock()
	obj, ok := f.objects[path]
	if !ok || obj.cart == "" {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	var penalty time.Duration
	if obj.cart != f.mounted {
		f.mounted = obj.cart
		f.mounts++
		penalty = f.cfg.MountPenalty
	} else {
		f.cacheHits++
	}
	penalty += f.cfg.SeekPenalty
	f.bytesOut += units.Bytes(len(obj.data))
	data := obj.data
	f.mu.Unlock()
	if penalty > 0 {
		time.Sleep(penalty)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Stat implements adal.Backend.
func (f *FS) Stat(path string) (adal.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	obj, ok := f.objects[path]
	if !ok || obj.cart == "" {
		return adal.FileInfo{}, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	return adal.FileInfo{Path: path, Size: units.Bytes(len(obj.data)), ModTime: obj.modTime}, nil
}

// List implements adal.Backend.
func (f *FS) List(prefix string) ([]adal.FileInfo, error) {
	f.mu.Lock()
	out := make([]adal.FileInfo, 0, len(f.objects))
	for p, obj := range f.objects {
		if obj.cart == "" || !strings.HasPrefix(p, prefix) {
			continue
		}
		out = append(out, adal.FileInfo{Path: p, Size: units.Bytes(len(obj.data)), ModTime: obj.modTime})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove implements adal.Backend. Freed capacity is returned to the
// cartridge — a simplification of real tape reclamation, which wants
// a compaction pass.
func (f *FS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	obj, ok := f.objects[path]
	if !ok || obj.cart == "" {
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, f.name, path)
	}
	for _, c := range f.carts {
		if c.ID == obj.cart {
			c.Used -= units.Bytes(len(obj.data))
			break
		}
	}
	delete(f.objects, path)
	return nil
}

// FSStats is a snapshot of the real-time store's counters.
type FSStats struct {
	Objects    int
	Cartridges int
	Mounts     uint64
	CacheHits  uint64
	BytesIn    units.Bytes
	BytesOut   units.Bytes
}

// FSStats returns a snapshot of the store counters.
func (f *FS) FSStats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, obj := range f.objects {
		if obj.cart != "" {
			n++
		}
	}
	return FSStats{
		Objects:    n,
		Cartridges: len(f.carts),
		Mounts:     f.mounts,
		CacheHits:  f.cacheHits,
		BytesIn:    f.bytesIn,
		BytesOut:   f.bytesOut,
	}
}

// Cartridges lists the store's cartridges in creation order.
func (f *FS) CartridgeList() []FSCartridge {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FSCartridge, len(f.carts))
	for i, c := range f.carts {
		out[i] = *c
	}
	return out
}

// Package tape models the LSDF tape library (slide 7: "tape backend
// for archive and backup"). Behaviour is dominated by mechanics, so
// the model is explicit about them: one robot arm moves cartridges
// between slots and drives; a mounted cartridge must seek before it
// streams; drives keep cartridges mounted while idle so that runs of
// requests to the same cartridge skip the robot entirely.
package tape

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// ErrCartridgeFull is reported when a write exceeds cartridge capacity.
var ErrCartridgeFull = errors.New("tape: cartridge full")

// ErrNoCartridge is reported when addressing an unknown cartridge.
var ErrNoCartridge = errors.New("tape: no such cartridge")

// Config sets the library's mechanical characteristics. The defaults
// (see DefaultConfig) follow LTO-4/5-generation hardware, the
// technology of the paper's era.
type Config struct {
	Drives      int
	MountTime   time.Duration // robot move + load + thread
	UnmountTime time.Duration
	AvgSeek     time.Duration // average locate time on a mounted tape
	StreamRate  units.Rate    // per-drive sustained streaming rate
}

// DefaultConfig matches a mid-size LTO-5 library: 4 drives, ~90 s
// mount cycles, ~50 s average locate, 140 MB/s native streaming.
func DefaultConfig() Config {
	return Config{
		Drives:      4,
		MountTime:   90 * time.Second,
		UnmountTime: 60 * time.Second,
		AvgSeek:     50 * time.Second,
		StreamRate:  units.Rate(140 * units.MB),
	}
}

// Cartridge is one tape.
type Cartridge struct {
	ID       string
	Capacity units.Bytes
	used     units.Bytes
}

// Used returns bytes written to the cartridge.
func (c *Cartridge) Used() units.Bytes { return c.used }

// FreeSpace returns remaining capacity.
func (c *Cartridge) FreeSpace() units.Bytes { return c.Capacity - c.used }

type drive struct {
	id       int
	mounted  string // cartridge ID the drive is bound to, "" if empty
	hadMount bool   // the bound cartridge was already threaded (cache hit)
	hadOther bool   // the drive held a different cartridge (unmount first)
	busy     bool
	lastUsed time.Duration
}

type request struct {
	id    int
	cart  string
	bytes units.Bytes
	write bool
	done  func(error)
	enq   time.Duration
}

// Library is the tape library model.
type Library struct {
	eng    *sim.Engine
	cfg    Config
	robot  *sim.Resource
	drives []*drive
	carts  map[string]*Cartridge
	queue  []*request
	nextID int

	// stats
	mounts     uint64
	robotTrips uint64
	bytesIn    units.Bytes
	bytesOut   units.Bytes
	waits      sim.Sample
	served     uint64
	cacheHits  uint64
}

// New creates a library with the given configuration.
func New(eng *sim.Engine, cfg Config) *Library {
	if cfg.Drives <= 0 {
		panic("tape: need at least one drive")
	}
	lb := &Library{
		eng:   eng,
		cfg:   cfg,
		robot: sim.NewResource(eng, 1),
		carts: make(map[string]*Cartridge),
	}
	for i := 0; i < cfg.Drives; i++ {
		lb.drives = append(lb.drives, &drive{id: i})
	}
	return lb
}

// AddCartridge registers a cartridge.
func (lb *Library) AddCartridge(id string, capacity units.Bytes) *Cartridge {
	c := &Cartridge{ID: id, Capacity: capacity}
	lb.carts[id] = c
	return c
}

// Cartridge looks up a cartridge.
func (lb *Library) Cartridge(id string) (*Cartridge, bool) {
	c, ok := lb.carts[id]
	return c, ok
}

// Cartridges lists cartridges sorted by ID.
func (lb *Library) Cartridges() []*Cartridge {
	out := make([]*Cartridge, 0, len(lb.carts))
	for _, c := range lb.carts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Write archives b bytes onto the cartridge; done fires with the
// outcome when streaming completes.
func (lb *Library) Write(cart string, b units.Bytes, done func(error)) {
	lb.submit(&request{cart: cart, bytes: b, write: true, done: done})
}

// Read recalls b bytes from the cartridge.
func (lb *Library) Read(cart string, b units.Bytes, done func(error)) {
	lb.submit(&request{cart: cart, bytes: b, write: false, done: done})
}

func (lb *Library) submit(req *request) {
	req.id = lb.nextID
	lb.nextID++
	req.enq = lb.eng.Now()
	c, ok := lb.carts[req.cart]
	if !ok {
		lb.fail(req, fmt.Errorf("%w: %q", ErrNoCartridge, req.cart))
		return
	}
	if req.write && c.used+req.bytes > c.Capacity {
		lb.fail(req, fmt.Errorf("%w: %q", ErrCartridgeFull, req.cart))
		return
	}
	if req.write {
		// Reserve capacity at submission so concurrent writers cannot
		// oversubscribe a cartridge while queued.
		c.used += req.bytes
	}
	lb.queue = append(lb.queue, req)
	lb.dispatch()
}

func (lb *Library) fail(req *request, err error) {
	if req.done != nil {
		lb.eng.Schedule(0, func() { req.done(err) })
	}
}

// dispatch assigns queued requests to drives. Selection prefers, in
// order: an idle drive already holding the cartridge (cache hit), an
// idle empty drive, then the least-recently-used idle drive (evict).
// A request whose cartridge is captive in a busy drive is skipped
// this round (the cartridge physically cannot be in two drives), but
// later requests for other cartridges may still proceed.
func (lb *Library) dispatch() {
	for {
		scheduled := false
		for i := 0; i < len(lb.queue); i++ {
			req := lb.queue[i]
			d := lb.pickDrive(req.cart)
			if d == nil {
				continue
			}
			lb.queue = append(lb.queue[:i], lb.queue[i+1:]...)
			d.busy = true
			// Commit the drive to the cartridge immediately: the robot
			// exchange is in flight and no other drive may claim it.
			prev := d.mounted
			d.mounted = req.cart
			d.hadMount = prev == req.cart
			d.hadOther = prev != "" && prev != req.cart
			lb.run(d, req)
			scheduled = true
			break
		}
		if !scheduled {
			return
		}
	}
}

// pickDrive returns a drive able to serve the cartridge now, or nil.
func (lb *Library) pickDrive(cart string) *drive {
	// A drive already bound to this cartridge serves it — or blocks
	// it while busy (the cartridge exists once).
	for _, d := range lb.drives {
		if d.mounted == cart {
			if d.busy {
				return nil
			}
			return d
		}
	}
	var empty, lru *drive
	for _, d := range lb.drives {
		if d.busy {
			continue
		}
		if d.mounted == "" && empty == nil {
			empty = d
		}
		if d.mounted != "" && (lru == nil || d.lastUsed < lru.lastUsed) {
			lru = d
		}
	}
	if empty != nil {
		return empty
	}
	return lru
}

// run executes one request on a drive as a chain of virtual-time
// stages: (unmount+mount via robot if needed) -> seek -> stream.
// dispatch has already bound the drive to the cartridge; hadMount
// tells whether the tape was threaded before (cache hit) or the robot
// must perform an exchange.
func (lb *Library) run(d *drive, req *request) {
	lb.waits.ObserveDuration(lb.eng.Now() - req.enq)
	hadMount := d.hadMount
	wasOccupied := d.hadOther
	stream := func() {
		dur := lb.cfg.StreamRate.TimeFor(req.bytes)
		lb.eng.Schedule(lb.cfg.AvgSeek+dur, func() {
			if req.write {
				lb.bytesIn += req.bytes
			} else {
				lb.bytesOut += req.bytes
			}
			lb.served++
			d.busy = false
			d.lastUsed = lb.eng.Now()
			if req.done != nil {
				req.done(nil)
			}
			lb.dispatch()
		})
	}
	if hadMount {
		lb.cacheHits++
		stream()
		return
	}
	// Need the robot for an exchange.
	lb.robot.Acquire(func(release func()) {
		lb.robotTrips++
		delay := lb.cfg.MountTime
		if wasOccupied {
			delay += lb.cfg.UnmountTime
		}
		lb.eng.Schedule(delay, func() {
			lb.mounts++
			release()
			stream()
		})
	})
}

// Stats is a snapshot of library counters.
type Stats struct {
	Mounts      uint64
	RobotTrips  uint64
	CacheHits   uint64
	Served      uint64
	BytesIn     units.Bytes
	BytesOut    units.Bytes
	AvgWaitSec  float64
	P95WaitSec  float64
	QueueLength int
}

// Stats returns a snapshot of the library counters.
func (lb *Library) Stats() Stats {
	return Stats{
		Mounts:      lb.mounts,
		RobotTrips:  lb.robotTrips,
		CacheHits:   lb.cacheHits,
		Served:      lb.served,
		BytesIn:     lb.bytesIn,
		BytesOut:    lb.bytesOut,
		AvgWaitSec:  lb.waits.Mean(),
		P95WaitSec:  lb.waits.Quantile(0.95),
		QueueLength: len(lb.queue),
	}
}

package objectstore

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/adal"
)

func TestBucketLifecycle(t *testing.T) {
	s := New(false)
	if err := s.CreateBucket("exp"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateBucket("exp"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("err = %v", err)
	}
	if got := s.Buckets(); len(got) != 1 || got[0] != "exp" {
		t.Fatalf("buckets = %v", got)
	}
	if _, err := s.Put("ghost", "k", strings.NewReader("x")); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v", err)
	}
	if err := s.DeleteBucket("exp"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("exp", "k", strings.NewReader("x")); !errors.Is(err, ErrNoBucket) {
		t.Fatal("bucket survived delete")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New(false)
	if err := s.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	info, err := s.Put("b", "runs/001.dat", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 7 || len(info.ETag) != 64 || !info.Latest {
		t.Fatalf("info = %+v", info)
	}
	r, got, err := s.Get("b", "runs/001.dat")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "payload" || got.ETag != info.ETag {
		t.Fatalf("read %q etag %s", data, got.ETag)
	}
	if _, _, err := s.Get("b", "nope"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnversionedOverwrites(t *testing.T) {
	s := New(false)
	s.CreateBucket("b")
	if _, err := s.Put("b", "k", strings.NewReader("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "k", strings.NewReader("two")); err != nil {
		t.Fatal(err)
	}
	vs, err := s.Versions("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("versions = %d, want 1 (unversioned)", len(vs))
	}
	r, _, _ := s.Get("b", "k")
	data, _ := io.ReadAll(r)
	if string(data) != "two" {
		t.Fatalf("content = %q", data)
	}
}

func TestVersioning(t *testing.T) {
	s := New(true)
	s.CreateBucket("b")
	for i := 1; i <= 3; i++ {
		if _, err := s.Put("b", "k", strings.NewReader(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := s.Versions("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || !vs[2].Latest || vs[0].Latest {
		t.Fatalf("versions = %+v", vs)
	}
	// Old version retrievable.
	r, info, err := s.GetVersion("b", "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "v1" || info.Version != 1 {
		t.Fatalf("v1 = %q %+v", data, info)
	}
	if _, _, err := s.GetVersion("b", "k", 9); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("err = %v", err)
	}
	// Latest via Get.
	r2, _, _ := s.Get("b", "k")
	data, _ = io.ReadAll(r2)
	if string(data) != "v3" {
		t.Fatalf("latest = %q", data)
	}
}

func TestPutIfPreconditions(t *testing.T) {
	s := New(true)
	s.CreateBucket("b")
	// Create-new with empty precondition.
	info, err := s.PutIf("b", "k", "", strings.NewReader("base"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong etag rejected.
	if _, err := s.PutIf("b", "k", "bogus", strings.NewReader("x")); !errors.Is(err, ErrBadETag) {
		t.Fatalf("err = %v", err)
	}
	// Matching etag accepted.
	if _, err := s.PutIf("b", "k", info.ETag, strings.NewReader("next")); err != nil {
		t.Fatal(err)
	}
	// Create-new on existing rejected.
	if _, err := s.PutIf("b", "k", "", strings.NewReader("x")); !errors.Is(err, ErrBadETag) {
		t.Fatalf("err = %v", err)
	}
}

func TestListPagination(t *testing.T) {
	s := New(false)
	s.CreateBucket("b")
	for i := 0; i < 10; i++ {
		if _, err := s.Put("b", fmt.Sprintf("runs/%03d", i), strings.NewReader("x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("b", "other/1", strings.NewReader("x"))

	page1, err := s.List("b", ListOptions{Prefix: "runs/", Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 4 || page1[0].Key != "runs/000" {
		t.Fatalf("page1 = %+v", page1)
	}
	page2, err := s.List("b", ListOptions{Prefix: "runs/", StartAfter: page1[3].Key, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(page2) != 4 || page2[0].Key != "runs/004" {
		t.Fatalf("page2 = %+v", page2)
	}
	all, _ := s.List("b", ListOptions{})
	if len(all) != 11 {
		t.Fatalf("all = %d", len(all))
	}
}

func TestDeleteObject(t *testing.T) {
	s := New(true)
	s.CreateBucket("b")
	s.Put("b", "k", strings.NewReader("x"))
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b", "k"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v", err)
	}
	if err := s.DeleteBucket("b"); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := New(true)
	s.CreateBucket("b")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Put("b", fmt.Sprintf("k%02d", i), strings.NewReader(fmt.Sprint(i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	all, _ := s.List("b", ListOptions{})
	if len(all) != 32 {
		t.Fatalf("objects = %d", len(all))
	}
}

// Property: ETags are content-determined — equal content equal etag,
// distinct content distinct etag (modulo SHA-256 collisions), and
// round trips preserve bytes.
func TestETagPropertyQuick(t *testing.T) {
	s := New(true)
	s.CreateBucket("q")
	i := 0
	f := func(a, b []byte) bool {
		i++
		ka := fmt.Sprintf("a%06d", i)
		kb := fmt.Sprintf("b%06d", i)
		ia, err := s.Put("q", ka, strings.NewReader(string(a)))
		if err != nil {
			return false
		}
		ib, err := s.Put("q", kb, strings.NewReader(string(b)))
		if err != nil {
			return false
		}
		same := string(a) == string(b)
		if same != (ia.ETag == ib.ETag) {
			return false
		}
		r, _, err := s.Get("q", ka)
		if err != nil {
			return false
		}
		got, _ := io.ReadAll(r)
		return string(got) == string(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestADALAdapterContract(t *testing.T) {
	s := New(false)
	if err := s.CreateBucket("lsdf"); err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend("s3", s, "lsdf")
	if err != nil {
		t.Fatal(err)
	}
	// Same contract exercise as the adal backends.
	w, err := b.Create("/a/one")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "payload-1")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Create("/a/one"); !errors.Is(err, adal.ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	r, err := b.Open("/a/one")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "payload-1" {
		t.Fatalf("read = %q", data)
	}
	info, err := b.Stat("/a/one")
	if err != nil || info.Size != 9 {
		t.Fatalf("stat = %+v err=%v", info, err)
	}
	if _, err := b.Open("/ghost"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	list, err := b.List("/a")
	if err != nil || len(list) != 1 || list[0].Path != "/a/one" {
		t.Fatalf("list = %+v err=%v", list, err)
	}
	if err := b.Remove("/a/one"); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("/a/one"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectStoreInFederation(t *testing.T) {
	// The outlook's promise: object storage mounts next to everything
	// else and the DataBrowser-facing layer cannot tell the difference.
	s := New(true)
	s.CreateBucket("archive")
	osb, err := NewBackend("s3", s, "archive")
	if err != nil {
		t.Fatal(err)
	}
	layer := adal.NewLayer()
	if err := layer.Mount("/hot", adal.NewMemFS("hot")); err != nil {
		t.Fatal(err)
	}
	if err := layer.Mount("/objects", osb); err != nil {
		t.Fatal(err)
	}
	n, sum, err := layer.WriteChecksummed("/objects/run1", strings.NewReader("archive me"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("n = %d", n)
	}
	again, err := layer.Checksum("/objects/run1")
	if err != nil || again != sum {
		t.Fatalf("checksum mismatch: %v", err)
	}
	// Cross-mount replication memfs -> object store.
	w, _ := layer.Create("/hot/x")
	io.WriteString(w, "hot data")
	w.Close()
	if err := layer.CopyObject("/hot/x", "/objects/x"); err != nil {
		t.Fatal(err)
	}
	head, err := s.Head("archive", "x")
	if err != nil || head.Size != 8 {
		t.Fatalf("replica = %+v err=%v", head, err)
	}
}

// TestListPaginationUnderConcurrentWrites pages through a bucket
// with prefix + start-after while writers keep adding keys: every
// page must be sorted and strictly after the cursor, no key may
// appear twice across pages, and every key that existed before the
// walk started must be seen — the snapshot-consistency contract a
// replication backend relies on when it lists a live site.
func TestListPaginationUnderConcurrentWrites(t *testing.T) {
	s := New(false)
	if err := s.CreateBucket("live"); err != nil {
		t.Fatal(err)
	}
	const pre = 300
	for i := 0; i < pre; i++ {
		if _, err := s.Put("live", fmt.Sprintf("data/pre-%05d", i), strings.NewReader("x")); err != nil {
			t.Fatal(err)
		}
	}

	// Writers insert a bounded key count (not free-running: an
	// unthrottled writer can outproduce the paged walker forever on a
	// slow machine, and the walk below must terminate even while they
	// run).
	const perWriter = 500
	var writerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("data/new-%d-%06d", w, i)
				if _, err := s.Put("live", key, strings.NewReader("y")); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
			}
		}(w)
	}

	for walk := 0; walk < 20; walk++ {
		seen := make(map[string]bool)
		after := ""
		for {
			page, err := s.List("live", ListOptions{Prefix: "data/", StartAfter: after, Max: 37})
			if err != nil {
				t.Fatal(err)
			}
			for i, info := range page {
				if info.Key <= after {
					t.Fatalf("walk %d: key %q not after cursor %q", walk, info.Key, after)
				}
				if i > 0 && page[i].Key <= page[i-1].Key {
					t.Fatalf("walk %d: page unsorted at %q", walk, info.Key)
				}
				if seen[info.Key] {
					t.Fatalf("walk %d: key %q seen twice", walk, info.Key)
				}
				seen[info.Key] = true
			}
			if len(page) < 37 {
				break
			}
			after = page[len(page)-1].Key
		}
		for i := 0; i < pre; i++ {
			if key := fmt.Sprintf("data/pre-%05d", i); !seen[key] {
				t.Fatalf("walk %d: pre-existing key %q skipped", walk, key)
			}
		}
	}
	writerWG.Wait()

	// The ADAL adapter's paged List sees one coherent namespace too.
	b, err := NewBackend("s3", s, "live")
	if err != nil {
		t.Fatal(err)
	}
	infos, err := b.List("/data/pre-")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != pre {
		t.Fatalf("adapter listed %d pre keys, want %d", len(infos), pre)
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Path <= infos[i-1].Path {
			t.Fatalf("adapter list unsorted at %q", infos[i].Path)
		}
	}
}

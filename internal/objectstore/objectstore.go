// Package objectstore implements the "Object Storage" item of the
// paper's outlook (slide 14: "investigate and deploy new
// technologies"). It is an S3-generation object store: buckets hold
// immutable versioned objects addressed by key, writes return ETags
// (content hashes), and listing supports prefix and start-after
// pagination. An adapter exposes buckets through the ADAL Backend
// contract so object storage slots into the existing federation
// exactly as the paper intends new technologies to.
package objectstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/units"
)

// Errors reported by store operations.
var (
	ErrNoBucket     = errors.New("objectstore: no such bucket")
	ErrBucketExists = errors.New("objectstore: bucket exists")
	ErrNoObject     = errors.New("objectstore: no such object")
	ErrNoVersion    = errors.New("objectstore: no such version")
	ErrBadETag      = errors.New("objectstore: etag precondition failed")
)

// ObjectInfo describes one (version of an) object.
type ObjectInfo struct {
	Bucket   string
	Key      string
	Size     units.Bytes
	ETag     string // hex SHA-256 of the content
	Version  int    // 1-based, newest = highest
	Modified time.Time
	Latest   bool
}

type object struct {
	versions []*version // oldest first
}

type version struct {
	data     []byte
	etag     string
	modified time.Time
}

type bucket struct {
	name    string
	objects map[string]*object
	created time.Time
}

// Store is the object store. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]*bucket
	clock   func() time.Time
	// Versioning keeps every overwrite; with it off, puts replace.
	versioned bool
}

// New creates a store. versioned enables S3-style object versioning.
func New(versioned bool) *Store {
	return &Store{
		buckets:   make(map[string]*bucket),
		clock:     time.Now,
		versioned: versioned,
	}
}

// SetClock injects a timestamp source.
func (s *Store) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = clock
}

// CreateBucket makes a bucket.
func (s *Store) CreateBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("%w: %q", ErrBucketExists, name)
	}
	s.buckets[name] = &bucket{
		name:    name,
		objects: make(map[string]*object),
		created: s.clock(),
	}
	return nil
}

// Buckets lists bucket names, sorted.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for name := range s.buckets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DeleteBucket removes an empty bucket.
func (s *Store) DeleteBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, name)
	}
	if len(b.objects) > 0 {
		return fmt.Errorf("objectstore: bucket %q not empty", name)
	}
	delete(s.buckets, name)
	return nil
}

// Put stores content under key, returning the new version's info.
func (s *Store) Put(bucketName, key string, r io.Reader) (ObjectInfo, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("objectstore: reading content: %w", err)
	}
	sum := sha256.Sum256(data)
	etag := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj := b.objects[key]
	if obj == nil {
		obj = &object{}
		b.objects[key] = obj
	}
	v := &version{data: data, etag: etag, modified: s.clock()}
	if s.versioned || len(obj.versions) == 0 {
		obj.versions = append(obj.versions, v)
	} else {
		obj.versions[len(obj.versions)-1] = v
	}
	return s.infoLocked(bucketName, key, obj, len(obj.versions)), nil
}

// PutIf stores content only when the current latest ETag matches
// ifMatch (optimistic concurrency; "" means the object must not
// exist yet).
func (s *Store) PutIf(bucketName, key, ifMatch string, r io.Reader) (ObjectInfo, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return ObjectInfo{}, err
	}
	sum := sha256.Sum256(data)
	etag := hex.EncodeToString(sum[:])

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj := b.objects[key]
	current := ""
	if obj != nil && len(obj.versions) > 0 {
		current = obj.versions[len(obj.versions)-1].etag
	}
	if current != ifMatch {
		return ObjectInfo{}, fmt.Errorf("%w: have %q, want %q", ErrBadETag, current, ifMatch)
	}
	if obj == nil {
		obj = &object{}
		b.objects[key] = obj
	}
	v := &version{data: data, etag: etag, modified: s.clock()}
	if s.versioned || len(obj.versions) == 0 {
		obj.versions = append(obj.versions, v)
	} else {
		obj.versions[len(obj.versions)-1] = v
	}
	return s.infoLocked(bucketName, key, obj, len(obj.versions)), nil
}

func (s *Store) infoLocked(bucketName, key string, obj *object, versionNo int) ObjectInfo {
	v := obj.versions[versionNo-1]
	return ObjectInfo{
		Bucket:   bucketName,
		Key:      key,
		Size:     units.Bytes(len(v.data)),
		ETag:     v.etag,
		Version:  versionNo,
		Modified: v.modified,
		Latest:   versionNo == len(obj.versions),
	}
}

// Get returns the latest version's content.
func (s *Store) Get(bucketName, key string) (io.ReadCloser, ObjectInfo, error) {
	return s.GetVersion(bucketName, key, 0)
}

// GetVersion returns a specific version (0 = latest).
func (s *Store) GetVersion(bucketName, key string, versionNo int) (io.ReadCloser, ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if !ok || len(obj.versions) == 0 {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	if versionNo == 0 {
		versionNo = len(obj.versions)
	}
	if versionNo < 1 || versionNo > len(obj.versions) {
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s v%d", ErrNoVersion, bucketName, key, versionNo)
	}
	info := s.infoLocked(bucketName, key, obj, versionNo)
	data := obj.versions[versionNo-1].data
	return io.NopCloser(bytes.NewReader(data)), info, nil
}

// Head returns the latest version's info without content.
func (s *Store) Head(bucketName, key string) (ObjectInfo, error) {
	_, info, err := s.Get(bucketName, key)
	return info, err
}

// Versions lists every version of a key, oldest first.
func (s *Store) Versions(bucketName, key string) ([]ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	out := make([]ObjectInfo, len(obj.versions))
	for i := range obj.versions {
		out[i] = s.infoLocked(bucketName, key, obj, i+1)
	}
	return out, nil
}

// ListOptions paginates List.
type ListOptions struct {
	Prefix     string
	StartAfter string // exclusive start key
	Max        int    // 0 = unlimited
}

// List returns latest-version infos for keys in a bucket, sorted.
func (s *Store) List(bucketName string, opts ListOptions) ([]ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	keys := make([]string, 0, len(b.objects))
	for k := range b.objects {
		if strings.HasPrefix(k, opts.Prefix) && k > opts.StartAfter {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if opts.Max > 0 && len(keys) > opts.Max {
		keys = keys[:opts.Max]
	}
	out := make([]ObjectInfo, 0, len(keys))
	for _, k := range keys {
		obj := b.objects[k]
		out = append(out, s.infoLocked(bucketName, k, obj, len(obj.versions)))
	}
	return out, nil
}

// Delete removes an object and all its versions.
func (s *Store) Delete(bucketName, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	if _, ok := b.objects[key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	delete(b.objects, key)
	return nil
}

// TotalBytes returns the stored volume across all versions.
func (s *Store) TotalBytes() units.Bytes {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n units.Bytes
	for _, b := range s.buckets {
		for _, obj := range b.objects {
			for _, v := range obj.versions {
				n += units.Bytes(len(v.data))
			}
		}
	}
	return n
}

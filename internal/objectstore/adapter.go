package objectstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/adal"
)

// Backend adapts one bucket to the ADAL Backend contract, so the
// object store federates under the same namespace as the disk arrays
// and the Hadoop filesystem — the paper's "transparent access over
// background storage and technology changes" applied to the outlook's
// new technology.
type Backend struct {
	name   string
	store  *Store
	bucket string
}

// NewBackend exposes bucket through ADAL. The bucket must exist.
func NewBackend(name string, store *Store, bucket string) (*Backend, error) {
	found := false
	for _, b := range store.Buckets() {
		if b == bucket {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucket)
	}
	return &Backend{name: name, store: store, bucket: bucket}, nil
}

// key maps an ADAL path to an object key (no leading slash).
func key(path string) string { return strings.TrimPrefix(path, "/") }

// Name implements adal.Backend.
func (b *Backend) Name() string { return b.name }

// Create implements adal.Backend. ADAL create-exclusive semantics map
// to PutIf with an empty precondition.
func (b *Backend) Create(path string) (io.WriteCloser, error) {
	if _, err := b.store.Head(b.bucket, key(path)); err == nil {
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrExists, b.name, path)
	}
	return &objWriter{backend: b, key: key(path)}, nil
}

type objWriter struct {
	backend *Backend
	key     string
	buf     bytes.Buffer
	closed  bool
}

func (w *objWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("objectstore: write after close: %s", w.key)
	}
	return w.buf.Write(p)
}

func (w *objWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	_, err := w.backend.store.PutIf(w.backend.bucket, w.key, "", &w.buf)
	if errors.Is(err, ErrBadETag) {
		return fmt.Errorf("%w: %s:%s", adal.ErrExists, w.backend.name, w.key)
	}
	return err
}

// Open implements adal.Backend.
func (b *Backend) Open(path string) (io.ReadCloser, error) {
	r, _, err := b.store.Get(b.bucket, key(path))
	if errors.Is(err, ErrNoObject) {
		return nil, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, b.name, path)
	}
	return r, err
}

// Stat implements adal.Backend.
func (b *Backend) Stat(path string) (adal.FileInfo, error) {
	info, err := b.store.Head(b.bucket, key(path))
	if err != nil {
		if errors.Is(err, ErrNoObject) {
			return adal.FileInfo{}, fmt.Errorf("%w: %s:%s", adal.ErrNotFound, b.name, path)
		}
		return adal.FileInfo{}, err
	}
	return adal.FileInfo{Path: path, Size: info.Size, ModTime: info.Modified}, nil
}

// listPage is the adapter's pagination unit: List walks the bucket
// in start-after pages the way an S3 client would, instead of asking
// for the whole keyspace in one call.
const listPage = 512

// List implements adal.Backend by paging through the bucket with
// prefix + start-after, so arbitrarily large buckets list in bounded
// per-call work (and the store's pagination path gets real traffic —
// the federated replication backend lists sites through here).
func (b *Backend) List(prefix string) ([]adal.FileInfo, error) {
	var out []adal.FileInfo
	after := ""
	for {
		infos, err := b.store.List(b.bucket, ListOptions{
			Prefix:     key(prefix),
			StartAfter: after,
			Max:        listPage,
		})
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			out = append(out, adal.FileInfo{
				Path:    "/" + info.Key,
				Size:    info.Size,
				ModTime: info.Modified,
			})
		}
		if len(infos) < listPage {
			return out, nil
		}
		after = infos[len(infos)-1].Key
	}
}

// Remove implements adal.Backend.
func (b *Backend) Remove(path string) error {
	err := b.store.Delete(b.bucket, key(path))
	if errors.Is(err, ErrNoObject) {
		return fmt.Errorf("%w: %s:%s", adal.ErrNotFound, b.name, path)
	}
	return err
}

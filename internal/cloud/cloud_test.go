package cloud

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func tmpl() Template {
	return Template{
		Name: "analysis", CPUs: 2, MemMB: 4096,
		Image: "sl5-analysis", ImageSize: 4 * units.GB,
		BootTime: 30 * time.Second,
	}
}

func newCloud(t *testing.T, policy Policy, hosts int) (*sim.Engine, *Cloud) {
	t.Helper()
	eng := sim.New(1)
	c := New(eng, policy, units.Rate(units.GB)) // 1 GB/s image repo
	for i := 0; i < hosts; i++ {
		c.AddHost(hostName(i), 8, 16384)
	}
	return eng, c
}

func hostName(i int) string { return string(rune('h')) + string(rune('0'+i)) }

func TestSingleDeployTiming(t *testing.T) {
	eng, c := newCloud(t, FirstFit, 2)
	var vm *VM
	_, err := c.Submit(tmpl(), func(v *VM) { vm = v })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if vm == nil {
		t.Fatal("VM never ran")
	}
	// 4 GB at 1 GB/s + 30 s boot = 34 s: "very fast to deploy".
	want := 34.0
	if got := vm.DeployLatency().Seconds(); math.Abs(got-want) > 0.1 {
		t.Fatalf("deploy latency = %.1fs, want %.1fs", got, want)
	}
}

func TestImageCacheSkipsStaging(t *testing.T) {
	eng, c := newCloud(t, FirstFit, 1)
	var first, second *VM
	if _, err := c.Submit(tmpl(), func(v *VM) { first = v }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, err := c.Submit(tmpl(), func(v *VM) { second = v }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if first == nil || second == nil {
		t.Fatal("VMs did not run")
	}
	if got := second.DeployLatency().Seconds(); math.Abs(got-30) > 0.1 {
		t.Fatalf("cached deploy = %.1fs, want 30s (boot only)", got)
	}
}

func TestMassDeploymentSharesImageStore(t *testing.T) {
	eng, c := newCloud(t, Spread, 4)
	count := 0
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(tmpl(), func(*VM) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if count != 4 {
		t.Fatalf("running = %d", count)
	}
	st := c.Stats()
	// 4 concurrent 4 GB stagings share 1 GB/s: each takes 16 s + 30 s boot.
	if math.Abs(st.MaxDeploySec-46) > 0.5 {
		t.Fatalf("max deploy = %.1fs, want ~46s under contention", st.MaxDeploySec)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	eng, c := newCloud(t, FirstFit, 1) // 8 CPUs => 4 VMs of 2 CPUs
	running := 0
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(tmpl(), func(*VM) { running++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if running != 4 {
		t.Fatalf("running = %d, want 4 (host full)", running)
	}
	st := c.Stats()
	if st.Pending != 1 {
		t.Fatalf("pending = %d, want 1", st.Pending)
	}
	// Shutting one down lets the queued VM in.
	var victim *VM
	for _, vm := range c.vms {
		if vm.State == Running {
			victim = vm
			break
		}
	}
	if err := c.Shutdown(victim); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if running != 5 {
		t.Fatalf("running after shutdown = %d, want 5", running)
	}
	if c.Stats().Pending != 0 {
		t.Fatal("queue should drain")
	}
}

func TestPackVsSpread(t *testing.T) {
	runPolicy := func(p Policy) int {
		eng, c := newCloud(t, p, 4)
		for i := 0; i < 4; i++ {
			if _, err := c.Submit(tmpl(), nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return c.Stats().HostsInUse
	}
	if hosts := runPolicy(Pack); hosts != 1 {
		t.Fatalf("pack used %d hosts, want 1", hosts)
	}
	if hosts := runPolicy(Spread); hosts != 4 {
		t.Fatalf("spread used %d hosts, want 4", hosts)
	}
}

func TestTooLargeTemplate(t *testing.T) {
	_, c := newCloud(t, FirstFit, 2)
	big := tmpl()
	big.CPUs = 64
	if _, err := c.Submit(big, nil); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestShutdownStates(t *testing.T) {
	eng, c := newCloud(t, FirstFit, 1)
	vm, err := c.Submit(tmpl(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := c.Shutdown(vm); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(vm); err == nil {
		t.Fatal("double shutdown accepted")
	}
	if vm.State != Done {
		t.Fatalf("state = %v", vm.State)
	}
	h := c.Hosts()[0]
	if h.FreeCPUs() != 8 || h.FreeMemMB() != 16384 || h.RunningVMs() != 0 {
		t.Fatalf("host not released: %+v", h)
	}
}

func TestStats(t *testing.T) {
	eng, c := newCloud(t, Spread, 2)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(tmpl(), nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	st := c.Stats()
	if st.Submitted != 3 || st.Running != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgDeploySec <= 0 || st.P95DeploySec < st.AvgDeploySec {
		t.Fatalf("latency stats inconsistent: %+v", st)
	}
}

package cloud

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Property: host capacity is never exceeded, no matter the submission
// pattern or policy, and every VM that fits eventually runs.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(sizes []uint8, policy8 uint8) bool {
		policy := Policy(int(policy8) % 3)
		eng := sim.New(5)
		c := New(eng, policy, units.Rate(units.GB))
		for i := 0; i < 3; i++ {
			c.AddHost(hostName(i), 8, 16384)
		}
		expectRunning := 0
		for _, s := range sizes {
			tm := Template{
				Name: "t", CPUs: int(s%4) + 1, MemMB: (int(s%4) + 1) * 1024,
				Image: "img", ImageSize: units.GB, BootTime: 10 * time.Second,
			}
			if _, err := c.Submit(tm, nil); err == nil {
				expectRunning++
			}
		}
		eng.Run()
		for _, h := range c.Hosts() {
			if h.FreeCPUs() < 0 || h.FreeMemMB() < 0 {
				return false
			}
		}
		st := c.Stats()
		return st.Running+st.Pending == expectRunning
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: draining all VMs returns every host to its full capacity.
func TestDrainRestoresCapacityQuick(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8 % 12)
		eng := sim.New(6)
		c := New(eng, Spread, units.Rate(units.GB))
		for i := 0; i < 4; i++ {
			c.AddHost(hostName(i), 8, 16384)
		}
		var vms []*VM
		for i := 0; i < n; i++ {
			vm, err := c.Submit(Template{
				Name: "t", CPUs: 2, MemMB: 2048, Image: "img",
				ImageSize: units.GB, BootTime: time.Second,
			}, nil)
			if err != nil {
				return false
			}
			vms = append(vms, vm)
		}
		eng.Run()
		for _, vm := range vms {
			if vm.State == Running || vm.State == Booting || vm.State == Prolog {
				if err := c.Shutdown(vm); err != nil {
					return false
				}
			}
		}
		eng.Run()
		for _, h := range c.Hosts() {
			if h.FreeCPUs() != 8 || h.FreeMemMB() != 16384 || h.RunningVMs() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Package cloud models the LSDF OpenNebula cloud (slide 11: "users
// can deploy own dedicated data-processing VMs ... reliable, highly
// flexible, and very fast to deploy"). The model captures what makes
// deployment fast or slow in practice: scheduler placement against
// host CPU/memory capacity, image staging through a shared image
// repository (with per-host image caching), and guest boot time.
package cloud

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/units"
)

// State is a VM lifecycle state, following OpenNebula's names.
type State int

// VM lifecycle. Pending VMs wait for capacity; Prolog stages the
// image; Booting waits out guest boot; Running VMs serve until
// Shutdown; Done and Failed are terminal.
const (
	Pending State = iota
	Prolog
	Booting
	Running
	Done
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Prolog:
		return "prolog"
	case Booting:
		return "booting"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Template describes a VM class, as an OpenNebula template does.
type Template struct {
	Name      string
	CPUs      int
	MemMB     int
	Image     string      // image identity for caching
	ImageSize units.Bytes // bytes staged on a cache miss
	BootTime  time.Duration
}

// VM is one virtual machine instance.
type VM struct {
	ID       int
	Template Template
	Host     *Host // nil while pending
	State    State

	Submitted time.Duration
	RunningAt time.Duration
	onRunning func(*VM)
}

// DeployLatency returns submit-to-running time (0 if never ran).
func (v *VM) DeployLatency() time.Duration {
	if v.RunningAt < v.Submitted {
		return 0
	}
	return v.RunningAt - v.Submitted
}

// Host is one hypervisor.
type Host struct {
	ID    string
	CPUs  int
	MemMB int

	usedCPU int
	usedMem int
	cache   map[string]bool // staged images
	running int
}

// FreeCPUs returns unreserved cores.
func (h *Host) FreeCPUs() int { return h.CPUs - h.usedCPU }

// FreeMemMB returns unreserved memory.
func (h *Host) FreeMemMB() int { return h.MemMB - h.usedMem }

// RunningVMs returns the number of VMs placed on the host.
func (h *Host) RunningVMs() int { return h.running }

func (h *Host) fits(t Template) bool {
	return h.usedCPU+t.CPUs <= h.CPUs && h.usedMem+t.MemMB <= h.MemMB
}

// Policy ranks candidate hosts for a placement, mirroring
// OpenNebula's scheduler policies.
type Policy int

// Placement policies.
const (
	// FirstFit takes the first host with capacity, in registration order.
	FirstFit Policy = iota
	// Pack prefers the most-loaded host with capacity, minimizing the
	// number of hosts in use (OpenNebula's packing policy).
	Pack
	// Spread prefers the least-loaded host (OpenNebula's striping),
	// maximizing per-VM headroom.
	Spread
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case Pack:
		return "pack"
	case Spread:
		return "spread"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ErrNoCapacity is reported when a VM can never fit on any host.
var ErrNoCapacity = errors.New("cloud: template exceeds every host")

// Cloud is the controller: hosts, scheduler and image repository.
type Cloud struct {
	eng    *sim.Engine
	policy Policy
	hosts  []*Host
	vms    []*VM
	queue  []*VM

	// imageStore models the shared image repository's bandwidth;
	// concurrent stagings share it processor-style, which is exactly
	// the "mass deployment is slower" effect seen in real clouds.
	imageStore *storage.Array

	deploys sim.Sample
}

// New creates a cloud with the given placement policy and image
// repository streaming bandwidth.
func New(eng *sim.Engine, policy Policy, imageBandwidth units.Rate) *Cloud {
	return &Cloud{
		eng:        eng,
		policy:     policy,
		imageStore: storage.NewArray(eng, "image-repo", units.PB, imageBandwidth),
	}
}

// AddHost registers a hypervisor.
func (c *Cloud) AddHost(id string, cpus, memMB int) *Host {
	h := &Host{ID: id, CPUs: cpus, MemMB: memMB, cache: make(map[string]bool)}
	c.hosts = append(c.hosts, h)
	return h
}

// Hosts returns all hosts in registration order.
func (c *Cloud) Hosts() []*Host { return c.hosts }

// Submit requests one VM; onRunning fires when it reaches Running.
// VMs that cannot be placed yet queue FIFO. A template too large for
// every host fails immediately.
func (c *Cloud) Submit(t Template, onRunning func(*VM)) (*VM, error) {
	fitsSomewhere := false
	for _, h := range c.hosts {
		if t.CPUs <= h.CPUs && t.MemMB <= h.MemMB {
			fitsSomewhere = true
			break
		}
	}
	if !fitsSomewhere {
		return nil, fmt.Errorf("%w: %s (%d cpu, %d MB)", ErrNoCapacity, t.Name, t.CPUs, t.MemMB)
	}
	vm := &VM{
		ID:        len(c.vms),
		Template:  t,
		State:     Pending,
		Submitted: c.eng.Now(),
		onRunning: onRunning,
	}
	c.vms = append(c.vms, vm)
	c.queue = append(c.queue, vm)
	c.schedule()
	return vm, nil
}

// schedule places as many queued VMs as capacity allows.
func (c *Cloud) schedule() {
	remaining := c.queue[:0]
	for _, vm := range c.queue {
		h := c.place(vm.Template)
		if h == nil {
			remaining = append(remaining, vm)
			continue
		}
		c.deploy(vm, h)
	}
	c.queue = remaining
}

// place picks a host per the policy, nil when nothing fits now.
func (c *Cloud) place(t Template) *Host {
	var best *Host
	for _, h := range c.hosts {
		if !h.fits(t) {
			continue
		}
		switch c.policy {
		case FirstFit:
			return h
		case Pack:
			if best == nil || h.usedCPU > best.usedCPU {
				best = h
			}
		case Spread:
			if best == nil || h.usedCPU < best.usedCPU {
				best = h
			}
		}
	}
	return best
}

// deploy runs prolog (image staging) then boot in virtual time.
func (c *Cloud) deploy(vm *VM, h *Host) {
	vm.Host = h
	h.usedCPU += vm.Template.CPUs
	h.usedMem += vm.Template.MemMB
	h.running++
	vm.State = Prolog

	boot := func() {
		vm.State = Booting
		c.eng.Schedule(vm.Template.BootTime, func() {
			vm.State = Running
			vm.RunningAt = c.eng.Now()
			c.deploys.ObserveDuration(vm.DeployLatency())
			if vm.onRunning != nil {
				vm.onRunning(vm)
			}
		})
	}
	if h.cache[vm.Template.Image] {
		boot() // cached image: no staging
		return
	}
	c.imageStore.Read(vm.Template.ImageSize, func() {
		h.cache[vm.Template.Image] = true
		boot()
	})
}

// Shutdown terminates a running or booting VM, releasing capacity and
// re-scheduling the pending queue.
func (c *Cloud) Shutdown(vm *VM) error {
	switch vm.State {
	case Running, Booting, Prolog:
	default:
		return fmt.Errorf("cloud: cannot shut down VM %d in state %s", vm.ID, vm.State)
	}
	h := vm.Host
	h.usedCPU -= vm.Template.CPUs
	h.usedMem -= vm.Template.MemMB
	h.running--
	vm.State = Done
	vm.Host = nil
	c.schedule()
	return nil
}

// Stats summarizes deployments.
type Stats struct {
	Submitted    int
	Running      int
	Pending      int
	AvgDeploySec float64
	P95DeploySec float64
	MaxDeploySec float64
	HostsInUse   int
}

// Stats returns a snapshot.
func (c *Cloud) Stats() Stats {
	s := Stats{
		Submitted:    len(c.vms),
		Pending:      len(c.queue),
		AvgDeploySec: c.deploys.Mean(),
		P95DeploySec: c.deploys.Quantile(0.95),
		MaxDeploySec: c.deploys.Max(),
	}
	for _, vm := range c.vms {
		if vm.State == Running {
			s.Running++
		}
	}
	for _, h := range c.hosts {
		if h.running > 0 {
			s.HostsInUse++
		}
	}
	return s
}

package metadata

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metadata/durafs"
	"repro/internal/units"
)

// BenchmarkCreate measures dataset registration, the ingest
// pipeline's per-object metadata cost.
func BenchmarkCreate(b *testing.B) {
	s := NewStore()
	basic := map[string]string{"well": "A1", "wavelength": "488nm"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/b/%09d", i), 4*units.MB, "", basic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCreateParallel is the sharding headline: concurrent
// writers registering datasets at 1/4/16 shards × 1/8/64 goroutines.
// shards=1 is the single-lock baseline the seed store had; the
// 16-shard/64-goroutine cell versus that baseline is the number
// EXPERIMENTS.md records. Goroutine counts are fixed explicitly (not
// via RunParallel) and GOMAXPROCS is raised to the worker count
// (capped at 16) for the duration, so the writers genuinely contend
// — via OS time-slicing if the host has fewer cores — instead of
// cooperatively serializing on a single P.
func BenchmarkCreateParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("shards=%d/goroutines=%d", shards, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(min(workers, 16))
				defer runtime.GOMAXPROCS(prev)
				s := NewStoreWith(Options{Shards: shards})
				basic := map[string]string{"well": "A1", "wavelength": "488nm"}
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, err := s.Create("p", fmt.Sprintf("/p/%02d/%09d", w, i), 4*units.MB, "", basic); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkCreateBatch measures bulk registration through the
// batched API (one lock round per shard) against the same volume of
// per-dataset Create calls.
func BenchmarkCreateBatch(b *testing.B) {
	const batch = 256
	for _, mode := range []string{"loop-create", "create-batch"} {
		b.Run(mode, func(b *testing.B) {
			s := NewStore()
			specs := make([]CreateSpec, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range specs {
					specs[j] = CreateSpec{
						Project: "p",
						Path:    fmt.Sprintf("/b/%09d/%03d", i, j),
						Size:    4 * units.MB,
						Tags:    []string{"raw"},
					}
				}
				if mode == "create-batch" {
					for _, r := range s.CreateBatch(specs) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
					continue
				}
				for _, sp := range specs {
					ds, err := s.Create(sp.Project, sp.Path, sp.Size, sp.Checksum, sp.Basic)
					if err != nil {
						b.Fatal(err)
					}
					for _, tag := range sp.Tags {
						if err := s.Tag(ds.ID, tag); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(batch), "datasets/op")
		})
	}
}

// BenchmarkFindIndexed measures a tag-indexed query against a 100k
// dataset repository (the E3 fast path).
func BenchmarkFindIndexed(b *testing.B) {
	s := NewStore()
	for i := 0; i < 100_000; i++ {
		ds, err := s.Create("p", fmt.Sprintf("/b/%06d", i), 1, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if i%100 == 0 {
			if err := s.Tag(ds.ID, "hot"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Find(Query{Tags: []string{"hot"}}); len(got) != 1000 {
			b.Fatalf("hits = %d", len(got))
		}
	}
}

// BenchmarkFindScan measures the same repository through a
// basic-metadata filter that cannot use an index.
func BenchmarkFindScan(b *testing.B) {
	s := NewStore()
	for i := 0; i < 100_000; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/b/%06d", i), 1, "",
			map[string]string{"well": fmt.Sprintf("A%d", i%96)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Find(Query{Basic: map[string]string{"well": "A7"}, Limit: 10})
	}
}

// BenchmarkCreateParallelWAL is the WAL-tax companion to
// BenchmarkCreateParallel: the same 16-shard concurrent-writer grid,
// with durability off, journaled to an in-memory disk model, and
// journaled to a real filesystem with and without a group-commit
// window. The off/os delta is the price of crash durability; the
// interval column shows group commit buying most of it back under
// concurrency. EXPERIMENTS.md records the 64-goroutine cells.
func BenchmarkCreateParallelWAL(b *testing.B) {
	modes := []struct {
		name string
		open func(b *testing.B) *Store
	}{
		{"wal=off", func(b *testing.B) *Store {
			return NewStoreWith(Options{Shards: 16})
		}},
		{"wal=mem", func(b *testing.B) *Store {
			s, err := Open(Options{Shards: 16, WALDir: "/wal", FS: durafs.NewMem()})
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		{"wal=os", func(b *testing.B) *Store {
			s, err := Open(Options{Shards: 16, WALDir: b.TempDir(), FS: durafs.OS()})
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		{"wal=os-group100us", func(b *testing.B) *Store {
			s, err := Open(Options{Shards: 16, WALDir: b.TempDir(), FS: durafs.OS(),
				GroupCommitInterval: 100 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	}
	for _, mode := range modes {
		for _, workers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode.name, workers), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(min(workers, 16))
				defer runtime.GOMAXPROCS(prev)
				s := mode.open(b)
				defer s.Close()
				var next atomic.Int64
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, err := s.Create("p", fmt.Sprintf("/p/%02d/%09d", w, i), 4*units.MB, "", nil); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkCreateBatchWAL measures bulk ingest through CreateBatch on
// a durable store: the batch is the natural group-commit unit (one
// fsync per touched shard for the whole batch), so the per-dataset
// WAL tax here is the floor.
func BenchmarkCreateBatchWAL(b *testing.B) {
	const batch = 256
	for _, mode := range []string{"wal=off", "wal=os"} {
		b.Run(mode, func(b *testing.B) {
			var s *Store
			if mode == "wal=off" {
				s = NewStoreWith(Options{Shards: 16})
			} else {
				var err error
				s, err = Open(Options{Shards: 16, WALDir: b.TempDir(), FS: durafs.OS()})
				if err != nil {
					b.Fatal(err)
				}
			}
			defer s.Close()
			specs := make([]CreateSpec, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range specs {
					specs[j] = CreateSpec{
						Project: "p",
						Path:    fmt.Sprintf("/b/%09d/%03d", i, j),
						Size:    4 * units.MB,
						Tags:    []string{"raw"},
					}
				}
				for _, r := range s.CreateBatch(specs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(batch), "datasets/op")
		})
	}
}

package metadata

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

// BenchmarkCreate measures dataset registration, the ingest
// pipeline's per-object metadata cost.
func BenchmarkCreate(b *testing.B) {
	s := NewStore()
	basic := map[string]string{"well": "A1", "wavelength": "488nm"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/b/%09d", i), 4*units.MB, "", basic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindIndexed measures a tag-indexed query against a 100k
// dataset repository (the E3 fast path).
func BenchmarkFindIndexed(b *testing.B) {
	s := NewStore()
	for i := 0; i < 100_000; i++ {
		ds, err := s.Create("p", fmt.Sprintf("/b/%06d", i), 1, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		if i%100 == 0 {
			if err := s.Tag(ds.ID, "hot"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Find(Query{Tags: []string{"hot"}}); len(got) != 1000 {
			b.Fatalf("hits = %d", len(got))
		}
	}
}

// BenchmarkFindScan measures the same repository through a
// basic-metadata filter that cannot use an index.
func BenchmarkFindScan(b *testing.B) {
	s := NewStore()
	for i := 0; i < 100_000; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/b/%06d", i), 1, "",
			map[string]string{"well": fmt.Sprintf("A%d", i%96)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Find(Query{Basic: map[string]string{"well": "A7"}, Limit: 10})
	}
}

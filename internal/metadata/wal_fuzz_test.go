package metadata

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// fuzzSeedStream builds a valid WAL stream of n records for corpus
// seeding and prefix checks.
func fuzzSeedStream(n int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		frame, err := encodeRecord(walRecord{
			LSN: uint64(i + 1),
			Op:  opCreate,
			Dataset: &Dataset{
				ID:   fmt.Sprintf("d-%06d", i),
				Path: fmt.Sprintf("/fuzz/%d", i),
			},
		})
		if err != nil {
			panic(err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

// FuzzWALDecode holds decodeWALStream to its contract on arbitrary
// bytes: it never panics, never reports more valid bytes than it was
// given, and — the recovery-critical property — a stream of valid
// frames followed by garbage decodes to exactly the valid prefix.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x00}, uint8(1))
	f.Add(fuzzSeedStream(3), uint8(2))
	f.Add(append(fuzzSeedStream(2), 0xde, 0xad, 0xbe, 0xef), uint8(0))
	// A frame whose length field runs past the buffer.
	huge := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<30)
	f.Add(huge, uint8(4))
	// A checksum-valid frame holding non-JSON must be ErrWALCorrupt.
	f.Add(appendFrame(nil, []byte("not json")), uint8(1))

	f.Fuzz(func(t *testing.T, garbage []byte, nPrefix uint8) {
		// Part 1: arbitrary bytes. Must not panic; bookkeeping sane.
		recs, valid, err := decodeWALStream(garbage)
		if valid < 0 || valid > len(garbage) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(garbage))
		}
		if err != nil && !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("unexpected error type: %v", err)
		}
		// Whatever decoded must re-frame and decode back identically —
		// recovery replays these structures verbatim.
		if err == nil {
			var reenc []byte
			for _, r := range recs {
				frame, eerr := encodeRecord(r)
				if eerr != nil {
					t.Fatalf("decoded record does not re-encode: %v", eerr)
				}
				reenc = append(reenc, frame...)
			}
			recs2, _, err2 := decodeWALStream(reenc)
			if err2 != nil || len(recs2) != len(recs) {
				t.Fatalf("re-encode round trip: %d recs -> %d recs, err=%v", len(recs), len(recs2), err2)
			}
		}

		// Part 2: valid prefix + poisoned boundary + garbage must
		// recover exactly the prefix. The boundary frame is a real
		// frame with its CRC flipped, so the scan provably stops there
		// no matter what the garbage holds.
		n := int(nPrefix % 8)
		prefix := fuzzSeedStream(n)
		poison := appendFrame(nil, []byte(`{"op":"create"}`))
		poison[4] ^= 0xff // break the checksum
		stream := append(append(append([]byte{}, prefix...), poison...), garbage...)

		recs, valid, err = decodeWALStream(stream)
		if err != nil {
			t.Fatalf("prefix scan errored: %v", err)
		}
		if len(recs) != n {
			t.Fatalf("prefix of %d records decoded as %d", n, len(recs))
		}
		if valid != len(prefix) {
			t.Fatalf("truncation point %d, want %d", valid, len(prefix))
		}
		for i, r := range recs {
			if r.LSN != uint64(i+1) || r.Op != opCreate {
				t.Fatalf("record %d mangled: %+v", i, r)
			}
		}
		if !bytes.Equal(stream[:valid], prefix) {
			t.Fatal("valid span is not the byte-exact prefix")
		}
	})
}

package metadata

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metadata/durafs"
)

// The crash-consistency contract these tests enforce:
//
//  1. Acknowledged mutations survive: a Create/Tag/Delete that
//     returned without error is present (or absent, for Delete)
//     after recovery. No lost acknowledged datasets.
//  2. No phantoms: everything recovery presents was genuinely
//     submitted to the store — torn records and garbage never
//     materialize as data. A mutation that was submitted but never
//     acknowledged (in flight at the crash, or returned an error)
//     may legitimately land either way; what it must never do is
//     surface partially (a dataset without its create-time tags).
//  3. Recovery is total: Open either succeeds on the post-crash
//     bytes or fails with a typed error; it never panics and never
//     silently drops acknowledged state.

// crashWorkload drives one seeded run: concurrent batched ingest
// (CreateBatch with tags — the group-commit unit), placement/replica
// notes, and scattered deletes, against a store that will crash at a
// random injected I/O point. It returns what was acked and what was
// submitted.
type crashWorkload struct {
	mu           sync.Mutex
	ackedPresent map[string][]string // path -> create-time tags, acked and not deleted
	ackedAbsent  map[string]bool     // path -> delete acked
	submitted    map[string]bool     // every path ever attempted
}

func (w *crashWorkload) submit(paths ...string) {
	w.mu.Lock()
	for _, p := range paths {
		w.submitted[p] = true
	}
	w.mu.Unlock()
}

func (w *crashWorkload) ackCreate(path string, tags []string) {
	w.mu.Lock()
	w.ackedPresent[path] = tags
	w.mu.Unlock()
}

func (w *crashWorkload) ackDelete(path string) {
	w.mu.Lock()
	delete(w.ackedPresent, path)
	w.ackedAbsent[path] = true
	w.mu.Unlock()
}

// indeterminate drops every constraint on path: its latest
// presence-changing mutation was in flight at the crash, so either
// outcome is legal.
func (w *crashWorkload) indeterminate(path string) {
	w.mu.Lock()
	delete(w.ackedPresent, path)
	delete(w.ackedAbsent, path)
	w.mu.Unlock()
}

// runCrashSeed executes one seed: ingest until the injected crash
// (or completion), reopen from the surviving bytes, and check the
// contract. Returns the recovery stats for aggregation.
func runCrashSeed(t *testing.T, seed int64) RecoveryStats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mem := durafs.NewMem()
	fault := durafs.NewFault(mem, rand.New(rand.NewSource(seed^0x5eed)))

	s, err := Open(Options{
		Shards:        4,
		SnapshotEvery: 8 + rng.Intn(24),
		WALDir:        "/wal",
		FS:            fault,
	})
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	// Arm the crash point somewhere inside the workload's I/O span.
	fault.CrashAfterOps(int64(1 + rng.Intn(1500)))

	w := &crashWorkload{
		ackedPresent: make(map[string][]string),
		ackedAbsent:  make(map[string]bool),
		submitted:    make(map[string]bool),
	}

	const goroutines, batches, batchSize = 4, 8, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var created []Dataset
			for b := 0; b < batches; b++ {
				specs := make([]CreateSpec, batchSize)
				for i := range specs {
					path := fmt.Sprintf("/crash/%d/%d/%d", g, b, i)
					specs[i] = CreateSpec{
						Project: "p",
						Path:    path,
						Size:    1,
						Tags:    []string{"raw", fmt.Sprintf("g%d", g)},
					}
					w.submit(path)
				}
				for _, res := range s.CreateBatch(specs) {
					if res.Err == nil {
						w.ackCreate(res.Dataset.Path, res.Dataset.Tags)
						created = append(created, res.Dataset)
					}
				}
				// Placement/replica notes ride the same WALs.
				if len(created) > 0 {
					d := created[len(created)-1]
					s.NotePlacement("/ddn"+d.Path, "resident")
					s.NoteReplica(d.Path, "gridka", "valid")
				}
				// Occasionally delete an earlier acked dataset.
				if b%3 == 2 && len(created) > 2 {
					victim := created[0]
					created = created[1:]
					if err := s.Delete(victim.ID); err == nil {
						w.ackDelete(victim.Path)
					} else {
						w.indeterminate(victim.Path)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The "machine" is dead (or the workload completed). Recover from
	// exactly what the disk holds.
	if !fault.Crashed() {
		mem.Crash(nil) // treat run-to-completion as a clean power cut after final fsyncs
	}
	r, err := Open(Options{Shards: 4, WALDir: "/wal", FS: mem})
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer r.Close()

	w.mu.Lock()
	defer w.mu.Unlock()
	for path, tags := range w.ackedPresent {
		got, ok := r.ByPath(path)
		if !ok {
			t.Fatalf("seed %d: LOST acknowledged dataset %s", seed, path)
		}
		if len(got.Tags) != len(tags) {
			t.Fatalf("seed %d: %s recovered with tags %v, acked %v", seed, path, got.Tags, tags)
		}
	}
	for path := range w.ackedAbsent {
		if _, ok := r.ByPath(path); ok {
			t.Fatalf("seed %d: acknowledged delete of %s did not survive", seed, path)
		}
	}
	for _, d := range r.Find(Query{}) {
		if !w.submitted[d.Path] {
			t.Fatalf("seed %d: PHANTOM dataset %s (%s) never submitted", seed, d.ID, d.Path)
		}
		if !d.HasTag("raw") {
			t.Fatalf("seed %d: %s recovered without its create-time tags: %v", seed, d.Path, d.Tags)
		}
	}
	return r.RecoveryStats()
}

// TestCrashRecoveryProperty is the headline crash-injection property
// test: >= 100 seeds, each with a random crash point injected during
// sustained concurrent batched ingest. Runs under -race in CI.
func TestCrashRecoveryProperty(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	var agg RecoveryStats
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			st := runCrashSeed(t, int64(seed))
			agg.RecordsReplayed += st.RecordsReplayed
			agg.SnapshotsLoaded += st.SnapshotsLoaded
			agg.TornTails += st.TornTails
			agg.PathConflictsDropped += st.PathConflictsDropped
		})
	}
	// The sweep must actually exercise the interesting machinery.
	if agg.RecordsReplayed == 0 {
		t.Error("no seed replayed any WAL records")
	}
	if agg.SnapshotsLoaded == 0 {
		t.Error("no seed recovered through a snapshot")
	}
	t.Logf("aggregate: %d records replayed, %d snapshots loaded, %d torn tails, %d path conflicts",
		agg.RecordsReplayed, agg.SnapshotsLoaded, agg.TornTails, agg.PathConflictsDropped)
}

// TestCrashPointSweep is the exhaustive single-threaded matrix: a
// deterministic workload is first run fault-free to count its I/O
// operations, then re-run once per crash point across the whole
// span (sampled past a cap to bound runtime). Every single injected
// crash must recover cleanly with the full contract intact.
func TestCrashPointSweep(t *testing.T) {
	// Pass 1: count ops.
	probe := durafs.NewFault(durafs.NewMem(), nil)
	total := func() int64 {
		s, err := Open(Options{Shards: 2, SnapshotEvery: 6, WALDir: "/wal", FS: probe})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		sweepWorkload(t, s, false)
		return probe.Ops()
	}()
	if total < 50 {
		t.Fatalf("sweep workload too small: %d ops", total)
	}
	step := int64(1)
	if max := int64(400); total > max && testing.Short() {
		step = total/max + 1
	}
	for crashAt := int64(1); crashAt <= total; crashAt += step {
		mem := durafs.NewMem()
		fault := durafs.NewFault(mem, rand.New(rand.NewSource(crashAt)))
		s, err := Open(Options{Shards: 2, SnapshotEvery: 6, WALDir: "/wal", FS: fault})
		if err != nil {
			// The crash point can land inside Open itself once the
			// sweep passes the manifest writes; that must also be a
			// typed failure, never a panic.
			continue
		}
		fault.CrashAfterOps(crashAt)
		acked := sweepWorkload(t, s, true)

		r, rerr := Open(Options{Shards: 2, WALDir: "/wal", FS: mem})
		if rerr != nil {
			t.Fatalf("crashAt=%d: recovery failed: %v", crashAt, rerr)
		}
		for path, wantPresent := range acked {
			_, ok := r.ByPath(path)
			if wantPresent && !ok {
				t.Fatalf("crashAt=%d: lost acknowledged %s", crashAt, path)
			}
			if !wantPresent && ok {
				t.Fatalf("crashAt=%d: acknowledged delete of %s lost", crashAt, path)
			}
		}
		r.Close()
	}
}

// sweepWorkload is the deterministic op mix for the crash sweep:
// creates, tags, a processing record, placement/replica notes and a
// delete. It returns the acked expectation map (path -> should be
// present); a path whose presence-changing op was in flight when the
// crash hit is removed from the map entirely — an unacknowledged
// create or delete may legally land either way. With tolerate set,
// WAL failures (the armed crash) stop the run silently.
func sweepWorkload(t *testing.T, s *Store, tolerate bool) map[string]bool {
	t.Helper()
	acked := make(map[string]bool)
	fatal := func(err error) {
		if !tolerate {
			t.Fatalf("fault-free workload errored: %v", err)
		}
	}
	for i := 0; i < 30; i++ {
		path := fmt.Sprintf("/sweep/%02d", i)
		d, err := s.Create("p", path, 1, "", nil)
		if err != nil {
			fatal(err) // in-flight create: no constraint on path
			return acked
		}
		acked[path] = true
		if i%2 == 0 {
			if err := s.Tag(d.ID, "even"); err != nil {
				fatal(err) // dataset stays acked; only the tag is in flight
				return acked
			}
		}
		if i%5 == 0 {
			if _, err := s.AddProcessing(d.ID, Processing{Tool: "t"}); err != nil {
				fatal(err)
				return acked
			}
		}
		s.NotePlacement("/ddn"+path, "resident")
		if i == 20 {
			if err := s.Delete(d.ID); err != nil {
				fatal(err)
				delete(acked, path) // in-flight delete: either outcome is legal
				return acked
			}
			acked[path] = false
		}
	}
	return acked
}

// TestInjectedFailureModesTyped is the torn-write / short-fsync
// matrix over the durafs seam: each injected failure mode must
// surface as a typed error on the mutation path (never silence), and
// a subsequent crash+reopen must recover every previously
// acknowledged dataset.
func TestInjectedFailureModesTyped(t *testing.T) {
	modes := []struct {
		name string
		arm  func(*durafs.Fault)
	}{
		{"short-fsync", func(f *durafs.Fault) { f.FailSyncs(1) }},
		{"torn-write", func(f *durafs.Fault) { f.TearNextWrite() }},
		{"short-fsync-burst", func(f *durafs.Fault) { f.FailSyncs(3) }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			mem := durafs.NewMem()
			fault := durafs.NewFault(mem, rand.New(rand.NewSource(1)))
			s, err := Open(Options{Shards: 1, WALDir: "/wal", FS: fault})
			if err != nil {
				t.Fatal(err)
			}
			// Phase 1: acked baseline.
			for i := 0; i < 5; i++ {
				if _, err := s.Create("p", fmt.Sprintf("/m/%d", i), 1, "", nil); err != nil {
					t.Fatal(err)
				}
			}
			// Phase 2: inject. The mutation must report a typed error.
			mode.arm(fault)
			_, err = s.Create("p", "/m/failed", 1, "", nil)
			if err == nil {
				t.Fatal("injected failure was silently swallowed")
			}
			if !errors.Is(err, ErrWALFailed) {
				t.Fatalf("err = %v, want ErrWALFailed wrapper", err)
			}
			// Phase 3: fail-stop — the shard refuses more work.
			if _, err := s.Create("p", "/m/after", 1, "", nil); !errors.Is(err, ErrWALFailed) {
				t.Fatalf("shard accepted mutation after WAL failure: %v", err)
			}
			// Phase 4: crash, recover, audit.
			mem.Crash(nil)
			r, err := Open(Options{Shards: 1, WALDir: "/wal", FS: mem})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer r.Close()
			for i := 0; i < 5; i++ {
				if _, ok := r.ByPath(fmt.Sprintf("/m/%d", i)); !ok {
					t.Fatalf("acked /m/%d lost after %s", i, mode.name)
				}
			}
			if _, ok := r.ByPath("/m/failed"); ok {
				t.Fatal("errored mutation recovered as if acknowledged")
			}
		})
	}
}

package metadata

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAsyncPerDatasetOrdering is the async bus's ordering proof:
// with one goroutine mutating each dataset, every subscriber must
// observe that dataset's events in commit order (Created, Tagged...,
// Untagged, Deleted, with monotonically increasing versions), even
// while many datasets mutate concurrently across shards.
func TestAsyncPerDatasetOrdering(t *testing.T) {
	s := NewStoreWith(Options{Async: true, QueueLen: 8})
	defer s.Close()

	var mu sync.Mutex
	got := map[string][]Event{}
	defer s.Subscribe(func(ev Event) {
		mu.Lock()
		got[ev.Dataset.Path] = append(got[ev.Dataset.Path], ev)
		mu.Unlock()
	})()

	const datasets = 32
	var wg sync.WaitGroup
	for i := 0; i < datasets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/ord/%03d", i)
			d, err := s.Create("p", path, 1, "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			for _, tag := range []string{"t1", "t2", "t3"} {
				if err := s.Tag(d.ID, tag); err != nil {
					t.Error(err)
				}
			}
			if err := s.Untag(d.ID, "t2"); err != nil {
				t.Error(err)
			}
			if err := s.Delete(d.ID); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	s.Flush()

	want := []EventType{EventCreated, EventTagged, EventTagged, EventTagged, EventUntagged, EventDeleted}
	if len(got) != datasets {
		t.Fatalf("datasets observed = %d, want %d", len(got), datasets)
	}
	for path, evs := range got {
		if len(evs) != len(want) {
			t.Fatalf("%s: %d events, want %d", path, len(evs), len(want))
		}
		for i, ev := range evs {
			if ev.Type != want[i] {
				t.Fatalf("%s: event %d = %v, want %v", path, i, ev.Type, want[i])
			}
			if i > 0 && evs[i].Dataset.Version < evs[i-1].Dataset.Version {
				t.Fatalf("%s: version regressed %d -> %d at event %d",
					path, evs[i-1].Dataset.Version, evs[i].Dataset.Version, i)
			}
		}
		if evs[1].Tag != "t1" || evs[2].Tag != "t2" || evs[3].Tag != "t3" {
			t.Fatalf("%s: tag order %q %q %q", path, evs[1].Tag, evs[2].Tag, evs[3].Tag)
		}
	}
}

// TestAsyncFlushCascade: Flush must cover events published *by
// subscriber callbacks* — the orchestrator pattern, where a Tagged
// event triggers work that tags again.
func TestAsyncFlushCascade(t *testing.T) {
	s := NewStoreWith(Options{Async: true})
	defer s.Close()

	var processed atomic.Int64
	unsub := s.Subscribe(func(ev Event) {
		switch {
		case ev.Type == EventTagged && ev.Tag == "analyze":
			// Re-entrant mutation from the callback goroutine.
			if err := s.Tag(ev.Dataset.ID, "processed"); err != nil {
				t.Error(err)
			}
		case ev.Type == EventTagged && ev.Tag == "processed":
			processed.Add(1)
		}
	})
	defer unsub()

	const n = 50
	for i := 0; i < n; i++ {
		d, err := s.Create("p", fmt.Sprintf("/c/%03d", i), 1, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Tag(d.ID, "analyze"); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if processed.Load() != n {
		t.Fatalf("processed = %d, want %d", processed.Load(), n)
	}
	if got := s.Find(Query{Tags: []string{"processed"}}); len(got) != n {
		t.Fatalf("processed tag on %d datasets, want %d", len(got), n)
	}
}

// TestAsyncBackpressure: a slow subscriber's bounded queue must not
// lose events — publishing far more events than QueueLen still
// delivers every one by Flush time.
func TestAsyncBackpressure(t *testing.T) {
	s := NewStoreWith(Options{Async: true, QueueLen: 4})
	defer s.Close()

	var slow, fast atomic.Int64
	defer s.Subscribe(func(ev Event) {
		// ~memory-bound work to keep the queue saturated.
		for i := 0; i < 100; i++ {
			_ = fmt.Sprintf("%d", i)
		}
		slow.Add(1)
	})()
	defer s.Subscribe(func(ev Event) { fast.Add(1) })()

	const n = 300
	for i := 0; i < n; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/bp/%04d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if slow.Load() != n || fast.Load() != n {
		t.Fatalf("slow=%d fast=%d, want %d each", slow.Load(), fast.Load(), n)
	}
}

// TestAsyncUnsubscribeDropsQueue: unsubscribing mid-stream stops
// delivery and must not wedge Flush.
func TestAsyncUnsubscribeDropsQueue(t *testing.T) {
	s := NewStoreWith(Options{Async: true, QueueLen: 2})
	var count atomic.Int64
	unsub := s.Subscribe(func(ev Event) { count.Add(1) })
	for i := 0; i < 100; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/u/%03d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	unsub()
	s.Flush() // must not hang on the dropped queue
	n := count.Load()
	if n > 100 {
		t.Fatalf("delivered %d > published 100", n)
	}
	// After unsubscribe, no further delivery.
	if _, err := s.Create("p", "/u/after", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if count.Load() != n {
		t.Fatalf("event delivered after unsubscribe: %d -> %d", n, count.Load())
	}
	s.Close()
}

// TestCloseIdempotentAndMutableAfter: Close flushes, is safe to call
// twice, and the store keeps accepting mutations afterwards (silently
// dropping events).
func TestCloseIdempotentAndMutableAfter(t *testing.T) {
	s := NewStoreWith(Options{Async: true})
	var count atomic.Int64
	s.Subscribe(func(Event) { count.Add(1) })
	if _, err := s.Create("p", "/x", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if count.Load() != 1 {
		t.Fatalf("Close did not flush: %d events", count.Load())
	}
	s.Close() // idempotent
	if _, err := s.Create("p", "/y", 1, "", nil); err != nil {
		t.Fatalf("mutation after Close: %v", err)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	if count.Load() != 1 {
		t.Fatalf("event delivered after Close: %d", count.Load())
	}
}

// TestHoldFlushExtendsBarrier: external work registered via
// HoldFlush keeps Flush blocked until released, and release is
// idempotent.
func TestHoldFlushExtendsBarrier(t *testing.T) {
	s := NewStoreWith(Options{Async: true})
	defer s.Close()
	release := s.HoldFlush()
	done := make(chan struct{})
	go func() {
		s.Flush()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Flush returned while HoldFlush outstanding")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	release() // idempotent
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Flush did not return after release")
	}
	s.Flush() // still balanced after double release
}

// TestSyncModeNoDeliveryAfterClose: Close stops delivery in sync mode
// too, honoring the documented contract.
func TestSyncModeNoDeliveryAfterClose(t *testing.T) {
	s := NewStore()
	seen := 0
	s.Subscribe(func(Event) { seen++ })
	if _, err := s.Create("p", "/x", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Create("p", "/y", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("deliveries = %d, want 1 (none after Close)", seen)
	}
}

// TestSyncModeFlushNoop: in the default sync mode Flush and Close are
// cheap no-ops and subscribers have already run inline.
func TestSyncModeFlushNoop(t *testing.T) {
	s := NewStore()
	seen := 0
	s.Subscribe(func(Event) { seen++ })
	if _, err := s.Create("p", "/x", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("sync delivery not inline: %d", seen)
	}
	s.Flush()
	s.Close()
}

package durafs

import (
	"errors"
	"io"
	"math/rand"
	"testing"
)

func readAll(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

// TestMemFSCrashDropsUnsynced is the core durability model: synced
// bytes survive a crash, unsynced bytes do not.
func TestMemFSCrashDropsUnsynced(t *testing.T) {
	m := NewMem()
	f, err := m.OpenAppend("/wal/shard-000.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	// Before the crash, reads see everything (page-cache semantics).
	if got := string(readAll(t, m, "/wal/shard-000.wal")); got != "durablevolatile" {
		t.Fatalf("pre-crash contents = %q", got)
	}
	m.Crash(nil)
	if got := string(readAll(t, m, "/wal/shard-000.wal")); got != "durable" {
		t.Fatalf("post-crash contents = %q, want only synced bytes", got)
	}
}

// TestMemFSTornCrashKeepsPrefix: with an rng, a crash may keep a
// prefix of the unsynced extents and tear the last one — but never
// reorders and never invents bytes.
func TestMemFSTornCrashKeepsPrefix(t *testing.T) {
	full := "durable" + "aaaa" + "bbbb" + "cccc"
	for seed := int64(0); seed < 50; seed++ {
		m := NewMem()
		f, _ := m.OpenAppend("/f")
		f.Write([]byte("durable"))
		f.Sync()
		f.Write([]byte("aaaa"))
		f.Write([]byte("bbbb"))
		f.Write([]byte("cccc"))
		m.Crash(rand.New(rand.NewSource(seed)))
		got := string(readAll(t, m, "/f"))
		if len(got) < len("durable") || got != full[:len(got)] {
			t.Fatalf("seed %d: post-crash %q is not a prefix of %q", seed, got, full)
		}
	}
}

// TestMemFSRenameKeepsSyncState: renaming a file with unsynced bytes
// must not launder them into durability — the snapshot-without-sync
// bug class.
func TestMemFSRenameKeepsSyncState(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("/snap.tmp")
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte("tail"))
	f.Close()
	if err := m.Rename("/snap.tmp", "/snap"); err != nil {
		t.Fatal(err)
	}
	m.Crash(nil)
	if got := string(readAll(t, m, "/snap")); got != "synced" {
		t.Fatalf("post-crash renamed file = %q, want %q", got, "synced")
	}
	if _, err := m.Open("/snap.tmp"); err == nil {
		t.Fatal("old name still present after rename")
	}
}

// TestFaultCrashPoint: after the armed operation count, everything —
// including previously opened handles — returns ErrCrashed.
func TestFaultCrashPoint(t *testing.T) {
	ff := NewFault(NewMem(), nil)
	f, err := ff.OpenAppend("/wal") // op 1
	if err != nil {
		t.Fatal(err)
	}
	ff.CrashAfterOps(2)
	if _, err := f.Write([]byte("a")); err != nil { // op 2
		t.Fatalf("write before crash point: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrCrashed) { // op 3 fires
		t.Fatalf("write at crash point: err = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: err = %v, want ErrCrashed", err)
	}
	if _, err := ff.Open("/wal"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: err = %v, want ErrCrashed", err)
	}
	if !ff.Crashed() {
		t.Fatal("Crashed() = false after crash point fired")
	}
	// The wrapped MemFS survives for recovery: no synced bytes here.
	if got := readAll(t, ff.Inner(), "/wal"); len(got) != 0 {
		t.Fatalf("unsynced write survived crash: %q", got)
	}
}

// TestFaultFailSyncs: injected fsync failures return the typed error
// and promote nothing.
func TestFaultFailSyncs(t *testing.T) {
	ff := NewFault(NewMem(), nil)
	f, _ := ff.OpenAppend("/wal")
	f.Write([]byte("x"))
	ff.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync = %v, want ErrInjectedSync", err)
	}
	ff.Inner().Crash(nil)
	if got := readAll(t, ff.Inner(), "/wal"); len(got) != 0 {
		t.Fatalf("failed sync still promoted bytes: %q", got)
	}
}

// TestFaultTearNextWrite: a torn write persists only a prefix and
// reports the typed error.
func TestFaultTearNextWrite(t *testing.T) {
	ff := NewFault(NewMem(), rand.New(rand.NewSource(7)))
	f, _ := ff.OpenAppend("/wal")
	ff.TearNextWrite()
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("write = %v, want ErrInjectedWrite", err)
	}
	if n >= 10 {
		t.Fatalf("torn write persisted %d bytes, want < 10", n)
	}
	f.Sync()
	got := readAll(t, ff.Inner(), "/wal")
	if string(got) != "0123456789"[:n] {
		t.Fatalf("persisted %q, want the reported %d-byte prefix", got, n)
	}
}

// TestMemFSTruncate covers the recovery path's torn-tail drop.
func TestMemFSTruncate(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenAppend("/wal")
	f.Write([]byte("keepDROP"))
	f.Sync()
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, m, "/wal")); got != "keep" {
		t.Fatalf("after truncate: %q", got)
	}
	sz, _ := f.Size()
	if sz != 4 {
		t.Fatalf("size = %d, want 4", sz)
	}
}

// TestOSFSRoundTrip exercises the production implementation against
// a real temp dir: append, sync, rename, readdir.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	if err := fs.MkdirAll(dir + "/wal"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenAppend(dir + "/wal/shard-000.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(dir+"/wal/shard-000.wal", dir+"/wal/renamed.wal"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir + "/wal"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "renamed.wal" {
		t.Fatalf("readdir = %v", names)
	}
	if got := string(readAll(t, fs, dir+"/wal/renamed.wal")); got != "hello" {
		t.Fatalf("contents = %q", got)
	}
}

package durafs

import (
	"math/rand"
	"sync"
)

// Fault wraps a MemFS with programmable failure injection. Three
// knobs cover the crash-consistency test matrix:
//
//   - CrashAfterOps(n): the n-th subsequent I/O operation fires the
//     crash point — the underlying MemFS crashes (unsynced data is
//     dropped or torn per the configured rng) and every operation
//     from then on, including on already-open handles, returns
//     ErrCrashed. This simulates the process dying mid-write.
//   - FailSyncs(k): the next k Sync calls return ErrInjectedSync
//     without promoting any bytes — the disk said no, the process
//     lives. The store must turn this into a typed error, not silent
//     loss.
//   - TearNextWrite(): the next Write persists only a prefix of its
//     buffer and returns ErrInjectedWrite — a short write the caller
//     must handle.
//
// The zero injection state is a transparent pass-through, so one
// Fault can serve a whole test run with points armed between phases.
type Fault struct {
	inner *MemFS

	mu        sync.Mutex
	rng       *rand.Rand
	ops       int64
	crashAt   int64 // fire the crash point when ops reaches this; 0 = disarmed
	crashed   bool
	failSyncs int
	tearWrite bool
}

// NewFault wraps inner. rng drives torn-write decisions at the crash
// point; nil means clean crashes (synced bytes only).
func NewFault(inner *MemFS, rng *rand.Rand) *Fault {
	return &Fault{inner: inner, rng: rng}
}

// Inner returns the wrapped MemFS — after a crash, open a fresh
// store on it (or on a new Fault around it) to exercise recovery.
func (f *Fault) Inner() *MemFS { return f.inner }

// CrashAfterOps arms the crash point n operations from now (n >= 1).
func (f *Fault) CrashAfterOps(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = f.ops + n
}

// FailSyncs makes the next k Sync calls fail with ErrInjectedSync.
func (f *Fault) FailSyncs(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = k
}

// TearNextWrite makes the next Write persist only a prefix and fail.
func (f *Fault) TearNextWrite() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearWrite = true
}

// Crashed reports whether the crash point has fired.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns the operation count so far, so a harness can size the
// crash-point window for a follow-up run.
func (f *Fault) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step counts one operation and fires the crash point when armed.
// It returns ErrCrashed once the FS is dead.
func (f *Fault) step() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		f.inner.Crash(f.rng)
		return ErrCrashed
	}
	return nil
}

func (f *Fault) MkdirAll(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *Fault) Create(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	h, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, h: h}, nil
}

func (f *Fault) OpenAppend(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	h, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, h: h}, nil
}

func (f *Fault) Open(name string) (File, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	h, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, h: h}, nil
}

func (f *Fault) Rename(oldname, newname string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *Fault) Remove(name string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Fault) ReadDir(dir string) ([]string, error) {
	if err := f.step(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *Fault) SyncDir(dir string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile consults the shared fault state on every operation, so a
// handle opened before the crash point dies with the filesystem.
type faultFile struct {
	f *Fault
	h File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.f.step(); err != nil {
		return 0, err
	}
	return ff.h.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if err := ff.f.step(); err != nil {
		return 0, err
	}
	ff.f.mu.Lock()
	tear := ff.f.tearWrite
	ff.f.tearWrite = false
	ff.f.mu.Unlock()
	if tear && len(p) > 0 {
		keep := len(p) / 2
		if ff.f.rng != nil {
			keep = ff.f.rng.Intn(len(p))
		}
		n, _ := ff.h.Write(p[:keep])
		return n, ErrInjectedWrite
	}
	return ff.h.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.f.step(); err != nil {
		return err
	}
	ff.f.mu.Lock()
	fail := ff.f.failSyncs > 0
	if fail {
		ff.f.failSyncs--
	}
	ff.f.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return ff.h.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.f.step(); err != nil {
		return err
	}
	return ff.h.Truncate(size)
}

func (ff *faultFile) Size() (int64, error) {
	if err := ff.f.step(); err != nil {
		return 0, err
	}
	return ff.h.Size()
}

func (ff *faultFile) Close() error {
	// Closing is free: a dead process's handles are closed by the OS.
	return ff.h.Close()
}

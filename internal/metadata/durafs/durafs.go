// Package durafs is the injectable filesystem seam under the
// metadata store's durability machinery (WAL + snapshots). Every
// byte the store persists flows through an FS, so the whole
// crash-consistency story becomes deterministically testable: the
// production implementation (OS) is a thin veneer over the os
// package, while MemFS models a disk with an explicit synced/
// unsynced boundary and Fault wraps any FS with programmable crash
// points, torn writes and failed fsyncs.
//
// The durability model the interfaces encode is the POSIX one that
// WAL implementations actually rely on:
//
//   - Write buffers; nothing is promised until Sync returns.
//   - A crash may keep any prefix of the unsynced writes to a file,
//     and may tear the last surviving write at an arbitrary byte.
//   - Rename is atomic: after a crash the name refers to either the
//     old or the new file, never a mix — but the *contents* of the
//     renamed file only include its synced bytes, which is why a
//     snapshot must Sync before Rename.
//   - Directory entries created by Create/Rename are durable only
//     after SyncDir on the parent.
//
// MemFS implements exactly that model; Crash() collapses it to what
// a real disk would hold after power loss, so a test can "kill" the
// store at any injected point and recover from the survivors.
package durafs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Errors returned by fault-injecting implementations. Production
// code never sees them outside tests, but the store treats any FS
// error on the WAL path as fail-stop, so they flow through the same
// typed-error plumbing as real I/O failures.
var (
	// ErrCrashed is returned by every operation on a Fault FS after
	// its crash point fired: the simulated process is dead.
	ErrCrashed = errors.New("durafs: filesystem crashed")
	// ErrInjectedSync is the failure a scheduled bad fsync returns.
	ErrInjectedSync = errors.New("durafs: injected sync failure")
	// ErrInjectedWrite is the failure a scheduled torn write returns
	// after persisting only a prefix of the buffer.
	ErrInjectedWrite = errors.New("durafs: injected short write")
)

// File is one open file. Writes append or overwrite at the current
// position depending on how the file was opened; the store only ever
// appends (WAL) or writes fresh files front-to-back (snapshots).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes every byte written so far durable.
	Sync() error
	// Truncate cuts the file to size bytes (used to drop a torn WAL
	// tail before appending resumes).
	Truncate(size int64) error
	// Size returns the current file length in bytes.
	Size() (int64, error)
}

// FS is the filesystem surface the durability layer needs. Paths use
// forward slashes; implementations may map them onto a host
// filesystem (OS) or an in-memory tree (MemFS).
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing.
	OpenAppend(name string) (File, error)
	// Open opens name read-only, positioned at byte 0.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes dir's entries (creates and renames) durable.
	SyncDir(dir string) error
}

// OS returns the production FS: a pass-through to the os package.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

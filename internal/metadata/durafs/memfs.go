package durafs

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS that models the durability semantics of a
// real disk: every Write lands in an unsynced extent list, Sync
// promotes the extents to the durable prefix, and Crash discards —
// or, when torn writes are enabled, partially keeps — whatever was
// never synced. After a Crash the tree holds exactly what a disk
// would after power loss, and the store can be re-opened on it to
// exercise recovery.
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// memFile is one file's state: the durable prefix plus the unsynced
// extents appended since the last Sync. Reads see durable+unsynced
// (the OS page cache serves un-fsynced data); only Crash distinguishes
// the two.
type memFile struct {
	durable  []byte
	unsynced [][]byte
}

func (mf *memFile) contents() []byte {
	out := append([]byte(nil), mf.durable...)
	for _, ext := range mf.unsynced {
		out = append(out, ext...)
	}
	return out
}

func (mf *memFile) size() int64 {
	n := int64(len(mf.durable))
	for _, ext := range mf.unsynced {
		n += int64(len(ext))
	}
	return n
}

// NewMem returns an empty MemFS with a root directory.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: map[string]bool{".": true}}
}

func clean(p string) string { return path.Clean("/" + strings.ReplaceAll(p, "\\", "/")) }

// MkdirAll creates dir and any missing parents.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := clean(dir)
	for d != "/" && d != "." {
		m.dirs[d] = true
		d = path.Dir(d)
	}
	m.dirs["/"] = true
	return nil
}

func (m *MemFS) lookup(name string) (*memFile, error) {
	mf, ok := m.files[clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return mf, nil
}

// Create opens name for writing, truncating any existing file. The
// truncation itself is treated as a metadata operation made durable
// by SyncDir on the parent (like the directory entry).
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf := &memFile{}
	m.files[clean(name)] = mf
	return &memHandle{fs: m, f: mf, write: true}, nil
}

// OpenAppend opens name for appending, creating it if missing.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, ok := m.files[clean(name)]
	if !ok {
		mf = &memFile{}
		m.files[clean(name)] = mf
	}
	return &memHandle{fs: m, f: mf, write: true}, nil
}

// Open opens name read-only.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, err := m.lookup(name)
	if err != nil {
		return nil, err
	}
	return &memHandle{fs: m, f: mf}, nil
}

// Rename atomically replaces newname with oldname. The renamed
// file's unsynced extents stay unsynced: a snapshot renamed into
// place without a prior Sync still loses its tail on Crash, exactly
// as on a real filesystem.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mf, err := m.lookup(oldname)
	if err != nil {
		return err
	}
	delete(m.files, clean(oldname))
	m.files[clean(newname)] = mf
	return nil
}

// Remove deletes name.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.lookup(name); err != nil {
		return err
	}
	delete(m.files, clean(name))
	return nil
}

// ReadDir lists the file names in dir, sorted.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := clean(dir)
	var names []string
	for p := range m.files {
		if path.Dir(p) == d {
			names = append(names, path.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir is a no-op for MemFS: directory entries (Create, Rename,
// Remove) are modeled as immediately durable. File *contents* are
// not — that asymmetry is deliberate: it is the failure mode that
// catches a snapshot renamed into place without a content Sync,
// which is the bug class the seam exists to expose.
func (m *MemFS) SyncDir(dir string) error { return nil }

// Crash simulates power loss. Synced bytes survive; for each file
// the unsynced extents are dropped — unless rng is non-nil, in which
// case a random prefix of the extents survives and the last
// surviving extent may be torn at a random byte, which is the
// worst-case POSIX allowance. Open handles keep working against the
// post-crash state (the test harness, not the handle, decides when
// the "process" is dead — use Fault for that).
func (m *MemFS) Crash(rng *rand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mf := range m.files {
		if rng != nil && len(mf.unsynced) > 0 {
			keep := rng.Intn(len(mf.unsynced) + 1)
			for _, ext := range mf.unsynced[:keep] {
				mf.durable = append(mf.durable, ext...)
			}
			if keep < len(mf.unsynced) && rng.Intn(2) == 0 {
				tear := mf.unsynced[keep]
				if n := rng.Intn(len(tear) + 1); n > 0 {
					mf.durable = append(mf.durable, tear[:n]...)
				}
			}
		}
		mf.unsynced = nil
	}
}

// DurableBytes returns the total synced byte count across all files
// (for experiment tables and assertions).
func (m *MemFS) DurableBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, mf := range m.files {
		n += int64(len(mf.durable))
	}
	return n
}

// memHandle is one open handle on a memFile.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	off    int64
	write  bool
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	data := h.f.contents()
	if h.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if !h.write {
		return 0, &fs.PathError{Op: "write", Err: fs.ErrPermission}
	}
	h.f.unsynced = append(h.f.unsynced, append([]byte(nil), p...))
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	for _, ext := range h.f.unsynced {
		h.f.durable = append(h.f.durable, ext...)
	}
	h.f.unsynced = nil
	return nil
}

// Truncate cuts the file to size bytes. Like directory operations it
// is modeled as immediately durable — the store only truncates to
// drop a torn WAL tail during recovery, where resurrection would be
// harmless anyway (stale records are skipped by LSN).
func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	data := h.f.contents()
	if size > int64(len(data)) {
		return fmt.Errorf("truncate beyond EOF: %w", fs.ErrInvalid)
	}
	h.f.durable = append([]byte(nil), data[:size]...)
	h.f.unsynced = nil
	if h.off > size {
		h.off = size
	}
	return nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.f.size(), nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

package metadata

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/units"
)

// TestShardCountRounding: shard counts round up to powers of two and
// 0 selects the default.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := NewStoreWith(Options{Shards: tc.in}).Shards(); got != tc.want {
			t.Errorf("Shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardedMatchesSingleLock: the same operation sequence against a
// 1-shard store and a 16-shard store yields identical query results —
// sharding must be invisible to readers.
func TestShardedMatchesSingleLock(t *testing.T) {
	single := NewStoreWith(Options{Shards: 1})
	sharded := NewStoreWith(Options{Shards: 16})
	for _, s := range []*Store{single, sharded} {
		var ids []string
		for i := 0; i < 200; i++ {
			proj := "zebrafish"
			if i%3 == 0 {
				proj = "katrin"
			}
			d, err := s.Create(proj, fmt.Sprintf("/m/%04d", i), units.Bytes(i), "", map[string]string{"w": fmt.Sprint(i % 7)})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, d.ID)
			if i%4 == 0 {
				if err := s.Tag(d.ID, "cal"); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 200; i += 9 {
			if err := s.Delete(ids[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, q := range []Query{
		{},
		{Project: "katrin"},
		{Tags: []string{"cal"}},
		{Project: "zebrafish", Tags: []string{"cal"}},
		{PathPrefix: "/m/01"},
		{Basic: map[string]string{"w": "3"}},
		{Limit: 17},
		{Tags: []string{"cal"}, Limit: 5},
	} {
		a, b := single.Find(q), sharded.Find(q)
		if len(a) != len(b) {
			t.Fatalf("query %+v: single=%d sharded=%d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Path != b[i].Path {
				t.Fatalf("query %+v: row %d differs: %s vs %s", q, i, a[i].ID, b[i].ID)
			}
		}
	}
	if single.Count() != sharded.Count() {
		t.Fatalf("count: %d vs %d", single.Count(), sharded.Count())
	}
}

// TestConcurrentStress drives Create/Tag/Untag/Find/Delete/
// AddProcessing from many goroutines across all shards; run with
// -race this is the data-race proof for the sharded store. Invariants
// are checked after the storm settles.
func TestConcurrentStress(t *testing.T) {
	s := NewStoreWith(Options{Shards: 8})
	const (
		workers = 16
		perW    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []string
			for i := 0; i < perW; i++ {
				d, err := s.Create("p", fmt.Sprintf("/s/%02d/%03d", w, i), 1, "", nil)
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, d.ID)
				if err := s.Tag(d.ID, "keep"); err != nil {
					t.Error(err)
				}
				switch rng.Intn(4) {
				case 0:
					if err := s.Tag(d.ID, fmt.Sprintf("t%d", rng.Intn(5))); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := s.AddProcessing(d.ID, Processing{Tool: "x"}); err != nil {
						t.Error(err)
					}
				case 2:
					s.Find(Query{Tags: []string{"keep"}, Limit: 10})
				case 3:
					victim := mine[rng.Intn(len(mine))]
					if err := s.Delete(victim); err != nil && !errors.Is(err, ErrNotFound) {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Invariants: every surviving dataset is findable by ID, path and
	// tag index, and the tag index holds no ghosts.
	live := s.Find(Query{})
	if len(live) != s.Count() {
		t.Fatalf("Find(all)=%d Count=%d", len(live), s.Count())
	}
	for _, d := range live {
		if got, ok := s.Get(d.ID); !ok || got.Path != d.Path {
			t.Fatalf("Get(%s) lost", d.ID)
		}
		if got, ok := s.ByPath(d.Path); !ok || got.ID != d.ID {
			t.Fatalf("ByPath(%s) lost", d.Path)
		}
	}
	tagged := s.Find(Query{Tags: []string{"keep"}})
	if len(tagged) != len(live) {
		t.Fatalf("tag index: %d tagged vs %d live", len(tagged), len(live))
	}
	// Deleted datasets must be fully unindexed: their paths must be
	// reclaimable.
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			path := fmt.Sprintf("/s/%02d/%03d", w, i)
			if _, ok := s.ByPath(path); ok {
				continue
			}
			if _, err := s.Create("p", path, 1, "", nil); err != nil {
				t.Fatalf("deleted path %s not reclaimable: %v", path, err)
			}
		}
	}
}

// TestCreateBatch: per-item duplicate errors, atomic tag application,
// and index consistency across shards.
func TestCreateBatch(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("p", "/pre/claimed", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	specs := []CreateSpec{
		{Project: "p", Path: "/b/0", Size: 1, Tags: []string{"raw", "hot"}},
		{Project: "p", Path: "/b/1", Size: 2, Basic: map[string]string{"k": "v"}},
		{Project: "q", Path: "/pre/claimed", Size: 3}, // store duplicate
		{Project: "p", Path: "/b/2", Size: 4},
		{Project: "p", Path: "/b/2", Size: 5}, // in-batch duplicate
	}
	res := s.CreateBatch(specs)
	if len(res) != len(specs) {
		t.Fatalf("results = %d", len(res))
	}
	for i, wantErr := range []bool{false, false, true, false, true} {
		if (res[i].Err != nil) != wantErr {
			t.Fatalf("item %d: err = %v", i, res[i].Err)
		}
		if wantErr && !errors.Is(res[i].Err, ErrDuplicate) {
			t.Fatalf("item %d: err = %v, want ErrDuplicate", i, res[i].Err)
		}
	}
	if d := res[0].Dataset; !d.HasTag("raw") || !d.HasTag("hot") || d.Version != 3 {
		t.Fatalf("batched tags: %+v", d)
	}
	if got := s.Find(Query{Tags: []string{"raw"}}); len(got) != 1 {
		t.Fatalf("tag index after batch = %d", len(got))
	}
	if s.Count() != 4 { // pre-claimed + 3 batch successes
		t.Fatalf("count = %d", s.Count())
	}
	if got, ok := s.ByPath("/b/1"); !ok || got.Basic["k"] != "v" {
		t.Fatalf("ByPath(/b/1) = %+v, %v", got, ok)
	}
	// The failed in-batch duplicate must not have clobbered the
	// successful claim.
	if got, ok := s.ByPath("/b/2"); !ok || got.Size != 4 {
		t.Fatalf("ByPath(/b/2) = %+v, %v", got, ok)
	}
}

// TestCreateBatchEvents: in sync mode a batch publishes Created (and
// Tagged) events in commit order, same as the unbatched calls would.
func TestCreateBatchEvents(t *testing.T) {
	s := NewStore()
	var events []Event
	defer s.Subscribe(func(ev Event) { events = append(events, ev) })()
	res := s.CreateBatch([]CreateSpec{
		{Project: "p", Path: "/e/0", Tags: []string{"raw"}},
		{Project: "p", Path: "/e/1"},
	})
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	perDS := map[string][]Event{}
	for _, ev := range events {
		perDS[ev.Dataset.Path] = append(perDS[ev.Dataset.Path], ev)
	}
	e0 := perDS["/e/0"]
	if len(e0) != 2 || e0[0].Type != EventCreated || e0[1].Type != EventTagged || e0[1].Tag != "raw" {
		t.Fatalf("events for /e/0: %+v", e0)
	}
	if e0[0].Dataset.Version != 1 || e0[1].Dataset.Version != 2 {
		t.Fatalf("versions: %d, %d", e0[0].Dataset.Version, e0[1].Dataset.Version)
	}
	if len(perDS["/e/1"]) != 1 || perDS["/e/1"][0].Type != EventCreated {
		t.Fatalf("events for /e/1: %+v", perDS["/e/1"])
	}
}

// TestTagBatch: grouped tagging is idempotent, reports unknown IDs,
// and updates the index fragments.
func TestTagBatch(t *testing.T) {
	s := NewStore()
	var ids []string
	for i := 0; i < 10; i++ {
		d, err := s.Create("p", fmt.Sprintf("/t/%d", i), 1, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, d.ID)
	}
	specs := make([]TagSpec, 0, len(ids)+2)
	for _, id := range ids {
		specs = append(specs, TagSpec{ID: id, Tag: "bulk"})
	}
	specs = append(specs, TagSpec{ID: ids[0], Tag: "bulk"}) // idempotent repeat
	specs = append(specs, TagSpec{ID: "ghost", Tag: "bulk"})
	err := s.TagBatch(specs)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound in join", err)
	}
	if got := s.Find(Query{Tags: []string{"bulk"}}); len(got) != 10 {
		t.Fatalf("tagged = %d", len(got))
	}
	if d, _ := s.Get(ids[0]); d.Version != 2 {
		t.Fatalf("idempotent repeat bumped version: %d", d.Version)
	}
	if err := s.TagBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

package metadata

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestCreateAndGet(t *testing.T) {
	s := NewStore()
	d, err := s.Create("zebrafish", "/itg/plate1/img0001.raw", 4*units.MB, "abc123",
		map[string]string{"wavelength": "488nm", "well": "A1"})
	if err != nil {
		t.Fatal(err)
	}
	if d.ID == "" || d.Version != 1 {
		t.Fatalf("dataset = %+v", d)
	}
	got, ok := s.Get(d.ID)
	if !ok || got.Basic["well"] != "A1" || got.Size != 4*units.MB {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if _, ok := s.ByPath("/itg/plate1/img0001.raw"); !ok {
		t.Fatal("ByPath miss")
	}
}

func TestDuplicatePath(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("p", "/x", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("p", "/x", 1, "", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestBasicMetadataIsolation(t *testing.T) {
	s := NewStore()
	basic := map[string]string{"k": "v"}
	d, err := s.Create("p", "/x", 1, "", basic)
	if err != nil {
		t.Fatal(err)
	}
	basic["k"] = "mutated" // caller's map must not alias the store
	got, _ := s.Get(d.ID)
	if got.Basic["k"] != "v" {
		t.Fatal("store aliased caller's basic map")
	}
	got.Basic["k"] = "hacked" // snapshot must not alias either
	again, _ := s.Get(d.ID)
	if again.Basic["k"] != "v" {
		t.Fatal("snapshot aliased store state")
	}
}

func TestTagUntag(t *testing.T) {
	s := NewStore()
	d, _ := s.Create("p", "/x", 1, "", nil)
	if err := s.Tag(d.ID, "raw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Tag(d.ID, "raw"); err != nil { // idempotent
		t.Fatal(err)
	}
	got, _ := s.Get(d.ID)
	if !got.HasTag("raw") || got.Version != 2 {
		t.Fatalf("after tag: %+v", got)
	}
	if err := s.Untag(d.ID, "raw"); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(d.ID)
	if got.HasTag("raw") {
		t.Fatal("untag failed")
	}
	if err := s.Tag("ghost", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestProcessingChain(t *testing.T) {
	s := NewStore()
	d, _ := s.Create("zebrafish", "/img", 4*units.MB, "", nil)
	// The paper's METADATA 1..N model: multiple independent
	// processing passes, each with params and results.
	for i := 1; i <= 3; i++ {
		pid, err := s.AddProcessing(d.ID, Processing{
			Tool:    fmt.Sprintf("segmentation-v%d", i),
			Params:  map[string]string{"threshold": fmt.Sprint(i * 10)},
			Results: map[string]string{"cells": fmt.Sprint(100 * i)},
			Outputs: []string{fmt.Sprintf("/results/img.seg%d", i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if pid == "" {
			t.Fatal("empty processing id")
		}
	}
	got, _ := s.Get(d.ID)
	if len(got.Processings) != 3 {
		t.Fatalf("processings = %d", len(got.Processings))
	}
	if got.Processings[1].Results["cells"] != "200" {
		t.Fatalf("chain = %+v", got.Processings)
	}
	if got.Version != 4 {
		t.Fatalf("version = %d, want 4", got.Version)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	d, _ := s.Create("p", "/x", 1, "", nil)
	if err := s.Tag(d.ID, "t"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(d.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d.ID); ok {
		t.Fatal("dataset survived delete")
	}
	if got := s.Find(Query{Tags: []string{"t"}}); len(got) != 0 {
		t.Fatalf("tag index stale: %v", got)
	}
	if err := s.Delete(d.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestFindByProjectAndTag(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		proj := "katrin"
		if i%2 == 0 {
			proj = "zebrafish"
		}
		d, _ := s.Create(proj, fmt.Sprintf("/d/%02d", i), 1, "", nil)
		if i%3 == 0 {
			if err := s.Tag(d.ID, "calibration"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.Find(Query{Project: "zebrafish"}); len(got) != 5 {
		t.Fatalf("by project = %d", len(got))
	}
	if got := s.Find(Query{Tags: []string{"calibration"}}); len(got) != 4 {
		t.Fatalf("by tag = %d", len(got))
	}
	got := s.Find(Query{Project: "zebrafish", Tags: []string{"calibration"}})
	if len(got) != 2 { // i = 0, 6
		t.Fatalf("conjunction = %d", len(got))
	}
	if got := s.Find(Query{PathPrefix: "/d/0"}); len(got) != 10 {
		t.Fatalf("prefix = %d", len(got))
	}
	if got := s.Find(Query{Limit: 3}); len(got) != 3 {
		t.Fatalf("limit = %d", len(got))
	}
}

func TestFindByBasicAndTime(t *testing.T) {
	now := time.Date(2011, 5, 20, 12, 0, 0, 0, time.UTC)
	i := 0
	s := NewStoreWithClock(func() time.Time {
		i++
		return now.Add(time.Duration(i) * time.Hour)
	})
	for j := 0; j < 5; j++ {
		if _, err := s.Create("p", fmt.Sprintf("/t/%d", j), 1, "",
			map[string]string{"well": fmt.Sprintf("A%d", j%2)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Find(Query{Basic: map[string]string{"well": "A0"}})
	if len(got) != 3 {
		t.Fatalf("basic filter = %d", len(got))
	}
	got = s.Find(Query{CreatedAfter: now.Add(150 * time.Minute)})
	if len(got) != 3 { // hours 3,4,5
		t.Fatalf("time filter = %d", len(got))
	}
	got = s.Find(Query{CreatedBefore: now.Add(150 * time.Minute)})
	if len(got) != 2 {
		t.Fatalf("before filter = %d", len(got))
	}
}

func TestSubscribe(t *testing.T) {
	s := NewStore()
	var events []Event
	unsub := s.Subscribe(func(ev Event) { events = append(events, ev) })
	d, _ := s.Create("p", "/x", 1, "", nil)
	if err := s.Tag(d.ID, "raw"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddProcessing(d.ID, Processing{Tool: "t"}); err != nil {
		t.Fatal(err)
	}
	unsub()
	if err := s.Tag(d.ID, "post-unsub"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Type != EventCreated || events[1].Type != EventTagged || events[2].Type != EventProcessingAdded {
		t.Fatalf("event order: %v %v %v", events[0].Type, events[1].Type, events[2].Type)
	}
	if events[1].Tag != "raw" {
		t.Fatalf("tag event = %+v", events[1])
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := NewStore()
	for i := 0; i < 20; i++ {
		d, _ := s.Create("p", fmt.Sprintf("/e/%02d", i), units.Bytes(i), "", map[string]string{"i": fmt.Sprint(i)})
		if i%2 == 0 {
			if err := s.Tag(d.ID, "even"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.AddProcessing(d.ID, Processing{Tool: "x", Results: map[string]string{"r": "1"}}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 20 {
		t.Fatalf("imported = %d", s2.Count())
	}
	if got := s2.Find(Query{Tags: []string{"even"}}); len(got) != 10 {
		t.Fatalf("tag index after import = %d", len(got))
	}
	// New creations must not collide with imported IDs.
	d, err := s2.Create("p", "/new", 1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, clash := s.Get(d.ID); clash {
		t.Fatalf("id %s collides with exporter's", d.ID)
	}
	// Import into non-empty store must fail.
	if err := s2.Import(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("import into non-empty store accepted")
	}
}

func TestConcurrentMutations(t *testing.T) {
	s := NewStore()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := s.Create("p", fmt.Sprintf("/c/%03d", i), 1, "", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Tag(d.ID, "bulk"); err != nil {
				t.Error(err)
			}
			if _, err := s.AddProcessing(d.ID, Processing{Tool: "t"}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.Count() != n {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.Find(Query{Tags: []string{"bulk"}}); len(got) != n {
		t.Fatalf("tagged = %d", len(got))
	}
}

// Property: Find with a tag query returns exactly the datasets a
// linear scan finds (index ≡ scan).
func TestIndexMatchesScanQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewStore()
		tags := []string{"a", "b", "c"}
		var ids []string
		for i, op := range ops {
			d, err := s.Create("p", fmt.Sprintf("/q/%03d", i), 1, "", nil)
			if err != nil {
				return false
			}
			ids = append(ids, d.ID)
			if err := s.Tag(d.ID, tags[int(op)%3]); err != nil {
				return false
			}
			if op%5 == 0 && len(ids) > 1 {
				if err := s.Untag(ids[len(ids)-2], tags[int(op)%3]); err != nil {
					return false
				}
			}
		}
		for _, tag := range tags {
			indexed := s.Find(Query{Tags: []string{tag}})
			var scanned []string
			all := s.Find(Query{})
			for _, d := range all {
				if d.HasTag(tag) {
					scanned = append(scanned, d.ID)
				}
			}
			if len(indexed) != len(scanned) {
				return false
			}
			for i := range indexed {
				if indexed[i].ID != scanned[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

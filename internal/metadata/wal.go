package metadata

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/metadata/durafs"
)

// WAL errors. Any I/O failure on a shard's log marks that shard
// fail-stop (ErrWALFailed wraps the cause): the in-memory state may
// be ahead of the disk, so rather than risk silently acknowledging
// undurable mutations, every subsequent mutation on the shard
// refuses until the store is reopened — the PostgreSQL
// panic-on-fsync-failure discipline, scoped to one shard.
var (
	// ErrWALFailed marks a shard whose log hit an I/O error; all
	// further mutations on it return this error.
	ErrWALFailed = errors.New("metadata: WAL failed, shard is fail-stop")
	// ErrWALCorrupt reports a record that framed correctly (length and
	// CRC were consistent) but did not decode — disk corruption past
	// what torn-tail truncation can explain.
	ErrWALCorrupt = errors.New("metadata: WAL record corrupt")
	// ErrWALConfig reports a WAL directory whose manifest does not
	// match the store options it is being opened with.
	ErrWALConfig = errors.New("metadata: WAL directory config mismatch")
)

// WAL record operations. Records are self-describing JSON payloads
// inside CRC-framed envelopes; the op selects which fields matter.
const (
	opCreate    = "create"    // full Dataset (tags applied at create included)
	opTag       = "tag"       // ID + Tag
	opUntag     = "untag"     // ID + Tag
	opProc      = "proc"      // ID + Proc
	opDelete    = "delete"    // ID
	opPlacement = "placement" // Path + State
	opReplica   = "replica"   // Path + Site + State
)

// walRecord is one journaled mutation. LSN is monotonically
// increasing per shard log; Seq is the store's ID-allocation
// watermark at stage time, so recovery can restore the counter
// without parsing dataset IDs.
type walRecord struct {
	LSN     uint64      `json:"lsn"`
	Seq     int64       `json:"seq,omitempty"`
	Op      string      `json:"op"`
	Dataset *Dataset    `json:"dataset,omitempty"`
	ID      string      `json:"id,omitempty"`
	Tag     string      `json:"tag,omitempty"`
	Proc    *Processing `json:"proc,omitempty"`
	Path    string      `json:"path,omitempty"`
	Site    string      `json:"site,omitempty"`
	State   string      `json:"state,omitempty"`
}

// Frame layout: [u32 payload length][u32 CRC32-C of payload][payload].
// Little-endian, Castagnoli polynomial (hardware-accelerated on
// amd64/arm64). A frame whose length field exceeds maxWALRecord is
// treated as torn — it bounds allocation when scanning garbage.
const (
	walHeaderSize = 8
	maxWALRecord  = 1 << 26 // 64 MiB; a metadata record is ~KBs
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecord frames one record.
func encodeRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

// decodeFrame reads one frame from b. It returns the payload and the
// total bytes consumed, or ok=false if the bytes at the head of b do
// not form a complete, checksum-valid frame (a torn tail).
func decodeFrame(b []byte) (payload []byte, consumed int, ok bool) {
	if len(b) < walHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxWALRecord || walHeaderSize+int(n) > len(b) {
		return nil, 0, false
	}
	payload = b[walHeaderSize : walHeaderSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, false
	}
	return payload, walHeaderSize + int(n), true
}

// decodeWALStream scans b for framed records. It returns the decoded
// records and the byte offset of the first invalid frame — the
// truncation point for recovery. A frame that passes its checksum
// but fails to decode as a record is not a torn tail; it reports
// ErrWALCorrupt (with the records and offset preceding it). The scan
// never panics on arbitrary input (FuzzWALDecode holds it to that).
func decodeWALStream(b []byte) (recs []walRecord, valid int, err error) {
	for valid < len(b) {
		payload, consumed, ok := decodeFrame(b[valid:])
		if !ok {
			return recs, valid, nil
		}
		var rec walRecord
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			return recs, valid, fmt.Errorf("%w: offset %d: %v", ErrWALCorrupt, valid, uerr)
		}
		recs = append(recs, rec)
		valid += consumed
	}
	return recs, valid, nil
}

// walShard is one shard's append-only log with leader-based group
// commit. Mutators stage encoded records while holding their shard
// (or path-shard) lock — a cheap append — then call waitDurable
// after releasing it. The first waiter becomes the commit leader: it
// optionally sleeps GroupCommitInterval to let more records gather,
// swaps out the whole pending batch, writes it in one Write and one
// Sync, and wakes every waiter. Concurrent mutators therefore share
// fsyncs instead of paying one each, and a CreateBatch's per-shard
// group commits in a single sync.
type walShard struct {
	fs       durafs.FS
	path     string
	interval time.Duration

	mu         sync.Mutex
	file       durafs.File
	nextLSN    uint64 // next LSN to hand out
	stagedLSN  uint64 // highest LSN staged (== nextLSN-1)
	durableLSN uint64 // highest LSN on disk
	pending    []byte // encoded frames awaiting commit
	committing bool
	commitDone chan struct{} // closed when the current leader finishes
	err        error         // sticky fail-stop cause

	// recordsSinceSnap counts committed records since the last
	// snapshot; the store checks it against SnapshotEvery.
	recordsSinceSnap int
	walBytes         int64 // bytes appended since open/rotate
}

func newWALShard(fs durafs.FS, path string, interval time.Duration, startLSN uint64) *walShard {
	return &walShard{
		fs:         fs,
		path:       path,
		interval:   interval,
		nextLSN:    startLSN + 1,
		stagedLSN:  startLSN,
		durableLSN: startLSN,
		commitDone: make(chan struct{}),
	}
}

// stage encodes rec, assigns it the next LSN and queues it for the
// next group commit. Callers hold the owning structure's lock, which
// is what makes LSN order equal apply order. The assigned LSN is
// returned for waitDurable.
func (w *walShard) stage(rec walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	rec.LSN = w.nextLSN
	frame, err := encodeRecord(rec)
	if err != nil {
		// Marshal of our own types failing is a programming error;
		// fail stop rather than lose the record silently.
		w.err = fmt.Errorf("%w: encode: %v", ErrWALFailed, err)
		return 0, w.err
	}
	w.nextLSN++
	w.stagedLSN = rec.LSN
	w.pending = append(w.pending, frame...)
	return rec.LSN, nil
}

// waitDurable blocks until every record up to lsn is on disk,
// becoming the commit leader if nobody else is. It returns the
// shard's sticky error if the log has failed.
func (w *walShard) waitDurable(lsn uint64) error {
	for {
		w.mu.Lock()
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if w.durableLSN >= lsn {
			w.mu.Unlock()
			return nil
		}
		if w.committing {
			ch := w.commitDone
			w.mu.Unlock()
			<-ch
			continue
		}
		// Become leader.
		w.committing = true
		w.mu.Unlock()

		if w.interval > 0 {
			// The group-commit window: let concurrent mutators pile
			// more records into pending before paying the fsync.
			time.Sleep(w.interval)
		}

		w.mu.Lock()
		batch := w.pending
		batchLSN := w.stagedLSN
		w.pending = nil
		w.mu.Unlock()

		err := w.commit(batch)

		w.mu.Lock()
		if err != nil {
			w.err = fmt.Errorf("%w: %v", ErrWALFailed, err)
		} else {
			w.durableLSN = batchLSN
			w.recordsSinceSnap += countFrames(batch)
			w.walBytes += int64(len(batch))
		}
		w.committing = false
		ch := w.commitDone
		w.commitDone = make(chan struct{})
		w.mu.Unlock()
		close(ch)
	}
}

// commit writes and syncs one batch. Called only by the leader, so
// file access is single-threaded.
func (w *walShard) commit(batch []byte) error {
	if len(batch) == 0 {
		return nil
	}
	f, err := w.openFile()
	if err != nil {
		return err
	}
	if _, err := f.Write(batch); err != nil {
		return err
	}
	return f.Sync()
}

// openFile lazily opens the append handle (leader-only).
func (w *walShard) openFile() (durafs.File, error) {
	w.mu.Lock()
	f := w.file
	w.mu.Unlock()
	if f != nil {
		return f, nil
	}
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.file = f
	w.mu.Unlock()
	return f, nil
}

// syncThrough ensures durability through lsn (used by snapshots); a
// zero lsn syncs whatever is staged.
func (w *walShard) syncThrough(lsn uint64) error {
	w.mu.Lock()
	if lsn == 0 {
		lsn = w.stagedLSN
	}
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.waitDurable(lsn)
}

// rotate truncates the log after a successful snapshot at snapLSN.
// It only proceeds while no leader is mid-write and nothing beyond
// snapLSN has reached the file — a commit that landed after the
// snapshot was cut holds records the snapshot does not cover, and
// truncating those would lose acknowledged data. A skipped rotation
// costs only replay time, never correctness: stale LSNs are skipped
// on recovery.
func (w *walShard) rotate(snapLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.committing || w.durableLSN > snapLSN {
		return nil
	}
	if w.file == nil {
		f, err := w.fs.OpenAppend(w.path)
		if err != nil {
			w.err = fmt.Errorf("%w: %v", ErrWALFailed, err)
			return w.err
		}
		w.file = f
	}
	if err := w.file.Truncate(0); err != nil {
		w.err = fmt.Errorf("%w: %v", ErrWALFailed, err)
		return w.err
	}
	w.recordsSinceSnap = 0
	w.walBytes = 0
	return nil
}

// close commits anything pending, releases the file handle and
// marks the shard closed: further mutations on it return
// ErrWALFailed rather than silently journaling to a reopened log.
func (w *walShard) close() error {
	err := w.syncThrough(0)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file != nil {
		w.file.Close()
		w.file = nil
	}
	if w.err == nil {
		w.err = fmt.Errorf("%w: store closed", ErrWALFailed)
	}
	return err
}

// failErr returns the sticky error, if any.
func (w *walShard) failErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// countFrames counts the records in an encoded batch.
func countFrames(batch []byte) int {
	n := 0
	for len(batch) >= walHeaderSize {
		sz := binary.LittleEndian.Uint32(batch[0:4])
		batch = batch[walHeaderSize+int(sz):]
		n++
	}
	return n
}

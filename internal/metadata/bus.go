package metadata

import (
	"sort"
	"sync"
)

// bus is the store's event-delivery fabric. It runs in one of two
// modes, fixed at construction:
//
//   - sync: deliverSync invokes every subscriber inline, in
//     subscription order, on the caller's goroutine. No goroutines,
//     no queues — the deterministic mode the simulations use.
//   - async: mutators stage events into an unbounded central FIFO
//     while holding their shard lock (a cheap append, so the shard
//     lock is never held across subscriber work). A single pump
//     goroutine moves events from the FIFO into a bounded per-
//     subscriber queue, blocking — and thereby back-pressuring
//     delivery, never the mutators — when a queue is full. One
//     worker goroutine per subscriber drains its queue and invokes
//     the callback.
//
// The topology is deadlock-free under re-entrant callbacks: a
// callback that mutates the store takes a shard lock and then the
// bus lock, both of which are only ever held briefly (staging is an
// append; neither pump nor workers hold a shard lock). Because all
// mutations of one dataset serialize on its shard lock, and staging
// happens inside that critical section, events for one dataset enter
// the FIFO — and therefore every subscriber queue — in commit order.
//
// inflight counts undelivered work: +1 when an event enters the
// central FIFO, +1 for every copy placed in a subscriber queue, -1
// when the pump finishes distributing an event and -1 when a
// callback returns. A cascade (callback publishing a new event)
// increments inflight before the triggering delivery decrements it,
// so inflight only reaches zero at full quiescence — that is what
// makes flush a barrier.
type bus struct {
	async    bool
	queueLen int

	mu       sync.Mutex
	pumpCond *sync.Cond // signaled when the central FIFO gains an event or the bus closes
	idleCond *sync.Cond // broadcast when inflight drops to zero
	queue    []Event    // central FIFO (async mode)
	subs     map[int]*subscriber
	subSeq   int
	inflight int
	closed   bool
	wg       sync.WaitGroup // pump + workers
}

type subscriber struct {
	id     int
	fn     func(Event)
	queue  []Event    // bounded by bus.queueLen (async mode)
	ready  *sync.Cond // worker waits here for events
	space  *sync.Cond // pump waits here for queue space
	closed bool
}

func newBus(async bool, queueLen int) *bus {
	b := &bus{async: async, queueLen: queueLen, subs: make(map[int]*subscriber)}
	b.pumpCond = sync.NewCond(&b.mu)
	b.idleCond = sync.NewCond(&b.mu)
	if async {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.pump()
		}()
	}
	return b
}

// hasSubscribers reports whether any subscriber is attached; mutators
// use it to skip event-snapshot construction entirely on the
// (benchmark-critical) no-subscriber path.
func (b *bus) hasSubscribers() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs) > 0
}

// enqueue stages one event into the central FIFO. It never blocks,
// so it is safe to call while holding a shard lock.
func (b *bus) enqueue(ev Event) {
	b.mu.Lock()
	if b.closed || len(b.subs) == 0 {
		b.mu.Unlock()
		return
	}
	b.queue = append(b.queue, ev)
	b.inflight++
	b.pumpCond.Signal()
	b.mu.Unlock()
}

// pump moves events from the central FIFO into subscriber queues.
func (b *bus) pump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for len(b.queue) == 0 && !b.closed {
			b.pumpCond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			return
		}
		ev := b.queue[0]
		b.queue = b.queue[1:]

		// Snapshot the subscriber set in subscription order; a
		// subscriber added after this point does not see ev.
		ids := make([]int, 0, len(b.subs))
		for id := range b.subs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			sub := b.subs[id]
			for sub != nil && !sub.closed && !b.closed && len(sub.queue) >= b.queueLen {
				sub.space.Wait()
				sub = b.subs[id] // may have unsubscribed while we waited
			}
			if sub == nil || sub.closed || b.closed {
				continue
			}
			sub.queue = append(sub.queue, ev)
			b.inflight++
			sub.ready.Signal()
		}
		b.inflight-- // central-FIFO token
		if b.inflight == 0 {
			b.idleCond.Broadcast()
		}
	}
}

// worker drains one subscriber's queue, invoking the callback with
// no bus (or shard) lock held.
func (b *bus) worker(sub *subscriber) {
	b.mu.Lock()
	for {
		for len(sub.queue) == 0 && !sub.closed {
			sub.ready.Wait()
		}
		if len(sub.queue) == 0 && sub.closed {
			b.mu.Unlock()
			return
		}
		ev := sub.queue[0]
		sub.queue = sub.queue[1:]
		sub.space.Signal()
		b.mu.Unlock()
		sub.fn(ev)
		b.mu.Lock()
		b.inflight--
		if b.inflight == 0 {
			b.idleCond.Broadcast()
		}
	}
}

// hold registers one unit of external in-flight work so flush waits
// for it; the returned release is idempotent. Works in both modes —
// in sync mode it is what gives Flush meaning when a subscriber owns
// a worker pool.
func (b *bus) hold() (release func()) {
	b.mu.Lock()
	b.inflight++
	b.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			b.inflight--
			if b.inflight == 0 {
				b.idleCond.Broadcast()
			}
			b.mu.Unlock()
		})
	}
}

// deliverSync invokes every subscriber inline (sync mode). After
// close it is a no-op: Close promises no further deliveries.
func (b *bus) deliverSync(ev Event) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	ids := make([]int, 0, len(b.subs))
	for id := range b.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(Event), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, b.subs[id].fn)
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// subscribe registers fn; the returned function unsubscribes, after
// which queued-but-undelivered events for this subscriber are
// dropped.
func (b *bus) subscribe(fn func(Event)) func() {
	b.mu.Lock()
	id := b.subSeq
	b.subSeq++
	sub := &subscriber{id: id, fn: fn}
	sub.ready = sync.NewCond(&b.mu)
	sub.space = sync.NewCond(&b.mu)
	b.subs[id] = sub
	if b.async && !b.closed {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.worker(sub)
		}()
	}
	b.mu.Unlock()
	return func() { b.unsubscribe(id) }
}

func (b *bus) unsubscribe(id int) {
	b.mu.Lock()
	sub := b.subs[id]
	if sub != nil {
		delete(b.subs, id)
		sub.closed = true
		b.inflight -= len(sub.queue)
		sub.queue = nil
		sub.ready.Broadcast()
		sub.space.Broadcast()
		if b.inflight == 0 {
			b.idleCond.Broadcast()
		}
	}
	b.mu.Unlock()
}

// flush blocks until inflight reaches zero (async mode); sync mode
// has no queued work, so it returns immediately.
func (b *bus) flush() {
	b.mu.Lock()
	for b.inflight > 0 {
		b.idleCond.Wait()
	}
	b.mu.Unlock()
}

// close flushes, then stops the pump and all workers. Events
// published after close are dropped.
func (b *bus) close() {
	if !b.async {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		return
	}
	b.flush()
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.pumpCond.Signal()
	for _, sub := range b.subs {
		sub.closed = true
		sub.ready.Broadcast()
		sub.space.Broadcast()
	}
	b.mu.Unlock()
	b.wg.Wait()
}

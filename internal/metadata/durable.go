package metadata

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metadata/durafs"
)

// walSet is the durability plane of one store: a WAL and snapshot
// slot per shard, all rooted in one directory on the injected
// filesystem.
//
// Layout: <dir>/MANIFEST, <dir>/shard-NNN.wal, <dir>/shard-NNN.snap
// (plus transient .snap.tmp files that recovery ignores).
type walSet struct {
	fs            durafs.FS
	dir           string
	shards        []*walShard
	snapMu        []sync.Mutex // per-shard snapshot serialization
	snapshotEvery int
	snapshots     atomic.Int64 // snapshots written since open
}

func (ws *walSet) walPath(i int) string  { return fmt.Sprintf("%s/shard-%03d.wal", ws.dir, i) }
func (ws *walSet) snapPath(i int) string { return fmt.Sprintf("%s/shard-%03d.snap", ws.dir, i) }
func (ws *walSet) noteSnapshot()         { ws.snapshots.Add(1) }

// manifest pins the WAL directory to a shard count; reopening with a
// different count would hash records to the wrong logs.
type walManifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// RecoveryStats describes what Open found and did. Zero for
// non-durable stores and for fresh directories.
type RecoveryStats struct {
	SnapshotsLoaded      int   // shards restored from a snapshot
	SnapshotDatasets     int   // datasets loaded from snapshots
	RecordsReplayed      int   // WAL records applied after snapshots
	RecordsSkipped       int   // stale records (LSN <= snapshot) skipped
	TornTails            int   // WAL files truncated at a torn record
	TornTailBytes        int64 // bytes dropped by those truncations
	WALBytesReplayed     int64 // valid WAL bytes scanned
	PathConflictsDropped int   // duplicate-path datasets dropped (lost delete)
}

// RecoveryStats returns what the last Open recovered.
func (s *Store) RecoveryStats() RecoveryStats { return s.recovered }

// Durable reports whether the store journals mutations to a WAL.
func (s *Store) Durable() bool { return s.wal != nil }

// WALErrors counts journaling failures on the void notification
// paths (NotePlacement/NoteReplica), which cannot return errors to
// their callers. Any non-zero value means the owning shard has gone
// fail-stop and subsequent mutations on it will error.
func (s *Store) WALErrors() int64 { return s.walErrs.Load() }

// Snapshots returns the number of compacted snapshots written since
// open (across all shards).
func (s *Store) Snapshots() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.snapshots.Load()
}

// Placement returns the last journaled storage-tier placement noted
// for path (via NotePlacement), surviving restarts on durable
// stores.
func (s *Store) Placement(path string) (string, bool) {
	ps := s.pathShardFor(path)
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	st, ok := ps.placement[path]
	return st, ok
}

// Replicas returns a copy of the per-site replica states last noted
// for path (via NoteReplica), surviving restarts on durable stores.
func (s *Store) Replicas(path string) map[string]string {
	ps := s.pathShardFor(path)
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	sites := ps.replicas[path]
	if len(sites) == 0 {
		return nil
	}
	out := make(map[string]string, len(sites))
	for site, st := range sites {
		out[site] = st
	}
	return out
}

// openWAL attaches the durability plane to a freshly constructed
// (empty) store and recovers any prior state from dir.
func (s *Store) openWAL(opts Options) error {
	fs := opts.FS
	if fs == nil {
		fs = durafs.OS()
	}
	if err := fs.MkdirAll(opts.WALDir); err != nil {
		return fmt.Errorf("metadata: wal dir: %w", err)
	}
	ws := &walSet{
		fs:            fs,
		dir:           opts.WALDir,
		snapMu:        make([]sync.Mutex, len(s.shards)),
		snapshotEvery: opts.SnapshotEvery,
	}
	if err := ws.checkManifest(len(s.shards)); err != nil {
		return err
	}
	s.wal = ws

	maxSeq := s.seq.Load()
	ws.shards = make([]*walShard, len(s.shards))
	for i := range s.shards {
		lsn, seq, err := s.recoverShard(i)
		if err != nil {
			return err
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		ws.shards[i] = newWALShard(fs, ws.walPath(i), opts.GroupCommitInterval, lsn)
	}
	s.seq.Store(maxSeq)
	s.rebuildPaths()
	return nil
}

// checkManifest validates or creates <dir>/MANIFEST.
func (ws *walSet) checkManifest(shards int) error {
	manifestPath := ws.dir + "/MANIFEST"
	if f, err := ws.fs.Open(manifestPath); err == nil {
		data, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("metadata: manifest: %w", rerr)
		}
		payload, _, ok := decodeFrame(data)
		var m walManifest
		if !ok || json.Unmarshal(payload, &m) != nil {
			// A torn manifest can only be the remains of a first-open
			// crash: it is written and synced before any WAL record
			// can exist. With data files present it is corruption.
			names, _ := ws.fs.ReadDir(ws.dir)
			for _, n := range names {
				if n != "MANIFEST" {
					return fmt.Errorf("%w: manifest unreadable but %q exists", ErrWALConfig, n)
				}
			}
			return ws.writeManifest(manifestPath, shards)
		}
		if m.Shards != shards {
			return fmt.Errorf("%w: directory has %d shards, store wants %d", ErrWALConfig, m.Shards, shards)
		}
		return nil
	}
	return ws.writeManifest(manifestPath, shards)
}

func (ws *walSet) writeManifest(path string, shards int) error {
	payload, err := json.Marshal(walManifest{Version: 1, Shards: shards})
	if err != nil {
		return err
	}
	f, err := ws.fs.Create(path)
	if err != nil {
		return fmt.Errorf("metadata: manifest: %w", err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return fmt.Errorf("metadata: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("metadata: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metadata: manifest: %w", err)
	}
	return ws.fs.SyncDir(ws.dir)
}

// recoverShard loads shard i's snapshot, replays its WAL tail
// (truncating at the first torn record), and returns the highest LSN
// seen plus the ID-sequence watermark.
func (s *Store) recoverShard(i int) (lastLSN uint64, maxSeq int64, err error) {
	sh := s.shards[i]
	ps := s.pathShards[i]

	snap, haveSnap, err := s.loadSnapshot(i)
	if err != nil {
		return 0, 0, err
	}
	if haveSnap {
		s.recovered.SnapshotsLoaded++
		s.recovered.SnapshotDatasets += len(snap.Datasets)
		maxSeq = snap.Seq
		lastLSN = snap.LastLSN
		for idx := range snap.Datasets {
			d := snap.Datasets[idx].clone()
			sh.insert(&d)
		}
		for p, st := range snap.Placements {
			ps.setPlacement(p, st)
		}
		for p, sites := range snap.Replicas {
			for site, st := range sites {
				ps.setReplica(p, site, st)
			}
		}
	}

	f, err := s.wal.fs.Open(s.wal.walPath(i))
	if err != nil {
		return lastLSN, maxSeq, nil // no WAL yet
	}
	data, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		return 0, 0, fmt.Errorf("metadata: wal read: %w", rerr)
	}
	recs, valid, derr := decodeWALStream(data)
	if derr != nil {
		return 0, 0, derr // ErrWALCorrupt: checksum-valid frame that won't decode
	}
	if valid < len(data) {
		// Torn tail: drop it so appends resume on a clean boundary.
		s.recovered.TornTails++
		s.recovered.TornTailBytes += int64(len(data) - valid)
		wf, terr := s.wal.fs.OpenAppend(s.wal.walPath(i))
		if terr != nil {
			return 0, 0, fmt.Errorf("metadata: wal truncate: %w", terr)
		}
		terr = wf.Truncate(int64(valid))
		wf.Close()
		if terr != nil {
			return 0, 0, fmt.Errorf("metadata: wal truncate: %w", terr)
		}
	}
	s.recovered.WALBytesReplayed += int64(valid)

	for _, rec := range recs {
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		if rec.LSN <= lastLSN && haveSnap {
			s.recovered.RecordsSkipped++
			continue
		}
		if rec.LSN > lastLSN {
			lastLSN = rec.LSN
		}
		s.applyRecord(sh, ps, rec)
		s.recovered.RecordsReplayed++
	}
	return lastLSN, maxSeq, nil
}

// applyRecord replays one journaled mutation into shard memory.
// Recovery is single-threaded; locks are not needed but the shard
// helpers it reuses keep index maintenance identical to the live
// paths. Path claims are not applied here — rebuildPaths derives the
// whole namespace from the surviving datasets afterwards.
func (s *Store) applyRecord(sh *shard, ps *pathShard, rec walRecord) {
	switch rec.Op {
	case opCreate:
		if rec.Dataset == nil {
			return
		}
		d := rec.Dataset.clone()
		sh.insert(&d)
	case opTag:
		d := sh.datasets[rec.ID]
		if d == nil || d.HasTag(rec.Tag) {
			return
		}
		d.Tags = append(d.Tags, rec.Tag)
		sort.Strings(d.Tags)
		d.Version++
		if sh.byTag[rec.Tag] == nil {
			sh.byTag[rec.Tag] = make(map[string]bool)
		}
		sh.byTag[rec.Tag][d.ID] = true
	case opUntag:
		d := sh.datasets[rec.ID]
		if d == nil || !d.HasTag(rec.Tag) {
			return
		}
		keep := d.Tags[:0]
		for _, t := range d.Tags {
			if t != rec.Tag {
				keep = append(keep, t)
			}
		}
		d.Tags = keep
		d.Version++
		delete(sh.byTag[rec.Tag], d.ID)
	case opProc:
		d := sh.datasets[rec.ID]
		if d == nil || rec.Proc == nil {
			return
		}
		d.Processings = append(d.Processings, *rec.Proc)
		d.Version++
	case opDelete:
		d := sh.datasets[rec.ID]
		if d == nil {
			return
		}
		delete(sh.datasets, rec.ID)
		delete(sh.byProject[d.Project], rec.ID)
		for _, t := range d.Tags {
			delete(sh.byTag[t], rec.ID)
		}
	case opPlacement:
		ps.setPlacement(rec.Path, rec.State)
	case opReplica:
		ps.setReplica(rec.Path, rec.Site, rec.State)
	}
}

// rebuildPaths derives the logical-path namespace from the surviving
// datasets. When two live datasets claim one path — possible only
// when a delete's WAL record was lost to a crash while a later
// create of the same path survived — the later creation (higher ID)
// wins, matching the logical history, and the stale dataset is
// dropped.
func (s *Store) rebuildPaths() {
	type claim struct {
		id    string
		shard *shard
	}
	byPath := make(map[string]claim)
	for _, sh := range s.shards {
		for id, d := range sh.datasets {
			prev, dup := byPath[d.Path]
			if !dup {
				byPath[d.Path] = claim{id, sh}
				continue
			}
			loserID, loserShard := id, sh
			if idLess(prev.id, id) {
				loserID, loserShard = prev.id, prev.shard
				byPath[d.Path] = claim{id, sh}
			}
			ld := loserShard.datasets[loserID]
			delete(loserShard.datasets, loserID)
			delete(loserShard.byProject[ld.Project], loserID)
			for _, t := range ld.Tags {
				delete(loserShard.byTag[t], loserID)
			}
			s.recovered.PathConflictsDropped++
		}
	}
	for p, c := range byPath {
		ps := s.pathShardFor(p)
		ps.byPath[p] = c.id
	}
}

// idLess orders dataset IDs ("ds-%06d") numerically: shorter strings
// first, then lexicographic — correct past the %06d rollover.
func idLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// --- journaling hooks (no-ops when s.wal == nil) ---

// journal stages rec on WAL shard wi. Callers hold the lock of the
// structure the record mutates, which pins the record's LSN to its
// apply order.
func (s *Store) journal(wi uint32, rec walRecord) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	return s.wal.shards[wi].stage(rec)
}

// journalWait makes the staged record durable (group-committing with
// concurrent mutators) and triggers a compaction when the shard's
// log has grown past SnapshotEvery records. Called with the
// structure lock released.
func (s *Store) journalWait(wi uint32, lsn uint64, stageErr error) error {
	if s.wal == nil {
		return nil
	}
	if stageErr != nil {
		return stageErr
	}
	w := s.wal.shards[wi]
	if err := w.waitDurable(lsn); err != nil {
		return err
	}
	w.mu.Lock()
	due := w.recordsSinceSnap >= s.wal.snapshotEvery
	w.mu.Unlock()
	if due {
		if err := s.snapshotShard(int(wi), false); err != nil {
			// A failed snapshot loses no data (the WAL still has
			// everything); surface it on the error counter and keep
			// serving.
			s.walErrs.Add(1)
		}
	}
	return nil
}

// journalWaitAll waits for per-shard LSNs in parallel — the batched
// mutation paths stage across many shards and should not pay the
// shards' fsyncs serially. lsns maps WAL-shard index to the highest
// staged LSN; a zero entry is skipped. Returns the per-shard errors.
func (s *Store) journalWaitAll(lsns []uint64) []error {
	if s.wal == nil {
		return nil
	}
	errs := make([]error, len(lsns))
	var wg sync.WaitGroup
	for wi, lsn := range lsns {
		if lsn == 0 {
			continue
		}
		wg.Add(1)
		go func(wi int, lsn uint64) {
			defer wg.Done()
			errs[wi] = s.journalWait(uint32(wi), lsn, nil)
		}(wi, lsn)
	}
	wg.Wait()
	return errs
}

// closeWAL flushes and closes every shard log.
func (s *Store) closeWAL() {
	if s.wal == nil {
		return
	}
	for _, w := range s.wal.shards {
		w.close()
	}
}

package metadata

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/metadata/durafs"
)

// fixedClock returns a deterministic timestamp source: each call
// advances one second from the epoch.
func fixedClock() func() time.Time {
	base := time.Unix(1_300_000_000, 0).UTC()
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

// buildDeterministic runs a fixed mutation script against a fresh
// durable store on its own MemFS and checkpoints it.
func buildDeterministic(t *testing.T) (*Store, *durafs.MemFS) {
	t.Helper()
	mem := durafs.NewMem()
	s, err := Open(Options{Shards: 4, SnapshotEvery: 1 << 20, WALDir: "/wal", FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(fixedClock())
	specs := make([]CreateSpec, 24)
	for i := range specs {
		specs[i] = CreateSpec{
			Project: fmt.Sprintf("proj-%d", i%3),
			Path:    fmt.Sprintf("/det/%02d", i),
			Size:    1 << uint(i%20),
			Basic:   map[string]string{"k": "v", "i": fmt.Sprint(i)},
			Tags:    []string{"raw", "det"},
		}
	}
	for _, res := range s.CreateBatch(specs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		s.NotePlacement("/cache"+res.Dataset.Path, "resident")
		s.NoteReplica(res.Dataset.Path, "dkrz", "valid")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return s, mem
}

func readFSFile(t *testing.T, fsys durafs.FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

// TestSnapshotDeterministic asserts that the same mutation sequence
// under the same injected clock produces byte-identical snapshot
// files — datasets are sorted by ID and JSON map keys are ordered, so
// nothing about map iteration or scheduling may leak into the bytes.
// It also asserts a second Checkpoint with no intervening mutations
// rewrites the identical bytes (snapshots are a pure function of
// state).
func TestSnapshotDeterministic(t *testing.T) {
	s1, mem1 := buildDeterministic(t)
	s2, mem2 := buildDeterministic(t)
	defer s1.Close()
	defer s2.Close()

	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("/wal/shard-%03d.snap", i)
		b1 := readFSFile(t, mem1, name)
		b2 := readFSFile(t, mem2, name)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("shard %d snapshots differ across identical runs (%d vs %d bytes)", i, len(b1), len(b2))
		}
		if err := s1.snapshotShard(i, true); err != nil {
			t.Fatal(err)
		}
		if again := readFSFile(t, mem1, name); !bytes.Equal(b1, again) {
			t.Fatalf("shard %d snapshot not idempotent under re-Checkpoint", i)
		}
	}
}

// TestSnapshotExportEquivalence pins the documented relationship: a
// snapshot is a per-shard Export plus a WAL position. The union of
// all shard snapshots must carry exactly the datasets, placements and
// replicas that Export reports, and recovery from snapshots alone
// (post-Checkpoint, no WAL replay) must Export identically.
func TestSnapshotExportEquivalence(t *testing.T) {
	s, mem := buildDeterministic(t)
	defer s.Close()

	var exported bytes.Buffer
	if err := s.Export(&exported); err != nil {
		t.Fatal(err)
	}

	// Union the decoded snapshot files.
	var fromSnaps []Dataset
	places := make(map[string]string)
	for i := 0; i < 4; i++ {
		snap, ok, err := s.loadSnapshot(i)
		if err != nil || !ok {
			t.Fatalf("loadSnapshot(%d): ok=%v err=%v", i, ok, err)
		}
		fromSnaps = append(fromSnaps, snap.Datasets...)
		for k, v := range snap.Placements {
			places[k] = v
		}
	}
	if got, want := len(fromSnaps), len(s.Find(Query{})); got != want {
		t.Fatalf("snapshots hold %d datasets, store has %d", got, want)
	}
	byID := make(map[string]Dataset, len(fromSnaps))
	for _, d := range fromSnaps {
		byID[d.ID] = d
	}
	for _, d := range s.Find(Query{}) {
		sd, ok := byID[d.ID]
		if !ok {
			t.Fatalf("dataset %s missing from snapshots", d.ID)
		}
		if sd.Path != d.Path || len(sd.Tags) != len(d.Tags) {
			t.Fatalf("snapshot copy of %s diverges: %+v vs %+v", d.ID, sd, d)
		}
	}
	for i := 0; i < 24; i++ {
		p := fmt.Sprintf("/cache/det/%02d", i)
		if places[p] != "resident" {
			t.Fatalf("placement %s missing from snapshots (got %q)", p, places[p])
		}
	}

	// Recover purely from snapshots and compare Exports.
	r, err := Open(Options{Shards: 4, WALDir: "/wal", FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.RecoveryStats(); st.RecordsReplayed != 0 || st.SnapshotsLoaded != 4 {
		t.Fatalf("post-Checkpoint recovery should be snapshot-only: %+v", st)
	}
	var rexported bytes.Buffer
	if err := r.Export(&rexported); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exported.Bytes(), rexported.Bytes()) {
		t.Fatalf("Export after snapshot-only recovery differs (%d vs %d bytes)",
			exported.Len(), rexported.Len())
	}
}

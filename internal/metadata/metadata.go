// Package metadata implements the LSDF project metadata database
// (slide 8): "Metadata is essential ... metadata schema is highly
// project-dependent => we use a project metadata DB."
//
// The data model follows the paper's figure exactly: experiment DATA
// and BASIC METADATA are write-once/read-many and persistent, while
// each processing pass appends its own metadata set (METADATA 1..N:
// basic metadata + processing parameters + results). Datasets carry
// free-form tags, which are what the DataBrowser and the workflow
// trigger system key on.
//
// # Sharding
//
// The repository is sharded: datasets are spread over N shards
// (power of two, default 16) by FNV-1a hash of the dataset ID, and
// the logical-path namespace over an equal number of path shards by
// hash of the path. Each shard carries its own lock and its own
// byProject/byTag index fragments, so concurrent writers touching
// different datasets proceed without contending on a global lock.
// Find fans out across shards in parallel and merges the per-shard
// results in deterministic ID order, so query results are identical
// for any shard count. Batched mutations (CreateBatch, TagBatch)
// group their work by shard and take one lock round per shard
// instead of one lock per dataset.
//
// # Event delivery
//
// Every mutation publishes an Event to subscribers. Two delivery
// modes exist (see Options.Async):
//
//   - Sync (default): subscribers run inline on the mutating
//     goroutine after the mutation commits — the deterministic mode
//     that internal/sim and internal/experiments depend on.
//   - Async: events flow through a bounded per-subscriber queue
//     drained by one worker goroutine per subscriber (see bus.go).
//     Events for the same dataset are always delivered in commit
//     order; Flush blocks until every published event — including
//     events cascaded by subscriber callbacks — has been delivered.
//
// Close flushes and stops the bus; mutations remain possible after
// Close but no further events are delivered.
package metadata

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metadata/durafs"
	"repro/internal/units"
)

// Errors reported by store operations.
var (
	ErrNotFound  = errors.New("metadata: dataset not found")
	ErrDuplicate = errors.New("metadata: logical path already registered")
	ErrImmutable = errors.New("metadata: basic metadata is write-once")
)

// Dataset is one registered data object. Basic metadata is immutable
// after Create, matching the paper's write-once contract; tags and
// processing records accumulate.
type Dataset struct {
	ID        string            `json:"id"`
	Project   string            `json:"project"`
	Path      string            `json:"path"` // logical path in the ADAL namespace
	Size      units.Bytes       `json:"size"`
	Checksum  string            `json:"checksum,omitempty"`
	Basic     map[string]string `json:"basic,omitempty"`
	Tags      []string          `json:"tags,omitempty"` // sorted
	CreatedAt time.Time         `json:"created_at"`
	Version   int               `json:"version"`

	Processings []Processing `json:"processings,omitempty"`
}

// HasTag reports whether the dataset carries the tag.
func (d *Dataset) HasTag(tag string) bool {
	for _, t := range d.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Processing is one analysis pass over a dataset: the paper's
// "processing X metadata + results X" block.
type Processing struct {
	ID         string            `json:"id"`
	Tool       string            `json:"tool"`
	Params     map[string]string `json:"params,omitempty"`
	StartedAt  time.Time         `json:"started_at"`
	FinishedAt time.Time         `json:"finished_at"`
	Results    map[string]string `json:"results,omitempty"`
	Outputs    []string          `json:"outputs,omitempty"` // logical paths of produced data
}

// EventType classifies store notifications.
type EventType int

// Store event types.
const (
	EventCreated EventType = iota
	EventTagged
	EventUntagged
	EventProcessingAdded
	EventDeleted
	// EventPlacement announces a storage-tier placement transition
	// (resident/premigrated/migrated) for the object at Dataset.Path;
	// published by the tiering backend, not by a store mutation.
	EventPlacement
	// EventReplica announces a replica-catalog state transition
	// (pending/copying/valid/stale/lost/dropped) for the object at
	// Dataset.Path on the site named by Event.Site; published by the
	// replication catalog, not by a store mutation.
	EventReplica
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventTagged:
		return "tagged"
	case EventUntagged:
		return "untagged"
	case EventProcessingAdded:
		return "processing-added"
	case EventDeleted:
		return "deleted"
	case EventPlacement:
		return "placement"
	case EventReplica:
		return "replica"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is a store notification. Dataset is a snapshot taken after
// the mutation.
type Event struct {
	Type      EventType
	Dataset   Dataset
	Tag       string // set for EventTagged/EventUntagged
	Placement string // set for EventPlacement/EventReplica: the new state
	Site      string // set for EventReplica: the replica's site
}

// Options configures a Store.
type Options struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// 0 means the default of 16. 1 degenerates to a single-lock store
	// (the pre-sharding behavior, useful as a benchmark baseline).
	Shards int
	// Clock supplies timestamps; nil means time.Now.
	Clock func() time.Time
	// Async routes events through the background bus instead of
	// invoking subscribers inline on the mutating goroutine.
	Async bool
	// QueueLen bounds each subscriber's event queue in async mode;
	// 0 means the default of 256.
	QueueLen int

	// WALDir enables durability: every mutation is journaled to a
	// per-shard append-only WAL under this directory before it is
	// acknowledged, periodic compacted snapshots bound replay, and
	// Open recovers the full state (datasets, tags, processings,
	// placements, replicas) from the latest snapshots plus WAL
	// tails. Empty (the default) keeps the store purely in-memory.
	WALDir string
	// SnapshotEvery is the per-shard WAL record count between
	// compacted snapshots; 0 means the default of 512.
	SnapshotEvery int
	// GroupCommitInterval is how long a commit leader waits for
	// concurrent mutations to join its batch before paying the
	// fsync. 0 commits immediately (concurrent mutators still share
	// syncs opportunistically — whatever staged during the previous
	// commit goes out in one batch).
	GroupCommitInterval time.Duration
	// FS routes all durability I/O; nil means the real filesystem
	// (durafs.OS()). Tests inject durafs.MemFS / durafs.Fault to
	// crash the store deterministically.
	FS durafs.FS
}

// DefaultShards is the shard count used when Options.Shards is 0.
const DefaultShards = 16

// DefaultSnapshotEvery is the per-shard WAL record count between
// compacted snapshots when Options.SnapshotEvery is 0.
const DefaultSnapshotEvery = 512

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	o.Shards = ceilPow2(o.Shards)
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 256
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	return o
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard holds the datasets whose ID hashes onto it, plus this
// shard's fragment of the project and tag indexes.
type shard struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	byProject map[string]map[string]bool // project -> ids (this shard only)
	byTag     map[string]map[string]bool // tag -> ids (this shard only)
}

// pathShard holds the slice of the logical-path namespace that
// hashes onto it. Claiming a path here is what makes Create's
// duplicate detection race-free without a global lock. It also
// carries the per-path placement and replica notes (keyed by the
// same hash), which durable stores journal and recover.
type pathShard struct {
	mu        sync.RWMutex
	byPath    map[string]string            // path -> id
	placement map[string]string            // path -> tier placement state
	replicas  map[string]map[string]string // path -> site -> replica state
}

// setPlacement records a placement note; callers hold ps.mu (or run
// single-threaded recovery).
func (ps *pathShard) setPlacement(path, state string) {
	if ps.placement == nil {
		ps.placement = make(map[string]string)
	}
	ps.placement[path] = state
}

// setReplica records a replica note; same locking contract.
func (ps *pathShard) setReplica(path, site, state string) {
	if ps.replicas == nil {
		ps.replicas = make(map[string]map[string]string)
	}
	if ps.replicas[path] == nil {
		ps.replicas[path] = make(map[string]string)
	}
	ps.replicas[path][site] = state
}

// Store is the metadata repository. All methods are safe for
// concurrent use. See the package comment for the sharding layout
// and the two event-delivery modes.
type Store struct {
	shards     []*shard
	pathShards []*pathShard
	mask       uint32
	seq        atomic.Int64
	clockMu    sync.RWMutex
	clock      func() time.Time
	bus        *bus

	// Durability plane (nil for pure in-memory stores): per-shard
	// WALs + snapshots behind the durafs seam. See wal.go,
	// snapshot.go, durable.go.
	wal       *walSet
	walErrs   atomic.Int64
	recovered RecoveryStats
}

// NewStore creates an empty repository with default options:
// 16 shards, wall-clock time, synchronous event delivery.
func NewStore() *Store { return NewStoreWith(Options{}) }

// NewStoreWithClock creates a repository with an injected clock, so
// simulations can register datasets in virtual time.
func NewStoreWithClock(clock func() time.Time) *Store {
	return NewStoreWith(Options{Clock: clock})
}

// NewStoreWith creates a repository from explicit options. It panics
// if recovery fails, which can only happen when Options.WALDir is
// set — durable callers should prefer Open and handle the error.
func NewStoreWith(opts Options) *Store {
	s, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Open creates a repository from explicit options. With
// Options.WALDir set it recovers prior state from the newest valid
// snapshot per shard plus the WAL tail (truncating at the first torn
// record), and every subsequent mutation is journaled before it is
// acknowledged. Open fails on a shard-count mismatch with the WAL
// directory's manifest (ErrWALConfig) or on corruption that
// torn-tail truncation cannot explain (ErrWALCorrupt,
// ErrSnapshotCorrupt). Recovery publishes no events.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		shards:     make([]*shard, opts.Shards),
		pathShards: make([]*pathShard, opts.Shards),
		mask:       uint32(opts.Shards - 1),
		clock:      opts.Clock,
		bus:        newBus(opts.Async, opts.QueueLen),
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			datasets:  make(map[string]*Dataset),
			byProject: make(map[string]map[string]bool),
			byTag:     make(map[string]map[string]bool),
		}
		s.pathShards[i] = &pathShard{byPath: make(map[string]string)}
	}
	if opts.WALDir != "" {
		if err := s.openWAL(opts); err != nil {
			s.bus.close()
			return nil, err
		}
	}
	return s, nil
}

// Shards returns the shard count (always a power of two).
func (s *Store) Shards() int { return len(s.shards) }

// SetClock replaces the timestamp source (for tests and simulation).
func (s *Store) SetClock(clock func() time.Time) {
	s.clockMu.Lock()
	defer s.clockMu.Unlock()
	s.clock = clock
}

func (s *Store) now() time.Time {
	s.clockMu.RLock()
	defer s.clockMu.RUnlock()
	return s.clock()
}

// fnv32a is the 32-bit FNV-1a hash, inlined to avoid the hash.Hash
// allocation on every shard lookup.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (s *Store) shardFor(id string) *shard           { return s.shards[fnv32a(id)&s.mask] }
func (s *Store) pathShardFor(path string) *pathShard { return s.pathShards[fnv32a(path)&s.mask] }

func (s *Store) nextID() string {
	return fmt.Sprintf("ds-%06d", s.seq.Add(1))
}

// insert registers d in the shard's maps. Callers hold sh.mu.
func (sh *shard) insert(d *Dataset) {
	sh.datasets[d.ID] = d
	if sh.byProject[d.Project] == nil {
		sh.byProject[d.Project] = make(map[string]bool)
	}
	sh.byProject[d.Project][d.ID] = true
	for _, t := range d.Tags {
		if sh.byTag[t] == nil {
			sh.byTag[t] = make(map[string]bool)
		}
		sh.byTag[t][d.ID] = true
	}
}

// publish commits events for a mutation. In async mode the events
// must have been staged via bus.enqueue while the shard lock was
// held (that is what makes per-dataset delivery order equal commit
// order), so publish is a no-op; in sync mode it invokes the
// subscribers inline, after the shard lock is released so callbacks
// may call back into the store.
func (s *Store) publish(evs ...Event) {
	if s.bus.async {
		return
	}
	for _, ev := range evs {
		s.bus.deliverSync(ev)
	}
}

// stage hands events to the async bus; callers hold the shard lock.
// No-op in sync mode.
func (s *Store) stage(evs ...Event) {
	if !s.bus.async {
		return
	}
	for _, ev := range evs {
		s.bus.enqueue(ev)
	}
}

// Create registers a dataset. The basic map is copied and immutable
// afterwards. The logical path must be unique. On a durable store
// Create returns only after the creation is journaled; a WAL failure
// returns ErrWALFailed and the shard goes fail-stop.
func (s *Store) Create(project, path string, size units.Bytes, checksum string, basic map[string]string) (Dataset, error) {
	ps := s.pathShardFor(path)
	ps.mu.Lock()
	if _, dup := ps.byPath[path]; dup {
		ps.mu.Unlock()
		return Dataset{}, fmt.Errorf("%w: %q", ErrDuplicate, path)
	}
	id := s.nextID()
	ps.byPath[path] = id
	ps.mu.Unlock()

	d := &Dataset{
		ID:        id,
		Project:   project,
		Path:      path,
		Size:      size,
		Checksum:  checksum,
		Basic:     cloneMap(basic),
		CreatedAt: s.now(),
		Version:   1,
	}
	sh := s.shardFor(id)
	wi := fnv32a(id) & s.mask
	sh.mu.Lock()
	sh.insert(d)
	snap := d.clone()
	lsn, jerr := s.journal(wi, walRecord{Op: opCreate, Dataset: &snap, Seq: s.seq.Load()})
	ev := Event{Type: EventCreated, Dataset: snap}
	s.stage(ev)
	sh.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		return Dataset{}, err
	}
	s.publish(ev)
	return snap, nil
}

// Get returns a snapshot of a dataset by ID.
func (s *Store) Get(id string) (Dataset, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.datasets[id]
	if !ok {
		return Dataset{}, false
	}
	return d.clone(), true
}

// ByPath returns a snapshot of the dataset registered at path.
func (s *Store) ByPath(path string) (Dataset, bool) {
	ps := s.pathShardFor(path)
	ps.mu.RLock()
	id, ok := ps.byPath[path]
	ps.mu.RUnlock()
	if !ok {
		return Dataset{}, false
	}
	// A concurrent Create may have claimed the path but not yet
	// inserted the dataset; treat that in-flight window as not found.
	return s.Get(id)
}

// Count returns the number of datasets.
func (s *Store) Count() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.datasets)
		sh.mu.RUnlock()
	}
	return n
}

// Tag adds a tag; it is idempotent. Subscribers observe EventTagged
// only on the first application.
func (s *Store) Tag(id, tag string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.datasets[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if d.HasTag(tag) {
		sh.mu.Unlock()
		return nil
	}
	d.Tags = append(d.Tags, tag)
	sort.Strings(d.Tags)
	d.Version++
	if sh.byTag[tag] == nil {
		sh.byTag[tag] = make(map[string]bool)
	}
	sh.byTag[tag][id] = true
	snap := d.clone()
	wi := fnv32a(id) & s.mask
	lsn, jerr := s.journal(wi, walRecord{Op: opTag, ID: id, Tag: tag})
	ev := Event{Type: EventTagged, Dataset: snap, Tag: tag}
	s.stage(ev)
	sh.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		return err
	}
	s.publish(ev)
	return nil
}

// Untag removes a tag if present.
func (s *Store) Untag(id, tag string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.datasets[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !d.HasTag(tag) {
		sh.mu.Unlock()
		return nil
	}
	keep := d.Tags[:0]
	for _, t := range d.Tags {
		if t != tag {
			keep = append(keep, t)
		}
	}
	d.Tags = keep
	d.Version++
	delete(sh.byTag[tag], id)
	snap := d.clone()
	wi := fnv32a(id) & s.mask
	lsn, jerr := s.journal(wi, walRecord{Op: opUntag, ID: id, Tag: tag})
	ev := Event{Type: EventUntagged, Dataset: snap, Tag: tag}
	s.stage(ev)
	sh.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		return err
	}
	s.publish(ev)
	return nil
}

// AddProcessing appends a processing record, returning its ID.
func (s *Store) AddProcessing(id string, p Processing) (string, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.datasets[id]
	if !ok {
		sh.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	p.ID = fmt.Sprintf("%s-p%03d", d.ID, len(d.Processings)+1)
	p.Params = cloneMap(p.Params)
	p.Results = cloneMap(p.Results)
	p.Outputs = append([]string(nil), p.Outputs...)
	d.Processings = append(d.Processings, p)
	d.Version++
	snap := d.clone()
	wi := fnv32a(id) & s.mask
	proc := p
	lsn, jerr := s.journal(wi, walRecord{Op: opProc, ID: id, Proc: &proc})
	ev := Event{Type: EventProcessingAdded, Dataset: snap}
	s.stage(ev)
	sh.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		return "", err
	}
	s.publish(ev)
	return p.ID, nil
}

// Delete removes a dataset.
func (s *Store) Delete(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	d, ok := sh.datasets[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(sh.datasets, id)
	delete(sh.byProject[d.Project], id)
	for _, t := range d.Tags {
		delete(sh.byTag[t], id)
	}
	snap := d.clone()
	wi := fnv32a(id) & s.mask
	lsn, jerr := s.journal(wi, walRecord{Op: opDelete, ID: id})
	ev := Event{Type: EventDeleted, Dataset: snap}
	s.stage(ev)
	sh.mu.Unlock()

	ps := s.pathShardFor(d.Path)
	ps.mu.Lock()
	if ps.byPath[d.Path] == id {
		delete(ps.byPath, d.Path)
	}
	ps.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		return err
	}
	s.publish(ev)
	return nil
}

// NotePlacement publishes an EventPlacement on the store's bus for
// the object at path: the tiering backend calls it on every
// Resident/Premigrated/Migrated transition so rule engines and
// workflow triggers can react to data aging exactly as they react to
// mutations. The event carries the registered dataset snapshot when
// the path is known to the store, or a synthetic path-only snapshot
// for unregistered objects (e.g. MapReduce intermediates).
// NotePlacement also records the state in the store's placement
// table (see Placement), which durable stores journal — after a
// restart the tier's placements recover without re-scanning stubs.
// Journaling failures cannot be returned on this void path; they
// land on the WALErrors counter and the owning shard goes fail-stop.
func (s *Store) NotePlacement(path, placement string) {
	wi := fnv32a(path) & s.mask
	ps := s.pathShards[wi]
	ps.mu.Lock()
	ps.setPlacement(path, placement)
	lsn, jerr := s.journal(wi, walRecord{Op: opPlacement, Path: path, State: placement})
	ps.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		s.walErrs.Add(1)
	}
	snap, ok := s.ByPath(path)
	if !ok {
		snap = Dataset{Path: path}
	}
	ev := Event{Type: EventPlacement, Dataset: snap, Placement: placement}
	s.stage(ev)
	s.publish(ev)
}

// NoteReplica publishes an EventReplica on the store's bus for the
// object at path: the replication catalog calls it on every replica
// state transition so the DataBrowser and rule engines observe
// multi-site convergence without polling the catalog. Like
// NotePlacement, the event carries the registered dataset snapshot
// when the path is known, or a synthetic path-only snapshot.
// NoteReplica also records the state in the store's replica table
// (see Replicas), journaled on durable stores so the replica catalog
// recovers without re-scanning site directories. Journaling failures
// land on the WALErrors counter, like NotePlacement.
func (s *Store) NoteReplica(path, site, state string) {
	wi := fnv32a(path) & s.mask
	ps := s.pathShards[wi]
	ps.mu.Lock()
	ps.setReplica(path, site, state)
	lsn, jerr := s.journal(wi, walRecord{Op: opReplica, Path: path, Site: site, State: state})
	ps.mu.Unlock()
	if err := s.journalWait(wi, lsn, jerr); err != nil {
		s.walErrs.Add(1)
	}
	snap, ok := s.ByPath(path)
	if !ok {
		snap = Dataset{Path: path}
	}
	ev := Event{Type: EventReplica, Dataset: snap, Placement: state, Site: site}
	s.stage(ev)
	s.publish(ev)
}

// Subscribe registers a callback for every subsequent mutation; the
// returned function unsubscribes. In sync mode callbacks run inline
// on the mutating goroutine; in async mode each subscriber gets a
// dedicated worker goroutine and a bounded queue, and callbacks may
// freely call back into the store.
func (s *Store) Subscribe(fn func(Event)) (unsubscribe func()) {
	return s.bus.subscribe(fn)
}

// Flush blocks until every event published so far — including events
// cascaded from subscriber callbacks and external work registered
// via HoldFlush — has been delivered. It returns immediately in sync
// mode when no HoldFlush work is outstanding. Flush must not be
// called from a subscriber callback.
func (s *Store) Flush() { s.bus.flush() }

// HoldFlush registers one unit of external in-flight work with the
// flush barrier and returns its release function. Subscribers that
// hand an event to their own worker pool (the orchestrator's
// AsyncWorkflows mode) call it before their callback returns, so
// Flush keeps waiting until the handed-off work calls release — that
// is what makes Flush a full quiescence barrier across chained
// subsystems. release is idempotent.
func (s *Store) HoldFlush() (release func()) { return s.bus.hold() }

// Close flushes and stops the event bus, then commits anything still
// pending in the WAL and releases the log files. The store remains
// readable, but on a durable store mutations after Close will fail.
func (s *Store) Close() {
	s.bus.close()
	s.closeWAL()
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (d *Dataset) clone() Dataset {
	out := *d
	out.Basic = cloneMap(d.Basic)
	out.Tags = append([]string(nil), d.Tags...)
	out.Processings = make([]Processing, len(d.Processings))
	for i, p := range d.Processings {
		cp := p
		cp.Params = cloneMap(p.Params)
		cp.Results = cloneMap(p.Results)
		cp.Outputs = append([]string(nil), p.Outputs...)
		out.Processings[i] = cp
	}
	return out
}

// Query selects datasets. Zero fields match everything; set fields
// are conjunctive.
type Query struct {
	Project       string
	Tags          []string // all must be present
	PathPrefix    string
	CreatedAfter  time.Time
	CreatedBefore time.Time
	Basic         map[string]string // all pairs must match
	Limit         int               // 0 = unlimited
}

// Find returns matching dataset snapshots sorted by ID. Each shard
// narrows its candidate set through its project/tag index fragments
// — which is what keeps 10^5-dataset queries flat (E3) — and the
// shards are scanned in parallel, with the per-shard results merged
// in deterministic ID order.
func (s *Store) Find(q Query) []Dataset {
	perShard := make([][]Dataset, len(s.shards))
	if len(s.shards) == 1 {
		perShard[0] = s.shards[0].find(q)
	} else {
		var wg sync.WaitGroup
		for i, sh := range s.shards {
			wg.Add(1)
			go func(i int, sh *shard) {
				defer wg.Done()
				perShard[i] = sh.find(q)
			}(i, sh)
		}
		wg.Wait()
	}
	total := 0
	for _, part := range perShard {
		total += len(part)
	}
	if total == 0 {
		return nil
	}
	out := make([]Dataset, 0, total)
	for _, part := range perShard {
		out = append(out, part...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// find collects this shard's matches in ID order, capped at q.Limit
// per shard (the global head-by-ID is a subset of the union of the
// per-shard heads, so the cap cannot drop a result that the merged,
// truncated output would have kept).
func (sh *shard) find(q Query) []Dataset {
	sh.mu.RLock()
	defer sh.mu.RUnlock()

	// Choose the narrowest index fragment.
	var candidates map[string]bool
	if q.Project != "" {
		candidates = sh.byProject[q.Project]
	}
	for _, t := range q.Tags {
		set := sh.byTag[t]
		if candidates == nil || len(set) < len(candidates) {
			candidates = set
		}
	}

	var ids []string
	if candidates != nil {
		ids = make([]string, 0, len(candidates))
		for id := range candidates {
			ids = append(ids, id)
		}
	} else {
		ids = make([]string, 0, len(sh.datasets))
		for id := range sh.datasets {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	var out []Dataset
	for _, id := range ids {
		d := sh.datasets[id]
		if d == nil || !matches(d, q) {
			continue
		}
		out = append(out, d.clone())
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

func matches(d *Dataset, q Query) bool {
	if q.Project != "" && d.Project != q.Project {
		return false
	}
	for _, t := range q.Tags {
		if !d.HasTag(t) {
			return false
		}
	}
	if q.PathPrefix != "" && !strings.HasPrefix(d.Path, q.PathPrefix) {
		return false
	}
	if !q.CreatedAfter.IsZero() && d.CreatedAt.Before(q.CreatedAfter) {
		return false
	}
	if !q.CreatedBefore.IsZero() && !d.CreatedAt.Before(q.CreatedBefore) {
		return false
	}
	for k, v := range q.Basic {
		if d.Basic[k] != v {
			return false
		}
	}
	return true
}

// Export writes the full repository as JSON (one stable document):
// every dataset plus the placement and replica tables. The document
// shape is the same one per-shard snapshots use (storeDump), so a
// snapshot is literally a shard's Export plus a WAL position. Export
// must not run concurrently with mutations if a point-in-time-
// consistent dump is required.
func (s *Store) Export(w io.Writer) error {
	dump := storeDump{Seq: s.seq.Load()}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, d := range sh.datasets {
			dump.Datasets = append(dump.Datasets, d.clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(dump.Datasets, func(i, j int) bool { return dump.Datasets[i].ID < dump.Datasets[j].ID })
	for _, ps := range s.pathShards {
		ps.mu.RLock()
		for p, st := range ps.placement {
			if dump.Placements == nil {
				dump.Placements = make(map[string]string)
			}
			dump.Placements[p] = st
		}
		for p, sites := range ps.replicas {
			if dump.Replicas == nil {
				dump.Replicas = make(map[string]map[string]string)
			}
			cp := make(map[string]string, len(sites))
			for site, st := range sites {
				cp[site] = st
			}
			dump.Replicas[p] = cp
		}
		ps.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// Import loads a repository dump into an empty store. It publishes
// no events and must not run concurrently with mutations. On a
// durable store every imported dataset and note is journaled, so the
// import survives a crash like any other mutation.
func (s *Store) Import(r io.Reader) error {
	var dump storeDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("metadata: import: %w", err)
	}
	if s.Count() > 0 {
		return errors.New("metadata: import into non-empty store")
	}
	s.seq.Store(dump.Seq)
	lsns := make([]uint64, len(s.shards))
	for i := range dump.Datasets {
		d := dump.Datasets[i]
		cp := d.clone()
		ps := s.pathShardFor(d.Path)
		ps.mu.Lock()
		ps.byPath[d.Path] = d.ID
		ps.mu.Unlock()
		sh := s.shardFor(d.ID)
		wi := fnv32a(d.ID) & s.mask
		sh.mu.Lock()
		sh.insert(&cp)
		rec := cp.clone()
		lsn, jerr := s.journal(wi, walRecord{Op: opCreate, Dataset: &rec, Seq: dump.Seq})
		sh.mu.Unlock()
		if jerr != nil {
			return jerr
		}
		if lsn > lsns[wi] {
			lsns[wi] = lsn
		}
	}
	for p, st := range dump.Placements {
		wi := fnv32a(p) & s.mask
		ps := s.pathShards[wi]
		ps.mu.Lock()
		ps.setPlacement(p, st)
		lsn, jerr := s.journal(wi, walRecord{Op: opPlacement, Path: p, State: st})
		ps.mu.Unlock()
		if jerr != nil {
			return jerr
		}
		if lsn > lsns[wi] {
			lsns[wi] = lsn
		}
	}
	for p, sites := range dump.Replicas {
		wi := fnv32a(p) & s.mask
		ps := s.pathShards[wi]
		ps.mu.Lock()
		for site, st := range sites {
			ps.setReplica(p, site, st)
			lsn, jerr := s.journal(wi, walRecord{Op: opReplica, Path: p, Site: site, State: st})
			if jerr != nil {
				ps.mu.Unlock()
				return jerr
			}
			if lsn > lsns[wi] {
				lsns[wi] = lsn
			}
		}
		ps.mu.Unlock()
	}
	for _, err := range s.journalWaitAll(lsns) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Package metadata implements the LSDF project metadata database
// (slide 8): "Metadata is essential ... metadata schema is highly
// project-dependent => we use a project metadata DB."
//
// The data model follows the paper's figure exactly: experiment DATA
// and BASIC METADATA are write-once/read-many and persistent, while
// each processing pass appends its own metadata set (METADATA 1..N:
// basic metadata + processing parameters + results). Datasets carry
// free-form tags, which are what the DataBrowser and the workflow
// trigger system key on.
package metadata

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/units"
)

// Errors reported by store operations.
var (
	ErrNotFound  = errors.New("metadata: dataset not found")
	ErrDuplicate = errors.New("metadata: logical path already registered")
	ErrImmutable = errors.New("metadata: basic metadata is write-once")
)

// Dataset is one registered data object. Basic metadata is immutable
// after Create, matching the paper's write-once contract; tags and
// processing records accumulate.
type Dataset struct {
	ID        string            `json:"id"`
	Project   string            `json:"project"`
	Path      string            `json:"path"` // logical path in the ADAL namespace
	Size      units.Bytes       `json:"size"`
	Checksum  string            `json:"checksum,omitempty"`
	Basic     map[string]string `json:"basic,omitempty"`
	Tags      []string          `json:"tags,omitempty"` // sorted
	CreatedAt time.Time         `json:"created_at"`
	Version   int               `json:"version"`

	Processings []Processing `json:"processings,omitempty"`
}

// HasTag reports whether the dataset carries the tag.
func (d *Dataset) HasTag(tag string) bool {
	for _, t := range d.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Processing is one analysis pass over a dataset: the paper's
// "processing X metadata + results X" block.
type Processing struct {
	ID         string            `json:"id"`
	Tool       string            `json:"tool"`
	Params     map[string]string `json:"params,omitempty"`
	StartedAt  time.Time         `json:"started_at"`
	FinishedAt time.Time         `json:"finished_at"`
	Results    map[string]string `json:"results,omitempty"`
	Outputs    []string          `json:"outputs,omitempty"` // logical paths of produced data
}

// EventType classifies store notifications.
type EventType int

// Store event types.
const (
	EventCreated EventType = iota
	EventTagged
	EventUntagged
	EventProcessingAdded
	EventDeleted
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventTagged:
		return "tagged"
	case EventUntagged:
		return "untagged"
	case EventProcessingAdded:
		return "processing-added"
	case EventDeleted:
		return "deleted"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is a store notification. Dataset is a snapshot taken after
// the mutation.
type Event struct {
	Type    EventType
	Dataset Dataset
	Tag     string // set for EventTagged/EventUntagged
}

// Store is the metadata repository. All methods are safe for
// concurrent use. Subscribers are invoked synchronously on the
// mutating goroutine, after the mutation commits.
type Store struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	byPath    map[string]string          // path -> id
	byProject map[string]map[string]bool // project -> ids
	byTag     map[string]map[string]bool // tag -> ids
	seq       int
	clock     func() time.Time
	subs      map[int]func(Event)
	subSeq    int
}

// NewStore creates an empty repository using wall-clock time.
func NewStore() *Store { return NewStoreWithClock(time.Now) }

// NewStoreWithClock creates a repository with an injected clock, so
// simulations can register datasets in virtual time.
func NewStoreWithClock(clock func() time.Time) *Store {
	return &Store{
		datasets:  make(map[string]*Dataset),
		byPath:    make(map[string]string),
		byProject: make(map[string]map[string]bool),
		byTag:     make(map[string]map[string]bool),
		clock:     clock,
		subs:      make(map[int]func(Event)),
	}
}

// SetClock replaces the timestamp source (for tests and simulation).
func (s *Store) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = clock
}

// Create registers a dataset. The basic map is copied and immutable
// afterwards. The logical path must be unique.
func (s *Store) Create(project, path string, size units.Bytes, checksum string, basic map[string]string) (Dataset, error) {
	s.mu.Lock()
	if _, dup := s.byPath[path]; dup {
		s.mu.Unlock()
		return Dataset{}, fmt.Errorf("%w: %q", ErrDuplicate, path)
	}
	s.seq++
	id := fmt.Sprintf("ds-%06d", s.seq)
	d := &Dataset{
		ID:        id,
		Project:   project,
		Path:      path,
		Size:      size,
		Checksum:  checksum,
		Basic:     cloneMap(basic),
		CreatedAt: s.clock(),
		Version:   1,
	}
	s.datasets[id] = d
	s.byPath[path] = id
	if s.byProject[project] == nil {
		s.byProject[project] = make(map[string]bool)
	}
	s.byProject[project][id] = true
	snap := d.clone()
	s.mu.Unlock()
	s.publish(Event{Type: EventCreated, Dataset: snap})
	return snap, nil
}

// Get returns a snapshot of a dataset by ID.
func (s *Store) Get(id string) (Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[id]
	if !ok {
		return Dataset{}, false
	}
	return d.clone(), true
}

// ByPath returns a snapshot of the dataset registered at path.
func (s *Store) ByPath(path string) (Dataset, bool) {
	s.mu.RLock()
	id, ok := s.byPath[path]
	if !ok {
		s.mu.RUnlock()
		return Dataset{}, false
	}
	d := s.datasets[id].clone()
	s.mu.RUnlock()
	return d, true
}

// Count returns the number of datasets.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.datasets)
}

// Tag adds a tag; it is idempotent. Subscribers observe EventTagged
// only on the first application.
func (s *Store) Tag(id, tag string) error {
	s.mu.Lock()
	d, ok := s.datasets[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if d.HasTag(tag) {
		s.mu.Unlock()
		return nil
	}
	d.Tags = append(d.Tags, tag)
	sort.Strings(d.Tags)
	d.Version++
	if s.byTag[tag] == nil {
		s.byTag[tag] = make(map[string]bool)
	}
	s.byTag[tag][id] = true
	snap := d.clone()
	s.mu.Unlock()
	s.publish(Event{Type: EventTagged, Dataset: snap, Tag: tag})
	return nil
}

// Untag removes a tag if present.
func (s *Store) Untag(id, tag string) error {
	s.mu.Lock()
	d, ok := s.datasets[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !d.HasTag(tag) {
		s.mu.Unlock()
		return nil
	}
	keep := d.Tags[:0]
	for _, t := range d.Tags {
		if t != tag {
			keep = append(keep, t)
		}
	}
	d.Tags = keep
	d.Version++
	delete(s.byTag[tag], id)
	snap := d.clone()
	s.mu.Unlock()
	s.publish(Event{Type: EventUntagged, Dataset: snap, Tag: tag})
	return nil
}

// AddProcessing appends a processing record, returning its ID.
func (s *Store) AddProcessing(id string, p Processing) (string, error) {
	s.mu.Lock()
	d, ok := s.datasets[id]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	p.ID = fmt.Sprintf("%s-p%03d", d.ID, len(d.Processings)+1)
	p.Params = cloneMap(p.Params)
	p.Results = cloneMap(p.Results)
	p.Outputs = append([]string(nil), p.Outputs...)
	d.Processings = append(d.Processings, p)
	d.Version++
	snap := d.clone()
	s.mu.Unlock()
	s.publish(Event{Type: EventProcessingAdded, Dataset: snap})
	return p.ID, nil
}

// Delete removes a dataset.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	d, ok := s.datasets[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.datasets, id)
	delete(s.byPath, d.Path)
	delete(s.byProject[d.Project], id)
	for _, t := range d.Tags {
		delete(s.byTag[t], id)
	}
	snap := d.clone()
	s.mu.Unlock()
	s.publish(Event{Type: EventDeleted, Dataset: snap})
	return nil
}

// Subscribe registers a callback for every subsequent mutation; the
// returned function unsubscribes. Callbacks run synchronously, so
// they must not call back into the Store's mutating methods from the
// same goroutine stack if ordering matters to them.
func (s *Store) Subscribe(fn func(Event)) (unsubscribe func()) {
	s.mu.Lock()
	id := s.subSeq
	s.subSeq++
	s.subs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

func (s *Store) publish(ev Event) {
	s.mu.RLock()
	fns := make([]func(Event), 0, len(s.subs))
	ids := make([]int, 0, len(s.subs))
	for id := range s.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fns = append(fns, s.subs[id])
	}
	s.mu.RUnlock()
	for _, fn := range fns {
		fn(ev)
	}
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (d *Dataset) clone() Dataset {
	out := *d
	out.Basic = cloneMap(d.Basic)
	out.Tags = append([]string(nil), d.Tags...)
	out.Processings = make([]Processing, len(d.Processings))
	for i, p := range d.Processings {
		cp := p
		cp.Params = cloneMap(p.Params)
		cp.Results = cloneMap(p.Results)
		cp.Outputs = append([]string(nil), p.Outputs...)
		out.Processings[i] = cp
	}
	return out
}

// Query selects datasets. Zero fields match everything; set fields
// are conjunctive.
type Query struct {
	Project       string
	Tags          []string // all must be present
	PathPrefix    string
	CreatedAfter  time.Time
	CreatedBefore time.Time
	Basic         map[string]string // all pairs must match
	Limit         int               // 0 = unlimited
}

// Find returns matching dataset snapshots sorted by ID. It uses the
// project and tag indexes to narrow the candidate set before
// filtering, which is what keeps 10^5-dataset queries flat (E3).
func (s *Store) Find(q Query) []Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Choose the narrowest index.
	var candidates map[string]bool
	if q.Project != "" {
		candidates = s.byProject[q.Project]
	}
	for _, t := range q.Tags {
		set := s.byTag[t]
		if candidates == nil || len(set) < len(candidates) {
			candidates = set
		}
	}

	var ids []string
	if candidates != nil {
		ids = make([]string, 0, len(candidates))
		for id := range candidates {
			ids = append(ids, id)
		}
	} else {
		ids = make([]string, 0, len(s.datasets))
		for id := range s.datasets {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	var out []Dataset
	for _, id := range ids {
		d := s.datasets[id]
		if d == nil || !matches(d, q) {
			continue
		}
		out = append(out, d.clone())
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}

func matches(d *Dataset, q Query) bool {
	if q.Project != "" && d.Project != q.Project {
		return false
	}
	for _, t := range q.Tags {
		if !d.HasTag(t) {
			return false
		}
	}
	if q.PathPrefix != "" && !strings.HasPrefix(d.Path, q.PathPrefix) {
		return false
	}
	if !q.CreatedAfter.IsZero() && d.CreatedAt.Before(q.CreatedAfter) {
		return false
	}
	if !q.CreatedBefore.IsZero() && !d.CreatedAt.Before(q.CreatedBefore) {
		return false
	}
	for k, v := range q.Basic {
		if d.Basic[k] != v {
			return false
		}
	}
	return true
}

// Export writes the full repository as JSON (one stable document).
func (s *Store) Export(w io.Writer) error {
	s.mu.RLock()
	ids := make([]string, 0, len(s.datasets))
	for id := range s.datasets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	dump := struct {
		Seq      int       `json:"seq"`
		Datasets []Dataset `json:"datasets"`
	}{Seq: s.seq}
	for _, id := range ids {
		dump.Datasets = append(dump.Datasets, s.datasets[id].clone())
	}
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// Import loads a repository dump into an empty store.
func (s *Store) Import(r io.Reader) error {
	var dump struct {
		Seq      int       `json:"seq"`
		Datasets []Dataset `json:"datasets"`
	}
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return fmt.Errorf("metadata: import: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.datasets) > 0 {
		return errors.New("metadata: import into non-empty store")
	}
	s.seq = dump.Seq
	for i := range dump.Datasets {
		d := dump.Datasets[i]
		cp := d.clone()
		s.datasets[d.ID] = &cp
		s.byPath[d.Path] = d.ID
		if s.byProject[d.Project] == nil {
			s.byProject[d.Project] = make(map[string]bool)
		}
		s.byProject[d.Project][d.ID] = true
		for _, t := range d.Tags {
			if s.byTag[t] == nil {
				s.byTag[t] = make(map[string]bool)
			}
			s.byTag[t][d.ID] = true
		}
	}
	return nil
}

package metadata

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// CreateSpec describes one dataset for CreateBatch. Tags listed here
// are applied atomically with the creation, inside the same
// shard-lock round.
type CreateSpec struct {
	Project  string
	Path     string
	Size     units.Bytes
	Checksum string
	Basic    map[string]string
	Tags     []string
}

// CreateResult is one CreateBatch outcome, aligned with the input
// spec slice.
type CreateResult struct {
	Dataset Dataset
	Err     error
}

// CreateBatch registers many datasets in one pass: path claims are
// grouped by path shard and dataset inserts by dataset shard, so a
// bulk ingest takes one lock round per touched shard instead of one
// global lock per dataset. Results are per-item — a duplicate path
// (against the store or within the batch) fails only that item.
// Dataset IDs are assigned in shard-group order, not spec order.
// Events (Created, then Tagged per spec tag) are published per
// dataset in commit order.
func (s *Store) CreateBatch(specs []CreateSpec) []CreateResult {
	results := make([]CreateResult, len(specs))
	ids := make([]string, len(specs))

	// Round 1: claim every path, one lock round per path shard.
	pathGroups := make([][]int, len(s.pathShards))
	for i, sp := range specs {
		psi := fnv32a(sp.Path) & s.mask
		pathGroups[psi] = append(pathGroups[psi], i)
	}
	for psi, idxs := range pathGroups {
		if len(idxs) == 0 {
			continue
		}
		ps := s.pathShards[psi]
		ps.mu.Lock()
		for _, i := range idxs {
			path := specs[i].Path
			if _, dup := ps.byPath[path]; dup {
				results[i].Err = fmt.Errorf("%w: %q", ErrDuplicate, path)
				continue
			}
			id := s.nextID()
			ps.byPath[path] = id
			ids[i] = id
		}
		ps.mu.Unlock()
	}

	// Round 2: insert the claimed datasets, one lock round per shard.
	// On a durable store every dataset stages one create record (its
	// spec tags folded in) while the shard lock is held, and the
	// whole shard group rides a single group commit — one fsync per
	// touched shard, paid in parallel across shards.
	shardGroups := make([][]int, len(s.shards))
	for i := range specs {
		if ids[i] == "" {
			continue
		}
		shi := fnv32a(ids[i]) & s.mask
		shardGroups[shi] = append(shardGroups[shi], i)
	}
	observed := s.bus.hasSubscribers()
	lsns := make([]uint64, len(s.shards))
	pendingEvs := make([][]Event, len(s.shards))
	for shi, idxs := range shardGroups {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[shi]
		var evs []Event
		var jerr error
		sh.mu.Lock()
		for _, i := range idxs {
			sp := specs[i]
			d := &Dataset{
				ID:        ids[i],
				Project:   sp.Project,
				Path:      sp.Path,
				Size:      sp.Size,
				Checksum:  sp.Checksum,
				Basic:     cloneMap(sp.Basic),
				CreatedAt: s.now(),
				Version:   1,
			}
			sh.datasets[d.ID] = d
			if sh.byProject[d.Project] == nil {
				sh.byProject[d.Project] = make(map[string]bool)
			}
			sh.byProject[d.Project][d.ID] = true
			if observed {
				evs = append(evs, Event{Type: EventCreated, Dataset: d.clone()})
			}
			for _, tag := range sp.Tags {
				if d.HasTag(tag) {
					continue
				}
				d.Tags = append(d.Tags, tag)
				sort.Strings(d.Tags)
				d.Version++
				if sh.byTag[tag] == nil {
					sh.byTag[tag] = make(map[string]bool)
				}
				sh.byTag[tag][d.ID] = true
				if observed {
					evs = append(evs, Event{Type: EventTagged, Dataset: d.clone(), Tag: tag})
				}
			}
			results[i].Dataset = d.clone()
			rec := results[i].Dataset.clone()
			var lsn uint64
			lsn, jerr = s.journal(uint32(shi), walRecord{Op: opCreate, Dataset: &rec, Seq: s.seq.Load()})
			if jerr != nil {
				break
			}
			if lsn > lsns[shi] {
				lsns[shi] = lsn
			}
		}
		s.stage(evs...)
		sh.mu.Unlock()
		if jerr != nil {
			for _, i := range idxs {
				results[i] = CreateResult{Err: jerr}
			}
			lsns[shi] = 0
			continue
		}
		pendingEvs[shi] = evs
	}
	walErrs := s.journalWaitAll(lsns)
	for shi, idxs := range shardGroups {
		if len(idxs) == 0 {
			continue
		}
		if walErrs != nil && walErrs[shi] != nil {
			for _, i := range idxs {
				results[i] = CreateResult{Err: walErrs[shi]}
			}
			continue
		}
		s.publish(pendingEvs[shi]...)
	}
	return results
}

// TagSpec names one tag application for TagBatch.
type TagSpec struct {
	ID  string
	Tag string
}

// TagBatch applies many tags, grouped so each touched shard is
// locked once. Like Tag it is idempotent per (ID, Tag) and publishes
// EventTagged only on first application. The returned error joins
// every per-item failure (errors.Is(err, ErrNotFound) matches when
// any ID was unknown); successful items are applied regardless.
func (s *Store) TagBatch(specs []TagSpec) error {
	groups := make([][]int, len(s.shards))
	for i, sp := range specs {
		shi := fnv32a(sp.ID) & s.mask
		groups[shi] = append(groups[shi], i)
	}
	var errs []error
	observed := s.bus.hasSubscribers()
	lsns := make([]uint64, len(s.shards))
	pendingEvs := make([][]Event, len(s.shards))
	for shi, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[shi]
		var evs []Event
		var jerr error
		sh.mu.Lock()
		for _, i := range idxs {
			sp := specs[i]
			d, ok := sh.datasets[sp.ID]
			if !ok {
				errs = append(errs, fmt.Errorf("%w: %q", ErrNotFound, sp.ID))
				continue
			}
			if d.HasTag(sp.Tag) {
				continue
			}
			d.Tags = append(d.Tags, sp.Tag)
			sort.Strings(d.Tags)
			d.Version++
			if sh.byTag[sp.Tag] == nil {
				sh.byTag[sp.Tag] = make(map[string]bool)
			}
			sh.byTag[sp.Tag][d.ID] = true
			var lsn uint64
			lsn, jerr = s.journal(uint32(shi), walRecord{Op: opTag, ID: sp.ID, Tag: sp.Tag})
			if jerr != nil {
				break
			}
			if lsn > lsns[shi] {
				lsns[shi] = lsn
			}
			if observed {
				evs = append(evs, Event{Type: EventTagged, Dataset: d.clone(), Tag: sp.Tag})
			}
		}
		s.stage(evs...)
		sh.mu.Unlock()
		if jerr != nil {
			errs = append(errs, jerr)
			lsns[shi] = 0
			continue
		}
		pendingEvs[shi] = evs
	}
	walErrs := s.journalWaitAll(lsns)
	for shi := range groups {
		if walErrs != nil && walErrs[shi] != nil {
			errs = append(errs, walErrs[shi])
			continue
		}
		s.publish(pendingEvs[shi]...)
	}
	return errors.Join(errs...)
}

package metadata

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/metadata/durafs"
	"repro/internal/units"
)

// openMem opens a durable store on the given MemFS (or a fresh one).
func openMem(t *testing.T, fs durafs.FS, opts Options) *Store {
	t.Helper()
	opts.WALDir = "/wal"
	opts.FS = fs
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestDurableBasicRecovery: every kind of mutation survives a clean
// close-and-reopen through WAL replay alone (no snapshot).
func TestDurableBasicRecovery(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{})
	d1, err := s.Create("p", "/a/1", 4*units.MB, "crc1", map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Create("p", "/a/2", 1*units.MB, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Tag(d1.ID, "raw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Tag(d1.ID, "hot"); err != nil {
		t.Fatal(err)
	}
	if err := s.Untag(d1.ID, "hot"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddProcessing(d1.ID, Processing{Tool: "seg", Results: map[string]string{"cells": "42"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(d2.ID); err != nil {
		t.Fatal(err)
	}
	s.NotePlacement("/ddn/a/1", "migrated")
	s.NoteReplica("/a/1", "gridka", "valid")
	s.Close()

	r := openMem(t, fs, Options{})
	if r.Count() != 1 {
		t.Fatalf("recovered %d datasets, want 1", r.Count())
	}
	got, ok := r.Get(d1.ID)
	if !ok {
		t.Fatalf("dataset %s not recovered", d1.ID)
	}
	if got.Path != "/a/1" || got.Basic["k"] != "v" || got.Checksum != "crc1" {
		t.Fatalf("recovered dataset mangled: %+v", got)
	}
	if len(got.Tags) != 1 || got.Tags[0] != "raw" {
		t.Fatalf("recovered tags = %v, want [raw]", got.Tags)
	}
	if len(got.Processings) != 1 || got.Processings[0].Results["cells"] != "42" {
		t.Fatalf("recovered processings = %+v", got.Processings)
	}
	if _, ok := r.Get(d2.ID); ok {
		t.Fatal("deleted dataset resurrected")
	}
	if _, ok := r.ByPath("/a/2"); ok {
		t.Fatal("deleted dataset's path still claimed")
	}
	if pl, ok := r.Placement("/ddn/a/1"); !ok || pl != "migrated" {
		t.Fatalf("placement = %q, %v", pl, ok)
	}
	if reps := r.Replicas("/a/1"); reps["gridka"] != "valid" {
		t.Fatalf("replicas = %v", reps)
	}
	// Indexes rebuilt: tag query finds the dataset.
	if hits := r.Find(Query{Tags: []string{"raw"}}); len(hits) != 1 || hits[0].ID != d1.ID {
		t.Fatalf("tag index broken after recovery: %v", hits)
	}
	// The ID sequence resumes past recovered datasets.
	d3, err := r.Create("p", "/a/3", 1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d3.ID <= d1.ID {
		t.Fatalf("sequence regressed: new %s <= old %s", d3.ID, d1.ID)
	}
	r.Close()
}

// TestDurableSnapshotCompaction: once SnapshotEvery records are
// committed, recovery loads from snapshots and replays only the
// tail; a Checkpoint empties the tail entirely.
func TestDurableSnapshotCompaction(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 4, SnapshotEvery: 8})
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/c/%03d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Snapshots() == 0 {
		t.Fatal("no snapshots written despite SnapshotEvery=8")
	}
	s.Close()

	r := openMem(t, fs, Options{Shards: 4, SnapshotEvery: 8})
	st := r.RecoveryStats()
	if st.SnapshotsLoaded == 0 {
		t.Fatalf("recovery used no snapshots: %+v", st)
	}
	if st.SnapshotDatasets+st.RecordsReplayed < n {
		t.Fatalf("snapshot(%d) + replay(%d) < %d created", st.SnapshotDatasets, st.RecordsReplayed, n)
	}
	if r.Count() != n {
		t.Fatalf("recovered %d, want %d", r.Count(), n)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Close()

	r2 := openMem(t, fs, Options{Shards: 4, SnapshotEvery: 8})
	st2 := r2.RecoveryStats()
	if st2.RecordsReplayed != 0 {
		t.Fatalf("after Checkpoint, %d records still replayed", st2.RecordsReplayed)
	}
	if r2.Count() != n {
		t.Fatalf("post-checkpoint recovery %d, want %d", r2.Count(), n)
	}
	r2.Close()
}

// TestDurableBatchRecovery: CreateBatch + TagBatch survive reopen.
func TestDurableBatchRecovery(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{})
	specs := make([]CreateSpec, 64)
	for i := range specs {
		specs[i] = CreateSpec{Project: "p", Path: fmt.Sprintf("/b/%03d", i), Size: 1, Tags: []string{"raw"}}
	}
	var tagSpecs []TagSpec
	for _, res := range s.CreateBatch(specs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		tagSpecs = append(tagSpecs, TagSpec{ID: res.Dataset.ID, Tag: "verified"})
	}
	if err := s.TagBatch(tagSpecs); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openMem(t, fs, Options{})
	if r.Count() != 64 {
		t.Fatalf("recovered %d, want 64", r.Count())
	}
	hits := r.Find(Query{Tags: []string{"raw", "verified"}})
	if len(hits) != 64 {
		t.Fatalf("tagged recovery: %d hits, want 64", len(hits))
	}
	r.Close()
}

// TestDurableFailStop: a failed fsync fails the mutation with
// ErrWALFailed and the shard refuses further mutations instead of
// silently acknowledging undurable writes.
func TestDurableFailStop(t *testing.T) {
	ff := durafs.NewFault(durafs.NewMem(), nil)
	s := openMem(t, ff, Options{Shards: 1})
	if _, err := s.Create("p", "/ok", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	ff.FailSyncs(1)
	_, err := s.Create("p", "/bad", 1, "", nil)
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("create with failed sync: err = %v, want ErrWALFailed", err)
	}
	if _, err := s.Create("p", "/after", 1, "", nil); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("shard not fail-stop after sync failure: err = %v", err)
	}
	// Power loss after the failed fsync: the record the disk refused
	// to sync is still sitting in the page cache, so it dies with the
	// machine. Recovery from what actually hit the platter is clean —
	// the acknowledged dataset is there, the failed one is not.
	ff.Inner().Crash(nil)
	r := openMem(t, ff.Inner(), Options{Shards: 1})
	if _, ok := r.ByPath("/ok"); !ok {
		t.Fatal("acknowledged dataset lost")
	}
	if _, ok := r.ByPath("/bad"); ok {
		t.Fatal("unacknowledged dataset recovered despite failed sync")
	}
	r.Close()
}

// TestDurableTornTailTruncated: garbage appended to a WAL (a torn
// final record) is truncated on open; everything before it recovers.
func TestDurableTornTailTruncated(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 1})
	for i := 0; i < 10; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/t/%d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	f, err := fs.OpenAppend("/wal/shard-000.wal")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // half a header
	f.Sync()
	f.Close()

	r := openMem(t, fs, Options{Shards: 1})
	if r.Count() != 10 {
		t.Fatalf("recovered %d, want 10", r.Count())
	}
	st := r.RecoveryStats()
	if st.TornTails != 1 || st.TornTailBytes != 3 {
		t.Fatalf("torn-tail stats = %+v", st)
	}
	// Appends continue cleanly on the truncated log.
	if _, err := r.Create("p", "/t/new", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openMem(t, fs, Options{Shards: 1})
	if r2.Count() != 11 {
		t.Fatalf("post-truncate append lost: %d", r2.Count())
	}
	r2.Close()
}

// TestDurableManifestMismatch: reopening a WAL directory with a
// different shard count is refused with the typed config error.
func TestDurableManifestMismatch(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 4})
	if _, err := s.Create("p", "/m/1", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err := Open(Options{Shards: 8, WALDir: "/wal", FS: fs})
	if !errors.Is(err, ErrWALConfig) {
		t.Fatalf("err = %v, want ErrWALConfig", err)
	}
}

// TestDurableGroupCommit: concurrent writers share fsyncs — with a
// commit window configured, the sync count stays far below the
// mutation count.
func TestDurableGroupCommit(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 1, GroupCommitInterval: 2 * time.Millisecond})
	const writers, each = 8, 25
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if _, err := s.Create("p", fmt.Sprintf("/g/%d/%d", w, i), 1, "", nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	r := openMem(t, fs, Options{Shards: 1})
	if r.Count() != writers*each {
		t.Fatalf("recovered %d, want %d", r.Count(), writers*each)
	}
	r.Close()
}

// TestDurableExportImportEquivalence: Export of a recovered store is
// byte-identical to the pre-crash Export, and Importing an Export
// into a fresh durable store journals it (surviving its own reopen).
func TestDurableExportImportEquivalence(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	tick := 0
	clock := func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }

	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Clock: clock})
	for i := 0; i < 40; i++ {
		d, err := s.Create("p", fmt.Sprintf("/e/%03d", i), units.Bytes(i), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := s.Tag(d.ID, "every3"); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.NotePlacement("/ddn/e/000", "migrated")
	s.NoteReplica("/e/001", "desy", "valid")
	var before bytes.Buffer
	if err := s.Export(&before); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openMem(t, fs, Options{})
	var after bytes.Buffer
	if err := r.Export(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("Export changed across recovery:\nbefore: %s\nafter:  %s", before.String(), after.String())
	}
	r.Close()

	// Import into a fresh durable store, reopen, Export again.
	fs2 := durafs.NewMem()
	s2 := openMem(t, fs2, Options{})
	if err := s2.Import(bytes.NewReader(before.Bytes())); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	r2 := openMem(t, fs2, Options{})
	var roundTrip bytes.Buffer
	if err := r2.Export(&roundTrip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), roundTrip.Bytes()) {
		t.Fatal("Import -> reopen -> Export is not the identity")
	}
	r2.Close()
}

// TestDurableOSFilesystem runs the basic recovery loop against the
// real filesystem (t.TempDir) — the production durafs.OS path.
func TestDurableOSFilesystem(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{WALDir: dir, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/os/%03d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	s.NotePlacement("/ddn/os/000", "premigrated")
	s.Close()

	r, err := Open(Options{WALDir: dir, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 50 {
		t.Fatalf("recovered %d, want 50", r.Count())
	}
	if pl, ok := r.Placement("/ddn/os/000"); !ok || pl != "premigrated" {
		t.Fatalf("placement = %q, %v", pl, ok)
	}
	r.Close()
}

// TestWALRecordRoundTrip pins the frame format: encode then stream-
// decode returns the same records and consumes every byte.
func TestWALRecordRoundTrip(t *testing.T) {
	recs := []walRecord{
		{LSN: 1, Op: opCreate, Seq: 7, Dataset: &Dataset{ID: "ds-000007", Path: "/x", Project: "p", Version: 1}},
		{LSN: 2, Op: opTag, ID: "ds-000007", Tag: "raw"},
		{LSN: 3, Op: opPlacement, Path: "/x", State: "migrated"},
		{LSN: 4, Op: opReplica, Path: "/x", Site: "kit", State: "valid"},
	}
	var buf []byte
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	got, valid, err := decodeWALStream(buf)
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(buf) {
		t.Fatalf("consumed %d of %d bytes", valid, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Op != recs[i].Op || got[i].Tag != recs[i].Tag ||
			got[i].Path != recs[i].Path || got[i].Site != recs[i].Site || got[i].State != recs[i].State {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestWALDecodePrefixPlusGarbage: a valid stream followed by garbage
// recovers exactly the valid prefix, for several garbage shapes.
func TestWALDecodePrefixPlusGarbage(t *testing.T) {
	var buf []byte
	var want []walRecord
	for i := 0; i < 5; i++ {
		rec := walRecord{LSN: uint64(i + 1), Op: opTag, ID: fmt.Sprintf("ds-%06d", i), Tag: "t"}
		want = append(want, rec)
		frame, _ := encodeRecord(rec)
		buf = append(buf, frame...)
	}
	garbages := [][]byte{
		{0x01},                               // short header
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, // absurd length field
		bytes.Repeat([]byte{0xaa}, 100),      // noise
		func() []byte { // correct length, bad CRC
			frame, _ := encodeRecord(walRecord{LSN: 99, Op: opTag})
			frame[4] ^= 0xff
			return frame
		}(),
		func() []byte { // valid frame with one byte chopped off
			frame, _ := encodeRecord(walRecord{LSN: 99, Op: opTag})
			return frame[:len(frame)-1]
		}(),
	}
	for gi, g := range garbages {
		recs, valid, err := decodeWALStream(append(append([]byte(nil), buf...), g...))
		if err != nil {
			t.Fatalf("garbage %d: err = %v", gi, err)
		}
		if valid != len(buf) {
			t.Fatalf("garbage %d: truncation offset %d, want %d", gi, valid, len(buf))
		}
		if len(recs) != len(want) {
			t.Fatalf("garbage %d: recovered %d records, want %d", gi, len(recs), len(want))
		}
		for i := range want {
			if recs[i].LSN != want[i].LSN {
				t.Fatalf("garbage %d: record %d LSN %d != %d", gi, i, recs[i].LSN, want[i].LSN)
			}
		}
	}
}

// TestWALCorruptPayloadTyped: a frame whose checksum passes but whose
// payload is not a record yields ErrWALCorrupt (not silence, not a
// panic) — and Open surfaces it.
func TestWALCorruptPayloadTyped(t *testing.T) {
	junk := appendFrame(nil, []byte("this is not json"))
	_, _, err := decodeWALStream(junk)
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}

	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 1})
	if _, err := s.Create("p", "/x", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, _ := fs.OpenAppend("/wal/shard-000.wal")
	f.Write(junk)
	f.Sync()
	f.Close()
	if _, err := Open(Options{Shards: 1, WALDir: "/wal", FS: fs}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Open on corrupt payload: err = %v, want ErrWALCorrupt", err)
	}
}

// TestDurableNoWALIsNoop: a store without WALDir has a nil
// durability plane and zero recovery stats — the in-memory hot path
// is untouched.
func TestDurableNoWALIsNoop(t *testing.T) {
	s := NewStore()
	if s.Durable() {
		t.Fatal("plain store claims durability")
	}
	if st := s.RecoveryStats(); st != (RecoveryStats{}) {
		t.Fatalf("plain store has recovery stats: %+v", st)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on plain store: %v", err)
	}
	s.Close()
}

// TestDurableCorruptSnapshotTyped: a snapshot whose frame fails its
// checksum refuses recovery with ErrSnapshotCorrupt.
func TestDurableCorruptSnapshotTyped(t *testing.T) {
	fs := durafs.NewMem()
	s := openMem(t, fs, Options{Shards: 1, SnapshotEvery: 4})
	for i := 0; i < 12; i++ {
		if _, err := s.Create("p", fmt.Sprintf("/s/%d", i), 1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	f, err := fs.Open("/wal/shard-000.snap")
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	data, _ := io.ReadAll(f)
	f.Close()
	data[len(data)-1] ^= 0xff
	w, _ := fs.Create("/wal/shard-000.snap")
	w.Write(data)
	w.Sync()
	w.Close()

	if _, err := Open(Options{Shards: 1, WALDir: "/wal", FS: fs}); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}

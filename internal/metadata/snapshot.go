package metadata

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrSnapshotCorrupt reports a snapshot file whose frame checksum or
// payload failed to decode. Snapshots are synced before being
// renamed into place, so a corrupt one is real disk damage, not a
// crash artifact — recovery refuses rather than silently dropping
// the shard's compacted history.
var ErrSnapshotCorrupt = errors.New("metadata: snapshot corrupt")

// storeDump is the Export/Import document. Snapshots embed the same
// shape (per shard), so a snapshot is literally a per-shard Export
// plus the WAL position it compacts.
type storeDump struct {
	Seq        int64                        `json:"seq"`
	Datasets   []Dataset                    `json:"datasets"`
	Placements map[string]string            `json:"placements,omitempty"`
	Replicas   map[string]map[string]string `json:"replicas,omitempty"`
}

// shardSnapshot is one shard's compacted state: every live dataset
// whose ID hashes to the shard, every placement/replica note whose
// path hashes to it, and the LSN through which the WAL is folded in.
// Records at or below LastLSN are skipped during replay.
type shardSnapshot struct {
	storeDump
	LastLSN uint64 `json:"last_lsn"`
}

// captureShard clones shard i's state at a consistent LSN. It holds
// the dataset-shard and path-shard locks together — mutators never
// hold both, so this cannot deadlock — which freezes staging on the
// shard's WAL and makes (datasets, placements, replicas, stagedLSN)
// one consistent cut.
func (s *Store) captureShard(i int) shardSnapshot {
	sh := s.shards[i]
	ps := s.pathShards[i]
	w := s.wal.shards[i]

	sh.mu.RLock()
	ps.mu.RLock()
	snap := shardSnapshot{}
	snap.Seq = s.seq.Load()
	for _, d := range sh.datasets {
		snap.Datasets = append(snap.Datasets, d.clone())
	}
	if len(ps.placement) > 0 {
		snap.Placements = make(map[string]string, len(ps.placement))
		for k, v := range ps.placement {
			snap.Placements[k] = v
		}
	}
	if len(ps.replicas) > 0 {
		snap.Replicas = make(map[string]map[string]string, len(ps.replicas))
		for k, sites := range ps.replicas {
			cp := make(map[string]string, len(sites))
			for site, st := range sites {
				cp[site] = st
			}
			snap.Replicas[k] = cp
		}
	}
	w.mu.Lock()
	snap.LastLSN = w.stagedLSN
	w.mu.Unlock()
	ps.mu.RUnlock()
	sh.mu.RUnlock()

	sort.Slice(snap.Datasets, func(a, b int) bool { return snap.Datasets[a].ID < snap.Datasets[b].ID })
	return snap
}

// snapshotShard writes shard i's compacted snapshot and rotates its
// WAL. force (Checkpoint) blocks on the per-shard snapshot mutex;
// the inline trigger path uses TryLock so at most one mutator pays
// the snapshot cost while the rest keep committing.
func (s *Store) snapshotShard(i int, force bool) error {
	mu := &s.wal.snapMu[i]
	if force {
		mu.Lock()
	} else if !mu.TryLock() {
		return nil
	}
	defer mu.Unlock()

	snap := s.captureShard(i)
	// Everything the snapshot contains must be durable in the WAL
	// before the snapshot can supersede it: a crash after the rename
	// but before a (hypothetical) later sync would otherwise recover
	// state the log cannot re-derive.
	if err := s.wal.shards[i].syncThrough(snap.LastLSN); err != nil {
		return err
	}

	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("metadata: snapshot encode: %w", err)
	}
	frame := appendFrame(nil, payload)

	fs := s.wal.fs
	tmp := s.wal.snapPath(i) + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	// Sync before rename: the rename must never make an unsynced
	// snapshot the authoritative one (see durafs: renamed files keep
	// their unsynced tails volatile).
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	if err := fs.Rename(tmp, s.wal.snapPath(i)); err != nil {
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	if err := fs.SyncDir(s.wal.dir); err != nil {
		return fmt.Errorf("metadata: snapshot: %w", err)
	}
	s.wal.noteSnapshot()
	return s.wal.shards[i].rotate(snap.LastLSN)
}

// loadSnapshot reads and decodes shard i's snapshot file; ok=false
// means no snapshot exists (a fresh shard).
func (s *Store) loadSnapshot(i int) (shardSnapshot, bool, error) {
	f, err := s.wal.fs.Open(s.wal.snapPath(i))
	if err != nil {
		return shardSnapshot{}, false, nil // no snapshot yet
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return shardSnapshot{}, false, fmt.Errorf("metadata: snapshot read: %w", err)
	}
	payload, _, ok := decodeFrame(data)
	if !ok {
		return shardSnapshot{}, false, fmt.Errorf("%w: shard %d frame invalid", ErrSnapshotCorrupt, i)
	}
	var snap shardSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return shardSnapshot{}, false, fmt.Errorf("%w: shard %d: %v", ErrSnapshotCorrupt, i, err)
	}
	return snap, true, nil
}

// Checkpoint forces a compacted snapshot of every shard, rotating
// each WAL that is quiescent. A clean shutdown that Checkpoints
// first recovers instantly (no replay).
func (s *Store) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	var firstErr error
	for i := range s.shards {
		if err := s.snapshotShard(i, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Package databrowser is the end-user tool of slide 9: "graphical
// tool for exploring and managing the LSDF data, based on ADAL-API,
// connects to the meta-data repository, will be available as web
// GUI". This implementation provides the browsing/tagging/triggering
// API, a CLI front end (cmd/databrowser) and a minimal JSON web
// endpoint standing in for the announced web GUI.
//
// The browser is a read-mostly client of the sharded metadata store:
// List and Stat join storage listings against per-path lookups (one
// path-shard lock each), and Find fans out across all metadata
// shards in parallel. Tag is the workflow-trigger entry point; when
// the store runs its async event bus, Tag returns before the
// triggered workflows do — callers that need the effects call
// metadata.Store.Flush.
package databrowser

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/units"
)

// Entry is one browse row: storage view joined with metadata view.
type Entry struct {
	Path       string      `json:"path"`
	Size       units.Bytes `json:"size"`
	Registered bool        `json:"registered"`
	DatasetID  string      `json:"dataset_id,omitempty"`
	Project    string      `json:"project,omitempty"`
	Tags       []string    `json:"tags,omitempty"`
	// Placement is the storage-tier state (resident, premigrated,
	// migrated) when the path is served by a tiering backend; empty
	// for untiered mounts.
	Placement string `json:"placement,omitempty"`
	// Replicas and ReplicaSites report the multi-site replica count
	// and locations when the path is served by a replication
	// federation; zero/empty for unfederated mounts.
	Replicas     int      `json:"replicas,omitempty"`
	ReplicaSites []string `json:"replica_sites,omitempty"`
	// Cached is the read-cache tier holding the object ("memory" or
	// "disk") when the path is served through a read cache; empty
	// when uncached or uncacheable.
	Cached string `json:"cached,omitempty"`
}

// placementReporter is implemented by tiering backends; the browser
// discovers it structurally through the mount table, keeping the
// browser free of a tiering dependency.
type placementReporter interface {
	Placement(rel string) (string, bool)
}

// replicaReporter is implemented by federated replication backends,
// discovered structurally for the same decoupling reason.
type replicaReporter interface {
	ReplicaSites(rel string) ([]string, bool)
}

// cacheReporter is implemented by read-cache backends: the tier
// currently holding the object, and the cache's counter snapshot.
type cacheReporter interface {
	CacheTier(rel string) (string, bool)
	CacheCounters() map[string]uint64
}

// annotate resolves the path once and fills in whatever its backend
// reports: the tier placement and/or the replica sites.
func (b *Browser) annotate(e *Entry, path string) {
	be, rel, err := b.layer.Resolve(path)
	if err != nil {
		return
	}
	if pr, ok := be.(placementReporter); ok {
		if p, ok := pr.Placement(rel); ok {
			e.Placement = p
		}
	}
	if rr, ok := be.(replicaReporter); ok {
		if sites, ok := rr.ReplicaSites(rel); ok {
			e.ReplicaSites = sites
			e.Replicas = len(sites)
		}
	}
	if cr, ok := be.(cacheReporter); ok {
		if tier, ok := cr.CacheTier(rel); ok {
			e.Cached = tier
		}
	}
}

// CacheStats reports the read-cache counters of the mount serving
// prefix, or ok=false when that mount has no cache.
func (b *Browser) CacheStats(prefix string) (map[string]uint64, bool) {
	be, _, err := b.layer.Resolve(prefix)
	if err != nil {
		return nil, false
	}
	cr, ok := be.(cacheReporter)
	if !ok {
		return nil, false
	}
	return cr.CacheCounters(), true
}

// Browser joins the ADAL layer with the metadata repository.
type Browser struct {
	layer *adal.Layer
	meta  *metadata.Store
	reg   *obs.Registry
	mReq  *obs.CounterVec
}

// New creates a browser with a private metrics registry; SetObs
// swaps in a shared one.
func New(layer *adal.Layer, meta *metadata.Store) *Browser {
	b := &Browser{layer: layer, meta: meta}
	b.SetObs(obs.New())
	return b
}

// SetObs points the browser's instrumentation (per-endpoint request
// counters, the registry Handler serves at GET /metrics) at reg —
// the facility calls this so browser traffic lands in the shared
// facility-wide exposition.
func (b *Browser) SetObs(reg *obs.Registry) {
	b.reg = reg
	b.mReq = reg.CounterVec("lsdf_browser_requests_total", "DataBrowser web API requests.", "endpoint")
}

// List browses a federated prefix, joining each object with its
// metadata record when one exists.
func (b *Browser) List(prefix string) ([]Entry, error) {
	infos, err := b.layer.List(prefix)
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(infos))
	for _, info := range infos {
		e := Entry{Path: info.Path, Size: info.Size}
		b.annotate(&e, info.Path)
		if ds, ok := b.meta.ByPath(info.Path); ok {
			e.Registered = true
			e.DatasetID = ds.ID
			e.Project = ds.Project
			e.Tags = ds.Tags
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Stat returns the entry for one path.
func (b *Browser) Stat(path string) (Entry, error) {
	info, err := b.layer.Stat(path)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{Path: info.Path, Size: info.Size}
	b.annotate(&e, path)
	if ds, ok := b.meta.ByPath(path); ok {
		e.Registered = true
		e.DatasetID = ds.ID
		e.Project = ds.Project
		e.Tags = ds.Tags
	}
	return e, nil
}

// Dataset returns the full metadata record for a path.
func (b *Browser) Dataset(path string) (metadata.Dataset, error) {
	ds, ok := b.meta.ByPath(path)
	if !ok {
		return metadata.Dataset{}, fmt.Errorf("%w: %q", metadata.ErrNotFound, path)
	}
	return ds, nil
}

// Tag tags the dataset registered at path. Tagging is the browser's
// workflow-trigger mechanism (slide 12).
func (b *Browser) Tag(path, tag string) error {
	ds, ok := b.meta.ByPath(path)
	if !ok {
		return fmt.Errorf("%w: %q", metadata.ErrNotFound, path)
	}
	return b.meta.Tag(ds.ID, tag)
}

// Untag removes a tag from the dataset at path.
func (b *Browser) Untag(path, tag string) error {
	ds, ok := b.meta.ByPath(path)
	if !ok {
		return fmt.Errorf("%w: %q", metadata.ErrNotFound, path)
	}
	return b.meta.Untag(ds.ID, tag)
}

// Preview returns the first n bytes of an object.
func (b *Browser) Preview(path string, n int) ([]byte, error) {
	r, err := b.layer.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, n)
	read, err := io.ReadFull(r, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
		return nil, err
	}
	return buf[:read], nil
}

// Find proxies metadata queries for browser clients.
func (b *Browser) Find(q metadata.Query) []metadata.Dataset {
	return b.meta.Find(q)
}

// Handler returns the JSON web API (the "web GUI" stand-in):
//
//	GET  /list?prefix=/ddn          -> []Entry
//	GET  /stat?path=/ddn/x          -> Entry
//	GET  /dataset?path=/ddn/x       -> metadata.Dataset
//	GET  /find?project=p&tag=t      -> []metadata.Dataset
//	GET  /cache?prefix=/sites       -> read-cache counters
//	GET  /metrics                   -> Prometheus exposition
//	POST /tag?path=/ddn/x&tag=hot   -> 204
//	POST /untag?path=/ddn/x&tag=hot -> 204
func (b *Browser) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, fn http.HandlerFunc) {
		hits := b.mReq.With(endpoint)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			hits.Inc()
			fn(w, r)
		})
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	fail := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, metadata.ErrNotFound), errors.Is(err, adal.ErrNotFound):
			code = http.StatusNotFound
		case errors.Is(err, adal.ErrNoMount):
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
	}
	handle("GET /list", "list", func(w http.ResponseWriter, r *http.Request) {
		entries, err := b.List(r.URL.Query().Get("prefix"))
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, entries)
	})
	handle("GET /stat", "stat", func(w http.ResponseWriter, r *http.Request) {
		e, err := b.Stat(r.URL.Query().Get("path"))
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, e)
	})
	handle("GET /dataset", "dataset", func(w http.ResponseWriter, r *http.Request) {
		ds, err := b.Dataset(r.URL.Query().Get("path"))
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, ds)
	})
	handle("GET /find", "find", func(w http.ResponseWriter, r *http.Request) {
		q := metadata.Query{
			Project:    r.URL.Query().Get("project"),
			PathPrefix: r.URL.Query().Get("prefix"),
		}
		if tag := r.URL.Query().Get("tag"); tag != "" {
			q.Tags = strings.Split(tag, ",")
		}
		writeJSON(w, b.Find(q))
	})
	handle("GET /cache", "cache", func(w http.ResponseWriter, r *http.Request) {
		stats, ok := b.CacheStats(r.URL.Query().Get("prefix"))
		if !ok {
			http.Error(w, "no read cache on that mount", http.StatusNotFound)
			return
		}
		writeJSON(w, stats)
	})
	handle("POST /tag", "tag", func(w http.ResponseWriter, r *http.Request) {
		if err := b.Tag(r.URL.Query().Get("path"), r.URL.Query().Get("tag")); err != nil {
			fail(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	handle("POST /untag", "untag", func(w http.ResponseWriter, r *http.Request) {
		if err := b.Untag(r.URL.Query().Get("path"), r.URL.Query().Get("tag")); err != nil {
			fail(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.Handle("GET /metrics", b.reg.Handler())
	return mux
}

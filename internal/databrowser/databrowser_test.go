package databrowser

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/readcache"
	"repro/internal/tiering"
	"repro/internal/units"
	"repro/internal/workflow"
)

func setup(t *testing.T) (*Browser, *adal.Layer, *metadata.Store) {
	t.Helper()
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	return New(layer, meta), layer, meta
}

func put(t *testing.T, layer *adal.Layer, meta *metadata.Store, path, content string, register bool) {
	t.Helper()
	n, sum, err := layer.WriteChecksummed(path, strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if register {
		if _, err := meta.Create("zebrafish", path, n, sum, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListJoinsMetadata(t *testing.T) {
	b, layer, meta := setup(t)
	put(t, layer, meta, "/itg/a", "aa", true)
	put(t, layer, meta, "/itg/b", "bbb", false) // unregistered orphan
	entries, err := b.List("/itg")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if !entries[0].Registered || entries[0].DatasetID == "" || entries[0].Project != "zebrafish" {
		t.Fatalf("registered entry = %+v", entries[0])
	}
	if entries[1].Registered {
		t.Fatalf("orphan entry = %+v", entries[1])
	}
}

func TestStatAndDataset(t *testing.T) {
	b, layer, meta := setup(t)
	put(t, layer, meta, "/itg/a", "aa", true)
	e, err := b.Stat("/itg/a")
	if err != nil || e.Size != 2 || !e.Registered {
		t.Fatalf("stat = %+v err=%v", e, err)
	}
	ds, err := b.Dataset("/itg/a")
	if err != nil || ds.Path != "/itg/a" {
		t.Fatalf("dataset = %+v err=%v", ds, err)
	}
	if _, err := b.Dataset("/nope"); !errors.Is(err, metadata.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestTagTriggersWorkflow(t *testing.T) {
	b, layer, meta := setup(t)
	orch := workflow.NewOrchestrator(layer, meta, 0)
	defer orch.Close()
	ran := false
	wf := workflow.New("quick")
	wf.MustAddNode("step", workflow.ActorFunc(func(*workflow.Context, workflow.Values) (workflow.Values, error) {
		ran = true
		return nil, nil
	}))
	orch.AddTrigger(workflow.Trigger{Tag: "analyze", Workflow: wf})

	put(t, layer, meta, "/itg/a", "aa", true)
	// The browser's Tag is the trigger path of slide 12.
	if err := b.Tag("/itg/a", "analyze"); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("tagging via browser did not trigger workflow")
	}
	ds, _ := b.Dataset("/itg/a")
	if len(ds.Processings) != 1 {
		t.Fatalf("provenance = %+v", ds.Processings)
	}
}

func TestUntag(t *testing.T) {
	b, layer, meta := setup(t)
	put(t, layer, meta, "/itg/a", "aa", true)
	if err := b.Tag("/itg/a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.Untag("/itg/a", "x"); err != nil {
		t.Fatal(err)
	}
	ds, _ := b.Dataset("/itg/a")
	if ds.HasTag("x") {
		t.Fatal("untag failed")
	}
	if err := b.Tag("/ghost", "x"); !errors.Is(err, metadata.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestPreview(t *testing.T) {
	b, layer, meta := setup(t)
	put(t, layer, meta, "/itg/a", "0123456789", true)
	head, err := b.Preview("/itg/a", 4)
	if err != nil || string(head) != "0123" {
		t.Fatalf("preview = %q err=%v", head, err)
	}
	// Preview longer than object returns the whole object.
	all, err := b.Preview("/itg/a", 100)
	if err != nil || string(all) != "0123456789" {
		t.Fatalf("preview = %q err=%v", all, err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	b, layer, meta := setup(t)
	put(t, layer, meta, "/itg/a", "aa", true)
	put(t, layer, meta, "/itg/b", "bb", true)
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	// GET /list
	resp, err := http.Get(srv.URL + "/list?prefix=/itg")
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(entries) != 2 {
		t.Fatalf("list = %+v", entries)
	}

	// POST /tag then GET /find
	resp, err = http.Post(srv.URL+"/tag?path=/itg/a&tag=hot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tag status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/find?tag=hot")
	if err != nil {
		t.Fatal(err)
	}
	var found []metadata.Dataset
	if err := json.NewDecoder(resp.Body).Decode(&found); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(found) != 1 || found[0].Path != "/itg/a" {
		t.Fatalf("find = %+v", found)
	}

	// GET /dataset
	resp, err = http.Get(srv.URL + "/dataset?path=/itg/a")
	if err != nil {
		t.Fatal(err)
	}
	var ds metadata.Dataset
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ds.HasTag("hot") {
		t.Fatalf("dataset = %+v", ds)
	}

	// 404 handling
	resp, err = http.Get(srv.URL + "/dataset?path=/ghost")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dataset status = %d", resp.StatusCode)
	}

	// POST /untag
	resp, err = http.Post(srv.URL+"/untag?path=/itg/a&tag=hot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("untag status = %d", resp.StatusCode)
	}
}

func TestFindProxy(t *testing.T) {
	b, layer, meta := setup(t)
	for i := 0; i < 5; i++ {
		put(t, layer, meta, fmt.Sprintf("/f/%d", i), "x", true)
	}
	got := b.Find(metadata.Query{Project: "zebrafish"})
	if len(got) != 5 {
		t.Fatalf("find = %d", len(got))
	}
}

// TestPlacementColumn mounts a tiered backend and checks that List,
// Stat and the web handler surface each object's tier state, while
// untiered mounts keep an empty placement.
func TestPlacementColumn(t *testing.T) {
	layer := adal.NewLayer()
	if err := layer.Mount("/plain", adal.NewMemFS("plain")); err != nil {
		t.Fatal(err)
	}
	tier, err := tiering.New("tier", adal.NewMemFS("hot"), adal.NewMemFS("cold"), tiering.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if err := layer.Mount("/ddn", tier); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	b := New(layer, meta)

	put(t, layer, meta, "/ddn/hot.raw", "stays hot", true)
	put(t, layer, meta, "/ddn/cold.raw", "goes cold", true)
	put(t, layer, meta, "/plain/p.raw", "untiered", true)
	if err := tier.Migrate("/cold.raw"); err != nil {
		t.Fatal(err)
	}

	entries, err := b.List("/ddn")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, e := range entries {
		got[e.Path] = e.Placement
		if !e.Registered {
			t.Fatalf("%s lost its metadata join: %+v", e.Path, e)
		}
	}
	if got["/ddn/hot.raw"] != "resident" || got["/ddn/cold.raw"] != "migrated" {
		t.Fatalf("placements = %v", got)
	}
	// The migrated row still shows the logical size, not the stub's.
	for _, e := range entries {
		if e.Path == "/ddn/cold.raw" && e.Size != 9 {
			t.Fatalf("migrated size = %d, want logical 9", e.Size)
		}
	}

	e, err := b.Stat("/plain/p.raw")
	if err != nil || e.Placement != "" {
		t.Fatalf("untiered stat = %+v, %v", e, err)
	}

	// The JSON web API carries the field.
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stat?path=/ddn/cold.raw")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var row Entry
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	if row.Placement != "migrated" {
		t.Fatalf("web stat placement = %q", row.Placement)
	}
}

func TestCachedColumnAndStats(t *testing.T) {
	layer := adal.NewLayer()
	meta := metadata.NewStore()
	cache := readcache.New(adal.NewMemFS("inner"), readcache.Config{Memory: units.MiB})
	defer cache.Close()
	if err := layer.Mount("/sites", cache); err != nil {
		t.Fatal(err)
	}
	b := New(layer, meta)

	put(t, layer, meta, "/sites/exp/a.raw", "cached content", true)
	put(t, layer, meta, "/sites/exp/b.raw", "never read", true)
	// Read a.raw through the layer so the cache fills.
	r, err := layer.Open("/sites/exp/a.raw")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r)
	r.Close()

	e, err := b.Stat("/sites/exp/a.raw")
	if err != nil || e.Cached != "memory" {
		t.Fatalf("stat = %+v, %v; want Cached=memory", e, err)
	}
	e, err = b.Stat("/sites/exp/b.raw")
	if err != nil || e.Cached != "" {
		t.Fatalf("unread stat = %+v, %v; want empty Cached", e, err)
	}

	stats, ok := b.CacheStats("/sites/exp")
	if !ok || stats["fills"] != 1 {
		t.Fatalf("cache stats = %v/%v, want fills=1", stats, ok)
	}
	if _, ok := b.CacheStats("/nowhere"); ok {
		t.Fatal("CacheStats resolved a missing mount")
	}

	// The JSON web API carries both surfaces.
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stat?path=/sites/exp/a.raw")
	if err != nil {
		t.Fatal(err)
	}
	var row Entry
	err = json.NewDecoder(resp.Body).Decode(&row)
	resp.Body.Close()
	if err != nil || row.Cached != "memory" {
		t.Fatalf("web stat cached = %q, %v", row.Cached, err)
	}
	resp, err = http.Get(srv.URL + "/cache?prefix=/sites")
	if err != nil {
		t.Fatal(err)
	}
	var counters map[string]uint64
	err = json.NewDecoder(resp.Body).Decode(&counters)
	resp.Body.Close()
	if err != nil || counters["mem_objects"] != 1 {
		t.Fatalf("web cache counters = %v, %v", counters, err)
	}
	if resp, _ := http.Get(srv.URL + "/cache?prefix=/none"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-mount cache status = %d", resp.StatusCode)
	}
}

package rules

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

func newCtx(t *testing.T) (*adal.Layer, *metadata.Store) {
	t.Helper()
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	return layer, metadata.NewStore()
}

func putObject(t *testing.T, layer *adal.Layer, meta *metadata.Store, project, path, content string) metadata.Dataset {
	t.Helper()
	n, sum, err := layer.WriteChecksummed(path, strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := meta.Create(project, path, n, sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAutoReplicationOnCreate(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	e.Add(Rule{
		Name:      "replicate-zebrafish",
		Event:     OnCreate,
		Condition: ProjectIs("zebrafish"),
		Actions:   []Action{Replicate("/replica")},
	})

	ds := putObject(t, layer, meta, "zebrafish", "/itg/img1", "pixels")
	putObject(t, layer, meta, "katrin", "/katrin/run1", "events")

	// Replica exists for the zebrafish object only.
	a, err := layer.Checksum("/itg/img1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := layer.Checksum("/replica/itg/img1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("replica differs")
	}
	if _, err := layer.Stat("/replica/katrin/run1"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("katrin replicated despite condition: %v", err)
	}
	got, _ := meta.Get(ds.ID)
	if !got.HasTag("replicated") {
		t.Fatal("replicated tag missing")
	}
	audit := e.Audit()
	if len(audit) != 1 || audit[0].Err != nil {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestChecksumVerification(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	e.Add(Rule{
		Name:    "audit",
		Event:   OnTag,
		Tag:     "audit-me",
		Actions: []Action{VerifyChecksum()},
	})
	ds := putObject(t, layer, meta, "p", "/obj", "payload")
	if err := meta.Tag(ds.ID, "audit-me"); err != nil {
		t.Fatal(err)
	}
	got, _ := meta.Get(ds.ID)
	if !got.HasTag("verified") {
		t.Fatal("verified tag missing")
	}
}

func TestChecksumMismatchFlagsCorrupt(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	e.Add(Rule{
		Name: "audit", Event: OnTag, Tag: "audit-me",
		Actions: []Action{VerifyChecksum()},
	})
	// Register with a checksum that does not match stored content.
	w, _ := layer.Create("/bad")
	io.WriteString(w, "actual-bytes")
	w.Close()
	ds, err := meta.Create("p", "/bad", 12, strings.Repeat("0", 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Tag(ds.ID, "audit-me"); err != nil {
		t.Fatal(err)
	}
	got, _ := meta.Get(ds.ID)
	if !got.HasTag("corrupt") {
		t.Fatal("corrupt tag missing")
	}
	audit := e.Audit()
	var sawErr bool
	for _, a := range audit {
		if a.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatalf("audit has no error entry: %+v", audit)
	}
}

func TestConditions(t *testing.T) {
	ds := metadata.Dataset{Project: "p", Size: 100, Tags: []string{"x"}}
	if !And(ProjectIs("p"), HasTag("x"), LargerThan(50))(ds) {
		t.Fatal("conjunction should match")
	}
	if And(ProjectIs("p"), LargerThan(200))(ds) {
		t.Fatal("size filter should reject")
	}
	if And()(ds) != true {
		t.Fatal("empty conjunction is true")
	}
}

func TestActionChainStopsOnError(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	boom := errors.New("boom")
	var ran []string
	e.Add(Rule{
		Name:  "chain",
		Event: OnCreate,
		Actions: []Action{
			ActionFunc{Label: "a", Fn: func(*Context, metadata.Dataset) error {
				ran = append(ran, "a")
				return nil
			}},
			ActionFunc{Label: "b", Fn: func(*Context, metadata.Dataset) error {
				ran = append(ran, "b")
				return boom
			}},
			ActionFunc{Label: "c", Fn: func(*Context, metadata.Dataset) error {
				ran = append(ran, "c")
				return nil
			}},
		},
	})
	putObject(t, layer, meta, "p", "/x", "d")
	if strings.Join(ran, "") != "ab" {
		t.Fatalf("ran = %v", ran)
	}
	audit := e.Audit()
	if len(audit) != 2 || audit[1].Err == nil {
		t.Fatalf("audit = %+v", audit)
	}
}

func TestTagRuleFiltersByTag(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	count := 0
	e.Add(Rule{
		Name: "specific", Event: OnTag, Tag: "hot",
		Actions: []Action{ActionFunc{Label: "n", Fn: func(*Context, metadata.Dataset) error {
			count++
			return nil
		}}},
	})
	ds := putObject(t, layer, meta, "p", "/t", "d")
	meta.Tag(ds.ID, "cold")
	meta.Tag(ds.ID, "hot")
	meta.Tag(ds.ID, "warm")
	if count != 1 {
		t.Fatalf("rule fired %d times, want 1", count)
	}
}

func TestCascadeGuard(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	// Pathological rule: every firing removes and re-adds its own
	// trigger tag, generating a fresh EventTagged each time — an
	// unbounded cascade without the depth guard.
	e.Add(Rule{
		Name: "ping", Event: OnTag, Tag: "ping",
		Actions: []Action{ActionFunc{Label: "flip", Fn: func(ctx *Context, ds metadata.Dataset) error {
			if err := ctx.Meta.Untag(ds.ID, "ping"); err != nil {
				return err
			}
			return ctx.Meta.Tag(ds.ID, "ping")
		}}},
	})
	ds := putObject(t, layer, meta, "p", "/loop", "d")
	meta.Tag(ds.ID, "ping") // must terminate via depth guard
	var cascades int
	for _, a := range e.Audit() {
		if errors.Is(a.Err, ErrCascade) {
			cascades++
		}
	}
	if cascades == 0 {
		t.Fatal("cascade guard never tripped")
	}
}

func TestProcessingEventRule(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	fired := 0
	e.Add(Rule{
		Name: "archive-results", Event: OnProcessing,
		Actions: []Action{ActionFunc{Label: "n", Fn: func(*Context, metadata.Dataset) error {
			fired++
			return nil
		}}},
	})
	ds := putObject(t, layer, meta, "p", "/pr", "d")
	if _, err := meta.AddProcessing(ds.ID, metadata.Processing{Tool: "seg"}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestManyDatasetsManyRules(t *testing.T) {
	layer, meta := newCtx(t)
	e := NewEngine(layer, meta)
	defer e.Close()
	e.Add(Rule{
		Name: "rep", Event: OnCreate,
		Condition: LargerThan(int64(10)),
		Actions:   []Action{Replicate("/replica")},
	})
	for i := 0; i < 30; i++ {
		content := strings.Repeat("x", i) // sizes 0..29
		putObject(t, layer, meta, "p", fmt.Sprintf("/m/%02d", i), content)
	}
	reps, err := layer.List("/replica/m/")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 19 { // sizes 11..29
		t.Fatalf("replicas = %d, want 19", len(reps))
	}
	if got := meta.Find(metadata.Query{Tags: []string{"replicated"}}); len(got) != 19 {
		t.Fatalf("tagged = %d", len(got))
	}
	_ = units.Bytes(0)
}

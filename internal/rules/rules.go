// Package rules is the policy-driven data management layer the paper
// lists in its outlook (slide 14: "Data management system iRODS
// (ongoing)"). Like iRODS micro-services, a rule binds an event, a
// condition over the dataset, and a chain of actions; the engine
// subscribes to the metadata store and executes matching rules as
// data is created, tagged or processed.
package rules

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
)

// On selects the metadata event a rule fires for.
type On int

// Rule trigger events.
const (
	OnCreate On = iota
	OnTag
	OnProcessing
	// OnReplica fires for replica-catalog state transitions
	// (metadata.EventReplica); Rule.State narrows to one state.
	OnReplica
)

// String implements fmt.Stringer.
func (o On) String() string {
	switch o {
	case OnCreate:
		return "on-create"
	case OnTag:
		return "on-tag"
	case OnProcessing:
		return "on-processing"
	case OnReplica:
		return "on-replica"
	}
	return fmt.Sprintf("on(%d)", int(o))
}

// Condition filters datasets. A nil condition matches everything.
type Condition func(ds metadata.Dataset) bool

// ProjectIs matches datasets of one project.
func ProjectIs(project string) Condition {
	return func(ds metadata.Dataset) bool { return ds.Project == project }
}

// HasTag matches datasets carrying a tag.
func HasTag(tag string) Condition {
	return func(ds metadata.Dataset) bool { return ds.HasTag(tag) }
}

// LargerThan matches datasets above a size.
func LargerThan(bytes int64) Condition {
	return func(ds metadata.Dataset) bool { return int64(ds.Size) > bytes }
}

// And combines conditions conjunctively.
func And(cs ...Condition) Condition {
	return func(ds metadata.Dataset) bool {
		for _, c := range cs {
			if c != nil && !c(ds) {
				return false
			}
		}
		return true
	}
}

// Context hands facility services to actions.
type Context struct {
	Layer *adal.Layer
	Meta  *metadata.Store
}

// Action is one micro-service step.
type Action interface {
	// Name identifies the action in audit records.
	Name() string
	// Apply performs the action for a dataset.
	Apply(ctx *Context, ds metadata.Dataset) error
}

// ActionFunc adapts a function to Action.
type ActionFunc struct {
	Label string
	Fn    func(ctx *Context, ds metadata.Dataset) error
}

// Name implements Action.
func (a ActionFunc) Name() string { return a.Label }

// Apply implements Action.
func (a ActionFunc) Apply(ctx *Context, ds metadata.Dataset) error { return a.Fn(ctx, ds) }

// Replicate copies the dataset's object from its mount into dstPrefix
// (e.g. "/replica"), preserving the relative path, and tags the
// dataset with "replicated".
func Replicate(dstPrefix string) Action {
	return ActionFunc{
		Label: "replicate->" + dstPrefix,
		Fn: func(ctx *Context, ds metadata.Dataset) error {
			dst := dstPrefix + ds.Path
			if err := ctx.Layer.CopyObject(ds.Path, dst); err != nil {
				return err
			}
			return ctx.Meta.Tag(ds.ID, "replicated")
		},
	}
}

// VerifyChecksum recomputes the object checksum and compares it with
// the registered one, tagging "corrupt" on mismatch.
func VerifyChecksum() Action {
	return ActionFunc{
		Label: "verify-checksum",
		Fn: func(ctx *Context, ds metadata.Dataset) error {
			sum, err := ctx.Layer.Checksum(ds.Path)
			if err != nil {
				return err
			}
			if ds.Checksum != "" && sum != ds.Checksum {
				if terr := ctx.Meta.Tag(ds.ID, "corrupt"); terr != nil {
					return terr
				}
				return fmt.Errorf("rules: checksum mismatch for %s", ds.Path)
			}
			return ctx.Meta.Tag(ds.ID, "verified")
		},
	}
}

// ReplicaEnsurer is the slice of the replication engine rules need:
// schedule a federated path toward its MinReplicas target. The
// interface is structural so rules stays decoupled from
// internal/replication (replication.Engine implements it).
type ReplicaEnsurer interface {
	EnsureFederated(path string)
}

// EnsureReplicas schedules the dataset's object for multi-site
// replication. The call is asynchronous — the engine's catalog (and
// its EventReplica stream) reports progress; paths outside the
// federation mount are ignored by the engine.
func EnsureReplicas(r ReplicaEnsurer) Action {
	return ActionFunc{
		Label: "ensure-replicas",
		Fn: func(ctx *Context, ds metadata.Dataset) error {
			r.EnsureFederated(ds.Path)
			return nil
		},
	}
}

// AddTag tags the dataset.
func AddTag(tag string) Action {
	return ActionFunc{
		Label: "add-tag:" + tag,
		Fn: func(ctx *Context, ds metadata.Dataset) error {
			return ctx.Meta.Tag(ds.ID, tag)
		},
	}
}

// Rule is an event-condition-action triple.
type Rule struct {
	Name      string
	Event     On
	Tag       string // for OnTag: the tag that fires the rule ("" = any)
	State     string // for OnReplica: the replica state that fires it ("" = any)
	Condition Condition
	Actions   []Action
}

// AuditEntry records one rule execution.
type AuditEntry struct {
	Rule      string
	Action    string
	DatasetID string
	Path      string
	Err       error
	At        time.Time
}

// Engine evaluates rules against metadata events.
type Engine struct {
	ctx   *Context
	mu    sync.Mutex
	rules []Rule
	audit []AuditEntry
	unsub func()
	// depth guards against rule cascades that never terminate (a rule
	// tagging a dataset can fire further rules).
	maxDepth int
	depth    map[string]int
}

// ErrCascade is recorded when rule recursion exceeds the depth bound.
var ErrCascade = errors.New("rules: cascade depth exceeded")

// NewEngine attaches a rule engine to the facility services.
func NewEngine(layer *adal.Layer, meta *metadata.Store) *Engine {
	e := &Engine{
		ctx:      &Context{Layer: layer, Meta: meta},
		maxDepth: 8,
		depth:    make(map[string]int),
	}
	e.unsub = meta.Subscribe(e.onEvent)
	return e
}

// Close detaches the engine from the store.
func (e *Engine) Close() {
	if e.unsub != nil {
		e.unsub()
		e.unsub = nil
	}
}

// Add registers a rule.
func (e *Engine) Add(r Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
}

// Audit returns a copy of the audit log.
func (e *Engine) Audit() []AuditEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]AuditEntry(nil), e.audit...)
}

func (e *Engine) onEvent(ev metadata.Event) {
	var on On
	switch ev.Type {
	case metadata.EventCreated:
		on = OnCreate
	case metadata.EventTagged:
		on = OnTag
	case metadata.EventProcessingAdded:
		on = OnProcessing
	case metadata.EventReplica:
		on = OnReplica
	default:
		return
	}
	e.mu.Lock()
	matched := make([]Rule, 0, len(e.rules))
	for _, r := range e.rules {
		if r.Event != on {
			continue
		}
		if on == OnTag && r.Tag != "" && r.Tag != ev.Tag {
			continue
		}
		if on == OnReplica && r.State != "" && r.State != ev.Placement {
			continue
		}
		if r.Condition != nil && !r.Condition(ev.Dataset) {
			continue
		}
		matched = append(matched, r)
	}
	if len(matched) > 0 {
		e.depth[ev.Dataset.ID]++
		if e.depth[ev.Dataset.ID] > e.maxDepth {
			e.audit = append(e.audit, AuditEntry{
				Rule: matched[0].Name, DatasetID: ev.Dataset.ID,
				Path: ev.Dataset.Path, Err: ErrCascade, At: time.Now(),
			})
			e.depth[ev.Dataset.ID]--
			e.mu.Unlock()
			return
		}
	}
	e.mu.Unlock()

	for _, r := range matched {
		for _, a := range r.Actions {
			err := a.Apply(e.ctx, ev.Dataset)
			e.mu.Lock()
			e.audit = append(e.audit, AuditEntry{
				Rule: r.Name, Action: a.Name(), DatasetID: ev.Dataset.ID,
				Path: ev.Dataset.Path, Err: err, At: time.Now(),
			})
			e.mu.Unlock()
			if err != nil {
				break // remaining actions of this rule are skipped
			}
		}
	}
	if len(matched) > 0 {
		e.mu.Lock()
		e.depth[ev.Dataset.ID]--
		e.mu.Unlock()
	}
}

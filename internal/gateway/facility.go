package gateway

import (
	"repro/internal/facility"
)

// ForFacility wires a gateway over an assembled facility: the
// facility's federated namespace (with whatever tier, replication
// federation and read cache its Options enabled), its metadata store,
// and its analysis cluster behind /v1/jobs. This is what cmd/lsdfd
// serves.
func ForFacility(f *facility.Facility, cfg Config) (*Server, error) {
	cfg.Layer = f.Layer
	cfg.Meta = f.Meta
	if cfg.RunJob == nil {
		cfg.RunJob = f.RunJob
	}
	if cfg.RunSpec == nil {
		cfg.RunSpec = f.SubmitNamedJob
		cfg.HasJob = f.HasJobTemplate
	}
	// The gateway instruments into the facility's shared registry and
	// trace ring, so GET /metrics is one scrape for the whole stack
	// and a request's trace carries spans from every layer it crossed.
	if cfg.Obs == nil {
		cfg.Obs = f.Obs
	}
	if cfg.Tracer == nil {
		cfg.Tracer = f.Tracer
	}
	return New(cfg)
}

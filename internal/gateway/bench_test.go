package gateway_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/units"
)

func benchStore(b *testing.B, fac *facility.Facility, path string, size int) []byte {
	b.Helper()
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	w, err := fac.Layer.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return data
}

func benchSetup(b *testing.B, fopts facility.Options) (*facility.Facility, *client.Client) {
	b.Helper()
	fac, _, hs := startGateway(b, fopts, gateway.Config{Tenants: []gateway.Tenant{{
		Name: "bench", Token: "bench-token", Prefixes: []string{"/"},
		RPS: 1e9, Burst: 1 << 30, MaxInFlight: 1 << 20,
	}}})
	return fac, newClient(b, hs, "bench-token", client.Options{MaxRetries: -1})
}

// BenchmarkGatewayReadSmall is the metadata-dominated read: a 64 KiB
// object where per-request HTTP cost is the term being measured.
func BenchmarkGatewayReadSmall(b *testing.B) {
	fac, c := benchSetup(b, facility.Options{Sites: []string{"near"}})
	benchStore(b, fac, "/sites/bench/small", int(64*units.KiB))
	ctx := context.Background()
	b.SetBytes(int64(64 * units.KiB))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadObject(ctx, "/sites/bench/small"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayReadCachedLarge streams a 2 MiB object served from
// the read cache's memory tier — the bandwidth-bound path the E17
// probe bounds at 2x of in-process.
func BenchmarkGatewayReadCachedLarge(b *testing.B) {
	fac, c := benchSetup(b, facility.Options{
		Sites: []string{"far1"}, ReadCacheMemory: 16 * units.MiB,
	})
	benchStore(b, fac, "/sites/bench/large", int(2*units.MiB))
	ctx := context.Background()
	buf := make([]byte, int(2*units.MiB))
	read := func() {
		rc, err := c.Get(ctx, "/sites/bench/large")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(rc, buf); err != nil {
			b.Fatal(err)
		}
		rc.Close()
	}
	read() // warm the cache
	b.SetBytes(int64(2 * units.MiB))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		read()
	}
}

// BenchmarkGatewayStat is the pure-metadata request: no payload, the
// floor for any gateway round trip.
func BenchmarkGatewayStat(b *testing.B) {
	fac, c := benchSetup(b, facility.Options{Sites: []string{"near"}})
	benchStore(b, fac, "/sites/bench/stat-me", 4096)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat(ctx, "/sites/bench/stat-me"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayIngest is the durable write path: one 4 KiB object
// per request, stored and registered in the metadata store.
func BenchmarkGatewayIngest(b *testing.B) {
	_, c := benchSetup(b, facility.Options{Sites: []string{"near"}})
	ctx := context.Background()
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Ingest(ctx, []gateway.IngestObject{{
			Path:    fmt.Sprintf("/sites/bench/ingest-%08d.raw", i),
			Project: "bench",
			Data:    data,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if res.Registered != 1 {
			b.Fatalf("not registered: %+v", res.Results)
		}
	}
}
